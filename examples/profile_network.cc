/**
 * @file
 * Scenario: a performance engineer asks WHERE a network spends its
 * time on two very different phones. The profiler breaks the
 * inference into per-operator latencies and bottleneck resources —
 * the simulator analogue of running the TFLite benchmark profiler on
 * the paper's Android app.
 */

#include <cstdio>

#include "dnn/quantize.hh"
#include "dnn/zoo.hh"
#include "sim/profiler.hh"

using namespace gcm;

int
main(int argc, char **argv)
{
    const std::string model_name =
        argc > 1 ? argv[1] : "mobilenet_v3_large";
    const dnn::Graph net = dnn::quantize(dnn::buildZooModel(model_name));

    const auto fleet = sim::DeviceDatabase::standard();
    const sim::LatencyModel model;

    for (const char *phone : {"Galaxy-J7", "Mi-9"}) {
        const auto &device = fleet.byName(phone);
        const auto &chipset = fleet.chipsetOf(device);
        std::printf("=== %s on %s (%s @ %.2f GHz) ===\n\n",
                    net.name().c_str(), phone,
                    sim::coreFamily(chipset.big_core).name.c_str(),
                    device.freq_ghz);
        const auto profile =
            sim::profileGraph(model, net, device, chipset);
        std::printf("%s\n",
                    sim::renderProfile(profile, net, 8).c_str());
    }
    std::printf("note how the budget phone is compute-bound on the\n"
                "convolutions while the flagship's time shifts toward\n"
                "memory-bound depthwise layers and dispatch overhead.\n");
    return 0;
}

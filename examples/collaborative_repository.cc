/**
 * @file
 * Scenario: operating the collaborative repository of Section V. New
 * phones stream in over time; each uploads its signature measurements
 * plus a 10% slice of the catalogue. The repository periodically
 * retrains the global model and reports its accuracy, then exports
 * the collected measurements as CSV (the paper's central database).
 */

#include <cstdio>
#include <fstream>

#include "core/collaborative.hh"
#include "core/experiment_context.hh"
#include "sim/repository.hh"

using namespace gcm;

int
main()
{
    const auto ctx = core::ExperimentContext::build();
    core::CollaborativeSimulation sim(ctx, /*signature_size=*/10);

    std::printf("agreed signature set (MIS over the catalogue):\n ");
    for (std::size_t s : sim.signature())
        std::printf(" %s", ctx.networkNames()[s].c_str());
    std::printf("\n\n");

    core::CollaborativeConfig cfg;
    cfg.max_devices = 30;
    cfg.contribution_fraction = 0.1;
    const auto steps = sim.run(cfg);

    std::printf("%-10s %-16s %s\n", "devices", "measurements",
                "global model avg R^2");
    for (const auto &step : steps) {
        if (step.num_devices % 5 != 0 && step.num_devices != 1)
            continue;
        std::printf("%-10zu %-16zu %.3f\n", step.num_devices,
                    step.total_measurements, step.avg_r2);
    }

    // Export the underlying repository the way the paper's HTTP
    // server would persist it.
    const std::string path = "collaborative_repository.csv";
    std::ofstream out(path);
    out << ctx.repo().toCsv();
    std::printf("\nfull campaign repository exported to %s (%zu rows)\n",
                path.c_str(), ctx.repo().size());

    // Round-trip check: re-import and probe one record.
    std::ifstream in(path);
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    const auto reloaded = sim::MeasurementRepository::fromCsv(text);
    std::printf("re-imported %zu rows; device 0 on %s = %.1f ms\n",
                reloaded.size(), ctx.networkNames()[0].c_str(),
                reloaded.latencyMs(0, ctx.networkNames()[0]));
    return 0;
}

/**
 * @file
 * Scenario from the paper's introduction: hardware-aware neural
 * architecture search. A NAS loop proposes candidate networks; for
 * each target phone, instead of deploying every candidate, the cost
 * model ranks them by predicted latency from the device's signature
 * measurements alone. The example verifies the chosen candidate's
 * latency against ground-truth deployment and reports the ranking
 * quality (Spearman correlation).
 */

#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/cost_model.hh"
#include "core/experiment_context.hh"
#include "dnn/analysis.hh"
#include "dnn/generator.hh"
#include "dnn/quantize.hh"
#include "sim/measurement.hh"
#include "stats/correlation.hh"

using namespace gcm;

int
main()
{
    const auto ctx = core::ExperimentContext::build();

    // Shared cost model trained once, offline.
    std::vector<std::size_t> all_devices(ctx.fleet().size());
    for (std::size_t i = 0; i < all_devices.size(); ++i)
        all_devices[i] = i;
    const auto model = core::SignatureCostModel::train(
        ctx.suite(), ctx.latencyMatrix(all_devices));

    // NAS proposes 60 fresh candidates (never measured anywhere).
    dnn::SearchSpace space;
    space.min_mmacs = 120.0;
    space.max_mmacs = 800.0;
    dnn::RandomNetworkGenerator gen(space, 20260708);
    std::vector<dnn::Graph> candidates;
    for (std::size_t i = 0; i < 60; ++i) {
        candidates.push_back(dnn::quantize(
            gen.generate("nas_candidate_" + std::to_string(i))));
    }

    // Target phones with very different microarchitectures.
    const char *targets[] = {"Redmi-Note-5-Pro", "Mate-30-Pro",
                             "Galaxy-J7"};
    for (const char *name : targets) {
        const auto &device = ctx.fleet().byName(name);
        const auto &chipset = ctx.fleet().chipsetOf(device);
        std::vector<double> sig;
        for (std::size_t s : model.signature())
            sig.push_back(ctx.latencyMs(
                static_cast<std::size_t>(device.id), s));

        // Rank candidates by predicted latency.
        std::vector<double> predicted, measured;
        sim::DeviceRuntime runtime(device, chipset,
                                   sim::LatencyModel{}, 777);
        for (const auto &cand : candidates) {
            predicted.push_back(model.predictMs(cand, sig));
            measured.push_back(runtime.measure(cand).mean_ms);
        }
        std::size_t best = 0;
        for (std::size_t i = 1; i < candidates.size(); ++i) {
            if (predicted[i] < predicted[best])
                best = i;
        }
        std::size_t truly_best = 0;
        for (std::size_t i = 1; i < candidates.size(); ++i) {
            if (measured[i] < measured[truly_best])
                truly_best = i;
        }
        const double rho = stats::spearman(predicted, measured);
        std::printf("target %-18s (%s):\n", name,
                    sim::coreFamily(chipset.big_core).name.c_str());
        std::printf("  ranking quality (Spearman pred vs measured): "
                    "%.3f over %zu candidates\n",
                    rho, candidates.size());
        std::printf("  picked %-18s predicted %6.1f ms, measured "
                    "%6.1f ms (%.0f MMACs)\n",
                    candidates[best].name().c_str(), predicted[best],
                    measured[best],
                    dnn::megaMacs(candidates[best]));
        std::printf("  oracle  %-18s measured %6.1f ms -> pick is "
                    "%.1f%% off the oracle\n\n",
                    candidates[truly_best].name().c_str(),
                    measured[truly_best],
                    100.0
                        * (measured[best] - measured[truly_best])
                        / measured[truly_best]);
    }
    std::printf("one cost model served three very different phones "
                "without a single extra on-device measurement.\n");
    return 0;
}

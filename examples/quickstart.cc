/**
 * @file
 * Quickstart: build the dataset, train a signature-based cost model,
 * and predict the latency of a network on a device the model has
 * never seen — using nothing but that device's measured latencies on
 * the 10-network signature set.
 */

#include <cstdio>

#include "core/cost_model.hh"
#include "core/experiment_context.hh"
#include "dnn/quantize.hh"
#include "sim/measurement.hh"

using namespace gcm;

int
main()
{
    // 1. Assemble the study: 118 networks (18 popular + 100 generated),
    //    a 105-phone fleet, and the simulated measurement campaign.
    const auto ctx = core::ExperimentContext::build();
    std::printf("dataset: %zu networks x %zu devices = %zu measurements\n",
                ctx.numNetworks(), ctx.fleet().size(), ctx.repo().size());

    // 2. Hold out one device entirely: the model never sees it.
    const std::size_t held_out = ctx.fleet().size() - 1;
    std::vector<std::size_t> train_devices;
    for (std::size_t d = 0; d + 1 < ctx.fleet().size(); ++d)
        train_devices.push_back(d);
    std::printf("held-out device: %s\n",
                ctx.fleet().device(held_out).model_name.c_str());

    // 3. Train the cost model (MIS signature of 10 networks + GBT).
    const auto model = core::SignatureCostModel::train(
        ctx.suite(), ctx.latencyMatrix(train_devices));
    std::printf("signature set:");
    for (const auto &name : model.signatureNames())
        std::printf(" %s", name.c_str());
    std::printf("\n\n");

    // 4. "Measure" the signature set on the new device — in the field
    //    this is the only data collection the device owner performs.
    std::vector<double> signature_latencies;
    for (std::size_t s : model.signature())
        signature_latencies.push_back(ctx.latencyMs(held_out, s));

    // 5. Predict every network on the new device and compare.
    std::printf("%-22s %12s %12s %8s\n", "network", "predicted ms",
                "measured ms", "error");
    double sum_ape = 0.0;
    std::size_t shown = 0;
    for (std::size_t n = 0; n < ctx.numNetworks(); n += 9) {
        const double pred =
            model.predictMs(ctx.suite()[n], signature_latencies);
        const double meas = ctx.latencyMs(held_out, n);
        sum_ape += std::abs(pred - meas) / meas;
        ++shown;
        std::printf("%-22s %12.1f %12.1f %7.1f%%\n",
                    ctx.networkNames()[n].c_str(), pred, meas,
                    100.0 * (pred - meas) / meas);
    }
    std::printf("\nmean abs error on the sample: %.1f%%\n",
                100.0 * sum_ape / static_cast<double>(shown));
    std::printf("the device contributed only %zu measurements.\n",
                model.signature().size());
    return 0;
}

/**
 * @file
 * Scenario: an app developer wants latency estimates for a phone
 * model that is not in the repository at all — a custom configuration
 * never seen in training. The phone runs the signature set once
 * (here: through the device simulator, standing in for the paper's
 * Android app), the ten mean latencies are uploaded, and the shared
 * cost model predicts the rest of the catalogue.
 */

#include <cstdio>
#include <vector>

#include "core/cost_model.hh"
#include "core/experiment_context.hh"
#include "sim/measurement.hh"

using namespace gcm;

int
main()
{
    const auto ctx = core::ExperimentContext::build();

    // Train on the full repository.
    std::vector<std::size_t> all_devices(ctx.fleet().size());
    for (std::size_t i = 0; i < all_devices.size(); ++i)
        all_devices[i] = i;
    const auto model = core::SignatureCostModel::train(
        ctx.suite(), ctx.latencyMatrix(all_devices));

    // A brand-new phone: mid-range chipset, shipped underclocked,
    // mediocre cooling — a configuration absent from the fleet.
    sim::DeviceSpec phone;
    phone.id = 9999;
    phone.model_name = "Prototype-X";
    phone.chipset_index = sim::chipsetIndexByName("Snapdragon-730");
    phone.freq_ghz = 2.0; // below the chipset's 2.2 GHz spec
    phone.ram_gb = 6;
    phone.hidden.thermal_sustain = 0.7;
    phone.hidden.mem_efficiency = 0.85;
    phone.hidden.os_overhead = 1.2;
    phone.hidden.silicon_bin = 1.0;
    const auto &chipset = sim::chipsetTable()[phone.chipset_index];
    std::printf("new device: %s (%s big core @ %.2f GHz, %.0f GB)\n\n",
                phone.model_name.c_str(),
                sim::coreFamily(chipset.big_core).name.c_str(),
                phone.freq_ghz, phone.ram_gb);

    // The only on-device work: run the signature set, 30 runs each.
    const sim::LatencyModel latency_model;
    sim::DeviceRuntime runtime(phone, chipset, latency_model, 321);
    std::vector<double> signature_latencies;
    std::printf("signature measurements (30-run means):\n");
    for (std::size_t s : model.signature()) {
        const auto res = runtime.measure(ctx.suite()[s]);
        signature_latencies.push_back(res.mean_ms);
        std::printf("  %-22s %8.1f ms (stddev %.1f)\n",
                    ctx.networkNames()[s].c_str(), res.mean_ms,
                    res.stddev_ms);
    }

    // Predict the popular-network catalogue; verify against the
    // simulator's ground truth for this phone.
    std::printf("\n%-22s %12s %12s %8s\n", "network", "predicted ms",
                "measured ms", "error");
    double sum_ape = 0.0;
    const std::size_t zoo_count = 18;
    for (std::size_t n = 0; n < zoo_count; ++n) {
        const double pred =
            model.predictMs(ctx.suite()[n], signature_latencies);
        const double meas = runtime.measure(ctx.suite()[n]).mean_ms;
        sum_ape += std::abs(pred - meas) / meas;
        std::printf("%-22s %12.1f %12.1f %7.1f%%\n",
                    ctx.networkNames()[n].c_str(), pred, meas,
                    100.0 * (pred - meas) / meas);
    }
    std::printf("\nmean abs error over the catalogue: %.1f%%\n",
                100.0 * sum_ape / static_cast<double>(zoo_count));
    return 0;
}

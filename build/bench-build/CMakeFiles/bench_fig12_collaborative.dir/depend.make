# Empty dependencies file for bench_fig12_collaborative.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/bench_fig12_collaborative"
  "../bench/bench_fig12_collaborative.pdb"
  "CMakeFiles/bench_fig12_collaborative.dir/bench_fig12_collaborative.cc.o"
  "CMakeFiles/bench_fig12_collaborative.dir/bench_fig12_collaborative.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_collaborative.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "../bench/bench_fig11_signature_size"
  "../bench/bench_fig11_signature_size.pdb"
  "CMakeFiles/bench_fig11_signature_size.dir/bench_fig11_signature_size.cc.o"
  "CMakeFiles/bench_fig11_signature_size.dir/bench_fig11_signature_size.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_signature_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

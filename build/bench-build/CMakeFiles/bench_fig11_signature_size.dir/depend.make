# Empty dependencies file for bench_fig11_signature_size.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for bench_fig10_random_variation.
# This may be replaced when dependencies are built.

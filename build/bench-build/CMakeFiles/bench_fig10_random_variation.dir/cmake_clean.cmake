file(REMOVE_RECURSE
  "../bench/bench_fig10_random_variation"
  "../bench/bench_fig10_random_variation.pdb"
  "CMakeFiles/bench_fig10_random_variation.dir/bench_fig10_random_variation.cc.o"
  "CMakeFiles/bench_fig10_random_variation.dir/bench_fig10_random_variation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_random_variation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "../bench/bench_fig8_static_features"
  "../bench/bench_fig8_static_features.pdb"
  "CMakeFiles/bench_fig8_static_features.dir/bench_fig8_static_features.cc.o"
  "CMakeFiles/bench_fig8_static_features.dir/bench_fig8_static_features.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_static_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_fig8_static_features.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for bench_fig9_signature_methods.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/bench_fig9_signature_methods"
  "../bench/bench_fig9_signature_methods.pdb"
  "CMakeFiles/bench_fig9_signature_methods.dir/bench_fig9_signature_methods.cc.o"
  "CMakeFiles/bench_fig9_signature_methods.dir/bench_fig9_signature_methods.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_signature_methods.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_fig4_device_clusters.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/bench_fig4_device_clusters"
  "../bench/bench_fig4_device_clusters.pdb"
  "CMakeFiles/bench_fig4_device_clusters.dir/bench_fig4_device_clusters.cc.o"
  "CMakeFiles/bench_fig4_device_clusters.dir/bench_fig4_device_clusters.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_device_clusters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

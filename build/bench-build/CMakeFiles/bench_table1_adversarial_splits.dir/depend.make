# Empty dependencies file for bench_table1_adversarial_splits.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/bench_table1_adversarial_splits"
  "../bench/bench_table1_adversarial_splits.pdb"
  "CMakeFiles/bench_table1_adversarial_splits.dir/bench_table1_adversarial_splits.cc.o"
  "CMakeFiles/bench_table1_adversarial_splits.dir/bench_table1_adversarial_splits.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_adversarial_splits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "../bench/bench_fig3_cpu_histogram"
  "../bench/bench_fig3_cpu_histogram.pdb"
  "CMakeFiles/bench_fig3_cpu_histogram.dir/bench_fig3_cpu_histogram.cc.o"
  "CMakeFiles/bench_fig3_cpu_histogram.dir/bench_fig3_cpu_histogram.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_cpu_histogram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

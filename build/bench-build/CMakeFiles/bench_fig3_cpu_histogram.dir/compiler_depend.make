# Empty compiler generated dependencies file for bench_fig3_cpu_histogram.
# This may be replaced when dependencies are built.

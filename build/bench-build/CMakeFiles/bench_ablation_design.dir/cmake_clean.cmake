file(REMOVE_RECURSE
  "../bench/bench_ablation_design"
  "../bench/bench_ablation_design.pdb"
  "CMakeFiles/bench_ablation_design.dir/bench_ablation_design.cc.o"
  "CMakeFiles/bench_ablation_design.dir/bench_ablation_design.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_design.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "../bench/bench_micro_perf"
  "../bench/bench_micro_perf.pdb"
  "CMakeFiles/bench_micro_perf.dir/bench_micro_perf.cc.o"
  "CMakeFiles/bench_micro_perf.dir/bench_micro_perf.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "../bench/bench_fig6_cluster_overlap"
  "../bench/bench_fig6_cluster_overlap.pdb"
  "CMakeFiles/bench_fig6_cluster_overlap.dir/bench_fig6_cluster_overlap.cc.o"
  "CMakeFiles/bench_fig6_cluster_overlap.dir/bench_fig6_cluster_overlap.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_cluster_overlap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

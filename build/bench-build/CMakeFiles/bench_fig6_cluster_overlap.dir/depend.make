# Empty dependencies file for bench_fig6_cluster_overlap.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for bench_ext_gpu_target.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/bench_ext_gpu_target"
  "../bench/bench_ext_gpu_target.pdb"
  "CMakeFiles/bench_ext_gpu_target.dir/bench_ext_gpu_target.cc.o"
  "CMakeFiles/bench_ext_gpu_target.dir/bench_ext_gpu_target.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_gpu_target.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

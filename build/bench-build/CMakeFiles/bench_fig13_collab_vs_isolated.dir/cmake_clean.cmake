file(REMOVE_RECURSE
  "../bench/bench_fig13_collab_vs_isolated"
  "../bench/bench_fig13_collab_vs_isolated.pdb"
  "CMakeFiles/bench_fig13_collab_vs_isolated.dir/bench_fig13_collab_vs_isolated.cc.o"
  "CMakeFiles/bench_fig13_collab_vs_isolated.dir/bench_fig13_collab_vs_isolated.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_collab_vs_isolated.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

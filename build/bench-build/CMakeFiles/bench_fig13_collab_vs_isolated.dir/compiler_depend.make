# Empty compiler generated dependencies file for bench_fig13_collab_vs_isolated.
# This may be replaced when dependencies are built.

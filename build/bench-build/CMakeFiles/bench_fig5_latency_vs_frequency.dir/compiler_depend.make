# Empty compiler generated dependencies file for bench_fig5_latency_vs_frequency.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/bench_fig5_latency_vs_frequency"
  "../bench/bench_fig5_latency_vs_frequency.pdb"
  "CMakeFiles/bench_fig5_latency_vs_frequency.dir/bench_fig5_latency_vs_frequency.cc.o"
  "CMakeFiles/bench_fig5_latency_vs_frequency.dir/bench_fig5_latency_vs_frequency.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_latency_vs_frequency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "../bench/bench_fig2_flops"
  "../bench/bench_fig2_flops.pdb"
  "CMakeFiles/bench_fig2_flops.dir/bench_fig2_flops.cc.o"
  "CMakeFiles/bench_fig2_flops.dir/bench_fig2_flops.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_flops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_fig2_flops.
# This may be replaced when dependencies are built.

# Empty dependencies file for gcm_util.
# This may be replaced when dependencies are built.

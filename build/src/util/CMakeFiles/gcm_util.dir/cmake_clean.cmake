file(REMOVE_RECURSE
  "CMakeFiles/gcm_util.dir/csv.cc.o"
  "CMakeFiles/gcm_util.dir/csv.cc.o.d"
  "CMakeFiles/gcm_util.dir/error.cc.o"
  "CMakeFiles/gcm_util.dir/error.cc.o.d"
  "CMakeFiles/gcm_util.dir/rng.cc.o"
  "CMakeFiles/gcm_util.dir/rng.cc.o.d"
  "CMakeFiles/gcm_util.dir/table.cc.o"
  "CMakeFiles/gcm_util.dir/table.cc.o.d"
  "libgcm_util.a"
  "libgcm_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gcm_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

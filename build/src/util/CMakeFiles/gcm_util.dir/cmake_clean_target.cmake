file(REMOVE_RECURSE
  "libgcm_util.a"
)

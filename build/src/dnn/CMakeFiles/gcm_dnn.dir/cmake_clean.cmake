file(REMOVE_RECURSE
  "CMakeFiles/gcm_dnn.dir/analysis.cc.o"
  "CMakeFiles/gcm_dnn.dir/analysis.cc.o.d"
  "CMakeFiles/gcm_dnn.dir/generator.cc.o"
  "CMakeFiles/gcm_dnn.dir/generator.cc.o.d"
  "CMakeFiles/gcm_dnn.dir/graph.cc.o"
  "CMakeFiles/gcm_dnn.dir/graph.cc.o.d"
  "CMakeFiles/gcm_dnn.dir/op.cc.o"
  "CMakeFiles/gcm_dnn.dir/op.cc.o.d"
  "CMakeFiles/gcm_dnn.dir/quantize.cc.o"
  "CMakeFiles/gcm_dnn.dir/quantize.cc.o.d"
  "CMakeFiles/gcm_dnn.dir/serialize.cc.o"
  "CMakeFiles/gcm_dnn.dir/serialize.cc.o.d"
  "CMakeFiles/gcm_dnn.dir/zoo.cc.o"
  "CMakeFiles/gcm_dnn.dir/zoo.cc.o.d"
  "libgcm_dnn.a"
  "libgcm_dnn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gcm_dnn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libgcm_dnn.a"
)

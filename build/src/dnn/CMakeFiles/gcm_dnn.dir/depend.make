# Empty dependencies file for gcm_dnn.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dnn/analysis.cc" "src/dnn/CMakeFiles/gcm_dnn.dir/analysis.cc.o" "gcc" "src/dnn/CMakeFiles/gcm_dnn.dir/analysis.cc.o.d"
  "/root/repo/src/dnn/generator.cc" "src/dnn/CMakeFiles/gcm_dnn.dir/generator.cc.o" "gcc" "src/dnn/CMakeFiles/gcm_dnn.dir/generator.cc.o.d"
  "/root/repo/src/dnn/graph.cc" "src/dnn/CMakeFiles/gcm_dnn.dir/graph.cc.o" "gcc" "src/dnn/CMakeFiles/gcm_dnn.dir/graph.cc.o.d"
  "/root/repo/src/dnn/op.cc" "src/dnn/CMakeFiles/gcm_dnn.dir/op.cc.o" "gcc" "src/dnn/CMakeFiles/gcm_dnn.dir/op.cc.o.d"
  "/root/repo/src/dnn/quantize.cc" "src/dnn/CMakeFiles/gcm_dnn.dir/quantize.cc.o" "gcc" "src/dnn/CMakeFiles/gcm_dnn.dir/quantize.cc.o.d"
  "/root/repo/src/dnn/serialize.cc" "src/dnn/CMakeFiles/gcm_dnn.dir/serialize.cc.o" "gcc" "src/dnn/CMakeFiles/gcm_dnn.dir/serialize.cc.o.d"
  "/root/repo/src/dnn/zoo.cc" "src/dnn/CMakeFiles/gcm_dnn.dir/zoo.cc.o" "gcc" "src/dnn/CMakeFiles/gcm_dnn.dir/zoo.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/gcm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty dependencies file for gcm_stats.
# This may be replaced when dependencies are built.

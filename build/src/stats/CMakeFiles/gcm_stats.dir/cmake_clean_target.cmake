file(REMOVE_RECURSE
  "libgcm_stats.a"
)

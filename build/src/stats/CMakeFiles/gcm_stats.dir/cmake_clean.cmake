file(REMOVE_RECURSE
  "CMakeFiles/gcm_stats.dir/correlation.cc.o"
  "CMakeFiles/gcm_stats.dir/correlation.cc.o.d"
  "CMakeFiles/gcm_stats.dir/descriptive.cc.o"
  "CMakeFiles/gcm_stats.dir/descriptive.cc.o.d"
  "CMakeFiles/gcm_stats.dir/kmeans.cc.o"
  "CMakeFiles/gcm_stats.dir/kmeans.cc.o.d"
  "CMakeFiles/gcm_stats.dir/linalg.cc.o"
  "CMakeFiles/gcm_stats.dir/linalg.cc.o.d"
  "CMakeFiles/gcm_stats.dir/mutual_info.cc.o"
  "CMakeFiles/gcm_stats.dir/mutual_info.cc.o.d"
  "libgcm_stats.a"
  "libgcm_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gcm_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

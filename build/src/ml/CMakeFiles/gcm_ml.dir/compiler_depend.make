# Empty compiler generated dependencies file for gcm_ml.
# This may be replaced when dependencies are built.

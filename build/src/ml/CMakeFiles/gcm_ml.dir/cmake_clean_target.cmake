file(REMOVE_RECURSE
  "libgcm_ml.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/binning.cc" "src/ml/CMakeFiles/gcm_ml.dir/binning.cc.o" "gcc" "src/ml/CMakeFiles/gcm_ml.dir/binning.cc.o.d"
  "/root/repo/src/ml/dataset.cc" "src/ml/CMakeFiles/gcm_ml.dir/dataset.cc.o" "gcc" "src/ml/CMakeFiles/gcm_ml.dir/dataset.cc.o.d"
  "/root/repo/src/ml/gbt.cc" "src/ml/CMakeFiles/gcm_ml.dir/gbt.cc.o" "gcc" "src/ml/CMakeFiles/gcm_ml.dir/gbt.cc.o.d"
  "/root/repo/src/ml/knn.cc" "src/ml/CMakeFiles/gcm_ml.dir/knn.cc.o" "gcc" "src/ml/CMakeFiles/gcm_ml.dir/knn.cc.o.d"
  "/root/repo/src/ml/linear.cc" "src/ml/CMakeFiles/gcm_ml.dir/linear.cc.o" "gcc" "src/ml/CMakeFiles/gcm_ml.dir/linear.cc.o.d"
  "/root/repo/src/ml/metrics.cc" "src/ml/CMakeFiles/gcm_ml.dir/metrics.cc.o" "gcc" "src/ml/CMakeFiles/gcm_ml.dir/metrics.cc.o.d"
  "/root/repo/src/ml/mlp.cc" "src/ml/CMakeFiles/gcm_ml.dir/mlp.cc.o" "gcc" "src/ml/CMakeFiles/gcm_ml.dir/mlp.cc.o.d"
  "/root/repo/src/ml/random_forest.cc" "src/ml/CMakeFiles/gcm_ml.dir/random_forest.cc.o" "gcc" "src/ml/CMakeFiles/gcm_ml.dir/random_forest.cc.o.d"
  "/root/repo/src/ml/tree.cc" "src/ml/CMakeFiles/gcm_ml.dir/tree.cc.o" "gcc" "src/ml/CMakeFiles/gcm_ml.dir/tree.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/gcm_util.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/gcm_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/gcm_ml.dir/binning.cc.o"
  "CMakeFiles/gcm_ml.dir/binning.cc.o.d"
  "CMakeFiles/gcm_ml.dir/dataset.cc.o"
  "CMakeFiles/gcm_ml.dir/dataset.cc.o.d"
  "CMakeFiles/gcm_ml.dir/gbt.cc.o"
  "CMakeFiles/gcm_ml.dir/gbt.cc.o.d"
  "CMakeFiles/gcm_ml.dir/knn.cc.o"
  "CMakeFiles/gcm_ml.dir/knn.cc.o.d"
  "CMakeFiles/gcm_ml.dir/linear.cc.o"
  "CMakeFiles/gcm_ml.dir/linear.cc.o.d"
  "CMakeFiles/gcm_ml.dir/metrics.cc.o"
  "CMakeFiles/gcm_ml.dir/metrics.cc.o.d"
  "CMakeFiles/gcm_ml.dir/mlp.cc.o"
  "CMakeFiles/gcm_ml.dir/mlp.cc.o.d"
  "CMakeFiles/gcm_ml.dir/random_forest.cc.o"
  "CMakeFiles/gcm_ml.dir/random_forest.cc.o.d"
  "CMakeFiles/gcm_ml.dir/tree.cc.o"
  "CMakeFiles/gcm_ml.dir/tree.cc.o.d"
  "libgcm_ml.a"
  "libgcm_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gcm_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libgcm_sim.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/campaign.cc" "src/sim/CMakeFiles/gcm_sim.dir/campaign.cc.o" "gcc" "src/sim/CMakeFiles/gcm_sim.dir/campaign.cc.o.d"
  "/root/repo/src/sim/chipset.cc" "src/sim/CMakeFiles/gcm_sim.dir/chipset.cc.o" "gcc" "src/sim/CMakeFiles/gcm_sim.dir/chipset.cc.o.d"
  "/root/repo/src/sim/device.cc" "src/sim/CMakeFiles/gcm_sim.dir/device.cc.o" "gcc" "src/sim/CMakeFiles/gcm_sim.dir/device.cc.o.d"
  "/root/repo/src/sim/latency_model.cc" "src/sim/CMakeFiles/gcm_sim.dir/latency_model.cc.o" "gcc" "src/sim/CMakeFiles/gcm_sim.dir/latency_model.cc.o.d"
  "/root/repo/src/sim/measurement.cc" "src/sim/CMakeFiles/gcm_sim.dir/measurement.cc.o" "gcc" "src/sim/CMakeFiles/gcm_sim.dir/measurement.cc.o.d"
  "/root/repo/src/sim/profiler.cc" "src/sim/CMakeFiles/gcm_sim.dir/profiler.cc.o" "gcc" "src/sim/CMakeFiles/gcm_sim.dir/profiler.cc.o.d"
  "/root/repo/src/sim/repository.cc" "src/sim/CMakeFiles/gcm_sim.dir/repository.cc.o" "gcc" "src/sim/CMakeFiles/gcm_sim.dir/repository.cc.o.d"
  "/root/repo/src/sim/uarch.cc" "src/sim/CMakeFiles/gcm_sim.dir/uarch.cc.o" "gcc" "src/sim/CMakeFiles/gcm_sim.dir/uarch.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/gcm_util.dir/DependInfo.cmake"
  "/root/repo/build/src/dnn/CMakeFiles/gcm_dnn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

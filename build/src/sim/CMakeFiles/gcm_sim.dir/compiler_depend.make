# Empty compiler generated dependencies file for gcm_sim.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/gcm_sim.dir/campaign.cc.o"
  "CMakeFiles/gcm_sim.dir/campaign.cc.o.d"
  "CMakeFiles/gcm_sim.dir/chipset.cc.o"
  "CMakeFiles/gcm_sim.dir/chipset.cc.o.d"
  "CMakeFiles/gcm_sim.dir/device.cc.o"
  "CMakeFiles/gcm_sim.dir/device.cc.o.d"
  "CMakeFiles/gcm_sim.dir/latency_model.cc.o"
  "CMakeFiles/gcm_sim.dir/latency_model.cc.o.d"
  "CMakeFiles/gcm_sim.dir/measurement.cc.o"
  "CMakeFiles/gcm_sim.dir/measurement.cc.o.d"
  "CMakeFiles/gcm_sim.dir/profiler.cc.o"
  "CMakeFiles/gcm_sim.dir/profiler.cc.o.d"
  "CMakeFiles/gcm_sim.dir/repository.cc.o"
  "CMakeFiles/gcm_sim.dir/repository.cc.o.d"
  "CMakeFiles/gcm_sim.dir/uarch.cc.o"
  "CMakeFiles/gcm_sim.dir/uarch.cc.o.d"
  "libgcm_sim.a"
  "libgcm_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gcm_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/collaborative.cc" "src/core/CMakeFiles/gcm_core.dir/collaborative.cc.o" "gcc" "src/core/CMakeFiles/gcm_core.dir/collaborative.cc.o.d"
  "/root/repo/src/core/cost_model.cc" "src/core/CMakeFiles/gcm_core.dir/cost_model.cc.o" "gcc" "src/core/CMakeFiles/gcm_core.dir/cost_model.cc.o.d"
  "/root/repo/src/core/cross_validation.cc" "src/core/CMakeFiles/gcm_core.dir/cross_validation.cc.o" "gcc" "src/core/CMakeFiles/gcm_core.dir/cross_validation.cc.o.d"
  "/root/repo/src/core/evaluation.cc" "src/core/CMakeFiles/gcm_core.dir/evaluation.cc.o" "gcc" "src/core/CMakeFiles/gcm_core.dir/evaluation.cc.o.d"
  "/root/repo/src/core/experiment_context.cc" "src/core/CMakeFiles/gcm_core.dir/experiment_context.cc.o" "gcc" "src/core/CMakeFiles/gcm_core.dir/experiment_context.cc.o.d"
  "/root/repo/src/core/hw_features.cc" "src/core/CMakeFiles/gcm_core.dir/hw_features.cc.o" "gcc" "src/core/CMakeFiles/gcm_core.dir/hw_features.cc.o.d"
  "/root/repo/src/core/net_encoder.cc" "src/core/CMakeFiles/gcm_core.dir/net_encoder.cc.o" "gcc" "src/core/CMakeFiles/gcm_core.dir/net_encoder.cc.o.d"
  "/root/repo/src/core/signature.cc" "src/core/CMakeFiles/gcm_core.dir/signature.cc.o" "gcc" "src/core/CMakeFiles/gcm_core.dir/signature.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/gcm_util.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/gcm_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/gcm_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/dnn/CMakeFiles/gcm_dnn.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/gcm_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

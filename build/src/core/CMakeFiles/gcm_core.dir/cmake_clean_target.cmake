file(REMOVE_RECURSE
  "libgcm_core.a"
)

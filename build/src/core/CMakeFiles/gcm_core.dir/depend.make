# Empty dependencies file for gcm_core.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/gcm_core.dir/collaborative.cc.o"
  "CMakeFiles/gcm_core.dir/collaborative.cc.o.d"
  "CMakeFiles/gcm_core.dir/cost_model.cc.o"
  "CMakeFiles/gcm_core.dir/cost_model.cc.o.d"
  "CMakeFiles/gcm_core.dir/cross_validation.cc.o"
  "CMakeFiles/gcm_core.dir/cross_validation.cc.o.d"
  "CMakeFiles/gcm_core.dir/evaluation.cc.o"
  "CMakeFiles/gcm_core.dir/evaluation.cc.o.d"
  "CMakeFiles/gcm_core.dir/experiment_context.cc.o"
  "CMakeFiles/gcm_core.dir/experiment_context.cc.o.d"
  "CMakeFiles/gcm_core.dir/hw_features.cc.o"
  "CMakeFiles/gcm_core.dir/hw_features.cc.o.d"
  "CMakeFiles/gcm_core.dir/net_encoder.cc.o"
  "CMakeFiles/gcm_core.dir/net_encoder.cc.o.d"
  "CMakeFiles/gcm_core.dir/signature.cc.o"
  "CMakeFiles/gcm_core.dir/signature.cc.o.d"
  "libgcm_core.a"
  "libgcm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gcm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

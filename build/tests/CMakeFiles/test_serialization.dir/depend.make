# Empty dependencies file for test_serialization.
# This may be replaced when dependencies are built.

# Empty dependencies file for test_measurement.
# This may be replaced when dependencies are built.

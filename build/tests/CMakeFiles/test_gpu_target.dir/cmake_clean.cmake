file(REMOVE_RECURSE
  "CMakeFiles/test_gpu_target.dir/test_gpu_target.cc.o"
  "CMakeFiles/test_gpu_target.dir/test_gpu_target.cc.o.d"
  "test_gpu_target"
  "test_gpu_target.pdb"
  "test_gpu_target[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gpu_target.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

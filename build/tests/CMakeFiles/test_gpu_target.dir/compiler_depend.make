# Empty compiler generated dependencies file for test_gpu_target.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_repository.dir/test_repository.cc.o"
  "CMakeFiles/test_repository.dir/test_repository.cc.o.d"
  "test_repository"
  "test_repository.pdb"
  "test_repository[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_repository.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_zoo.dir/test_zoo.cc.o"
  "CMakeFiles/test_zoo.dir/test_zoo.cc.o.d"
  "test_zoo"
  "test_zoo.pdb"
  "test_zoo[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_zoo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for test_gbt.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_gbt.dir/test_gbt.cc.o"
  "CMakeFiles/test_gbt.dir/test_gbt.cc.o.d"
  "test_gbt"
  "test_gbt.pdb"
  "test_gbt[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gbt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

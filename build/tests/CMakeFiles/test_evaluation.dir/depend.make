# Empty dependencies file for test_evaluation.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_evaluation.dir/test_evaluation.cc.o"
  "CMakeFiles/test_evaluation.dir/test_evaluation.cc.o.d"
  "test_evaluation"
  "test_evaluation.pdb"
  "test_evaluation[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_evaluation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

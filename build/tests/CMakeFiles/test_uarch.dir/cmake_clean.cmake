file(REMOVE_RECURSE
  "CMakeFiles/test_uarch.dir/test_uarch.cc.o"
  "CMakeFiles/test_uarch.dir/test_uarch.cc.o.d"
  "test_uarch"
  "test_uarch.pdb"
  "test_uarch[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_uarch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for test_uarch.
# This may be replaced when dependencies are built.

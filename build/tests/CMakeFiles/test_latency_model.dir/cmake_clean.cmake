file(REMOVE_RECURSE
  "CMakeFiles/test_latency_model.dir/test_latency_model.cc.o"
  "CMakeFiles/test_latency_model.dir/test_latency_model.cc.o.d"
  "test_latency_model"
  "test_latency_model.pdb"
  "test_latency_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_latency_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_kmeans.dir/test_kmeans.cc.o"
  "CMakeFiles/test_kmeans.dir/test_kmeans.cc.o.d"
  "test_kmeans"
  "test_kmeans.pdb"
  "test_kmeans[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kmeans.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

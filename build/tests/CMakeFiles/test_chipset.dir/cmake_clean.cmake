file(REMOVE_RECURSE
  "CMakeFiles/test_chipset.dir/test_chipset.cc.o"
  "CMakeFiles/test_chipset.dir/test_chipset.cc.o.d"
  "test_chipset"
  "test_chipset.pdb"
  "test_chipset[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_chipset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

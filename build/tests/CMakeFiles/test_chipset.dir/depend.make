# Empty dependencies file for test_chipset.
# This may be replaced when dependencies are built.

# Empty dependencies file for test_binning.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_binning.dir/test_binning.cc.o"
  "CMakeFiles/test_binning.dir/test_binning.cc.o.d"
  "test_binning"
  "test_binning.pdb"
  "test_binning[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_binning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

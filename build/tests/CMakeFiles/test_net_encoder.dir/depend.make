# Empty dependencies file for test_net_encoder.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_net_encoder.dir/test_net_encoder.cc.o"
  "CMakeFiles/test_net_encoder.dir/test_net_encoder.cc.o.d"
  "test_net_encoder"
  "test_net_encoder.pdb"
  "test_net_encoder[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_net_encoder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

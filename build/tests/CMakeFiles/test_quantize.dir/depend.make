# Empty dependencies file for test_quantize.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_quantize.dir/test_quantize.cc.o"
  "CMakeFiles/test_quantize.dir/test_quantize.cc.o.d"
  "test_quantize"
  "test_quantize.pdb"
  "test_quantize[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_quantize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

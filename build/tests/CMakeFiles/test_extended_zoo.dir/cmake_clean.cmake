file(REMOVE_RECURSE
  "CMakeFiles/test_extended_zoo.dir/test_extended_zoo.cc.o"
  "CMakeFiles/test_extended_zoo.dir/test_extended_zoo.cc.o.d"
  "test_extended_zoo"
  "test_extended_zoo.pdb"
  "test_extended_zoo[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_extended_zoo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for test_extended_zoo.
# This may be replaced when dependencies are built.

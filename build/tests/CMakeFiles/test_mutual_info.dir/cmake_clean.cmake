file(REMOVE_RECURSE
  "CMakeFiles/test_mutual_info.dir/test_mutual_info.cc.o"
  "CMakeFiles/test_mutual_info.dir/test_mutual_info.cc.o.d"
  "test_mutual_info"
  "test_mutual_info.pdb"
  "test_mutual_info[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mutual_info.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

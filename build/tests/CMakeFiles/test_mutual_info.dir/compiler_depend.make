# Empty compiler generated dependencies file for test_mutual_info.
# This may be replaced when dependencies are built.

# Empty dependencies file for test_hw_features.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_hw_features.dir/test_hw_features.cc.o"
  "CMakeFiles/test_hw_features.dir/test_hw_features.cc.o.d"
  "test_hw_features"
  "test_hw_features.pdb"
  "test_hw_features[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hw_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

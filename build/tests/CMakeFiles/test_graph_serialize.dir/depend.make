# Empty dependencies file for test_graph_serialize.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_graph_serialize.dir/test_graph_serialize.cc.o"
  "CMakeFiles/test_graph_serialize.dir/test_graph_serialize.cc.o.d"
  "test_graph_serialize"
  "test_graph_serialize.pdb"
  "test_graph_serialize[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_graph_serialize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

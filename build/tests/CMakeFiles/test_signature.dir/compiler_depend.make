# Empty compiler generated dependencies file for test_signature.
# This may be replaced when dependencies are built.

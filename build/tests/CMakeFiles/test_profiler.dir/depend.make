# Empty dependencies file for test_profiler.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_profiler.dir/test_profiler.cc.o"
  "CMakeFiles/test_profiler.dir/test_profiler.cc.o.d"
  "test_profiler"
  "test_profiler.pdb"
  "test_profiler[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_profiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

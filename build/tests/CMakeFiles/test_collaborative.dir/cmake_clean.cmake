file(REMOVE_RECURSE
  "CMakeFiles/test_collaborative.dir/test_collaborative.cc.o"
  "CMakeFiles/test_collaborative.dir/test_collaborative.cc.o.d"
  "test_collaborative"
  "test_collaborative.pdb"
  "test_collaborative[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_collaborative.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

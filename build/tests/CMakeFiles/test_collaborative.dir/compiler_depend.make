# Empty compiler generated dependencies file for test_collaborative.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for gcm.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/gcm.dir/gcm.cc.o"
  "CMakeFiles/gcm.dir/gcm.cc.o.d"
  "gcm"
  "gcm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gcm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

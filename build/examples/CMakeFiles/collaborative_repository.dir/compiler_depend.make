# Empty compiler generated dependencies file for collaborative_repository.
# This may be replaced when dependencies are built.

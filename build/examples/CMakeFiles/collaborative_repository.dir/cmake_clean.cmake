file(REMOVE_RECURSE
  "CMakeFiles/collaborative_repository.dir/collaborative_repository.cc.o"
  "CMakeFiles/collaborative_repository.dir/collaborative_repository.cc.o.d"
  "collaborative_repository"
  "collaborative_repository.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/collaborative_repository.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/profile_network.dir/profile_network.cc.o"
  "CMakeFiles/profile_network.dir/profile_network.cc.o.d"
  "profile_network"
  "profile_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/profile_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

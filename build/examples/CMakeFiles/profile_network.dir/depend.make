# Empty dependencies file for profile_network.
# This may be replaced when dependencies are built.

# Empty dependencies file for nas_latency_filter.
# This may be replaced when dependencies are built.

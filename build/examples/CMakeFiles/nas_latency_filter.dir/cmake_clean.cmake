file(REMOVE_RECURSE
  "CMakeFiles/nas_latency_filter.dir/nas_latency_filter.cc.o"
  "CMakeFiles/nas_latency_filter.dir/nas_latency_filter.cc.o.d"
  "nas_latency_filter"
  "nas_latency_filter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nas_latency_filter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/characterize_new_device.dir/characterize_new_device.cc.o"
  "CMakeFiles/characterize_new_device.dir/characterize_new_device.cc.o.d"
  "characterize_new_device"
  "characterize_new_device.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/characterize_new_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

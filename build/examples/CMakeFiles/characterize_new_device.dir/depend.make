# Empty dependencies file for characterize_new_device.
# This may be replaced when dependencies are built.

/**
 * @file
 * PredictionService — resolves typed serve requests against the
 * active registry snapshot through the sharded prediction cache.
 *
 * A request names its network (zoo name, or an inline gcm-graph v1
 * text) and its device (a name in the service's device table, or a
 * raw signature-latency vector). Resolution turns that into
 * (deployment graph, signature vector, cache key); prediction then
 * either hits the cache or computes through the pinned snapshot's
 * SignatureCostModel.
 *
 * Determinism contract (the serving extension of the PR-2 rule):
 * processBatch() output is bit-identical at any thread count.
 *  - The batch pins one registry snapshot up front, so a concurrent
 *    hot-swap lands between batches, never inside one.
 *  - Resolution and every cache probe/update run serially in request
 *    order; only pure work for the batch's unique missing keys fans
 *    out: encoding one task per unique non-memoized graph (slots in
 *    first-appearance order), row building (head lookup + anchor) one
 *    task per key, then one blocked FlatEnsemble::predictBatch over
 *    the whole row matrix — itself bit-identical at any thread count
 *    by the ml/flat_ensemble.hh contract.
 *  - Duplicate keys within a batch are coalesced into one compute
 *    (counted by the cache as `coalesced`), so results (and cache
 *    contents) cannot depend on a race between identical requests.
 * The cache is version-keyed and stores exact doubles, so a cache
 * hit returns the byte-identical value the cold path produced.
 */

#ifndef GCM_SERVE_SERVICE_HH
#define GCM_SERVE_SERVICE_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "dnn/graph.hh"
#include "ml/flat_ensemble.hh"
#include "serve/cache.hh"
#include "serve/registry.hh"

namespace gcm::serve
{

/**
 * Request priority class. Interactive traffic ("how fast is this
 * network on my phone") shares the front end with bulk NAS candidate
 * streams (src/search); the front end keeps one bounded queue per
 * class and always drains interactive first.
 */
enum class Priority
{
    Interactive,
    Bulk,
};

const char *priorityName(Priority p);

/**
 * Which rung of the degradation ladder produced a response (see
 * frontend.hh). Single-loop serving (protocol.cc RequestLoop) only
 * ever produces Full and Shed.
 */
enum class ServeTier
{
    Full,       // active snapshot via PredictionService
    Stale,      // pinned previous registry version
    Analytical, // model-free roofline estimate (AnalyticalEstimator)
    Shed,       // rejected with a structured `overloaded` response
};

const char *serveTierName(ServeTier tier);

/** One parsed gcm-serve/v1 request (see protocol.hh for the wire). */
struct ServeRequest
{
    std::string id;
    Priority priority = Priority::Interactive;
    /** Zoo network name; empty when graph_text is used. */
    std::string network;
    /** Inline gcm-graph v1 document; empty when network is used. */
    std::string graph_text;
    /**
     * In-process callers only (not expressible on the wire): an
     * already-built graph to evaluate directly, skipping
     * serialization. The graph must outlive the processBatch call.
     * Used by the architecture search (src/search), whose candidate
     * stream is exactly this shape. Mutually exclusive with both
     * `network` and `graph_text`. Non-Int8 graphs are quantized per
     * request; pass deployment graphs to avoid that cost.
     */
    const dnn::Graph *graph_ptr = nullptr;
    /** Device-table name; empty when a raw signature is given. */
    std::string device;
    /** Raw signature latencies (ms); valid when has_signature. */
    std::vector<double> signature;
    bool has_signature = false;
};

/** Machine-readable error categories of the serve protocol. */
enum class ServeErrorCode
{
    BadRequest,     // malformed JSON / schema violation / bad values
    UnknownNetwork, // network name not in the zoo
    UnknownDevice,  // device name not in the device table
    BadGraph,       // inline graph failed to parse/verify
    NoModel,        // registry has no active servable snapshot
    Overloaded,     // admission queue full (emitted by RequestLoop)
    Internal,       // prediction failed after admission
};

const char *serveErrorCodeName(ServeErrorCode code);

/** One serve response; rendered to the wire by protocol.cc. */
struct ServeResponse
{
    std::string id;
    bool ok = false;
    double latency_ms = 0.0;
    ModelRegistry::Version model_version = 0;
    ServeErrorCode error_code = ServeErrorCode::BadRequest;
    std::string error_message;
    /** Ladder rung that produced this response (wire: `degraded`). */
    ServeTier tier = ServeTier::Full;
    /** Shed context: queue depth observed at rejection time. */
    std::size_t queue_depth = 0;
    /** Shed context: suggested client back-off (simulated ms). */
    double retry_after_ms = 0.0;

    static ServeResponse
    failure(std::string id, ServeErrorCode code, std::string message)
    {
        ServeResponse r;
        r.id = std::move(id);
        r.error_code = code;
        r.error_message = std::move(message);
        return r;
    }
};

/** Serving-side tunables. */
struct ServiceConfig
{
    std::size_t cache_capacity = 4096;
    std::size_t cache_shards = 8;
};

class PredictionService
{
  public:
    /** Signature latencies per device name, in model signature order. */
    using DeviceTable = std::map<std::string, std::vector<double>>;

    /**
     * @param registry Model source; the service keeps a reference, so
     *        the registry must outlive it. Hot-swaps take effect at
     *        the next batch.
     * @param device_table Known devices (may be empty: requests must
     *        then carry raw signatures).
     * @param shared_cache When non-null, use this cache instead of
     *        constructing a private one — the ServerFrontEnd gives
     *        each worker its own service (processBatch is not
     *        thread-safe) but shares one cache across all of them.
     *        The cache itself is sharded and thread-safe.
     */
    PredictionService(const ModelRegistry &registry,
                      DeviceTable device_table, ServiceConfig config = {},
                      std::shared_ptr<ShardedLruCache> shared_cache = {});

    /**
     * Serve one batch against the currently active snapshot.
     * Responses are index-aligned with the requests. Never throws for
     * malformed requests — every failure becomes a structured error
     * response.
     */
    std::vector<ServeResponse>
    processBatch(const std::vector<ServeRequest> &requests);

    /**
     * Serve one batch against an explicitly pinned snapshot. The
     * front end uses this for both the full tier (pinned active) and
     * the stale tier (pinned previous version): holding the
     * shared_ptr for the batch lifetime means a concurrent rollback()
     * + retire() cannot free the snapshot under an in-flight batch.
     */
    std::vector<ServeResponse>
    processBatch(const std::vector<ServeRequest> &requests,
                 const ModelRegistry::ActiveModel &pinned);

    const ShardedLruCache &cache() const { return *cache_; }
    const DeviceTable &deviceTable() const { return device_table_; }
    const ModelRegistry &registry() const { return registry_; }

  private:
    /** Outcome of resolving one request (error_message empty = ok). */
    struct Resolved
    {
        /** Points into graph_memo_ or at owned_graph. */
        const dnn::Graph *graph = nullptr;
        /** Owner for inline graphs (memo-backed entries stay there). */
        std::unique_ptr<dnn::Graph> owned_graph;
        /**
         * Memoized encoder output for zoo networks (points into
         * graph_memo_); nullptr for inline graphs, which encode in
         * the parallel row-build phase.
         */
        const std::vector<float> *net_features = nullptr;
        std::vector<double> signature;
        CacheKey key;
        ServeErrorCode error_code = ServeErrorCode::BadRequest;
        std::string error_message;

        bool ok() const { return error_message.empty(); }
    };

    Resolved resolve(const ServeRequest &request,
                     const core::SignatureCostModel &model,
                     ModelRegistry::Version version);

    const ModelRegistry &registry_;
    DeviceTable device_table_;
    std::shared_ptr<ShardedLruCache> cache_;
    /**
     * Per zoo network: deployment graph, structural fingerprint, and
     * the encoder outputs for the model versions that last served it.
     * The zoo is a fixed finite set, so this is bounded; it lets the
     * cold path skip rebuilding, re-quantizing and — per model
     * version — re-encoding the network, which dominates cold-path
     * cost. A front-end worker alternates between the active (full
     * tier) and previous (stale tier) versions batch to batch, so a
     * couple of versions are kept per network instead of one.
     */
    struct NetworkMemo
    {
        dnn::Graph graph;
        std::uint64_t fp = 0;
        /** Encoder output per model version (small, LRU-capped). */
        std::vector<std::pair<ModelRegistry::Version,
                              std::vector<float>>>
            enc_by_version;

        const std::vector<float> *
        findEnc(ModelRegistry::Version v) const
        {
            for (const auto &e : enc_by_version)
                if (e.first == v)
                    return &e.second;
            return nullptr;
        }
    };
    std::map<std::string, NetworkMemo> graph_memo_;
    /**
     * Per-batch compute scratch, reused across batches so the cold
     * path does not reallocate (processBatch is not thread-safe
     * anyway — graph_memo_ — so plain members are fine). Sized to the
     * largest batch seen; only the first `compute.size()` slots of
     * each are meaningful in any one batch.
     */
    std::vector<float> tails_;
    /**
     * One encoder output per *unique non-memoized graph* in the
     * batch (slots assigned in first-appearance order by graph
     * fingerprint), not per compute task: an adversarial all-unique
     * candidate stream that queries one graph across many devices
     * encodes each graph once, not once per device.
     */
    std::vector<std::vector<float>> inline_enc_;
    std::vector<std::string> enc_errors_;
    std::vector<ml::FlatEnsemble::SegmentedRow> seg_rows_;
    std::vector<double> anchors_;
    std::vector<double> values_;
    std::vector<std::string> errors_;
    /** Zero head/tail stand-in for rows whose build failed. */
    std::vector<float> fallback_;
};

} // namespace gcm::serve

#endif // GCM_SERVE_SERVICE_HH

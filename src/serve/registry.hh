/**
 * @file
 * Versioned model registry for the prediction serving layer.
 *
 * A ModelSnapshot is an immutable, fully-loaded model: once published
 * it is never mutated, so request threads can keep predicting against
 * the snapshot they pinned while an operator publishes, activates or
 * rolls back other versions concurrently. The registry hands out
 * snapshots as shared_ptr<const>, which is the whole hot-swap
 * mechanism: activation replaces which pointer active() returns;
 * in-flight batches finish on the version they started with and the
 * old snapshot is freed when its last batch drops the reference.
 *
 * Snapshots are backend-agnostic. Loading sniffs the self-describing
 * header of the stream:
 *
 *   gcm-cost-model v1  -> core::SignatureCostModel (the servable kind
 *                         PredictionService requires)
 *   gcm-gbt v1         -> bare ml::GradientBoostedTrees regressor
 *   gcm-rf v1          -> bare ml::RandomForest regressor
 *
 * Bare regressors predict feature rows (predictRow) rather than
 * (network, device) queries; they exist so retraining pipelines can
 * stage any learner through the same registry/rollback machinery.
 */

#ifndef GCM_SERVE_REGISTRY_HH
#define GCM_SERVE_REGISTRY_HH

#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/cost_model.hh"
#include "ml/gbt.hh"
#include "ml/random_forest.hh"

namespace gcm::serve
{

/** Which learner a snapshot wraps. */
enum class SnapshotKind
{
    CostModel,    // end-to-end SignatureCostModel (servable)
    Gbt,          // bare gradient-boosted-trees regressor
    RandomForest, // bare random-forest regressor
};

/** Display name of a snapshot kind. */
const char *snapshotKindName(SnapshotKind kind);

/**
 * One immutable loaded model.
 *
 * Snapshot construction is where ensembles get compiled: both
 * factories flatten the wrapped ensemble into a ml::FlatEnsemble
 * (bit-identical by the ml/flat_ensemble.hh contract) before the
 * snapshot is frozen, so every published snapshot carries a ready
 * compiled engine and the serving hot path never touches the
 * node-walking training structures.
 */
class ModelSnapshot
{
  public:
    /**
     * Load a snapshot from a serialized model stream, dispatching on
     * the header magic (see file comment). Throws GcmError for
     * unrecognized or malformed content. The contained ensemble is
     * compiled before the snapshot is returned.
     */
    static ModelSnapshot fromStream(std::istream &is);

    /** Wrap (and compile) an already-constructed cost model. */
    static ModelSnapshot fromCostModel(core::SignatureCostModel model);

    SnapshotKind kind() const { return kind_; }

    /** @pre kind() == SnapshotKind::CostModel */
    const core::SignatureCostModel &costModel() const;

    /**
     * Predict one raw feature row with a bare regressor snapshot
     * (routed through the compiled ensemble).
     * @pre kind() is Gbt or RandomForest.
     */
    double predictRow(const float *x) const;

    /** The snapshot's compiled inference engine (never null). */
    const ml::FlatEnsemble &flat() const;

  private:
    ModelSnapshot() = default;

    SnapshotKind kind_ = SnapshotKind::CostModel;
    std::unique_ptr<const core::SignatureCostModel> cost_model_;
    std::unique_ptr<const ml::GradientBoostedTrees> gbt_;
    std::unique_ptr<const ml::RandomForest> forest_;
    /** Compiled form of a bare regressor (cost models own theirs). */
    std::unique_ptr<const ml::FlatEnsemble> flat_;
};

/**
 * Thread-safe registry of versioned snapshots with atomic hot-swap
 * and rollback. Versions are monotonically increasing, starting at 1;
 * version 0 means "none".
 */
class ModelRegistry
{
  public:
    using Version = std::uint64_t;

    /** The pinned (version, snapshot) pair a batch predicts against. */
    struct ActiveModel
    {
        Version version = 0;
        std::shared_ptr<const ModelSnapshot> snapshot;

        explicit operator bool() const { return snapshot != nullptr; }
    };

    /**
     * Register a snapshot and atomically make it the active version.
     * Returns the assigned version id.
     */
    Version publish(ModelSnapshot snapshot);

    /**
     * The currently active (version, snapshot) pair; {0, nullptr}
     * before the first publish. Callers pin one ActiveModel per batch
     * so every request in the batch sees one consistent model.
     */
    ActiveModel active() const;

    Version activeVersion() const;

    /** Hot-swap to a previously published version. Throws GcmError. */
    void activate(Version version);

    /**
     * Revert to the version that was active before the most recent
     * publish()/activate() swap. Throws GcmError when there is no
     * previous version to return to.
     */
    void rollback();

    /**
     * The version that was active before the most recent swap, as a
     * pinnable (version, snapshot) pair; {0, nullptr} when there is
     * none (or it has been retired). The front end's stale tier pins
     * this once per run and serves degraded responses from it.
     */
    ActiveModel previousModel() const;

    /**
     * Evict a published, non-active version from the registry. Throws
     * GcmError for unknown or currently-active versions. Holders of a
     * pinned shared_ptr (in-flight batches, the front end's stale
     * tier) keep the snapshot alive until they drop it; retire only
     * prevents new pins.
     */
    void retire(Version version);

    /** Fetch a specific version (nullptr when unknown). */
    std::shared_ptr<const ModelSnapshot> snapshot(Version version) const;

    /** All published versions, ascending. */
    std::vector<Version> versions() const;

  private:
    mutable std::mutex mu_;
    std::map<Version, std::shared_ptr<const ModelSnapshot>> snapshots_;
    Version active_ = 0;
    Version previous_ = 0;
    Version next_ = 1;
};

} // namespace gcm::serve

#endif // GCM_SERVE_REGISTRY_HH

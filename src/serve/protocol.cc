#include "serve/protocol.hh"

#include <istream>
#include <limits>
#include <ostream>
#include <sstream>

#include "util/error.hh"
#include "util/json.hh"

namespace gcm::serve
{

namespace
{

/**
 * Parse one line into `out`. Returns an empty string on success, the
 * error message otherwise. Fills out.id whenever the line was valid
 * JSON with a string id, so even schema-violating requests get their
 * id echoed in the error response.
 */
std::string
tryParseRequestLine(const std::string &line, ServeRequest &out)
{
    if (line.size() > kMaxRequestLineBytes) {
        return "request line of " + std::to_string(line.size())
               + " bytes exceeds the " ""
               + std::to_string(kMaxRequestLineBytes) + "-byte limit";
    }
    json::Value doc;
    try {
        doc = json::parseJson(line);
    } catch (const GcmError &e) {
        return e.what();
    }
    if (!doc.isObject())
        return "request must be a JSON object";
    if (doc.has("id") && doc.at("id").isString())
        out.id = doc.at("id").str;

    for (const auto &[key, value] : doc.object) {
        if (key == "id") {
            if (!value.isString())
                return "field 'id' must be a string";
        } else if (key == "network") {
            if (!value.isString() || value.str.empty())
                return "field 'network' must be a non-empty string";
            out.network = value.str;
        } else if (key == "graph") {
            if (!value.isString() || value.str.empty())
                return "field 'graph' must be a non-empty string";
            out.graph_text = value.str;
        } else if (key == "device") {
            if (!value.isString() || value.str.empty())
                return "field 'device' must be a non-empty string";
            out.device = value.str;
        } else if (key == "priority") {
            if (!value.isString())
                return "field 'priority' must be \"interactive\" or "
                       "\"bulk\"";
            if (value.str == "interactive") {
                out.priority = Priority::Interactive;
            } else if (value.str == "bulk") {
                out.priority = Priority::Bulk;
            } else {
                return "field 'priority' must be \"interactive\" or "
                       "\"bulk\"";
            }
        } else if (key == "signature") {
            if (!value.isArray())
                return "field 'signature' must be an array of numbers";
            out.signature.reserve(value.array.size());
            for (const auto &v : value.array) {
                if (!v.isNumber())
                    return "field 'signature' must contain only "
                           "numbers";
                out.signature.push_back(v.number);
            }
            out.has_signature = true;
        } else {
            return "unknown field '" + key + "'";
        }
    }
    return "";
}

} // namespace

std::string
tryParseRequest(const std::string &line, ServeRequest &out)
{
    return tryParseRequestLine(line, out);
}

ServeRequest
parseRequestLine(const std::string &line)
{
    ServeRequest request;
    const std::string err = tryParseRequestLine(line, request);
    if (!err.empty())
        fatal("gcm-serve/v1: ", err);
    return request;
}

namespace
{

std::string
formatDouble(double v)
{
    std::ostringstream num;
    num.precision(std::numeric_limits<double>::max_digits10);
    num << v;
    return num.str();
}

} // namespace

std::string
renderResponse(const ServeResponse &response)
{
    std::string out = "{\"id\": ";
    json::appendJsonString(out, response.id);
    if (response.ok) {
        out += ", \"ok\": true, \"latency_ms\": "
               + formatDouble(response.latency_ms)
               + ", \"model_version\": "
               + std::to_string(response.model_version);
    } else {
        out += ", \"ok\": false, \"error\": {\"code\": \"";
        out += serveErrorCodeName(response.error_code);
        out += "\", \"message\": ";
        json::appendJsonString(out, response.error_message);
        if (response.error_code == ServeErrorCode::Overloaded) {
            // Backpressure context: what the client is waiting behind
            // and a nominal back-off before retrying.
            out += ", \"queue_depth\": "
                   + std::to_string(response.queue_depth)
                   + ", \"retry_after_ms\": "
                   + formatDouble(response.retry_after_ms);
        }
        out += "}";
    }
    // Version gate: the `degraded` field is absent for the full tier,
    // so clients predating the ladder keep seeing unchanged lines.
    if (response.tier != ServeTier::Full) {
        out += ", \"degraded\": {\"tier\": \"";
        out += serveTierName(response.tier);
        out += "\"}";
    }
    out += "}";
    return out;
}

void
validateLoopConfig(const LoopConfig &config)
{
    if (config.batch_size == 0)
        fatal("LoopConfig: batch_size must be >= 1");
    if (config.queue_capacity < config.batch_size) {
        fatal("LoopConfig: queue_capacity (", config.queue_capacity,
              ") must be >= batch_size (", config.batch_size, ")");
    }
}

RequestLoop::RequestLoop(PredictionService &service, LoopConfig config)
    : service_(service), config_(config)
{
    validateLoopConfig(config_);
}

bool
RequestLoop::offer(std::string line)
{
    if (queue_.size() >= config_.queue_capacity)
        return false;
    queue_.push_back(std::move(line));
    return true;
}

std::string
RequestLoop::renderOverloaded(const std::string &line,
                              std::size_t queue_depth,
                              double retry_after_ms)
{
    // Best-effort id echo: a rejected line may still be valid JSON.
    std::string id;
    try {
        const json::Value doc = json::parseJson(line);
        if (doc.isObject() && doc.has("id") && doc.at("id").isString())
            id = doc.at("id").str;
    } catch (const GcmError &) {
        // Malformed line: the rejection wins over the parse error.
    }
    ServeResponse r = ServeResponse::failure(
        id, ServeErrorCode::Overloaded, "admission queue full");
    r.tier = ServeTier::Shed;
    r.queue_depth = queue_depth;
    r.retry_after_ms = retry_after_ms;
    return renderResponse(r);
}

void
RequestLoop::drainBatch(std::vector<std::string> &responses_out)
{
    const std::size_t n = std::min(config_.batch_size, queue_.size());
    if (n == 0)
        return;

    // Parse the drained lines; parse failures keep their position.
    std::vector<ServeResponse> parse_errors(n);
    std::vector<std::ptrdiff_t> slot(n, -1); // index into `requests`
    std::vector<ServeRequest> requests;
    requests.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        ServeRequest request;
        const std::string err =
            tryParseRequestLine(queue_.front(), request);
        queue_.pop_front();
        if (err.empty()) {
            slot[i] = static_cast<std::ptrdiff_t>(requests.size());
            requests.push_back(std::move(request));
        } else {
            parse_errors[i] = ServeResponse::failure(
                std::move(request.id), ServeErrorCode::BadRequest, err);
        }
    }

    const std::vector<ServeResponse> served =
        service_.processBatch(requests);
    for (std::size_t i = 0; i < n; ++i) {
        const ServeResponse &r = slot[i] >= 0
                                     ? served[static_cast<std::size_t>(
                                           slot[i])]
                                     : parse_errors[i];
        responses_out.push_back(renderResponse(r));
    }
}

void
RequestLoop::drainAll(std::vector<std::string> &responses_out)
{
    while (!queue_.empty())
        drainBatch(responses_out);
}

std::size_t
runServeLoop(PredictionService &service, std::istream &in,
             std::ostream &out, LoopConfig config)
{
    RequestLoop loop(service, config);
    std::vector<std::string> responses;
    const auto flush = [&] {
        for (const auto &r : responses)
            out << r << '\n';
        responses.clear();
    };

    std::string line;
    std::size_t consumed = 0;
    while (std::getline(in, line)) {
        ++consumed;
        if (!loop.offer(line)) {
            // Queue full: drain one batch, then shed if still full.
            loop.drainBatch(responses);
            if (!loop.offer(line)) {
                // Nominal back-off: one batch's worth of work per
                // queued batch ahead of the client.
                const double retry_ms =
                    static_cast<double>(loop.queued())
                    / static_cast<double>(config.batch_size);
                responses.push_back(RequestLoop::renderOverloaded(
                    line, loop.queued(), retry_ms));
            }
        }
        if (loop.queued() >= config.batch_size)
            loop.drainBatch(responses);
        flush();
    }
    loop.drainAll(responses);
    flush();
    out.flush();
    return consumed;
}

} // namespace gcm::serve

/**
 * @file
 * gcm-serve/v1 — line-delimited JSON serving protocol.
 *
 * Requests, one JSON object per line:
 *
 *   {"id": "r1", "network": "mobilenet_v2_1.0", "device": "Mi-9"}
 *   {"id": "r2", "graph": "gcm-graph v1\n...", "signature": [3.1, 8.2]}
 *
 * Fields: `id` (optional string, echoed back), exactly one of
 * `network` (zoo name) / `graph` (inline gcm-graph v1 document),
 * exactly one of `device` (device-table name) / `signature` (array of
 * finite positive numbers, in model signature order), and an optional
 * `priority` ("interactive", the default, or "bulk") consumed by the
 * multi-worker front end's per-class queues (frontend.hh).
 *
 * Responses, one JSON object per request line, in request order:
 *
 *   {"id": "r1", "ok": true, "latency_ms": 42.25, "model_version": 1}
 *   {"id": "r2", "ok": false, "error": {"code": "bad_request",
 *    "message": "..."}}
 *
 * Degradation tags (version-gated: the field is *absent* for tier
 * "full", so pre-ladder clients keep parsing unchanged responses):
 *
 *   {"id": "r3", "ok": true, "latency_ms": 40.5, "model_version": 1,
 *    "degraded": {"tier": "stale"}}
 *
 * Shed responses carry backpressure context inside the error object —
 * the queue depth observed at rejection and a suggested back-off:
 *
 *   {"id": "r4", "ok": false, "error": {"code": "overloaded",
 *    "message": "...", "queue_depth": 256, "retry_after_ms": 12.5},
 *    "degraded": {"tier": "shed"}}
 *
 * The response line carries no cache or timing detail, so byte-equal
 * request streams produce byte-equal response streams at any thread
 * count and any cache temperature; hit/miss accounting is observable
 * through ShardedLruCache::stats() and the serve.cache.* counters.
 *
 * Untrusted-input contract: any line — malformed JSON, unknown
 * fields, wrong types, oversized lines (> kMaxRequestLineBytes),
 * non-finite numbers — yields a structured error *response*, never an
 * exception out of the loop and never a crash.
 *
 * Admission control: RequestLoop holds a bounded FIFO of raw request
 * lines. offer() rejects once the queue is full (the caller emits the
 * "overloaded" response — explicit load shedding in the PR-4 spirit
 * of graceful degradation), and drainBatch() feeds at most one
 * micro-batch at a time into PredictionService::processBatch.
 */

#ifndef GCM_SERVE_PROTOCOL_HH
#define GCM_SERVE_PROTOCOL_HH

#include <cstddef>
#include <deque>
#include <iosfwd>
#include <string>
#include <vector>

#include "serve/service.hh"

namespace gcm::serve
{

/** Hard cap on one request line; beyond it the line is rejected. */
inline constexpr std::size_t kMaxRequestLineBytes = 1u << 20;

/**
 * Parse one request line. Throws GcmError with a human-readable
 * message for any schema violation (the loop converts that into a
 * structured "bad_request" response).
 */
ServeRequest parseRequestLine(const std::string &line);

/**
 * Non-throwing variant for the serving loops: returns an empty string
 * on success, the error message otherwise. `out.id` is filled
 * whenever the line was valid JSON carrying a string id, so even
 * schema-violating requests get their id echoed back.
 */
std::string tryParseRequest(const std::string &line, ServeRequest &out);

/** Render a response as one JSON line (no trailing newline). */
std::string renderResponse(const ServeResponse &response);

/** Micro-batching loop configuration. */
struct LoopConfig
{
    /** Requests handed to one processBatch() call. */
    std::size_t batch_size = 32;
    /** Admission-queue capacity; offers beyond it are rejected. */
    std::size_t queue_capacity = 256;
};

/** Validate loop parameters. Throws GcmError. */
void validateLoopConfig(const LoopConfig &config);

class RequestLoop
{
  public:
    RequestLoop(PredictionService &service, LoopConfig config = {});

    /**
     * Try to admit one raw request line. Returns false — and touches
     * nothing — when the queue is full; the caller must then emit an
     * "overloaded" rejection for the line.
     */
    bool offer(std::string line);

    /**
     * Drain at most one batch from the queue: parse each admitted
     * line (parse failures become error responses in place), serve
     * the parsed requests, and append one rendered response line per
     * drained request, in admission order.
     */
    void drainBatch(std::vector<std::string> &responses_out);

    /** Drain until the queue is empty. */
    void drainAll(std::vector<std::string> &responses_out);

    std::size_t queued() const { return queue_.size(); }
    const LoopConfig &config() const { return config_; }

    /**
     * The rejection line for a request that could not be admitted.
     * `queue_depth` and `retry_after_ms` become the shed response's
     * backpressure context (defaults keep legacy call sites valid).
     */
    static std::string renderOverloaded(const std::string &line,
                                        std::size_t queue_depth = 0,
                                        double retry_after_ms = 0.0);

  private:
    PredictionService &service_;
    LoopConfig config_;
    std::deque<std::string> queue_;
};

/**
 * Run the full serve loop: read request lines from `in`, admit them
 * through a RequestLoop (draining whenever a batch is ready), and
 * write one response line per request to `out`. Returns the number
 * of request lines consumed. Never throws on malformed input.
 */
std::size_t runServeLoop(PredictionService &service, std::istream &in,
                         std::ostream &out, LoopConfig config = {});

} // namespace gcm::serve

#endif // GCM_SERVE_PROTOCOL_HH

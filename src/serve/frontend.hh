/**
 * @file
 * ServerFrontEnd — multi-worker serving with backpressure, priority
 * classes and a graceful-degradation ladder (DESIGN.md §14).
 *
 * The front end owns N workers pulling micro-batches from two bounded
 * FIFO queues, one per Priority class; interactive traffic always
 * drains before bulk NAS traffic. Admission applies the degradation
 * ladder per request, keyed on the depth of its class queue:
 *
 *   depth <  soft_watermark   -> Full        (active snapshot)
 *   depth >= soft_watermark   -> Stale       (pinned previous version)
 *   depth >= hard_watermark   -> Analytical  (model-free roofline)
 *   depth >= queue_capacity   -> Shed        (structured overloaded)
 *
 * with availability adjustments: a mid-swap registry (the active
 * version changed after the run pinned it) caps Full at Stale; no
 * previous version (or no servable model at all) escalates Stale to
 * Analytical. DegradeMode::ShedOnly disables the middle rungs —
 * the pre-ladder binary accept/reject behavior.
 *
 * Determinism contract (the serving extension of the PR-2 rule).
 * Queueing decisions depend on *time*, which is why naive multi-
 * threaded serving is unreproducible. The front end splits each run
 * into two phases:
 *
 *  1. Plan (serial, simulated clock): a discrete-event simulation
 *     walks arrivals in timestamp order against per-tier service
 *     costs (FrontEndConfig), assigning every request its tier,
 *     worker and batch, and every batch its start/finish time. With
 *     a fixed arrival stream and fixed worker count this phase is a
 *     pure function — tier decisions, shed set, queue peaks and
 *     sojourn percentiles are exactly reproducible.
 *  2. Execute (parallel, real threads): the planned batches run on
 *     real worker threads (one PredictionService per worker — batch
 *     state is not shareable — over one shared cache), each writing
 *     responses into its own pre-assigned slots. Payload content for
 *     a given (request, tier, pinned version) is a pure function, so
 *     response bytes are identical at ANY worker count; only the
 *     plan (which consumed the worker count) fixes the tier mix.
 *
 * The registry snapshots (active and previous) are pinned once per
 * run via shared_ptr: a concurrent rollback()+retire() can evict a
 * version from the registry mid-run without ever freeing a snapshot
 * the stale tier is reading.
 *
 * One deliberate exception to the contract: the shared cache's
 * hit/miss/coalesce counters depend on which worker's batch reaches
 * a key first, so FrontEndReport::cache is a scheduling-dependent
 * diagnostic. Everything else in the report — and every response
 * byte — is deterministic.
 */

#ifndef GCM_SERVE_FRONTEND_HH
#define GCM_SERVE_FRONTEND_HH

#include <cstddef>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "serve/analytical.hh"
#include "serve/cache.hh"
#include "serve/registry.hh"
#include "serve/service.hh"

namespace gcm::serve
{

/** One timestamped request line (simulated milliseconds). */
struct Arrival
{
    double time_ms = 0.0;
    std::string line;
};

/** Overload policy: the full ladder, or binary accept/shed. */
enum class DegradeMode
{
    Ladder,
    ShedOnly,
};

const char *degradeModeName(DegradeMode mode);

/** Parse "ladder" / "shed". Throws GcmError otherwise. */
DegradeMode parseDegradeMode(const std::string &name);

struct FrontEndConfig
{
    /** Worker threads; 0 means the GCM_THREADS/default pool size. */
    std::size_t workers = 0;
    /** Per-priority-class queue capacity; beyond it requests shed. */
    std::size_t queue_capacity = 256;
    /** Queue depth at which Full degrades to Stale. */
    std::size_t soft_watermark = 64;
    /** Queue depth at which the ladder drops to Analytical. */
    std::size_t hard_watermark = 160;
    /** Requests per planned micro-batch. */
    std::size_t batch_size = 16;
    DegradeMode degrade = DegradeMode::Ladder;

    /**
     * Simulated per-request service cost by tier (ms) and per-batch
     * dispatch overhead, driving the plan-phase clock. Costs drop
     * monotonically down the ladder — stale skips the freshness /
     * swap-synchronization work, analytical skips the model entirely —
     * but every rung is deliberately NOT free: at these defaults a
     * 2x-capacity stream outruns even the stale service rate, so the
     * queue climbs through both watermarks and the shed rung is
     * reachable (the tools/check.sh soak asserts exactly that).
     */
    double full_cost_ms = 1.0;
    double stale_cost_ms = 0.9;
    double analytical_cost_ms = 0.6;
    double batch_overhead_ms = 0.2;

    ServiceConfig service;

    /** Throws GcmError on nonsensical parameters. */
    void validate() const;
};

/** Per-run accounting; summary() renders the human-readable block. */
struct FrontEndReport
{
    std::size_t workers = 0;
    std::size_t offered = 0;
    std::size_t ok = 0;
    std::size_t errors = 0; // non-shed error responses
    std::size_t tier_full = 0;
    std::size_t tier_stale = 0;
    std::size_t tier_analytical = 0;
    std::size_t tier_shed = 0;
    std::size_t peak_queue_interactive = 0;
    std::size_t peak_queue_bulk = 0;
    /** Simulated clock when the last batch finished (ms). */
    double sim_duration_ms = 0.0;
    /** Served (non-shed) requests per simulated second. */
    double goodput_qps = 0.0;
    /** tier_shed / offered. */
    double shed_rate = 0.0;
    /** Simulated busy-time fraction across workers. */
    double utilization = 0.0;
    /** Simulated admission->completion sojourn, non-shed requests. */
    double sojourn_p50_ms = 0.0;
    double sojourn_p95_ms = 0.0;
    double sojourn_p99_ms = 0.0;
    ShardedLruCache::Stats cache;

    /** served() == offered - tier_shed; the accounting identity. */
    std::size_t served() const { return ok + errors; }

    std::string summary() const;
};

class ServerFrontEnd
{
  public:
    /**
     * @param registry Model source; must outlive the front end.
     * @param device_table Known devices, shared by every worker.
     */
    ServerFrontEnd(const ModelRegistry &registry,
                   PredictionService::DeviceTable device_table,
                   FrontEndConfig config = {});

    /**
     * Serve one timestamped arrival stream (must be sorted by
     * time_ms; validated). When `responses_out` is non-null it
     * receives one rendered response line per arrival, index-aligned
     * with the arrivals. Never throws on malformed request lines.
     */
    FrontEndReport run(const std::vector<Arrival> &arrivals,
                       std::vector<std::string> *responses_out);

    /** Resolved worker count (config.workers or the pool default). */
    std::size_t workers() const { return workers_; }

    /**
     * Sustainable full-tier throughput (requests per simulated
     * second): workers / (full_cost + amortized batch overhead).
     */
    double capacityQps() const;

    const FrontEndConfig &config() const { return config_; }
    const ModelRegistry &registry() const { return registry_; }
    const ShardedLruCache &cache() const { return *cache_; }
    const PredictionService::DeviceTable &deviceTable() const;

  private:
    const ModelRegistry &registry_;
    FrontEndConfig config_;
    std::size_t workers_;
    std::shared_ptr<ShardedLruCache> cache_;
    /** One service per worker (processBatch is not thread-safe). */
    std::vector<std::unique_ptr<PredictionService>> services_;
    std::vector<std::unique_ptr<AnalyticalEstimator>> estimators_;
};

/**
 * Read request lines from `in`, timestamp them with deterministic
 * fixed-rate arrivals (arrival_qps, or exactly capacityQps() when
 * <= 0), serve them through the front end, and write one response
 * line per request to `out`. Returns the number of lines consumed.
 */
std::size_t runFrontEndLoop(ServerFrontEnd &frontend, std::istream &in,
                            std::ostream &out, double arrival_qps = 0.0);

} // namespace gcm::serve

#endif // GCM_SERVE_FRONTEND_HH

#include "serve/analytical.hh"

#include <cmath>

#include "dnn/quantize.hh"
#include "dnn/serialize.hh"
#include "dnn/zoo.hh"
#include "sim/chipset.hh"
#include "util/error.hh"

namespace gcm::serve
{

AnalyticalEstimator::AnalyticalEstimator(
    const PredictionService::DeviceTable *device_table)
    : device_table_(device_table)
{
    // Fixed synthetic reference: first chipset-table entry (order is
    // stable by the chipset.hh contract) at peak frequency, neutral
    // hidden factors. The point is a deterministic, always-available
    // scale, not per-device fidelity.
    const sim::Chipset &chipset = referenceChipset();
    reference_.model_name = "analytical-reference";
    reference_.chipset_index = 0;
    reference_.freq_ghz = chipset.max_freq_ghz;
    reference_.ram_gb = chipset.ram_options_gb.empty()
                            ? 4.0
                            : chipset.ram_options_gb.front();
}

const sim::Chipset &
AnalyticalEstimator::referenceChipset() const
{
    return sim::chipsetTable().front();
}

double
AnalyticalEstimator::estimateMs(const dnn::Graph &graph) const
{
    return model_.graphLatencyMs(graph, reference_,
                                 referenceChipset());
}

ServeResponse
AnalyticalEstimator::serve(const ServeRequest &request)
{
    ServeResponse r;
    r.id = request.id;
    r.tier = ServeTier::Analytical;
    const auto failWith = [&r](ServeErrorCode code, std::string msg) {
        r.ok = false;
        r.error_code = code;
        r.error_message = std::move(msg);
    };

    // Same request schema as the full tier: a degraded server must
    // not accept requests a healthy one would reject.
    const bool has_network = !request.network.empty();
    const bool has_graph = !request.graph_text.empty();
    const bool has_ptr = request.graph_ptr != nullptr;
    if (static_cast<int>(has_network) + static_cast<int>(has_graph)
            + static_cast<int>(has_ptr)
        != 1) {
        failWith(ServeErrorCode::BadRequest,
                 "exactly one of 'network' and 'graph' is required");
        return r;
    }
    const bool has_device = !request.device.empty();
    if (has_device == request.has_signature) {
        failWith(ServeErrorCode::BadRequest,
                 "exactly one of 'device' and 'signature' is required");
        return r;
    }
    if (has_device && device_table_ != nullptr
        && device_table_->count(request.device) == 0) {
        failWith(ServeErrorCode::UnknownDevice,
                 "unknown device '" + request.device + "'");
        return r;
    }
    for (double v : request.signature) {
        if (!std::isfinite(v) || v <= 0.0) {
            failWith(ServeErrorCode::BadRequest,
                     "signature latencies must be finite and positive");
            return r;
        }
    }

    try {
        double estimate = 0.0;
        if (has_network) {
            const auto it = zoo_memo_.find(request.network);
            if (it != zoo_memo_.end()) {
                estimate = it->second;
            } else {
                dnn::Graph g;
                try {
                    g = dnn::quantize(
                        dnn::buildZooModel(request.network));
                } catch (const GcmError &) {
                    failWith(ServeErrorCode::UnknownNetwork,
                             "unknown network '" + request.network
                                 + "'");
                    return r;
                }
                estimate = estimateMs(g);
                zoo_memo_.emplace(request.network, estimate);
            }
        } else if (has_ptr) {
            if (request.graph_ptr->precision()
                == dnn::Precision::Int8) {
                estimate = estimateMs(*request.graph_ptr);
            } else {
                estimate =
                    estimateMs(dnn::quantize(*request.graph_ptr));
            }
        } else {
            dnn::Graph g = dnn::graphFromText(request.graph_text);
            if (g.precision() != dnn::Precision::Int8)
                g = dnn::quantize(g);
            estimate = estimateMs(g);
        }
        r.ok = true;
        r.latency_ms = estimate;
        r.model_version = 0; // no learned model involved
    } catch (const GcmError &e) {
        failWith(has_graph ? ServeErrorCode::BadGraph
                           : ServeErrorCode::Internal,
                 has_graph
                     ? std::string("inline graph rejected: ") + e.what()
                     : std::string("analytical estimate failed: ")
                           + e.what());
    }
    return r;
}

} // namespace gcm::serve

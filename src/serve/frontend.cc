#include "serve/frontend.hh"

#include <algorithm>
#include <cmath>
#include <deque>
#include <exception>
#include <istream>
#include <limits>
#include <ostream>
#include <queue>
#include <sstream>
#include <thread>
#include <utility>

#include "obs/obs.hh"
#include "serve/protocol.hh"
#include "util/error.hh"
#include "util/parallel.hh"

namespace gcm::serve
{

const char *
degradeModeName(DegradeMode mode)
{
    switch (mode) {
      case DegradeMode::Ladder: return "ladder";
      case DegradeMode::ShedOnly: return "shed";
    }
    return "?";
}

DegradeMode
parseDegradeMode(const std::string &name)
{
    if (name == "ladder")
        return DegradeMode::Ladder;
    if (name == "shed")
        return DegradeMode::ShedOnly;
    fatal("unknown degrade mode '", name, "' (want 'ladder' or 'shed')");
}

void
FrontEndConfig::validate() const
{
    if (batch_size == 0)
        fatal("FrontEndConfig: batch_size must be >= 1");
    if (queue_capacity < batch_size) {
        fatal("FrontEndConfig: queue_capacity (", queue_capacity,
              ") must be >= batch_size (", batch_size, ")");
    }
    if (soft_watermark > hard_watermark) {
        fatal("FrontEndConfig: soft_watermark (", soft_watermark,
              ") must be <= hard_watermark (", hard_watermark, ")");
    }
    if (hard_watermark > queue_capacity) {
        fatal("FrontEndConfig: hard_watermark (", hard_watermark,
              ") must be <= queue_capacity (", queue_capacity, ")");
    }
    if (!(full_cost_ms > 0.0) || !(stale_cost_ms > 0.0)
        || !(analytical_cost_ms > 0.0)) {
        fatal("FrontEndConfig: per-tier service costs must be > 0");
    }
    if (!(batch_overhead_ms >= 0.0))
        fatal("FrontEndConfig: batch_overhead_ms must be >= 0");
}

namespace
{

/** Nearest-rank percentile of an unsorted sample (copied). */
double
percentile(std::vector<double> sample, double p)
{
    if (sample.empty())
        return 0.0;
    std::sort(sample.begin(), sample.end());
    const double rank = p / 100.0 * static_cast<double>(sample.size());
    std::size_t idx = rank <= 1.0
                          ? 0
                          : static_cast<std::size_t>(std::ceil(rank)) - 1;
    if (idx >= sample.size())
        idx = sample.size() - 1;
    return sample[idx];
}

std::string
formatQps(double v)
{
    std::ostringstream os;
    os.precision(1);
    os << std::fixed << v;
    return os.str();
}

} // namespace

std::string
FrontEndReport::summary() const
{
    std::ostringstream os;
    os.precision(1);
    os << std::fixed;
    os << "frontend: " << offered << " offered, " << served()
       << " served (" << ok << " ok, " << errors << " errors), "
       << tier_shed << " shed over " << sim_duration_ms
       << " simulated ms on " << workers << " worker(s)\n";
    os << "  goodput " << formatQps(goodput_qps)
       << " req/s, shed-rate " << (100.0 * shed_rate)
       << "%, utilization " << (100.0 * utilization) << "%\n";
    os << "  tiers: full " << tier_full << " / stale " << tier_stale
       << " / analytical " << tier_analytical << " / shed "
       << tier_shed << "\n";
    os << "  queue peaks: interactive " << peak_queue_interactive
       << ", bulk " << peak_queue_bulk << "\n";
    os << "  sim sojourn p50 " << sojourn_p50_ms << " ms, p95 "
       << sojourn_p95_ms << " ms, p99 " << sojourn_p99_ms << " ms";
    return os.str();
}

ServerFrontEnd::ServerFrontEnd(const ModelRegistry &registry,
                               PredictionService::DeviceTable device_table,
                               FrontEndConfig config)
    : registry_(registry), config_(config),
      workers_(config.workers != 0 ? config.workers : numThreads()),
      cache_(std::make_shared<ShardedLruCache>(
          config.service.cache_capacity, config.service.cache_shards))
{
    config_.validate();
    if (workers_ == 0)
        workers_ = 1;
    services_.reserve(workers_);
    estimators_.reserve(workers_);
    for (std::size_t w = 0; w < workers_; ++w) {
        services_.push_back(std::make_unique<PredictionService>(
            registry_, device_table, config_.service, cache_));
    }
    // The estimators validate device names against worker 0's table
    // (all copies are identical); the table outlives them.
    for (std::size_t w = 0; w < workers_; ++w) {
        estimators_.push_back(std::make_unique<AnalyticalEstimator>(
            &services_.front()->deviceTable()));
    }
}

const PredictionService::DeviceTable &
ServerFrontEnd::deviceTable() const
{
    return services_.front()->deviceTable();
}

double
ServerFrontEnd::capacityQps() const
{
    const double per_request =
        config_.full_cost_ms
        + config_.batch_overhead_ms
              / static_cast<double>(config_.batch_size);
    return static_cast<double>(workers_) * 1000.0 / per_request;
}

FrontEndReport
ServerFrontEnd::run(const std::vector<Arrival> &arrivals,
                    std::vector<std::string> *responses_out)
{
    const obs::TraceSpan span("serve.frontend.run");
    const std::size_t n = arrivals.size();
    for (std::size_t i = 1; i < n; ++i) {
        if (arrivals[i].time_ms < arrivals[i - 1].time_ms)
            fatal("ServerFrontEnd::run: arrivals must be sorted by "
                  "time_ms");
    }

    // Pin both rungs' snapshots for the whole run. Holding the
    // shared_ptrs is the rollback/retire safety: the registry can
    // evict either version mid-run without freeing it under us.
    const ModelRegistry::ActiveModel active = registry_.active();
    const ModelRegistry::ActiveModel previous =
        registry_.previousModel();
    const auto servable = [](const ModelRegistry::ActiveModel &m) {
        return static_cast<bool>(m)
               && m.snapshot->kind() == SnapshotKind::CostModel;
    };
    const bool active_servable = servable(active);
    const bool prev_servable = servable(previous);

    // ------------------------------------------------------------------
    // Phase 1 — plan (serial, simulated clock). A discrete-event walk
    // over the arrival stream decides, deterministically: each
    // request's tier, which worker serves it in which batch, and all
    // simulated timings. No payload is computed here.
    // ------------------------------------------------------------------
    struct Item
    {
        ServeRequest request;
        std::string parse_error;
        ServeTier tier = ServeTier::Full;
        bool shed = false;
        /** Written by exactly one worker in the execute phase. */
        bool ok = false;
        double arrival_ms = 0.0;
        double done_ms = 0.0;
    };
    struct Batch
    {
        std::size_t worker = 0;
        std::vector<std::size_t> items;
    };
    std::vector<Item> items(n);
    std::vector<std::vector<Batch>> worker_batches(workers_);
    std::vector<std::string> rendered(n);

    std::deque<std::size_t> queues[2]; // [Priority]
    std::size_t peaks[2] = {0, 0};
    std::vector<double> busy_until(workers_, 0.0);
    double busy_total = 0.0;
    // Idle workers in id order: lowest id claims the next batch, so
    // the plan does not depend on completion-event heap internals.
    std::vector<bool> idle(workers_, true);
    std::size_t idle_count = workers_;
    using Completion = std::pair<double, std::size_t>; // (time, worker)
    std::priority_queue<Completion, std::vector<Completion>,
                        std::greater<Completion>>
        completions;

    const auto tier_cost = [&](ServeTier t) {
        switch (t) {
          case ServeTier::Full: return config_.full_cost_ms;
          case ServeTier::Stale: return config_.stale_cost_ms;
          default: return config_.analytical_cost_ms;
        }
    };
    const auto ladder = [&](std::size_t depth) {
        ServeTier t = ServeTier::Full;
        if (config_.degrade == DegradeMode::Ladder) {
            if (depth >= config_.hard_watermark)
                t = ServeTier::Analytical;
            else if (depth >= config_.soft_watermark)
                t = ServeTier::Stale;
            // Availability: a mid-swap registry (active changed after
            // the run pinned it) caps Full at Stale; a missing
            // previous version escalates Stale to Analytical.
            if (t == ServeTier::Full
                && (!active_servable
                    || registry_.activeVersion() != active.version))
                t = ServeTier::Stale;
            if (t == ServeTier::Stale && !prev_servable)
                t = ServeTier::Analytical;
        }
        return t;
    };
    const auto dispatch = [&](double now) {
        while (idle_count > 0) {
            std::deque<std::size_t> *q = nullptr;
            if (!queues[0].empty())
                q = &queues[0]; // interactive always drains first
            else if (!queues[1].empty())
                q = &queues[1];
            else
                break;
            std::size_t w = 0;
            while (!idle[w])
                ++w;
            idle[w] = false;
            --idle_count;
            Batch b;
            b.worker = w;
            double cost = config_.batch_overhead_ms;
            const std::size_t take =
                std::min(config_.batch_size, q->size());
            b.items.reserve(take);
            for (std::size_t k = 0; k < take; ++k) {
                const std::size_t idx = q->front();
                q->pop_front();
                cost += tier_cost(items[idx].tier);
                b.items.push_back(idx);
            }
            const double done = now + cost;
            busy_until[w] = done;
            busy_total += cost;
            for (const std::size_t idx : b.items)
                items[idx].done_ms = done;
            completions.emplace(done, w);
            worker_batches[w].push_back(std::move(b));
        }
    };

    FrontEndReport report;
    report.workers = workers_;
    report.offered = n;
    std::size_t next = 0;
    double clock = 0.0;
    while (next < n || !completions.empty()) {
        const double ta = next < n
                              ? arrivals[next].time_ms
                              : std::numeric_limits<double>::infinity();
        if (!completions.empty() && completions.top().first <= ta) {
            const auto [t, w] = completions.top();
            completions.pop();
            clock = t;
            idle[w] = true;
            ++idle_count;
            dispatch(clock);
            continue;
        }
        // Admit the next arrival.
        const std::size_t i = next++;
        clock = ta;
        Item &item = items[i];
        item.arrival_ms = ta;
        item.parse_error =
            tryParseRequest(arrivals[i].line, item.request);
        const std::size_t cls =
            item.request.priority == Priority::Bulk ? 1 : 0;
        const std::size_t depth = queues[cls].size();
        if (depth >= config_.queue_capacity) {
            item.shed = true;
            item.tier = ServeTier::Shed;
            item.done_ms = ta;
            ServeResponse r = ServeResponse::failure(
                item.request.id, ServeErrorCode::Overloaded,
                std::string("admission queue full (")
                    + priorityName(item.request.priority) + ")");
            r.tier = ServeTier::Shed;
            r.queue_depth = depth;
            r.retry_after_ms = static_cast<double>(depth)
                               * config_.full_cost_ms
                               / static_cast<double>(workers_);
            rendered[i] = renderResponse(r);
        } else {
            item.tier = ladder(depth);
            queues[cls].push_back(i);
            peaks[cls] = std::max(peaks[cls], queues[cls].size());
        }
        dispatch(clock);
    }
    report.sim_duration_ms = clock;
    report.peak_queue_interactive = peaks[0];
    report.peak_queue_bulk = peaks[1];

    std::vector<double> sojourns;
    sojourns.reserve(n);
    for (const Item &item : items) {
        switch (item.tier) {
          case ServeTier::Full: ++report.tier_full; break;
          case ServeTier::Stale: ++report.tier_stale; break;
          case ServeTier::Analytical:
            ++report.tier_analytical;
            break;
          case ServeTier::Shed: ++report.tier_shed; break;
        }
        if (!item.shed)
            sojourns.push_back(item.done_ms - item.arrival_ms);
    }

    // ------------------------------------------------------------------
    // Phase 2 — execute (parallel, real threads). Workers compute the
    // pre-decided (request, tier, pinned version) payloads into their
    // own pre-assigned response slots; payload content is a pure
    // function, so bytes match at any worker count.
    // ------------------------------------------------------------------
    std::vector<std::exception_ptr> failures(workers_);
    const auto work = [&](std::size_t w) noexcept {
        try {
            PredictionService &svc = *services_[w];
            AnalyticalEstimator &est = *estimators_[w];
            std::vector<ServeRequest> reqs;
            std::vector<std::size_t> req_idx;
            for (const Batch &b : worker_batches[w]) {
                // Model-backed items of one tier are regrouped into
                // one processBatch call per (batch, tier).
                for (const ServeTier tier :
                     {ServeTier::Full, ServeTier::Stale}) {
                    reqs.clear();
                    req_idx.clear();
                    for (const std::size_t idx : b.items) {
                        Item &item = items[idx];
                        if (item.tier != tier
                            || !item.parse_error.empty())
                            continue;
                        reqs.push_back(item.request);
                        req_idx.push_back(idx);
                    }
                    if (reqs.empty())
                        continue;
                    std::vector<ServeResponse> served =
                        svc.processBatch(reqs,
                                         tier == ServeTier::Full
                                             ? active
                                             : previous);
                    for (std::size_t k = 0; k < served.size(); ++k) {
                        served[k].tier = tier;
                        items[req_idx[k]].ok = served[k].ok;
                        rendered[req_idx[k]] =
                            renderResponse(served[k]);
                    }
                }
                for (const std::size_t idx : b.items) {
                    Item &item = items[idx];
                    if (!item.parse_error.empty()) {
                        ServeResponse r = ServeResponse::failure(
                            item.request.id,
                            ServeErrorCode::BadRequest,
                            item.parse_error);
                        r.tier = item.tier;
                        rendered[idx] = renderResponse(r);
                    } else if (item.tier == ServeTier::Analytical) {
                        const ServeResponse r =
                            est.serve(item.request);
                        item.ok = r.ok;
                        rendered[idx] = renderResponse(r);
                    }
                }
            }
        } catch (...) {
            failures[w] = std::current_exception();
        }
    };
    {
        std::vector<std::thread> threads;
        threads.reserve(workers_ > 0 ? workers_ - 1 : 0);
        for (std::size_t w = 1; w < workers_; ++w)
            threads.emplace_back(work, w);
        work(0); // the caller is worker 0, PR-2 pool style
        for (std::thread &t : threads)
            t.join();
    }
    for (const std::exception_ptr &e : failures) {
        if (e)
            std::rethrow_exception(e);
    }

    for (std::size_t i = 0; i < n; ++i) {
        if (items[i].shed)
            continue;
        if (items[i].ok)
            ++report.ok;
        else
            ++report.errors;
    }

    report.goodput_qps =
        report.sim_duration_ms > 0.0
            ? static_cast<double>(report.served()) * 1000.0
                  / report.sim_duration_ms
            : 0.0;
    report.shed_rate =
        n > 0 ? static_cast<double>(report.tier_shed)
                    / static_cast<double>(n)
              : 0.0;
    report.utilization =
        report.sim_duration_ms > 0.0
            ? busy_total
                  / (report.sim_duration_ms
                     * static_cast<double>(workers_))
            : 0.0;
    report.sojourn_p50_ms = percentile(sojourns, 50.0);
    report.sojourn_p95_ms = percentile(sojourns, 95.0);
    report.sojourn_p99_ms = percentile(sojourns, 99.0);
    report.cache = cache_->stats();

    obs::counterAdd("serve.frontend.offered", n);
    obs::counterAdd("serve.frontend.tier.full", report.tier_full);
    obs::counterAdd("serve.frontend.tier.stale", report.tier_stale);
    obs::counterAdd("serve.frontend.tier.analytical",
                    report.tier_analytical);
    obs::counterAdd("serve.frontend.tier.shed", report.tier_shed);
    obs::gaugeSet("serve.frontend.workers",
                  static_cast<double>(workers_));
    obs::gaugeSet("serve.frontend.queue.interactive.peak",
                  static_cast<double>(peaks[0]));
    obs::gaugeSet("serve.frontend.queue.bulk.peak",
                  static_cast<double>(peaks[1]));
    obs::gaugeSet("serve.frontend.utilization", report.utilization);
    if (obs::enabled()) {
        for (const double s : sojourns)
            obs::histogramObserve("serve.frontend.sojourn_ms", s);
    }

    if (responses_out != nullptr)
        *responses_out = std::move(rendered);
    return report;
}

std::size_t
runFrontEndLoop(ServerFrontEnd &frontend, std::istream &in,
                std::ostream &out, double arrival_qps)
{
    const double qps =
        arrival_qps > 0.0 ? arrival_qps : frontend.capacityQps();
    const double step_ms = 1000.0 / qps;
    std::vector<Arrival> arrivals;
    std::string line;
    double t = 0.0;
    while (std::getline(in, line)) {
        arrivals.push_back({t, std::move(line)});
        t += step_ms;
    }
    std::vector<std::string> responses;
    frontend.run(arrivals, &responses);
    for (const std::string &r : responses)
        out << r << '\n';
    out.flush();
    return arrivals.size();
}

} // namespace gcm::serve

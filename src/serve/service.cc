#include "serve/service.hh"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <unordered_map>
#include <utility>

#include "dnn/fingerprint.hh"
#include "dnn/quantize.hh"
#include "dnn/serialize.hh"
#include "dnn/zoo.hh"
#include "obs/obs.hh"
#include "util/error.hh"
#include "util/parallel.hh"

namespace gcm::serve
{

const char *
priorityName(Priority p)
{
    switch (p) {
      case Priority::Interactive: return "interactive";
      case Priority::Bulk: return "bulk";
    }
    return "?";
}

const char *
serveTierName(ServeTier tier)
{
    switch (tier) {
      case ServeTier::Full: return "full";
      case ServeTier::Stale: return "stale";
      case ServeTier::Analytical: return "analytical";
      case ServeTier::Shed: return "shed";
    }
    return "?";
}

const char *
serveErrorCodeName(ServeErrorCode code)
{
    switch (code) {
      case ServeErrorCode::BadRequest: return "bad_request";
      case ServeErrorCode::UnknownNetwork: return "unknown_network";
      case ServeErrorCode::UnknownDevice: return "unknown_device";
      case ServeErrorCode::BadGraph: return "bad_graph";
      case ServeErrorCode::NoModel: return "no_model";
      case ServeErrorCode::Overloaded: return "overloaded";
      case ServeErrorCode::Internal: return "internal";
    }
    return "?";
}

PredictionService::PredictionService(
    const ModelRegistry &registry, DeviceTable device_table,
    ServiceConfig config, std::shared_ptr<ShardedLruCache> shared_cache)
    : registry_(registry), device_table_(std::move(device_table)),
      cache_(shared_cache != nullptr
                 ? std::move(shared_cache)
                 : std::make_shared<ShardedLruCache>(
                       config.cache_capacity, config.cache_shards))
{
}

PredictionService::Resolved
PredictionService::resolve(const ServeRequest &request,
                           const core::SignatureCostModel &model,
                           ModelRegistry::Version version)
{
    Resolved r;
    const auto failWith = [&r](ServeErrorCode code, std::string msg) {
        r.error_code = code;
        r.error_message = std::move(msg);
    };

    // --- network -> deployment graph + structural fingerprint.
    const bool has_network = !request.network.empty();
    const bool has_graph = !request.graph_text.empty();
    const bool has_ptr = request.graph_ptr != nullptr;
    if (static_cast<int>(has_network) + static_cast<int>(has_graph)
            + static_cast<int>(has_ptr)
        != 1) {
        failWith(ServeErrorCode::BadRequest,
                 "exactly one of 'network' and 'graph' is required");
        return r;
    }
    if (has_ptr) {
        // In-process caller handing us an already-built graph; no
        // parsing, no memo (the stream is typically all-unique).
        if (request.graph_ptr->precision() == dnn::Precision::Int8) {
            r.graph = request.graph_ptr;
        } else {
            try {
                r.owned_graph = std::make_unique<dnn::Graph>(
                    dnn::quantize(*request.graph_ptr));
            } catch (const GcmError &e) {
                failWith(ServeErrorCode::BadGraph,
                         std::string("graph rejected: ") + e.what());
                return r;
            }
            r.graph = r.owned_graph.get();
        }
        r.key.graph_fp = dnn::graphFingerprint(*r.graph);
    } else if (has_network) {
        auto it = graph_memo_.find(request.network);
        if (it == graph_memo_.end()) {
            NetworkMemo memo;
            try {
                memo.graph =
                    dnn::quantize(dnn::buildZooModel(request.network));
            } catch (const GcmError &) {
                failWith(ServeErrorCode::UnknownNetwork,
                         "unknown network '" + request.network + "'");
                return r;
            }
            memo.fp = dnn::graphFingerprint(memo.graph);
            it = graph_memo_
                     .emplace(request.network, std::move(memo))
                     .first;
        }
        NetworkMemo &memo = it->second;
        // Encode once per (network, model version); the batch pins
        // one version, so within a batch this hits after the first
        // request for the network. A few versions are retained so a
        // front-end worker alternating active (full tier) and
        // previous (stale tier) batches does not re-encode per flip.
        const std::vector<float> *enc = memo.findEnc(version);
        if (enc == nullptr) {
            try {
                std::vector<float> fresh =
                    model.encodeNetwork(memo.graph);
                if (memo.enc_by_version.size() >= 4) {
                    memo.enc_by_version.erase(
                        memo.enc_by_version.begin());
                }
                memo.enc_by_version.emplace_back(version,
                                                 std::move(fresh));
                enc = &memo.enc_by_version.back().second;
            } catch (const GcmError &e) {
                failWith(ServeErrorCode::Internal,
                         std::string("prediction failed: ")
                             + e.what());
                return r;
            }
        }
        r.graph = &memo.graph;
        r.net_features = enc;
        r.key.graph_fp = memo.fp;
    } else {
        try {
            dnn::Graph g = dnn::graphFromText(request.graph_text);
            if (g.precision() != dnn::Precision::Int8)
                g = dnn::quantize(g);
            r.owned_graph = std::make_unique<dnn::Graph>(std::move(g));
        } catch (const GcmError &e) {
            failWith(ServeErrorCode::BadGraph,
                     std::string("inline graph rejected: ") + e.what());
            return r;
        }
        r.graph = r.owned_graph.get();
        r.key.graph_fp = dnn::graphFingerprint(*r.graph);
    }

    // --- device -> signature-latency vector + fingerprint.
    const bool has_device = !request.device.empty();
    if (has_device == request.has_signature) {
        failWith(ServeErrorCode::BadRequest,
                 "exactly one of 'device' and 'signature' is required");
        return r;
    }
    if (has_device) {
        const auto it = device_table_.find(request.device);
        if (it == device_table_.end()) {
            failWith(ServeErrorCode::UnknownDevice,
                     "unknown device '" + request.device + "'");
            return r;
        }
        r.signature = it->second;
    } else {
        r.signature = request.signature;
    }
    const std::size_t want = model.signatureNames().size();
    if (r.signature.size() != want) {
        failWith(has_device ? ServeErrorCode::Internal
                            : ServeErrorCode::BadRequest,
                 "signature has " + std::to_string(r.signature.size())
                     + " latencies, the model expects "
                     + std::to_string(want));
        return r;
    }
    for (double v : r.signature) {
        if (!std::isfinite(v) || v <= 0.0) {
            failWith(ServeErrorCode::BadRequest,
                     "signature latencies must be finite and positive");
            return r;
        }
    }
    r.key.device_fp = signatureFingerprint(r.signature);
    r.key.model_version = version;
    return r;
}

std::vector<ServeResponse>
PredictionService::processBatch(const std::vector<ServeRequest> &requests)
{
    // Pin one snapshot for the whole batch: a concurrent hot-swap
    // lands between batches, never inside one.
    return processBatch(requests, registry_.active());
}

std::vector<ServeResponse>
PredictionService::processBatch(const std::vector<ServeRequest> &requests,
                                const ModelRegistry::ActiveModel &active)
{
    const obs::TraceSpan span("serve.batch");
    const bool timed = obs::enabled();
    const auto t0 = timed ? std::chrono::steady_clock::now()
                          : std::chrono::steady_clock::time_point{};
    obs::counterAdd("serve.requests", requests.size());

    std::vector<ServeResponse> responses(requests.size());
    for (std::size_t i = 0; i < requests.size(); ++i)
        responses[i].id = requests[i].id;

    if (!active
        || active.snapshot->kind() != SnapshotKind::CostModel) {
        const std::string msg =
            !active ? "no model published"
                    : std::string("active snapshot is a bare '")
                          + snapshotKindName(active.snapshot->kind())
                          + "' regressor, not servable";
        for (std::size_t i = 0; i < requests.size(); ++i) {
            responses[i] = ServeResponse::failure(
                requests[i].id, ServeErrorCode::NoModel, msg);
        }
        obs::counterAdd("serve.responses.error", requests.size());
        return responses;
    }
    const core::SignatureCostModel &model = active.snapshot->costModel();

    // Serial phase: resolve and probe the cache in request order, so
    // LRU movement and hit/miss accounting are schedule-independent.
    enum class State { Error, Hit, Compute };
    struct Plan
    {
        State state = State::Error;
        std::size_t compute_slot = 0;
    };
    std::vector<Plan> plan(requests.size());
    std::vector<Resolved> resolved;
    // Compute tasks keep pointers into this vector; the reserve keeps
    // them stable across the push_backs below.
    resolved.reserve(requests.size());
    struct ComputeTask
    {
        const dnn::Graph *graph;
        /** Memoized encoding; nullptr -> encode in the row build. */
        const std::vector<float> *net_features;
        const std::vector<double> *signature;
        CacheKey key;
    };
    std::vector<ComputeTask> compute;
    std::unordered_map<CacheKey, std::size_t, CacheKeyHasher> pending;
    // Encode-slot assignment: one slot per unique non-memoized graph
    // fingerprint, in first-appearance order. A candidate evaluated
    // across N devices contributes N compute tasks but one encode.
    constexpr std::size_t kNoEncode =
        std::numeric_limits<std::size_t>::max();
    std::unordered_map<std::uint64_t, std::size_t> enc_slot;
    std::vector<const dnn::Graph *> enc_graphs;
    std::vector<std::size_t> task_enc;
    for (std::size_t i = 0; i < requests.size(); ++i) {
        resolved.push_back(resolve(requests[i], model, active.version));
        Resolved &r = resolved.back();
        if (!r.ok()) {
            responses[i] = ServeResponse::failure(
                requests[i].id, r.error_code, r.error_message);
            continue;
        }
        if (const auto hit = cache_->get(r.key)) {
            plan[i].state = State::Hit;
            responses[i].ok = true;
            responses[i].latency_ms = *hit;
            responses[i].model_version = active.version;
            continue;
        }
        // Coalesce duplicate keys within the batch into one compute;
        // the duplicates are counted so hit-rate reports see them.
        const auto [it, inserted] =
            pending.emplace(r.key, compute.size());
        if (inserted) {
            std::size_t slot = kNoEncode;
            if (r.net_features == nullptr) {
                const auto [eit, fresh] = enc_slot.emplace(
                    r.key.graph_fp, enc_graphs.size());
                if (fresh)
                    enc_graphs.push_back(r.graph);
                slot = eit->second;
            }
            task_enc.push_back(slot);
            compute.push_back(
                {r.graph, r.net_features, &r.signature, r.key});
        } else {
            cache_->noteCoalesced(r.key);
        }
        plan[i].state = State::Compute;
        plan[i].compute_slot = it->second;
    }

    // Parallel phase: build one segmented query row per unique
    // missing key — the head is the (memoized) network encoding,
    // shared across every request for the same network, and the tail
    // is the request's anchor-normalized signature — then predict
    // every row with one blocked pass through the snapshot's
    // compiled ensemble (bit-identical at any thread count per
    // ml/flat_ensemble.hh). Errors are carried in-band so a poisoned
    // request cannot abort its batch siblings.
    const std::size_t head_w = model.networkFeatureWidth();
    const std::size_t sig_w = model.signatureNames().size();
    const std::size_t n_compute = compute.size();
    const std::size_t n_encode = enc_graphs.size();
    if (tails_.size() < n_compute * sig_w)
        tails_.resize(n_compute * sig_w);
    if (inline_enc_.size() < n_encode)
        inline_enc_.resize(n_encode);
    enc_errors_.assign(n_encode, std::string());
    if (seg_rows_.size() < n_compute)
        seg_rows_.resize(n_compute);
    if (anchors_.size() < n_compute)
        anchors_.resize(n_compute);
    if (values_.size() < n_compute)
        values_.resize(n_compute);
    errors_.assign(n_compute, std::string());
    if (fallback_.size() < head_w + sig_w)
        fallback_.assign(head_w + sig_w, 0.0f);
    parallelFor(0, n_encode, 1, [&](std::size_t s) {
        std::vector<float> *enc = inline_enc_.data();
        std::string *error = enc_errors_.data();
        try {
            enc[s] = model.encodeNetwork(*enc_graphs[s]);
        } catch (const GcmError &e) {
            error[s] = e.what();
        }
    });
    parallelFor(0, n_compute, 1, [&](std::size_t j) {
        float *tail = tails_.data() + j * sig_w;
        double *anchor = anchors_.data();
        std::string *error = errors_.data();
        ml::FlatEnsemble::SegmentedRow *seg = seg_rows_.data();
        const std::vector<float> *enc = inline_enc_.data();
        try {
            const float *head;
            if (compute[j].net_features != nullptr) {
                head = compute[j].net_features->data();
            } else {
                const std::size_t slot = task_enc[j];
                if (!enc_errors_[slot].empty())
                    throw GcmError(enc_errors_[slot]);
                head = enc[slot].data();
            }
            anchor[j] =
                model.signatureTail(*compute[j].signature, tail);
            seg[j] = {head, tail};
        } catch (const GcmError &e) {
            error[j] = e.what();
            // Park failed rows on zeros; their output is discarded.
            seg[j] = {fallback_.data(), fallback_.data()};
        }
    });
    if (n_compute > 0) {
        model.flat().predictBatchSegmented(seg_rows_.data(), n_compute,
                                           head_w, values_.data());
    }

    // Serial epilogue: publish results to the cache in slot order and
    // fill the remaining responses. Scaling by the anchor here keeps
    // the arithmetic identical to predictMs (raw * anchor).
    for (std::size_t j = 0; j < n_compute; ++j) {
        if (errors_[j].empty())
            cache_->put(compute[j].key, values_[j] * anchors_[j]);
    }
    std::uint64_t ok_count = 0;
    for (std::size_t i = 0; i < requests.size(); ++i) {
        if (plan[i].state == State::Compute) {
            const std::size_t j = plan[i].compute_slot;
            if (errors_[j].empty()) {
                responses[i].ok = true;
                responses[i].latency_ms = values_[j] * anchors_[j];
                responses[i].model_version = active.version;
            } else {
                responses[i] = ServeResponse::failure(
                    requests[i].id, ServeErrorCode::Internal,
                    "prediction failed: " + errors_[j]);
            }
        }
        ok_count += responses[i].ok ? 1 : 0;
    }
    obs::counterAdd("serve.responses.ok", ok_count);
    obs::counterAdd("serve.responses.error",
                    requests.size() - ok_count);
    if (timed) {
        const std::chrono::duration<double, std::milli> dt =
            std::chrono::steady_clock::now() - t0;
        obs::histogramObserve("serve.batch_ms", dt.count());
    }
    return responses;
}

} // namespace gcm::serve

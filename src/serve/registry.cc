#include "serve/registry.hh"

#include <istream>
#include <sstream>

#include "obs/obs.hh"
#include "util/error.hh"

namespace gcm::serve
{

namespace
{

/**
 * serve.registry.* metrics (DESIGN.md §8: compiled in, off by
 * default, never read back into any decision). Counters track
 * operator actions; gauges mirror the registry state so a fleet
 * controller's publish/rollback churn is visible without polling.
 */
void
noteRegistryState(ModelRegistry::Version active,
                  std::size_t pinned_snapshots)
{
    obs::gaugeSet("serve.registry.active_version",
                  static_cast<double>(active));
    obs::gaugeSet("serve.registry.snapshots",
                  static_cast<double>(pinned_snapshots));
}

} // namespace

const char *
snapshotKindName(SnapshotKind kind)
{
    switch (kind) {
      case SnapshotKind::CostModel: return "cost-model";
      case SnapshotKind::Gbt: return "gbt";
      case SnapshotKind::RandomForest: return "random-forest";
    }
    return "?";
}

ModelSnapshot
ModelSnapshot::fromStream(std::istream &is)
{
    // Buffer the stream so the header can be sniffed without
    // disturbing what the per-backend deserializer consumes.
    std::ostringstream buf;
    buf << is.rdbuf();
    const std::string text = buf.str();

    ModelSnapshot snap;
    std::istringstream model_is(text);
    if (text.rfind("gcm-cost-model v1", 0) == 0) {
        snap.kind_ = SnapshotKind::CostModel;
        auto model = core::SignatureCostModel::deserialize(model_is);
        model.compile();
        snap.cost_model_ = std::make_unique<core::SignatureCostModel>(
            std::move(model));
    } else if (text.rfind("gcm-gbt v1", 0) == 0) {
        snap.kind_ = SnapshotKind::Gbt;
        snap.gbt_ = std::make_unique<ml::GradientBoostedTrees>(
            ml::GradientBoostedTrees::deserialize(model_is));
        snap.flat_ = std::make_unique<const ml::FlatEnsemble>(
            snap.gbt_->compile());
    } else if (text.rfind("gcm-rf v1", 0) == 0) {
        snap.kind_ = SnapshotKind::RandomForest;
        snap.forest_ = std::make_unique<ml::RandomForest>(
            ml::RandomForest::deserialize(model_is));
        snap.flat_ = std::make_unique<const ml::FlatEnsemble>(
            snap.forest_->compile());
    } else {
        fatal("ModelSnapshot: unrecognized model header (expected "
              "'gcm-cost-model v1', 'gcm-gbt v1' or 'gcm-rf v1')");
    }
    return snap;
}

ModelSnapshot
ModelSnapshot::fromCostModel(core::SignatureCostModel model)
{
    ModelSnapshot snap;
    snap.kind_ = SnapshotKind::CostModel;
    model.compile();
    snap.cost_model_ = std::make_unique<core::SignatureCostModel>(
        std::move(model));
    return snap;
}

const core::SignatureCostModel &
ModelSnapshot::costModel() const
{
    GCM_ASSERT(kind_ == SnapshotKind::CostModel,
               "ModelSnapshot: not a cost-model snapshot");
    return *cost_model_;
}

double
ModelSnapshot::predictRow(const float *x) const
{
    GCM_ASSERT(kind_ != SnapshotKind::CostModel,
               "ModelSnapshot::predictRow: cost-model snapshots "
               "serve (network, device) queries, not rows");
    return flat_->predictRow(x);
}

const ml::FlatEnsemble &
ModelSnapshot::flat() const
{
    if (kind_ == SnapshotKind::CostModel)
        return cost_model_->flat();
    return *flat_;
}

ModelRegistry::Version
ModelRegistry::publish(ModelSnapshot snapshot)
{
    std::lock_guard<std::mutex> lock(mu_);
    const Version v = next_++;
    snapshots_.emplace(
        v, std::make_shared<const ModelSnapshot>(std::move(snapshot)));
    previous_ = active_;
    active_ = v;
    obs::counterAdd("serve.registry.publishes");
    noteRegistryState(active_, snapshots_.size());
    return v;
}

ModelRegistry::ActiveModel
ModelRegistry::active() const
{
    std::lock_guard<std::mutex> lock(mu_);
    if (active_ == 0)
        return {};
    return {active_, snapshots_.at(active_)};
}

ModelRegistry::Version
ModelRegistry::activeVersion() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return active_;
}

void
ModelRegistry::activate(Version version)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (snapshots_.count(version) == 0)
        fatal("ModelRegistry::activate: unknown version ", version);
    if (version == active_)
        return;
    previous_ = active_;
    active_ = version;
    obs::counterAdd("serve.registry.activates");
    noteRegistryState(active_, snapshots_.size());
}

void
ModelRegistry::rollback()
{
    std::lock_guard<std::mutex> lock(mu_);
    if (previous_ == 0)
        fatal("ModelRegistry::rollback: no previous version");
    std::swap(active_, previous_);
    obs::counterAdd("serve.registry.rollbacks");
    noteRegistryState(active_, snapshots_.size());
}

ModelRegistry::ActiveModel
ModelRegistry::previousModel() const
{
    std::lock_guard<std::mutex> lock(mu_);
    if (previous_ == 0)
        return {};
    const auto it = snapshots_.find(previous_);
    if (it == snapshots_.end())
        return {};
    return {previous_, it->second};
}

void
ModelRegistry::retire(Version version)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (snapshots_.count(version) == 0)
        fatal("ModelRegistry::retire: unknown version ", version);
    if (version == active_)
        fatal("ModelRegistry::retire: version ", version,
              " is active; activate another version first");
    snapshots_.erase(version);
    // Eviction only drops the registry's reference: batches (and the
    // front end's stale tier) that pinned the snapshot keep it alive
    // through their shared_ptr until they finish.
    if (version == previous_)
        previous_ = 0;
    obs::counterAdd("serve.registry.retires");
    noteRegistryState(active_, snapshots_.size());
}

std::shared_ptr<const ModelSnapshot>
ModelRegistry::snapshot(Version version) const
{
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = snapshots_.find(version);
    return it == snapshots_.end() ? nullptr : it->second;
}

std::vector<ModelRegistry::Version>
ModelRegistry::versions() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<Version> out;
    out.reserve(snapshots_.size());
    for (const auto &[v, snap] : snapshots_)
        out.push_back(v);
    return out;
}

} // namespace gcm::serve

#include "serve/loadgen.hh"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <limits>
#include <ostream>
#include <sstream>
#include <thread>

#include "dnn/zoo.hh"
#include "obs/obs.hh"
#include "util/error.hh"
#include "util/json.hh"
#include "util/rng.hh"

namespace gcm::serve
{

LoadMix
parseLoadMix(const std::string &name)
{
    if (name == "duplicate")
        return LoadMix::DuplicateHeavy;
    if (name == "unique")
        return LoadMix::UniqueHeavy;
    fatal("loadgen: unknown mix '", name, "' (duplicate|unique)");
}

void
LoadGenConfig::validate() const
{
    if (requests == 0)
        fatal("loadgen: requests must be >= 1");
    if (burst == 0)
        fatal("loadgen: burst must be >= 1");
    if (pool_size == 0)
        fatal("loadgen: pool_size must be >= 1");
    if (target_qps < 0.0)
        fatal("loadgen: target_qps must be >= 0");
    if (offered_qps < 0.0)
        fatal("loadgen: offered_qps must be >= 0");
    if (bulk_fraction < 0.0 || bulk_fraction > 1.0)
        fatal("loadgen: bulk_fraction must be in [0, 1]");
    validateLoopConfig(loop);
}

namespace
{

double
percentile(const std::vector<double> &sorted, double q)
{
    if (sorted.empty())
        return 0.0;
    const double rank = q * static_cast<double>(sorted.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

/**
 * The shared request-body generator behind both loops. `bulk`, when
 * non-null, tags request i with `"priority": "bulk"` where true; the
 * flags are drawn from their own forked stream by the caller, so the
 * body byte stream for a given (seed, mix) is identical with and
 * without priority tagging.
 */
std::vector<std::string>
generateLines(Rng &rng, std::size_t sig_width,
              const std::vector<std::string> &device_names,
              const LoadGenConfig &config,
              const std::vector<bool> *bulk)
{
    const std::vector<std::string> &zoo = dnn::zooModelNames();
    std::vector<std::string> lines;
    lines.reserve(config.requests);
    const auto priorityTag = [&](std::size_t i) {
        return bulk != nullptr && (*bulk)[i]
                   ? std::string(", \"priority\": \"bulk\"")
                   : std::string();
    };

    if (config.mix == LoadMix::DuplicateHeavy) {
        if (device_names.empty()) {
            fatal("loadgen: the duplicate-heavy mix needs a non-empty "
                  "device table");
        }
        // A fixed pool of (network, device) pairs, drawn with a
        // skewed weighting so a few pairs dominate — the typical NAS
        // search hammering one device with candidate re-queries.
        struct Pair
        {
            std::string network;
            std::string device;
        };
        std::vector<Pair> pool;
        std::vector<double> weights;
        pool.reserve(config.pool_size);
        for (std::size_t p = 0; p < config.pool_size; ++p) {
            pool.push_back(
                {zoo[static_cast<std::size_t>(rng.uniformInt(
                     0, static_cast<std::int64_t>(zoo.size()) - 1))],
                 device_names[static_cast<std::size_t>(rng.uniformInt(
                     0,
                     static_cast<std::int64_t>(device_names.size())
                         - 1))]});
            weights.push_back(1.0 / static_cast<double>(p + 1));
        }
        for (std::size_t i = 0; i < config.requests; ++i) {
            const Pair &pick = pool[rng.weightedIndex(weights)];
            std::string line = "{\"id\": ";
            json::appendJsonString(line, "q" + std::to_string(i));
            line += ", \"network\": ";
            json::appendJsonString(line, pick.network);
            line += ", \"device\": ";
            json::appendJsonString(line, pick.device);
            line += priorityTag(i) + "}";
            lines.push_back(std::move(line));
        }
        return lines;
    }

    // Unique-heavy: every request carries a fresh raw signature
    // vector, so no two requests can share a cache entry.
    std::ostringstream num;
    num.precision(std::numeric_limits<double>::max_digits10);
    for (std::size_t i = 0; i < config.requests; ++i) {
        const std::string &network =
            zoo[static_cast<std::size_t>(rng.uniformInt(
                0, static_cast<std::int64_t>(zoo.size()) - 1))];
        std::string line = "{\"id\": ";
        json::appendJsonString(line, "q" + std::to_string(i));
        line += ", \"network\": ";
        json::appendJsonString(line, network);
        line += ", \"signature\": [";
        for (std::size_t k = 0; k < sig_width; ++k) {
            num.str("");
            num << rng.uniform(0.5, 50.0);
            if (k)
                line += ", ";
            line += num.str();
        }
        line += "]" + priorityTag(i) + "}";
        lines.push_back(std::move(line));
    }
    return lines;
}

/** Device-name list of a table, in map (sorted) order. */
std::vector<std::string>
deviceNames(const PredictionService::DeviceTable &table)
{
    std::vector<std::string> names;
    names.reserve(table.size());
    for (const auto &[name, sig] : table)
        names.push_back(name);
    return names;
}

/** Signature width of the active snapshot. Throws when unservable. */
std::size_t
servableSignatureWidth(const ModelRegistry &registry)
{
    const auto active = registry.active();
    if (!active || active.snapshot->kind() != SnapshotKind::CostModel)
        fatal("loadgen: the registry has no active cost-model snapshot");
    return active.snapshot->costModel().signatureNames().size();
}

} // namespace

std::vector<std::string>
generateRequests(const PredictionService &service,
                 const LoadGenConfig &config)
{
    config.validate();
    const std::size_t sig_width =
        servableSignatureWidth(service.registry());
    const std::vector<std::string> names =
        deviceNames(service.deviceTable());
    Rng rng(config.seed);
    return generateLines(rng, sig_width, names, config, nullptr);
}

std::vector<Arrival>
generateArrivals(const ServerFrontEnd &frontend,
                 const LoadGenConfig &config)
{
    config.validate();
    if (config.offered_qps <= 0.0)
        fatal("loadgen: open-loop arrivals need offered_qps > 0");
    const std::size_t sig_width =
        servableSignatureWidth(frontend.registry());
    const std::vector<std::string> names =
        deviceNames(frontend.deviceTable());

    // Independent forked streams so bodies, priorities and arrival
    // gaps never perturb each other's draws (and the body stream
    // stays comparable across bulk_fraction settings).
    const Rng base(config.seed);
    Rng body_rng = base.fork(1);
    Rng prio_rng = base.fork(2);
    Rng time_rng = base.fork(3);

    std::vector<bool> bulk(config.requests, false);
    if (config.bulk_fraction > 0.0) {
        for (std::size_t i = 0; i < config.requests; ++i)
            bulk[i] = prio_rng.uniform() < config.bulk_fraction;
    }
    std::vector<std::string> lines =
        generateLines(body_rng, sig_width, names, config, &bulk);

    // Poisson process on the simulated clock: exponential
    // inter-arrival gaps with mean 1/offered_qps.
    const double rate_per_ms = config.offered_qps / 1000.0;
    std::vector<Arrival> arrivals;
    arrivals.reserve(lines.size());
    double t = 0.0;
    for (std::string &line : lines) {
        double u = time_rng.uniform();
        if (u >= 1.0)
            u = 0.5; // uniform() is [0,1); belt and braces
        t += -std::log(1.0 - u) / rate_per_ms;
        arrivals.push_back({t, std::move(line)});
    }
    return arrivals;
}

OpenLoadReport
runOpenLoadGen(ServerFrontEnd &frontend, const LoadGenConfig &config,
               std::ostream *responses_out)
{
    const std::vector<Arrival> arrivals =
        generateArrivals(frontend, config);
    std::vector<std::string> responses;
    OpenLoadReport report;
    report.frontend = frontend.run(
        arrivals, responses_out != nullptr ? &responses : nullptr);
    report.offered_qps = config.offered_qps;
    report.capacity_qps = frontend.capacityQps();
    if (responses_out != nullptr) {
        for (const std::string &r : responses)
            *responses_out << r << '\n';
        responses_out->flush();
    }
    return report;
}

std::string
OpenLoadReport::summary() const
{
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "open-loop: offered %.1f req/s (%.2fx capacity "
                  "%.1f req/s)\n",
                  offered_qps,
                  capacity_qps > 0.0 ? offered_qps / capacity_qps : 0.0,
                  capacity_qps);
    std::string out(buf);
    out += frontend.summary();
    std::snprintf(
        buf, sizeof(buf),
        "\n  cache: %llu hits, %llu misses, %llu evictions, "
        "%llu coalesced (hit rate %.1f%%)",
        (unsigned long long)frontend.cache.hits,
        (unsigned long long)frontend.cache.misses,
        (unsigned long long)frontend.cache.evictions,
        (unsigned long long)frontend.cache.coalesced,
        frontend.cache.hitRate() * 100.0);
    out += buf;
    return out;
}

LoadGenReport
runLoadGen(PredictionService &service, const LoadGenConfig &config,
           std::ostream *responses_out)
{
    using Clock = std::chrono::steady_clock;

    const std::vector<std::string> lines =
        generateRequests(service, config);
    RequestLoop loop(service, config.loop);

    LoadGenReport report;
    report.issued = lines.size();
    std::vector<std::string> responses(lines.size());
    std::vector<double> latencies;
    latencies.reserve(lines.size());

    const auto run_t0 = Clock::now();
    std::size_t next = 0;
    while (next < lines.size()) {
        const std::size_t burst_end =
            std::min(next + config.burst, lines.size());
        const auto burst_t0 = Clock::now();

        // Offer the whole burst; a full queue sheds the overflow with
        // explicit rejections instead of blocking.
        std::vector<std::size_t> accepted;
        accepted.reserve(burst_end - next);
        for (std::size_t i = next; i < burst_end; ++i) {
            if (loop.offer(lines[i])) {
                accepted.push_back(i);
            } else {
                responses[i] = RequestLoop::renderOverloaded(lines[i]);
                ++report.rejected;
            }
        }
        std::vector<std::string> drained;
        loop.drainAll(drained);
        GCM_ASSERT(drained.size() == accepted.size(),
                   "loadgen: drained responses != accepted requests");
        for (std::size_t k = 0; k < accepted.size(); ++k)
            responses[accepted[k]] = std::move(drained[k]);

        const std::chrono::duration<double, std::milli> burst_ms =
            Clock::now() - burst_t0;
        const double per_request =
            burst_ms.count()
            / static_cast<double>(burst_end - next);
        for (std::size_t k = 0; k < accepted.size(); ++k)
            latencies.push_back(per_request);
        if (obs::enabled())
            obs::histogramObserve("serve.loadgen.burst_ms",
                                  burst_ms.count());

        next = burst_end;
        if (config.target_qps > 0.0 && next < lines.size()) {
            // Closed-loop pacing: sleep off any lead over the target
            // offered load.
            const double target_elapsed_s =
                static_cast<double>(next) / config.target_qps;
            const std::chrono::duration<double> elapsed =
                Clock::now() - run_t0;
            const double lead_s = target_elapsed_s - elapsed.count();
            if (lead_s > 0.0) {
                std::this_thread::sleep_for(
                    std::chrono::duration<double>(lead_s));
            }
        }
    }

    const std::chrono::duration<double, std::milli> wall =
        Clock::now() - run_t0;
    report.wall_ms = wall.count();
    report.achieved_qps =
        report.wall_ms > 0.0
            ? static_cast<double>(report.issued) * 1000.0
                  / report.wall_ms
            : 0.0;
    for (const auto &r : responses) {
        if (r.find("\"ok\": true") != std::string::npos)
            ++report.ok;
        else
            ++report.errors;
    }
    std::sort(latencies.begin(), latencies.end());
    report.p50_ms = percentile(latencies, 0.50);
    report.p95_ms = percentile(latencies, 0.95);
    report.p99_ms = percentile(latencies, 0.99);
    report.cache = service.cache().stats();

    if (responses_out) {
        for (const auto &r : responses)
            *responses_out << r << '\n';
        responses_out->flush();
    }
    return report;
}

std::string
LoadGenReport::summary() const
{
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "loadgen: %zu requests (%zu ok, %zu errors, %zu rejected)\n"
        "  wall %.1f ms, throughput %.0f req/s\n"
        "  latency p50 %.3f ms, p95 %.3f ms, p99 %.3f ms\n"
        "  cache: %llu hits, %llu misses, %llu evictions, "
        "%llu coalesced (hit rate %.1f%%, effective %.1f%%)",
        issued, ok, errors, rejected, wall_ms, achieved_qps, p50_ms,
        p95_ms, p99_ms, (unsigned long long)cache.hits,
        (unsigned long long)cache.misses,
        (unsigned long long)cache.evictions,
        (unsigned long long)cache.coalesced, cache.hitRate() * 100.0,
        cache.effectiveHitRate() * 100.0);
    return buf;
}

} // namespace gcm::serve

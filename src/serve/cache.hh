/**
 * @file
 * Sharded LRU prediction cache.
 *
 * The cache memoizes finished predictions under a canonical key:
 *
 *   (graph fingerprint) x (device-signature fingerprint) x (model
 *   version)
 *
 * The graph fingerprint is dnn::graphFingerprint (structural, stable
 * across serialization round trips); the device fingerprint hashes
 * the exact bit patterns of the resolved signature-latency vector, so
 * two devices hit the same entry only when the model would see
 * byte-identical inputs; the model version isolates entries across
 * hot-swaps, so a swap never serves stale predictions and a rollback
 * re-hits the old version's still-resident entries.
 *
 * Keys are distributed over independently locked shards (shard count
 * rounded up to a power of two) so concurrent lookups from different
 * request loops rarely contend. Each shard runs exact LRU over its
 * own entries: capacity is split evenly across shards, which bounds
 * total residency at `capacity` while keeping eviction decisions
 * shard-local. A capacity of 0 disables the cache (every lookup
 * misses, nothing is stored) — used by the cold-path benchmarks.
 *
 * Observability: hits, misses, evictions, insertions and coalesced
 * duplicates are counted locally (stats(), always on) and mirrored
 * into src/obs counters (serve.cache.*) when collection is enabled.
 */

#ifndef GCM_SERVE_CACHE_HH
#define GCM_SERVE_CACHE_HH

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

namespace gcm::serve
{

/** Canonical cache key; see the file comment for the derivation. */
struct CacheKey
{
    std::uint64_t graph_fp = 0;
    std::uint64_t device_fp = 0;
    std::uint64_t model_version = 0;

    bool operator==(const CacheKey &) const = default;
};

/** Mix of the three key components, used for sharding and hashing. */
std::uint64_t cacheKeyHash(const CacheKey &key);

/** Fingerprint of a resolved signature-latency vector (bit-exact). */
std::uint64_t signatureFingerprint(const std::vector<double> &sig);

/** std::hash adapter over cacheKeyHash. */
struct CacheKeyHasher
{
    std::size_t
    operator()(const CacheKey &key) const
    {
        return static_cast<std::size_t>(cacheKeyHash(key));
    }
};

class ShardedLruCache
{
  public:
    /**
     * @param capacity Total entry budget across all shards; 0
     *        disables the cache.
     * @param shards Requested shard count (>= 1; rounded up to a
     *        power of two).
     */
    explicit ShardedLruCache(std::size_t capacity, std::size_t shards = 8);

    /**
     * Look up a key; refreshes the entry's LRU position on hit.
     * Counts a hit or a miss.
     */
    std::optional<double> get(const CacheKey &key);

    /**
     * Insert or refresh an entry, evicting the shard's LRU victim at
     * capacity.
     */
    void put(const CacheKey &key, double value);

    /**
     * Record that a lookup of `key` was satisfied by coalescing onto
     * an in-flight compute for the same key (batch deduplication in
     * PredictionService) rather than by a fresh compute. Every
     * coalesced lookup was first counted as a miss by get(), so
     * coalesced <= misses and the cache-effectiveness rate including
     * coalescing is effectiveHitRate(). Counted per shard and
     * mirrored to the serve.cache.coalesced obs counter.
     */
    void noteCoalesced(const CacheKey &key);

    /** Drop every entry (counters are kept). */
    void clear();

    std::size_t size() const;
    std::size_t capacity() const { return capacity_; }
    std::size_t numShards() const { return shards_.size(); }

    /** Monotonic operation counters (always collected). */
    struct Stats
    {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t insertions = 0;
        std::uint64_t evictions = 0;
        /** Misses absorbed by batch coalescing (noteCoalesced). */
        std::uint64_t coalesced = 0;

        double
        hitRate() const
        {
            const std::uint64_t total = hits + misses;
            return total == 0
                       ? 0.0
                       : static_cast<double>(hits)
                             / static_cast<double>(total);
        }

        /**
         * Fraction of lookups that did NOT cost a fresh compute:
         * cache hits plus coalesced duplicates over all lookups.
         * This is the number load reports should quote for
         * duplicate-heavy mixes, where hitRate() understates how
         * much work the serving layer actually saved.
         */
        double
        effectiveHitRate() const
        {
            const std::uint64_t total = hits + misses;
            return total == 0
                       ? 0.0
                       : static_cast<double>(hits + coalesced)
                             / static_cast<double>(total);
        }
    };

    /** Aggregated counters across shards. */
    Stats stats() const;

  private:
    struct Shard
    {
        mutable std::mutex mu;
        /** Front = most recently used. */
        std::list<std::pair<CacheKey, double>> lru;
        std::unordered_map<
            CacheKey,
            std::list<std::pair<CacheKey, double>>::iterator,
            CacheKeyHasher>
            index;
        Stats stats;
    };

    Shard &shardOf(const CacheKey &key);

    std::size_t capacity_ = 0;
    std::size_t per_shard_capacity_ = 0;
    std::vector<std::unique_ptr<Shard>> shards_;
};

} // namespace gcm::serve

#endif // GCM_SERVE_CACHE_HH

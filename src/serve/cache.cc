#include "serve/cache.hh"

#include <cstring>

#include "obs/obs.hh"

namespace gcm::serve
{

namespace
{

/** SplitMix64 finalizer — strong 64-bit avalanche mixer. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

} // namespace

std::uint64_t
cacheKeyHash(const CacheKey &key)
{
    std::uint64_t h = mix64(key.graph_fp);
    h = mix64(h ^ key.device_fp);
    h = mix64(h ^ key.model_version);
    return h;
}

std::uint64_t
signatureFingerprint(const std::vector<double> &sig)
{
    std::uint64_t h = mix64(sig.size());
    for (double v : sig) {
        std::uint64_t bits;
        static_assert(sizeof(bits) == sizeof(v));
        std::memcpy(&bits, &v, sizeof(bits));
        h = mix64(h ^ bits);
    }
    return h;
}

ShardedLruCache::ShardedLruCache(std::size_t capacity, std::size_t shards)
    : capacity_(capacity)
{
    std::size_t n = 1;
    while (n < shards)
        n <<= 1;
    // Never spread the budget thinner than one entry per shard.
    if (capacity > 0 && n > capacity)
        n = 1;
    shards_.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        shards_.push_back(std::make_unique<Shard>());
    // Floor division (n <= capacity when capacity > 0), so the sum of
    // shard budgets never exceeds the requested total.
    per_shard_capacity_ = capacity / n;
}

ShardedLruCache::Shard &
ShardedLruCache::shardOf(const CacheKey &key)
{
    return *shards_[cacheKeyHash(key) & (shards_.size() - 1)];
}

std::optional<double>
ShardedLruCache::get(const CacheKey &key)
{
    Shard &shard = shardOf(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    const auto it = shard.index.find(key);
    if (it == shard.index.end()) {
        ++shard.stats.misses;
        obs::counterAdd("serve.cache.miss");
        return std::nullopt;
    }
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    ++shard.stats.hits;
    obs::counterAdd("serve.cache.hit");
    return it->second->second;
}

void
ShardedLruCache::put(const CacheKey &key, double value)
{
    if (capacity_ == 0)
        return;
    Shard &shard = shardOf(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    const auto it = shard.index.find(key);
    if (it != shard.index.end()) {
        it->second->second = value;
        shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
        return;
    }
    if (shard.lru.size() >= per_shard_capacity_) {
        const auto &victim = shard.lru.back();
        shard.index.erase(victim.first);
        shard.lru.pop_back();
        ++shard.stats.evictions;
        obs::counterAdd("serve.cache.evict");
    }
    shard.lru.emplace_front(key, value);
    shard.index.emplace(key, shard.lru.begin());
    ++shard.stats.insertions;
    obs::counterAdd("serve.cache.insert");
}

void
ShardedLruCache::noteCoalesced(const CacheKey &key)
{
    Shard &shard = shardOf(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    ++shard.stats.coalesced;
    obs::counterAdd("serve.cache.coalesced");
}

void
ShardedLruCache::clear()
{
    for (auto &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard->mu);
        shard->lru.clear();
        shard->index.clear();
    }
}

std::size_t
ShardedLruCache::size() const
{
    std::size_t n = 0;
    for (const auto &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard->mu);
        n += shard->lru.size();
    }
    return n;
}

ShardedLruCache::Stats
ShardedLruCache::stats() const
{
    Stats total;
    for (const auto &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard->mu);
        total.hits += shard->stats.hits;
        total.misses += shard->stats.misses;
        total.insertions += shard->stats.insertions;
        total.evictions += shard->stats.evictions;
        total.coalesced += shard->stats.coalesced;
    }
    return total;
}

} // namespace gcm::serve

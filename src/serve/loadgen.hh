/**
 * @file
 * Seeded closed-loop load generator for the serving subsystem.
 *
 * Synthesizes a deterministic gcm-serve/v1 request stream from a
 * seed and a mix profile, drives it through a RequestLoop in bursts,
 * and reports throughput, per-request latency percentiles
 * (p50/p95/p99, measured per burst on the wall clock) and the cache
 * hit/miss profile.
 *
 * Mixes:
 *  - DuplicateHeavy: requests are drawn (with a skewed weighting)
 *    from a small pool of (network, device) pairs, so the steady
 *    state is almost all cache hits — the serving fast path.
 *  - UniqueHeavy: every request perturbs its raw signature vector,
 *    so every key is new and the cold path runs end to end.
 *
 * Determinism: the request *stream* and the response *stream* are
 * pure functions of (seed, config, model); timing numbers are not.
 * Responses are collected in request order, so two runs with the
 * same seed are byte-identical at any GCM_THREADS — the acceptance
 * check of PR 5 and a test in tests/test_serve.cc.
 *
 * Closed loop with optional pacing: with target_qps > 0 the
 * generator sleeps between bursts to approximate the target offered
 * load; with 0 it runs back-to-back (peak throughput mode). Bursts
 * larger than the admission queue exercise explicit rejection.
 *
 * Open loop (PR 9): generateArrivals()/runOpenLoadGen() drive the
 * multi-worker ServerFrontEnd with Poisson arrivals *on the simulated
 * clock* at a configured offered_qps — arrivals do not wait for
 * responses, which is what makes overload regimes reachable at all.
 * A bulk_fraction of the stream is tagged `"priority": "bulk"`. The
 * whole run is deterministic: arrival times, tier decisions, goodput,
 * shed-rate and per-tier fractions are pure functions of
 * (seed, config, model, worker count). The one exception is the
 * shared cache's hit/miss/coalesce counters, which depend on worker
 * scheduling (frontend.hh).
 */

#ifndef GCM_SERVE_LOADGEN_HH
#define GCM_SERVE_LOADGEN_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "serve/cache.hh"
#include "serve/frontend.hh"
#include "serve/protocol.hh"
#include "serve/service.hh"

namespace gcm::serve
{

/** Request-mix profiles. */
enum class LoadMix
{
    DuplicateHeavy,
    UniqueHeavy,
};

/** Parse "duplicate" / "unique". Throws GcmError. */
LoadMix parseLoadMix(const std::string &name);

struct LoadGenConfig
{
    std::size_t requests = 2000;
    /** Requests offered per burst before draining. */
    std::size_t burst = 32;
    /** Offered load; 0 = unpaced (as fast as the loop drains). */
    double target_qps = 0.0;
    std::uint64_t seed = 42;
    LoadMix mix = LoadMix::DuplicateHeavy;
    /** Distinct (network, device) pairs of the duplicate-heavy pool. */
    std::size_t pool_size = 16;
    LoopConfig loop;
    /** Open-loop only: Poisson offered load (simulated req/s). */
    double offered_qps = 0.0;
    /** Open-loop only: fraction of requests tagged priority "bulk". */
    double bulk_fraction = 0.0;

    /** Throws GcmError on invalid parameters. */
    void validate() const;
};

/** What one load-generation run measured. */
struct LoadGenReport
{
    std::size_t issued = 0;
    std::size_t rejected = 0;
    std::size_t ok = 0;
    std::size_t errors = 0;
    double wall_ms = 0.0;
    double achieved_qps = 0.0;
    /** Per-request latency percentiles (burst-attributed), ms. */
    double p50_ms = 0.0;
    double p95_ms = 0.0;
    double p99_ms = 0.0;
    ShardedLruCache::Stats cache;

    /** Human-readable multi-line summary. */
    std::string summary() const;
};

/**
 * Generate the deterministic request stream for a config against a
 * service's device table and model signature width. Exposed so tests
 * can replay the exact stream the generator drives.
 */
std::vector<std::string>
generateRequests(const PredictionService &service,
                 const LoadGenConfig &config);

/**
 * Run the load generator against a service. When `responses_out` is
 * non-null, every response line is written to it in request order
 * (rejections included, at their request's position).
 */
LoadGenReport runLoadGen(PredictionService &service,
                         const LoadGenConfig &config,
                         std::ostream *responses_out);

/** What one open-loop overload run measured (all simulated-clock). */
struct OpenLoadReport
{
    FrontEndReport frontend;
    double offered_qps = 0.0;
    double capacity_qps = 0.0;

    /** Human-readable multi-line summary (goodput, shed, tiers). */
    std::string summary() const;
};

/**
 * Generate the deterministic timestamped arrival stream for an
 * open-loop run: the same request bodies the closed-loop mixes
 * produce (plus priority tags for a bulk_fraction of them), with
 * Poisson inter-arrival gaps at config.offered_qps on the simulated
 * clock. Requires offered_qps > 0. Exposed so tests can replay the
 * exact stream.
 */
std::vector<Arrival> generateArrivals(const ServerFrontEnd &frontend,
                                      const LoadGenConfig &config);

/**
 * Run the open-loop generator against a multi-worker front end. When
 * `responses_out` is non-null, every response line is written to it
 * in arrival order (shed rejections included, in position).
 */
OpenLoadReport runOpenLoadGen(ServerFrontEnd &frontend,
                              const LoadGenConfig &config,
                              std::ostream *responses_out);

} // namespace gcm::serve

#endif // GCM_SERVE_LOADGEN_HH

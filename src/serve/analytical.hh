/**
 * @file
 * AnalyticalEstimator — the model-free bottom rung of the serving
 * degradation ladder (frontend.hh, DESIGN.md §14).
 *
 * When the front end is past its hard watermark (or no cost-model
 * snapshot is servable at all), requests are answered from a pure
 * roofline estimate computed from the graph alone: the simulator's
 * LatencyModel evaluated on a fixed synthetic reference device — the
 * first chipsetTable() entry at its peak frequency with neutral
 * hidden factors. This is the same "simplistic analytical fallback
 * when the full model is unavailable" posture VPUNN ships for an
 * uninitialized NN cost model: coarse (it knows nothing about the
 * requesting device beyond validating the request), but cheap,
 * deterministic, and always available.
 *
 * Determinism contract: serve() is a pure function of the request
 * content — no registry, no cache, no clock — so analytical-tier
 * payloads are byte-identical at any thread count. Responses carry
 * model_version 0 and tier Analytical.
 */

#ifndef GCM_SERVE_ANALYTICAL_HH
#define GCM_SERVE_ANALYTICAL_HH

#include <map>
#include <string>

#include "serve/service.hh"
#include "sim/device.hh"
#include "sim/latency_model.hh"

namespace gcm::serve
{

class AnalyticalEstimator
{
  public:
    /**
     * @param device_table Optional device-name table used only to
     *        validate `device` fields (the estimate itself ignores
     *        the device — see file comment). Pass the front end's
     *        table so analytical responses reject the same unknown
     *        devices the full tier would. The table must outlive the
     *        estimator. nullptr skips device validation.
     */
    explicit AnalyticalEstimator(
        const PredictionService::DeviceTable *device_table = nullptr);

    /** Roofline latency (ms) of a graph on the reference device. */
    double estimateMs(const dnn::Graph &graph) const;

    /**
     * Serve one request from the roofline alone. Validates the same
     * request schema as PredictionService::resolve (exactly one
     * network source, exactly one device source, finite positive
     * signatures) so clients cannot smuggle malformed requests
     * through an overloaded server. Never throws.
     */
    ServeResponse serve(const ServeRequest &request);

    /** The reference chipset the estimates assume. */
    const sim::Chipset &referenceChipset() const;

  private:
    sim::LatencyModel model_;
    sim::DeviceSpec reference_;
    const PredictionService::DeviceTable *device_table_;
    /** Per zoo network estimate memo (the zoo is a fixed finite set). */
    std::map<std::string, double> zoo_memo_;
};

} // namespace gcm::serve

#endif // GCM_SERVE_ANALYTICAL_HH

#include "dnn/serialize.hh"

#include <istream>
#include <ostream>
#include <sstream>

#include "util/error.hh"
#include "verify/verifier.hh"

namespace gcm::dnn
{

void
serializeGraph(const Graph &graph, std::ostream &os)
{
    graph.validate();
    if (graph.name().find_first_of(" \t\n") != std::string::npos)
        fatal("serializeGraph: graph name contains whitespace: ",
              graph.name());
    os << "gcm-graph v1\n";
    os << "name " << graph.name() << "\n";
    os << "precision "
       << (graph.precision() == Precision::Int8 ? "int8" : "fp32")
       << "\n";
    os << "nodes " << graph.numNodes() << "\n";
    for (const auto &n : graph.nodes()) {
        os << "node " << n.id << ' ' << opKindName(n.kind)
           << " k=" << n.params.kernel << " s=" << n.params.stride
           << " p=" << n.params.padding << " oc=" << n.params.out_channels
           << " g=" << n.params.groups << " act="
           << static_cast<int>(n.params.fused_activation) << " in=";
        if (n.inputs.empty()) {
            os << '-';
        } else {
            for (std::size_t i = 0; i < n.inputs.size(); ++i) {
                if (i)
                    os << ',';
                os << n.inputs[i];
            }
        }
        os << " shape=" << n.shape.n << ',' << n.shape.h << ','
           << n.shape.w << ',' << n.shape.c << "\n";
    }
}

std::string
graphToText(const Graph &graph)
{
    std::ostringstream oss;
    serializeGraph(graph, oss);
    return oss.str();
}

namespace
{

OpKind
kindFromName(const std::string &name)
{
    for (std::size_t k = 0; k < kNumOpKinds; ++k) {
        const auto kind = static_cast<OpKind>(k);
        if (name == opKindName(kind))
            return kind;
    }
    fatal("deserializeGraph: unknown operator '", name, "'");
}

/** Parse "key=value", checking the key. */
std::string
expectField(std::istringstream &iss, const std::string &key)
{
    std::string token;
    if (!(iss >> token) || token.rfind(key + "=", 0) != 0)
        fatal("deserializeGraph: expected field '", key, "='");
    return token.substr(key.size() + 1);
}

/**
 * Strict int32 parse for untrusted input: the whole token must be a
 * decimal integer in range. std::stoi would throw std:: exceptions on
 * garbage and silently accept trailing junk ("3;rm").
 */
std::int32_t
parseInt(const std::string &token, const char *what)
{
    std::size_t used = 0;
    long long value = 0;
    try {
        value = std::stoll(token, &used);
    } catch (const std::exception &) {
        fatal("deserializeGraph: ", what, " is not an integer: '",
              token, "'");
    }
    if (used != token.size())
        fatal("deserializeGraph: trailing junk after ", what, ": '",
              token, "'");
    if (value < INT32_MIN || value > INT32_MAX)
        fatal("deserializeGraph: ", what, " out of range: ", value);
    return static_cast<std::int32_t>(value);
}

/** Upper bound on the node count field of an untrusted stream. */
constexpr std::size_t kMaxSerializedNodes = 1u << 20;

} // namespace

Graph
deserializeGraph(std::istream &is)
{
    std::string magic, version, tag;
    if (!(is >> magic >> version) || magic != "gcm-graph"
        || version != "v1") {
        fatal("deserializeGraph: bad header (expected 'gcm-graph v1')");
    }
    std::string name;
    if (!(is >> tag >> name) || tag != "name")
        fatal("deserializeGraph: missing name");
    std::string precision_str;
    if (!(is >> tag >> precision_str) || tag != "precision"
        || (precision_str != "fp32" && precision_str != "int8")) {
        fatal("deserializeGraph: missing/invalid precision");
    }
    std::size_t count = 0;
    if (!(is >> tag >> count) || tag != "nodes" || count == 0)
        fatal("deserializeGraph: missing node count");
    if (count > kMaxSerializedNodes) {
        fatal("deserializeGraph: node count ", count,
              " exceeds the limit of ", kMaxSerializedNodes);
    }

    is.ignore(); // consume the newline before per-line parsing
    std::vector<Node> nodes;
    nodes.reserve(count);
    std::string line;
    while (nodes.size() < count && std::getline(is, line)) {
        if (line.empty())
            continue;
        std::istringstream iss(line);
        std::string node_tag, kind_name;
        Node n;
        if (!(iss >> node_tag >> n.id >> kind_name)
            || node_tag != "node") {
            fatal("deserializeGraph: malformed node line: ", line);
        }
        n.kind = kindFromName(kind_name);
        if (n.id != static_cast<NodeId>(nodes.size())) {
            fatal("deserializeGraph: node id ", n.id,
                  " out of order (expected ", nodes.size(), ")");
        }
        n.params.kernel = parseInt(expectField(iss, "k"), "kernel");
        n.params.stride = parseInt(expectField(iss, "s"), "stride");
        n.params.padding = parseInt(expectField(iss, "p"), "padding");
        n.params.out_channels =
            parseInt(expectField(iss, "oc"), "out_channels");
        n.params.groups = parseInt(expectField(iss, "g"), "groups");
        const std::int32_t act =
            parseInt(expectField(iss, "act"), "fused activation");
        if (act < 0
            || act > static_cast<std::int32_t>(FusedActivation::Sigmoid))
            fatal("deserializeGraph: invalid fused activation ", act);
        n.params.fused_activation = static_cast<FusedActivation>(act);
        const std::string ins = expectField(iss, "in");
        if (ins != "-") {
            std::istringstream ins_ss(ins);
            std::string id;
            while (std::getline(ins_ss, id, ',')) {
                const std::int32_t in = parseInt(id, "input id");
                if (in < 0 || in >= n.id) {
                    fatal("deserializeGraph: node ", n.id,
                          " references out-of-range input ", in);
                }
                n.inputs.push_back(in);
            }
        }
        const std::string shape = expectField(iss, "shape");
        std::istringstream shape_ss(shape);
        char comma;
        if (!(shape_ss >> n.shape.n >> comma >> n.shape.h >> comma
              >> n.shape.w >> comma >> n.shape.c)) {
            fatal("deserializeGraph: malformed shape: ", shape);
        }
        nodes.push_back(std::move(n));
    }
    if (nodes.size() != count)
        fatal("deserializeGraph: truncated stream (", nodes.size(),
              " of ", count, " nodes)");

    Graph g(name, std::move(nodes),
            precision_str == "int8" ? Precision::Int8
                                    : Precision::Float32);
    // Untrusted input: run the full verifier, not just the cheap
    // constructor-time validation, and hard-error on any finding.
    verify::verifyGraphOrThrow(g, "deserializeGraph");
    return g;
}

Graph
graphFromText(const std::string &text)
{
    std::istringstream iss(text);
    return deserializeGraph(iss);
}

} // namespace gcm::dnn

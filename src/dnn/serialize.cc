#include "dnn/serialize.hh"

#include <istream>
#include <ostream>
#include <sstream>

#include "util/error.hh"

namespace gcm::dnn
{

void
serializeGraph(const Graph &graph, std::ostream &os)
{
    graph.validate();
    if (graph.name().find_first_of(" \t\n") != std::string::npos)
        fatal("serializeGraph: graph name contains whitespace: ",
              graph.name());
    os << "gcm-graph v1\n";
    os << "name " << graph.name() << "\n";
    os << "precision "
       << (graph.precision() == Precision::Int8 ? "int8" : "fp32")
       << "\n";
    os << "nodes " << graph.numNodes() << "\n";
    for (const auto &n : graph.nodes()) {
        os << "node " << n.id << ' ' << opKindName(n.kind)
           << " k=" << n.params.kernel << " s=" << n.params.stride
           << " p=" << n.params.padding << " oc=" << n.params.out_channels
           << " g=" << n.params.groups << " act="
           << static_cast<int>(n.params.fused_activation) << " in=";
        if (n.inputs.empty()) {
            os << '-';
        } else {
            for (std::size_t i = 0; i < n.inputs.size(); ++i) {
                if (i)
                    os << ',';
                os << n.inputs[i];
            }
        }
        os << " shape=" << n.shape.n << ',' << n.shape.h << ','
           << n.shape.w << ',' << n.shape.c << "\n";
    }
}

std::string
graphToText(const Graph &graph)
{
    std::ostringstream oss;
    serializeGraph(graph, oss);
    return oss.str();
}

namespace
{

OpKind
kindFromName(const std::string &name)
{
    for (std::size_t k = 0; k < kNumOpKinds; ++k) {
        const auto kind = static_cast<OpKind>(k);
        if (name == opKindName(kind))
            return kind;
    }
    fatal("deserializeGraph: unknown operator '", name, "'");
}

/** Parse "key=value", checking the key. */
std::string
expectField(std::istringstream &iss, const std::string &key)
{
    std::string token;
    if (!(iss >> token) || token.rfind(key + "=", 0) != 0)
        fatal("deserializeGraph: expected field '", key, "='");
    return token.substr(key.size() + 1);
}

} // namespace

Graph
deserializeGraph(std::istream &is)
{
    std::string magic, version, tag;
    if (!(is >> magic >> version) || magic != "gcm-graph"
        || version != "v1") {
        fatal("deserializeGraph: bad header (expected 'gcm-graph v1')");
    }
    std::string name;
    if (!(is >> tag >> name) || tag != "name")
        fatal("deserializeGraph: missing name");
    std::string precision_str;
    if (!(is >> tag >> precision_str) || tag != "precision"
        || (precision_str != "fp32" && precision_str != "int8")) {
        fatal("deserializeGraph: missing/invalid precision");
    }
    std::size_t count = 0;
    if (!(is >> tag >> count) || tag != "nodes" || count == 0)
        fatal("deserializeGraph: missing node count");

    is.ignore(); // consume the newline before per-line parsing
    std::vector<Node> nodes;
    nodes.reserve(count);
    std::string line;
    while (nodes.size() < count && std::getline(is, line)) {
        if (line.empty())
            continue;
        std::istringstream iss(line);
        std::string node_tag, kind_name;
        Node n;
        if (!(iss >> node_tag >> n.id >> kind_name)
            || node_tag != "node") {
            fatal("deserializeGraph: malformed node line: ", line);
        }
        n.kind = kindFromName(kind_name);
        n.params.kernel =
            std::stoi(expectField(iss, "k"));
        n.params.stride = std::stoi(expectField(iss, "s"));
        n.params.padding = std::stoi(expectField(iss, "p"));
        n.params.out_channels = std::stoi(expectField(iss, "oc"));
        n.params.groups = std::stoi(expectField(iss, "g"));
        const int act = std::stoi(expectField(iss, "act"));
        if (act < 0 || act > static_cast<int>(FusedActivation::Sigmoid))
            fatal("deserializeGraph: invalid fused activation ", act);
        n.params.fused_activation = static_cast<FusedActivation>(act);
        const std::string ins = expectField(iss, "in");
        if (ins != "-") {
            std::istringstream ins_ss(ins);
            std::string id;
            while (std::getline(ins_ss, id, ','))
                n.inputs.push_back(std::stoi(id));
        }
        const std::string shape = expectField(iss, "shape");
        std::istringstream shape_ss(shape);
        char comma;
        if (!(shape_ss >> n.shape.n >> comma >> n.shape.h >> comma
              >> n.shape.w >> comma >> n.shape.c)) {
            fatal("deserializeGraph: malformed shape: ", shape);
        }
        nodes.push_back(std::move(n));
    }
    if (nodes.size() != count)
        fatal("deserializeGraph: truncated stream (", nodes.size(),
              " of ", count, " nodes)");

    Graph g(name, std::move(nodes),
            precision_str == "int8" ? Precision::Int8
                                    : Precision::Float32);
    g.validate();
    return g;
}

Graph
graphFromText(const std::string &text)
{
    std::istringstream iss(text);
    return deserializeGraph(iss);
}

} // namespace gcm::dnn

#include "dnn/op.hh"

#include "util/error.hh"

namespace gcm::dnn
{

const char *
opKindName(OpKind kind)
{
    switch (kind) {
      case OpKind::Input: return "Input";
      case OpKind::Conv2d: return "Conv2d";
      case OpKind::DepthwiseConv2d: return "DepthwiseConv2d";
      case OpKind::FullyConnected: return "FullyConnected";
      case OpKind::MaxPool2d: return "MaxPool2d";
      case OpKind::AvgPool2d: return "AvgPool2d";
      case OpKind::GlobalAvgPool: return "GlobalAvgPool";
      case OpKind::Add: return "Add";
      case OpKind::Mul: return "Mul";
      case OpKind::Concat: return "Concat";
      case OpKind::ReLU: return "ReLU";
      case OpKind::ReLU6: return "ReLU6";
      case OpKind::HSwish: return "HSwish";
      case OpKind::Sigmoid: return "Sigmoid";
      case OpKind::BatchNorm: return "BatchNorm";
      case OpKind::Softmax: return "Softmax";
      case OpKind::ChannelShuffle: return "ChannelShuffle";
      default: break;
    }
    GCM_ASSERT(false, "opKindName: invalid kind");
    return "?";
}

bool
opHasWindow(OpKind kind)
{
    switch (kind) {
      case OpKind::Conv2d:
      case OpKind::DepthwiseConv2d:
      case OpKind::MaxPool2d:
      case OpKind::AvgPool2d:
        return true;
      default:
        return false;
    }
}

bool
opHasWeights(OpKind kind)
{
    switch (kind) {
      case OpKind::Conv2d:
      case OpKind::DepthwiseConv2d:
      case OpKind::FullyConnected:
      case OpKind::BatchNorm:
        return true;
      default:
        return false;
    }
}

bool
opIsActivation(OpKind kind)
{
    switch (kind) {
      case OpKind::ReLU:
      case OpKind::ReLU6:
      case OpKind::HSwish:
      case OpKind::Sigmoid:
        return true;
      default:
        return false;
    }
}

const char *
fusedActivationName(FusedActivation act)
{
    switch (act) {
      case FusedActivation::None: return "none";
      case FusedActivation::ReLU: return "relu";
      case FusedActivation::ReLU6: return "relu6";
      case FusedActivation::HSwish: return "hswish";
      case FusedActivation::Sigmoid: return "sigmoid";
    }
    GCM_ASSERT(false, "fusedActivationName: invalid value");
    return "?";
}

FusedActivation
toFusedActivation(OpKind kind)
{
    switch (kind) {
      case OpKind::ReLU: return FusedActivation::ReLU;
      case OpKind::ReLU6: return FusedActivation::ReLU6;
      case OpKind::HSwish: return FusedActivation::HSwish;
      case OpKind::Sigmoid: return FusedActivation::Sigmoid;
      default: break;
    }
    GCM_ASSERT(false, "toFusedActivation: not an activation");
    return FusedActivation::None;
}

} // namespace gcm::dnn

#include "dnn/generator.hh"

#include <algorithm>
#include <cmath>

#include "dnn/analysis.hh"
#include "util/error.hh"
#include "verify/verifier.hh"

namespace gcm::dnn
{

std::int32_t
roundChannels(double c)
{
    const auto rounded =
        static_cast<std::int32_t>(std::lround(c / 8.0)) * 8;
    return std::max(rounded, 8);
}

RandomNetworkGenerator::RandomNetworkGenerator(SearchSpace space,
                                               std::uint64_t seed)
    : space_(std::move(space)), rng_(seed)
{
    GCM_ASSERT(space_.min_stages >= 1
                   && space_.min_stages <= space_.max_stages,
               "SearchSpace: invalid stage bounds");
    GCM_ASSERT(space_.min_blocks_per_stage >= 1
                   && space_.min_blocks_per_stage
                       <= space_.max_blocks_per_stage,
               "SearchSpace: invalid block bounds");
    GCM_ASSERT(!space_.kernel_choices.empty()
                   && !space_.expansion_choices.empty()
                   && !space_.stem_channel_choices.empty(),
               "SearchSpace: empty choice list");
    GCM_ASSERT(space_.min_mmacs < space_.max_mmacs,
               "SearchSpace: invalid FLOPs window");
}

namespace
{

template <typename T>
T
pick(Rng &rng, const std::vector<T> &choices)
{
    return choices[static_cast<std::size_t>(rng.uniformInt(
        0, static_cast<std::int64_t>(choices.size()) - 1))];
}

OpKind
pickActivation(Rng &rng)
{
    const double r = rng.uniform();
    if (r < 0.45)
        return OpKind::ReLU;
    if (r < 0.8)
        return OpKind::ReLU6;
    return OpKind::HSwish;
}

/** Inverted-bottleneck block (MobileNetV2 style). */
NodeId
mbconv(GraphBuilder &b, NodeId x, std::int32_t out_c, std::int32_t kernel,
       std::int32_t stride, std::int32_t expansion, bool use_se,
       OpKind act, bool allow_residual)
{
    const TensorShape in_shape = b.shapeOf(x);
    const std::int32_t in_c = in_shape.c;
    NodeId y = x;
    if (expansion > 1)
        y = b.convBnAct(y, in_c * expansion, 1, 1, 0, act);
    y = b.dwBnAct(y, kernel, stride, kernel / 2, act);
    if (use_se)
        y = b.squeezeExcite(y);
    // Linear projection.
    y = b.convBnAct(y, out_c, 1, 1, 0, OpKind::NumKinds);
    if (allow_residual && stride == 1 && in_c == out_c)
        y = b.add(x, y);
    return y;
}

/** Depthwise-separable block (MobileNetV1 style). */
NodeId
dwSeparable(GraphBuilder &b, NodeId x, std::int32_t out_c,
            std::int32_t kernel, std::int32_t stride, OpKind act)
{
    NodeId y = b.dwBnAct(x, kernel, stride, kernel / 2, act);
    return b.convBnAct(y, out_c, 1, 1, 0, act);
}

} // namespace

Graph
RandomNetworkGenerator::generateCandidate(const std::string &name, Rng &rng)
{
    GraphBuilder b(name, space_.input);
    NodeId x = b.input();

    // Stem: 3x3 stride-2 convolution.
    std::int32_t channels = pick(rng, space_.stem_channel_choices);
    const OpKind stem_act = pickActivation(rng);
    x = b.convBnAct(x, channels, 3, 2, 1, stem_act);

    const auto stages = static_cast<std::int32_t>(rng.uniformInt(
        space_.min_stages, space_.max_stages));
    for (std::int32_t stage = 0; stage < stages; ++stage) {
        const auto blocks = static_cast<std::int32_t>(rng.uniformInt(
            space_.min_blocks_per_stage, space_.max_blocks_per_stage));
        const double growth = rng.uniform(space_.channel_growth_min,
                                          space_.channel_growth_max);
        channels = std::min(roundChannels(channels * growth),
                            space_.max_channels);
        const OpKind act = pickActivation(rng);
        const std::int32_t kernel = pick(rng, space_.kernel_choices);
        for (std::int32_t blk = 0; blk < blocks; ++blk) {
            // Downsample on the first block of a stage while the map
            // is large enough.
            const bool can_stride = b.shapeOf(x).h >= 8;
            const std::int32_t stride =
                (blk == 0 && can_stride) ? 2 : 1;
            const double kind_r = rng.uniform();
            if (kind_r < space_.p_mbconv) {
                const std::int32_t expansion =
                    pick(rng, space_.expansion_choices);
                const bool se = rng.bernoulli(space_.se_probability);
                const bool residual =
                    rng.bernoulli(space_.residual_probability);
                x = mbconv(b, x, channels, kernel, stride, expansion, se,
                           act, residual);
            } else if (kind_r
                       < space_.p_mbconv + space_.p_dwseparable) {
                x = dwSeparable(b, x, channels, kernel, stride, act);
            } else {
                x = b.convBnAct(x, channels, 3, stride, 1, act);
            }
        }
    }

    // Optional 1x1 head expansion, then classifier.
    const std::int32_t head = pick(rng, space_.head_channel_choices);
    if (head > channels)
        x = b.convBnAct(x, head, 1, 1, 0, pickActivation(rng));
    x = b.globalAvgPool(x);
    x = b.fullyConnected(x, space_.num_classes);
    x = b.softmax(x);
    return b.build();
}

Graph
RandomNetworkGenerator::generate(const std::string &name)
{
    for (std::size_t attempt = 0; attempt < space_.max_attempts;
         ++attempt) {
        Rng rng = rng_.fork(nextStream_++);
        Graph g = generateCandidate(name, rng);
        const double mmacs = megaMacs(g);
        if (mmacs >= space_.min_mmacs && mmacs <= space_.max_mmacs) {
            verify::verifyGraphOrThrow(g, "RandomNetworkGenerator");
            return g;
        }
    }
    fatal("RandomNetworkGenerator: no candidate within [",
          space_.min_mmacs, ", ", space_.max_mmacs, "] MMACs after ",
          space_.max_attempts, " attempts");
}

std::vector<Graph>
RandomNetworkGenerator::generateSuite(std::size_t count,
                                      const std::string &prefix)
{
    std::vector<Graph> suite;
    suite.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        std::string num = std::to_string(i);
        while (num.size() < 3)
            num.insert(num.begin(), '0');
        suite.push_back(generate(prefix + num));
    }
    return suite;
}

} // namespace gcm::dnn

#include "dnn/generator.hh"

#include <algorithm>
#include <cmath>

#include "dnn/analysis.hh"
#include "util/error.hh"
#include "verify/verifier.hh"

namespace gcm::dnn
{

std::int32_t
roundChannels(double c)
{
    const auto rounded =
        static_cast<std::int32_t>(std::lround(c / 8.0)) * 8;
    return std::max(rounded, 8);
}

RandomNetworkGenerator::RandomNetworkGenerator(SearchSpace space,
                                               std::uint64_t seed)
    : space_(std::move(space)), rng_(seed)
{
    GCM_ASSERT(space_.min_stages >= 1
                   && space_.min_stages <= space_.max_stages,
               "SearchSpace: invalid stage bounds");
    GCM_ASSERT(space_.min_blocks_per_stage >= 1
                   && space_.min_blocks_per_stage
                       <= space_.max_blocks_per_stage,
               "SearchSpace: invalid block bounds");
    GCM_ASSERT(!space_.kernel_choices.empty()
                   && !space_.expansion_choices.empty()
                   && !space_.stem_channel_choices.empty(),
               "SearchSpace: empty choice list");
    GCM_ASSERT(space_.min_mmacs < space_.max_mmacs,
               "SearchSpace: invalid FLOPs window");
}

namespace
{

template <typename T>
T
pick(Rng &rng, const std::vector<T> &choices)
{
    return choices[static_cast<std::size_t>(rng.uniformInt(
        0, static_cast<std::int64_t>(choices.size()) - 1))];
}

OpKind
pickActivation(Rng &rng)
{
    const double r = rng.uniform();
    if (r < 0.45)
        return OpKind::ReLU;
    if (r < 0.8)
        return OpKind::ReLU6;
    return OpKind::HSwish;
}

/** Inverted-bottleneck block (MobileNetV2 style). */
NodeId
mbconv(GraphBuilder &b, NodeId x, std::int32_t out_c, std::int32_t kernel,
       std::int32_t stride, std::int32_t expansion, bool use_se,
       OpKind act, bool allow_residual)
{
    const TensorShape in_shape = b.shapeOf(x);
    const std::int32_t in_c = in_shape.c;
    NodeId y = x;
    if (expansion > 1)
        y = b.convBnAct(y, in_c * expansion, 1, 1, 0, act);
    y = b.dwBnAct(y, kernel, stride, kernel / 2, act);
    if (use_se)
        y = b.squeezeExcite(y);
    // Linear projection.
    y = b.convBnAct(y, out_c, 1, 1, 0, OpKind::NumKinds);
    if (allow_residual && stride == 1 && in_c == out_c)
        y = b.add(x, y);
    return y;
}

/** Depthwise-separable block (MobileNetV1 style). */
NodeId
dwSeparable(GraphBuilder &b, NodeId x, std::int32_t out_c,
            std::int32_t kernel, std::int32_t stride, OpKind act)
{
    NodeId y = b.dwBnAct(x, kernel, stride, kernel / 2, act);
    return b.convBnAct(y, out_c, 1, 1, 0, act);
}

} // namespace

const char *
blockKindName(BlockKind kind)
{
    switch (kind) {
      case BlockKind::MBConv: return "mb";
      case BlockKind::DwSeparable: return "dw";
      case BlockKind::PlainConv: return "conv";
    }
    return "?";
}

ArchGenome
sampleGenome(const SearchSpace &space, Rng &rng)
{
    ArchGenome genome;
    // The draw sequence below is the pre-genotype generator's, in
    // order; seeded suites (and everything derived from them) depend
    // on it staying exactly this.
    genome.stem_channels = pick(rng, space.stem_channel_choices);
    genome.stem_activation = pickActivation(rng);

    std::int32_t channels = genome.stem_channels;
    const auto stages = static_cast<std::int32_t>(rng.uniformInt(
        space.min_stages, space.max_stages));
    genome.stages.reserve(static_cast<std::size_t>(stages));
    for (std::int32_t stage = 0; stage < stages; ++stage) {
        StageGene sg;
        const auto blocks = static_cast<std::int32_t>(rng.uniformInt(
            space.min_blocks_per_stage, space.max_blocks_per_stage));
        const double growth = rng.uniform(space.channel_growth_min,
                                          space.channel_growth_max);
        channels = std::min(roundChannels(channels * growth),
                            space.max_channels);
        sg.channels = channels;
        sg.activation = pickActivation(rng);
        sg.kernel = pick(rng, space.kernel_choices);
        sg.blocks.reserve(static_cast<std::size_t>(blocks));
        for (std::int32_t blk = 0; blk < blocks; ++blk) {
            BlockGene bg;
            const double kind_r = rng.uniform();
            if (kind_r < space.p_mbconv) {
                bg.kind = BlockKind::MBConv;
                bg.expansion = pick(rng, space.expansion_choices);
                bg.se = rng.bernoulli(space.se_probability);
                bg.residual =
                    rng.bernoulli(space.residual_probability);
            } else if (kind_r
                       < space.p_mbconv + space.p_dwseparable) {
                bg.kind = BlockKind::DwSeparable;
            } else {
                bg.kind = BlockKind::PlainConv;
            }
            sg.blocks.push_back(bg);
        }
        genome.stages.push_back(std::move(sg));
    }

    genome.head_channels = pick(rng, space.head_channel_choices);
    // The head activation draw is conditional in the original
    // generator; genomes where the head does not expand keep the
    // default without consuming a draw.
    if (genome.head_channels > channels)
        genome.head_activation = pickActivation(rng);
    return genome;
}

namespace
{

bool
validActivation(OpKind act)
{
    return act == OpKind::ReLU || act == OpKind::ReLU6
        || act == OpKind::HSwish;
}

} // namespace

void
validateGenome(const ArchGenome &genome, const SearchSpace &space)
{
    const auto check = [](bool ok, const char *what) {
        if (!ok)
            fatal("validateGenome: ", what);
    };
    check(genome.stem_channels >= 8 && genome.stem_channels % 8 == 0,
          "stem channels must be a positive multiple of 8");
    check(validActivation(genome.stem_activation),
          "stem activation must be ReLU/ReLU6/HSwish");
    check(genome.head_channels >= 0, "head channels must be >= 0");
    check(genome.head_channels == 0
              || validActivation(genome.head_activation),
          "head activation must be ReLU/ReLU6/HSwish");
    check(!genome.stages.empty(), "genome needs at least one stage");
    for (const StageGene &sg : genome.stages) {
        check(sg.channels >= 8 && sg.channels % 8 == 0
                  && sg.channels <= space.max_channels,
              "stage channels must be a multiple of 8 in [8, max]");
        check(sg.kernel >= 1 && sg.kernel % 2 == 1,
              "stage kernel must be odd and positive");
        check(validActivation(sg.activation),
              "stage activation must be ReLU/ReLU6/HSwish");
        check(!sg.blocks.empty(), "stage needs at least one block");
        for (const BlockGene &bg : sg.blocks) {
            check(bg.kind == BlockKind::MBConv
                      || bg.kind == BlockKind::DwSeparable
                      || bg.kind == BlockKind::PlainConv,
                  "unknown block kind");
            check(bg.expansion >= 1, "expansion must be >= 1");
        }
    }
}

Graph
buildGenome(const ArchGenome &genome, const SearchSpace &space,
            const std::string &name)
{
    GraphBuilder b(name, space.input);
    NodeId x = b.input();

    // Stem: 3x3 stride-2 convolution.
    x = b.convBnAct(x, genome.stem_channels, 3, 2, 1,
                    genome.stem_activation);

    for (const StageGene &sg : genome.stages) {
        for (std::size_t blk = 0; blk < sg.blocks.size(); ++blk) {
            // Downsample on the first block of a stage while the map
            // is large enough.
            const bool can_stride = b.shapeOf(x).h >= 8;
            const std::int32_t stride =
                (blk == 0 && can_stride) ? 2 : 1;
            const BlockGene &bg = sg.blocks[blk];
            switch (bg.kind) {
              case BlockKind::MBConv:
                x = mbconv(b, x, sg.channels, sg.kernel, stride,
                           bg.expansion, bg.se, sg.activation,
                           bg.residual);
                break;
              case BlockKind::DwSeparable:
                x = dwSeparable(b, x, sg.channels, sg.kernel, stride,
                                sg.activation);
                break;
              case BlockKind::PlainConv:
                x = b.convBnAct(x, sg.channels, 3, stride, 1,
                                sg.activation);
                break;
            }
        }
    }

    // Optional 1x1 head expansion, then classifier.
    const std::int32_t last_channels =
        genome.stages.empty() ? genome.stem_channels
                              : genome.stages.back().channels;
    if (genome.head_channels > last_channels) {
        x = b.convBnAct(x, genome.head_channels, 1, 1, 0,
                        genome.head_activation);
    }
    x = b.globalAvgPool(x);
    x = b.fullyConnected(x, space.num_classes);
    x = b.softmax(x);
    return b.build();
}

namespace
{

const char *
activationTag(OpKind act)
{
    switch (act) {
      case OpKind::ReLU: return "relu";
      case OpKind::ReLU6: return "relu6";
      case OpKind::HSwish: return "hswish";
      default: return "?";
    }
}

} // namespace

std::string
formatGenome(const ArchGenome &genome)
{
    std::string out = "stem" + std::to_string(genome.stem_channels)
        + "-" + activationTag(genome.stem_activation);
    for (const StageGene &sg : genome.stages) {
        out += "|c" + std::to_string(sg.channels) + "-k"
            + std::to_string(sg.kernel) + "-"
            + activationTag(sg.activation) + ":";
        for (std::size_t i = 0; i < sg.blocks.size(); ++i) {
            const BlockGene &bg = sg.blocks[i];
            if (i > 0)
                out += ",";
            out += blockKindName(bg.kind);
            if (bg.kind == BlockKind::MBConv) {
                out += std::to_string(bg.expansion);
                if (bg.se)
                    out += "-se";
                if (bg.residual)
                    out += "-r";
            }
        }
    }
    out += "|head" + std::to_string(genome.head_channels);
    if (genome.head_channels > 0)
        out += std::string("-") + activationTag(genome.head_activation);
    return out;
}

Graph
RandomNetworkGenerator::generateCandidate(const std::string &name, Rng &rng)
{
    return buildGenome(sampleGenome(space_, rng), space_, name);
}

Graph
RandomNetworkGenerator::generate(const std::string &name)
{
    for (std::size_t attempt = 0; attempt < space_.max_attempts;
         ++attempt) {
        Rng rng = rng_.fork(nextStream_++);
        Graph g = generateCandidate(name, rng);
        const double mmacs = megaMacs(g);
        if (mmacs >= space_.min_mmacs && mmacs <= space_.max_mmacs) {
            verify::verifyGraphOrThrow(g, "RandomNetworkGenerator");
            return g;
        }
    }
    fatal("RandomNetworkGenerator: no candidate within [",
          space_.min_mmacs, ", ", space_.max_mmacs, "] MMACs after ",
          space_.max_attempts, " attempts");
}

std::vector<Graph>
RandomNetworkGenerator::generateSuite(std::size_t count,
                                      const std::string &prefix)
{
    std::vector<Graph> suite;
    suite.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        std::string num = std::to_string(i);
        while (num.size() < 3)
            num.insert(num.begin(), '0');
        suite.push_back(generate(prefix + num));
    }
    return suite;
}

} // namespace gcm::dnn

#include "dnn/quantize.hh"

#include <vector>

#include "util/error.hh"
#include "verify/verifier.hh"

namespace gcm::dnn
{

Graph
quantize(const Graph &graph)
{
    graph.validate();
    const auto &nodes = graph.nodes();

    // Consumer counts in the original graph; a node is fusable into
    // its producer only when that producer feeds nothing else.
    std::vector<std::size_t> consumers(nodes.size(), 0);
    for (const auto &n : nodes) {
        for (NodeId in : n.inputs)
            ++consumers[static_cast<std::size_t>(in)];
    }

    std::vector<Node> out;
    out.reserve(nodes.size());
    // remap[old id] -> new id of the node now producing that value.
    std::vector<NodeId> remap(nodes.size(), -1);
    // exclusive[new id]: every original node aliased onto this new node
    // has at most one consumer, so absorbing further ops is safe.
    std::vector<bool> exclusive;

    auto fusable_producer = [](OpKind k) {
        return k == OpKind::Conv2d || k == OpKind::DepthwiseConv2d
            || k == OpKind::FullyConnected || k == OpKind::Add;
    };

    for (const auto &n : nodes) {
        const std::size_t oid = static_cast<std::size_t>(n.id);
        if (n.kind == OpKind::BatchNorm) {
            // Folded into the producing convolution: structurally an
            // identity once weights are merged.
            const auto new_prod = static_cast<std::size_t>(
                remap[static_cast<std::size_t>(n.inputs[0])]);
            remap[oid] = static_cast<NodeId>(new_prod);
            if (consumers[oid] > 1)
                exclusive[new_prod] = false;
            continue;
        }
        if (n.kind == OpKind::ReLU || n.kind == OpKind::ReLU6) {
            const auto new_prod = static_cast<std::size_t>(
                remap[static_cast<std::size_t>(n.inputs[0])]);
            Node &prod = out[new_prod];
            if (exclusive[new_prod] && fusable_producer(prod.kind)
                && prod.params.fused_activation == FusedActivation::None) {
                prod.params.fused_activation = toFusedActivation(n.kind);
                remap[oid] = static_cast<NodeId>(new_prod);
                if (consumers[oid] > 1)
                    exclusive[new_prod] = false;
                continue;
            }
        }
        Node copy = n;
        copy.id = static_cast<NodeId>(out.size());
        for (auto &in : copy.inputs) {
            in = remap[static_cast<std::size_t>(in)];
            GCM_ASSERT(in >= 0, "quantize: dangling input after fold");
        }
        remap[oid] = copy.id;
        out.push_back(std::move(copy));
        exclusive.push_back(consumers[oid] <= 1);
    }

    Graph q(graph.name(), std::move(out), Precision::Int8);
    q.validate();
#ifndef NDEBUG
    // The rewiring above is the one place node ids are remapped by
    // hand; re-verify the deployment graph end to end in debug mode.
    verify::verifyGraphOrThrow(q, "quantize");
#endif
    return q;
}

} // namespace gcm::dnn

/**
 * @file
 * NHWC tensor shapes flowing along graph edges.
 */

#ifndef GCM_DNN_TENSOR_HH
#define GCM_DNN_TENSOR_HH

#include <cstdint>
#include <string>

namespace gcm::dnn
{

/** Static NHWC shape; batch is always 1 in this project. */
struct TensorShape
{
    std::int32_t n = 1;
    std::int32_t h = 1;
    std::int32_t w = 1;
    std::int32_t c = 1;

    std::int64_t
    elements() const
    {
        return static_cast<std::int64_t>(n) * h * w * c;
    }

    bool operator==(const TensorShape &) const = default;

    std::string
    str() const
    {
        return "[" + std::to_string(n) + "," + std::to_string(h) + ","
            + std::to_string(w) + "," + std::to_string(c) + "]";
    }
};

} // namespace gcm::dnn

#endif // GCM_DNN_TENSOR_HH

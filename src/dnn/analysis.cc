#include "dnn/analysis.hh"

#include "util/error.hh"

namespace gcm::dnn
{

namespace
{

std::int64_t
bytesPerElement(Precision p)
{
    return p == Precision::Int8 ? 1 : 4;
}

} // namespace

NodeCost
nodeCost(const Graph &graph, const Node &node)
{
    NodeCost c;
    const std::int64_t elem_bytes = bytesPerElement(graph.precision());
    const std::int64_t out_elems = node.shape.elements();
    c.output_bytes = out_elems * elem_bytes;
    for (NodeId in : node.inputs)
        c.input_bytes += graph.node(in).shape.elements() * elem_bytes;

    switch (node.kind) {
      case OpKind::Input:
        c.input_bytes = 0;
        break;
      case OpKind::Conv2d: {
        const TensorShape &in = graph.node(node.inputs[0]).shape;
        const std::int64_t k = node.params.kernel;
        const std::int64_t g = node.params.groups;
        const std::int64_t weights =
            k * k * (in.c / g) * node.shape.c;
        c.macs = static_cast<std::int64_t>(node.shape.h) * node.shape.w
            * node.shape.c * k * k * (in.c / g);
        c.params = weights + node.shape.c; // + bias
        c.weight_bytes = weights * elem_bytes + node.shape.c * 4;
        break;
      }
      case OpKind::DepthwiseConv2d: {
        const std::int64_t k = node.params.kernel;
        const std::int64_t weights = k * k * node.shape.c;
        c.macs = static_cast<std::int64_t>(node.shape.h) * node.shape.w
            * node.shape.c * k * k;
        c.params = weights + node.shape.c;
        c.weight_bytes = weights * elem_bytes + node.shape.c * 4;
        break;
      }
      case OpKind::FullyConnected: {
        const std::int64_t in_features =
            graph.node(node.inputs[0]).shape.elements();
        const std::int64_t weights = in_features * node.shape.c;
        c.macs = weights;
        c.params = weights + node.shape.c;
        c.weight_bytes = weights * elem_bytes + node.shape.c * 4;
        break;
      }
      case OpKind::MaxPool2d:
      case OpKind::AvgPool2d:
        c.simple_ops = out_elems * node.params.kernel * node.params.kernel;
        break;
      case OpKind::GlobalAvgPool:
        // One accumulate per input element.
        c.simple_ops = graph.node(node.inputs[0]).shape.elements();
        break;
      case OpKind::Add:
      case OpKind::Mul:
      case OpKind::ReLU:
      case OpKind::ReLU6:
        c.simple_ops = out_elems;
        break;
      case OpKind::HSwish:
      case OpKind::Sigmoid:
      case OpKind::Softmax:
        // Transcendental-ish: a handful of ops per element.
        c.simple_ops = out_elems * 4;
        break;
      case OpKind::BatchNorm:
        c.simple_ops = out_elems * 2;
        c.params = 2 * node.shape.c;
        c.weight_bytes = 2 * node.shape.c * 4;
        break;
      case OpKind::Concat:
      case OpKind::ChannelShuffle:
        c.simple_ops = out_elems; // pure data movement
        break;
      default:
        GCM_ASSERT(false, "nodeCost: unhandled op kind");
    }
    return c;
}

std::int64_t
totalMacs(const Graph &graph)
{
    std::int64_t total = 0;
    for (const auto &n : graph.nodes())
        total += nodeCost(graph, n).macs;
    return total;
}

std::int64_t
totalParams(const Graph &graph)
{
    std::int64_t total = 0;
    for (const auto &n : graph.nodes())
        total += nodeCost(graph, n).params;
    return total;
}

double
megaMacs(const Graph &graph)
{
    return static_cast<double>(totalMacs(graph)) / 1e6;
}

} // namespace gcm::dnn

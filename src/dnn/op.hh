/**
 * @file
 * Operator vocabulary of the DNN intermediate representation.
 *
 * The set mirrors what TFLite sees after converting the paper's
 * PyTorch networks: convolutions (grouped/depthwise), fully-connected,
 * pooling, elementwise arithmetic (skip connections,
 * squeeze-and-excite scaling), activations, batch-norm (pre-fusion),
 * concat and softmax.
 */

#ifndef GCM_DNN_OP_HH
#define GCM_DNN_OP_HH

#include <cstdint>
#include <string>

namespace gcm::dnn
{

/** Operator kinds representable in a Graph. */
enum class OpKind : std::uint8_t
{
    Input = 0,
    Conv2d,
    DepthwiseConv2d,
    FullyConnected,
    MaxPool2d,
    AvgPool2d,
    GlobalAvgPool,
    Add,
    Mul,
    Concat,
    ReLU,
    ReLU6,
    HSwish,
    Sigmoid,
    BatchNorm,
    Softmax,
    ChannelShuffle,
    NumKinds // sentinel; keep last
};

/** Number of operator kinds (excluding the sentinel). */
constexpr std::size_t kNumOpKinds =
    static_cast<std::size_t>(OpKind::NumKinds);

/** Stable display name of an operator kind. */
const char *opKindName(OpKind kind);

/** True for kinds with kernel/stride/padding parameters. */
bool opHasWindow(OpKind kind);

/** True for kinds carrying trainable weights. */
bool opHasWeights(OpKind kind);

/** True for pure activation functions. */
bool opIsActivation(OpKind kind);

/**
 * Activation fused into a producing op after the TFLite-style
 * quantization/fusion pass.
 */
enum class FusedActivation : std::uint8_t
{
    None = 0,
    ReLU,
    ReLU6,
    HSwish,
    Sigmoid,
};

/** Display name of a fused activation. */
const char *fusedActivationName(FusedActivation act);

/** Map an activation OpKind to its fused form. @pre opIsActivation */
FusedActivation toFusedActivation(OpKind kind);

/** Parameters attached to a node; fields unused by a kind stay 0/1. */
struct OpParams
{
    /** Square kernel / pooling window size. */
    std::int32_t kernel = 0;
    std::int32_t stride = 1;
    /** Symmetric spatial padding. */
    std::int32_t padding = 0;
    /** Output channels for conv/fc; 0 = same as input. */
    std::int32_t out_channels = 0;
    /** Grouped convolution factor (Conv2d only). */
    std::int32_t groups = 1;
    /** Activation fused into this op (set by the fusion pass). */
    FusedActivation fused_activation = FusedActivation::None;

    bool operator==(const OpParams &) const = default;
};

} // namespace gcm::dnn

#endif // GCM_DNN_OP_HH

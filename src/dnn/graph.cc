#include "dnn/graph.hh"

#include <sstream>

#include "util/error.hh"
#include "verify/verifier.hh"

namespace gcm::dnn
{

namespace
{

/** Conv / pool spatial output size. Throws on invalid geometry. */
std::int32_t
windowOutput(std::int32_t in, std::int32_t kernel, std::int32_t stride,
             std::int32_t padding, const char *what)
{
    if (kernel <= 0 || stride <= 0 || padding < 0)
        fatal(what, ": invalid window (k=", kernel, ", s=", stride,
              ", p=", padding, ")");
    const std::int32_t eff = in + 2 * padding - kernel;
    if (eff < 0) {
        fatal(what, ": window larger than padded input (in=", in,
              ", k=", kernel, ", p=", padding, ")");
    }
    return eff / stride + 1;
}

} // namespace

Graph::Graph(std::string name, std::vector<Node> nodes, Precision precision)
    : name_(std::move(name)), nodes_(std::move(nodes)),
      precision_(precision)
{}

const Node &
Graph::node(NodeId id) const
{
    GCM_ASSERT(id >= 0 && static_cast<std::size_t>(id) < nodes_.size(),
               "Graph::node: id out of range");
    return nodes_[static_cast<std::size_t>(id)];
}

const Node &
Graph::outputNode() const
{
    GCM_ASSERT(!nodes_.empty(), "Graph::outputNode: empty graph");
    return nodes_.back();
}

const TensorShape &
Graph::inputShape() const
{
    GCM_ASSERT(!nodes_.empty(), "Graph::inputShape: empty graph");
    return nodes_.front().shape;
}

void
Graph::validate() const
{
    if (nodes_.empty())
        fatal("graph '", name_, "': empty");
    if (nodes_.front().kind != OpKind::Input)
        fatal("graph '", name_, "': first node must be Input");
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
        const Node &n = nodes_[i];
        if (n.id != static_cast<NodeId>(i))
            fatal("graph '", name_, "': node id mismatch at ", i);
        if (n.kind == OpKind::Input) {
            if (i != 0)
                fatal("graph '", name_, "': interior Input node");
            if (!n.inputs.empty())
                fatal("graph '", name_, "': Input with predecessors");
            continue;
        }
        if (n.inputs.empty())
            fatal("graph '", name_, "': node ", i, " has no inputs");
        const bool binary = n.kind == OpKind::Add || n.kind == OpKind::Mul;
        if (binary && n.inputs.size() != 2) {
            fatal("graph '", name_, "': ", opKindName(n.kind),
                  " must have 2 inputs");
        }
        if (!binary && n.kind != OpKind::Concat && n.inputs.size() != 1) {
            fatal("graph '", name_, "': ", opKindName(n.kind),
                  " must have 1 input");
        }
        for (NodeId in : n.inputs) {
            if (in < 0 || in >= n.id) {
                fatal("graph '", name_,
                      "': non-topological edge ", in, " -> ", n.id);
            }
        }
    }
}

std::size_t
Graph::countKind(OpKind kind) const
{
    std::size_t c = 0;
    for (const auto &n : nodes_) {
        if (n.kind == kind)
            ++c;
    }
    return c;
}

std::string
Graph::str() const
{
    std::ostringstream oss;
    oss << "graph " << name_ << " ("
        << (precision_ == Precision::Int8 ? "int8" : "fp32") << ", "
        << nodes_.size() << " nodes)\n";
    for (const auto &n : nodes_) {
        oss << "  %" << n.id << " = " << opKindName(n.kind) << "(";
        for (std::size_t i = 0; i < n.inputs.size(); ++i) {
            if (i)
                oss << ", ";
            oss << "%" << n.inputs[i];
        }
        oss << ")";
        if (opHasWindow(n.kind)) {
            oss << " k=" << n.params.kernel << " s=" << n.params.stride
                << " p=" << n.params.padding;
        }
        if (n.kind == OpKind::Conv2d && n.params.groups > 1)
            oss << " g=" << n.params.groups;
        if (n.params.fused_activation != FusedActivation::None)
            oss << " act=" << fusedActivationName(n.params.fused_activation);
        oss << " -> " << n.shape.str() << "\n";
    }
    return oss.str();
}

GraphBuilder::GraphBuilder(std::string name, TensorShape input_shape)
    : name_(std::move(name))
{
    if (input_shape.n != 1) {
        fatal("GraphBuilder: only batch size 1 is supported (got ",
              input_shape.n, ")");
    }
    if (input_shape.h <= 0 || input_shape.w <= 0 || input_shape.c <= 0)
        fatal("GraphBuilder: invalid input shape ", input_shape.str());
    Node in;
    in.id = 0;
    in.kind = OpKind::Input;
    in.shape = input_shape;
    nodes_.push_back(std::move(in));
}

const Node &
GraphBuilder::nodeRef(NodeId id) const
{
    if (id < 0 || static_cast<std::size_t>(id) >= nodes_.size())
        fatal("GraphBuilder: node id ", id, " out of range");
    return nodes_[static_cast<std::size_t>(id)];
}

const TensorShape &
GraphBuilder::shapeOf(NodeId id) const
{
    return nodeRef(id).shape;
}

NodeId
GraphBuilder::append(OpKind kind, OpParams params, std::vector<NodeId> ins,
                     TensorShape shape)
{
    GCM_ASSERT(!built_, "GraphBuilder: reuse after build()");
    Node n;
    n.id = static_cast<NodeId>(nodes_.size());
    n.kind = kind;
    n.params = params;
    n.inputs = std::move(ins);
    n.shape = shape;
    nodes_.push_back(std::move(n));
    return nodes_.back().id;
}

NodeId
GraphBuilder::conv2d(NodeId in, std::int32_t out_channels,
                     std::int32_t kernel, std::int32_t stride,
                     std::int32_t padding, std::int32_t groups)
{
    const TensorShape &s = shapeOf(in);
    if (out_channels <= 0)
        fatal("conv2d: out_channels must be positive");
    if (groups <= 0 || s.c % groups != 0 || out_channels % groups != 0) {
        fatal("conv2d: groups=", groups, " must divide in_c=", s.c,
              " and out_c=", out_channels);
    }
    TensorShape out = s;
    out.h = windowOutput(s.h, kernel, stride, padding, "conv2d");
    out.w = windowOutput(s.w, kernel, stride, padding, "conv2d");
    out.c = out_channels;
    OpParams p;
    p.kernel = kernel;
    p.stride = stride;
    p.padding = padding;
    p.out_channels = out_channels;
    p.groups = groups;
    return append(OpKind::Conv2d, p, {in}, out);
}

NodeId
GraphBuilder::depthwiseConv2d(NodeId in, std::int32_t kernel,
                              std::int32_t stride, std::int32_t padding)
{
    const TensorShape &s = shapeOf(in);
    TensorShape out = s;
    out.h = windowOutput(s.h, kernel, stride, padding, "depthwiseConv2d");
    out.w = windowOutput(s.w, kernel, stride, padding, "depthwiseConv2d");
    OpParams p;
    p.kernel = kernel;
    p.stride = stride;
    p.padding = padding;
    p.out_channels = s.c;
    p.groups = s.c;
    return append(OpKind::DepthwiseConv2d, p, {in}, out);
}

NodeId
GraphBuilder::fullyConnected(NodeId in, std::int32_t out_features)
{
    if (out_features <= 0)
        fatal("fullyConnected: out_features must be positive");
    const TensorShape &s = shapeOf(in);
    TensorShape out{1, 1, 1, out_features};
    OpParams p;
    p.out_channels = out_features;
    // The flattened input width is s.elements(); recorded implicitly
    // via the producer's shape.
    (void)s;
    return append(OpKind::FullyConnected, p, {in}, out);
}

NodeId
GraphBuilder::maxPool2d(NodeId in, std::int32_t kernel, std::int32_t stride,
                        std::int32_t padding)
{
    const TensorShape &s = shapeOf(in);
    TensorShape out = s;
    out.h = windowOutput(s.h, kernel, stride, padding, "maxPool2d");
    out.w = windowOutput(s.w, kernel, stride, padding, "maxPool2d");
    OpParams p;
    p.kernel = kernel;
    p.stride = stride;
    p.padding = padding;
    return append(OpKind::MaxPool2d, p, {in}, out);
}

NodeId
GraphBuilder::avgPool2d(NodeId in, std::int32_t kernel, std::int32_t stride,
                        std::int32_t padding)
{
    const TensorShape &s = shapeOf(in);
    TensorShape out = s;
    out.h = windowOutput(s.h, kernel, stride, padding, "avgPool2d");
    out.w = windowOutput(s.w, kernel, stride, padding, "avgPool2d");
    OpParams p;
    p.kernel = kernel;
    p.stride = stride;
    p.padding = padding;
    return append(OpKind::AvgPool2d, p, {in}, out);
}

NodeId
GraphBuilder::globalAvgPool(NodeId in)
{
    const TensorShape &s = shapeOf(in);
    TensorShape out{1, 1, 1, s.c};
    OpParams p;
    p.kernel = s.h; // informative: window spans the input
    p.stride = 1;
    return append(OpKind::GlobalAvgPool, p, {in}, out);
}

NodeId
GraphBuilder::add(NodeId a, NodeId b)
{
    const TensorShape &sa = shapeOf(a);
    const TensorShape &sb = shapeOf(b);
    if (!(sa == sb)) {
        fatal("add: shape mismatch ", sa.str(), " vs ", sb.str(),
              " in graph '", name_, "'");
    }
    return append(OpKind::Add, {}, {a, b}, sa);
}

NodeId
GraphBuilder::mul(NodeId a, NodeId b)
{
    const TensorShape &sa = shapeOf(a);
    const TensorShape &sb = shapeOf(b);
    const bool broadcast = sb.h == 1 && sb.w == 1 && sb.c == sa.c;
    if (!(sa == sb) && !broadcast) {
        fatal("mul: shapes not multiplicable ", sa.str(), " vs ",
              sb.str());
    }
    return append(OpKind::Mul, {}, {a, b}, sa);
}

NodeId
GraphBuilder::concat(const std::vector<NodeId> &ins)
{
    if (ins.size() < 2)
        fatal("concat: needs at least 2 inputs");
    TensorShape out = shapeOf(ins[0]);
    std::int32_t c = 0;
    for (NodeId id : ins) {
        const TensorShape &s = shapeOf(id);
        if (s.h != out.h || s.w != out.w) {
            fatal("concat: spatial mismatch ", s.str(), " vs ",
                  out.str());
        }
        c += s.c;
    }
    out.c = c;
    return append(OpKind::Concat, {}, ins, out);
}

NodeId
GraphBuilder::relu(NodeId in)
{
    return append(OpKind::ReLU, {}, {in}, shapeOf(in));
}

NodeId
GraphBuilder::relu6(NodeId in)
{
    return append(OpKind::ReLU6, {}, {in}, shapeOf(in));
}

NodeId
GraphBuilder::hswish(NodeId in)
{
    return append(OpKind::HSwish, {}, {in}, shapeOf(in));
}

NodeId
GraphBuilder::sigmoid(NodeId in)
{
    return append(OpKind::Sigmoid, {}, {in}, shapeOf(in));
}

NodeId
GraphBuilder::batchNorm(NodeId in)
{
    return append(OpKind::BatchNorm, {}, {in}, shapeOf(in));
}

NodeId
GraphBuilder::softmax(NodeId in)
{
    return append(OpKind::Softmax, {}, {in}, shapeOf(in));
}

NodeId
GraphBuilder::channelShuffle(NodeId in, std::int32_t groups)
{
    const TensorShape &s = shapeOf(in);
    if (groups <= 0 || s.c % groups != 0) {
        fatal("channelShuffle: groups=", groups,
              " must divide channels=", s.c);
    }
    OpParams p;
    p.groups = groups;
    return append(OpKind::ChannelShuffle, p, {in}, s);
}

NodeId
GraphBuilder::convBnAct(NodeId in, std::int32_t out_channels,
                        std::int32_t kernel, std::int32_t stride,
                        std::int32_t padding, OpKind activation,
                        std::int32_t groups)
{
    NodeId x = conv2d(in, out_channels, kernel, stride, padding, groups);
    x = batchNorm(x);
    if (activation == OpKind::NumKinds)
        return x; // linear (no activation), e.g. MBConv projection
    if (!opIsActivation(activation))
        fatal("convBnAct: not an activation kind");
    return append(activation, {}, {x}, shapeOf(x));
}

NodeId
GraphBuilder::dwBnAct(NodeId in, std::int32_t kernel, std::int32_t stride,
                      std::int32_t padding, OpKind activation)
{
    NodeId x = depthwiseConv2d(in, kernel, stride, padding);
    x = batchNorm(x);
    if (activation == OpKind::NumKinds)
        return x;
    if (!opIsActivation(activation))
        fatal("dwBnAct: not an activation kind");
    return append(activation, {}, {x}, shapeOf(x));
}

NodeId
GraphBuilder::squeezeExcite(NodeId in, std::int32_t reduction)
{
    // Copy the channel count: shapeOf() returns a reference into
    // nodes_, which the appends below may reallocate.
    const std::int32_t channels = shapeOf(in).c;
    const std::int32_t squeezed =
        std::max<std::int32_t>(channels / reduction, 8);
    NodeId g = globalAvgPool(in);
    NodeId f1 = fullyConnected(g, squeezed);
    NodeId a1 = relu(f1);
    NodeId f2 = fullyConnected(a1, channels);
    NodeId a2 = sigmoid(f2);
    return mul(in, a2);
}

Graph
GraphBuilder::build()
{
    GCM_ASSERT(!built_, "GraphBuilder: build() called twice");
    built_ = true;
    Graph g(std::move(name_), std::move(nodes_), Precision::Float32);
    g.validate();
#ifndef NDEBUG
    // Debug-mode belt and braces: the incremental shape inference
    // should already guarantee this, so any finding is a builder bug.
    verify::verifyGraphOrThrow(g, "GraphBuilder::build");
#endif
    return g;
}

} // namespace gcm::dnn

/**
 * @file
 * Model zoo: the 18 popular pre-designed networks of the paper's
 * benchmark suite — MobileNet V1/V2/V3 (several width multipliers),
 * SqueezeNet 1.0/1.1, MnasNet A1/B1, ProxylessNAS (Mobile/CPU/GPU),
 * FBNet A/C and SinglePath-NAS.
 *
 * Architectures are encoded from the original papers. Where a NAS
 * paper leaves block-level details ambiguous, the closest published
 * variant is used; latency characterization only depends on the
 * block structure, which is preserved.
 */

#ifndef GCM_DNN_ZOO_HH
#define GCM_DNN_ZOO_HH

#include <string>
#include <vector>

#include "dnn/graph.hh"

namespace gcm::dnn
{

/** Names of all zoo models, in canonical order (18 entries). */
const std::vector<std::string> &zooModelNames();

/**
 * Extra models beyond the paper's 18-network suite (EfficientNet-B0,
 * ShuffleNetV2, ResNet-18), used to probe the cost model on network
 * families absent from training. buildZooModel accepts these too.
 */
const std::vector<std::string> &extendedZooModelNames();

/** Build a zoo model by name. Throws GcmError for unknown names. */
Graph buildZooModel(const std::string &name);

/** Build the full 18-network zoo. */
std::vector<Graph> buildZoo();

} // namespace gcm::dnn

#endif // GCM_DNN_ZOO_HH

#include "dnn/fingerprint.hh"

namespace gcm::dnn
{

namespace
{

/** 64-bit FNV-1a over a stream of 64-bit words. */
class Fnv64
{
  public:
    void
    mix(std::uint64_t word)
    {
        // Feed one byte at a time so words with equal low bytes but
        // different lengths of history cannot collide trivially.
        for (int i = 0; i < 8; ++i) {
            state_ ^= (word >> (i * 8)) & 0xffu;
            state_ *= 0x100000001b3ULL;
        }
    }

    std::uint64_t value() const { return state_; }

  private:
    std::uint64_t state_ = 0xcbf29ce484222325ULL;
};

} // namespace

std::uint64_t
graphFingerprint(const Graph &graph)
{
    Fnv64 h;
    h.mix(static_cast<std::uint64_t>(graph.precision()));
    h.mix(graph.numNodes());
    for (const auto &n : graph.nodes()) {
        h.mix(static_cast<std::uint64_t>(n.kind));
        h.mix(static_cast<std::uint64_t>(
            static_cast<std::int64_t>(n.params.kernel)));
        h.mix(static_cast<std::uint64_t>(
            static_cast<std::int64_t>(n.params.stride)));
        h.mix(static_cast<std::uint64_t>(
            static_cast<std::int64_t>(n.params.padding)));
        h.mix(static_cast<std::uint64_t>(
            static_cast<std::int64_t>(n.params.out_channels)));
        h.mix(static_cast<std::uint64_t>(
            static_cast<std::int64_t>(n.params.groups)));
        h.mix(static_cast<std::uint64_t>(n.params.fused_activation));
        h.mix(n.inputs.size());
        for (const NodeId in : n.inputs)
            h.mix(static_cast<std::uint64_t>(static_cast<std::int64_t>(in)));
        h.mix(static_cast<std::uint64_t>(
            static_cast<std::int64_t>(n.shape.n)));
        h.mix(static_cast<std::uint64_t>(
            static_cast<std::int64_t>(n.shape.h)));
        h.mix(static_cast<std::uint64_t>(
            static_cast<std::int64_t>(n.shape.w)));
        h.mix(static_cast<std::uint64_t>(
            static_cast<std::int64_t>(n.shape.c)));
    }
    return h.value();
}

} // namespace gcm::dnn

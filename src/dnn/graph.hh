/**
 * @file
 * DNN graph intermediate representation.
 *
 * A Graph is a DAG of operator nodes in topological order (guaranteed
 * by construction through GraphBuilder). Shape inference runs as nodes
 * are appended, so every node carries its resolved output shape.
 */

#ifndef GCM_DNN_GRAPH_HH
#define GCM_DNN_GRAPH_HH

#include <cstdint>
#include <string>
#include <vector>

#include "dnn/op.hh"
#include "dnn/tensor.hh"

namespace gcm::dnn
{

/** Identifier of a node within its graph. */
using NodeId = std::int32_t;

/** One operator instance. */
struct Node
{
    NodeId id = -1;
    OpKind kind = OpKind::Input;
    OpParams params;
    /** Producer nodes, in argument order. */
    std::vector<NodeId> inputs;
    /** Output shape, resolved at construction. */
    TensorShape shape;
};

/** Numeric precision the graph is lowered to. */
enum class Precision : std::uint8_t
{
    Float32,
    Int8, // after TFLite-style post-training quantization
};

/** An immutable-ish DNN model graph. */
class Graph
{
  public:
    Graph() = default;
    Graph(std::string name, std::vector<Node> nodes, Precision precision);

    const std::string &name() const { return name_; }
    Precision precision() const { return precision_; }

    std::size_t numNodes() const { return nodes_.size(); }
    const Node &node(NodeId id) const;
    const std::vector<Node> &nodes() const { return nodes_; }

    /** The graph output is the last node by convention. */
    const Node &outputNode() const;

    /** Input shape (shape of node 0). */
    const TensorShape &inputShape() const;

    /**
     * Structural validation: ids match positions, inputs reference
     * earlier nodes, arities and shape rules hold. Throws GcmError.
     */
    void validate() const;

    /** Count nodes of a given kind. */
    std::size_t countKind(OpKind kind) const;

    /** Human-readable multi-line dump. */
    std::string str() const;

  private:
    std::string name_;
    std::vector<Node> nodes_;
    Precision precision_ = Precision::Float32;
};

/**
 * Incremental graph construction with shape inference.
 *
 * All builder methods return the NodeId of the appended node and throw
 * GcmError for invalid parameters (non-positive kernels, mismatched
 * elementwise shapes, indivisible group counts, ...).
 */
class GraphBuilder
{
  public:
    GraphBuilder(std::string name, TensorShape input_shape);

    /** Id of the input node (always 0). */
    NodeId input() const { return 0; }

    NodeId conv2d(NodeId in, std::int32_t out_channels,
                  std::int32_t kernel, std::int32_t stride,
                  std::int32_t padding, std::int32_t groups = 1);
    NodeId depthwiseConv2d(NodeId in, std::int32_t kernel,
                           std::int32_t stride, std::int32_t padding);
    NodeId fullyConnected(NodeId in, std::int32_t out_features);
    NodeId maxPool2d(NodeId in, std::int32_t kernel, std::int32_t stride,
                     std::int32_t padding = 0);
    NodeId avgPool2d(NodeId in, std::int32_t kernel, std::int32_t stride,
                     std::int32_t padding = 0);
    NodeId globalAvgPool(NodeId in);
    NodeId add(NodeId a, NodeId b);
    /** Elementwise multiply; b may be a (1,1,1,C) per-channel scale. */
    NodeId mul(NodeId a, NodeId b);
    NodeId concat(const std::vector<NodeId> &ins);
    NodeId relu(NodeId in);
    NodeId relu6(NodeId in);
    NodeId hswish(NodeId in);
    NodeId sigmoid(NodeId in);
    NodeId batchNorm(NodeId in);
    NodeId softmax(NodeId in);
    /** ShuffleNet-style channel shuffle. @pre groups divides C. */
    NodeId channelShuffle(NodeId in, std::int32_t groups);

    /** Convenience: Conv2d + BatchNorm (+ activation node). */
    NodeId convBnAct(NodeId in, std::int32_t out_channels,
                     std::int32_t kernel, std::int32_t stride,
                     std::int32_t padding, OpKind activation,
                     std::int32_t groups = 1);
    /** Convenience: DepthwiseConv2d + BatchNorm (+ activation node). */
    NodeId dwBnAct(NodeId in, std::int32_t kernel, std::int32_t stride,
                   std::int32_t padding, OpKind activation);
    /** Squeeze-and-excite block; returns the rescaled tensor. */
    NodeId squeezeExcite(NodeId in, std::int32_t reduction = 4);

    /** Shape of an already-built node. */
    const TensorShape &shapeOf(NodeId id) const;

    /** Finalize: validates and returns the graph (builder is spent). */
    Graph build();

  private:
    NodeId append(OpKind kind, OpParams params, std::vector<NodeId> ins,
                  TensorShape shape);
    const Node &nodeRef(NodeId id) const;

    std::string name_;
    std::vector<Node> nodes_;
    bool built_ = false;
};

} // namespace gcm::dnn

#endif // GCM_DNN_GRAPH_HH

/**
 * @file
 * Static cost analysis of DNN graphs: multiply-accumulate counts,
 * parameter counts and data-movement volumes. Feeds both the FLOPs
 * characterization (paper Fig. 2) and the latency simulator.
 */

#ifndef GCM_DNN_ANALYSIS_HH
#define GCM_DNN_ANALYSIS_HH

#include <cstdint>

#include "dnn/graph.hh"

namespace gcm::dnn
{

/** Static per-node cost breakdown. */
struct NodeCost
{
    /** Multiply-accumulate operations (convolutions, FC). */
    std::int64_t macs = 0;
    /** Non-MAC elementwise/reduction operations. */
    std::int64_t simple_ops = 0;
    /** Trainable parameter count (weights + bias). */
    std::int64_t params = 0;
    /** Weight bytes at the graph's precision. */
    std::int64_t weight_bytes = 0;
    /** Activation bytes read (all inputs). */
    std::int64_t input_bytes = 0;
    /** Activation bytes written. */
    std::int64_t output_bytes = 0;
};

/** Compute the static cost of one node. */
NodeCost nodeCost(const Graph &graph, const Node &node);

/** Total multiply-accumulates of a graph (batch 1). */
std::int64_t totalMacs(const Graph &graph);

/** Total trainable parameters of a graph. */
std::int64_t totalParams(const Graph &graph);

/** MACs in millions, the unit of the paper's Fig. 2. */
double megaMacs(const Graph &graph);

} // namespace gcm::dnn

#endif // GCM_DNN_ANALYSIS_HH

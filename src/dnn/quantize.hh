/**
 * @file
 * TFLite-style post-training quantization of a graph.
 *
 * Mirrors what the paper's pipeline does before deployment: the
 * converter folds BatchNorm into the preceding convolution and fuses
 * ReLU / ReLU6 into their single-consumer producer op, then lowers all
 * tensors to int8. The pass operates purely on graph structure (this
 * project never materializes weights numerically).
 */

#ifndef GCM_DNN_QUANTIZE_HH
#define GCM_DNN_QUANTIZE_HH

#include "dnn/graph.hh"

namespace gcm::dnn
{

/**
 * Produce the int8 deployment graph:
 *  - BatchNorm nodes are folded away (their consumers rewire to the
 *    BatchNorm's producer);
 *  - ReLU / ReLU6 nodes whose producer chain has a single consumer are
 *    fused into Conv2d / DepthwiseConv2d / FullyConnected / Add;
 *  - the result is marked Precision::Int8.
 *
 * HSwish and Sigmoid remain standalone ops, matching TFLite.
 */
Graph quantize(const Graph &graph);

} // namespace gcm::dnn

#endif // GCM_DNN_QUANTIZE_HH

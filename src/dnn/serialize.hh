/**
 * @file
 * Text serialization of DNN graphs ("gcm-graph v1").
 *
 * One node per line in topological order:
 *
 *   gcm-graph v1
 *   name <graph-name>
 *   precision fp32|int8
 *   nodes <count>
 *   node <id> <kind> k=<kernel> s=<stride> p=<pad> oc=<out_c>
 *        g=<groups> act=<fused> in=<id,id,...> shape=<n,h,w,c>
 *   ...
 *
 * The format round-trips exactly (shapes are stored, then re-checked
 * against the stored structure on load via Graph::validate()).
 */

#ifndef GCM_DNN_SERIALIZE_HH
#define GCM_DNN_SERIALIZE_HH

#include <iosfwd>
#include <string>

#include "dnn/graph.hh"

namespace gcm::dnn
{

/** Write a graph to a stream in the gcm-graph v1 format. */
void serializeGraph(const Graph &graph, std::ostream &os);

/** Convenience: serialize to a string. */
std::string graphToText(const Graph &graph);

/** Parse a graph written by serializeGraph(). Throws GcmError. */
Graph deserializeGraph(std::istream &is);

/** Convenience: parse from a string. */
Graph graphFromText(const std::string &text);

} // namespace gcm::dnn

#endif // GCM_DNN_SERIALIZE_HH

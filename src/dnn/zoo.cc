#include "dnn/zoo.hh"

#include <functional>
#include <map>

#include "dnn/generator.hh"
#include "util/error.hh"
#include "verify/verifier.hh"

namespace gcm::dnn
{

namespace
{

constexpr TensorShape kImageNetInput{1, 224, 224, 3};

/**
 * Inverted bottleneck with an absolute expanded width (MobileNetV3 /
 * MnasNet convention). A residual is added when the geometry allows.
 */
NodeId
mbconvAbs(GraphBuilder &b, NodeId x, std::int32_t expanded_c,
          std::int32_t out_c, std::int32_t kernel, std::int32_t stride,
          bool use_se, OpKind act)
{
    const std::int32_t in_c = b.shapeOf(x).c;
    NodeId y = x;
    if (expanded_c != in_c)
        y = b.convBnAct(y, expanded_c, 1, 1, 0, act);
    y = b.dwBnAct(y, kernel, stride, kernel / 2, act);
    if (use_se)
        y = b.squeezeExcite(y);
    y = b.convBnAct(y, out_c, 1, 1, 0, OpKind::NumKinds);
    if (stride == 1 && in_c == out_c)
        y = b.add(x, y);
    return y;
}

/** Inverted bottleneck with a relative expansion ratio. */
NodeId
mbconv(GraphBuilder &b, NodeId x, std::int32_t expansion,
       std::int32_t out_c, std::int32_t kernel, std::int32_t stride,
       bool use_se, OpKind act)
{
    return mbconvAbs(b, x, b.shapeOf(x).c * expansion, out_c, kernel,
                     stride, use_se, act);
}

/** One row of an MBConv-style stage table. */
struct MbStage
{
    std::int32_t expansion;
    std::int32_t channels;
    std::int32_t repeats;
    std::int32_t stride;
    std::int32_t kernel;
    bool se;
};

NodeId
mbStages(GraphBuilder &b, NodeId x, const std::vector<MbStage> &stages,
         OpKind act, double width = 1.0)
{
    for (const auto &st : stages) {
        const std::int32_t c = width == 1.0
            ? st.channels
            : roundChannels(st.channels * width);
        for (std::int32_t i = 0; i < st.repeats; ++i) {
            x = mbconv(b, x, st.expansion, c, st.kernel,
                       i == 0 ? st.stride : 1, st.se, act);
        }
    }
    return x;
}

NodeId
classifierHead(GraphBuilder &b, NodeId x, std::int32_t head_channels,
               OpKind act, std::int32_t classes = 1000)
{
    if (head_channels > 0)
        x = b.convBnAct(x, head_channels, 1, 1, 0, act);
    x = b.globalAvgPool(x);
    x = b.fullyConnected(x, classes);
    return b.softmax(x);
}

Graph
mobileNetV1(const std::string &name, double width)
{
    GraphBuilder b(name, kImageNetInput);
    const OpKind act = OpKind::ReLU6;
    auto ch = [width](std::int32_t c) { return roundChannels(c * width); };
    NodeId x = b.convBnAct(b.input(), ch(32), 3, 2, 1, act);
    const std::vector<std::pair<std::int32_t, std::int32_t>> blocks = {
        {64, 1},  {128, 2}, {128, 1}, {256, 2},  {256, 1},
        {512, 2}, {512, 1}, {512, 1}, {512, 1},  {512, 1},
        {512, 1}, {1024, 2}, {1024, 1},
    };
    for (const auto &[c, s] : blocks) {
        x = b.dwBnAct(x, 3, s, 1, act);
        x = b.convBnAct(x, ch(c), 1, 1, 0, act);
    }
    x = b.globalAvgPool(x);
    x = b.fullyConnected(x, 1000);
    b.softmax(x);
    return b.build();
}

Graph
mobileNetV2(const std::string &name, double width)
{
    GraphBuilder b(name, kImageNetInput);
    const OpKind act = OpKind::ReLU6;
    NodeId x = b.convBnAct(b.input(), roundChannels(32 * width), 3, 2, 1,
                           act);
    const std::vector<MbStage> stages = {
        {1, 16, 1, 1, 3, false},  {6, 24, 2, 2, 3, false},
        {6, 32, 3, 2, 3, false},  {6, 64, 4, 2, 3, false},
        {6, 96, 3, 1, 3, false},  {6, 160, 3, 2, 3, false},
        {6, 320, 1, 1, 3, false},
    };
    x = mbStages(b, x, stages, act, width);
    const std::int32_t head =
        width > 1.0 ? roundChannels(1280 * width) : 1280;
    classifierHead(b, x, head, act);
    return b.build();
}

Graph
mobileNetV3Large()
{
    GraphBuilder b("mobilenet_v3_large", kImageNetInput);
    const OpKind re = OpKind::ReLU;
    const OpKind hs = OpKind::HSwish;
    NodeId x = b.convBnAct(b.input(), 16, 3, 2, 1, hs);
    struct Row
    {
        std::int32_t k, exp, out;
        bool se;
        OpKind act;
        std::int32_t s;
    };
    const std::vector<Row> rows = {
        {3, 16, 16, false, re, 1},   {3, 64, 24, false, re, 2},
        {3, 72, 24, false, re, 1},   {5, 72, 40, true, re, 2},
        {5, 120, 40, true, re, 1},   {5, 120, 40, true, re, 1},
        {3, 240, 80, false, hs, 2},  {3, 200, 80, false, hs, 1},
        {3, 184, 80, false, hs, 1},  {3, 184, 80, false, hs, 1},
        {3, 480, 112, true, hs, 1},  {3, 672, 112, true, hs, 1},
        {5, 672, 160, true, hs, 2},  {5, 960, 160, true, hs, 1},
        {5, 960, 160, true, hs, 1},
    };
    for (const auto &r : rows)
        x = mbconvAbs(b, x, r.exp, r.out, r.k, r.s, r.se, r.act);
    x = b.convBnAct(x, 960, 1, 1, 0, hs);
    x = b.globalAvgPool(x);
    x = b.fullyConnected(x, 1280);
    x = b.hswish(x);
    x = b.fullyConnected(x, 1000);
    b.softmax(x);
    return b.build();
}

Graph
mobileNetV3Small()
{
    GraphBuilder b("mobilenet_v3_small", kImageNetInput);
    const OpKind re = OpKind::ReLU;
    const OpKind hs = OpKind::HSwish;
    NodeId x = b.convBnAct(b.input(), 16, 3, 2, 1, hs);
    struct Row
    {
        std::int32_t k, exp, out;
        bool se;
        OpKind act;
        std::int32_t s;
    };
    const std::vector<Row> rows = {
        {3, 16, 16, true, re, 2},   {3, 72, 24, false, re, 2},
        {3, 88, 24, false, re, 1},  {5, 96, 40, true, hs, 2},
        {5, 240, 40, true, hs, 1},  {5, 240, 40, true, hs, 1},
        {5, 120, 48, true, hs, 1},  {5, 144, 48, true, hs, 1},
        {5, 288, 96, true, hs, 2},  {5, 576, 96, true, hs, 1},
        {5, 576, 96, true, hs, 1},
    };
    for (const auto &r : rows)
        x = mbconvAbs(b, x, r.exp, r.out, r.k, r.s, r.se, r.act);
    x = b.convBnAct(x, 576, 1, 1, 0, hs);
    x = b.globalAvgPool(x);
    x = b.fullyConnected(x, 1024);
    x = b.hswish(x);
    x = b.fullyConnected(x, 1000);
    b.softmax(x);
    return b.build();
}

NodeId
fire(GraphBuilder &b, NodeId x, std::int32_t squeeze, std::int32_t e1,
     std::int32_t e3)
{
    NodeId s = b.relu(b.conv2d(x, squeeze, 1, 1, 0));
    NodeId x1 = b.relu(b.conv2d(s, e1, 1, 1, 0));
    NodeId x3 = b.relu(b.conv2d(s, e3, 3, 1, 1));
    return b.concat({x1, x3});
}

Graph
squeezeNet10()
{
    GraphBuilder b("squeezenet_1.0", kImageNetInput);
    NodeId x = b.relu(b.conv2d(b.input(), 96, 7, 2, 3));
    x = b.maxPool2d(x, 3, 2);
    x = fire(b, x, 16, 64, 64);
    x = fire(b, x, 16, 64, 64);
    x = fire(b, x, 32, 128, 128);
    x = b.maxPool2d(x, 3, 2);
    x = fire(b, x, 32, 128, 128);
    x = fire(b, x, 48, 192, 192);
    x = fire(b, x, 48, 192, 192);
    x = fire(b, x, 64, 256, 256);
    x = b.maxPool2d(x, 3, 2);
    x = fire(b, x, 64, 256, 256);
    x = b.relu(b.conv2d(x, 1000, 1, 1, 0));
    x = b.globalAvgPool(x);
    b.softmax(x);
    return b.build();
}

Graph
squeezeNet11()
{
    GraphBuilder b("squeezenet_1.1", kImageNetInput);
    NodeId x = b.relu(b.conv2d(b.input(), 64, 3, 2, 1));
    x = b.maxPool2d(x, 3, 2);
    x = fire(b, x, 16, 64, 64);
    x = fire(b, x, 16, 64, 64);
    x = b.maxPool2d(x, 3, 2);
    x = fire(b, x, 32, 128, 128);
    x = fire(b, x, 32, 128, 128);
    x = b.maxPool2d(x, 3, 2);
    x = fire(b, x, 48, 192, 192);
    x = fire(b, x, 48, 192, 192);
    x = fire(b, x, 64, 256, 256);
    x = fire(b, x, 64, 256, 256);
    x = b.relu(b.conv2d(x, 1000, 1, 1, 0));
    x = b.globalAvgPool(x);
    b.softmax(x);
    return b.build();
}

Graph
mnasNet(const std::string &name, bool a1)
{
    GraphBuilder b(name, kImageNetInput);
    const OpKind act = OpKind::ReLU;
    NodeId x = b.convBnAct(b.input(), 32, 3, 2, 1, act);
    // SepConv 16.
    x = b.dwBnAct(x, 3, 1, 1, act);
    x = b.convBnAct(x, 16, 1, 1, 0, OpKind::NumKinds);
    const std::vector<MbStage> b1 = {
        {3, 24, 3, 2, 3, false}, {3, 40, 3, 2, 5, false},
        {6, 80, 3, 2, 5, false}, {6, 96, 2, 1, 3, false},
        {6, 192, 4, 2, 5, false}, {6, 320, 1, 1, 3, false},
    };
    const std::vector<MbStage> a1_stages = {
        {6, 24, 2, 2, 3, false}, {3, 40, 3, 2, 5, true},
        {6, 80, 4, 2, 3, false}, {6, 112, 2, 1, 3, true},
        {6, 160, 3, 2, 5, true}, {6, 320, 1, 1, 3, false},
    };
    x = mbStages(b, x, a1 ? a1_stages : b1, act);
    classifierHead(b, x, 1280, act);
    return b.build();
}

/**
 * ProxylessNAS variants, encoded from the architectures in the paper
 * (Cai et al., Fig. 4): Mobile favors large kernels and deep stacks,
 * CPU favors 3x3 kernels and shallow-but-wide stages, GPU favors
 * shallow networks with wide expanded layers.
 */
Graph
proxylessNas(const std::string &flavor)
{
    GraphBuilder b("proxyless_" + flavor, kImageNetInput);
    const OpKind act = OpKind::ReLU6;
    NodeId x = b.convBnAct(b.input(), 32, 3, 2, 1, act);
    x = mbconv(b, x, 1, 16, 3, 1, false, act);
    std::vector<MbStage> stages;
    if (flavor == "mobile") {
        stages = {
            {3, 32, 1, 2, 5, false}, {3, 32, 1, 1, 3, false},
            {3, 40, 1, 2, 7, false}, {3, 40, 3, 1, 3, false},
            {6, 80, 1, 2, 7, false}, {3, 80, 3, 1, 5, false},
            {6, 96, 1, 1, 5, false}, {3, 96, 3, 1, 5, false},
            {6, 192, 1, 2, 7, false}, {6, 192, 3, 1, 7, false},
            {6, 320, 1, 1, 7, false},
        };
    } else if (flavor == "cpu") {
        stages = {
            {6, 32, 1, 2, 3, false}, {3, 32, 3, 1, 3, false},
            {6, 48, 1, 2, 3, false}, {3, 48, 3, 1, 3, false},
            {6, 88, 1, 2, 3, false}, {3, 88, 3, 1, 3, false},
            {6, 104, 1, 1, 3, false}, {3, 104, 3, 1, 3, false},
            {6, 216, 1, 2, 3, false}, {3, 216, 3, 1, 3, false},
            {6, 360, 1, 1, 3, false},
        };
    } else if (flavor == "gpu") {
        stages = {
            {6, 40, 1, 2, 5, false}, {3, 40, 1, 1, 3, false},
            {6, 56, 1, 2, 5, false}, {3, 56, 1, 1, 3, false},
            {6, 112, 1, 2, 7, false}, {3, 112, 2, 1, 3, false},
            {6, 128, 1, 1, 5, false}, {3, 128, 1, 1, 3, false},
            {6, 256, 1, 2, 7, false}, {6, 256, 2, 1, 5, false},
            {6, 432, 1, 1, 7, false},
        };
    } else {
        fatal("proxylessNas: unknown flavor '", flavor, "'");
    }
    NodeId y = x;
    for (const auto &st : stages) {
        for (std::int32_t i = 0; i < st.repeats; ++i) {
            y = mbconv(b, y, st.expansion, st.channels, st.kernel,
                       i == 0 ? st.stride : 1, st.se, act);
        }
    }
    classifierHead(b, y, 1280, act);
    return b.build();
}

/** FBNet variants (Wu et al.), block tables approximated per paper. */
Graph
fbNet(const std::string &flavor)
{
    GraphBuilder b("fbnet_" + flavor, kImageNetInput);
    const OpKind act = OpKind::ReLU;
    NodeId x = b.convBnAct(b.input(), 16, 3, 2, 1, act);
    std::vector<MbStage> stages;
    if (flavor == "a") {
        stages = {
            {1, 16, 1, 1, 3, false}, {6, 24, 1, 2, 3, false},
            {1, 24, 3, 1, 3, false}, {6, 32, 1, 2, 5, false},
            {3, 32, 3, 1, 3, false}, {6, 64, 1, 2, 5, false},
            {3, 64, 3, 1, 5, false}, {6, 112, 1, 1, 5, false},
            {3, 112, 3, 1, 5, false}, {6, 184, 1, 2, 5, false},
            {6, 184, 3, 1, 5, false}, {6, 352, 1, 1, 3, false},
        };
    } else { // flavor "c"
        stages = {
            {1, 16, 1, 1, 3, false}, {6, 24, 1, 2, 3, false},
            {3, 24, 3, 1, 3, false}, {6, 32, 1, 2, 5, false},
            {6, 32, 3, 1, 5, false}, {6, 64, 1, 2, 5, false},
            {6, 64, 3, 1, 5, false}, {6, 112, 1, 1, 5, false},
            {6, 112, 3, 1, 5, false}, {6, 184, 1, 2, 5, false},
            {6, 184, 3, 1, 5, false}, {6, 352, 1, 1, 5, false},
        };
    }
    x = mbStages(b, x, stages, act);
    classifierHead(b, x, flavor == "a" ? 1504 : 1984, act);
    return b.build();
}

/** SinglePath-NAS (Stamoulis et al.): MnasNet-like backbone. */
Graph
singlePathNas()
{
    GraphBuilder b("singlepath_nas", kImageNetInput);
    const OpKind act = OpKind::ReLU6;
    NodeId x = b.convBnAct(b.input(), 32, 3, 2, 1, act);
    x = b.dwBnAct(x, 3, 1, 1, act);
    x = b.convBnAct(x, 16, 1, 1, 0, OpKind::NumKinds);
    const std::vector<MbStage> stages = {
        {3, 24, 1, 2, 3, false}, {3, 24, 3, 1, 3, false},
        {3, 40, 1, 2, 5, false}, {3, 40, 3, 1, 3, false},
        {6, 80, 1, 2, 5, false}, {3, 80, 3, 1, 3, false},
        {6, 96, 1, 1, 5, false}, {3, 96, 3, 1, 5, false},
        {6, 192, 1, 2, 5, false}, {6, 192, 3, 1, 5, false},
        {6, 320, 1, 1, 3, false},
    };
    x = mbStages(b, x, stages, act);
    classifierHead(b, x, 1280, act);
    return b.build();
}

/**
 * EfficientNet-B0 (Tan & Le): MBConv backbone with squeeze-excite on
 * every block; swish activations approximated by HSwish (the int8
 * deployment substitution TFLite also makes).
 */
Graph
efficientNetB0()
{
    GraphBuilder b("efficientnet_b0", kImageNetInput);
    const OpKind act = OpKind::HSwish;
    NodeId x = b.convBnAct(b.input(), 32, 3, 2, 1, act);
    const std::vector<MbStage> stages = {
        {1, 16, 1, 1, 3, true},  {6, 24, 2, 2, 3, true},
        {6, 40, 2, 2, 5, true},  {6, 80, 3, 2, 3, true},
        {6, 112, 3, 1, 5, true}, {6, 192, 4, 2, 5, true},
        {6, 320, 1, 1, 3, true},
    };
    x = mbStages(b, x, stages, act);
    classifierHead(b, x, 1280, act);
    return b.build();
}

/**
 * ShuffleNetV2 1.0x (Ma et al.). The channel-split entering each
 * stride-1 unit is approximated with a half-width 1x1 projection on
 * the shortcut branch (the IR is single-output per node), preserving
 * the unit's structure: two branches, concat, channel shuffle.
 */
Graph
shuffleNetV2()
{
    GraphBuilder b("shufflenet_v2_1.0", kImageNetInput);
    const OpKind act = OpKind::ReLU;
    NodeId x = b.convBnAct(b.input(), 24, 3, 2, 1, act);
    x = b.maxPool2d(x, 3, 2, 1);
    const struct
    {
        std::int32_t channels;
        std::int32_t repeats;
    } stages[] = {{116, 4}, {232, 8}, {464, 4}};
    for (const auto &st : stages) {
        const std::int32_t half = st.channels / 2;
        // Downsampling unit: both branches see the full input.
        NodeId left = b.dwBnAct(x, 3, 2, 1, OpKind::NumKinds);
        left = b.convBnAct(left, half, 1, 1, 0, act);
        NodeId right = b.convBnAct(x, half, 1, 1, 0, act);
        right = b.dwBnAct(right, 3, 2, 1, OpKind::NumKinds);
        right = b.convBnAct(right, half, 1, 1, 0, act);
        x = b.channelShuffle(b.concat({left, right}), 2);
        // Stride-1 units.
        for (std::int32_t r = 1; r < st.repeats; ++r) {
            NodeId shortcut = b.convBnAct(x, half, 1, 1, 0, act);
            NodeId branch = b.convBnAct(x, half, 1, 1, 0, act);
            branch = b.dwBnAct(branch, 3, 1, 1, OpKind::NumKinds);
            branch = b.convBnAct(branch, half, 1, 1, 0, act);
            x = b.channelShuffle(b.concat({shortcut, branch}), 2);
        }
    }
    x = b.convBnAct(x, 1024, 1, 1, 0, act);
    x = b.globalAvgPool(x);
    x = b.fullyConnected(x, 1000);
    b.softmax(x);
    return b.build();
}

/** ResNet-18 (He et al.), the classic server-class reference point. */
Graph
resNet18()
{
    GraphBuilder b("resnet_18", kImageNetInput);
    const OpKind act = OpKind::ReLU;
    NodeId x = b.convBnAct(b.input(), 64, 7, 2, 3, act);
    x = b.maxPool2d(x, 3, 2, 1);
    const std::int32_t channels[] = {64, 128, 256, 512};
    for (int stage = 0; stage < 4; ++stage) {
        const std::int32_t c = channels[stage];
        for (int block = 0; block < 2; ++block) {
            const std::int32_t stride =
                (stage > 0 && block == 0) ? 2 : 1;
            NodeId shortcut = x;
            if (stride != 1 || b.shapeOf(x).c != c) {
                shortcut =
                    b.convBnAct(x, c, 1, stride, 0, OpKind::NumKinds);
            }
            NodeId y = b.convBnAct(x, c, 3, stride, 1, act);
            y = b.convBnAct(y, c, 3, 1, 1, OpKind::NumKinds);
            x = b.relu(b.add(shortcut, y));
        }
    }
    x = b.globalAvgPool(x);
    x = b.fullyConnected(x, 1000);
    b.softmax(x);
    return b.build();
}

using BuildFn = std::function<Graph()>;

const std::vector<std::pair<std::string, BuildFn>> &
registry()
{
    static const std::vector<std::pair<std::string, BuildFn>> reg = {
        {"mobilenet_v1_1.0",
         [] { return mobileNetV1("mobilenet_v1_1.0", 1.0); }},
        {"mobilenet_v1_0.75",
         [] { return mobileNetV1("mobilenet_v1_0.75", 0.75); }},
        {"mobilenet_v1_0.5",
         [] { return mobileNetV1("mobilenet_v1_0.5", 0.5); }},
        {"mobilenet_v2_1.0",
         [] { return mobileNetV2("mobilenet_v2_1.0", 1.0); }},
        {"mobilenet_v2_0.75",
         [] { return mobileNetV2("mobilenet_v2_0.75", 0.75); }},
        {"mobilenet_v2_1.4",
         [] { return mobileNetV2("mobilenet_v2_1.4", 1.4); }},
        {"mobilenet_v3_large", [] { return mobileNetV3Large(); }},
        {"mobilenet_v3_small", [] { return mobileNetV3Small(); }},
        {"squeezenet_1.0", [] { return squeezeNet10(); }},
        {"squeezenet_1.1", [] { return squeezeNet11(); }},
        {"mnasnet_a1", [] { return mnasNet("mnasnet_a1", true); }},
        {"mnasnet_b1", [] { return mnasNet("mnasnet_b1", false); }},
        {"proxyless_mobile", [] { return proxylessNas("mobile"); }},
        {"proxyless_cpu", [] { return proxylessNas("cpu"); }},
        {"proxyless_gpu", [] { return proxylessNas("gpu"); }},
        {"fbnet_a", [] { return fbNet("a"); }},
        {"fbnet_c", [] { return fbNet("c"); }},
        {"singlepath_nas", [] { return singlePathNas(); }},
    };
    return reg;
}

const std::vector<std::pair<std::string, BuildFn>> &
extendedRegistry()
{
    static const std::vector<std::pair<std::string, BuildFn>> reg = {
        {"efficientnet_b0", [] { return efficientNetB0(); }},
        {"shufflenet_v2_1.0", [] { return shuffleNetV2(); }},
        {"resnet_18", [] { return resNet18(); }},
    };
    return reg;
}

} // namespace

const std::vector<std::string> &
zooModelNames()
{
    static const std::vector<std::string> names = [] {
        std::vector<std::string> out;
        for (const auto &[name, fn] : registry())
            out.push_back(name);
        return out;
    }();
    return names;
}

const std::vector<std::string> &
extendedZooModelNames()
{
    static const std::vector<std::string> names = [] {
        std::vector<std::string> out;
        for (const auto &[name, fn] : extendedRegistry())
            out.push_back(name);
        return out;
    }();
    return names;
}

namespace
{

/** Zoo graphs feed every downstream experiment; ship none unchecked. */
Graph
verified(Graph g)
{
    verify::verifyGraphOrThrow(g, "buildZooModel");
    return g;
}

} // namespace

Graph
buildZooModel(const std::string &name)
{
    for (const auto &[n, fn] : registry()) {
        if (n == name)
            return verified(fn());
    }
    for (const auto &[n, fn] : extendedRegistry()) {
        if (n == name)
            return verified(fn());
    }
    fatal("unknown zoo model: ", name);
}

std::vector<Graph>
buildZoo()
{
    std::vector<Graph> out;
    out.reserve(registry().size());
    for (const auto &[name, fn] : registry())
        out.push_back(verified(fn()));
    return out;
}

} // namespace gcm::dnn

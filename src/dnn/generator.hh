/**
 * @file
 * Parameterized random DNN generator.
 *
 * C++ counterpart of the paper's in-house PyTorch generator: it emits
 * arbitrary but valid networks from a mobile NAS-style search space
 * (MBConv / depthwise-separable / plain convolution blocks with
 * varying kernel size, expansion ratio, channel width, stride,
 * squeeze-excite and activation choices), filtered to a target
 * FLOPs window so the suite matches the paper's Fig. 2 range.
 *
 * The generator space is reified as an explicit genotype (ArchGenome):
 * sampling a network is sampleGenome() followed by buildGenome(), and
 * RandomNetworkGenerator is defined in terms of that split. The
 * genotype is what src/search mutates and recombines, so the random
 * suite and the architecture search share one genotype -> graph
 * mapping by construction (a genome that builds here builds there).
 */

#ifndef GCM_DNN_GENERATOR_HH
#define GCM_DNN_GENERATOR_HH

#include <cstdint>
#include <string>
#include <vector>

#include "dnn/graph.hh"
#include "util/rng.hh"

namespace gcm::dnn
{

/** The generator's search space; defaults follow mobile NAS spaces. */
struct SearchSpace
{
    TensorShape input{1, 224, 224, 3};
    std::int32_t num_classes = 1000;

    std::int32_t min_stages = 4;
    std::int32_t max_stages = 6;
    std::int32_t min_blocks_per_stage = 2;
    std::int32_t max_blocks_per_stage = 4;

    std::vector<std::int32_t> kernel_choices{3, 5, 7};
    std::vector<std::int32_t> expansion_choices{1, 3, 6};
    std::vector<std::int32_t> stem_channel_choices{16, 24, 32};
    std::vector<std::int32_t> head_channel_choices{0, 960, 1280};

    /** Per-block probabilities: MBConv / DW-separable / plain conv. */
    double p_mbconv = 0.65;
    double p_dwseparable = 0.25;
    double p_plain_conv = 0.10;

    double se_probability = 0.25;
    double residual_probability = 0.8;

    /** Channel growth factor range applied at each stage. */
    double channel_growth_min = 1.35;
    double channel_growth_max = 2.1;
    std::int32_t max_channels = 640;

    /**
     * Acceptance window on model complexity, in millions of MACs.
     * The paper's Fig. 2 reports generated networks clustered between
     * 400 and 800 million MACs; we use a wider window whose upper
     * half covers that band, because the paper's own popular-network
     * set (e.g. MobileNetV3-Small at 56 MMACs) extends well below it
     * and the wider spread better matches the reported bimodal
     * per-device latency distributions (Fig. 4).
     */
    double min_mmacs = 150.0;
    double max_mmacs = 900.0;

    /** Attempts before generate() gives up. */
    std::size_t max_attempts = 300;
};

/** Block archetype of one generator block. */
enum class BlockKind : std::uint8_t
{
    MBConv,      // inverted bottleneck (MobileNetV2 style)
    DwSeparable, // depthwise-separable (MobileNetV1 style)
    PlainConv,   // plain 3x3 convolution
};

/** Display name of a block kind ("mb" / "dw" / "conv"). */
const char *blockKindName(BlockKind kind);

/** Genes of one block within a stage. */
struct BlockGene
{
    BlockKind kind = BlockKind::MBConv;
    /** Expansion ratio (MBConv only; >= 1). */
    std::int32_t expansion = 6;
    /** Squeeze-excite after the depthwise conv (MBConv only). */
    bool se = false;
    /**
     * Allow a residual skip (MBConv only; only materializes when
     * stride == 1 and the channel counts match, exactly like the
     * sampled generator).
     */
    bool residual = true;

    bool operator==(const BlockGene &) const = default;
};

/** Genes of one stage: resolved width, window and activation. */
struct StageGene
{
    /** Output channels of every block (multiple of 8, >= 8). */
    std::int32_t channels = 16;
    std::int32_t kernel = 3;
    OpKind activation = OpKind::ReLU;
    std::vector<BlockGene> blocks;

    bool operator==(const StageGene &) const = default;
};

/**
 * Complete genotype of a generator-space network. buildGenome() maps
 * it deterministically to a Graph: the genome fully determines the
 * architecture (strides are a pure function of the stage/block
 * structure and the input resolution, as in the sampled generator).
 */
struct ArchGenome
{
    std::int32_t stem_channels = 16;
    OpKind stem_activation = OpKind::ReLU;
    /**
     * Head 1x1 expansion width; only applied when it exceeds the
     * last stage's channels (mirroring the sampled generator).
     */
    std::int32_t head_channels = 0;
    OpKind head_activation = OpKind::ReLU;
    std::vector<StageGene> stages;

    bool operator==(const ArchGenome &) const = default;
};

/**
 * Draw one genome from the space. Consumes exactly the draw sequence
 * the pre-genotype generator used, so seeded suites are unchanged.
 */
ArchGenome sampleGenome(const SearchSpace &space, Rng &rng);

/**
 * Structural validity gate for externally constructed (mutated,
 * recombined, deserialized) genomes: stage/block counts >= 1,
 * channels positive multiples of 8 within the space maximum, odd
 * positive kernels, expansions >= 1, known activations. Throws
 * GcmError naming the offending gene.
 */
void validateGenome(const ArchGenome &genome, const SearchSpace &space);

/**
 * Deterministically lower a genome to a graph (float32; quantize for
 * deployment). The result always passes GraphVerifier for genomes
 * accepted by validateGenome — src/search relies on this to keep
 * malformed candidates out of the cost model.
 */
Graph buildGenome(const ArchGenome &genome, const SearchSpace &space,
                  const std::string &name);

/**
 * Compact single-line rendering of a genome, e.g.
 * "stem24-hswish|c48-k5-relu6:mb6-se-r,dw|head1280-relu". Stable:
 * used by the gcm-search/v1 report and byte-identity tests.
 */
std::string formatGenome(const ArchGenome &genome);

/** Seeded generator of valid random graphs within a SearchSpace. */
class RandomNetworkGenerator
{
  public:
    RandomNetworkGenerator(SearchSpace space, std::uint64_t seed);

    /**
     * Generate one network inside the FLOPs window.
     * Throws GcmError if max_attempts candidates all fall outside.
     */
    Graph generate(const std::string &name);

    /** Generate a suite of count networks named <prefix>NNN. */
    std::vector<Graph> generateSuite(std::size_t count,
                                     const std::string &prefix);

    const SearchSpace &space() const { return space_; }

  private:
    Graph generateCandidate(const std::string &name, Rng &rng);

    SearchSpace space_;
    Rng rng_;
    std::uint64_t nextStream_ = 0;
};

/** Round channels to the customary multiple of 8, minimum 8. */
std::int32_t roundChannels(double c);

} // namespace gcm::dnn

#endif // GCM_DNN_GENERATOR_HH

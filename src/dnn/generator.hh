/**
 * @file
 * Parameterized random DNN generator.
 *
 * C++ counterpart of the paper's in-house PyTorch generator: it emits
 * arbitrary but valid networks from a mobile NAS-style search space
 * (MBConv / depthwise-separable / plain convolution blocks with
 * varying kernel size, expansion ratio, channel width, stride,
 * squeeze-excite and activation choices), filtered to a target
 * FLOPs window so the suite matches the paper's Fig. 2 range.
 */

#ifndef GCM_DNN_GENERATOR_HH
#define GCM_DNN_GENERATOR_HH

#include <cstdint>
#include <string>
#include <vector>

#include "dnn/graph.hh"
#include "util/rng.hh"

namespace gcm::dnn
{

/** The generator's search space; defaults follow mobile NAS spaces. */
struct SearchSpace
{
    TensorShape input{1, 224, 224, 3};
    std::int32_t num_classes = 1000;

    std::int32_t min_stages = 4;
    std::int32_t max_stages = 6;
    std::int32_t min_blocks_per_stage = 2;
    std::int32_t max_blocks_per_stage = 4;

    std::vector<std::int32_t> kernel_choices{3, 5, 7};
    std::vector<std::int32_t> expansion_choices{1, 3, 6};
    std::vector<std::int32_t> stem_channel_choices{16, 24, 32};
    std::vector<std::int32_t> head_channel_choices{0, 960, 1280};

    /** Per-block probabilities: MBConv / DW-separable / plain conv. */
    double p_mbconv = 0.65;
    double p_dwseparable = 0.25;
    double p_plain_conv = 0.10;

    double se_probability = 0.25;
    double residual_probability = 0.8;

    /** Channel growth factor range applied at each stage. */
    double channel_growth_min = 1.35;
    double channel_growth_max = 2.1;
    std::int32_t max_channels = 640;

    /**
     * Acceptance window on model complexity, in millions of MACs.
     * The paper's Fig. 2 reports generated networks clustered between
     * 400 and 800 million MACs; we use a wider window whose upper
     * half covers that band, because the paper's own popular-network
     * set (e.g. MobileNetV3-Small at 56 MMACs) extends well below it
     * and the wider spread better matches the reported bimodal
     * per-device latency distributions (Fig. 4).
     */
    double min_mmacs = 150.0;
    double max_mmacs = 900.0;

    /** Attempts before generate() gives up. */
    std::size_t max_attempts = 300;
};

/** Seeded generator of valid random graphs within a SearchSpace. */
class RandomNetworkGenerator
{
  public:
    RandomNetworkGenerator(SearchSpace space, std::uint64_t seed);

    /**
     * Generate one network inside the FLOPs window.
     * Throws GcmError if max_attempts candidates all fall outside.
     */
    Graph generate(const std::string &name);

    /** Generate a suite of count networks named <prefix>NNN. */
    std::vector<Graph> generateSuite(std::size_t count,
                                     const std::string &prefix);

    const SearchSpace &space() const { return space_; }

  private:
    Graph generateCandidate(const std::string &name, Rng &rng);

    SearchSpace space_;
    Rng rng_;
    std::uint64_t nextStream_ = 0;
};

/** Round channels to the customary multiple of 8, minimum 8. */
std::int32_t roundChannels(double c);

} // namespace gcm::dnn

#endif // GCM_DNN_GENERATOR_HH

/**
 * @file
 * Canonical 64-bit structural fingerprint of a DNN graph.
 *
 * The fingerprint feeds the prediction-cache key of the serving layer
 * (src/serve): two requests may share a cache entry exactly when their
 * graphs would produce the same encoder features and therefore the
 * same prediction. It hashes the fields that determine the graph's
 * structure — precision, and per node the operator kind, parameters,
 * input ids and resolved output shape — and deliberately excludes the
 * graph *name*, so a renamed copy of a network still hits the cache.
 *
 * Stability contract: the fingerprint is a pure function of the
 * structural fields above, so it survives serializeGraph /
 * deserializeGraph round trips (the format is exact) and is identical
 * across platforms and thread counts. tests/test_serve.cc pins this.
 */

#ifndef GCM_DNN_FINGERPRINT_HH
#define GCM_DNN_FINGERPRINT_HH

#include <cstdint>

#include "dnn/graph.hh"

namespace gcm::dnn
{

/** Structural 64-bit fingerprint (FNV-1a over canonical fields). */
std::uint64_t graphFingerprint(const Graph &graph);

} // namespace gcm::dnn

#endif // GCM_DNN_FINGERPRINT_HH

/**
 * @file
 * Signature-set selection (paper Section III-C).
 *
 * The hardware representation is the vector of measured latencies of
 * a small signature set of networks. Three selection methods are
 * provided:
 *
 *  - RS: uniform random sampling;
 *  - MIS (Algorithm 1): greedy maximization of the mutual information
 *    between the signature set and the remaining networks, with a
 *    Gaussian (log-det, default) or pairwise histogram MI estimator;
 *  - SCCS (Algorithm 2): iteratively pick the network with the most
 *    Spearman correlations >= gamma with other networks, then remove
 *    its correlated group.
 *
 * All methods operate on the latency matrix restricted to the
 * *training* devices — test devices never influence the selection.
 */

#ifndef GCM_CORE_SIGNATURE_HH
#define GCM_CORE_SIGNATURE_HH

#include <cstdint>
#include <vector>

namespace gcm::core
{

/** Selection algorithm. */
enum class SignatureMethod
{
    RandomSampling,
    MutualInformation,
    SpearmanCorrelation,
};

/** Display name of a method ("RS" / "MIS" / "SCCS"). */
const char *signatureMethodName(SignatureMethod method);

/** MI estimator used by MIS. */
enum class MiEstimatorKind
{
    Gaussian,
    Histogram,
};

/** Selection configuration. */
struct SignatureConfig
{
    /** Networks in the signature set (paper default: 10). */
    std::size_t size = 10;
    /** Seed for RS (and MIS tie-breaking). */
    std::uint64_t seed = 1;
    /** SCCS correlation threshold gamma ("typically close to 1"). */
    double sccs_gamma = 0.95;
    /** SCCS gamma relaxation when candidates run out (see below). */
    double sccs_gamma_decay = 0.9;
    MiEstimatorKind mi_estimator = MiEstimatorKind::Gaussian;
    /** Bins for the histogram MI estimator. */
    std::size_t mi_bins = 6;
    /** Ridge for the Gaussian MI estimator. */
    double mi_ridge = 1e-2;
};

/**
 * Select a signature set.
 *
 * @param net_latencies Latency samples: net_latencies[n][d] is the
 *        latency of network n on training device d (milliseconds).
 * @param method Selection algorithm.
 * @param config Options; config.size must be <= the network count.
 * @return Indices of the selected networks, in selection order (for
 *         MIS/SCCS a prefix is itself a valid smaller selection).
 */
std::vector<std::size_t>
selectSignature(const std::vector<std::vector<double>> &net_latencies,
                SignatureMethod method, const SignatureConfig &config);

/** Uniform random selection of m of n networks. */
std::vector<std::size_t> selectRandomSignature(std::size_t num_networks,
                                               std::size_t m,
                                               std::uint64_t seed);

/** Algorithm 1: greedy mutual-information selection. */
std::vector<std::size_t>
selectMisSignature(const std::vector<std::vector<double>> &net_latencies,
                   std::size_t m, const SignatureConfig &config);

/**
 * Algorithm 2: Spearman-correlation selection. When the candidate
 * pool empties before m picks (every remaining network already
 * removed as correlated), gamma is relaxed geometrically and the
 * procedure continues on the removed pool — a documented extension,
 * as the paper leaves this case unspecified.
 */
std::vector<std::size_t>
selectSccsSignature(const std::vector<std::vector<double>> &net_latencies,
                    std::size_t m, const SignatureConfig &config);

} // namespace gcm::core

#endif // GCM_CORE_SIGNATURE_HH

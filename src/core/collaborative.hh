/**
 * @file
 * Collaborative workload characterization (paper Section V).
 *
 * Devices join a shared repository one at a time. Each contributes
 * (a) its hardware representation — measured latencies of the common
 * signature set — and (b) latency measurements on a small fraction of
 * randomly chosen networks. After every arrival a cost model is
 * retrained on all contributions and scored on *all* networks for the
 * devices seen so far (Fig. 12). The isolated alternative trains a
 * per-device model on progressively more of its own measurements
 * (Fig. 13); the comparison quantifies the order-of-magnitude
 * measurement savings of collaboration.
 */

#ifndef GCM_CORE_COLLABORATIVE_HH
#define GCM_CORE_COLLABORATIVE_HH

#include <cstdint>
#include <vector>

#include "core/experiment_context.hh"
#include "ml/gbt.hh"

namespace gcm::core
{

/** Collaborative-simulation parameters. */
struct CollaborativeConfig
{
    std::size_t signature_size = 10;
    /** Fraction of non-signature networks each device contributes. */
    double contribution_fraction = 0.1;
    /** Devices joining the repository (iterations of Fig. 12). */
    std::size_t max_devices = 50;
    std::uint64_t seed = 5;
    ml::GbtParams gbt;
};

/** One Fig. 12 iteration. */
struct CollaborativeStep
{
    std::size_t num_devices = 0;
    /** Mean per-device R^2 over all networks, devices seen so far. */
    double avg_r2 = 0.0;
    /** Total training measurements contributed so far. */
    std::size_t total_measurements = 0;
};

/** Simulator of the collaborative repository. */
class CollaborativeSimulation
{
  public:
    /**
     * @param ctx Built dataset.
     * @param signature_size Signature chosen by MIS over all networks
     *        (the paper's Fig. 12 setup).
     * @param anchor_normalization Scale-free representation (see
     *        HarnessOptions::anchor_normalization).
     */
    explicit CollaborativeSimulation(const ExperimentContext &ctx,
                                     std::size_t signature_size = 10,
                                     bool anchor_normalization = true);

    const std::vector<std::size_t> &signature() const { return signature_; }

    /** Fig. 12: accuracy evolution as devices join. */
    std::vector<CollaborativeStep> run(const CollaborativeConfig &config)
        const;

    /**
     * Fig. 13 (isolated): per-device model trained on its own
     * measurements only; returns R^2 over all networks as a function
     * of training-set size k = stride, 2*stride, ... (k <= total).
     */
    std::vector<std::pair<std::size_t, double>>
    isolatedCurve(std::size_t device_idx, std::uint64_t seed,
                  const ml::GbtParams &params = {},
                  std::size_t stride = 1) const;

    /**
     * Fig. 13 (collaborative): R^2 on the target device's full
     * network set when it is one of config.max_devices collaborators
     * contributing only the signature plus a handful of networks.
     */
    double collaborativeR2ForDevice(std::size_t device_idx,
                                    const CollaborativeConfig &config)
        const;

  private:
    /** Feature row: network encoding ++ signature latencies. */
    void fillRow(std::vector<float> &row, std::size_t net_idx,
                 const std::vector<float> &sig_latencies) const;

    /** Signature latencies of one device, anchor-rescaled. */
    std::vector<float> signatureLatencies(std::size_t device_idx) const;

    /** Device anchor (geometric mean of its signature latencies). */
    double anchorOf(std::size_t device_idx) const;

    /** Per-device R^2 of a model over all networks. */
    double deviceR2(const ml::GradientBoostedTrees &model,
                    std::size_t device_idx) const;

    const ExperimentContext &ctx_;
    bool anchorNormalization_;
    std::vector<std::vector<float>> encodings_;
    std::vector<std::size_t> signature_;
    std::vector<std::size_t> nonSignature_;
};

} // namespace gcm::core

#endif // GCM_CORE_COLLABORATIVE_HH

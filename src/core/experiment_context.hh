/**
 * @file
 * ExperimentContext: one-stop construction of the paper's dataset —
 * the 118-network suite (18 zoo + 100 generated), the 105-device
 * fleet, the measurement campaign that yields 12,390 latency points,
 * and the fitted network encoder. Every bench and example starts
 * here; construction is fully deterministic given the seeds.
 */

#ifndef GCM_CORE_EXPERIMENT_CONTEXT_HH
#define GCM_CORE_EXPERIMENT_CONTEXT_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/imputation.hh"
#include "core/net_encoder.hh"
#include "dnn/generator.hh"
#include "dnn/graph.hh"
#include "sim/campaign.hh"
#include "sim/device.hh"
#include "sim/repository.hh"

namespace gcm::core
{

/** Construction parameters of the standard dataset. */
struct ExperimentConfig
{
    std::size_t num_random_networks = 100;
    std::uint64_t network_seed = 123;
    std::size_t num_devices = 105;
    std::uint64_t fleet_seed = 2020;
    sim::CampaignConfig campaign;
    dnn::SearchSpace search_space;
};

/** What buildWithRepository() had to repair (graceful degradation). */
struct SparseBuildInfo
{
    /** (network, device) cells absent from the given repository. */
    std::size_t missing_cells = 0;
    ImputationStats imputation;
};

/** The assembled dataset plus derived utilities. */
class ExperimentContext
{
  public:
    /** Build the standard dataset (or a smaller one for tests). */
    static ExperimentContext build(const ExperimentConfig &config = {});

    /**
     * Build a context around an externally produced (possibly sparse)
     * repository — e.g. the CampaignReport of a faulted
     * runResilient() — instead of running a fresh campaign. The
     * suite, fleet and encoder are constructed exactly as in build();
     * missing latency cells are imputed (core/imputation.hh) so every
     * downstream consumer of latencyMs() keeps working on a sparse
     * repository. Repository entries for devices outside the
     * configured fleet are ignored.
     *
     * @param config Construction parameters (the campaign inside is
     *        instantiated but never run).
     * @param repo The measurements actually collected.
     * @param info Optional out-parameter: how much was imputed.
     */
    static ExperimentContext
    buildWithRepository(const ExperimentConfig &config,
                        const sim::MeasurementRepository &repo,
                        SparseBuildInfo *info = nullptr);

    /** Deployment (int8) networks, zoo first then generated. */
    const std::vector<dnn::Graph> &suite() const { return suite_; }

    /** Original fp32 networks (pre-quantization), same order. */
    const std::vector<dnn::Graph> &fp32Suite() const { return fp32_; }

    const std::vector<std::string> &networkNames() const { return names_; }
    std::size_t numNetworks() const { return suite_.size(); }

    const sim::DeviceDatabase &fleet() const { return *fleet_; }
    const sim::MeasurementRepository &repo() const { return repo_; }
    const sim::CharacterizationCampaign &campaign() const
    {
        return *campaign_;
    }

    /** Mean measured latency (ms) of network index n on device d. */
    double latencyMs(std::size_t device_idx, std::size_t net_idx) const;

    /**
     * Latency matrix restricted to a device subset:
     * result[n][i] = latency of network n on devices[i].
     */
    std::vector<std::vector<double>>
    latencyMatrix(const std::vector<std::size_t> &device_indices) const;

    /** Device latency vectors (one 118-dim row per device). */
    std::vector<std::vector<double>> deviceVectors() const;

    const NetworkEncoder &encoder() const { return *encoder_; }

    /** Index of a network by name. Throws GcmError when unknown. */
    std::size_t networkIndex(const std::string &name) const;

  private:
    ExperimentContext() = default;

    /** Suite, fleet, campaign, encoder — everything but latencies. */
    static ExperimentContext assemble(const ExperimentConfig &config);

    std::vector<dnn::Graph> fp32_;
    std::vector<dnn::Graph> suite_;
    std::vector<std::string> names_;
    std::unique_ptr<sim::DeviceDatabase> fleet_;
    std::unique_ptr<sim::CharacterizationCampaign> campaign_;
    sim::MeasurementRepository repo_;
    std::unique_ptr<NetworkEncoder> encoder_;
    sim::LatencyModel model_;
    /** Dense latency cache, lat_[d][n]; imputed cells included. */
    std::vector<std::vector<double>> lat_;
};

} // namespace gcm::core

#endif // GCM_CORE_EXPERIMENT_CONTEXT_HH

/**
 * @file
 * Graceful degradation on sparse repositories: imputation of missing
 * latency cells.
 *
 * A faulted crowd-sourcing campaign leaves holes in the latency
 * matrix — crashed sessions, device dropouts, quarantined phones.
 * Rather than fall over (the dense latencyMatrix() throws on any
 * missing cell), downstream consumers impute the missing hardware
 * representation first:
 *
 *  - nearest-neighbour: a missing (network, device) cell is predicted
 *    from the k donor devices whose observed latency profiles best
 *    match the target device on their co-observed networks. Devices
 *    differ mostly by a multiplicative speed factor (the insight
 *    behind the paper's signature representation), so donors are
 *    ranked by the dispersion of their pairwise log-latency ratios
 *    and the transfer applies the fitted ratio;
 *  - fleet median fallback: when no donor has enough overlap, the
 *    cell falls back to the network's fleet-median latency scaled by
 *    the device's median speed ratio (or used as-is for a device with
 *    no observations at all).
 *
 * The imputation is deterministic (no Rng involvement) and pure: it
 * reads the observed cells only.
 */

#ifndef GCM_CORE_IMPUTATION_HH
#define GCM_CORE_IMPUTATION_HH

#include <cstddef>
#include <vector>

namespace gcm::core
{

/** Imputation options. */
struct ImputationConfig
{
    /** Minimum co-observed networks for a donor device. */
    std::size_t min_overlap = 3;
    /** Donor devices averaged per missing cell. */
    std::size_t neighbours = 3;
};

/** What the imputation did. */
struct ImputationStats
{
    std::size_t total_cells = 0;
    std::size_t missing_cells = 0;
    std::size_t nn_imputed = 0;
    std::size_t median_imputed = 0;
};

/**
 * Fill every NaN cell of a latency matrix in place.
 *
 * @param matrix matrix[n][d] = latency of network n on device d, with
 *        NaN marking missing cells (see
 *        MeasurementRepository::sparseLatencyMatrix). Observed cells
 *        must be positive and finite.
 * @param config Options.
 * @return Imputation statistics.
 *
 * Throws GcmError when a network row has no observation on any
 * device (nothing to anchor the fleet median on) or an observed cell
 * is non-positive.
 */
ImputationStats
imputeLatencyMatrix(std::vector<std::vector<double>> &matrix,
                    const ImputationConfig &config = {});

/**
 * Impute the missing entries of one device's signature-latency
 * vector against a reference matrix of devices that measured the
 * full signature (e.g. the training fleet).
 *
 * @param signature_latencies_ms The device's signature measurements,
 *        NaN where a session never completed. At least one entry must
 *        be observed.
 * @param reference reference[k][d] = latency of signature network k
 *        on reference device d (dense).
 * @param config Options.
 * @return Number of entries imputed.
 */
std::size_t imputeSignatureLatencies(
    std::vector<double> &signature_latencies_ms,
    const std::vector<std::vector<double>> &reference,
    const ImputationConfig &config = {});

} // namespace gcm::core

#endif // GCM_CORE_IMPUTATION_HH

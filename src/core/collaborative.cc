#include "core/collaborative.hh"

#include <algorithm>
#include <cmath>

#include "core/signature.hh"
#include "ml/metrics.hh"
#include "util/error.hh"
#include "util/rng.hh"

namespace gcm::core
{

CollaborativeSimulation::CollaborativeSimulation(
    const ExperimentContext &ctx, std::size_t signature_size,
    bool anchor_normalization)
    : ctx_(ctx), anchorNormalization_(anchor_normalization)
{
    encodings_.reserve(ctx_.numNetworks());
    for (const auto &g : ctx_.suite())
        encodings_.push_back(ctx_.encoder().encode(g));

    // Fig. 12 setup: signature chosen with MIS over all networks.
    std::vector<std::size_t> all_devices(ctx_.fleet().size());
    for (std::size_t i = 0; i < all_devices.size(); ++i)
        all_devices[i] = i;
    SignatureConfig sig_cfg;
    sig_cfg.size = signature_size;
    signature_ = selectMisSignature(ctx_.latencyMatrix(all_devices),
                                    signature_size, sig_cfg);

    std::vector<bool> is_sig(ctx_.numNetworks(), false);
    for (std::size_t s : signature_)
        is_sig[s] = true;
    for (std::size_t n = 0; n < ctx_.numNetworks(); ++n) {
        if (!is_sig[n])
            nonSignature_.push_back(n);
    }
}

void
CollaborativeSimulation::fillRow(
    std::vector<float> &row, std::size_t net_idx,
    const std::vector<float> &sig_latencies) const
{
    const std::size_t net_f = ctx_.encoder().numFeatures();
    GCM_ASSERT(row.size() == net_f + sig_latencies.size(),
               "fillRow: row width mismatch");
    std::copy(encodings_[net_idx].begin(), encodings_[net_idx].end(),
              row.begin());
    std::copy(sig_latencies.begin(), sig_latencies.end(),
              row.begin() + static_cast<std::ptrdiff_t>(net_f));
}

double
CollaborativeSimulation::anchorOf(std::size_t device_idx) const
{
    if (!anchorNormalization_)
        return 1.0;
    double log_sum = 0.0;
    for (std::size_t s : signature_)
        log_sum += std::log(ctx_.latencyMs(device_idx, s));
    return std::exp(log_sum / static_cast<double>(signature_.size()));
}

std::vector<float>
CollaborativeSimulation::signatureLatencies(std::size_t device_idx) const
{
    const double anchor = anchorOf(device_idx);
    std::vector<float> out(signature_.size());
    for (std::size_t k = 0; k < signature_.size(); ++k) {
        out[k] = static_cast<float>(
            ctx_.latencyMs(device_idx, signature_[k]) / anchor);
    }
    return out;
}

double
CollaborativeSimulation::deviceR2(const ml::GradientBoostedTrees &model,
                                  std::size_t device_idx) const
{
    const std::size_t net_f = ctx_.encoder().numFeatures();
    const auto sig = signatureLatencies(device_idx);
    const double anchor = anchorOf(device_idx);
    std::vector<float> row(net_f + sig.size());
    std::vector<double> y_true, y_pred;
    y_true.reserve(ctx_.numNetworks());
    y_pred.reserve(ctx_.numNetworks());
    for (std::size_t n = 0; n < ctx_.numNetworks(); ++n) {
        fillRow(row, n, sig);
        y_true.push_back(ctx_.latencyMs(device_idx, n));
        y_pred.push_back(model.predictRow(row.data()) * anchor);
    }
    return ml::r2Score(y_true, y_pred);
}

std::vector<CollaborativeStep>
CollaborativeSimulation::run(const CollaborativeConfig &config) const
{
    GCM_ASSERT(config.max_devices >= 1, "run: need at least one device");
    GCM_ASSERT(config.contribution_fraction > 0.0
                   && config.contribution_fraction <= 1.0,
               "run: contribution_fraction out of (0, 1]");
    Rng rng(config.seed);

    // Random device arrival order.
    std::vector<std::size_t> order(ctx_.fleet().size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    rng.shuffle(order);
    const std::size_t rounds =
        std::min(config.max_devices, order.size());

    const std::size_t net_f = ctx_.encoder().numFeatures();
    const std::size_t width = net_f + signature_.size();
    const auto per_device = std::max<std::size_t>(
        1, static_cast<std::size_t>(
               config.contribution_fraction
               * static_cast<double>(nonSignature_.size())));

    ml::Dataset train(width);
    std::vector<float> row(width);
    std::vector<CollaborativeStep> steps;
    steps.reserve(rounds);
    std::size_t measurements = 0;

    for (std::size_t t = 0; t < rounds; ++t) {
        const std::size_t d = order[t];
        const auto sig = signatureLatencies(d);
        const double anchor = anchorOf(d);
        // The signature measurements are contributions too: they are
        // both the device's representation and training rows ("the
        // training set comprises all latency measurements contributed
        // by previously chosen hardware devices", Section V-A).
        for (std::size_t s : signature_) {
            fillRow(row, s, sig);
            train.addRow(row, ctx_.latencyMs(d, s) / anchor);
            ++measurements;
        }
        // Plus a random slice of the remaining network set.
        Rng dev_rng = rng.fork(t);
        const auto picks = dev_rng.sampleWithoutReplacement(
            nonSignature_.size(), per_device);
        for (std::size_t p : picks) {
            const std::size_t n = nonSignature_[p];
            fillRow(row, n, sig);
            train.addRow(row, ctx_.latencyMs(d, n) / anchor);
            ++measurements;
        }

        ml::GradientBoostedTrees model(config.gbt);
        model.train(train);

        double sum_r2 = 0.0;
        for (std::size_t k = 0; k <= t; ++k)
            sum_r2 += deviceR2(model, order[k]);
        CollaborativeStep step;
        step.num_devices = t + 1;
        step.avg_r2 = sum_r2 / static_cast<double>(t + 1);
        step.total_measurements = measurements;
        steps.push_back(step);
    }
    return steps;
}

std::vector<std::pair<std::size_t, double>>
CollaborativeSimulation::isolatedCurve(std::size_t device_idx,
                                       std::uint64_t seed,
                                       const ml::GbtParams &params,
                                       std::size_t stride) const
{
    GCM_ASSERT(device_idx < ctx_.fleet().size(),
               "isolatedCurve: device out of range");
    GCM_ASSERT(stride >= 1, "isolatedCurve: zero stride");
    const std::size_t net_f = ctx_.encoder().numFeatures();
    Rng rng(seed);
    std::vector<std::size_t> order(ctx_.numNetworks());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    rng.shuffle(order);

    // Test set: all networks on this device.
    ml::Dataset test(net_f);
    for (std::size_t n = 0; n < ctx_.numNetworks(); ++n) {
        test.addRow(encodings_[n], ctx_.latencyMs(device_idx, n));
    }

    std::vector<std::pair<std::size_t, double>> curve;
    for (std::size_t k = stride; k <= order.size(); k += stride) {
        ml::Dataset train(net_f);
        for (std::size_t i = 0; i < k; ++i) {
            train.addRow(encodings_[order[i]],
                         ctx_.latencyMs(device_idx, order[i]));
        }
        ml::GradientBoostedTrees model(params);
        model.train(train);
        curve.emplace_back(k,
                           ml::r2Score(test.labels(), model.predict(test)));
    }
    return curve;
}

double
CollaborativeSimulation::collaborativeR2ForDevice(
    std::size_t device_idx, const CollaborativeConfig &config) const
{
    GCM_ASSERT(device_idx < ctx_.fleet().size(),
               "collaborativeR2ForDevice: device out of range");
    Rng rng(config.seed ^ 0xc0ffee);

    // config.max_devices random collaborators, the target among them.
    std::vector<std::size_t> others;
    for (std::size_t i = 0; i < ctx_.fleet().size(); ++i) {
        if (i != device_idx)
            others.push_back(i);
    }
    rng.shuffle(others);
    std::vector<std::size_t> members{device_idx};
    for (std::size_t i = 0;
         i + 1 < config.max_devices && i < others.size(); ++i) {
        members.push_back(others[i]);
    }

    const std::size_t net_f = ctx_.encoder().numFeatures();
    const std::size_t width = net_f + signature_.size();
    const auto per_device = std::max<std::size_t>(
        1, static_cast<std::size_t>(
               config.contribution_fraction
               * static_cast<double>(nonSignature_.size())));

    ml::Dataset train(width);
    std::vector<float> row(width);
    for (std::size_t t = 0; t < members.size(); ++t) {
        const std::size_t d = members[t];
        const auto sig = signatureLatencies(d);
        const double anchor = anchorOf(d);
        for (std::size_t s : signature_) {
            fillRow(row, s, sig);
            train.addRow(row, ctx_.latencyMs(d, s) / anchor);
        }
        Rng dev_rng = rng.fork(t);
        const auto picks = dev_rng.sampleWithoutReplacement(
            nonSignature_.size(), per_device);
        for (std::size_t p : picks) {
            const std::size_t n = nonSignature_[p];
            fillRow(row, n, sig);
            train.addRow(row, ctx_.latencyMs(d, n) / anchor);
        }
    }
    ml::GradientBoostedTrees model(config.gbt);
    model.train(train);
    return deviceR2(model, device_idx);
}

} // namespace gcm::core

#include "core/cross_validation.hh"

#include <cmath>

#include "obs/obs.hh"
#include "util/error.hh"
#include "util/parallel.hh"
#include "util/rng.hh"

namespace gcm::core
{

std::vector<std::vector<std::size_t>>
kFoldDevices(std::size_t n, std::size_t k, std::uint64_t seed)
{
    GCM_ASSERT(k >= 2, "kFoldDevices: need at least 2 folds");
    GCM_ASSERT(k <= n, "kFoldDevices: more folds than devices");
    Rng rng(seed);
    std::vector<std::size_t> order(n);
    for (std::size_t i = 0; i < n; ++i)
        order[i] = i;
    rng.shuffle(order);
    std::vector<std::vector<std::size_t>> folds(k);
    for (std::size_t i = 0; i < n; ++i)
        folds[i % k].push_back(order[i]);
    return folds;
}

CrossValidationResult
crossValidateSignatureModel(const EvaluationHarness &harness,
                            std::size_t num_devices, std::size_t folds,
                            SignatureMethod method,
                            const SignatureConfig &config,
                            const ml::GbtParams &params,
                            std::uint64_t seed)
{
    const obs::TraceSpan cv_span("cv.run");
    const auto partition = kFoldDevices(num_devices, folds, seed);
    // Every fold re-selects its signature and re-trains its booster
    // independently against the shared (const) harness, so the k
    // trainings are one task each; fold metrics come back in fold
    // order and the aggregation below is unchanged from the serial
    // loop.
    const auto evals = parallelMap(folds, 1, [&](std::size_t f) {
        const obs::TraceSpan fold_span("cv.fold");
        obs::counterAdd("cv.folds");
        DeviceSplit split;
        split.test = partition[f];
        for (std::size_t g = 0; g < folds; ++g) {
            if (g == f)
                continue;
            split.train.insert(split.train.end(), partition[g].begin(),
                               partition[g].end());
        }
        return harness.evalSignatureModel(split, method, config, params);
    });
    CrossValidationResult result;
    double mape_sum = 0.0;
    for (const auto &eval : evals) {
        result.fold_r2.push_back(eval.r2);
        mape_sum += eval.mape_pct;
    }
    double sum = 0.0;
    for (double r : result.fold_r2)
        sum += r;
    result.mean_r2 = sum / static_cast<double>(folds);
    double ss = 0.0;
    for (double r : result.fold_r2)
        ss += (r - result.mean_r2) * (r - result.mean_r2);
    result.std_r2 = std::sqrt(ss / static_cast<double>(folds));
    result.mean_mape_pct = mape_sum / static_cast<double>(folds);
    return result;
}

} // namespace gcm::core

/**
 * @file
 * SignatureCostModel — the library's headline public API.
 *
 * Encapsulates the paper's full recipe: pick a signature set from a
 * training latency matrix, represent every device by its measured
 * signature latencies, encode networks layer-wise, and train an
 * XGBoost-style booster to predict latency. A trained model predicts
 * the latency of an unseen network on an unseen device from nothing
 * but the device's signature measurements.
 *
 * Typical use (see examples/quickstart.cc):
 *
 *   auto model = SignatureCostModel::train(suite, latencies, cfg);
 *   double ms = model.predictMs(new_net, device_signature_latencies);
 */

#ifndef GCM_CORE_COST_MODEL_HH
#define GCM_CORE_COST_MODEL_HH

#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "core/net_encoder.hh"
#include "core/signature.hh"
#include "dnn/graph.hh"
#include "ml/flat_ensemble.hh"
#include "ml/gbt.hh"

namespace gcm::core
{

/** End-to-end signature-based cost model. */
class SignatureCostModel
{
  public:
    /** Training configuration. */
    struct Config
    {
        SignatureMethod method = SignatureMethod::MutualInformation;
        SignatureConfig selection;
        /**
         * When non-empty, skip signature selection and use exactly
         * these suite indices as the signature set. Retraining
         * pipelines (fleet/loop.hh) pin the deployed signature this
         * way: fielded clients have already measured those networks,
         * so a retrain must not silently move the signature out from
         * under their device tables. Indices must be unique and in
         * range; validated by train().
         */
        std::vector<std::size_t> pinned_signature;
        ml::GbtParams gbt;
        /**
         * Extra padded layers beyond the training suite's deepest
         * network, so moderately deeper unseen networks still encode.
         */
        std::size_t layer_headroom = 16;
        /**
         * Scale-free representation: divide signature features and
         * the target by the device anchor (geometric mean of its
         * signature latencies) and scale predictions back. Makes the
         * model generalize to device-speed ranges outside the
         * training fleet (see Table I reproduction).
         */
        bool anchor_normalization = true;
    };

    /**
     * Train a cost model.
     *
     * @param suite Deployment (int8) networks, index-aligned with the
     *        latency matrix rows.
     * @param latencies latencies[n][d]: latency (ms) of network n on
     *        training device d.
     * @param config Options.
     */
    static SignatureCostModel
    train(const std::vector<dnn::Graph> &suite,
          const std::vector<std::vector<double>> &latencies,
          const Config &config);

    /** Train with the default configuration. */
    static SignatureCostModel
    train(const std::vector<dnn::Graph> &suite,
          const std::vector<std::vector<double>> &latencies);

    /** Indices of the signature networks within the training suite. */
    const std::vector<std::size_t> &signature() const { return signature_; }

    /** Names of the signature networks (what a new device must run). */
    const std::vector<std::string> &signatureNames() const
    {
        return signatureNames_;
    }

    /**
     * Predict the latency of a network on a device.
     *
     * @param network Deployment (int8) graph; may be unseen.
     * @param signature_latencies_ms Measured latencies of the
     *        signature networks on the target device, in
     *        signatureNames() order.
     */
    double predictMs(const dnn::Graph &network,
                     const std::vector<double> &signature_latencies_ms)
        const;

    /**
     * Compile the booster into its flat SoA inference form
     * (ml/flat_ensemble.hh). Idempotent; predictMs and the batched
     * query path below route through the compiled ensemble once this
     * has run — bit-identical to the node walker by contract. The
     * serving ModelRegistry calls this at snapshot load.
     */
    void compile();

    bool compiled() const { return flat_ != nullptr; }

    /** The compiled ensemble. @pre compiled() */
    const ml::FlatEnsemble &flat() const;

    /** Booster row width: network features + signature slots. */
    std::size_t featureWidth() const;

    /** Width of the network-feature prefix of a query row. */
    std::size_t networkFeatureWidth() const;

    /**
     * Encode a network into the feature prefix a query row starts
     * with (pure; reusable across devices and, per model version,
     * cacheable by callers). Throws GcmError when the network does
     * not fit the encoder layout.
     */
    std::vector<float> encodeNetwork(const dnn::Graph &network) const;

    /**
     * Finish a query row in place: writes the anchor-normalized
     * signature latencies into row[networkFeatureWidth()..) and
     * returns the anchor the prediction must be scaled back by.
     * `row` holds featureWidth() floats with the network prefix
     * already written (encodeNetwork).
     */
    double finishQueryRow(
        const std::vector<double> &signature_latencies_ms,
        float *row) const;

    /**
     * Segmented-row form of finishQueryRow: writes the
     * anchor-normalized signature latencies into tail[0..signature
     * size) and returns the anchor. Paired with encodeNetwork() as
     * the head, this is a query row for
     * ml::FlatEnsemble::predictBatchSegmented with head width
     * networkFeatureWidth().
     */
    double signatureTail(
        const std::vector<double> &signature_latencies_ms,
        float *tail) const;

    const NetworkEncoder &encoder() const { return *encoder_; }

    /**
     * Serialize the trained model ("gcm-cost-model v1"): encoder
     * layout, signature (indices + names) and the booster. Network
     * names containing whitespace are not supported by the format.
     */
    void serialize(std::ostream &os) const;

    /** Load a model written by serialize(). Throws GcmError. */
    static SignatureCostModel deserialize(std::istream &is);

  private:
    SignatureCostModel() = default;

    /** Geometric mean of a device's signature latencies. */
    double anchorOf(const std::vector<double> &signature_latencies_ms)
        const;

    bool anchorNormalization_ = true;
    std::unique_ptr<NetworkEncoder> encoder_;
    std::vector<std::size_t> signature_;
    std::vector<std::string> signatureNames_;
    ml::GradientBoostedTrees booster_;
    /** Compiled booster (compile()); shared so snapshots stay cheap. */
    std::shared_ptr<const ml::FlatEnsemble> flat_;
};

} // namespace gcm::core

#endif // GCM_CORE_COST_MODEL_HH

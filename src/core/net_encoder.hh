/**
 * @file
 * Network representation (paper Section III-B / Fig. 7).
 *
 * Each layer of the deployment (int8) graph is encoded as a one-hot
 * operator id followed by its numeric parameters (input/output
 * geometry, kernel, stride, padding, grouping, fused activation); the
 * per-layer vectors are concatenated in topological order and padded
 * ("masked") with zeros to the depth of the deepest network in the
 * fitted suite, giving every network a fixed-width feature vector.
 */

#ifndef GCM_CORE_NET_ENCODER_HH
#define GCM_CORE_NET_ENCODER_HH

#include <string>
#include <vector>

#include "dnn/graph.hh"

namespace gcm::core
{

/** Fixed-layout layer-wise network encoder. */
class NetworkEncoder
{
  public:
    /**
     * Fit the layout on a network suite: the padded depth is the
     * maximum operator count (excluding Input) over the suite.
     */
    explicit NetworkEncoder(const std::vector<dnn::Graph> &suite);

    /** Construct with an explicit padded depth. */
    explicit NetworkEncoder(std::size_t max_layers);

    std::size_t maxLayers() const { return maxLayers_; }
    std::size_t featuresPerLayer() const;
    std::size_t numFeatures() const;

    /**
     * Encode one network. Throws GcmError when the network is deeper
     * than the fitted layout.
     */
    std::vector<float> encode(const dnn::Graph &graph) const;

    /** Human-readable feature names (layerNNN.<field>). */
    std::vector<std::string> featureNames() const;

  private:
    std::size_t maxLayers_;
};

} // namespace gcm::core

#endif // GCM_CORE_NET_ENCODER_HH

/**
 * @file
 * Chaos-sweep evaluation: how gracefully does the end-to-end pipeline
 * degrade as the crowd-sourcing campaign gets more hostile?
 *
 * For each fault rate the sweep re-runs the characterization campaign
 * under a uniform fault mix (FaultParams::uniformRate), imputes the
 * resulting sparse repository (core/imputation.hh), trains the
 * signature cost model on the imputed train-device columns, and
 * scores it on a *clean* holdout: test devices contribute their
 * fault-free signature latencies and are scored against fault-free
 * ground truth. The clean holdout isolates the damage done by faults
 * to the *training* side — exactly the situation of a production
 * repository fed by flaky phones while the evaluation lab measures
 * carefully.
 *
 * The whole sweep is deterministic: the fault seed, split seed and
 * campaign seeds fully determine every point.
 */

#ifndef GCM_CORE_CHAOS_HH
#define GCM_CORE_CHAOS_HH

#include <cstdint>
#include <vector>

#include "core/experiment_context.hh"
#include "core/imputation.hh"
#include "core/signature.hh"
#include "ml/gbt.hh"
#include "sim/campaign.hh"

namespace gcm::core
{

/** One point of the sweep: a fault rate and what it cost us. */
struct ChaosPoint
{
    double fault_rate = 0.0;
    /** Campaign recovery counters at this rate. */
    sim::CampaignStats stats;
    std::size_t expected_cells = 0;
    /** Missing train-fleet cells before imputation. */
    std::size_t missing_cells = 0;
    std::size_t quarantined_devices = 0;
    std::size_t dropout_devices = 0;
    ImputationStats imputation;
    /** R^2 on the clean holdout (see file comment). */
    double r2_clean_holdout = 0.0;
};

/** Sweep configuration. */
struct ChaosSweepConfig
{
    /** Dataset; campaign faults here are ignored (the sweep sets
     *  them per point, and the baseline context is fault-free). */
    ExperimentConfig experiment;
    std::vector<double> fault_rates = {0.0, 0.1, 0.2, 0.3};
    std::uint64_t fault_seed = 7021;
    /** Clean-holdout split. */
    double test_fraction = 0.3;
    std::uint64_t split_seed = 17;
    /** Cost-model recipe evaluated at every point. */
    SignatureMethod method = SignatureMethod::MutualInformation;
    SignatureConfig selection;
    ml::GbtParams gbt;
    ImputationConfig imputation;
};

/**
 * Run the sweep. One clean baseline context is built once; each fault
 * rate then re-runs only the campaign + imputation + training.
 * The rate-0 point reproduces the fault-free model exactly, so
 * points[i].r2_clean_holdout / points[0].r2_clean_holdout is the
 * degradation factor at rate i.
 */
std::vector<ChaosPoint> runChaosSweep(const ChaosSweepConfig &config);

} // namespace gcm::core

#endif // GCM_CORE_CHAOS_HH

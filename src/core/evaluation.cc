#include "core/evaluation.hh"

#include <algorithm>
#include <cmath>

#include "core/hw_features.hh"
#include "ml/metrics.hh"
#include "util/error.hh"
#include "util/rng.hh"

namespace gcm::core
{

DeviceSplit
splitDevices(std::size_t num_devices, double test_fraction,
             std::uint64_t seed)
{
    GCM_ASSERT(test_fraction > 0.0 && test_fraction < 1.0,
               "splitDevices: test_fraction out of (0, 1)");
    Rng rng(seed);
    std::vector<std::size_t> order(num_devices);
    for (std::size_t i = 0; i < num_devices; ++i)
        order[i] = i;
    rng.shuffle(order);
    const auto test_n = static_cast<std::size_t>(
        static_cast<double>(num_devices) * test_fraction);
    GCM_ASSERT(test_n > 0 && test_n < num_devices,
               "splitDevices: degenerate split");
    DeviceSplit split;
    split.test.assign(order.begin(),
                      order.begin() + static_cast<std::ptrdiff_t>(test_n));
    split.train.assign(order.begin() + static_cast<std::ptrdiff_t>(test_n),
                       order.end());
    return split;
}

EvaluationHarness::EvaluationHarness(const ExperimentContext &ctx,
                                     HarnessOptions options)
    : ctx_(ctx), options_(options)
{
    encodings_.reserve(ctx_.numNetworks());
    for (const auto &g : ctx_.suite())
        encodings_.push_back(ctx_.encoder().encode(g));
}

namespace
{

ModelEvaluation
score(const ml::GradientBoostedTrees &model, const ml::Dataset &test)
{
    ModelEvaluation eval;
    eval.y_true = test.labels();
    eval.y_pred = model.predict(test);
    eval.r2 = ml::r2Score(eval.y_true, eval.y_pred);
    eval.rmse_ms = ml::rmse(eval.y_true, eval.y_pred);
    eval.mape_pct = ml::mape(eval.y_true, eval.y_pred);
    return eval;
}

} // namespace

ModelEvaluation
EvaluationHarness::evalStaticFeatureModel(const DeviceSplit &split,
                                          const ml::GbtParams &params) const
{
    GCM_ASSERT(!split.train.empty() && !split.test.empty(),
               "evalStaticFeatureModel: empty split");
    const StaticHardwareEncoder hw;
    const std::size_t net_f = ctx_.encoder().numFeatures();
    const std::size_t width = net_f + hw.numFeatures();

    auto build = [&](const std::vector<std::size_t> &devices) {
        ml::Dataset ds(width);
        std::vector<float> row(width);
        for (std::size_t d : devices) {
            const auto hw_vec =
                hw.encode(ctx_.fleet().device(d), ctx_.fleet());
            for (std::size_t n = 0; n < ctx_.numNetworks(); ++n) {
                std::copy(encodings_[n].begin(), encodings_[n].end(),
                          row.begin());
                std::copy(hw_vec.begin(), hw_vec.end(),
                          row.begin() + static_cast<std::ptrdiff_t>(net_f));
                ds.addRow(row, ctx_.latencyMs(d, n));
            }
        }
        return ds;
    };

    const ml::Dataset train = build(split.train);
    const ml::Dataset test = build(split.test);
    ml::GradientBoostedTrees model(params);
    model.train(train);
    return score(model, test);
}

EvaluationHarness::SignatureData
EvaluationHarness::buildSignatureDataset(
    const std::vector<std::size_t> &devices,
    const std::vector<std::size_t> &signature) const
{
    const std::size_t net_f = ctx_.encoder().numFeatures();
    const std::size_t width = net_f + signature.size();
    std::vector<bool> is_signature(ctx_.numNetworks(), false);
    for (std::size_t s : signature) {
        GCM_ASSERT(s < ctx_.numNetworks(),
                   "signature index out of range");
        is_signature[s] = true;
    }

    SignatureData out{ml::Dataset(width), {}};
    std::vector<float> row(width);
    for (std::size_t d : devices) {
        // The device's hardware representation: measured latencies of
        // the signature networks on it, optionally rescaled by the
        // device anchor (geometric mean of the signature latencies).
        double anchor = 1.0;
        if (options_.anchor_normalization) {
            double log_sum = 0.0;
            for (std::size_t s : signature) {
                const double ms = ctx_.latencyMs(d, s);
                GCM_ASSERT(ms > 0.0, "non-positive signature latency");
                log_sum += std::log(ms);
            }
            anchor = std::exp(log_sum
                              / static_cast<double>(signature.size()));
        }
        for (std::size_t k = 0; k < signature.size(); ++k) {
            row[net_f + k] = static_cast<float>(
                ctx_.latencyMs(d, signature[k]) / anchor);
        }
        for (std::size_t n = 0; n < ctx_.numNetworks(); ++n) {
            if (is_signature[n])
                continue; // paper: signature rows are discarded
            std::copy(encodings_[n].begin(), encodings_[n].end(),
                      row.begin());
            out.dataset.addRow(row, ctx_.latencyMs(d, n) / anchor);
            out.anchors.push_back(anchor);
        }
    }
    return out;
}

ModelEvaluation
EvaluationHarness::evalWithSignature(
    const DeviceSplit &split, const std::vector<std::size_t> &signature,
    const ml::GbtParams &params) const
{
    GCM_ASSERT(!split.train.empty() && !split.test.empty(),
               "evalWithSignature: empty split");
    GCM_ASSERT(!signature.empty(), "evalWithSignature: empty signature");
    const SignatureData train =
        buildSignatureDataset(split.train, signature);
    const SignatureData test =
        buildSignatureDataset(split.test, signature);
    ml::GradientBoostedTrees model(params);
    model.train(train.dataset);
    // Denormalize: metrics are always reported in milliseconds.
    ModelEvaluation eval;
    eval.y_true = test.dataset.labels();
    eval.y_pred = model.predict(test.dataset);
    for (std::size_t i = 0; i < eval.y_true.size(); ++i) {
        eval.y_true[i] *= test.anchors[i];
        eval.y_pred[i] *= test.anchors[i];
    }
    eval.r2 = ml::r2Score(eval.y_true, eval.y_pred);
    eval.rmse_ms = ml::rmse(eval.y_true, eval.y_pred);
    eval.mape_pct = ml::mape(eval.y_true, eval.y_pred);
    eval.signature = signature;
    return eval;
}

ModelEvaluation
EvaluationHarness::evalSignatureModel(const DeviceSplit &split,
                                      SignatureMethod method,
                                      const SignatureConfig &config,
                                      const ml::GbtParams &params) const
{
    // Selection sees training devices only (Section IV-A).
    const auto train_latencies = ctx_.latencyMatrix(split.train);
    const auto signature = selectSignature(train_latencies, method, config);
    return evalWithSignature(split, signature, params);
}

} // namespace gcm::core

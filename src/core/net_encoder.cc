#include "core/net_encoder.hh"

#include <algorithm>

#include "util/error.hh"

namespace gcm::core
{

namespace
{

/** Operator one-hot size: all kinds except Input. */
constexpr std::size_t kOpOneHot = dnn::kNumOpKinds - 1;

/** Numeric parameter slots per layer. */
constexpr std::size_t kParamSlots = 9;

const char *const kParamNames[kParamSlots] = {
    "in_h", "in_c", "out_h", "out_c", "kernel",
    "stride", "padding", "grouped", "fused_act",
};

std::size_t
countEncodableNodes(const dnn::Graph &g)
{
    std::size_t n = 0;
    for (const auto &node : g.nodes()) {
        if (node.kind != dnn::OpKind::Input)
            ++n;
    }
    return n;
}

} // namespace

NetworkEncoder::NetworkEncoder(const std::vector<dnn::Graph> &suite)
{
    GCM_ASSERT(!suite.empty(), "NetworkEncoder: empty suite");
    std::size_t deepest = 0;
    for (const auto &g : suite)
        deepest = std::max(deepest, countEncodableNodes(g));
    maxLayers_ = deepest;
}

NetworkEncoder::NetworkEncoder(std::size_t max_layers)
    : maxLayers_(max_layers)
{
    GCM_ASSERT(max_layers > 0, "NetworkEncoder: zero max_layers");
}

std::size_t
NetworkEncoder::featuresPerLayer() const
{
    return kOpOneHot + kParamSlots;
}

std::size_t
NetworkEncoder::numFeatures() const
{
    return maxLayers_ * featuresPerLayer();
}

std::vector<float>
NetworkEncoder::encode(const dnn::Graph &graph) const
{
    const std::size_t depth = countEncodableNodes(graph);
    if (depth > maxLayers_) {
        fatal("NetworkEncoder: network '", graph.name(), "' has ", depth,
              " layers but the fitted layout allows ", maxLayers_);
    }
    std::vector<float> out(numFeatures(), 0.0f);
    std::size_t layer = 0;
    for (const auto &node : graph.nodes()) {
        if (node.kind == dnn::OpKind::Input)
            continue;
        float *slot = out.data() + layer * featuresPerLayer();
        // One-hot operator id (kinds start after Input).
        const auto kind_idx =
            static_cast<std::size_t>(node.kind) - 1;
        GCM_ASSERT(kind_idx < kOpOneHot, "encode: bad op kind");
        slot[kind_idx] = 1.0f;
        float *params = slot + kOpOneHot;
        const dnn::TensorShape &in_shape =
            graph.node(node.inputs[0]).shape;
        params[0] = static_cast<float>(in_shape.h);
        params[1] = static_cast<float>(in_shape.c);
        params[2] = static_cast<float>(node.shape.h);
        params[3] = static_cast<float>(node.shape.c);
        params[4] = static_cast<float>(node.params.kernel);
        params[5] = static_cast<float>(node.params.stride);
        params[6] = static_cast<float>(node.params.padding);
        params[7] = node.params.groups > 1 ? 1.0f : 0.0f;
        params[8] =
            static_cast<float>(node.params.fused_activation);
        ++layer;
    }
    return out;
}

std::vector<std::string>
NetworkEncoder::featureNames() const
{
    std::vector<std::string> names;
    names.reserve(numFeatures());
    for (std::size_t l = 0; l < maxLayers_; ++l) {
        const std::string prefix = "layer" + std::to_string(l) + ".";
        for (std::size_t k = 0; k < kOpOneHot; ++k) {
            names.push_back(
                prefix + "is_"
                + dnn::opKindName(static_cast<dnn::OpKind>(k + 1)));
        }
        for (const char *p : kParamNames)
            names.push_back(prefix + p);
    }
    return names;
}

} // namespace gcm::core

#include "core/signature.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "obs/obs.hh"
#include "stats/correlation.hh"
#include "stats/mutual_info.hh"
#include "util/error.hh"
#include "util/parallel.hh"
#include "util/rng.hh"

namespace gcm::core
{

const char *
signatureMethodName(SignatureMethod method)
{
    switch (method) {
      case SignatureMethod::RandomSampling: return "RS";
      case SignatureMethod::MutualInformation: return "MIS";
      case SignatureMethod::SpearmanCorrelation: return "SCCS";
    }
    GCM_ASSERT(false, "signatureMethodName: invalid method");
    return "?";
}

std::vector<std::size_t>
selectRandomSignature(std::size_t num_networks, std::size_t m,
                      std::uint64_t seed)
{
    GCM_ASSERT(m <= num_networks, "signature larger than network count");
    Rng rng(seed);
    return rng.sampleWithoutReplacement(num_networks, m);
}

namespace
{

/** log-transform latencies (MI estimators behave better in log). */
std::vector<std::vector<double>>
logLatencies(const std::vector<std::vector<double>> &net_latencies)
{
    std::vector<std::vector<double>> out = net_latencies;
    for (auto &row : out) {
        for (auto &v : row) {
            GCM_ASSERT(v > 0.0, "selectSignature: non-positive latency");
            v = std::log(v);
        }
    }
    return out;
}

std::vector<std::size_t>
complementOf(const std::vector<bool> &chosen)
{
    std::vector<std::size_t> rest;
    for (std::size_t i = 0; i < chosen.size(); ++i) {
        if (!chosen[i])
            rest.push_back(i);
    }
    return rest;
}

/** MIS with the Gaussian set-MI estimator: greedy argmax I(S; V\S). */
std::vector<std::size_t>
misGaussian(const std::vector<std::vector<double>> &vars, std::size_t m,
            double ridge)
{
    const std::size_t n = vars.size();
    const stats::GaussianMiEstimator mi(vars, ridge);
    std::vector<bool> chosen(n, false);
    std::vector<std::size_t> subset;
    const double no_gain = -std::numeric_limits<double>::max();
    for (std::size_t step = 0; step < m; ++step) {
        const obs::TraceSpan scan_span("signature.scan");
        obs::counterAdd("signature.candidates", n);
        // Each candidate's set-MI (two logdets) is evaluated as its
        // own task against the shared const estimator; the argmax is
        // reduced serially in candidate order, so ties resolve to the
        // lowest index exactly as in the serial loop.
        const auto gains =
            parallelMap(n, 1, [&](std::size_t c) -> double {
                if (chosen[c])
                    return no_gain;
                std::vector<std::size_t> s = subset;
                s.push_back(c);
                std::vector<bool> tmp = chosen;
                tmp[c] = true;
                const auto rest = complementOf(tmp);
                if (rest.empty())
                    return no_gain;
                return mi.setMi(s, rest);
            });
        double best_gain = no_gain;
        std::size_t best = n;
        for (std::size_t c = 0; c < n; ++c) {
            if (gains[c] > best_gain) {
                best_gain = gains[c];
                best = c;
            }
        }
        GCM_ASSERT(best < n, "misGaussian: no candidate found");
        chosen[best] = true;
        subset.push_back(best);
    }
    return subset;
}

/**
 * MIS with the pairwise histogram estimator: the set objective is
 * approximated by the sum over remaining networks of the maximum MI
 * to any signature member (a facility-location style surrogate that
 * is also submodular).
 */
std::vector<std::size_t>
misHistogram(const std::vector<std::vector<double>> &vars, std::size_t m,
             std::size_t bins)
{
    const std::size_t n = vars.size();
    // Pairwise MI matrix. Each variable bins itself, then each row i
    // fills its strict upper triangle and mirrors it: every matrix
    // element is written by exactly one task.
    std::vector<std::vector<std::size_t>> binned(n);
    parallelFor(0, n, 8, [&](std::size_t i) {
        binned[i] = stats::quantileBins(vars[i], bins);
    });
    std::vector<std::vector<double>> mi(n, std::vector<double>(n, 0.0));
    parallelFor(0, n, 1, [&](std::size_t i) {
        for (std::size_t j = i + 1; j < n; ++j) {
            const double v = stats::discreteMutualInformation(
                binned[i], binned[j], bins, bins);
            mi[i][j] = v;
            mi[j][i] = v;
        }
    });
    std::vector<bool> chosen(n, false);
    std::vector<double> best_cover(n, 0.0);
    std::vector<std::size_t> subset;
    for (std::size_t step = 0; step < m; ++step) {
        const obs::TraceSpan scan_span("signature.scan");
        obs::counterAdd("signature.candidates", n);
        // Marginal coverage gain per candidate, one task each, with a
        // serial in-order argmax (ties to the lowest index, as in the
        // serial loop).
        const auto gains =
            parallelMap(n, 16, [&](std::size_t c) -> double {
                if (chosen[c])
                    return -1.0;
                double gain = 0.0;
                for (std::size_t j = 0; j < n; ++j) {
                    if (chosen[j] || j == c)
                        continue;
                    gain += std::max(0.0, mi[c][j] - best_cover[j]);
                }
                return gain;
            });
        double best_gain = -1.0;
        std::size_t best = n;
        for (std::size_t c = 0; c < n; ++c) {
            if (gains[c] > best_gain) {
                best_gain = gains[c];
                best = c;
            }
        }
        GCM_ASSERT(best < n, "misHistogram: no candidate found");
        chosen[best] = true;
        subset.push_back(best);
        for (std::size_t j = 0; j < n; ++j)
            best_cover[j] = std::max(best_cover[j], mi[best][j]);
    }
    return subset;
}

} // namespace

std::vector<std::size_t>
selectMisSignature(const std::vector<std::vector<double>> &net_latencies,
                   std::size_t m, const SignatureConfig &config)
{
    GCM_ASSERT(m <= net_latencies.size(),
               "signature larger than network count");
    GCM_ASSERT(m >= 1, "empty signature requested");
    const obs::TraceSpan span("signature.mis");
    const auto vars = logLatencies(net_latencies);
    if (config.mi_estimator == MiEstimatorKind::Gaussian)
        return misGaussian(vars, m, config.mi_ridge);
    return misHistogram(vars, m, config.mi_bins);
}

std::vector<std::size_t>
selectSccsSignature(const std::vector<std::vector<double>> &net_latencies,
                    std::size_t m, const SignatureConfig &config)
{
    const std::size_t n = net_latencies.size();
    GCM_ASSERT(m <= n, "signature larger than network count");
    GCM_ASSERT(config.sccs_gamma > 0.0 && config.sccs_gamma <= 1.0,
               "SCCS gamma out of (0, 1]");
    const obs::TraceSpan span("signature.sccs");
    const auto rho = stats::spearmanMatrix(net_latencies);

    std::vector<bool> removed(n, false);
    std::vector<std::size_t> subset;
    double gamma = config.sccs_gamma;
    while (subset.size() < m) {
        const obs::TraceSpan scan_span("signature.scan");
        obs::counterAdd("signature.candidates", n);
        // Pick the live network with the most live correlations
        // >= gamma (self excluded). Ties — common when all pairs
        // correlate above gamma — go to the network with the largest
        // correlation mass, i.e. the most central representative.
        // Candidate stats are independent tasks; the pick is reduced
        // serially in index order with the same comparison chain, so
        // the choice matches the serial loop exactly.
        struct CandStat
        {
            bool live = false;
            std::size_t count = 0;
            double mass = 0.0;
        };
        const auto cand_stats =
            parallelMap(n, 16, [&](std::size_t i) -> CandStat {
                CandStat st;
                if (removed[i])
                    return st;
                st.live = true;
                for (std::size_t j = 0; j < n; ++j) {
                    if (j != i && !removed[j] && rho[i][j] >= gamma) {
                        ++st.count;
                        st.mass += rho[i][j];
                    }
                }
                return st;
            });
        std::size_t best = n;
        std::size_t best_count = 0;
        double best_mass = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            if (!cand_stats[i].live)
                continue;
            if (best == n || cand_stats[i].count > best_count
                || (cand_stats[i].count == best_count
                    && cand_stats[i].mass > best_mass)) {
                best = i;
                best_count = cand_stats[i].count;
                best_mass = cand_stats[i].mass;
            }
        }
        if (best == n) {
            // Candidate pool exhausted: relax gamma and resurrect the
            // removed networks that were not selected.
            gamma *= config.sccs_gamma_decay;
            for (std::size_t i = 0; i < n; ++i) {
                if (std::find(subset.begin(), subset.end(), i)
                    == subset.end()) {
                    removed[i] = false;
                }
            }
            continue;
        }
        subset.push_back(best);
        removed[best] = true;
        // Remove the group highly correlated with the pick.
        for (std::size_t j = 0; j < n; ++j) {
            if (!removed[j] && rho[best][j] >= gamma)
                removed[j] = true;
        }
    }
    return subset;
}

std::vector<std::size_t>
selectSignature(const std::vector<std::vector<double>> &net_latencies,
                SignatureMethod method, const SignatureConfig &config)
{
    GCM_ASSERT(!net_latencies.empty(), "selectSignature: no networks");
    switch (method) {
      case SignatureMethod::RandomSampling:
        return selectRandomSignature(net_latencies.size(), config.size,
                                     config.seed);
      case SignatureMethod::MutualInformation:
        return selectMisSignature(net_latencies, config.size, config);
      case SignatureMethod::SpearmanCorrelation:
        return selectSccsSignature(net_latencies, config.size, config);
    }
    GCM_ASSERT(false, "selectSignature: invalid method");
    return {};
}

} // namespace gcm::core

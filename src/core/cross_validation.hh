/**
 * @file
 * k-fold cross-validation over devices: a sturdier estimate of the
 * cost model's generalization than the paper's single 70/30 split,
 * since with 105 devices one split leaves a small test set.
 */

#ifndef GCM_CORE_CROSS_VALIDATION_HH
#define GCM_CORE_CROSS_VALIDATION_HH

#include <cstdint>
#include <vector>

#include "core/evaluation.hh"

namespace gcm::core
{

/** Result of a k-fold run. */
struct CrossValidationResult
{
    std::vector<double> fold_r2;
    double mean_r2 = 0.0;
    double std_r2 = 0.0;
    double mean_mape_pct = 0.0;
};

/**
 * Partition n devices into k folds (shuffled, near-equal sizes).
 * Every device appears in exactly one fold.
 */
std::vector<std::vector<std::size_t>> kFoldDevices(std::size_t n,
                                                   std::size_t k,
                                                   std::uint64_t seed);

/**
 * k-fold cross-validation of the signature cost model: each fold in
 * turn is the test set, the signature is re-selected on each fold's
 * training devices.
 */
CrossValidationResult crossValidateSignatureModel(
    const EvaluationHarness &harness, std::size_t num_devices,
    std::size_t folds, SignatureMethod method,
    const SignatureConfig &config, const ml::GbtParams &params = {},
    std::uint64_t seed = 97);

} // namespace gcm::core

#endif // GCM_CORE_CROSS_VALIDATION_HH

#include "core/hw_features.hh"

#include "util/error.hh"

namespace gcm::core
{

StaticHardwareEncoder::StaticHardwareEncoder()
    : numFamilies_(sim::coreFamilyTable().size())
{}

std::size_t
StaticHardwareEncoder::numFeatures() const
{
    return numFamilies_ + 2;
}

std::vector<float>
StaticHardwareEncoder::encode(const sim::DeviceSpec &device,
                              const sim::DeviceDatabase &fleet) const
{
    std::vector<float> out(numFeatures(), 0.0f);
    const sim::Chipset &chipset = fleet.chipsetOf(device);
    const auto family = static_cast<std::size_t>(chipset.big_core);
    GCM_ASSERT(family < numFamilies_, "encode: bad core family");
    out[family] = 1.0f;
    out[numFamilies_] = static_cast<float>(device.freq_ghz);
    out[numFamilies_ + 1] = static_cast<float>(device.ram_gb);
    return out;
}

std::vector<std::string>
StaticHardwareEncoder::featureNames() const
{
    std::vector<std::string> names;
    names.reserve(numFeatures());
    for (const auto &family : sim::coreFamilyTable())
        names.push_back("cpu_is_" + family.name);
    names.push_back("freq_ghz");
    names.push_back("ram_gb");
    return names;
}

} // namespace gcm::core

#include "core/chaos.hh"

#include <set>

#include "core/cost_model.hh"
#include "core/evaluation.hh"
#include "ml/metrics.hh"
#include "obs/obs.hh"
#include "util/error.hh"

namespace gcm::core
{

std::vector<ChaosPoint>
runChaosSweep(const ChaosSweepConfig &config)
{
    GCM_ASSERT(!config.fault_rates.empty(),
               "runChaosSweep: no fault rates");
    obs::TraceSpan sweep_span("chaos.sweep");

    // Clean baseline: fault-free dataset, the holdout's ground truth.
    ExperimentConfig clean_cfg = config.experiment;
    clean_cfg.campaign.faults = sim::FaultParams{};
    const auto ctx = ExperimentContext::build(clean_cfg);

    const DeviceSplit split = splitDevices(
        ctx.fleet().size(), config.test_fraction, config.split_seed);
    GCM_ASSERT(!split.train.empty() && !split.test.empty(),
               "runChaosSweep: degenerate device split");

    std::vector<std::int32_t> train_ids;
    train_ids.reserve(split.train.size());
    for (std::size_t d : split.train)
        train_ids.push_back(ctx.fleet().device(d).id);
    const std::vector<std::string> &names = ctx.networkNames();

    SignatureCostModel::Config model_cfg;
    model_cfg.method = config.method;
    model_cfg.selection = config.selection;
    model_cfg.gbt = config.gbt;

    std::vector<ChaosPoint> points;
    points.reserve(config.fault_rates.size());
    for (double rate : config.fault_rates) {
        obs::TraceSpan span("chaos.point");
        ChaosPoint pt;
        pt.fault_rate = rate;

        sim::CampaignConfig cc = clean_cfg.campaign;
        cc.faults = sim::FaultParams::uniformRate(rate);
        cc.fault_seed = config.fault_seed;
        sim::CharacterizationCampaign campaign(
            ctx.fleet(), ctx.campaign().model(), cc);
        const sim::CampaignReport report =
            campaign.runResilient(ctx.suite());
        pt.stats = report.stats;
        pt.expected_cells = report.expected_cells;
        pt.quarantined_devices = report.quarantined.size();
        pt.dropout_devices = report.dropouts.size();

        // Train-fleet columns only: faulted holdout measurements must
        // not leak into training, not even through imputation.
        auto latencies =
            report.repo.sparseLatencyMatrix(train_ids, names);
        pt.missing_cells = report.repo.missingCells(train_ids, names);
        pt.imputation =
            imputeLatencyMatrix(latencies, config.imputation);

        const auto model =
            SignatureCostModel::train(ctx.suite(), latencies, model_cfg);

        // Clean holdout: fault-free signature latencies in, fault-free
        // ground truth out.
        const std::set<std::size_t> sig_set(model.signature().begin(),
                                            model.signature().end());
        std::vector<double> y_true, y_pred;
        for (std::size_t d : split.test) {
            std::vector<double> sig_lat;
            sig_lat.reserve(model.signature().size());
            for (std::size_t s : model.signature())
                sig_lat.push_back(ctx.latencyMs(d, s));
            for (std::size_t n = 0; n < names.size(); ++n) {
                if (sig_set.count(n))
                    continue;
                y_true.push_back(ctx.latencyMs(d, n));
                y_pred.push_back(
                    model.predictMs(ctx.suite()[n], sig_lat));
            }
        }
        pt.r2_clean_holdout = ml::r2Score(y_true, y_pred);
        obs::counterAdd("chaos.points", 1);
        points.push_back(std::move(pt));
    }
    return points;
}

} // namespace gcm::core

#include "core/imputation.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.hh"

namespace gcm::core
{

namespace
{

double
medianOf(std::vector<double> v)
{
    GCM_ASSERT(!v.empty(), "imputation: median of empty set");
    std::sort(v.begin(), v.end());
    const std::size_t mid = v.size() / 2;
    return v.size() % 2 == 1 ? v[mid] : 0.5 * (v[mid - 1] + v[mid]);
}

/** Fit of a donor device to a target device on co-observed cells. */
struct DonorFit
{
    std::size_t device = 0;
    std::size_t overlap = 0;
    /** Mean of log(target) - log(donor) over the overlap. */
    double log_ratio = 0.0;
    /** Dispersion of the log ratios: lower = better shape match. */
    double dispersion = std::numeric_limits<double>::max();
};

} // namespace

ImputationStats
imputeLatencyMatrix(std::vector<std::vector<double>> &matrix,
                    const ImputationConfig &config)
{
    GCM_ASSERT(!matrix.empty(), "imputeLatencyMatrix: empty matrix");
    const std::size_t nets = matrix.size();
    const std::size_t devices = matrix[0].size();
    GCM_ASSERT(devices > 0, "imputeLatencyMatrix: no devices");
    for (const auto &row : matrix) {
        if (row.size() != devices)
            fatal("imputeLatencyMatrix: ragged matrix");
    }

    ImputationStats stats;
    stats.total_cells = nets * devices;

    // Log-transform observed cells; devices differ mostly by a
    // multiplicative speed factor, so all fitting happens in log.
    std::vector<std::vector<double>> logm(
        nets, std::vector<double>(
                  devices, std::numeric_limits<double>::quiet_NaN()));
    std::vector<double> row_median(nets);
    for (std::size_t n = 0; n < nets; ++n) {
        std::vector<double> observed;
        for (std::size_t d = 0; d < devices; ++d) {
            const double v = matrix[n][d];
            if (std::isnan(v))
                continue;
            if (!std::isfinite(v) || v <= 0.0) {
                fatal("imputeLatencyMatrix: observed cell (", n, ", ",
                      d, ") is not a positive latency: ", v);
            }
            logm[n][d] = std::log(v);
            observed.push_back(v);
        }
        if (observed.empty()) {
            fatal("imputeLatencyMatrix: network ", n,
                  " has no measurement on any device; nothing to "
                  "impute from");
        }
        row_median[n] = medianOf(observed);
    }

    // Collect fills first and write them afterwards, so every imputed
    // value derives from genuinely observed cells only.
    std::vector<std::pair<std::pair<std::size_t, std::size_t>, double>>
        fills;
    for (std::size_t d = 0; d < devices; ++d) {
        std::vector<std::size_t> missing;
        for (std::size_t n = 0; n < nets; ++n) {
            if (std::isnan(matrix[n][d]))
                missing.push_back(n);
        }
        if (missing.empty())
            continue;
        stats.missing_cells += missing.size();

        // Rank every other device by how well its observed latency
        // profile matches this one on their co-observed networks.
        std::vector<DonorFit> donors;
        donors.reserve(devices - 1);
        for (std::size_t e = 0; e < devices; ++e) {
            if (e == d)
                continue;
            DonorFit fit;
            fit.device = e;
            double sum = 0.0, sum_sq = 0.0;
            for (std::size_t n = 0; n < nets; ++n) {
                if (std::isnan(logm[n][d]) || std::isnan(logm[n][e]))
                    continue;
                const double diff = logm[n][d] - logm[n][e];
                sum += diff;
                sum_sq += diff * diff;
                ++fit.overlap;
            }
            if (fit.overlap < config.min_overlap)
                continue;
            const double k = static_cast<double>(fit.overlap);
            fit.log_ratio = sum / k;
            fit.dispersion = sum_sq / k - fit.log_ratio * fit.log_ratio;
            donors.push_back(fit);
        }
        std::sort(donors.begin(), donors.end(),
                  [](const DonorFit &a, const DonorFit &b) {
                      if (a.dispersion != b.dispersion)
                          return a.dispersion < b.dispersion;
                      return a.device < b.device;
                  });

        // Median speed ratio for the fleet-median fallback.
        double speed = 1.0;
        {
            std::vector<double> ratios;
            for (std::size_t n = 0; n < nets; ++n) {
                if (!std::isnan(logm[n][d]))
                    ratios.push_back(logm[n][d]
                                     - std::log(row_median[n]));
            }
            if (!ratios.empty())
                speed = std::exp(medianOf(ratios));
        }

        for (std::size_t n : missing) {
            double log_sum = 0.0;
            std::size_t used = 0;
            for (const DonorFit &fit : donors) {
                if (std::isnan(logm[n][fit.device]))
                    continue;
                log_sum += logm[n][fit.device] + fit.log_ratio;
                if (++used == config.neighbours)
                    break;
            }
            double value;
            if (used > 0) {
                value = std::exp(log_sum / static_cast<double>(used));
                ++stats.nn_imputed;
            } else {
                value = row_median[n] * speed;
                ++stats.median_imputed;
            }
            fills.push_back({{n, d}, value});
        }
    }
    for (const auto &fill : fills)
        matrix[fill.first.first][fill.first.second] = fill.second;
    return stats;
}

std::size_t
imputeSignatureLatencies(
    std::vector<double> &signature_latencies_ms,
    const std::vector<std::vector<double>> &reference,
    const ImputationConfig &config)
{
    const std::size_t k = signature_latencies_ms.size();
    if (reference.size() != k) {
        fatal("imputeSignatureLatencies: reference has ",
              reference.size(), " rows for a signature of ", k);
    }
    GCM_ASSERT(k > 0, "imputeSignatureLatencies: empty signature");
    const std::size_t devices = reference[0].size();
    GCM_ASSERT(devices > 0,
               "imputeSignatureLatencies: empty reference fleet");

    std::vector<std::size_t> observed, missing;
    for (std::size_t i = 0; i < k; ++i) {
        const double v = signature_latencies_ms[i];
        if (std::isnan(v)) {
            missing.push_back(i);
        } else if (!std::isfinite(v) || v <= 0.0) {
            fatal("imputeSignatureLatencies: entry ", i,
                  " is not a positive latency: ", v);
        } else {
            observed.push_back(i);
        }
    }
    if (missing.empty())
        return 0;
    if (observed.empty()) {
        fatal("imputeSignatureLatencies: every signature latency is "
              "missing; the device has no hardware representation to "
              "impute from");
    }

    // Build the (signature-rows x (reference devices + target)) matrix
    // and reuse the matrix imputation: the target device is just one
    // more sparse column against a dense fleet.
    std::vector<std::vector<double>> m(
        k, std::vector<double>(devices + 1));
    for (std::size_t i = 0; i < k; ++i) {
        if (reference[i].size() != devices)
            fatal("imputeSignatureLatencies: ragged reference matrix");
        std::copy(reference[i].begin(), reference[i].end(),
                  m[i].begin());
        m[i][devices] = signature_latencies_ms[i];
    }
    ImputationConfig cfg = config;
    cfg.min_overlap = std::min(cfg.min_overlap, observed.size());
    imputeLatencyMatrix(m, cfg);
    for (std::size_t i : missing)
        signature_latencies_ms[i] = m[i][devices];
    return missing.size();
}

} // namespace gcm::core

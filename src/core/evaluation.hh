/**
 * @file
 * Evaluation harness for the paper's Section IV experiments.
 *
 * Implements the exact methodology of Section IV-A: devices are split
 * into train (70%) and test (30%) sets; the signature set is chosen
 * using *training* devices only; the signature networks' rows are
 * then discarded from both sets; an XGBoost-style model is trained on
 * (network encoding, signature latencies) -> latency and scored with
 * R^2 on the test devices.
 */

#ifndef GCM_CORE_EVALUATION_HH
#define GCM_CORE_EVALUATION_HH

#include <cstdint>
#include <vector>

#include "core/experiment_context.hh"
#include "core/signature.hh"
#include "ml/gbt.hh"

namespace gcm::core
{

/** A train/test partition of device indices. */
struct DeviceSplit
{
    std::vector<std::size_t> train;
    std::vector<std::size_t> test;
};

/** Random 70/30-style split of n devices. */
DeviceSplit splitDevices(std::size_t num_devices, double test_fraction,
                         std::uint64_t seed);

/** Outcome of one cost-model experiment. */
struct ModelEvaluation
{
    double r2 = 0.0;
    double rmse_ms = 0.0;
    double mape_pct = 0.0;
    /** Test-set targets and predictions (for scatter output). */
    std::vector<double> y_true;
    std::vector<double> y_pred;
    /** Signature networks used (empty for the static-feature model). */
    std::vector<std::size_t> signature;
};

/** Evaluation options. */
struct HarnessOptions
{
    /**
     * Scale-free signature representation: divide the signature
     * latencies (features) and the target by the device's anchor —
     * the geometric mean of its signature latencies — and multiply
     * predictions back. Metrics stay in milliseconds. This is what
     * lets the boosted trees generalize across the adversarial
     * cluster splits of Table I: raw-scale trees cannot extrapolate
     * to device-speed ranges absent from training (see
     * bench_ablation_design for the comparison).
     */
    bool anchor_normalization = true;
};

/** Runs the paper's experiments on a built context. */
class EvaluationHarness
{
  public:
    explicit EvaluationHarness(const ExperimentContext &ctx,
                               HarnessOptions options = {});

    /**
     * Fig. 8: train with the static hardware representation (CPU
     * one-hot + frequency + RAM) and score on test devices.
     */
    ModelEvaluation evalStaticFeatureModel(
        const DeviceSplit &split, const ml::GbtParams &params = {}) const;

    /**
     * Fig. 9/10/11 and Table I: train with the signature-latency
     * hardware representation.
     *
     * @param split Device partition.
     * @param method Signature selection method.
     * @param config Selection options (size, seed, gamma, ...).
     * @param params Booster hyperparameters.
     */
    ModelEvaluation evalSignatureModel(
        const DeviceSplit &split, SignatureMethod method,
        const SignatureConfig &config,
        const ml::GbtParams &params = {}) const;

    /** Same, with an externally chosen signature set. */
    ModelEvaluation evalWithSignature(
        const DeviceSplit &split,
        const std::vector<std::size_t> &signature,
        const ml::GbtParams &params = {}) const;

    /** Cached per-network encodings (index-aligned with the suite). */
    const std::vector<std::vector<float>> &encodings() const
    {
        return encodings_;
    }

  private:
    struct SignatureData
    {
        ml::Dataset dataset;
        /** Per-row anchor (1.0 when normalization is off). */
        std::vector<double> anchors;
    };

    /**
     * Assemble the (network encoding ++ signature latencies) dataset
     * over a device set, skipping signature networks.
     */
    SignatureData buildSignatureDataset(
        const std::vector<std::size_t> &devices,
        const std::vector<std::size_t> &signature) const;

    const ExperimentContext &ctx_;
    HarnessOptions options_;
    std::vector<std::vector<float>> encodings_;
};

} // namespace gcm::core

#endif // GCM_CORE_EVALUATION_HH

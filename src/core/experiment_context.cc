#include "core/experiment_context.hh"

#include "dnn/quantize.hh"
#include "dnn/zoo.hh"
#include "util/error.hh"

namespace gcm::core
{

ExperimentContext
ExperimentContext::assemble(const ExperimentConfig &config)
{
    ExperimentContext ctx;

    // 1. Network suite: the 18 popular networks + generated networks.
    ctx.fp32_ = dnn::buildZoo();
    if (config.num_random_networks > 0) {
        dnn::RandomNetworkGenerator gen(config.search_space,
                                        config.network_seed);
        auto random = gen.generateSuite(config.num_random_networks,
                                        "randnet");
        for (auto &g : random)
            ctx.fp32_.push_back(std::move(g));
    }
    ctx.suite_.reserve(ctx.fp32_.size());
    ctx.names_.reserve(ctx.fp32_.size());
    for (const auto &g : ctx.fp32_) {
        ctx.suite_.push_back(dnn::quantize(g));
        ctx.names_.push_back(g.name());
    }

    // 2. Device fleet.
    ctx.fleet_ = std::make_unique<sim::DeviceDatabase>(
        sim::DeviceDatabase::standard(config.fleet_seed,
                                      config.num_devices));

    // 3. The crowd-sourced measurement app, simulated (not yet run).
    ctx.campaign_ = std::make_unique<sim::CharacterizationCampaign>(
        *ctx.fleet_, ctx.model_, config.campaign);

    // 4. Representation layout.
    ctx.encoder_ = std::make_unique<NetworkEncoder>(ctx.suite_);
    return ctx;
}

ExperimentContext
ExperimentContext::build(const ExperimentConfig &config)
{
    ExperimentContext ctx = assemble(config);
    ctx.repo_ = ctx.campaign_->run(ctx.suite_);
    if (ctx.repo_.size() != ctx.suite_.size() * ctx.fleet_->size()) {
        fatal("ExperimentContext: campaign covered ", ctx.repo_.size(),
              " of ", ctx.suite_.size() * ctx.fleet_->size(),
              " (network, device) pairs; GPU-target campaigns that "
              "skip unreliable devices should be driven through "
              "CharacterizationCampaign directly (see "
              "bench_ext_gpu_target)");
    }
    ctx.lat_.assign(ctx.fleet_->size(),
                    std::vector<double>(ctx.names_.size()));
    for (std::size_t d = 0; d < ctx.fleet_->size(); ++d) {
        const std::int32_t id = ctx.fleet_->device(d).id;
        for (std::size_t n = 0; n < ctx.names_.size(); ++n)
            ctx.lat_[d][n] = ctx.repo_.latencyMs(id, ctx.names_[n]);
    }
    return ctx;
}

ExperimentContext
ExperimentContext::buildWithRepository(
    const ExperimentConfig &config,
    const sim::MeasurementRepository &repo, SparseBuildInfo *info)
{
    ExperimentContext ctx = assemble(config);
    ctx.repo_ = repo;

    std::vector<std::int32_t> ids;
    ids.reserve(ctx.fleet_->size());
    for (std::size_t d = 0; d < ctx.fleet_->size(); ++d)
        ids.push_back(ctx.fleet_->device(d).id);

    // matrix[n][d], NaN where the campaign never delivered the cell.
    auto matrix = repo.sparseLatencyMatrix(ids, ctx.names_);
    SparseBuildInfo local;
    local.missing_cells = repo.missingCells(ids, ctx.names_);
    local.imputation = imputeLatencyMatrix(matrix);
    if (info != nullptr)
        *info = local;

    ctx.lat_.assign(ctx.fleet_->size(),
                    std::vector<double>(ctx.names_.size()));
    for (std::size_t d = 0; d < ctx.fleet_->size(); ++d) {
        for (std::size_t n = 0; n < ctx.names_.size(); ++n)
            ctx.lat_[d][n] = matrix[n][d];
    }
    return ctx;
}

double
ExperimentContext::latencyMs(std::size_t device_idx,
                             std::size_t net_idx) const
{
    GCM_ASSERT(device_idx < fleet_->size(),
               "latencyMs: device index out of range");
    GCM_ASSERT(net_idx < names_.size(),
               "latencyMs: network index out of range");
    return lat_[device_idx][net_idx];
}

std::vector<std::vector<double>>
ExperimentContext::latencyMatrix(
    const std::vector<std::size_t> &device_indices) const
{
    std::vector<std::vector<double>> m(
        names_.size(), std::vector<double>(device_indices.size()));
    for (std::size_t n = 0; n < names_.size(); ++n) {
        for (std::size_t d = 0; d < device_indices.size(); ++d)
            m[n][d] = latencyMs(device_indices[d], n);
    }
    return m;
}

std::vector<std::vector<double>>
ExperimentContext::deviceVectors() const
{
    std::vector<std::vector<double>> m(
        fleet_->size(), std::vector<double>(names_.size()));
    for (std::size_t d = 0; d < fleet_->size(); ++d) {
        for (std::size_t n = 0; n < names_.size(); ++n)
            m[d][n] = latencyMs(d, n);
    }
    return m;
}

std::size_t
ExperimentContext::networkIndex(const std::string &name) const
{
    for (std::size_t i = 0; i < names_.size(); ++i) {
        if (names_[i] == name)
            return i;
    }
    fatal("unknown network: ", name);
}

} // namespace gcm::core

#include "core/cost_model.hh"

#include <algorithm>
#include <cmath>
#include <istream>
#include <ostream>
#include <set>

#include "util/error.hh"

namespace gcm::core
{

SignatureCostModel
SignatureCostModel::train(const std::vector<dnn::Graph> &suite,
                          const std::vector<std::vector<double>> &latencies)
{
    return train(suite, latencies, Config{});
}

SignatureCostModel
SignatureCostModel::train(const std::vector<dnn::Graph> &suite,
                          const std::vector<std::vector<double>> &latencies,
                          const Config &config)
{
    GCM_ASSERT(!suite.empty(), "SignatureCostModel: empty suite");
    if (latencies.size() != suite.size()) {
        fatal("SignatureCostModel: latency matrix has ",
              latencies.size(), " rows for ", suite.size(), " networks");
    }
    const std::size_t num_devices = latencies[0].size();
    for (const auto &row : latencies) {
        if (row.size() != num_devices)
            fatal("SignatureCostModel: ragged latency matrix");
    }
    if (num_devices == 0)
        fatal("SignatureCostModel: no training devices");
    for (std::size_t n = 0; n < latencies.size(); ++n) {
        for (std::size_t d = 0; d < num_devices; ++d) {
            const double v = latencies[n][d];
            if (!std::isfinite(v) || v <= 0.0) {
                fatal("SignatureCostModel: latency of network ", n,
                      " on device column ", d,
                      " is not a positive finite value (", v,
                      "); sparse matrices must be imputed first — "
                      "see core/imputation.hh");
            }
        }
    }

    SignatureCostModel model;
    if (!config.pinned_signature.empty()) {
        std::set<std::size_t> uniq;
        for (std::size_t s : config.pinned_signature) {
            if (s >= suite.size()) {
                fatal("SignatureCostModel: pinned signature index ", s,
                      " is outside the ", suite.size(),
                      "-network suite");
            }
            if (!uniq.insert(s).second)
                fatal("SignatureCostModel: pinned signature index ", s,
                      " is duplicated");
        }
        if (config.pinned_signature.size() >= suite.size()) {
            fatal("SignatureCostModel: pinned signature covers the "
                  "whole suite; nothing left to predict");
        }
        model.signature_ = config.pinned_signature;
    } else {
        model.signature_ =
            selectSignature(latencies, config.method, config.selection);
    }
    model.signatureNames_.reserve(model.signature_.size());
    for (std::size_t s : model.signature_)
        model.signatureNames_.push_back(suite[s].name());

    // Encoder layout with headroom for deeper unseen networks.
    const NetworkEncoder fitted(suite);
    model.encoder_ = std::make_unique<NetworkEncoder>(
        fitted.maxLayers() + config.layer_headroom);

    std::vector<bool> is_sig(suite.size(), false);
    for (std::size_t s : model.signature_)
        is_sig[s] = true;

    model.anchorNormalization_ = config.anchor_normalization;
    const std::size_t net_f = model.encoder_->numFeatures();
    const std::size_t width = net_f + model.signature_.size();
    ml::Dataset train_set(width);
    std::vector<float> row(width);
    for (std::size_t d = 0; d < num_devices; ++d) {
        std::vector<double> sig_lat;
        sig_lat.reserve(model.signature_.size());
        for (std::size_t s : model.signature_)
            sig_lat.push_back(latencies[s][d]);
        const double anchor = model.anchorOf(sig_lat);
        for (std::size_t k = 0; k < sig_lat.size(); ++k)
            row[net_f + k] = static_cast<float>(sig_lat[k] / anchor);
        for (std::size_t n = 0; n < suite.size(); ++n) {
            if (is_sig[n])
                continue;
            const auto enc = model.encoder_->encode(suite[n]);
            std::copy(enc.begin(), enc.end(), row.begin());
            train_set.addRow(row, latencies[n][d] / anchor);
        }
    }

    model.booster_ = ml::GradientBoostedTrees(config.gbt);
    model.booster_.train(train_set);
    return model;
}

double
SignatureCostModel::anchorOf(
    const std::vector<double> &signature_latencies_ms) const
{
    if (!anchorNormalization_)
        return 1.0;
    double log_sum = 0.0;
    for (double ms : signature_latencies_ms) {
        if (ms <= 0.0)
            fatal("signature latency must be positive, got ", ms);
        log_sum += std::log(ms);
    }
    return std::exp(log_sum
                    / static_cast<double>(signature_latencies_ms.size()));
}

double
SignatureCostModel::predictMs(
    const dnn::Graph &network,
    const std::vector<double> &signature_latencies_ms) const
{
    std::vector<float> row(featureWidth());
    const auto enc = encoder_->encode(network);
    std::copy(enc.begin(), enc.end(), row.begin());
    const double anchor = finishQueryRow(signature_latencies_ms,
                                         row.data());
    // Compiled and node-walker paths are bit-identical by the
    // ml/flat_ensemble.hh contract, so hot-path callers may compile()
    // without changing any prediction.
    const double raw = flat_ ? flat_->predictRow(row.data())
                             : booster_.predictRow(row.data());
    return raw * anchor;
}

void
SignatureCostModel::compile()
{
    if (!flat_) {
        flat_ = std::make_shared<const ml::FlatEnsemble>(
            booster_.compile());
    }
}

const ml::FlatEnsemble &
SignatureCostModel::flat() const
{
    GCM_ASSERT(flat_ != nullptr,
               "SignatureCostModel::flat: compile() not called");
    return *flat_;
}

std::size_t
SignatureCostModel::featureWidth() const
{
    return encoder_->numFeatures() + signature_.size();
}

std::size_t
SignatureCostModel::networkFeatureWidth() const
{
    return encoder_->numFeatures();
}

std::vector<float>
SignatureCostModel::encodeNetwork(const dnn::Graph &network) const
{
    return encoder_->encode(network);
}

double
SignatureCostModel::finishQueryRow(
    const std::vector<double> &signature_latencies_ms, float *row) const
{
    return signatureTail(signature_latencies_ms,
                         row + encoder_->numFeatures());
}

double
SignatureCostModel::signatureTail(
    const std::vector<double> &signature_latencies_ms, float *tail) const
{
    if (signature_latencies_ms.size() != signature_.size()) {
        fatal("predictMs: expected ", signature_.size(),
              " signature latencies, got ",
              signature_latencies_ms.size());
    }
    const double anchor = anchorOf(signature_latencies_ms);
    for (std::size_t k = 0; k < signature_.size(); ++k) {
        tail[k] =
            static_cast<float>(signature_latencies_ms[k] / anchor);
    }
    return anchor;
}

} // namespace gcm::core

namespace gcm::core
{

void
SignatureCostModel::serialize(std::ostream &os) const
{
    os << "gcm-cost-model v1\n";
    os << "anchor_normalization " << (anchorNormalization_ ? 1 : 0)
       << "\n";
    os << "max_layers " << encoder_->maxLayers() << "\n";
    os << "signature " << signature_.size() << "\n";
    for (std::size_t k = 0; k < signature_.size(); ++k) {
        const std::string &name = signatureNames_[k];
        if (name.find_first_of(" \t\n") != std::string::npos)
            fatal("serialize: signature name contains whitespace: ",
                  name);
        os << signature_[k] << ' ' << name << "\n";
    }
    booster_.serialize(os);
}

SignatureCostModel
SignatureCostModel::deserialize(std::istream &is)
{
    std::string magic, version, tag;
    if (!(is >> magic >> version) || magic != "gcm-cost-model"
        || version != "v1") {
        fatal("SignatureCostModel::deserialize: bad header");
    }
    SignatureCostModel model;
    int anchor_flag = 1;
    if (!(is >> tag >> anchor_flag) || tag != "anchor_normalization")
        fatal("SignatureCostModel::deserialize: bad anchor flag");
    model.anchorNormalization_ = anchor_flag != 0;
    std::size_t max_layers = 0, sig_count = 0;
    if (!(is >> tag >> max_layers) || tag != "max_layers"
        || max_layers == 0) {
        fatal("SignatureCostModel::deserialize: bad max_layers");
    }
    if (!(is >> tag >> sig_count) || tag != "signature"
        || sig_count == 0) {
        fatal("SignatureCostModel::deserialize: bad signature count");
    }
    model.encoder_ = std::make_unique<NetworkEncoder>(max_layers);
    model.signature_.resize(sig_count);
    model.signatureNames_.resize(sig_count);
    for (std::size_t k = 0; k < sig_count; ++k) {
        if (!(is >> model.signature_[k] >> model.signatureNames_[k]))
            fatal("SignatureCostModel::deserialize: bad signature row");
    }
    model.booster_ = ml::GradientBoostedTrees::deserialize(is);
    return model;
}

} // namespace gcm::core

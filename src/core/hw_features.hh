/**
 * @file
 * Static hardware representation (paper Section III-C, Fig. 8): a
 * one-hot CPU core-family id, the big-core frequency and the main
 * memory capacity. The paper — and this reproduction — show this
 * representation is insufficient to predict latency.
 */

#ifndef GCM_CORE_HW_FEATURES_HH
#define GCM_CORE_HW_FEATURES_HH

#include <string>
#include <vector>

#include "sim/device.hh"

namespace gcm::core
{

/** Encoder of device static specifications. */
class StaticHardwareEncoder
{
  public:
    StaticHardwareEncoder();

    /** One-hot core family + frequency (GHz) + RAM (GB). */
    std::size_t numFeatures() const;

    std::vector<float> encode(const sim::DeviceSpec &device,
                              const sim::DeviceDatabase &fleet) const;

    std::vector<std::string> featureNames() const;

  private:
    std::size_t numFamilies_;
};

} // namespace gcm::core

#endif // GCM_CORE_HW_FEATURES_HH

/**
 * @file
 * Quantile feature binning shared by the histogram-based tree learners
 * (GradientBoostedTrees and RandomForest).
 *
 * Each feature is discretized into at most max_bins buckets using
 * approximate quantile cut points; the binned matrix is stored
 * column-major (uint8) so node-histogram accumulation streams one
 * column at a time.
 */

#ifndef GCM_ML_BINNING_HH
#define GCM_ML_BINNING_HH

#include <cstdint>
#include <vector>

#include "ml/dataset.hh"

namespace gcm::ml
{

/** Per-feature bin cut points (bin b covers values <= cuts[b]). */
struct FeatureBins
{
    /**
     * Upper edges of all bins except the last; a value v maps to the
     * first bin whose cut is >= v, or to the last bin.
     */
    std::vector<float> cuts;

    /** Number of bins for this feature (cuts.size() + 1). */
    std::size_t numBins() const { return cuts.size() + 1; }

    /** True when the feature is constant over the fit data. */
    bool isConstant() const { return cuts.empty(); }

    /** Map a raw value to a bin index. */
    std::uint8_t binOf(float v) const;
};

/** A dataset discretized against a set of FeatureBins. */
class BinnedMatrix
{
  public:
    /**
     * Fit cut points on (a deterministic subsample of) the dataset and
     * bin every row.
     *
     * @param data Source dataset.
     * @param max_bins Maximum bins per feature (2..=256).
     * @param quantile_sample_cap Rows used for quantile estimation;
     *        evenly strided subsample when the dataset is larger.
     */
    BinnedMatrix(const Dataset &data, std::size_t max_bins,
                 std::size_t quantile_sample_cap = 4096);

    std::size_t numRows() const { return numRows_; }
    std::size_t numFeatures() const { return bins_.size(); }

    const FeatureBins &featureBins(std::size_t f) const { return bins_[f]; }

    /** Column-major access: bin of feature f in row i. */
    std::uint8_t
    binAt(std::size_t f, std::size_t i) const
    {
        return codes_[f * numRows_ + i];
    }

    /** Raw pointer to a feature column (numRows() codes). */
    const std::uint8_t *column(std::size_t f) const
    {
        return codes_.data() + f * numRows_;
    }

    /** Indices of features that are not constant. */
    const std::vector<std::size_t> &activeFeatures() const
    {
        return activeFeatures_;
    }

  private:
    std::size_t numRows_;
    std::vector<FeatureBins> bins_;
    std::vector<std::uint8_t> codes_;
    std::vector<std::size_t> activeFeatures_;
};

} // namespace gcm::ml

#endif // GCM_ML_BINNING_HH

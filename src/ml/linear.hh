/**
 * @file
 * Ridge linear regression solved by conjugate gradients on the normal
 * equations. Serves as the simplest baseline cost model.
 */

#ifndef GCM_ML_LINEAR_HH
#define GCM_ML_LINEAR_HH

#include <cstddef>
#include <vector>

#include "ml/dataset.hh"

namespace gcm::ml
{

/** Ridge hyperparameters. */
struct RidgeParams
{
    double alpha = 1.0;
    std::size_t max_cg_iterations = 200;
    double cg_tolerance = 1e-8;
};

/**
 * Standardized ridge regression: features are z-scored, the target is
 * centered, and (X^T X + alpha I) w = X^T y is solved with CG without
 * ever materializing X^T X.
 */
class RidgeRegression
{
  public:
    explicit RidgeRegression(RidgeParams params = {});

    void train(const Dataset &data);

    double predictRow(const float *x) const;
    std::vector<double> predict(const Dataset &data) const;

    const std::vector<double> &weights() const { return weights_; }

  private:
    RidgeParams params_;
    std::size_t numFeatures_ = 0;
    std::vector<double> weights_;
    std::vector<double> means_;
    std::vector<double> invStd_;
    double intercept_ = 0.0;
    bool trained_ = false;
};

} // namespace gcm::ml

#endif // GCM_ML_LINEAR_HH

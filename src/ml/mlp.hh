/**
 * @file
 * Small fully-connected network trained with Adam — stand-in for the
 * paper's neural baseline (they tried an LSTM encoder followed by
 * fully-connected layers and found XGBoost superior).
 */

#ifndef GCM_ML_MLP_HH
#define GCM_ML_MLP_HH

#include <cstdint>
#include <vector>

#include "ml/dataset.hh"
#include "util/rng.hh"

namespace gcm::ml
{

/** MLP hyperparameters. */
struct MlpParams
{
    std::vector<std::size_t> hidden = {64, 32};
    std::size_t epochs = 30;
    std::size_t batch_size = 32;
    double learning_rate = 1e-3;
    double weight_decay = 1e-5;
    std::uint64_t seed = 17;
};

/** ReLU MLP regressor with standardized inputs and target. */
class Mlp
{
  public:
    explicit Mlp(MlpParams params = {});

    void train(const Dataset &data);

    double predictRow(const float *x) const;
    std::vector<double> predict(const Dataset &data) const;

    /** Training RMSE (target units) at the end of each epoch. */
    const std::vector<double> &lossHistory() const { return lossHistory_; }

  private:
    struct Layer
    {
        std::size_t in = 0;
        std::size_t out = 0;
        std::vector<double> w; // out x in
        std::vector<double> b; // out
        // Adam moments.
        std::vector<double> mw, vw, mb, vb;
    };

    void forward(const std::vector<double> &x,
                 std::vector<std::vector<double>> &acts) const;

    MlpParams params_;
    std::vector<Layer> layers_;
    std::size_t numFeatures_ = 0;
    std::vector<double> featMean_, featInvStd_;
    double targetMean_ = 0.0, targetStd_ = 1.0;
    std::vector<double> lossHistory_;
    bool trained_ = false;
};

} // namespace gcm::ml

#endif // GCM_ML_MLP_HH

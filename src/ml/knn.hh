/**
 * @file
 * k-nearest-neighbours regressor (baseline from Section III-C).
 * Features are standardized with the training moments; prediction is
 * the mean label of the k nearest rows under Euclidean distance.
 */

#ifndef GCM_ML_KNN_HH
#define GCM_ML_KNN_HH

#include <cstddef>
#include <vector>

#include "ml/dataset.hh"

namespace gcm::ml
{

/** kNN hyperparameters. */
struct KnnParams
{
    std::size_t k = 5;
};

/** Brute-force kNN regressor. */
class KNearestNeighbors
{
  public:
    explicit KNearestNeighbors(KnnParams params = {});

    void train(const Dataset &data);

    double predictRow(const float *x) const;
    std::vector<double> predict(const Dataset &data) const;

    const KnnParams &params() const { return params_; }

  private:
    /** Standardize a raw row into scratch (z-scores). */
    void standardize(const float *x, std::vector<float> &out) const;

    KnnParams params_;
    std::size_t numFeatures_ = 0;
    std::vector<float> trainRows_; // standardized, row-major
    std::vector<double> trainLabels_;
    std::vector<float> means_;
    std::vector<float> invStd_;
};

} // namespace gcm::ml

#endif // GCM_ML_KNN_HH

/**
 * @file
 * FlatEnsemble — the compiled inference representation of a trained
 * tree ensemble (GradientBoostedTrees or RandomForest).
 *
 * Training-time structures optimize for growth: every RegressionTree
 * owns a vector of heap-allocated TreeNode objects and prediction
 * pointer-chases them row by row. Serving wants the opposite trade:
 * compile() flattens all trees of an ensemble into contiguous
 * structure-of-arrays node vectors (feature / threshold / left-child /
 * leaf-value), packed back-to-back with per-tree root offsets, laid
 * out in breadth-first order so the two children of any split are
 * adjacent. Traversal is then branch-reduced —
 *
 *     next = left[idx] + !(x[feature[idx]] <= threshold[idx])
 *
 * — one predictable loop per level instead of a data-dependent
 * pointer chase, and predictBatch() walks a whole row block through
 * one tree at a time so the tree's nodes stay cache-resident.
 *
 * Bit-identity contract (the serving extension of the PR-2 rule)
 * --------------------------------------------------------------
 * FlatEnsemble output is bit-identical to the node-walker paths it
 * replaces, at any GCM_THREADS. The accumulation order is pinned
 * HERE, in one place; every other predict path is defined by
 * reference to it:
 *
 *  1. Leaf values are float (TreeNode::value); each traversal yields
 *     exactly the leaf the node walker reaches. `!(x <= t)` is used
 *     rather than `x > t` so a NaN feature falls right, exactly like
 *     the walker's `x <= t ? left : right`.
 *  2. Per row, leaf values are accumulated into a double, in tree
 *     order t = 0, 1, ..., starting from the base score
 *     (GradientBoostedTrees::baseScore(), 0.0 for RandomForest):
 *         acc = base; for t: acc += (double)leaf_t(x);
 *     This is the exact operation sequence of
 *     GradientBoostedTrees::predictRow / RandomForest::predictRow,
 *     whose double-accumulation-over-float-leaves behaviour is
 *     thereby contractual, not incidental.
 *  3. Combine::Mean performs one final division by the tree count
 *     (as double), matching RandomForest::predictRow.
 *  4. predictBatch blocks rows and iterates trees outermost within a
 *     block, but each row keeps its own accumulator, so the per-row
 *     operation sequence of (2) is unchanged. Blocks are fixed-size
 *     and index-owned under parallelFor, so the split is independent
 *     of the thread count (see util/parallel.hh).
 */

#ifndef GCM_ML_FLAT_ENSEMBLE_HH
#define GCM_ML_FLAT_ENSEMBLE_HH

#include <cstdint>
#include <vector>

#include "ml/dataset.hh"
#include "ml/tree.hh"

namespace gcm::ml
{

/** Compiled SoA ensemble with branch-reduced batched traversal. */
class FlatEnsemble
{
  public:
    /** How per-tree leaf sums combine into the ensemble output. */
    enum class Combine
    {
        Sum,  // base score + sum of leaves (gradient boosting)
        Mean, // sum of leaves / tree count (bagging)
    };

    FlatEnsemble() = default;

    /**
     * Flatten a trained ensemble. Trees are packed in input order;
     * each tree is renumbered breadth-first so sibling children are
     * adjacent (right child = left child + 1).
     *
     * @param trees Trained trees (Combine::Mean requires >= 1).
     * @param base_score Accumulator start value (0.0 for Mean).
     * @param combine Reduction mode (see Combine).
     */
    static FlatEnsemble compile(const std::vector<RegressionTree> &trees,
                                double base_score, Combine combine);

    bool empty() const { return roots_.empty(); }
    std::size_t numTrees() const { return roots_.size(); }
    std::size_t numNodes() const { return feature_.size(); }
    double baseScore() const { return baseScore_; }
    Combine combine() const { return combine_; }

    /**
     * Predict one row of raw feature values — bit-identical to the
     * source ensemble's predictRow (see the file contract).
     */
    double predictRow(const float *x) const;

    /**
     * Predict `n_rows` rows of a dense row-major feature matrix
     * (`stride` floats apart) into `out`, row-blocked and parallel
     * over blocks. out[i] is bit-identical to predictRow(row i) at
     * any thread count.
     */
    void predictBatch(const float *rows, std::size_t n_rows,
                      std::size_t stride, double *out) const;

    /**
     * A logical feature row split in two: features [0, head_width)
     * read from `head`, the rest from `tail`. Lets callers whose rows
     * share a wide common prefix (serving query rows: one network
     * encoding reused across many devices) predict without
     * materializing per-row copies of the prefix.
     */
    struct SegmentedRow
    {
        const float *head = nullptr;
        const float *tail = nullptr;
    };

    /**
     * predictBatch over segmented rows. out[i] is bit-identical to
     * predictRow over the concatenated row (the same float values
     * are loaded, only from two buffers), at any thread count.
     */
    void predictBatchSegmented(const SegmentedRow *rows,
                               std::size_t n_rows,
                               std::size_t head_width,
                               double *out) const;

    /** predictBatch over a Dataset's feature matrix. */
    std::vector<double> predict(const Dataset &data) const;

  private:
    /** Most rows walked per parallel block (one task per block). */
    static constexpr std::size_t kRowBlock = 64;

    /**
     * Rows per block, shrunk for wide rows so one block's row data
     * stays cache-resident while every tree runs through it. A pure
     * function of the stride, so the block split (and therefore the
     * parallel chunking) is independent of the thread count.
     */
    static std::size_t blockRows(std::size_t stride);

    // SoA node storage, all indexed by the flat node id. Internal
    // nodes: feature_ >= 0, left_ = flat id of the left child (right
    // is left_ + 1), threshold_ = raw split value. Leaves:
    // feature_ = -1, value_ = leaf output, left_ unused (0).
    std::vector<std::int32_t> feature_;
    std::vector<float> threshold_;
    std::vector<float> value_;
    std::vector<std::uint32_t> left_;
    /** Flat id of each tree's root, in tree order. */
    std::vector<std::uint32_t> roots_;
    double baseScore_ = 0.0;
    Combine combine_ = Combine::Sum;
};

} // namespace gcm::ml

#endif // GCM_ML_FLAT_ENSEMBLE_HH

#include "ml/random_forest.hh"

#include <numeric>

#include "util/error.hh"
#include "util/parallel.hh"

namespace gcm::ml
{

RandomForest::RandomForest(RandomForestParams params) : params_(params)
{
    GCM_ASSERT(params_.n_trees > 0, "RandomForest: n_trees must be > 0");
    GCM_ASSERT(params_.feature_fraction > 0.0
                   && params_.feature_fraction <= 1.0,
               "RandomForest: feature_fraction out of (0, 1]");
}

void
RandomForest::train(const Dataset &data)
{
    GCM_ASSERT(data.numRows() > 0, "RandomForest: empty training set");
    trees_.clear();
    const std::size_t n = data.numRows();

    BinnedMatrix binned(data, params_.max_bins);

    // Variance-reduction mode: with prediction fixed at 0, the squared
    // error gradient is g = -y and the leaf weight -G/N is the mean.
    std::vector<float> grad(n);
    for (std::size_t i = 0; i < n; ++i)
        grad[i] = static_cast<float>(-data.label(i));

    TreeTrainConfig cfg;
    cfg.max_depth = params_.max_depth;
    cfg.lambda = 0.0;
    cfg.gamma = 0.0;
    cfg.min_child_weight = params_.min_child_weight;
    cfg.feature_fraction = params_.feature_fraction;

    // Each tree is a task with its own stream forked from the root
    // seed — never a draw from a shared Rng — so tree t sees the same
    // bootstrap and feature draws at any thread count, and the same
    // draws the serial loop produced.
    const Rng root(params_.seed);
    trees_ = parallelMap(params_.n_trees, 1, [&](std::size_t t) {
        Rng tree_rng = root.fork(t);
        std::vector<std::uint32_t> rows(n);
        if (params_.bootstrap) {
            for (auto &r : rows) {
                r = static_cast<std::uint32_t>(tree_rng.uniformInt(
                    0, static_cast<std::int64_t>(n) - 1));
            }
        } else {
            std::iota(rows.begin(), rows.end(), std::uint32_t{0});
        }
        return trainTree(binned, rows, grad, cfg, &tree_rng);
    });
}

double
RandomForest::predictRow(const float *x) const
{
    GCM_ASSERT(!trees_.empty(), "RandomForest: predict before train");
    double sum = 0.0;
    for (const auto &tree : trees_)
        sum += tree.predictRow(x);
    return sum / static_cast<double>(trees_.size());
}

std::vector<double>
RandomForest::predict(const Dataset &data) const
{
    std::vector<double> out(data.numRows());
    parallelFor(0, data.numRows(), 64, [&](std::size_t i) {
        out[i] = predictRow(data.row(i));
    });
    return out;
}

} // namespace gcm::ml

#include "ml/random_forest.hh"

#include <istream>
#include <limits>
#include <numeric>
#include <ostream>
#include <string>

#include "util/error.hh"
#include "util/parallel.hh"

namespace gcm::ml
{

RandomForest::RandomForest(RandomForestParams params) : params_(params)
{
    GCM_ASSERT(params_.n_trees > 0, "RandomForest: n_trees must be > 0");
    GCM_ASSERT(params_.feature_fraction > 0.0
                   && params_.feature_fraction <= 1.0,
               "RandomForest: feature_fraction out of (0, 1]");
}

void
RandomForest::train(const Dataset &data)
{
    GCM_ASSERT(data.numRows() > 0, "RandomForest: empty training set");
    trees_.clear();
    const std::size_t n = data.numRows();

    BinnedMatrix binned(data, params_.max_bins);

    // Variance-reduction mode: with prediction fixed at 0, the squared
    // error gradient is g = -y and the leaf weight -G/N is the mean.
    std::vector<float> grad(n);
    for (std::size_t i = 0; i < n; ++i)
        grad[i] = static_cast<float>(-data.label(i));

    TreeTrainConfig cfg;
    cfg.max_depth = params_.max_depth;
    cfg.lambda = 0.0;
    cfg.gamma = 0.0;
    cfg.min_child_weight = params_.min_child_weight;
    cfg.feature_fraction = params_.feature_fraction;

    // Each tree is a task with its own stream forked from the root
    // seed — never a draw from a shared Rng — so tree t sees the same
    // bootstrap and feature draws at any thread count, and the same
    // draws the serial loop produced.
    const Rng root(params_.seed);
    trees_ = parallelMap(params_.n_trees, 1, [&](std::size_t t) {
        Rng tree_rng = root.fork(t);
        std::vector<std::uint32_t> rows(n);
        if (params_.bootstrap) {
            for (auto &r : rows) {
                r = static_cast<std::uint32_t>(tree_rng.uniformInt(
                    0, static_cast<std::int64_t>(n) - 1));
            }
        } else {
            std::iota(rows.begin(), rows.end(), std::uint32_t{0});
        }
        return trainTree(binned, rows, grad, cfg, &tree_rng);
    });
}

double
RandomForest::predictRow(const float *x) const
{
    GCM_ASSERT(!trees_.empty(), "RandomForest: predict before train");
    double sum = 0.0;
    for (const auto &tree : trees_)
        sum += tree.predictRow(x);
    return sum / static_cast<double>(trees_.size());
}

std::vector<double>
RandomForest::predict(const Dataset &data) const
{
    // Compiled batch path; bit-identical to the per-row node walker
    // (ml/flat_ensemble.hh contract).
    return compile().predict(data);
}

FlatEnsemble
RandomForest::compile() const
{
    GCM_ASSERT(!trees_.empty(), "RandomForest: compile before train");
    return FlatEnsemble::compile(trees_, 0.0,
                                 FlatEnsemble::Combine::Mean);
}

void
RandomForest::serialize(std::ostream &os) const
{
    GCM_ASSERT(!trees_.empty(), "RandomForest::serialize: not trained");
    const auto prec =
        os.precision(std::numeric_limits<double>::max_digits10);
    // The forest does not store the training width, so derive the
    // feature-count bound the loader validates splits against.
    std::int32_t max_feature = -1;
    for (const auto &tree : trees_) {
        for (const auto &node : tree.nodes()) {
            if (!node.isLeaf() && node.feature > max_feature)
                max_feature = node.feature;
        }
    }
    os << "gcm-rf v1\n";
    os << "params " << params_.n_trees << ' ' << params_.max_depth << ' '
       << params_.min_child_weight << ' ' << params_.feature_fraction
       << ' ' << (params_.bootstrap ? 1 : 0) << ' ' << params_.max_bins
       << ' ' << params_.seed << "\n";
    os << "num_features " << (max_feature + 1) << "\n";
    os << "trees " << trees_.size() << "\n";
    for (const auto &tree : trees_)
        tree.serialize(os);
    os.precision(prec);
}

RandomForest
RandomForest::deserialize(std::istream &is)
{
    std::string magic, version, tag;
    if (!(is >> magic >> version) || magic != "gcm-rf"
        || version != "v1") {
        fatal("RandomForest::deserialize: bad header (expected "
              "'gcm-rf v1')");
    }
    RandomForestParams p;
    int bootstrap = 1;
    if (!(is >> tag >> p.n_trees >> p.max_depth >> p.min_child_weight
          >> p.feature_fraction >> bootstrap >> p.max_bins >> p.seed)
        || tag != "params") {
        fatal("RandomForest::deserialize: malformed params line");
    }
    p.bootstrap = bootstrap != 0;
    RandomForest model(p);
    std::size_t features = 0, trees = 0;
    if (!(is >> tag >> features) || tag != "num_features")
        fatal("RandomForest::deserialize: malformed num_features line");
    if (!(is >> tag >> trees) || tag != "trees" || trees == 0)
        fatal("RandomForest::deserialize: malformed trees line");
    model.trees_.reserve(trees);
    for (std::size_t t = 0; t < trees; ++t) {
        model.trees_.push_back(RegressionTree::deserialize(is));
        for (const auto &node : model.trees_.back().nodes()) {
            if (!node.isLeaf()
                && static_cast<std::size_t>(node.feature) >= features) {
                fatal("RandomForest::deserialize: split references "
                      "feature ", node.feature, " but the model has ",
                      features);
            }
        }
    }
    return model;
}

} // namespace gcm::ml

#include "ml/knn.hh"

#include <algorithm>
#include <cmath>

#include "util/error.hh"

namespace gcm::ml
{

KNearestNeighbors::KNearestNeighbors(KnnParams params) : params_(params)
{
    GCM_ASSERT(params_.k > 0, "kNN: k must be > 0");
}

void
KNearestNeighbors::train(const Dataset &data)
{
    GCM_ASSERT(data.numRows() > 0, "kNN: empty training set");
    numFeatures_ = data.numFeatures();
    const std::size_t n = data.numRows();

    means_.assign(numFeatures_, 0.0f);
    invStd_.assign(numFeatures_, 1.0f);
    std::vector<double> sum(numFeatures_, 0.0), sum2(numFeatures_, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
        const float *r = data.row(i);
        for (std::size_t f = 0; f < numFeatures_; ++f) {
            sum[f] += r[f];
            sum2[f] += static_cast<double>(r[f]) * r[f];
        }
    }
    for (std::size_t f = 0; f < numFeatures_; ++f) {
        const double m = sum[f] / static_cast<double>(n);
        const double var =
            std::max(sum2[f] / static_cast<double>(n) - m * m, 0.0);
        means_[f] = static_cast<float>(m);
        invStd_[f] = var > 1e-12
            ? static_cast<float>(1.0 / std::sqrt(var))
            : 0.0f; // constant features contribute nothing
    }

    trainRows_.resize(n * numFeatures_);
    trainLabels_ = data.labels();
    std::vector<float> z(numFeatures_);
    for (std::size_t i = 0; i < n; ++i) {
        standardize(data.row(i), z);
        std::copy(z.begin(), z.end(),
                  trainRows_.begin()
                      + static_cast<std::ptrdiff_t>(i * numFeatures_));
    }
}

void
KNearestNeighbors::standardize(const float *x, std::vector<float> &out) const
{
    out.resize(numFeatures_);
    for (std::size_t f = 0; f < numFeatures_; ++f)
        out[f] = (x[f] - means_[f]) * invStd_[f];
}

double
KNearestNeighbors::predictRow(const float *x) const
{
    GCM_ASSERT(!trainLabels_.empty(), "kNN: predict before train");
    std::vector<float> z;
    standardize(x, z);

    const std::size_t n = trainLabels_.size();
    const std::size_t k = std::min(params_.k, n);
    // Max-heap of the current k best (distance, label) pairs.
    std::vector<std::pair<double, double>> heap;
    heap.reserve(k + 1);
    for (std::size_t i = 0; i < n; ++i) {
        const float *r = trainRows_.data() + i * numFeatures_;
        double d = 0.0;
        for (std::size_t f = 0; f < numFeatures_; ++f) {
            const double diff = z[f] - r[f];
            d += diff * diff;
        }
        if (heap.size() < k) {
            heap.emplace_back(d, trainLabels_[i]);
            std::push_heap(heap.begin(), heap.end());
        } else if (d < heap.front().first) {
            std::pop_heap(heap.begin(), heap.end());
            heap.back() = {d, trainLabels_[i]};
            std::push_heap(heap.begin(), heap.end());
        }
    }
    double sum = 0.0;
    for (const auto &[d, y] : heap)
        sum += y;
    return sum / static_cast<double>(heap.size());
}

std::vector<double>
KNearestNeighbors::predict(const Dataset &data) const
{
    std::vector<double> out(data.numRows());
    for (std::size_t i = 0; i < data.numRows(); ++i)
        out[i] = predictRow(data.row(i));
    return out;
}

} // namespace gcm::ml

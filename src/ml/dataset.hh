/**
 * @file
 * Dense row-major regression dataset shared by all learners.
 */

#ifndef GCM_ML_DATASET_HH
#define GCM_ML_DATASET_HH

#include <cstddef>
#include <string>
#include <vector>

namespace gcm::ml
{

/**
 * A fixed-width feature matrix with one scalar regression target per
 * row. Feature values are stored as float: the representations used in
 * this project (one-hot codes, layer parameters, latencies in ms) all
 * fit comfortably.
 */
class Dataset
{
  public:
    /** Create an empty dataset with a fixed feature width. */
    explicit Dataset(std::size_t num_features);

    /** Append a row. @pre x.size() == numFeatures() */
    void addRow(const std::vector<float> &x, double y);

    std::size_t numRows() const { return labels_.size(); }
    std::size_t numFeatures() const { return numFeatures_; }

    /** Pointer to the i-th row (numFeatures() floats). */
    const float *row(std::size_t i) const;

    double label(std::size_t i) const;
    const std::vector<double> &labels() const { return labels_; }

    /** Single feature value. */
    float at(std::size_t row_idx, std::size_t feature) const;

    /** Extract a row-subset dataset (feature names preserved). */
    Dataset subset(const std::vector<std::size_t> &row_indices) const;

    /** Optional feature names (for importances / debugging). */
    void setFeatureNames(std::vector<std::string> names);
    const std::vector<std::string> &featureNames() const
    {
        return featureNames_;
    }

  private:
    std::size_t numFeatures_;
    std::vector<float> values_;
    std::vector<double> labels_;
    std::vector<std::string> featureNames_;
};

} // namespace gcm::ml

#endif // GCM_ML_DATASET_HH

#include "ml/gbt.hh"

#include <cmath>
#include <istream>
#include <limits>
#include <numeric>
#include <ostream>

#include "ml/metrics.hh"
#include "obs/obs.hh"
#include "util/error.hh"
#include "util/parallel.hh"

namespace gcm::ml
{

GradientBoostedTrees::GradientBoostedTrees(GbtParams params)
    : params_(params)
{
    GCM_ASSERT(params_.n_estimators > 0, "GBT: n_estimators must be > 0");
    GCM_ASSERT(params_.learning_rate > 0.0, "GBT: learning_rate <= 0");
    GCM_ASSERT(params_.subsample > 0.0 && params_.subsample <= 1.0,
               "GBT: subsample out of (0, 1]");
}

void
GradientBoostedTrees::train(const Dataset &data)
{
    trainImpl(data, nullptr);
}

void
GradientBoostedTrees::train(const Dataset &data, const Dataset &eval)
{
    trainImpl(data, &eval);
}

void
GradientBoostedTrees::trainImpl(const Dataset &data, const Dataset *eval)
{
    GCM_ASSERT(data.numRows() > 0, "GBT: empty training set");
    const obs::TraceSpan train_span("gbt.train");
    trees_.clear();
    evalHistory_.clear();
    featureGain_.assign(data.numFeatures(), 0.0);

    const std::size_t n = data.numRows();
    baseScore_ =
        std::accumulate(data.labels().begin(), data.labels().end(), 0.0)
        / static_cast<double>(n);
    trained_ = true;

    const BinnedMatrix binned = [&] {
        const obs::TraceSpan bin_span("gbt.bin");
        return BinnedMatrix(data, params_.max_bins);
    }();

    std::vector<double> preds(n, baseScore_);
    std::vector<float> grad(n);
    std::vector<std::uint32_t> all_rows(n);
    std::iota(all_rows.begin(), all_rows.end(), std::uint32_t{0});

    TreeTrainConfig tree_cfg;
    tree_cfg.max_depth = params_.max_depth;
    tree_cfg.lambda = params_.lambda;
    tree_cfg.gamma = params_.gamma;
    tree_cfg.min_child_weight = params_.min_child_weight;

    Rng rng(params_.seed);
    std::vector<double> eval_preds;
    if (eval)
        eval_preds.assign(eval->numRows(), baseScore_);

    std::vector<double> tree_gain;
    // Boosting is sequential across rounds (each tree fits the
    // residual of the previous ones); the parallelism lives inside a
    // round — histogram/split search in trainTree and the elementwise
    // gradient/prediction sweeps below, all index-owned and therefore
    // bit-identical at any thread count.
    for (std::size_t t = 0; t < params_.n_estimators; ++t) {
        const obs::TraceSpan round_span("gbt.round");
        obs::counterAdd("gbt.rounds");
        {
            // Squared-error objective: g = pred - y (unit hessian).
            const obs::TraceSpan grad_span("gbt.gradient");
            parallelFor(0, n, 4096, [&](std::size_t i) {
                grad[i] = static_cast<float>(preds[i] - data.label(i));
            });
        }

        // Round t draws from its own named stream, never from a
        // shared sequential Rng, so the subsample (and any feature
        // sampling inside trainTree) depends only on (seed, t).
        Rng tree_rng = rng.fork(t);
        std::vector<std::uint32_t> rows;
        if (params_.subsample < 1.0) {
            rows.reserve(n);
            for (std::uint32_t i = 0; i < n; ++i) {
                if (tree_rng.bernoulli(params_.subsample))
                    rows.push_back(i);
            }
            if (rows.empty())
                rows = all_rows;
        } else {
            rows = all_rows;
        }

        tree_gain.assign(data.numFeatures(), 0.0);
        RegressionTree tree = [&] {
            const obs::TraceSpan tree_span("gbt.tree");
            return trainTree(binned, rows, grad, tree_cfg, &tree_rng,
                             &tree_gain);
        }();
        tree.scaleLeaves(params_.learning_rate);
        for (std::size_t f = 0; f < tree_gain.size(); ++f)
            featureGain_[f] += tree_gain[f];

        {
            const obs::TraceSpan update_span("gbt.update");
            parallelFor(0, n, 1024, [&](std::size_t i) {
                preds[i] += tree.predictBinnedRow(binned, i);
            });
        }

        if (eval) {
            const obs::TraceSpan eval_span("gbt.eval");
            parallelFor(0, eval->numRows(), 1024, [&](std::size_t i) {
                eval_preds[i] += tree.predictRow(eval->row(i));
            });
            evalHistory_.push_back(rmse(eval->labels(), eval_preds));
        }

        trees_.push_back(std::move(tree));
    }
}

double
GradientBoostedTrees::predictRow(const float *x) const
{
    GCM_ASSERT(trained_, "GBT: predict before train");
    double v = baseScore_;
    for (const auto &tree : trees_)
        v += tree.predictRow(x);
    return v;
}

std::vector<double>
GradientBoostedTrees::predict(const Dataset &data) const
{
    // Batch predict through the compiled form: bit-identical to the
    // per-row node walker (ml/flat_ensemble.hh contract), one blocked
    // sweep instead of a pointer chase per row.
    const obs::TraceSpan span("gbt.predict");
    return compile().predict(data);
}

FlatEnsemble
GradientBoostedTrees::compile() const
{
    GCM_ASSERT(trained_, "GBT: compile before train");
    return FlatEnsemble::compile(trees_, baseScore_,
                                 FlatEnsemble::Combine::Sum);
}

void
GradientBoostedTrees::serialize(std::ostream &os) const
{
    GCM_ASSERT(trained_, "GBT::serialize: model not trained");
    const auto prec =
        os.precision(std::numeric_limits<double>::max_digits10);
    os << "gcm-gbt v1\n";
    os << "params " << params_.n_estimators << ' ' << params_.max_depth
       << ' ' << params_.learning_rate << ' ' << params_.lambda << ' '
       << params_.gamma << ' ' << params_.min_child_weight << ' '
       << params_.subsample << ' ' << params_.max_bins << ' '
       << params_.seed << "\n";
    os << "base_score " << baseScore_ << "\n";
    os << "num_features " << featureGain_.size() << "\n";
    os << "trees " << trees_.size() << "\n";
    for (const auto &tree : trees_)
        tree.serialize(os);
    os.precision(prec);
}

GradientBoostedTrees
GradientBoostedTrees::deserialize(std::istream &is)
{
    std::string magic, version, tag;
    if (!(is >> magic >> version) || magic != "gcm-gbt"
        || version != "v1") {
        fatal("GBT::deserialize: bad header (expected 'gcm-gbt v1')");
    }
    GbtParams p;
    if (!(is >> tag >> p.n_estimators >> p.max_depth >> p.learning_rate
          >> p.lambda >> p.gamma >> p.min_child_weight >> p.subsample
          >> p.max_bins >> p.seed)
        || tag != "params") {
        fatal("GBT::deserialize: malformed params line");
    }
    GradientBoostedTrees model(p);
    std::size_t features = 0, trees = 0;
    if (!(is >> tag >> model.baseScore_) || tag != "base_score")
        fatal("GBT::deserialize: malformed base_score line");
    if (!(is >> tag >> features) || tag != "num_features")
        fatal("GBT::deserialize: malformed num_features line");
    if (!(is >> tag >> trees) || tag != "trees")
        fatal("GBT::deserialize: malformed trees line");
    model.featureGain_.assign(features, 0.0);
    model.trees_.reserve(trees);
    for (std::size_t t = 0; t < trees; ++t) {
        model.trees_.push_back(RegressionTree::deserialize(is));
        for (const auto &node : model.trees_.back().nodes()) {
            if (!node.isLeaf()
                && static_cast<std::size_t>(node.feature) >= features) {
                fatal("GBT::deserialize: split references feature ",
                      node.feature, " but the model has ", features);
            }
        }
    }
    model.trained_ = true;
    return model;
}

} // namespace gcm::ml

#include "ml/binning.hh"

#include <algorithm>

#include "util/error.hh"

namespace gcm::ml
{

std::uint8_t
FeatureBins::binOf(float v) const
{
    const auto it = std::lower_bound(cuts.begin(), cuts.end(), v);
    return static_cast<std::uint8_t>(it - cuts.begin());
}

BinnedMatrix::BinnedMatrix(const Dataset &data, std::size_t max_bins,
                           std::size_t quantile_sample_cap)
    : numRows_(data.numRows())
{
    GCM_ASSERT(max_bins >= 2 && max_bins <= 256,
               "BinnedMatrix: max_bins out of [2, 256]");
    GCM_ASSERT(numRows_ > 0, "BinnedMatrix: empty dataset");
    const std::size_t f_count = data.numFeatures();
    bins_.resize(f_count);
    codes_.resize(f_count * numRows_);

    // Deterministic strided subsample for quantile estimation.
    const std::size_t sample_n = std::min(numRows_, quantile_sample_cap);
    const double stride =
        static_cast<double>(numRows_) / static_cast<double>(sample_n);

    std::vector<float> col;
    col.reserve(sample_n);
    for (std::size_t f = 0; f < f_count; ++f) {
        col.clear();
        for (std::size_t s = 0; s < sample_n; ++s) {
            const auto i =
                static_cast<std::size_t>(static_cast<double>(s) * stride);
            col.push_back(data.at(i, f));
        }
        std::sort(col.begin(), col.end());

        FeatureBins &fb = bins_[f];
        if (col.front() != col.back()) {
            // Candidate cuts at interior quantiles, deduplicated.
            for (std::size_t b = 1; b < max_bins; ++b) {
                const auto pos = static_cast<std::size_t>(
                    static_cast<double>(b) * static_cast<double>(sample_n)
                    / static_cast<double>(max_bins));
                const float cut = col[std::min(pos, sample_n - 1)];
                if (fb.cuts.empty() || cut > fb.cuts.back())
                    fb.cuts.push_back(cut);
            }
            // Make sure the maximum sampled value has its own bin edge
            // below it, i.e. drop a trailing cut equal to the max
            // (values above the last cut land in the final bin anyway).
            while (!fb.cuts.empty() && fb.cuts.back() >= col.back())
                fb.cuts.pop_back();
        }

        std::uint8_t *codes = codes_.data() + f * numRows_;
        if (fb.isConstant()) {
            std::fill(codes, codes + numRows_, std::uint8_t{0});
        } else {
            for (std::size_t i = 0; i < numRows_; ++i)
                codes[i] = fb.binOf(data.at(i, f));
            activeFeatures_.push_back(f);
        }
    }
}

} // namespace gcm::ml

#include "ml/metrics.hh"

#include <cmath>

#include "util/error.hh"

namespace gcm::ml
{

double
r2Score(const std::vector<double> &y_true,
        const std::vector<double> &y_pred)
{
    GCM_ASSERT(y_true.size() == y_pred.size(), "r2Score: size mismatch");
    GCM_ASSERT(!y_true.empty(), "r2Score: empty input");
    double mean = 0.0;
    for (double y : y_true)
        mean += y;
    mean /= static_cast<double>(y_true.size());
    double ss_res = 0.0, ss_tot = 0.0;
    for (std::size_t i = 0; i < y_true.size(); ++i) {
        ss_res += (y_true[i] - y_pred[i]) * (y_true[i] - y_pred[i]);
        ss_tot += (y_true[i] - mean) * (y_true[i] - mean);
    }
    if (ss_tot <= 0.0)
        return 0.0;
    return 1.0 - ss_res / ss_tot;
}

double
rmse(const std::vector<double> &y_true, const std::vector<double> &y_pred)
{
    GCM_ASSERT(y_true.size() == y_pred.size(), "rmse: size mismatch");
    GCM_ASSERT(!y_true.empty(), "rmse: empty input");
    double ss = 0.0;
    for (std::size_t i = 0; i < y_true.size(); ++i)
        ss += (y_true[i] - y_pred[i]) * (y_true[i] - y_pred[i]);
    return std::sqrt(ss / static_cast<double>(y_true.size()));
}

double
mae(const std::vector<double> &y_true, const std::vector<double> &y_pred)
{
    GCM_ASSERT(y_true.size() == y_pred.size(), "mae: size mismatch");
    GCM_ASSERT(!y_true.empty(), "mae: empty input");
    double s = 0.0;
    for (std::size_t i = 0; i < y_true.size(); ++i)
        s += std::abs(y_true[i] - y_pred[i]);
    return s / static_cast<double>(y_true.size());
}

double
mape(const std::vector<double> &y_true, const std::vector<double> &y_pred)
{
    GCM_ASSERT(y_true.size() == y_pred.size(), "mape: size mismatch");
    double s = 0.0;
    std::size_t n = 0;
    for (std::size_t i = 0; i < y_true.size(); ++i) {
        if (y_true[i] == 0.0)
            continue;
        s += std::abs((y_true[i] - y_pred[i]) / y_true[i]);
        ++n;
    }
    if (n == 0)
        return 0.0;
    return 100.0 * s / static_cast<double>(n);
}

} // namespace gcm::ml

/**
 * @file
 * Random-forest regressor — one of the baselines the paper compared
 * against XGBoost (Section III-C). Reuses the histogram tree trainer
 * in variance-reduction mode (g = -y, h = 1, lambda = 0).
 */

#ifndef GCM_ML_RANDOM_FOREST_HH
#define GCM_ML_RANDOM_FOREST_HH

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "ml/dataset.hh"
#include "ml/flat_ensemble.hh"
#include "ml/tree.hh"

namespace gcm::ml
{

/** Forest hyperparameters. */
struct RandomForestParams
{
    std::size_t n_trees = 100;
    std::size_t max_depth = 12;
    double min_child_weight = 3.0;
    /** Fraction of features considered per node. */
    double feature_fraction = 0.333;
    bool bootstrap = true;
    std::size_t max_bins = 64;
    std::uint64_t seed = 11;
};

/** Bagged regression-tree ensemble averaging mean-valued leaves. */
class RandomForest
{
  public:
    explicit RandomForest(RandomForestParams params = {});

    void train(const Dataset &data);

    /**
     * Predict one row (node walker); accumulation order is pinned by
     * the bit-identity contract in ml/flat_ensemble.hh.
     */
    double predictRow(const float *x) const;

    /**
     * Predict every row of a dataset, routed through a compiled
     * FlatEnsemble; bit-identical to predictRow per row.
     */
    std::vector<double> predict(const Dataset &data) const;

    /**
     * Compile the trained forest into its flat SoA inference form
     * (Combine::Mean). @pre trained (numTrees() > 0)
     */
    FlatEnsemble compile() const;

    std::size_t numTrees() const { return trees_.size(); }
    const RandomForestParams &params() const { return params_; }

    /**
     * Serialize the trained forest to a self-describing text format
     * ("gcm-rf v1"), mirroring GradientBoostedTrees::serialize so the
     * serving-layer ModelRegistry can snapshot either backend. Exact
     * round trip (floats written with full precision).
     */
    void serialize(std::ostream &os) const;

    /** Load a forest written by serialize(). Throws GcmError. */
    static RandomForest deserialize(std::istream &is);

  private:
    RandomForestParams params_;
    std::vector<RegressionTree> trees_;
};

} // namespace gcm::ml

#endif // GCM_ML_RANDOM_FOREST_HH

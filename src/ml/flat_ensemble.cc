#include "ml/flat_ensemble.hh"

#include <algorithm>

#include "obs/obs.hh"
#include "util/error.hh"
#include "util/parallel.hh"

namespace gcm::ml
{

FlatEnsemble
FlatEnsemble::compile(const std::vector<RegressionTree> &trees,
                      double base_score, Combine combine)
{
    FlatEnsemble flat;
    flat.baseScore_ = base_score;
    flat.combine_ = combine;
    GCM_ASSERT(combine != Combine::Mean || !trees.empty(),
               "FlatEnsemble: Combine::Mean over zero trees");

    std::size_t total = 0;
    for (const RegressionTree &tree : trees)
        total += tree.numNodes();
    flat.feature_.reserve(total);
    flat.threshold_.reserve(total);
    flat.value_.reserve(total);
    flat.left_.reserve(total);
    flat.roots_.reserve(trees.size());

    // Per-tree BFS renumbering: children are enqueued left-then-right
    // back to back, so in the flat layout right = left + 1 and the
    // traversal needs only the left index.
    std::vector<std::uint32_t> queue;     // source node ids, BFS order
    std::vector<std::uint32_t> flat_of;   // source id -> flat id
    for (const RegressionTree &tree : trees) {
        const std::vector<TreeNode> &nodes = tree.nodes();
        GCM_ASSERT(!nodes.empty(), "FlatEnsemble: empty tree");
        const auto base = static_cast<std::uint32_t>(flat.feature_.size());
        flat.roots_.push_back(base);

        queue.assign(1, 0);
        flat_of.assign(nodes.size(), 0);
        for (std::size_t q = 0; q < queue.size(); ++q) {
            const TreeNode &n = nodes[queue[q]];
            flat_of[queue[q]] = base + static_cast<std::uint32_t>(q);
            if (!n.isLeaf()) {
                queue.push_back(static_cast<std::uint32_t>(n.left));
                queue.push_back(static_cast<std::uint32_t>(n.right));
            }
        }
        for (std::uint32_t src : queue) {
            const TreeNode &n = nodes[src];
            flat.feature_.push_back(n.feature);
            flat.threshold_.push_back(n.threshold);
            flat.value_.push_back(n.value);
            flat.left_.push_back(
                n.isLeaf()
                    ? 0
                    : flat_of[static_cast<std::uint32_t>(n.left)]);
        }
    }
    return flat;
}

double
FlatEnsemble::predictRow(const float *x) const
{
    const std::int32_t *feature = feature_.data();
    const float *threshold = threshold_.data();
    const float *value = value_.data();
    const std::uint32_t *left = left_.data();

    double acc = baseScore_;
    for (std::uint32_t root : roots_) {
        std::uint32_t idx = root;
        std::int32_t f = feature[idx];
        while (f >= 0) {
            idx = left[idx]
                + static_cast<std::uint32_t>(!(x[f] <= threshold[idx]));
            f = feature[idx];
        }
        acc += value[idx];
    }
    if (combine_ == Combine::Mean)
        acc /= static_cast<double>(roots_.size());
    return acc;
}

std::size_t
FlatEnsemble::blockRows(std::size_t stride)
{
    // Budget ~32KB of row data per block: narrow training-style rows
    // keep the full kRowBlock, while wide serving query rows (network
    // encodings run to thousands of floats) get blocks small enough
    // that the trees-outermost walk does not evict the block's rows
    // between trees.
    const std::size_t budget_floats = 8192;
    const std::size_t fit = budget_floats / (stride == 0 ? 1 : stride);
    return std::clamp<std::size_t>(fit, 1, kRowBlock);
}

void
FlatEnsemble::predictBatch(const float *rows, std::size_t n_rows,
                           std::size_t stride, double *out) const
{
    if (n_rows == 0)
        return;
    GCM_OBS_GUARDED(obs::counterAdd("flat.rows", n_rows));
    const std::int32_t *feature = feature_.data();
    const float *threshold = threshold_.data();
    const float *value = value_.data();
    const std::uint32_t *left = left_.data();
    const bool mean = combine_ == Combine::Mean;

    const std::size_t block = blockRows(stride);
    const std::size_t nblocks = (n_rows + block - 1) / block;
    parallelFor(0, nblocks, 1, [&](std::size_t blk) {
        const std::size_t lo = blk * block;
        const std::size_t hi = std::min(lo + block, n_rows);
        const std::size_t count = hi - lo;
        double acc[kRowBlock];
        double *a = acc;
        for (std::size_t i = 0; i < count; ++i)
            a[i] = baseScore_;
        // Trees outermost: one tree's SoA slices stay cache-resident
        // while the whole block runs through it. Each row keeps its
        // own accumulator, so the per-row operation order is exactly
        // the predictRow order (the file contract, point 4).
        for (std::uint32_t root : roots_) {
            const float *x = rows + lo * stride;
            for (std::size_t i = 0; i < count; ++i) {
                std::uint32_t idx = root;
                std::int32_t f = feature[idx];
                while (f >= 0) {
                    idx = left[idx]
                        + static_cast<std::uint32_t>(
                              !(x[f] <= threshold[idx]));
                    f = feature[idx];
                }
                a[i] += value[idx];
                x += stride;
            }
        }
        double *o = out + lo;
        if (mean) {
            const auto trees = static_cast<double>(roots_.size());
            for (std::size_t i = 0; i < count; ++i)
                o[i] = a[i] / trees;
        } else {
            for (std::size_t i = 0; i < count; ++i)
                o[i] = a[i];
        }
    });
}

void
FlatEnsemble::predictBatchSegmented(const SegmentedRow *rows,
                                    std::size_t n_rows,
                                    std::size_t head_width,
                                    double *out) const
{
    if (n_rows == 0)
        return;
    GCM_OBS_GUARDED(obs::counterAdd("flat.rows", n_rows));
    const std::int32_t *feature = feature_.data();
    const float *threshold = threshold_.data();
    const float *value = value_.data();
    const std::uint32_t *left = left_.data();
    const bool mean = combine_ == Combine::Mean;
    const auto head_w = static_cast<std::size_t>(head_width);

    // Per-row data is only the (head, tail) pointer pair — heads are
    // shared between rows by design — so full-size blocks stay
    // cache-resident regardless of the logical row width.
    const std::size_t nblocks = (n_rows + kRowBlock - 1) / kRowBlock;
    parallelFor(0, nblocks, 1, [&](std::size_t blk) {
        const std::size_t lo = blk * kRowBlock;
        const std::size_t hi = std::min(lo + kRowBlock, n_rows);
        const std::size_t count = hi - lo;
        double acc[kRowBlock];
        double *a = acc;
        for (std::size_t i = 0; i < count; ++i)
            a[i] = baseScore_;
        // Same trees-outermost walk and per-row accumulation order as
        // predictBatch (the file contract, point 4); the only change
        // is where a feature value is loaded from.
        for (std::uint32_t root : roots_) {
            const SegmentedRow *r = rows + lo;
            for (std::size_t i = 0; i < count; ++i) {
                std::uint32_t idx = root;
                std::int32_t f = feature[idx];
                while (f >= 0) {
                    const auto fu = static_cast<std::size_t>(f);
                    const float xv = fu < head_w
                                         ? r[i].head[fu]
                                         : r[i].tail[fu - head_w];
                    idx = left[idx]
                        + static_cast<std::uint32_t>(
                              !(xv <= threshold[idx]));
                    f = feature[idx];
                }
                a[i] += value[idx];
            }
        }
        double *o = out + lo;
        if (mean) {
            const auto trees = static_cast<double>(roots_.size());
            for (std::size_t i = 0; i < count; ++i)
                o[i] = a[i] / trees;
        } else {
            for (std::size_t i = 0; i < count; ++i)
                o[i] = a[i];
        }
    });
}

std::vector<double>
FlatEnsemble::predict(const Dataset &data) const
{
    std::vector<double> out(data.numRows());
    if (data.numRows() > 0) {
        predictBatch(data.row(0), data.numRows(), data.numFeatures(),
                     out.data());
    }
    return out;
}

} // namespace gcm::ml

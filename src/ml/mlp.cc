#include "ml/mlp.hh"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/error.hh"

namespace gcm::ml
{

Mlp::Mlp(MlpParams params) : params_(std::move(params))
{
    GCM_ASSERT(params_.epochs > 0, "Mlp: epochs must be > 0");
    GCM_ASSERT(params_.batch_size > 0, "Mlp: batch_size must be > 0");
}

void
Mlp::forward(const std::vector<double> &x,
             std::vector<std::vector<double>> &acts) const
{
    acts.resize(layers_.size() + 1);
    acts[0] = x;
    for (std::size_t l = 0; l < layers_.size(); ++l) {
        const Layer &layer = layers_[l];
        acts[l + 1].assign(layer.out, 0.0);
        for (std::size_t o = 0; o < layer.out; ++o) {
            double s = layer.b[o];
            const double *wrow = layer.w.data() + o * layer.in;
            for (std::size_t i = 0; i < layer.in; ++i)
                s += wrow[i] * acts[l][i];
            // ReLU on hidden layers; identity on the output layer.
            if (l + 1 < layers_.size())
                s = std::max(s, 0.0);
            acts[l + 1][o] = s;
        }
    }
}

void
Mlp::train(const Dataset &data)
{
    GCM_ASSERT(data.numRows() > 0, "Mlp: empty training set");
    const std::size_t n = data.numRows();
    numFeatures_ = data.numFeatures();

    // Standardize features and target with the training moments.
    featMean_.assign(numFeatures_, 0.0);
    featInvStd_.assign(numFeatures_, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
        const float *r = data.row(i);
        for (std::size_t f = 0; f < numFeatures_; ++f)
            featMean_[f] += r[f];
    }
    for (auto &m : featMean_)
        m /= static_cast<double>(n);
    std::vector<double> var(numFeatures_, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
        const float *r = data.row(i);
        for (std::size_t f = 0; f < numFeatures_; ++f) {
            const double d = r[f] - featMean_[f];
            var[f] += d * d;
        }
    }
    for (std::size_t f = 0; f < numFeatures_; ++f) {
        var[f] /= static_cast<double>(n);
        featInvStd_[f] = var[f] > 1e-12 ? 1.0 / std::sqrt(var[f]) : 0.0;
    }
    targetMean_ = std::accumulate(data.labels().begin(),
                                  data.labels().end(), 0.0)
        / static_cast<double>(n);
    double t_var = 0.0;
    for (double y : data.labels())
        t_var += (y - targetMean_) * (y - targetMean_);
    targetStd_ = std::sqrt(std::max(t_var / static_cast<double>(n), 1e-12));

    // Build layers.
    Rng rng(params_.seed);
    layers_.clear();
    std::vector<std::size_t> widths;
    widths.push_back(numFeatures_);
    for (std::size_t h : params_.hidden)
        widths.push_back(h);
    widths.push_back(1);
    for (std::size_t l = 0; l + 1 < widths.size(); ++l) {
        Layer layer;
        layer.in = widths[l];
        layer.out = widths[l + 1];
        layer.w.resize(layer.in * layer.out);
        const double scale = std::sqrt(2.0 / static_cast<double>(layer.in));
        for (auto &w : layer.w)
            w = rng.normal(0.0, scale);
        layer.b.assign(layer.out, 0.0);
        layer.mw.assign(layer.w.size(), 0.0);
        layer.vw.assign(layer.w.size(), 0.0);
        layer.mb.assign(layer.out, 0.0);
        layer.vb.assign(layer.out, 0.0);
        layers_.push_back(std::move(layer));
    }

    // Pre-standardize the training matrix.
    std::vector<double> xz(n * numFeatures_);
    std::vector<double> yz(n);
    for (std::size_t i = 0; i < n; ++i) {
        const float *r = data.row(i);
        for (std::size_t f = 0; f < numFeatures_; ++f) {
            xz[i * numFeatures_ + f] =
                (r[f] - featMean_[f]) * featInvStd_[f];
        }
        yz[i] = (data.label(i) - targetMean_) / targetStd_;
    }

    lossHistory_.clear();
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::vector<std::vector<double>> acts;
    std::vector<std::vector<double>> deltas(layers_.size());
    const double b1 = 0.9, b2 = 0.999, eps = 1e-8;
    std::size_t step = 0;

    for (std::size_t epoch = 0; epoch < params_.epochs; ++epoch) {
        rng.shuffle(order);
        double epoch_se = 0.0;
        for (std::size_t start = 0; start < n;
             start += params_.batch_size) {
            const std::size_t end =
                std::min(start + params_.batch_size, n);
            // Accumulate gradients over the batch.
            std::vector<std::vector<double>> gw(layers_.size());
            std::vector<std::vector<double>> gb(layers_.size());
            for (std::size_t l = 0; l < layers_.size(); ++l) {
                gw[l].assign(layers_[l].w.size(), 0.0);
                gb[l].assign(layers_[l].out, 0.0);
            }
            for (std::size_t bi = start; bi < end; ++bi) {
                const std::size_t i = order[bi];
                std::vector<double> x(
                    xz.begin()
                        + static_cast<std::ptrdiff_t>(i * numFeatures_),
                    xz.begin()
                        + static_cast<std::ptrdiff_t>(
                            (i + 1) * numFeatures_));
                forward(x, acts);
                const double err = acts.back()[0] - yz[i];
                epoch_se += err * err;
                // Backprop.
                deltas.back().assign(1, err);
                for (std::size_t l = layers_.size(); l-- > 0;) {
                    const Layer &layer = layers_[l];
                    const auto &delta = deltas[l];
                    for (std::size_t o = 0; o < layer.out; ++o) {
                        gb[l][o] += delta[o];
                        double *gwrow = gw[l].data() + o * layer.in;
                        for (std::size_t ii = 0; ii < layer.in; ++ii)
                            gwrow[ii] += delta[o] * acts[l][ii];
                    }
                    if (l == 0)
                        break;
                    // Delta for the previous (hidden, ReLU) layer.
                    std::vector<double> prev(layer.in, 0.0);
                    for (std::size_t ii = 0; ii < layer.in; ++ii) {
                        if (acts[l][ii] <= 0.0)
                            continue; // ReLU gradient
                        double s = 0.0;
                        for (std::size_t o = 0; o < layer.out; ++o)
                            s += layer.w[o * layer.in + ii] * delta[o];
                        prev[ii] = s;
                    }
                    deltas[l - 1] = std::move(prev);
                }
            }
            // Adam update.
            ++step;
            const double batch_n = static_cast<double>(end - start);
            const double bc1 =
                1.0 - std::pow(b1, static_cast<double>(step));
            const double bc2 =
                1.0 - std::pow(b2, static_cast<double>(step));
            for (std::size_t l = 0; l < layers_.size(); ++l) {
                Layer &layer = layers_[l];
                for (std::size_t wi = 0; wi < layer.w.size(); ++wi) {
                    double g = gw[l][wi] / batch_n
                        + params_.weight_decay * layer.w[wi];
                    layer.mw[wi] = b1 * layer.mw[wi] + (1 - b1) * g;
                    layer.vw[wi] = b2 * layer.vw[wi] + (1 - b2) * g * g;
                    layer.w[wi] -= params_.learning_rate
                        * (layer.mw[wi] / bc1)
                        / (std::sqrt(layer.vw[wi] / bc2) + eps);
                }
                for (std::size_t o = 0; o < layer.out; ++o) {
                    const double g = gb[l][o] / batch_n;
                    layer.mb[o] = b1 * layer.mb[o] + (1 - b1) * g;
                    layer.vb[o] = b2 * layer.vb[o] + (1 - b2) * g * g;
                    layer.b[o] -= params_.learning_rate
                        * (layer.mb[o] / bc1)
                        / (std::sqrt(layer.vb[o] / bc2) + eps);
                }
            }
        }
        lossHistory_.push_back(
            std::sqrt(epoch_se / static_cast<double>(n)) * targetStd_);
    }
    trained_ = true;
}

double
Mlp::predictRow(const float *x) const
{
    GCM_ASSERT(trained_, "Mlp: predict before train");
    std::vector<double> z(numFeatures_);
    for (std::size_t f = 0; f < numFeatures_; ++f)
        z[f] = (x[f] - featMean_[f]) * featInvStd_[f];
    std::vector<std::vector<double>> acts;
    forward(z, acts);
    return acts.back()[0] * targetStd_ + targetMean_;
}

std::vector<double>
Mlp::predict(const Dataset &data) const
{
    std::vector<double> out(data.numRows());
    for (std::size_t i = 0; i < data.numRows(); ++i)
        out[i] = predictRow(data.row(i));
    return out;
}

} // namespace gcm::ml

#include "ml/linear.hh"

#include <cmath>

#include "util/error.hh"

namespace gcm::ml
{

RidgeRegression::RidgeRegression(RidgeParams params) : params_(params)
{
    GCM_ASSERT(params_.alpha >= 0.0, "Ridge: negative alpha");
}

void
RidgeRegression::train(const Dataset &data)
{
    GCM_ASSERT(data.numRows() > 0, "Ridge: empty training set");
    const std::size_t n = data.numRows();
    numFeatures_ = data.numFeatures();

    means_.assign(numFeatures_, 0.0);
    invStd_.assign(numFeatures_, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
        const float *r = data.row(i);
        for (std::size_t f = 0; f < numFeatures_; ++f)
            means_[f] += r[f];
    }
    for (auto &m : means_)
        m /= static_cast<double>(n);
    std::vector<double> var(numFeatures_, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
        const float *r = data.row(i);
        for (std::size_t f = 0; f < numFeatures_; ++f) {
            const double d = r[f] - means_[f];
            var[f] += d * d;
        }
    }
    for (std::size_t f = 0; f < numFeatures_; ++f) {
        var[f] /= static_cast<double>(n);
        invStd_[f] = var[f] > 1e-12 ? 1.0 / std::sqrt(var[f]) : 0.0;
    }

    double y_mean = 0.0;
    for (double y : data.labels())
        y_mean += y;
    y_mean /= static_cast<double>(n);
    intercept_ = y_mean;

    // Z-scored design matrix (materialized once; fits easily for the
    // dataset sizes in this project).
    std::vector<double> xz(n * numFeatures_);
    for (std::size_t i = 0; i < n; ++i) {
        const float *r = data.row(i);
        for (std::size_t f = 0; f < numFeatures_; ++f)
            xz[i * numFeatures_ + f] = (r[f] - means_[f]) * invStd_[f];
    }

    // b = X^T (y - y_mean)
    std::vector<double> b(numFeatures_, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
        const double yc = data.label(i) - y_mean;
        const double *row = xz.data() + i * numFeatures_;
        for (std::size_t f = 0; f < numFeatures_; ++f)
            b[f] += row[f] * yc;
    }

    // Conjugate gradients on A w = b with A = X^T X + alpha I applied
    // implicitly: A v = X^T (X v) + alpha v.
    auto apply_a = [&](const std::vector<double> &v,
                       std::vector<double> &out) {
        std::vector<double> xv(n, 0.0);
        for (std::size_t i = 0; i < n; ++i) {
            const double *row = xz.data() + i * numFeatures_;
            double s = 0.0;
            for (std::size_t f = 0; f < numFeatures_; ++f)
                s += row[f] * v[f];
            xv[i] = s;
        }
        std::fill(out.begin(), out.end(), 0.0);
        for (std::size_t i = 0; i < n; ++i) {
            const double *row = xz.data() + i * numFeatures_;
            for (std::size_t f = 0; f < numFeatures_; ++f)
                out[f] += row[f] * xv[i];
        }
        for (std::size_t f = 0; f < numFeatures_; ++f)
            out[f] += params_.alpha * v[f];
    };

    weights_.assign(numFeatures_, 0.0);
    std::vector<double> r = b, p = b, ap(numFeatures_);
    double rs_old = 0.0;
    for (double x : r)
        rs_old += x * x;
    const double b_norm = std::max(std::sqrt(rs_old), 1e-30);
    for (std::size_t it = 0;
         it < params_.max_cg_iterations
         && std::sqrt(rs_old) / b_norm > params_.cg_tolerance;
         ++it) {
        apply_a(p, ap);
        double p_ap = 0.0;
        for (std::size_t f = 0; f < numFeatures_; ++f)
            p_ap += p[f] * ap[f];
        if (p_ap <= 0.0)
            break;
        const double alpha_step = rs_old / p_ap;
        double rs_new = 0.0;
        for (std::size_t f = 0; f < numFeatures_; ++f) {
            weights_[f] += alpha_step * p[f];
            r[f] -= alpha_step * ap[f];
            rs_new += r[f] * r[f];
        }
        const double beta = rs_new / rs_old;
        for (std::size_t f = 0; f < numFeatures_; ++f)
            p[f] = r[f] + beta * p[f];
        rs_old = rs_new;
    }
    trained_ = true;
}

double
RidgeRegression::predictRow(const float *x) const
{
    GCM_ASSERT(trained_, "Ridge: predict before train");
    double v = intercept_;
    for (std::size_t f = 0; f < numFeatures_; ++f)
        v += weights_[f] * (x[f] - means_[f]) * invStd_[f];
    return v;
}

std::vector<double>
RidgeRegression::predict(const Dataset &data) const
{
    std::vector<double> out(data.numRows());
    for (std::size_t i = 0; i < data.numRows(); ++i)
        out[i] = predictRow(data.row(i));
    return out;
}

} // namespace gcm::ml

#include "ml/tree.hh"

#include <algorithm>
#include <istream>
#include <limits>
#include <ostream>

#include "obs/obs.hh"
#include "util/error.hh"
#include "util/parallel.hh"

namespace gcm::ml
{

double
RegressionTree::predictRow(const float *x) const
{
    GCM_ASSERT(!nodes_.empty(), "predictRow: empty tree");
    std::size_t idx = 0;
    while (!nodes_[idx].isLeaf()) {
        const TreeNode &n = nodes_[idx];
        idx = static_cast<std::size_t>(
            x[n.feature] <= n.threshold ? n.left : n.right);
    }
    return nodes_[idx].value;
}

double
RegressionTree::predictBinnedRow(const BinnedMatrix &binned,
                                 std::size_t i) const
{
    GCM_ASSERT(!nodes_.empty(), "predictBinnedRow: empty tree");
    std::size_t idx = 0;
    while (!nodes_[idx].isLeaf()) {
        const TreeNode &n = nodes_[idx];
        const std::uint8_t b =
            binned.binAt(static_cast<std::size_t>(n.feature), i);
        idx = static_cast<std::size_t>(
            b <= n.binThreshold ? n.left : n.right);
    }
    return nodes_[idx].value;
}

std::size_t
RegressionTree::numLeaves() const
{
    std::size_t c = 0;
    for (const auto &n : nodes_) {
        if (n.isLeaf())
            ++c;
    }
    return c;
}

void
RegressionTree::scaleLeaves(double factor)
{
    for (auto &n : nodes_) {
        if (n.isLeaf())
            n.value = static_cast<float>(n.value * factor);
    }
}

void
RegressionTree::serialize(std::ostream &os) const
{
    const auto prec = os.precision(
        std::numeric_limits<float>::max_digits10);
    os << "tree " << nodes_.size() << "\n";
    for (const auto &n : nodes_) {
        os << "node " << n.feature << ' ' << n.threshold << ' '
           << static_cast<int>(n.binThreshold) << ' ' << n.left << ' '
           << n.right << ' ' << n.value << "\n";
    }
    os.precision(prec);
}

RegressionTree
RegressionTree::deserialize(std::istream &is)
{
    std::string tag;
    std::size_t count = 0;
    if (!(is >> tag >> count) || tag != "tree")
        fatal("RegressionTree::deserialize: expected 'tree <count>'");
    std::vector<TreeNode> nodes(count);
    for (auto &n : nodes) {
        int bin = 0;
        if (!(is >> tag >> n.feature >> n.threshold >> bin >> n.left
              >> n.right >> n.value)
            || tag != "node") {
            fatal("RegressionTree::deserialize: malformed node line");
        }
        if (bin < 0 || bin > 255)
            fatal("RegressionTree::deserialize: bin out of range");
        n.binThreshold = static_cast<std::uint8_t>(bin);
    }
    // Structural sanity: children must reference valid nodes.
    for (const auto &n : nodes) {
        if (n.isLeaf())
            continue;
        if (n.left < 0 || n.right < 0
            || static_cast<std::size_t>(n.left) >= nodes.size()
            || static_cast<std::size_t>(n.right) >= nodes.size()) {
            fatal("RegressionTree::deserialize: dangling child index");
        }
    }
    if (nodes.empty())
        fatal("RegressionTree::deserialize: empty tree");
    return RegressionTree(std::move(nodes));
}

namespace
{

/** Per-node gradient/count histograms over all active features. */
struct HistBlock
{
    std::vector<double> g;
    std::vector<std::uint32_t> n;

    void
    reset(std::size_t total_bins)
    {
        g.assign(total_bins, 0.0);
        n.assign(total_bins, 0);
    }

    /** In-place parent - child, leaving the sibling's histograms. */
    void
    subtract(const HistBlock &child)
    {
        for (std::size_t i = 0; i < g.size(); ++i) {
            g[i] -= child.g[i];
            n[i] -= child.n[i];
        }
    }
};

struct BestSplit
{
    double gain = 0.0;
    std::size_t feature = 0;
    std::uint8_t bin = 0;
    bool found = false;
};

struct Builder
{
    const BinnedMatrix &binned;
    const std::vector<float> &grad;
    const TreeTrainConfig &cfg;
    Rng *rng;
    std::vector<double> *gainOut;
    std::vector<TreeNode> nodes;
    /** Start of each active feature's bin range in a HistBlock. */
    std::vector<std::size_t> offsets;
    std::size_t totalBins = 0;

    void
    initOffsets()
    {
        offsets.reserve(binned.activeFeatures().size());
        for (std::size_t f : binned.activeFeatures()) {
            offsets.push_back(totalBins);
            totalBins += binned.featureBins(f).numBins();
        }
    }

    void
    accumulate(const std::vector<std::uint32_t> &rows,
               HistBlock &hist) const
    {
        const obs::TraceSpan span("tree.histogram");
        hist.reset(totalBins);
        const auto &active = binned.activeFeatures();
        // Each feature owns a disjoint [offsets[a], offsets[a+1])
        // region of the histogram and scans rows in ascending order,
        // so the accumulation is bit-identical at any thread count.
        // Small nodes run as one inline chunk to skip pool overhead.
        const std::size_t grain =
            rows.size() * active.size() < 1u << 15
                ? active.size()
                : std::max<std::size_t>(1, active.size() / 32);
        parallelFor(0, active.size(), grain, [&](std::size_t a) {
            const std::uint8_t *col = binned.column(active[a]);
            double *hg = hist.g.data() + offsets[a];
            std::uint32_t *hn = hist.n.data() + offsets[a];
            for (std::uint32_t i : rows) {
                const std::uint8_t b = col[i];
                hg[b] += grad[i];
                ++hn[b];
            }
        });
    }

    double
    leafWeight(double sum_g, double count) const
    {
        return -sum_g / (count + cfg.lambda);
    }

    BestSplit
    findSplit(const HistBlock &hist, double sum_g, double count) const
    {
        const obs::TraceSpan span("tree.split");
        BestSplit best;
        const double parent_score =
            sum_g * sum_g / (count + cfg.lambda);
        const auto &active = binned.activeFeatures();
        // Random-subspace sampling (RandomForest): draw a fixed-size
        // subset of at least one feature per node.
        std::vector<std::size_t> sampled;
        const bool subsample_features = cfg.feature_fraction < 1.0;
        if (subsample_features) {
            GCM_ASSERT(rng != nullptr,
                       "feature_fraction < 1 requires an rng");
            const auto want = std::max<std::size_t>(
                1, static_cast<std::size_t>(
                       cfg.feature_fraction
                       * static_cast<double>(active.size())));
            sampled =
                rng->sampleWithoutReplacement(active.size(), want);
        }
        const std::size_t n_cand =
            subsample_features ? sampled.size() : active.size();
        // Score every candidate feature independently, then reduce in
        // candidate order. The serial loop kept a running best and
        // accepted only strictly larger gains, so scanning the
        // per-candidate winners with the same `>` in the same order
        // reproduces its result (ties keep the earlier feature)
        // bit-for-bit at any thread count.
        const std::size_t grain =
            n_cand * totalBins < 1u << 15 ? n_cand : 1;
        const auto cand = parallelMap(
            n_cand, grain, [&](std::size_t c) -> BestSplit {
                const std::size_t a =
                    subsample_features ? sampled[c] : c;
                const std::size_t nb =
                    binned.featureBins(active[a]).numBins();
                const double *hg = hist.g.data() + offsets[a];
                const std::uint32_t *hn = hist.n.data() + offsets[a];
                BestSplit local;
                double gl = 0.0, nl = 0.0;
                for (std::size_t b = 0; b + 1 < nb; ++b) {
                    gl += hg[b];
                    nl += hn[b];
                    const double nr = count - nl;
                    if (nl < cfg.min_child_weight
                        || nr < cfg.min_child_weight) {
                        continue;
                    }
                    const double gr = sum_g - gl;
                    const double gain = 0.5
                            * (gl * gl / (nl + cfg.lambda)
                               + gr * gr / (nr + cfg.lambda)
                               - parent_score)
                        - cfg.gamma;
                    if (gain > local.gain) {
                        local.gain = gain;
                        local.feature = active[a];
                        local.bin = static_cast<std::uint8_t>(b);
                        local.found = true;
                    }
                }
                return local;
            });
        for (const BestSplit &c : cand) {
            if (c.found && c.gain > best.gain)
                best = c;
        }
        return best;
    }

    /**
     * Recursively grow; returns the node index. The node's histogram
     * is computed here unless the parent derived it by subtraction.
     */
    std::int32_t
    build(std::vector<std::uint32_t> &rows, std::size_t depth,
          double sum_g, HistBlock *ready_hist)
    {
        const auto idx = static_cast<std::int32_t>(nodes.size());
        nodes.emplace_back();
        // Per-node counter on the recursive grow path: guard it so the
        // disabled case is one relaxed load + branch (and gcm-lint's
        // obs-hot-loop check treats the wrapper as the sanctioned
        // form).
        GCM_OBS_GUARDED(obs::counterAdd("tree.nodes"));
        const double count = static_cast<double>(rows.size());

        const bool splittable = depth < cfg.max_depth && rows.size() >= 2;
        HistBlock local;
        HistBlock *hist = ready_hist;
        if (splittable && hist == nullptr) {
            accumulate(rows, local);
            hist = &local;
        }
        BestSplit best;
        if (splittable)
            best = findSplit(*hist, sum_g, count);

        if (!best.found || best.gain <= 0.0) {
            nodes[static_cast<std::size_t>(idx)].value =
                static_cast<float>(leafWeight(sum_g, count));
            return idx;
        }
        if (gainOut)
            (*gainOut)[best.feature] += best.gain;

        // Partition rows (order within each side is preserved, so row
        // lists stay sorted and column accesses stay forward).
        const std::uint8_t *col = binned.column(best.feature);
        std::vector<std::uint32_t> left_rows, right_rows;
        left_rows.reserve(rows.size());
        right_rows.reserve(rows.size());
        double gl = 0.0;
        for (std::uint32_t i : rows) {
            if (col[i] <= best.bin) {
                left_rows.push_back(i);
                gl += grad[i];
            } else {
                right_rows.push_back(i);
            }
        }
        rows.clear();
        rows.shrink_to_fit();

        const FeatureBins &fb = binned.featureBins(best.feature);
        GCM_ASSERT(best.bin < fb.cuts.size(),
                   "split bin outside cut range");
        {
            TreeNode &n = nodes[static_cast<std::size_t>(idx)];
            n.feature = static_cast<std::int32_t>(best.feature);
            n.binThreshold = best.bin;
            n.threshold = fb.cuts[best.bin];
        }

        // Histogram subtraction: recompute only the smaller child.
        HistBlock small_hist;
        HistBlock *left_hist = nullptr;
        HistBlock *right_hist = nullptr;
        const bool children_splittable =
            depth + 1 < cfg.max_depth;
        if (children_splittable) {
            const bool left_smaller =
                left_rows.size() <= right_rows.size();
            accumulate(left_smaller ? left_rows : right_rows,
                       small_hist);
            hist->subtract(small_hist);
            left_hist = left_smaller ? &small_hist : hist;
            right_hist = left_smaller ? hist : &small_hist;
        }

        const std::int32_t l = build(left_rows, depth + 1, gl, left_hist);
        const std::int32_t r =
            build(right_rows, depth + 1, sum_g - gl, right_hist);
        nodes[static_cast<std::size_t>(idx)].left = l;
        nodes[static_cast<std::size_t>(idx)].right = r;
        return idx;
    }
};

} // namespace

RegressionTree
trainTree(const BinnedMatrix &binned, const std::vector<std::uint32_t> &rows,
          const std::vector<float> &grad, const TreeTrainConfig &cfg,
          Rng *rng, std::vector<double> *gain_out)
{
    GCM_ASSERT(!rows.empty(), "trainTree: no rows");
    GCM_ASSERT(grad.size() == binned.numRows(),
               "trainTree: gradient size mismatch");
    if (gain_out)
        gain_out->assign(binned.numFeatures(), 0.0);

    Builder builder{binned, grad, cfg, rng, gain_out, {}, {}, 0};
    builder.initOffsets();
    double sum_g = 0.0;
    for (std::uint32_t i : rows)
        sum_g += grad[i];
    std::vector<std::uint32_t> work = rows;
    builder.build(work, 0, sum_g, nullptr);
    return RegressionTree(std::move(builder.nodes));
}

} // namespace gcm::ml

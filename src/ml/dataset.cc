#include "ml/dataset.hh"

#include "util/error.hh"

namespace gcm::ml
{

Dataset::Dataset(std::size_t num_features) : numFeatures_(num_features)
{
    GCM_ASSERT(num_features > 0, "Dataset: zero features");
}

void
Dataset::addRow(const std::vector<float> &x, double y)
{
    GCM_ASSERT(x.size() == numFeatures_, "Dataset::addRow: width mismatch");
    values_.insert(values_.end(), x.begin(), x.end());
    labels_.push_back(y);
}

const float *
Dataset::row(std::size_t i) const
{
    GCM_ASSERT(i < numRows(), "Dataset::row: index out of range");
    return values_.data() + i * numFeatures_;
}

double
Dataset::label(std::size_t i) const
{
    GCM_ASSERT(i < numRows(), "Dataset::label: index out of range");
    return labels_[i];
}

float
Dataset::at(std::size_t row_idx, std::size_t feature) const
{
    GCM_ASSERT(feature < numFeatures_, "Dataset::at: feature out of range");
    return row(row_idx)[feature];
}

Dataset
Dataset::subset(const std::vector<std::size_t> &row_indices) const
{
    Dataset out(numFeatures_);
    out.featureNames_ = featureNames_;
    out.values_.reserve(row_indices.size() * numFeatures_);
    out.labels_.reserve(row_indices.size());
    for (std::size_t i : row_indices) {
        GCM_ASSERT(i < numRows(), "Dataset::subset: index out of range");
        const float *r = row(i);
        out.values_.insert(out.values_.end(), r, r + numFeatures_);
        out.labels_.push_back(labels_[i]);
    }
    return out;
}

void
Dataset::setFeatureNames(std::vector<std::string> names)
{
    GCM_ASSERT(names.size() == numFeatures_,
               "Dataset::setFeatureNames: size mismatch");
    featureNames_ = std::move(names);
}

} // namespace gcm::ml

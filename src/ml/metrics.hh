/**
 * @file
 * Regression quality metrics. The paper reports the coefficient of
 * determination (R^2) and optimizes RMSE.
 */

#ifndef GCM_ML_METRICS_HH
#define GCM_ML_METRICS_HH

#include <vector>

namespace gcm::ml
{

/**
 * Coefficient of determination R^2 = 1 - SS_res / SS_tot.
 * Returns 0 when the targets have zero variance.
 */
double r2Score(const std::vector<double> &y_true,
               const std::vector<double> &y_pred);

/** Root mean squared error. */
double rmse(const std::vector<double> &y_true,
            const std::vector<double> &y_pred);

/** Mean absolute error. */
double mae(const std::vector<double> &y_true,
           const std::vector<double> &y_pred);

/** Mean absolute percentage error (%), skipping zero targets. */
double mape(const std::vector<double> &y_true,
            const std::vector<double> &y_pred);

} // namespace gcm::ml

#endif // GCM_ML_METRICS_HH

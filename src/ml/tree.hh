/**
 * @file
 * Histogram-based regression tree used as the weak learner of
 * GradientBoostedTrees and as the bagged learner of RandomForest.
 *
 * Training follows the XGBoost formulation for the squared-error
 * objective, where the per-row second-order gradient is identically
 * 1: leaf weight -G/(N+lambda) and split gain
 *   1/2 [ G_L^2/(N_L+lambda) + G_R^2/(N_R+lambda) - G^2/(N+lambda) ]
 *     - gamma,
 * with N the row count standing in for the hessian sum. With
 * g = -y and lambda = 0 this degenerates to the classic
 * variance-reduction CART split with mean-valued leaves, which is how
 * RandomForest reuses the same trainer.
 *
 * Performance: per-feature gradient histograms are accumulated over a
 * column-major uint8 binned matrix; for each split only the smaller
 * child's histograms are recomputed and the sibling is derived by
 * subtraction (the standard LightGBM/XGBoost trick).
 */

#ifndef GCM_ML_TREE_HH
#define GCM_ML_TREE_HH

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "ml/binning.hh"
#include "util/rng.hh"

namespace gcm::ml
{

/** One tree node; feature < 0 marks a leaf. */
struct TreeNode
{
    std::int32_t feature = -1;
    /** Raw-value threshold: go left when x[feature] <= threshold. */
    float threshold = 0.0f;
    /** Binned threshold: go left when bin <= binThreshold. */
    std::uint8_t binThreshold = 0;
    std::int32_t left = -1;
    std::int32_t right = -1;
    /** Leaf output (already scaled by the caller's learning rate). */
    float value = 0.0f;

    bool isLeaf() const { return feature < 0; }
};

/** An immutable trained regression tree. */
class RegressionTree
{
  public:
    explicit RegressionTree(std::vector<TreeNode> nodes)
        : nodes_(std::move(nodes))
    {}

    /**
     * Predict from raw feature values. Leaves are float; ensemble
     * callers accumulate them into a double in tree order — an order
     * that is contractual, pinned in ml/flat_ensemble.hh.
     */
    double predictRow(const float *x) const;

    /** Predict row i of a binned matrix (fast path for training). */
    double predictBinnedRow(const BinnedMatrix &binned,
                            std::size_t i) const;

    std::size_t numNodes() const { return nodes_.size(); }
    std::size_t numLeaves() const;
    const std::vector<TreeNode> &nodes() const { return nodes_; }

    /** Scale all leaf values in place (used to bake the shrinkage). */
    void scaleLeaves(double factor);

    /** Serialize to one text line per node (see gbt serialization). */
    void serialize(std::ostream &os) const;

    /** Parse a tree previously written by serialize(). */
    static RegressionTree deserialize(std::istream &is);

  private:
    std::vector<TreeNode> nodes_;
};

/** Tree-growing hyperparameters. */
struct TreeTrainConfig
{
    std::size_t max_depth = 3;
    double lambda = 1.0;
    double gamma = 0.0;
    /** Minimum row count on each side of a split. */
    double min_child_weight = 1.0;
    /**
     * Fraction of active features considered at each node; < 1 enables
     * the random-subspace behaviour RandomForest needs. Requires rng.
     */
    double feature_fraction = 1.0;
};

/**
 * Grow one tree for the squared-error objective (unit hessian).
 *
 * @param binned Pre-binned training matrix.
 * @param rows Training row indices for this tree (bootstrap/subsample).
 * @param grad Per-row gradients (indexed by original row id).
 * @param cfg Growth hyperparameters.
 * @param rng Random stream for feature sampling (may be nullptr when
 *        cfg.feature_fraction == 1).
 * @param gain_out Optional per-feature accumulated split gain
 *        (importance); resized to numFeatures when provided.
 */
RegressionTree trainTree(const BinnedMatrix &binned,
                         const std::vector<std::uint32_t> &rows,
                         const std::vector<float> &grad,
                         const TreeTrainConfig &cfg, Rng *rng,
                         std::vector<double> *gain_out = nullptr);

} // namespace gcm::ml

#endif // GCM_ML_TREE_HH

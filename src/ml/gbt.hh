/**
 * @file
 * Gradient-boosted regression trees with the XGBoost objective — the
 * paper's cost-model learner (gbtree booster, lr = 0.1,
 * n_estimators = 100, max_depth = 3, RMSE loss).
 */

#ifndef GCM_ML_GBT_HH
#define GCM_ML_GBT_HH

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "ml/dataset.hh"
#include "ml/flat_ensemble.hh"
#include "ml/tree.hh"

namespace gcm::ml
{

/** Booster hyperparameters; defaults match the paper. */
struct GbtParams
{
    std::size_t n_estimators = 100;
    std::size_t max_depth = 3;
    double learning_rate = 0.1;
    /** L2 regularization on leaf weights (XGBoost lambda). */
    double lambda = 1.0;
    /** Minimum split gain (XGBoost gamma). */
    double gamma = 0.0;
    double min_child_weight = 1.0;
    /** Row subsample fraction per tree (1.0 = no subsampling). */
    double subsample = 1.0;
    std::size_t max_bins = 64;
    std::uint64_t seed = 7;
};

/** Gradient-boosted trees regressor (squared-error objective). */
class GradientBoostedTrees
{
  public:
    explicit GradientBoostedTrees(GbtParams params = {});

    /** Fit on a dataset; replaces any previous model. */
    void train(const Dataset &data);

    /**
     * Fit with a held-out evaluation set; records RMSE on it after
     * every boosting round (see evalHistory()).
     */
    void train(const Dataset &data, const Dataset &eval);

    /**
     * Predict one row of raw feature values (node walker). The
     * double-over-float accumulation order is contractual — see the
     * bit-identity contract in ml/flat_ensemble.hh.
     */
    double predictRow(const float *x) const;

    /**
     * Predict every row of a dataset. Routed through a compiled
     * FlatEnsemble; bit-identical to predictRow per row.
     */
    std::vector<double> predict(const Dataset &data) const;

    /**
     * Compile the trained booster into its flat SoA inference form
     * (Combine::Sum from baseScore()). @pre trained()
     */
    FlatEnsemble compile() const;

    bool trained() const { return !trees_.empty() || trained_; }
    std::size_t numTrees() const { return trees_.size(); }
    double baseScore() const { return baseScore_; }

    /** Per-round eval RMSE (empty unless the eval overload was used). */
    const std::vector<double> &evalHistory() const { return evalHistory_; }

    /** Total split gain attributed to each feature. */
    const std::vector<double> &featureImportance() const
    {
        return featureGain_;
    }

    const GbtParams &params() const { return params_; }

    /**
     * Serialize the trained model to a self-describing text format
     * ("gcm-gbt v1"). Exact round trip: doubles are written with full
     * precision.
     */
    void serialize(std::ostream &os) const;

    /** Load a model written by serialize(). Throws GcmError. */
    static GradientBoostedTrees deserialize(std::istream &is);

  private:
    void trainImpl(const Dataset &data, const Dataset *eval);

    GbtParams params_;
    double baseScore_ = 0.0;
    bool trained_ = false;
    std::vector<RegressionTree> trees_;
    std::vector<double> featureGain_;
    std::vector<double> evalHistory_;
};

} // namespace gcm::ml

#endif // GCM_ML_GBT_HH

#include "lint/check.hh"

#include <algorithm>
#include <filesystem>
#include <sstream>

#include "util/error.hh"
#include "util/json.hh"

namespace gcm::lint
{

const char *
severityName(Severity severity)
{
    switch (severity) {
      case Severity::Note:
        return "note";
      case Severity::Warning:
        return "warning";
      case Severity::Error:
        return "error";
    }
    return "unknown";
}

std::string
Finding::str() const
{
    std::ostringstream oss;
    oss << file << ":" << line << ": " << severityName(severity) << " ["
        << check << "] " << message;
    if (!hint.empty())
        oss << " (hint: " << hint << ")";
    return oss.str();
}

void
LintReport::add(const SourceFile &file, int line, std::string check,
                Severity severity, std::string message, std::string hint)
{
    if (file.suppressed(line, check)) {
        ++suppressed_;
        return;
    }
    findings_.push_back({file.path, line, std::move(check), severity,
                         std::move(message), std::move(hint)});
}

std::size_t
LintReport::count(Severity severity) const
{
    std::size_t n = 0;
    for (const auto &f : findings_)
        n += f.severity == severity ? 1 : 0;
    return n;
}

void
LintReport::sort()
{
    std::stable_sort(findings_.begin(), findings_.end(),
                     [](const Finding &a, const Finding &b) {
                         if (a.file != b.file)
                             return a.file < b.file;
                         if (a.line != b.line)
                             return a.line < b.line;
                         return a.check < b.check;
                     });
}

std::string
LintReport::str() const
{
    std::ostringstream oss;
    for (const auto &f : findings_)
        oss << f.str() << "\n";
    oss << "gcm-lint: " << files_scanned_ << " file(s), "
        << count(Severity::Error) << " error(s), "
        << count(Severity::Warning) << " warning(s), "
        << count(Severity::Note) << " note(s), " << suppressed_
        << " suppressed\n";
    return oss.str();
}

std::string
LintReport::json() const
{
    std::string out = "{\"schema\":\"gcm-lint/v1\",\"files_scanned\":";
    out += std::to_string(files_scanned_);
    out += ",\"counts\":{\"error\":";
    out += std::to_string(count(Severity::Error));
    out += ",\"warning\":";
    out += std::to_string(count(Severity::Warning));
    out += ",\"note\":";
    out += std::to_string(count(Severity::Note));
    out += ",\"suppressed\":";
    out += std::to_string(suppressed_);
    out += "},\"findings\":[";
    bool first = true;
    for (const auto &f : findings_) {
        if (!first)
            out += ",";
        first = false;
        out += "{\"file\":";
        json::appendJsonString(out, f.file);
        out += ",\"line\":";
        out += std::to_string(f.line);
        out += ",\"check\":";
        json::appendJsonString(out, f.check);
        out += ",\"severity\":";
        json::appendJsonString(out, severityName(f.severity));
        out += ",\"message\":";
        json::appendJsonString(out, f.message);
        out += ",\"hint\":";
        json::appendJsonString(out, f.hint);
        out += "}";
    }
    out += "]}";
    return out;
}

CheckRegistry &
CheckRegistry::instance()
{
    static CheckRegistry registry;
    return registry;
}

CheckRegistry::CheckRegistry()
{
    detail::registerBuiltinChecks(*this);
}

void
CheckRegistry::registerCheck(std::string id, std::string description,
                             CheckFn fn)
{
    if (find(id) != nullptr)
        fatal("gcm-lint: duplicate check id '", id, "'");
    checks_.push_back({std::move(id), std::move(description),
                       std::move(fn)});
}

const SourceCheck *
CheckRegistry::find(const std::string &id) const
{
    for (const auto &c : checks_) {
        if (c.id == id)
            return &c;
    }
    return nullptr;
}

void
CheckRegistry::run(const SourceFile &file, LintReport &report) const
{
    for (const auto &c : checks_)
        c.fn(file, report);
}

void
CheckRegistry::run(const SourceFile &file, LintReport &report,
                   const std::vector<std::string> &ids) const
{
    for (const auto &id : ids) {
        const SourceCheck *c = find(id);
        if (c == nullptr)
            fatal("gcm-lint: unknown check '", id, "'");
        c->fn(file, report);
    }
}

namespace
{

namespace fs = std::filesystem;

bool
isSourceFile(const fs::path &p)
{
    const std::string ext = p.extension().string();
    return ext == ".cc" || ext == ".hh" || ext == ".cpp"
        || ext == ".hpp" || ext == ".h";
}

/** Directories the live-tree scan must never descend into. */
bool
isSkippedDir(const fs::path &p)
{
    const std::string name = p.filename().string();
    return name == "lint_fixtures" || name == ".git"
        || name.rfind("build", 0) == 0
        || name.rfind("check-build", 0) == 0;
}

void
collectFrom(const fs::path &p, std::vector<std::string> &out)
{
    std::error_code ec;
    if (fs::is_regular_file(p, ec)) {
        out.push_back(p.string());
        return;
    }
    if (!fs::is_directory(p, ec))
        fatal("gcm-lint: no such file or directory: ", p.string());
    fs::recursive_directory_iterator it(p, ec), end;
    if (ec)
        fatal("gcm-lint: cannot walk ", p.string(), ": ", ec.message());
    for (; it != end; it.increment(ec)) {
        if (ec)
            fatal("gcm-lint: walk failed under ", p.string(), ": ",
                  ec.message());
        if (it->is_directory() && isSkippedDir(it->path())) {
            it.disable_recursion_pending();
            continue;
        }
        if (it->is_regular_file() && isSourceFile(it->path()))
            out.push_back(it->path().string());
    }
}

} // namespace

std::vector<std::string>
collectSources(const std::vector<std::string> &paths)
{
    std::vector<std::string> out;
    for (const auto &p : paths)
        collectFrom(p, out);
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
}

LintReport
lintPaths(const std::vector<std::string> &paths,
          const std::vector<std::string> &ids)
{
    const auto &registry = CheckRegistry::instance();
    LintReport report;
    for (const auto &path : collectSources(paths)) {
        const SourceFile file = lexFile(path);
        report.addScannedFile();
        if (ids.empty())
            registry.run(file, report);
        else
            registry.run(file, report, ids);
    }
    report.sort();
    return report;
}

} // namespace gcm::lint

#include "lint/lexer.hh"

#include <cctype>
#include <fstream>
#include <sstream>

#include "util/error.hh"

namespace gcm::lint
{

namespace
{

/** Multi-character punctuators, longest first so lexing is greedy. */
const char *const kPuncts[] = {
    "<<=", ">>=", "...", "->*", "::", "->", "++", "--", "+=", "-=",
    "*=", "/=", "%=", "&=", "|=", "^=", "==", "!=", "<=", ">=",
    "&&", "||", "<<", ">>", ".*",
};

bool
identStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool
identBody(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/**
 * Extract check ids from a "gcm-lint: allow(a, b)" directive in a
 * comment body; empty when the comment is not a directive.
 */
std::set<std::string>
parseDirective(const std::string &comment)
{
    std::set<std::string> ids;
    const auto tag = comment.find("gcm-lint:");
    if (tag == std::string::npos)
        return ids;
    const auto open = comment.find("allow(", tag);
    if (open == std::string::npos)
        return ids;
    const auto close = comment.find(')', open);
    if (close == std::string::npos)
        return ids;
    std::string cur;
    for (std::size_t i = open + 6; i <= close; ++i) {
        const char c = comment[i];
        if (c == ',' || c == ')') {
            if (!cur.empty())
                ids.insert(cur);
            cur.clear();
        } else if (!std::isspace(static_cast<unsigned char>(c))) {
            cur += c;
        }
    }
    return ids;
}

class Lexer
{
  public:
    Lexer(std::string path, const std::string &text)
        : text_(text)
    {
        out_.path = std::move(path);
    }

    SourceFile
    run()
    {
        while (pos_ < text_.size())
            step();
        out_.lines = line_;
        return std::move(out_);
    }

  private:
    char peek(std::size_t ahead = 0) const
    {
        return pos_ + ahead < text_.size() ? text_[pos_ + ahead] : '\0';
    }

    char
    advance()
    {
        const char c = text_[pos_++];
        if (c == '\n') {
            ++line_;
            at_line_start_ = true;
        } else if (!std::isspace(static_cast<unsigned char>(c))) {
            at_line_start_ = false;
        }
        return c;
    }

    void
    emit(TokKind kind, std::string text, int line)
    {
        out_.tokens.push_back({kind, std::move(text), line});
    }

    void
    recordDirective(const std::string &comment, int line)
    {
        const auto ids = parseDirective(comment);
        if (ids.empty())
            return;
        out_.allowed[line].insert(ids.begin(), ids.end());
        out_.allowed[line + 1].insert(ids.begin(), ids.end());
    }

    void
    lineComment()
    {
        const int start = line_;
        std::string body;
        while (pos_ < text_.size() && peek() != '\n')
            body += advance();
        recordDirective(body, start);
    }

    void
    blockComment()
    {
        const int start = line_;
        std::string body;
        while (pos_ < text_.size()) {
            if (peek() == '*' && peek(1) == '/') {
                advance();
                advance();
                break;
            }
            body += advance();
        }
        recordDirective(body, start);
    }

    /** Consume a quoted literal; `quote` is '"' or '\''. */
    void
    quoted(char quote, TokKind kind)
    {
        const int start = line_;
        advance(); // opening quote
        while (pos_ < text_.size()) {
            const char c = advance();
            if (c == '\\' && pos_ < text_.size()) {
                advance();
            } else if (c == quote || c == '\n') {
                break; // newline: unterminated literal, recover
            }
        }
        emit(kind, "", start);
    }

    /** Consume R"delim( ... )delim" with `pos_` on the 'R'. */
    void
    rawString()
    {
        const int start = line_;
        advance();               // R
        advance();               // "
        std::string delim;
        while (pos_ < text_.size() && peek() != '(')
            delim += advance();
        const std::string close = ")" + delim + "\"";
        const auto end = text_.find(close, pos_);
        while (pos_ < text_.size()
               && pos_ < (end == std::string::npos ? text_.size()
                                                   : end + close.size())) {
            advance();
        }
        emit(TokKind::String, "", start);
    }

    /** Preprocessor logical line with continuations folded. */
    void
    preprocessor()
    {
        const int start = line_;
        std::string body;
        while (pos_ < text_.size()) {
            if (peek() == '\\' && peek(1) == '\n') {
                advance();
                advance();
                body += ' ';
                continue;
            }
            if (peek() == '\n')
                break;
            if (peek() == '/' && peek(1) == '/') {
                lineComment();
                break;
            }
            if (peek() == '/' && peek(1) == '*') {
                advance();
                advance();
                blockComment();
                body += ' ';
                continue;
            }
            body += advance();
        }
        // Collapse runs of whitespace so checks can string-match.
        std::string norm;
        for (char c : body) {
            if (std::isspace(static_cast<unsigned char>(c))) {
                if (!norm.empty() && norm.back() != ' ')
                    norm += ' ';
            } else {
                norm += c;
            }
        }
        while (!norm.empty() && norm.back() == ' ')
            norm.pop_back();
        emit(TokKind::Preprocessor, norm, start);
    }

    void
    step()
    {
        const char c = peek();
        if (std::isspace(static_cast<unsigned char>(c))) {
            advance();
            return;
        }
        if (c == '/' && peek(1) == '/') {
            lineComment();
            return;
        }
        if (c == '/' && peek(1) == '*') {
            advance();
            advance();
            blockComment();
            return;
        }
        if (c == '#' && at_line_start_) {
            preprocessor();
            return;
        }
        // Raw and prefixed string/char literals. Check the raw forms
        // (R", u8R", LR", uR", UR") before plain identifiers.
        if (c == 'R' && peek(1) == '"') {
            rawString();
            return;
        }
        if ((c == 'u' || c == 'U' || c == 'L')) {
            std::size_t p = 1;
            if (c == 'u' && peek(1) == '8')
                p = 2;
            if (peek(p) == 'R' && peek(p + 1) == '"') {
                for (std::size_t i = 0; i < p; ++i)
                    advance();
                rawString();
                return;
            }
            if (peek(p) == '"' || peek(p) == '\'') {
                const char q = peek(p);
                for (std::size_t i = 0; i < p; ++i)
                    advance();
                quoted(q, q == '"' ? TokKind::String : TokKind::CharLit);
                return;
            }
        }
        if (c == '"') {
            quoted('"', TokKind::String);
            return;
        }
        if (c == '\'') {
            quoted('\'', TokKind::CharLit);
            return;
        }
        if (identStart(c)) {
            const int start = line_;
            std::string id;
            while (pos_ < text_.size() && identBody(peek()))
                id += advance();
            emit(TokKind::Identifier, std::move(id), start);
            return;
        }
        if (std::isdigit(static_cast<unsigned char>(c))
            || (c == '.' && std::isdigit(static_cast<unsigned char>(
                    peek(1))))) {
            const int start = line_;
            std::string num;
            while (pos_ < text_.size()) {
                const char d = peek();
                if (identBody(d) || d == '.' || d == '\'') {
                    num += advance();
                } else if ((d == '+' || d == '-') && !num.empty()
                           && (num.back() == 'e' || num.back() == 'E'
                               || num.back() == 'p'
                               || num.back() == 'P')) {
                    num += advance();
                } else {
                    break;
                }
            }
            emit(TokKind::Number, std::move(num), start);
            return;
        }
        // Punctuator: longest multi-char match, else single char.
        for (const char *p : kPuncts) {
            const std::size_t n = std::char_traits<char>::length(p);
            if (text_.compare(pos_, n, p) == 0) {
                const int start = line_;
                for (std::size_t i = 0; i < n; ++i)
                    advance();
                emit(TokKind::Punct, p, start);
                return;
            }
        }
        const int start = line_;
        std::string one(1, advance());
        emit(TokKind::Punct, std::move(one), start);
    }

    const std::string &text_;
    SourceFile out_;
    std::size_t pos_ = 0;
    int line_ = 1;
    bool at_line_start_ = true;
};

} // namespace

bool
SourceFile::isHeader() const
{
    for (const char *ext : {".hh", ".hpp", ".hxx", ".h"}) {
        const std::string_view e(ext);
        if (path.size() >= e.size()
            && path.compare(path.size() - e.size(), e.size(), e) == 0) {
            return true;
        }
    }
    return false;
}

bool
SourceFile::suppressed(int line, const std::string &check) const
{
    const auto it = allowed.find(line);
    if (it == allowed.end())
        return false;
    return it->second.count(check) > 0 || it->second.count("*") > 0;
}

SourceFile
lexString(const std::string &path, const std::string &text)
{
    return Lexer(path, text).run();
}

SourceFile
lexFile(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        fatal("gcm-lint: cannot open ", path);
    std::ostringstream oss;
    oss << is.rdbuf();
    return lexString(path, oss.str());
}

} // namespace gcm::lint

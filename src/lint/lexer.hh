/**
 * @file
 * Comment/string-aware C++ lexer for the in-tree source analyzer.
 *
 * gcm-lint does not parse C++ — it tokenizes it. The lexer turns one
 * source file into a flat stream of identifier / number / literal /
 * punctuator / preprocessor tokens with line numbers, skipping
 * comments and the *contents* of string and character literals, so
 * the checks in checks.cc can pattern-match code without being fooled
 * by `// std::rand` in a comment or "time(" inside a log message.
 * No libclang, no compile database: a file is analyzable the moment
 * it exists, which is what lets the lint ctest gate scan the live
 * tree on every run.
 *
 * Two deliberate simplifications, shared with every token-level
 * linter: the lexer does not expand macros (checks see macro *names*,
 * which is exactly what the GCM_OBS_GUARDED escape hatch relies on)
 * and `>>` is emitted as a single punctuator (template-angle matching
 * in checks.cc counts it as two closers).
 *
 * Suppression directives are collected during lexing: a comment of
 * the form
 *
 *     // gcm-lint: allow(check-id)            one id
 *     // gcm-lint: allow(check-a, check-b)    several
 *
 * suppresses findings of the named checks on the comment's own line
 * and on the line that follows it (so it can trail the offending
 * statement or sit on its own line above it).
 */

#ifndef GCM_LINT_LEXER_HH
#define GCM_LINT_LEXER_HH

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace gcm::lint
{

/** Lexical class of one token. */
enum class TokKind : std::uint8_t
{
    /** Identifier or keyword (keywords are not distinguished). */
    Identifier,
    /** Numeric literal (integer or floating, any base/suffix). */
    Number,
    /** String literal ("", raw R"()" or prefixed); text is dropped. */
    String,
    /** Character literal; text is dropped. */
    CharLit,
    /** Operator or punctuator; multi-char operators are one token. */
    Punct,
    /**
     * One whole preprocessor logical line (continuations folded),
     * e.g. "#ifndef GCM_LINT_LEXER_HH". Leading '#' retained,
     * interior whitespace collapsed to single spaces.
     */
    Preprocessor,
};

/** One lexed token. */
struct Token
{
    TokKind kind = TokKind::Punct;
    /** Token spelling (empty for String/CharLit contents). */
    std::string text;
    /** 1-based source line the token starts on. */
    int line = 1;

    bool is(const char *s) const { return text == s; }
    bool isIdent(const char *s) const
    {
        return kind == TokKind::Identifier && text == s;
    }
};

/** One tokenized source file plus its suppression table. */
struct SourceFile
{
    /** Path as given to the scanner (used verbatim in findings). */
    std::string path;
    std::vector<Token> tokens;
    /** line -> check ids allowed on that line ("*" = every check). */
    std::map<int, std::set<std::string>> allowed;
    /** Number of lines in the file. */
    int lines = 0;

    /** True when `path` names a header (.hh/.h/.hpp/.hxx). */
    bool isHeader() const;

    /** Whether findings of `check` are suppressed on `line`. */
    bool suppressed(int line, const std::string &check) const;
};

/**
 * Tokenize `text` as the contents of `path`. Never throws on weird
 * input: an unterminated literal or comment simply ends at EOF (the
 * analyzer must degrade gracefully on code it half-understands).
 */
SourceFile lexString(const std::string &path, const std::string &text);

/** Read and tokenize a file. Throws GcmError when unreadable. */
SourceFile lexFile(const std::string &path);

} // namespace gcm::lint

#endif // GCM_LINT_LEXER_HH

/**
 * @file
 * The six built-in gcm-lint checks (catalog in DESIGN.md §11).
 *
 * Every check is a token-stream heuristic, not a semantic analysis:
 * it trades soundness for zero-dependency speed and makes the escape
 * hatch explicit — a justified exception is allowlisted in the code
 * with `// gcm-lint: allow(<check-id>)` where reviewers can see it,
 * never silently configured away.
 */

#include <algorithm>
#include <array>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "lint/check.hh"

namespace gcm::lint
{

namespace
{

constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

bool
endsWith(const std::string &s, const std::string &suffix)
{
    return s.size() >= suffix.size()
        && s.compare(s.size() - suffix.size(), suffix.size(), suffix)
        == 0;
}

/** Path with '\\' normalized to '/' for fragment matching. */
std::string
normPath(const std::string &path)
{
    std::string p = path;
    std::replace(p.begin(), p.end(), '\\', '/');
    return p;
}

/** Whether `frag` (e.g. "src/ml/") occurs in the normalized path. */
bool
pathContains(const std::string &path, const std::string &frag)
{
    return normPath(path).find(frag) != std::string::npos;
}

/** Whether `dir` appears as a whole path component. */
bool
pathHasDir(const std::string &path, const std::string &dir)
{
    const std::string p = normPath(path);
    return p.rfind(dir + "/", 0) == 0
        || p.find("/" + dir + "/") != std::string::npos;
}

/**
 * Index of the token closing the bracket opened at `open` (same
 * bracket family only; balanced code nests families properly).
 * kNpos when unbalanced.
 */
std::size_t
matchPair(const std::vector<Token> &toks, std::size_t open,
          const char *o, const char *c)
{
    int depth = 0;
    for (std::size_t i = open; i < toks.size(); ++i) {
        if (toks[i].is(o))
            ++depth;
        else if (toks[i].is(c) && --depth == 0)
            return i;
    }
    return kNpos;
}

/**
 * Index one past the template argument list opened by the '<' at
 * `open`; counts ">>" as two closers. kNpos when this '<' does not
 * look like a template bracket (statement terminator reached first).
 */
std::size_t
matchAngles(const std::vector<Token> &toks, std::size_t open)
{
    int depth = 0;
    for (std::size_t i = open; i < toks.size(); ++i) {
        const Token &t = toks[i];
        if (t.is("<")) {
            ++depth;
        } else if (t.is(">")) {
            if (--depth == 0)
                return i + 1;
        } else if (t.is(">>")) {
            depth -= 2;
            if (depth <= 0)
                return i + 1;
        } else if (t.is(";") || t.is("{") || t.is("}")) {
            return kNpos;
        }
    }
    return kNpos;
}

// ---------------------------------------------------------------------
// determinism: no ambient randomness, no wall-clock entropy.
// ---------------------------------------------------------------------

/**
 * Whether a `time(` / `rand(` occurrence is a *declaration* — the
 * preceding token is a type name (`long time()` in a struct) rather
 * than an operator or a statement keyword like `return`.
 */
bool
declLike(const Token *prev)
{
    static const std::set<std::string> kStatementKeywords = {
        "return", "co_return", "case", "co_yield",
    };
    return prev != nullptr && prev->kind == TokKind::Identifier
        && kStatementKeywords.count(prev->text) == 0;
}

void
checkDeterminism(const SourceFile &f, LintReport &r)
{
    static const char *kId = "determinism";
    static const std::string kHint =
        "seed an explicit gcm::Rng and derive per-task streams with "
        "Rng::fork(stream_id)";
    // The Rng implementation itself is the one sanctioned home for a
    // std:: engine, should it ever wrap one.
    const bool rng_home = pathContains(f.path, "src/util/rng");
    const auto &toks = f.tokens;
    for (std::size_t i = 0; i < toks.size(); ++i) {
        const Token &t = toks[i];
        if (t.kind != TokKind::Identifier)
            continue;
        const Token *prev = i > 0 ? &toks[i - 1] : nullptr;
        const Token *next = i + 1 < toks.size() ? &toks[i + 1] : nullptr;
        const bool calls = next != nullptr && next->is("(");
        const bool member =
            prev != nullptr && (prev->is(".") || prev->is("->"));
        if (t.text == "random_device") {
            r.add(f, t.line, kId, Severity::Error,
                  "std::random_device draws nondeterministic entropy",
                  kHint);
        } else if (!rng_home
                   && (t.text == "mt19937" || t.text == "mt19937_64"
                       || t.text == "minstd_rand"
                       || t.text == "default_random_engine")) {
            r.add(f, t.line, kId, Severity::Error,
                  "std:: random engine '" + t.text
                      + "' constructed outside src/util/rng",
                  kHint);
        } else if (t.text == "system_clock") {
            r.add(f, t.line, kId, Severity::Error,
                  "std::chrono::system_clock reads the wall clock "
                  "(use steady_clock for timing, never for seeds)",
                  kHint);
        } else if (t.text == "srand" && calls) {
            r.add(f, t.line, kId, Severity::Error,
                  "srand() seeds the hidden global C generator", kHint);
        } else if ((t.text == "rand" || t.text == "time") && calls
                   && !member && !declLike(prev)) {
            r.add(f, t.line, kId, Severity::Error,
                  t.text == "rand"
                      ? "std::rand() draws from hidden global state"
                      : "time() reads the wall clock into program "
                        "state",
                  kHint);
        }
    }
}

// ---------------------------------------------------------------------
// unordered-iter: range-for over unordered containers must not feed
// output, float aggregation or serialization.
// ---------------------------------------------------------------------

/** Identifiers whose presence marks a file as producing output. */
bool
fileFeedsOutput(const SourceFile &f)
{
    static const std::set<std::string> kMarkers = {
        "ofstream",  "ostringstream",   "ostream",   "printf",
        "fprintf",   "appendJsonString", "serialize", "deserialize",
        "toCsv",     "fromCsv",          "writeCsv",  "reportJson",
        "writeReport",
    };
    static const std::array<const char *, 6> kIncludes = {
        "<fstream>", "<ostream>",    "<iostream>",
        "<cstdio>",  "util/csv.hh",  "util/json.hh",
    };
    for (const Token &t : f.tokens) {
        if (t.kind == TokKind::Identifier && kMarkers.count(t.text))
            return true;
        if (t.kind == TokKind::Preprocessor
            && t.text.find("include") != std::string::npos) {
            for (const char *inc : kIncludes) {
                if (t.text.find(inc) != std::string::npos)
                    return true;
            }
        }
    }
    return false;
}

void
checkUnorderedIter(const SourceFile &f, LintReport &r)
{
    static const char *kId = "unordered-iter";
    const auto &toks = f.tokens;

    // Names declared with an unordered container type (direct
    // declarations only; aliases via `using X = std::unordered_map`
    // are tracked one level deep).
    std::set<std::string> unordered_names;
    std::set<std::string> unordered_aliases;
    const std::set<std::string> kContainers = {
        "unordered_map", "unordered_set", "unordered_multimap",
        "unordered_multiset"};
    for (std::size_t i = 0; i < toks.size(); ++i) {
        const bool direct = toks[i].kind == TokKind::Identifier
            && kContainers.count(toks[i].text) > 0;
        const bool via_alias = toks[i].kind == TokKind::Identifier
            && unordered_aliases.count(toks[i].text) > 0;
        if (!direct && !via_alias)
            continue;
        // `using Alias = std::unordered_map<...>` registers an alias.
        if (direct && i >= 3 && toks[i - 3].isIdent("using")
            && toks[i - 1].is("=")) {
            // pattern: using X = unordered_map (no std::)
            unordered_aliases.insert(toks[i - 2].text);
        }
        if (direct && i >= 5 && toks[i - 5].isIdent("using")
            && toks[i - 3].is("=") && toks[i - 2].isIdent("std")
            && toks[i - 1].is("::")) {
            unordered_aliases.insert(toks[i - 4].text);
        }
        std::size_t j = i + 1;
        if (direct) {
            if (j >= toks.size() || !toks[j].is("<"))
                continue;
            j = matchAngles(toks, j);
            if (j == kNpos)
                continue;
        }
        while (j < toks.size()
               && (toks[j].is("&") || toks[j].is("*")
                   || toks[j].isIdent("const"))) {
            ++j;
        }
        if (j < toks.size() && toks[j].kind == TokKind::Identifier)
            unordered_names.insert(toks[j].text);
    }
    if (unordered_names.empty())
        return;

    const bool writes = fileFeedsOutput(f);
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
        if (!toks[i].isIdent("for") || !toks[i + 1].is("("))
            continue;
        const std::size_t close = matchPair(toks, i + 1, "(", ")");
        if (close == kNpos)
            continue;
        // Range-for: a ':' at paren depth 1 and no ';' (classic for).
        std::size_t colon = kNpos;
        bool classic = false;
        int depth = 0;
        for (std::size_t k = i + 1; k <= close; ++k) {
            if (toks[k].is("(") || toks[k].is("[") || toks[k].is("{"))
                ++depth;
            else if (toks[k].is(")") || toks[k].is("]")
                     || toks[k].is("}"))
                --depth;
            else if (depth == 1 && toks[k].is(";"))
                classic = true;
            else if (depth == 1 && toks[k].is(":") && colon == kNpos)
                colon = k;
        }
        if (classic || colon == kNpos)
            continue;
        for (std::size_t k = colon + 1; k < close; ++k) {
            if (toks[k].kind != TokKind::Identifier
                || unordered_names.count(toks[k].text) == 0) {
                continue;
            }
            if (writes) {
                r.add(f, toks[i].line, kId, Severity::Error,
                      "range-for over unordered container '"
                          + toks[k].text
                          + "' in a file that writes output / "
                            "serializes: iteration order is "
                            "unspecified",
                      "iterate a sorted copy of the keys (or use "
                      "std::map); if order provably never reaches "
                      "output, annotate with // gcm-lint: "
                      "allow(unordered-iter)");
            } else {
                r.add(f, toks[i].line, kId, Severity::Note,
                      "range-for over unordered container '"
                          + toks[k].text
                          + "' (file shows no output markers; keep "
                            "it away from serialization)",
                      "");
            }
            break;
        }
    }
}

// ---------------------------------------------------------------------
// parallel-capture: lambdas passed to parallelFor/parallelMap may
// only write task-owned state.
// ---------------------------------------------------------------------

/** Identifier-position keywords that never start a declaration. */
bool
isStatementKeyword(const std::string &s)
{
    static const std::set<std::string> kKeywords = {
        "return", "throw", "new",  "delete",   "case", "goto",
        "else",   "do",    "break", "continue", "co_return",
    };
    return kKeywords.count(s) > 0;
}

/** Names declared inside [begin, end): the lambda's task-owned state. */
std::set<std::string>
collectBodyLocals(const std::vector<Token> &toks, std::size_t begin,
                  std::size_t end)
{
    std::set<std::string> locals;
    for (std::size_t m = begin; m < end; ++m) {
        const Token &t = toks[m];
        // Structured bindings: auto [a, b] = ...
        if (t.isIdent("auto") && m + 1 < end && toks[m + 1].is("[")) {
            for (std::size_t k = m + 2;
                 k < end && !toks[k].is("]"); ++k) {
                if (toks[k].kind == TokKind::Identifier)
                    locals.insert(toks[k].text);
            }
            continue;
        }
        if (t.kind != TokKind::Identifier || m == begin
            || m + 1 >= end) {
            continue;
        }
        const Token &prev = toks[m - 1];
        const Token &next = toks[m + 1];
        const bool decl_prev =
            (prev.kind == TokKind::Identifier
             && !isStatementKeyword(prev.text))
            || prev.is(">") || prev.is("&") || prev.is("*")
            || prev.is(",");
        if (!decl_prev)
            continue;
        // `T x = ...`, `T x;`, `T x : range` (for-range var),
        // `T x{...}`, plus `, y = ...` continuation declarators.
        if (next.is("=") || next.is(";") || next.is(":")
            || next.is("{")) {
            locals.insert(t.text);
        }
    }
    return locals;
}

bool
isAssignOp(const Token &t)
{
    static const std::set<std::string> kOps = {
        "=",  "+=", "-=", "*=",  "/=",  "%=",
        "&=", "|=", "^=", "<<=", ">>=",
    };
    return t.kind == TokKind::Punct && kOps.count(t.text) > 0;
}

bool
isMutatingMethod(const std::string &s)
{
    static const std::set<std::string> kMethods = {
        "push_back", "emplace_back", "pop_back", "insert", "emplace",
        "erase",     "clear",        "resize",   "assign", "append",
    };
    return kMethods.count(s) > 0;
}

void
analyzeParallelBody(const SourceFile &f, LintReport &r,
                    std::size_t begin, std::size_t end,
                    const std::string &loop_var, bool default_ref,
                    const std::set<std::string> &ref_captures)
{
    static const char *kId = "parallel-capture";
    const auto &toks = f.tokens;

    // Any lock inside the body serializes tasks in scheduling order —
    // exactly what the bit-identical contract forbids.
    for (std::size_t m = begin; m < end; ++m) {
        const Token &t = toks[m];
        const bool lock_type = t.isIdent("lock_guard")
            || t.isIdent("unique_lock") || t.isIdent("scoped_lock");
        const bool lock_call =
            (t.isIdent("lock") || t.isIdent("unlock")) && m > begin
            && (toks[m - 1].is(".") || toks[m - 1].is("->"))
            && m + 1 < end && toks[m + 1].is("(");
        if (lock_type || lock_call) {
            r.add(f, t.line, kId, Severity::Error,
                  "mutex use inside a parallelFor/parallelMap body; "
                  "the determinism contract forbids cross-task "
                  "synchronization",
                  "restructure so each task writes only its own "
                  "index's slot and reduce serially after the loop");
        }
    }

    std::set<std::string> locals =
        collectBodyLocals(toks, begin, end);
    locals.insert(loop_var);

    for (std::size_t m = begin; m < end; ++m) {
        // Prefix ++/-- applied to a chain.
        std::size_t base_idx = kNpos;
        if ((toks[m].is("++") || toks[m].is("--")) && m + 1 < end
            && toks[m + 1].kind == TokKind::Identifier
            && (m == begin
                || !(toks[m - 1].kind == TokKind::Identifier
                     || toks[m - 1].is(")") || toks[m - 1].is("]")))) {
            base_idx = m + 1;
        } else if (toks[m].kind == TokKind::Identifier && m > begin
                   && !(toks[m - 1].is(".") || toks[m - 1].is("->")
                        || toks[m - 1].is("::"))) {
            base_idx = m;
        }
        if (base_idx == kNpos)
            continue;
        const std::string base = toks[base_idx].text;

        // Walk the access chain: subscripts and member selections.
        std::size_t idx = base_idx + 1;
        bool indexed_by_loop = false;
        std::string last_member;
        bool chain = true;
        while (chain && idx < end) {
            if (toks[idx].is("[")) {
                const std::size_t e = matchPair(toks, idx, "[", "]");
                if (e == kNpos || e >= end)
                    break;
                for (std::size_t k = idx + 1; k < e; ++k) {
                    if (toks[k].isIdent(loop_var.c_str()))
                        indexed_by_loop = true;
                }
                idx = e + 1;
            } else if ((toks[idx].is(".") || toks[idx].is("->"))
                       && idx + 1 < end
                       && toks[idx + 1].kind == TokKind::Identifier) {
                last_member = toks[idx + 1].text;
                idx += 2;
            } else {
                chain = false;
            }
        }
        if (idx >= end)
            continue;

        bool mutation = false;
        if (isAssignOp(toks[idx]) || toks[idx].is("++")
            || toks[idx].is("--")) {
            // Member-call results (`a.size() = `) cannot appear here
            // in valid code, so any chain ending in an assign op is a
            // write to `base`'s storage.
            mutation = true;
        } else if (toks[idx].is("(") && isMutatingMethod(last_member)) {
            mutation = true;
        }
        if (!mutation || indexed_by_loop || locals.count(base))
            continue;
        if (!default_ref && ref_captures.count(base) == 0)
            continue;
        r.add(f, toks[base_idx].line, kId, Severity::Error,
              "parallel lambda mutates by-reference capture '" + base
                  + "' not indexed by the loop variable '" + loop_var
                  + "'",
              "write only to a slot owned by the task's index and "
              "reduce serially after the loop");
    }
}

/**
 * Raw std::thread spawns outside the blessed homes. The deterministic
 * pool (src/util/parallel) and the serving front end's planned worker
 * team (src/serve/frontend) are the only places allowed to own
 * threads: anywhere else, a raw spawn bypasses both the bit-identical
 * scheduling contract and GCM_THREADS sizing. Queries like
 * std::thread::hardware_concurrency() don't spawn and are fine;
 * tests/ may spawn freely (concurrency tests need antagonist
 * threads).
 */
void
checkRawThreadSpawns(const SourceFile &f, LintReport &r)
{
    static const char *kId = "parallel-capture";
    if (pathHasDir(f.path, "tests"))
        return;
    if (pathContains(f.path, "src/util/parallel")
        || pathContains(f.path, "src/serve/frontend")) {
        return;
    }
    const auto &toks = f.tokens;
    for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
        if (!(toks[i].isIdent("std") && toks[i + 1].is("::")
              && toks[i + 2].isIdent("thread"))) {
            continue;
        }
        // `std::thread::hardware_concurrency()` and other statics are
        // queries, not spawns.
        if (i + 3 < toks.size() && toks[i + 3].is("::"))
            continue;
        r.add(f, toks[i].line, kId, Severity::Error,
              "raw std::thread use outside src/util/parallel and the "
              "serving front end",
              "route parallel work through parallelFor/parallelMap "
              "or the ServerFrontEnd worker team; a deliberate "
              "exception needs // gcm-lint: allow(parallel-capture)");
    }
}

void
checkParallelCapture(const SourceFile &f, LintReport &r)
{
    checkRawThreadSpawns(f, r);
    const auto &toks = f.tokens;
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
        if (!(toks[i].isIdent("parallelFor")
              || toks[i].isIdent("parallelMap"))
            || !toks[i + 1].is("(")) {
            continue;
        }
        const std::size_t close = matchPair(toks, i + 1, "(", ")");
        if (close == kNpos)
            continue;
        // Locate the lambda argument's capture list.
        std::size_t lb = kNpos;
        for (std::size_t j = i + 2; j < close; ++j) {
            if (toks[j].is("[")) {
                lb = j;
                break;
            }
        }
        if (lb == kNpos)
            continue;
        const std::size_t rb = matchPair(toks, lb, "[", "]");
        if (rb == kNpos || rb >= close)
            continue;
        bool default_ref = false;
        std::set<std::string> ref_captures;
        for (std::size_t j = lb + 1; j < rb; ++j) {
            if (!toks[j].is("&"))
                continue;
            if (j + 1 < rb
                && toks[j + 1].kind == TokKind::Identifier) {
                ref_captures.insert(toks[j + 1].text);
            } else {
                default_ref = true;
            }
        }
        if (!default_ref && ref_captures.empty())
            continue;
        // Parameter list: the loop index is the last parameter name.
        std::size_t k = rb + 1;
        std::string loop_var;
        if (k < close && toks[k].is("(")) {
            const std::size_t pc = matchPair(toks, k, "(", ")");
            if (pc == kNpos || pc >= close)
                continue;
            for (std::size_t j = k + 1; j < pc; ++j) {
                if (toks[j].kind == TokKind::Identifier)
                    loop_var = toks[j].text;
            }
            k = pc + 1;
        }
        if (loop_var.empty())
            continue;
        while (k < close && !toks[k].is("{"))
            ++k;
        if (k >= close)
            continue;
        const std::size_t bend = matchPair(toks, k, "{", "}");
        if (bend == kNpos)
            continue;
        analyzeParallelBody(f, r, k + 1, bend, loop_var, default_ref,
                            ref_captures);
    }
}

// ---------------------------------------------------------------------
// throw-discipline: only GcmError (and subclasses) may be thrown
// outside tests/.
// ---------------------------------------------------------------------

void
checkThrowDiscipline(const SourceFile &f, LintReport &r)
{
    static const char *kId = "throw-discipline";
    if (pathHasDir(f.path, "tests"))
        return;
    const auto &toks = f.tokens;
    for (std::size_t i = 0; i < toks.size(); ++i) {
        if (!toks[i].isIdent("throw") || i + 1 >= toks.size())
            continue;
        const Token &next = toks[i + 1];
        if (next.is(";")) // bare rethrow inside a catch
            continue;
        if (next.kind == TokKind::Identifier) {
            // Walk the qualified-id (ns::ns::Type) to its last
            // component; GcmError and *Error subclasses pass.
            std::size_t j = i + 1;
            while (j + 2 < toks.size() && toks[j + 1].is("::")
                   && toks[j + 2].kind == TokKind::Identifier) {
                j += 2;
            }
            if (endsWith(toks[j].text, "Error"))
                continue;
        }
        r.add(f, toks[i].line, kId, Severity::Error,
              "throw of a non-GcmError type crosses the library's "
              "error boundary",
              "raise user-facing failures with fatal()/GcmError "
              "(subclasses named *Error are accepted); use "
              "GCM_ASSERT for internal invariants");
    }
}

// ---------------------------------------------------------------------
// obs-hot-loop: obs calls inside innermost src/ml | src/dnn |
// src/search | src/fleet loops must go through the sampled/guarded
// macros.
// ---------------------------------------------------------------------

void
checkObsHotLoop(const SourceFile &f, LintReport &r)
{
    static const char *kId = "obs-hot-loop";
    if (!pathContains(f.path, "src/ml/")
        && !pathContains(f.path, "src/dnn/")
        && !pathContains(f.path, "src/search/")
        && !pathContains(f.path, "src/fleet/")) {
        return;
    }
    const auto &toks = f.tokens;

    // Ranges covered by the sanctioned wrapper macros.
    std::vector<std::pair<std::size_t, std::size_t>> exempt;
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
        if ((toks[i].isIdent("GCM_OBS_GUARDED")
             || toks[i].isIdent("GCM_OBS_SAMPLED"))
            && toks[i + 1].is("(")) {
            const std::size_t e = matchPair(toks, i + 1, "(", ")");
            if (e != kNpos)
                exempt.emplace_back(i, e);
        }
    }
    const auto exempted = [&](std::size_t idx) {
        for (const auto &[b, e] : exempt) {
            if (idx >= b && idx <= e)
                return true;
        }
        return false;
    };

    // Loop bodies: keyword index plus [begin, end) token range.
    struct LoopBody
    {
        std::size_t kw;
        std::size_t begin;
        std::size_t end;
    };
    std::vector<LoopBody> loops;
    for (std::size_t i = 0; i < toks.size(); ++i) {
        std::size_t body = kNpos;
        if ((toks[i].isIdent("for") || toks[i].isIdent("while"))
            && i + 1 < toks.size() && toks[i + 1].is("(")) {
            const std::size_t pc = matchPair(toks, i + 1, "(", ")");
            if (pc == kNpos)
                continue;
            body = pc + 1;
        } else if (toks[i].isIdent("do") && i + 1 < toks.size()
                   && toks[i + 1].is("{")) {
            body = i + 1;
        } else {
            continue;
        }
        if (body < toks.size() && toks[body].is("{")) {
            const std::size_t be = matchPair(toks, body, "{", "}");
            if (be != kNpos)
                loops.push_back({i, body + 1, be});
        } else {
            std::size_t semi = body;
            while (semi < toks.size() && !toks[semi].is(";"))
                ++semi;
            loops.push_back({i, body, semi});
        }
    }

    for (const LoopBody &loop : loops) {
        // Innermost: no nested loop keyword and no parallel primitive
        // (which expands to a loop) inside the body.
        bool innermost = true;
        for (const LoopBody &other : loops) {
            if (other.kw > loop.begin && other.kw < loop.end)
                innermost = false;
        }
        for (std::size_t m = loop.begin;
             innermost && m < loop.end; ++m) {
            if (toks[m].isIdent("parallelFor")
                || toks[m].isIdent("parallelMap")) {
                innermost = false;
            }
        }
        if (!innermost)
            continue;
        for (std::size_t m = loop.begin; m < loop.end; ++m) {
            const Token &t = toks[m];
            const bool obs_call = t.isIdent("counterAdd")
                || t.isIdent("gaugeSet")
                || t.isIdent("histogramObserve")
                || t.isIdent("TraceSpan");
            if (!obs_call || exempted(m))
                continue;
            r.add(f, t.line, kId, Severity::Error,
                  "obs instrumentation '" + t.text
                      + "' inside an innermost src/ml|src/dnn|"
                        "src/search|src/fleet loop perturbs the "
                        "hot path",
                  "hoist it out of the loop, or wrap the call in "
                  "GCM_OBS_GUARDED(...) / GCM_OBS_SAMPLED(...) "
                  "(src/obs/obs.hh)");
        }
    }
}

// ---------------------------------------------------------------------
// header-hygiene: include guards + no `using namespace` in headers.
// ---------------------------------------------------------------------

/** Directive name and remainder with '#'-adjacent spaces stripped. */
std::pair<std::string, std::string>
splitDirective(const std::string &pp)
{
    std::size_t i = 0;
    if (i < pp.size() && pp[i] == '#')
        ++i;
    while (i < pp.size() && pp[i] == ' ')
        ++i;
    std::size_t j = i;
    while (j < pp.size() && pp[j] != ' ')
        ++j;
    std::size_t k = j;
    while (k < pp.size() && pp[k] == ' ')
        ++k;
    return {pp.substr(i, j - i), pp.substr(k)};
}

void
checkHeaderHygiene(const SourceFile &f, LintReport &r)
{
    static const char *kId = "header-hygiene";
    if (!f.isHeader())
        return;
    const auto &toks = f.tokens;
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
        if (toks[i].isIdent("using")
            && toks[i + 1].isIdent("namespace")) {
            r.add(f, toks[i].line, kId, Severity::Error,
                  "`using namespace` in a header leaks into every "
                  "includer",
                  "qualify names or move the using-directive into a "
                  ".cc file");
        }
    }
    bool guarded = false;
    std::string pending_ifndef;
    for (const Token &t : toks) {
        if (t.kind != TokKind::Preprocessor)
            continue;
        const auto [name, rest] = splitDirective(t.text);
        if (name == "pragma" && rest == "once") {
            guarded = true;
            break;
        }
        if (name == "ifndef") {
            pending_ifndef = rest;
        } else if (name == "define" && !pending_ifndef.empty()) {
            // "#define GUARD" or "#define GUARD 1"
            if (rest == pending_ifndef
                || rest.rfind(pending_ifndef + " ", 0) == 0) {
                guarded = true;
                break;
            }
            pending_ifndef.clear();
        } else {
            pending_ifndef.clear();
        }
    }
    if (!guarded) {
        r.add(f, 1, kId, Severity::Error,
              "header has neither an include guard nor #pragma once",
              "open with #ifndef GCM_<PATH>_HH / #define "
              "GCM_<PATH>_HH and close with #endif");
    }
}

} // namespace

namespace detail
{

void
registerBuiltinChecks(CheckRegistry &registry)
{
    registry.registerCheck(
        "determinism",
        "no std::rand/random_device/time()/system_clock/std engines; "
        "randomness flows from seeded Rng::fork streams",
        checkDeterminism);
    registry.registerCheck(
        "unordered-iter",
        "no range-for over unordered containers in files that write "
        "output, aggregate floats or serialize",
        checkUnorderedIter);
    registry.registerCheck(
        "parallel-capture",
        "parallelFor/parallelMap lambdas write only task-owned state "
        "and never lock; raw std::thread spawns stay inside "
        "src/util/parallel and src/serve/frontend",
        checkParallelCapture);
    registry.registerCheck(
        "throw-discipline",
        "only GcmError (and *Error subclasses) are thrown outside "
        "tests/",
        checkThrowDiscipline);
    registry.registerCheck(
        "obs-hot-loop",
        "obs calls in innermost src/ml|src/dnn|src/search|src/fleet "
        "loops go through GCM_OBS_GUARDED/GCM_OBS_SAMPLED",
        checkObsHotLoop);
    registry.registerCheck(
        "header-hygiene",
        "headers carry include guards and never `using namespace`",
        checkHeaderHygiene);
}

} // namespace detail

} // namespace gcm::lint

/**
 * @file
 * Source-level check registry for gcm-lint.
 *
 * The shape mirrors src/verify's LintRegistry — named, documented
 * passes registered at construction, runnable as a whole or by name —
 * but over tokenized source files (lint::SourceFile) instead of graph
 * IR. Each check appends Findings carrying file:line, check id,
 * severity and a fix hint; the registry applies the file's
 * suppression table (`// gcm-lint: allow(<id>)`) before a finding
 * lands in the report, counting what it dropped.
 *
 * The six built-in checks encode the invariants every PR so far has
 * relied on (see DESIGN.md §11 for the catalog):
 *
 *   determinism       no ambient randomness or wall-clock seeding
 *   unordered-iter    no unordered-container iteration feeding output
 *   parallel-capture  parallel lambdas only write task-owned state
 *   throw-discipline  only GcmError (subclasses) cross API boundaries
 *   obs-hot-loop      obs calls in innermost ml/dnn loops are guarded
 *   header-hygiene    include guards present, no using-namespace
 *
 * Registering a custom check:
 *
 *   CheckRegistry::instance().registerCheck(
 *       "my-check", "what it enforces",
 *       [](const SourceFile &f, LintReport &r) { ... });
 */

#ifndef GCM_LINT_CHECK_HH
#define GCM_LINT_CHECK_HH

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "lint/lexer.hh"

namespace gcm::lint
{

/** How bad a finding is; Error findings gate CI. */
enum class Severity : std::uint8_t
{
    Note,
    Warning,
    Error,
};

/** Stable display name ("note", "warning", "error"). */
const char *severityName(Severity severity);

/** One finding raised by a check. */
struct Finding
{
    std::string file;
    int line = 0;
    /** Id of the check that raised it (stable, kebab-case). */
    std::string check;
    Severity severity = Severity::Error;
    std::string message;
    /** How to fix or legitimately suppress the finding. */
    std::string hint;

    /** One-line rendering: "file:12: error [check-id] message". */
    std::string str() const;
};

/** Findings from one analyzer run, plus scan accounting. */
class LintReport
{
  public:
    /**
     * Record a finding unless `file` suppresses `check` on `line`
     * (suppressed findings are counted, not stored).
     */
    void add(const SourceFile &file, int line, std::string check,
             Severity severity, std::string message, std::string hint);

    /** Note that one more file was scanned. */
    void addScannedFile() { ++files_scanned_; }

    const std::vector<Finding> &findings() const { return findings_; }
    bool empty() const { return findings_.empty(); }

    std::size_t count(Severity severity) const;
    bool hasErrors() const { return count(Severity::Error) > 0; }
    std::size_t suppressedCount() const { return suppressed_; }
    std::size_t filesScanned() const { return files_scanned_; }

    /** Order findings by (file, line, check) for stable output. */
    void sort();

    /** Multi-line human rendering, one finding per line + summary. */
    std::string str() const;

    /** gcm-lint/v1 JSON report (schema in DESIGN.md §11). */
    std::string json() const;

  private:
    std::vector<Finding> findings_;
    std::size_t suppressed_ = 0;
    std::size_t files_scanned_ = 0;
};

/** Callable body of a check; appends findings to the report. */
using CheckFn = std::function<void(const SourceFile &, LintReport &)>;

/** A named, documented source check. */
struct SourceCheck
{
    std::string id;
    std::string description;
    CheckFn fn;
};

/** Process-wide registry; built-ins register at construction. */
class CheckRegistry
{
  public:
    static CheckRegistry &instance();

    /** Add a check. Throws GcmError on duplicate ids. */
    void registerCheck(std::string id, std::string description,
                       CheckFn fn);

    const std::vector<SourceCheck> &checks() const { return checks_; }

    /** Lookup by id; nullptr when absent. */
    const SourceCheck *find(const std::string &id) const;

    /** Run every registered check over one file. */
    void run(const SourceFile &file, LintReport &report) const;

    /** Run a subset by id. Throws GcmError on unknown ids. */
    void run(const SourceFile &file, LintReport &report,
             const std::vector<std::string> &ids) const;

  private:
    CheckRegistry();

    std::vector<SourceCheck> checks_;
};

namespace detail
{

/** Registers the six built-in checks (called once by the registry). */
void registerBuiltinChecks(CheckRegistry &registry);

} // namespace detail

/**
 * Collect .cc/.hh sources under each path (files are taken verbatim,
 * directories walked recursively), sorted for deterministic output.
 * Directories named lint_fixtures (deliberately-bad test inputs) or
 * starting with "build"/"check-build" (CMake trees) are skipped.
 * Throws GcmError when a path does not exist.
 */
std::vector<std::string>
collectSources(const std::vector<std::string> &paths);

/**
 * Lex and run checks (all registered when `ids` is empty) over every
 * file; returns the sorted report.
 */
LintReport lintPaths(const std::vector<std::string> &paths,
                     const std::vector<std::string> &ids = {});

} // namespace gcm::lint

#endif // GCM_LINT_CHECK_HH

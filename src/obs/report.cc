#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>

#include "obs/registry.hh"
#include "util/error.hh"

namespace gcm::obs
{

namespace
{

void
appendEscaped(std::ostream &os, const std::string &s)
{
    os << '"';
    for (char c : s) {
        switch (c) {
          case '"': os << "\\\""; break;
          case '\\': os << "\\\\"; break;
          case '\n': os << "\\n"; break;
          case '\t': os << "\\t"; break;
          case '\r': os << "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                os << buf;
            } else {
                os << c;
            }
        }
    }
    os << '"';
}

void
emitSpan(std::ostream &os, const detail::SpanNode &node, int indent)
{
    const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
    os << pad << "{\"name\": ";
    appendEscaped(os, node.name);
    os << ", \"count\": " << node.count
       << ", \"total_ms\": " << node.total_ms << ", \"children\": [";
    if (node.children.empty()) {
        os << "]}";
        return;
    }
    os << "\n";
    bool first = true;
    for (const auto &[name, child] : node.children) {
        if (!first)
            os << ",\n";
        first = false;
        emitSpan(os, *child, indent + 1);
    }
    os << "\n" << pad << "]}";
}

} // namespace

std::string
reportJson()
{
    detail::Registry &reg = detail::registry();
    std::lock_guard<std::mutex> lock(reg.mu);
    std::ostringstream os;
    os.precision(std::numeric_limits<double>::max_digits10);
    os << "{\n";
    os << "  \"schema\": \"gcm-perf-report/v1\",\n";

    os << "  \"counters\": {";
    bool first = true;
    for (const auto &[name, value] : reg.counters) {
        os << (first ? "\n    " : ",\n    ");
        first = false;
        appendEscaped(os, name);
        os << ": " << value;
    }
    os << (first ? "},\n" : "\n  },\n");

    os << "  \"gauges\": {";
    first = true;
    for (const auto &[name, value] : reg.gauges) {
        os << (first ? "\n    " : ",\n    ");
        first = false;
        appendEscaped(os, name);
        os << ": " << value;
    }
    os << (first ? "},\n" : "\n  },\n");

    os << "  \"histograms\": {";
    first = true;
    for (const auto &[name, h] : reg.histograms) {
        os << (first ? "\n    " : ",\n    ");
        first = false;
        appendEscaped(os, name);
        os << ": {\"bounds_ms\": [";
        for (std::size_t i = 0;
             i + 1 < kNumHistogramBuckets; ++i) {
            if (i)
                os << ", ";
            os << kHistogramBounds[i];
        }
        os << "], \"counts\": [";
        for (std::size_t i = 0; i < h.counts.size(); ++i) {
            if (i)
                os << ", ";
            os << h.counts[i];
        }
        os << "], \"count\": " << h.count
           << ", \"sum_ms\": " << h.sum_ms << "}";
    }
    os << (first ? "},\n" : "\n  },\n");

    os << "  \"spans\": [";
    first = true;
    for (const auto &[name, child] : reg.root.children) {
        os << (first ? "\n" : ",\n");
        first = false;
        emitSpan(os, *child, 2);
    }
    os << (first ? "]\n" : "\n  ]\n");
    os << "}\n";
    return os.str();
}

void
writeReport(const std::string &path)
{
    std::ofstream os(path);
    if (!os)
        fatal("obs::writeReport: cannot open ", path, " for writing");
    os << reportJson();
    if (!os)
        fatal("obs::writeReport: write to ", path, " failed");
}

} // namespace gcm::obs

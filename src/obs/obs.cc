#include "obs/obs.hh"

#include <cstdlib>
#include <cstring>
#include <vector>

#include "obs/registry.hh"

namespace gcm::obs
{

namespace detail
{

namespace
{

bool
envEnabled()
{
    const char *env = std::getenv("GCM_OBS");
    return env != nullptr && *env != '\0' && std::strcmp(env, "0") != 0;
}

/**
 * Per-thread span context. The stack holds pointers into the global
 * tree (stable: nodes are never deleted while collection runs); base
 * is the inherited parent installed by SpanParentScope for pool
 * workers. Thread-local, so unsynchronized access is race-free.
 */
struct ThreadContext
{
    std::vector<SpanNode *> stack;
    SpanNode *base = nullptr;
};

ThreadContext &
threadContext()
{
    thread_local ThreadContext ctx;
    return ctx;
}

} // namespace

std::atomic<bool> g_enabled{envEnabled()};

Registry &
registry()
{
    static Registry reg;
    return reg;
}

void *
openSpan(const char *name)
{
    ThreadContext &ctx = threadContext();
    Registry &reg = registry();
    std::lock_guard<std::mutex> lock(reg.mu);
    SpanNode *parent = !ctx.stack.empty() ? ctx.stack.back()
                       : ctx.base != nullptr ? ctx.base
                                             : &reg.root;
    auto &slot = parent->children[name];
    if (!slot) {
        slot = std::make_unique<SpanNode>();
        slot->name = name;
    }
    ctx.stack.push_back(slot.get());
    return slot.get();
}

void
closeSpan(void *node, double elapsed_ms)
{
    ThreadContext &ctx = threadContext();
    Registry &reg = registry();
    std::lock_guard<std::mutex> lock(reg.mu);
    auto *span = static_cast<SpanNode *>(node);
    span->count += 1;
    span->total_ms += elapsed_ms;
    // RAII guarantees LIFO destruction per thread, so the handle is
    // the top of this thread's stack.
    if (!ctx.stack.empty() && ctx.stack.back() == span)
        ctx.stack.pop_back();
}

} // namespace detail

void
setEnabled(bool on)
{
    detail::g_enabled.store(on, std::memory_order_relaxed);
}

void
counterAdd(const std::string &name, std::uint64_t delta)
{
    if (!enabled())
        return;
    detail::Registry &reg = detail::registry();
    std::lock_guard<std::mutex> lock(reg.mu);
    reg.counters[name] += delta;
}

std::uint64_t
counterValue(const std::string &name)
{
    detail::Registry &reg = detail::registry();
    std::lock_guard<std::mutex> lock(reg.mu);
    const auto it = reg.counters.find(name);
    return it == reg.counters.end() ? 0 : it->second;
}

void
gaugeSet(const std::string &name, double value)
{
    if (!enabled())
        return;
    detail::Registry &reg = detail::registry();
    std::lock_guard<std::mutex> lock(reg.mu);
    reg.gauges[name] = value;
}

void
histogramObserve(const std::string &name, double ms)
{
    if (!enabled())
        return;
    std::size_t bucket = kNumHistogramBuckets - 1;
    for (std::size_t i = 0; i + 1 < kNumHistogramBuckets; ++i) {
        if (ms <= kHistogramBounds[i]) {
            bucket = i;
            break;
        }
    }
    detail::Registry &reg = detail::registry();
    std::lock_guard<std::mutex> lock(reg.mu);
    detail::Histogram &h = reg.histograms[name];
    h.counts[bucket] += 1;
    h.count += 1;
    h.sum_ms += ms;
}

void *
currentSpanHandle()
{
    const detail::ThreadContext &ctx = detail::threadContext();
    if (!ctx.stack.empty())
        return ctx.stack.back();
    return ctx.base;
}

SpanParentScope::SpanParentScope(void *parent)
{
    detail::ThreadContext &ctx = detail::threadContext();
    saved_ = ctx.base;
    ctx.base = static_cast<detail::SpanNode *>(parent);
}

SpanParentScope::~SpanParentScope()
{
    detail::threadContext().base =
        static_cast<detail::SpanNode *>(saved_);
}

void
reset()
{
    detail::Registry &reg = detail::registry();
    std::lock_guard<std::mutex> lock(reg.mu);
    reg.counters.clear();
    reg.gauges.clear();
    reg.histograms.clear();
    reg.root.children.clear();
    reg.root.count = 0;
    reg.root.total_ms = 0.0;
}

} // namespace gcm::obs

/**
 * @file
 * Observability layer: metrics registry + hierarchical trace spans.
 *
 * Every hot path in the library (GBT rounds, tree histogram/split
 * phases, the campaign device grid, signature scans, CV folds, the
 * worker pool) is instrumented with named counters, gauges,
 * fixed-bucket latency histograms and RAII TraceSpans that assemble
 * an aggregated timing tree. A run's collected state serializes to a
 * machine-readable JSON perf report ("gcm-perf-report/v1", see
 * DESIGN.md §8) so perf changes across PRs have a before/after
 * artifact.
 *
 * Zero-perturbation contract
 * --------------------------
 * Observability is compiled in but OFF by default; it is enabled by
 * the GCM_OBS environment variable (any value but "" or "0") or
 * setEnabled(true) (the `gcm` tool's --trace-out flag does this).
 * Enabling it must leave every model/campaign output bit-identical:
 * the layer only reads the steady clock and mutates its own registry —
 * it never draws from an Rng, never reorders work, and never feeds a
 * value back into computation. tests/test_obs_determinism.cc enforces
 * this at 1 and 8 threads.
 *
 * Threading
 * ---------
 * Collection uses thread-local state merged into the global registry
 * at span close (or per call, under one mutex, for counters emitted
 * outside any span — hot paths batch those locally first, see
 * util/parallel.cc). All shared state is mutex-guarded so the TSan
 * lane stays clean. When disabled, every entry point is a single
 * relaxed atomic load.
 *
 * Span parentage across the pool: a worker executing chunks for a
 * batch inherits the submitting thread's open span as the base parent
 * (SpanParentScope), so e.g. per-device campaign spans nest under
 * campaign.grid even though they run on pool threads.
 *
 * setEnabled()/reset() must not be called concurrently with
 * instrumented work in flight (they are test/CLI entry points, not
 * hot-path API).
 */

#ifndef GCM_OBS_OBS_HH
#define GCM_OBS_OBS_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

namespace gcm::obs
{

namespace detail
{

/** Global on/off switch; initialized from the GCM_OBS env var. */
extern std::atomic<bool> g_enabled;

/** Open a span named `name` under the current thread's span context;
 *  returns an opaque node handle to pass to closeSpan. */
void *openSpan(const char *name);

/** Fold `elapsed_ms` into the node and pop the thread's span stack. */
void closeSpan(void *node, double elapsed_ms);

} // namespace detail

/** Whether collection is on. Hot-path check: one relaxed load. */
inline bool
enabled()
{
    return detail::g_enabled.load(std::memory_order_relaxed);
}

/** Turn collection on/off at runtime (overrides GCM_OBS). */
void setEnabled(bool on);

/** Add `delta` to the named monotonic counter. No-op when disabled. */
void counterAdd(const std::string &name, std::uint64_t delta = 1);

/** Set the named gauge to its latest value. No-op when disabled. */
void gaugeSet(const std::string &name, double value);

/**
 * Read the named counter's current value (0 when never bumped or
 * collection was off). For report emitters (e.g. gcm-search/v1) that
 * fold counters into their own output instead of dumpText().
 */
std::uint64_t counterValue(const std::string &name);

/**
 * Record one observation (in milliseconds) into the named fixed-bucket
 * latency histogram. All histograms share the same log-spaced bucket
 * bounds (kHistogramBounds + one overflow bucket). No-op when disabled.
 */
void histogramObserve(const std::string &name, double ms);

/** Shared histogram bucket upper bounds, in milliseconds. */
inline constexpr double kHistogramBounds[] = {
    0.001, 0.01, 0.1, 1.0, 10.0, 100.0, 1000.0, 10000.0,
};
inline constexpr std::size_t kNumHistogramBuckets =
    sizeof(kHistogramBounds) / sizeof(kHistogramBounds[0]) + 1;

/**
 * RAII trace span. Opening nests under the thread's innermost open
 * span (or the inherited batch parent, or the root); closing adds the
 * elapsed wall time to the aggregated (name-path keyed) timing tree.
 * When collection is disabled both ends are no-ops and the clock is
 * never read.
 */
class TraceSpan
{
  public:
    explicit TraceSpan(const char *name)
    {
        if (!enabled())
            return;
        node_ = detail::openSpan(name);
        start_ = std::chrono::steady_clock::now();
    }

    ~TraceSpan()
    {
        if (!node_)
            return;
        const std::chrono::duration<double, std::milli> dt =
            std::chrono::steady_clock::now() - start_;
        detail::closeSpan(node_, dt.count());
    }

    TraceSpan(const TraceSpan &) = delete;
    TraceSpan &operator=(const TraceSpan &) = delete;

  private:
    void *node_ = nullptr;
    std::chrono::steady_clock::time_point start_;
};

/**
 * Handle of the calling thread's innermost open span (its inherited
 * base when no span is open; null at the root). Captured by the
 * worker pool when a batch is posted.
 */
void *currentSpanHandle();

/**
 * Install `parent` as the calling thread's base span for the scope's
 * lifetime: spans opened with an empty stack nest under it. Used by
 * pool workers so chunk-side spans attach to the submitting thread's
 * span tree. Restores the previous base on destruction.
 */
class SpanParentScope
{
  public:
    explicit SpanParentScope(void *parent);
    ~SpanParentScope();

    SpanParentScope(const SpanParentScope &) = delete;
    SpanParentScope &operator=(const SpanParentScope &) = delete;

  private:
    void *saved_;
};

/**
 * Serialize the collected state as a gcm-perf-report/v1 JSON document
 * (schema in DESIGN.md §8). Deterministic key order; timing values
 * are, of course, wall-clock dependent.
 */
std::string reportJson();

/** Write reportJson() to a file. Throws GcmError on I/O failure. */
void writeReport(const std::string &path);

/**
 * Drop all collected metrics and spans (the enabled flag is kept).
 * Must not be called while any span is open on any thread.
 */
void reset();

} // namespace gcm::obs

/**
 * Hot-loop instrumentation wrappers sanctioned by gcm-lint's
 * obs-hot-loop check (DESIGN.md §11): an obs call inside an innermost
 * src/ml | src/dnn loop must go through one of these so the disabled
 * path is provably a single branch and the enabled path's cost is
 * explicit at the call site.
 *
 * GCM_OBS_GUARDED(stmt) runs `stmt` only when collection is on:
 *
 *     GCM_OBS_GUARDED(obs::counterAdd("tree.nodes"));
 *
 * GCM_OBS_SAMPLED(name, iter, period) amortizes a per-iteration
 * counter by recording `period` every `period`-th iteration, keeping
 * the counter's expected total exact while touching the registry
 * 1/period as often:
 *
 *     GCM_OBS_SAMPLED("gbt.rows", i, 1024);
 */
#define GCM_OBS_GUARDED(stmt)                                             \
    do {                                                                  \
        if (::gcm::obs::enabled()) {                                      \
            stmt;                                                         \
        }                                                                 \
    } while (0)

#define GCM_OBS_SAMPLED(name, iter, period)                               \
    do {                                                                  \
        if (::gcm::obs::enabled() && ((iter) % (period)) == 0) {          \
            ::gcm::obs::counterAdd((name), (period));                     \
        }                                                                 \
    } while (0)

#endif // GCM_OBS_OBS_HH

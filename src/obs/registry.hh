/**
 * @file
 * Internal shared state of the observability layer: the metric maps
 * and the aggregated span tree. Not installed API — include obs.hh.
 * Everything here is guarded by Registry::mu except where noted.
 */

#ifndef GCM_OBS_REGISTRY_HH
#define GCM_OBS_REGISTRY_HH

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "obs/obs.hh"

namespace gcm::obs::detail
{

/** One fixed-bucket latency histogram (bounds in kHistogramBounds). */
struct Histogram
{
    std::array<std::uint64_t, kNumHistogramBuckets> counts{};
    std::uint64_t count = 0;
    double sum_ms = 0.0;
};

/**
 * Aggregated span-tree node, keyed by the name path from the root.
 * Nodes are owned by their parent and never deleted while collection
 * is live, so raw pointers to them are stable handles.
 */
struct SpanNode
{
    std::string name;
    std::uint64_t count = 0;
    double total_ms = 0.0;
    std::map<std::string, std::unique_ptr<SpanNode>> children;
};

struct Registry
{
    std::mutex mu;
    std::map<std::string, std::uint64_t> counters;
    std::map<std::string, double> gauges;
    std::map<std::string, Histogram> histograms;
    /** Root sentinel; its children are the top-level spans. */
    SpanNode root;
};

/** The process-wide registry singleton. */
Registry &registry();

} // namespace gcm::obs::detail

#endif // GCM_OBS_REGISTRY_HH

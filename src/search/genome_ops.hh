/**
 * @file
 * Mutation, crossover and repair over dnn::ArchGenome — the variation
 * operators of the architecture search (search.hh).
 *
 * Every operator is a pure function of (inputs, Rng state): given the
 * same genome(s) and an Rng forked from the same stream, the result
 * is bit-identical on every platform and at any thread count. Outputs
 * always satisfy dnn::validateGenome for the given space — repair is
 * built into the operators, so no malformed candidate can reach
 * buildGenome or the cost model (GraphVerifier re-checks anyway).
 */

#ifndef GCM_SEARCH_GENOME_OPS_HH
#define GCM_SEARCH_GENOME_OPS_HH

#include "dnn/generator.hh"
#include "util/rng.hh"

namespace gcm::search
{

/**
 * Clamp a genome into the space: channel counts rounded to multiples
 * of 8 in [8, max_channels], kernels odd and positive, expansions
 * >= 1, stage/block counts folded into the space's bounds (excess
 * stages/blocks dropped from the tail, missing ones cloned from the
 * last survivor). Idempotent; never draws randomness.
 */
void repairGenome(dnn::ArchGenome &genome, const dnn::SearchSpace &space);

/**
 * Return a mutated copy: one randomly chosen edit (stage width /
 * kernel / activation, block kind / expansion / squeeze-excite /
 * residual, add/remove block or stage, stem or head change), then
 * repair. The result always differs from the input in at most one
 * gene group and always validates.
 */
dnn::ArchGenome mutateGenome(const dnn::ArchGenome &genome,
                             const dnn::SearchSpace &space, Rng &rng);

/**
 * One-point stage crossover: the child takes a prefix of a's stages
 * and a suffix of b's (cut points drawn independently), the stem from
 * a and the head from b, then repairs. Degenerate cuts reproduce a
 * parent — harmless, selection filters duplicates.
 */
dnn::ArchGenome crossoverGenomes(const dnn::ArchGenome &a,
                                 const dnn::ArchGenome &b,
                                 const dnn::SearchSpace &space, Rng &rng);

} // namespace gcm::search

#endif // GCM_SEARCH_GENOME_OPS_HH

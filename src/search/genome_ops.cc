#include "search/genome_ops.hh"

#include <algorithm>
#include <cstddef>

namespace gcm::search
{

namespace
{

template <typename T>
T
pick(Rng &rng, const std::vector<T> &choices)
{
    return choices[static_cast<std::size_t>(rng.uniformInt(
        0, static_cast<std::int64_t>(choices.size()) - 1))];
}

dnn::OpKind
pickActivation(Rng &rng)
{
    const double r = rng.uniform();
    if (r < 0.45)
        return dnn::OpKind::ReLU;
    if (r < 0.8)
        return dnn::OpKind::ReLU6;
    return dnn::OpKind::HSwish;
}

dnn::BlockGene
sampleBlock(const dnn::SearchSpace &space, Rng &rng)
{
    dnn::BlockGene bg;
    const double kind_r = rng.uniform();
    if (kind_r < space.p_mbconv) {
        bg.kind = dnn::BlockKind::MBConv;
        bg.expansion = pick(rng, space.expansion_choices);
        bg.se = rng.bernoulli(space.se_probability);
        bg.residual = rng.bernoulli(space.residual_probability);
    } else if (kind_r < space.p_mbconv + space.p_dwseparable) {
        bg.kind = dnn::BlockKind::DwSeparable;
    } else {
        bg.kind = dnn::BlockKind::PlainConv;
    }
    return bg;
}

dnn::StageGene
sampleStage(const dnn::SearchSpace &space, std::int32_t prev_channels,
            Rng &rng)
{
    dnn::StageGene sg;
    const auto blocks = static_cast<std::size_t>(rng.uniformInt(
        space.min_blocks_per_stage, space.max_blocks_per_stage));
    const double growth =
        rng.uniform(space.channel_growth_min, space.channel_growth_max);
    sg.channels =
        std::min(dnn::roundChannels(prev_channels * growth),
                 space.max_channels);
    sg.activation = pickActivation(rng);
    sg.kernel = pick(rng, space.kernel_choices);
    sg.blocks.reserve(blocks);
    for (std::size_t i = 0; i < blocks; ++i)
        sg.blocks.push_back(sampleBlock(space, rng));
    return sg;
}

std::int32_t
clampChannels(std::int32_t c, const dnn::SearchSpace &space)
{
    return std::min(dnn::roundChannels(static_cast<double>(c)),
                    space.max_channels);
}

} // namespace

void
repairGenome(dnn::ArchGenome &genome, const dnn::SearchSpace &space)
{
    genome.stem_channels =
        dnn::roundChannels(static_cast<double>(genome.stem_channels));
    genome.head_channels = std::max(genome.head_channels, 0);

    // Fold the stage count into [min_stages, max_stages].
    const auto min_stages = static_cast<std::size_t>(space.min_stages);
    const auto max_stages = static_cast<std::size_t>(space.max_stages);
    if (genome.stages.size() > max_stages)
        genome.stages.resize(max_stages);
    if (genome.stages.empty())
        genome.stages.push_back(dnn::StageGene{});
    while (genome.stages.size() < min_stages)
        genome.stages.push_back(genome.stages.back());

    const auto min_blocks =
        static_cast<std::size_t>(space.min_blocks_per_stage);
    const auto max_blocks =
        static_cast<std::size_t>(space.max_blocks_per_stage);
    for (dnn::StageGene &sg : genome.stages) {
        sg.channels = clampChannels(sg.channels, space);
        if (sg.kernel < 1)
            sg.kernel = 3;
        if (sg.kernel % 2 == 0)
            sg.kernel += 1;
        if (sg.blocks.size() > max_blocks)
            sg.blocks.resize(max_blocks);
        if (sg.blocks.empty())
            sg.blocks.push_back(dnn::BlockGene{});
        while (sg.blocks.size() < min_blocks)
            sg.blocks.push_back(sg.blocks.back());
        for (dnn::BlockGene &bg : sg.blocks)
            bg.expansion = std::max(bg.expansion, 1);
    }
}

dnn::ArchGenome
mutateGenome(const dnn::ArchGenome &genome, const dnn::SearchSpace &space,
             Rng &rng)
{
    dnn::ArchGenome out = genome;
    // Draw the edit kind first, then its operands, so the stream
    // layout is stable whatever the genome shape.
    const std::int64_t op = rng.uniformInt(0, 9);
    const auto stage_at = [&](Rng &r) -> dnn::StageGene & {
        return out.stages[static_cast<std::size_t>(r.uniformInt(
            0, static_cast<std::int64_t>(out.stages.size()) - 1))];
    };
    switch (op) {
      case 0: // stem: width or activation
        if (rng.bernoulli(0.5))
            out.stem_channels = pick(rng, space.stem_channel_choices);
        else
            out.stem_activation = pickActivation(rng);
        break;
      case 1: { // stage width: re-grow from the preceding width
        const auto s = static_cast<std::size_t>(rng.uniformInt(
            0, static_cast<std::int64_t>(out.stages.size()) - 1));
        const std::int32_t prev = s == 0 ? out.stem_channels
                                         : out.stages[s - 1].channels;
        const double growth = rng.uniform(space.channel_growth_min,
                                          space.channel_growth_max);
        out.stages[s].channels =
            std::min(dnn::roundChannels(prev * growth),
                     space.max_channels);
        break;
      }
      case 2: // stage kernel
        stage_at(rng).kernel = pick(rng, space.kernel_choices);
        break;
      case 3: // stage activation
        stage_at(rng).activation = pickActivation(rng);
        break;
      case 4: { // block: resample kind (and MBConv genes)
        dnn::StageGene &sg = stage_at(rng);
        const auto b = static_cast<std::size_t>(rng.uniformInt(
            0, static_cast<std::int64_t>(sg.blocks.size()) - 1));
        sg.blocks[b] = sampleBlock(space, rng);
        break;
      }
      case 5: { // block: MBConv gene tweak (expansion / se / residual)
        dnn::StageGene &sg = stage_at(rng);
        dnn::BlockGene &bg =
            sg.blocks[static_cast<std::size_t>(rng.uniformInt(
                0, static_cast<std::int64_t>(sg.blocks.size()) - 1))];
        const std::int64_t which = rng.uniformInt(0, 2);
        if (which == 0)
            bg.expansion = pick(rng, space.expansion_choices);
        else if (which == 1)
            bg.se = !bg.se;
        else
            bg.residual = !bg.residual;
        break;
      }
      case 6: { // add or remove a block within the stage bounds
        dnn::StageGene &sg = stage_at(rng);
        const bool grow = rng.bernoulli(0.5);
        if (grow
            && sg.blocks.size()
                < static_cast<std::size_t>(space.max_blocks_per_stage)) {
            sg.blocks.push_back(sampleBlock(space, rng));
        } else if (!grow
                   && sg.blocks.size()
                       > static_cast<std::size_t>(
                           space.min_blocks_per_stage)) {
            sg.blocks.pop_back();
        }
        break;
      }
      case 7: { // add or remove a stage within the space bounds
        const bool grow = rng.bernoulli(0.5);
        if (grow
            && out.stages.size()
                < static_cast<std::size_t>(space.max_stages)) {
            out.stages.push_back(sampleStage(
                space, out.stages.back().channels, rng));
        } else if (!grow
                   && out.stages.size()
                       > static_cast<std::size_t>(space.min_stages)) {
            out.stages.pop_back();
        }
        break;
      }
      case 8: // head width (activation resampled when it engages)
        out.head_channels = pick(rng, space.head_channel_choices);
        out.head_activation = pickActivation(rng);
        break;
      default: { // 9: full-stage resample
        const auto s = static_cast<std::size_t>(rng.uniformInt(
            0, static_cast<std::int64_t>(out.stages.size()) - 1));
        const std::int32_t prev = s == 0 ? out.stem_channels
                                         : out.stages[s - 1].channels;
        out.stages[s] = sampleStage(space, prev, rng);
        break;
      }
    }
    repairGenome(out, space);
    return out;
}

dnn::ArchGenome
crossoverGenomes(const dnn::ArchGenome &a, const dnn::ArchGenome &b,
                 const dnn::SearchSpace &space, Rng &rng)
{
    dnn::ArchGenome child;
    child.stem_channels = a.stem_channels;
    child.stem_activation = a.stem_activation;
    child.head_channels = b.head_channels;
    child.head_activation = b.head_activation;
    const auto cut_a = static_cast<std::size_t>(rng.uniformInt(
        1, static_cast<std::int64_t>(a.stages.size())));
    const auto cut_b = static_cast<std::size_t>(rng.uniformInt(
        0, static_cast<std::int64_t>(b.stages.size()) - 1));
    child.stages.assign(a.stages.begin(),
                        a.stages.begin()
                            + static_cast<std::ptrdiff_t>(cut_a));
    child.stages.insert(child.stages.end(),
                        b.stages.begin()
                            + static_cast<std::ptrdiff_t>(cut_b),
                        b.stages.end());
    repairGenome(child, space);
    return child;
}

} // namespace gcm::search

#include "search/search.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

#include "dnn/analysis.hh"
#include "dnn/fingerprint.hh"
#include "dnn/quantize.hh"
#include "obs/obs.hh"
#include "search/genome_ops.hh"
#include "util/error.hh"
#include "util/json.hh"
#include "util/parallel.hh"
#include "verify/verifier.hh"

namespace gcm::search
{

void
validateSearchConfig(const SearchConfig &config,
                     const serve::PredictionService &service)
{
    if (!std::isfinite(config.budget_ms) || config.budget_ms <= 0.0)
        fatal("search: budget_ms must be finite and positive, got ",
              config.budget_ms);
    if (config.devices.empty())
        fatal("search: at least one device is required");
    for (const std::string &d : config.devices) {
        if (service.deviceTable().find(d)
            == service.deviceTable().end())
            fatal("search: unknown device '", d, "'");
    }
    if (config.population < 2)
        fatal("search: population must be >= 2, got ",
              config.population);
    if (config.generations < 1)
        fatal("search: generations must be >= 1");
    if (config.elite >= config.population)
        fatal("search: elite (", config.elite,
              ") must be < population (", config.population, ")");
    if (config.tournament < 1)
        fatal("search: tournament must be >= 1");
    if (!(config.crossover_probability >= 0.0
          && config.crossover_probability <= 1.0))
        fatal("search: crossover_probability must be in [0, 1]");
    const serve::ModelRegistry::ActiveModel active =
        service.registry().active();
    if (!active
        || active.snapshot->kind() != serve::SnapshotKind::CostModel)
        fatal("search: the service has no active cost-model snapshot");
}

namespace
{

/** One candidate's evaluation-time scratch (graph built off-genome). */
struct Built
{
    dnn::Graph graph;       // deployment (Int8) graph
    std::uint64_t fp = 0;
    double mmacs = 0.0;
    std::int64_t params = 0;
    std::string error;      // non-empty -> rejected before pricing

    bool ok() const { return error.empty(); }
};

/**
 * Selection fitness. Any feasible candidate outranks any infeasible
 * one: feasible fitness is mmacs (> 0), infeasible is budget - worst
 * (< 0, less negative = closer to budget). Unpriced candidates sink
 * to the bottom.
 */
double
fitnessOf(const Candidate &c, bool priced, double budget_ms)
{
    if (!priced)
        return -std::numeric_limits<double>::infinity();
    return c.feasible(budget_ms) ? c.mmacs
                                 : budget_ms - c.worst_latency_ms;
}

/** c weakly dominates d on (worst-case latency min, mmacs max). */
bool
dominates(const Candidate &c, const Candidate &d)
{
    return c.worst_latency_ms <= d.worst_latency_ms
        && c.mmacs >= d.mmacs;
}

/**
 * Insert a feasible candidate into the Pareto archive: skipped when
 * any member weakly dominates it (an equal point keeps its first-seen
 * representative — deterministic because insertion order is candidate
 * order), otherwise evicts everything it dominates. Returns whether
 * the candidate joined.
 */
bool
archiveInsert(std::vector<Candidate> &archive, const Candidate &c)
{
    for (const Candidate &m : archive) {
        if (dominates(m, c))
            return false;
    }
    std::erase_if(archive,
                  [&](const Candidate &m) { return dominates(c, m); });
    archive.push_back(c);
    return true;
}

} // namespace

ArchitectureSearch::ArchitectureSearch(serve::PredictionService &service,
                                       SearchConfig config)
    : service_(service), config_(std::move(config))
{
}

SearchResult
ArchitectureSearch::run()
{
    validateSearchConfig(config_, service_);
    const std::size_t pop = config_.population;
    const std::size_t n_dev = config_.devices.size();
    const double budget = config_.budget_ms;
    const Rng root(config_.seed);

    SearchResult result;
    result.model_version = service_.registry().active().version;

    std::vector<dnn::ArchGenome> genomes(pop);
    std::vector<Candidate> current;   // last evaluated generation
    std::vector<double> fitness;      // aligned with current
    std::vector<Candidate> archive;   // Pareto front, feasible only
    double best_lat =
        std::numeric_limits<double>::infinity(); // any candidate
    double best_mmacs = 0.0;                     // feasible only

    for (std::size_t gen = 0; gen < config_.generations; ++gen) {
        // --- 1. Breed this generation's genomes (serial; candidate i
        // of generation g draws only from stream g * pop + i).
        if (gen == 0) {
            for (std::size_t i = 0; i < pop; ++i) {
                Rng rng = root.fork(i);
                genomes[i] = dnn::sampleGenome(config_.space, rng);
            }
        } else {
            // Deterministic fitness ranking of the previous
            // generation, fingerprint then index breaking ties.
            std::vector<std::size_t> order(pop);
            for (std::size_t i = 0; i < pop; ++i)
                order[i] = i;
            std::sort(order.begin(), order.end(),
                      [&](std::size_t a, std::size_t b) {
                          if (fitness[a] != fitness[b])
                              return fitness[a] > fitness[b];
                          if (current[a].fingerprint
                              != current[b].fingerprint)
                              return current[a].fingerprint
                                  < current[b].fingerprint;
                          return a < b;
                      });
            const auto better = [&](std::size_t a, std::size_t b) {
                if (fitness[a] != fitness[b])
                    return fitness[a] > fitness[b];
                if (current[a].fingerprint != current[b].fingerprint)
                    return current[a].fingerprint
                        < current[b].fingerprint;
                return a < b;
            };
            std::vector<dnn::ArchGenome> next(pop);
            for (std::size_t i = 0; i < config_.elite; ++i)
                next[i] = current[order[i]].genome;
            for (std::size_t i = config_.elite; i < pop; ++i) {
                Rng rng = root.fork(gen * pop + i);
                const auto tourney = [&]() {
                    std::size_t best = static_cast<std::size_t>(
                        rng.uniformInt(
                            0, static_cast<std::int64_t>(pop) - 1));
                    for (std::size_t t = 1; t < config_.tournament;
                         ++t) {
                        const auto c = static_cast<std::size_t>(
                            rng.uniformInt(
                                0,
                                static_cast<std::int64_t>(pop) - 1));
                        if (better(c, best))
                            best = c;
                    }
                    return best;
                };
                const std::size_t pa = tourney();
                if (rng.bernoulli(config_.crossover_probability)) {
                    const std::size_t pb = tourney();
                    next[i] = mutateGenome(
                        crossoverGenomes(current[pa].genome,
                                         current[pb].genome,
                                         config_.space, rng),
                        config_.space, rng);
                } else {
                    next[i] = mutateGenome(current[pa].genome,
                                           config_.space, rng);
                }
            }
            genomes = std::move(next);
        }

        // --- 2. Lower genomes to deployment graphs in parallel
        // (ordered parallelMap; each task touches only its genome).
        const std::string gen_tag = "cand-g" + std::to_string(gen);
        std::vector<Built> built =
            parallelMap(pop, 1, [&](std::size_t i) {
                Built b;
                try {
                    dnn::validateGenome(genomes[i], config_.space);
                    dnn::Graph g = dnn::buildGenome(
                        genomes[i], config_.space,
                        gen_tag + "-i" + std::to_string(i));
                    verify::verifyGraphOrThrow(g, "search");
                    b.graph = dnn::quantize(g);
                    b.fp = dnn::graphFingerprint(b.graph);
                    b.mmacs = dnn::megaMacs(b.graph);
                    b.params = dnn::totalParams(b.graph);
                } catch (const GcmError &e) {
                    b.error = e.what();
                }
                return b;
            });

        // --- 3. Price every (candidate, device) pair through the
        // serving stack in one batch: the all-unique fingerprint mix
        // misses, elites and converged offspring hit.
        std::vector<serve::ServeRequest> requests;
        requests.reserve(pop * n_dev);
        for (std::size_t i = 0; i < pop; ++i) {
            if (!built[i].ok())
                continue;
            for (std::size_t d = 0; d < n_dev; ++d) {
                serve::ServeRequest req;
                req.id = std::to_string(i) + ":" + std::to_string(d);
                req.graph_ptr = &built[i].graph;
                req.device = config_.devices[d];
                requests.push_back(std::move(req));
                GCM_OBS_GUARDED(obs::counterAdd("search.requests"));
            }
        }
        const std::vector<serve::ServeResponse> responses =
            service_.processBatch(requests);

        // --- 4. Serial epilogue: fold responses into candidates,
        // update the archive and the generation log in index order.
        current.assign(pop, Candidate{});
        fitness.assign(pop, 0.0);
        GenerationLog row;
        row.generation = static_cast<std::uint32_t>(gen);
        std::size_t resp_at = 0;
        for (std::size_t i = 0; i < pop; ++i) {
            Candidate &c = current[i];
            c.genome = genomes[i];
            c.generation = static_cast<std::uint32_t>(gen);
            c.index = static_cast<std::uint32_t>(i);
            bool priced = built[i].ok();
            if (priced) {
                c.fingerprint = built[i].fp;
                c.mmacs = built[i].mmacs;
                c.params = built[i].params;
                c.latency_ms.resize(n_dev);
                c.worst_latency_ms = 0.0;
                for (std::size_t d = 0; d < n_dev; ++d) {
                    const serve::ServeResponse &r =
                        responses[resp_at++];
                    if (!r.ok) {
                        priced = false;
                        continue;
                    }
                    c.latency_ms[d] = r.latency_ms;
                    c.worst_latency_ms =
                        std::max(c.worst_latency_ms, r.latency_ms);
                }
            }
            fitness[i] = fitnessOf(c, priced, budget);
            if (!priced) {
                result.candidates_rejected += 1;
                GCM_OBS_GUARDED(
                    obs::counterAdd("search.candidates.rejected"));
                continue;
            }
            result.candidates_evaluated += 1;
            GCM_OBS_GUARDED(obs::counterAdd("search.candidates"));
            row.evaluated += 1;
            best_lat = std::min(best_lat, c.worst_latency_ms);
            if (c.feasible(budget)) {
                row.feasible += 1;
                best_mmacs = std::max(best_mmacs, c.mmacs);
                archiveInsert(archive, c);
            }
        }
        row.best_latency_ms = std::isfinite(best_lat) ? best_lat : 0.0;
        row.best_mmacs = best_mmacs;
        row.front_size = archive.size();
        result.log.push_back(row);
        obs::counterAdd("search.generations");
        obs::gaugeSet("search.front_size",
                      static_cast<double>(archive.size()));
        obs::gaugeSet("search.cache_effective_hit_rate",
                      service_.cache().stats().effectiveHitRate());
    }

    // Final front: latency ascending, mmacs descending, fingerprint
    // as the total-order tie-break.
    std::sort(archive.begin(), archive.end(),
              [](const Candidate &a, const Candidate &b) {
                  if (a.worst_latency_ms != b.worst_latency_ms)
                      return a.worst_latency_ms < b.worst_latency_ms;
                  if (a.mmacs != b.mmacs)
                      return a.mmacs > b.mmacs;
                  return a.fingerprint < b.fingerprint;
              });
    result.front = std::move(archive);
    result.cache = service_.cache().stats();
    return result;
}

namespace
{

std::string
fmtDouble(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

std::string
fmtFingerprint(std::uint64_t fp)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "0x%016llx",
                  static_cast<unsigned long long>(fp));
    return buf;
}

void
appendCandidate(std::string &out, const Candidate &c,
                const SearchConfig &config, const std::string &indent)
{
    out += "{\n";
    out += indent + "  \"genome\": ";
    json::appendJsonString(out, dnn::formatGenome(c.genome));
    out += ",\n";
    out += indent + "  \"fingerprint\": ";
    json::appendJsonString(out, fmtFingerprint(c.fingerprint));
    out += ",\n";
    out += indent
        + "  \"worst_latency_ms\": " + fmtDouble(c.worst_latency_ms)
        + ",\n";
    out += indent + "  \"latency_ms\": {";
    for (std::size_t d = 0; d < config.devices.size(); ++d) {
        if (d > 0)
            out += ", ";
        json::appendJsonString(out, config.devices[d]);
        out += ": " + fmtDouble(c.latency_ms[d]);
    }
    out += "},\n";
    out += indent + "  \"mmacs\": " + fmtDouble(c.mmacs) + ",\n";
    out += indent
        + "  \"params\": " + std::to_string(c.params) + ",\n";
    out += indent
        + "  \"generation\": " + std::to_string(c.generation) + ",\n";
    out += indent + "  \"index\": " + std::to_string(c.index) + "\n";
    out += indent + "}";
}

} // namespace

std::string
renderSearchReport(const SearchConfig &config, const SearchResult &result)
{
    std::string out = "{\n";
    out += "  \"schema\": \"gcm-search/v1\",\n";
    out += "  \"config\": {\n";
    out += "    \"budget_ms\": " + fmtDouble(config.budget_ms) + ",\n";
    out += "    \"devices\": [";
    for (std::size_t d = 0; d < config.devices.size(); ++d) {
        if (d > 0)
            out += ", ";
        json::appendJsonString(out, config.devices[d]);
    }
    out += "],\n";
    out += "    \"seed\": " + std::to_string(config.seed) + ",\n";
    out += "    \"population\": " + std::to_string(config.population)
        + ",\n";
    out += "    \"generations\": " + std::to_string(config.generations)
        + ",\n";
    out += "    \"elite\": " + std::to_string(config.elite) + ",\n";
    out += "    \"crossover_probability\": "
        + fmtDouble(config.crossover_probability) + ",\n";
    out += "    \"tournament\": " + std::to_string(config.tournament)
        + "\n";
    out += "  },\n";
    out += "  \"model_version\": "
        + std::to_string(result.model_version) + ",\n";
    out += "  \"candidates_evaluated\": "
        + std::to_string(result.candidates_evaluated) + ",\n";
    out += "  \"candidates_rejected\": "
        + std::to_string(result.candidates_rejected) + ",\n";
    const serve::ShardedLruCache::Stats &cs = result.cache;
    out += "  \"cache\": {\"hits\": " + std::to_string(cs.hits)
        + ", \"misses\": " + std::to_string(cs.misses)
        + ", \"insertions\": " + std::to_string(cs.insertions)
        + ", \"evictions\": " + std::to_string(cs.evictions)
        + ", \"coalesced\": " + std::to_string(cs.coalesced)
        + ", \"hit_rate\": " + fmtDouble(cs.hitRate())
        + ", \"effective_hit_rate\": "
        + fmtDouble(cs.effectiveHitRate()) + "},\n";

    out += "  \"front\": [";
    for (std::size_t i = 0; i < result.front.size(); ++i) {
        out += i == 0 ? "\n    " : ",\n    ";
        appendCandidate(out, result.front[i], config, "    ");
    }
    out += result.front.empty() ? "],\n" : "\n  ],\n";

    // front is latency-sorted, so "fastest under budget" is its head;
    // "best for the worst-case cluster" maximizes the accuracy proxy.
    out += "  \"best_under_budget\": ";
    if (result.front.empty()) {
        out += "null,\n";
    } else {
        appendCandidate(out, result.front.front(), config, "  ");
        out += ",\n";
    }
    out += "  \"best_worst_case\": ";
    if (result.front.empty()) {
        out += "null,\n";
    } else {
        const auto best = std::max_element(
            result.front.begin(), result.front.end(),
            [](const Candidate &a, const Candidate &b) {
                if (a.mmacs != b.mmacs)
                    return a.mmacs < b.mmacs;
                if (a.worst_latency_ms != b.worst_latency_ms)
                    return a.worst_latency_ms > b.worst_latency_ms;
                return a.fingerprint > b.fingerprint;
            });
        appendCandidate(out, *best, config, "  ");
        out += ",\n";
    }

    out += "  \"log\": [";
    for (std::size_t i = 0; i < result.log.size(); ++i) {
        const GenerationLog &row = result.log[i];
        out += i == 0 ? "\n    " : ",\n    ";
        out += "{\"generation\": " + std::to_string(row.generation)
            + ", \"evaluated\": " + std::to_string(row.evaluated)
            + ", \"feasible\": " + std::to_string(row.feasible)
            + ", \"best_latency_ms\": "
            + fmtDouble(row.best_latency_ms) + ", \"best_mmacs\": "
            + fmtDouble(row.best_mmacs) + ", \"front_size\": "
            + std::to_string(row.front_size) + "}";
    }
    out += result.log.empty() ? "]\n" : "\n  ]\n";
    out += "}\n";
    return out;
}

} // namespace gcm::search

/**
 * @file
 * Latency-constrained architecture search over the generator space
 * (ROADMAP item 2): the cost models' raison d'être turned into a
 * first-class workload. Answers "fastest network under X ms on
 * device D" and "best network for the worst-case device cluster" by
 * evolving dnn::ArchGenome candidates whose latency is predicted by
 * the serving stack — every evaluation routes through
 * PredictionService::processBatch, so the fingerprint cache is the
 * search's inner loop and elites re-price as cache hits.
 *
 * Algorithm: elitist (mu + lambda)-style evolution. Generation 0 is
 * sampled from the space; each later generation keeps the top
 * `elite` candidates by fitness and fills the rest by tournament
 * selection followed by crossover (with probability
 * crossover_probability) and mutation (genome_ops.hh). Fitness is
 *
 *     feasible (worst-case latency <= budget) ? mmacs
 *                                             : budget - latency
 *
 * i.e. infeasible candidates are ranked by how far over budget they
 * are, feasible ones by the accuracy proxy (bigger nets ~ better
 * accuracy, the standard NAS surrogate). A weak-domination Pareto
 * archive over (worst-case latency, mmacs) accumulates every feasible
 * candidate ever seen; the front is the report's payload.
 *
 * Determinism contract (the PR-2 rule): run() output is bit-identical
 * at any GCM_THREADS.
 *  - Candidate i of generation g draws only from
 *    Rng(seed).fork(g * population + i) — no shared RNG stream.
 *  - Graph build/quantize/fingerprint fan out via parallelMap
 *    (ordered results); latency goes through processBatch, itself
 *    bit-identical per serve/service.hh.
 *  - Selection, archive insertion and logging run serially in
 *    candidate order, with fingerprint tie-breaks so sorts never
 *    depend on initial order of equal keys.
 * The gcm-search/v1 report contains no wall-clock fields, so whole
 * reports byte-compare across thread counts (tests/test_search.cc).
 */

#ifndef GCM_SEARCH_SEARCH_HH
#define GCM_SEARCH_SEARCH_HH

#include <cstdint>
#include <string>
#include <vector>

#include "dnn/generator.hh"
#include "serve/service.hh"

namespace gcm::search
{

/** Tunables of one search run. */
struct SearchConfig
{
    /** Latency budget (ms) a candidate must meet on every device. */
    double budget_ms = 0.0;
    /** Device-table names to evaluate on; worst case is their max. */
    std::vector<std::string> devices;
    std::uint64_t seed = 1;
    std::size_t population = 32;
    std::size_t generations = 8;
    /** Candidates carried over unchanged each generation. */
    std::size_t elite = 4;
    /** Probability an offspring is a crossover before its mutation. */
    double crossover_probability = 0.35;
    /** Tournament size for parent selection. */
    std::size_t tournament = 3;
    dnn::SearchSpace space;
};

/**
 * Reject unusable configs (no devices / unknown device / elite >=
 * population / zero budget...). Throws GcmError naming the problem.
 */
void validateSearchConfig(const SearchConfig &config,
                          const serve::PredictionService &service);

/** One evaluated candidate. */
struct Candidate
{
    dnn::ArchGenome genome;
    /** Deployment-graph (Int8) structural fingerprint. */
    std::uint64_t fingerprint = 0;
    /** Per-device predicted latency, config.devices order. */
    std::vector<double> latency_ms;
    /** max over latency_ms — the worst-case-cluster objective. */
    double worst_latency_ms = 0.0;
    double mmacs = 0.0;
    std::int64_t params = 0;
    std::uint32_t generation = 0;
    std::uint32_t index = 0;

    bool feasible(double budget_ms) const
    {
        return worst_latency_ms <= budget_ms;
    }
};

/** Per-generation progress row of the gcm-search/v1 log. */
struct GenerationLog
{
    std::uint32_t generation = 0;
    std::uint64_t evaluated = 0;
    std::uint64_t feasible = 0;
    /** Best (lowest) worst-case latency seen so far, any candidate. */
    double best_latency_ms = 0.0;
    /** Best (highest) mmacs among feasible so far; 0 when none. */
    double best_mmacs = 0.0;
    std::uint64_t front_size = 0;
};

/** Everything run() produces; renderSearchReport serializes it. */
struct SearchResult
{
    /**
     * Pareto front over (worst-case latency asc, mmacs desc) of all
     * feasible candidates, sorted by latency (fingerprint breaks
     * ties). front.front() is "fastest under budget"; the max-mmacs
     * member is "best for the worst-case cluster".
     */
    std::vector<Candidate> front;
    std::vector<GenerationLog> log;
    std::uint64_t candidates_evaluated = 0;
    std::uint64_t candidates_rejected = 0;
    serve::ShardedLruCache::Stats cache;
    serve::ModelRegistry::Version model_version = 0;
};

class ArchitectureSearch
{
  public:
    /**
     * @param service Serving stack to price candidates on; must hold
     *        an active CostModel snapshot and know every config
     *        device. The search keeps a reference.
     */
    ArchitectureSearch(serve::PredictionService &service,
                       SearchConfig config);

    /** Run the full loop. Deterministic in (config, model version). */
    SearchResult run();

    const SearchConfig &config() const { return config_; }

  private:
    serve::PredictionService &service_;
    SearchConfig config_;
};

/**
 * Render a gcm-search/v1 JSON document (schema in DESIGN.md §13).
 * Deterministic: doubles via %.17g, no wall-clock or host fields.
 */
std::string renderSearchReport(const SearchConfig &config,
                               const SearchResult &result);

} // namespace gcm::search

#endif // GCM_SEARCH_SEARCH_HH

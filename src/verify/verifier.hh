/**
 * @file
 * Structural verifier for the gcm::dnn::Graph IR.
 *
 * Graph::validate() is the cheap constructor-time gate; GraphVerifier
 * is the exhaustive static analysis run on every producer boundary
 * (builder finalization, zoo/generator output, deserialization of
 * untrusted files) and by the gcm-verify CLI. It never aborts on a
 * malformed graph — every violation becomes a Diagnostic — so it can
 * be pointed at arbitrarily corrupted inputs.
 *
 * Checked invariants:
 *  - node ids match their vector positions; node 0 is the unique Input
 *  - every edge references an in-bounds, earlier node (topological
 *    order, which also rules out cycles; out-of-order edges are
 *    additionally classified as cycles via Kahn's algorithm)
 *  - per-OpKind input arity (unary chain ops, binary Add/Mul,
 *    variadic Concat)
 *  - operator parameters are legal (positive windows, divisible
 *    groups, out_channels consistent with the stored shape)
 *  - shape re-inference: each node's stored TensorShape equals the
 *    shape recomputed from its inputs under the builder's rules
 *  - reachability: nodes that cannot reach the output are dead code
 *    (Warning — legal but suspicious for cost-model features)
 *  - precision/quantization consistency: fused activations only on
 *    fusable kinds, no BatchNorm in an Int8 deployment graph
 */

#ifndef GCM_VERIFY_VERIFIER_HH
#define GCM_VERIFY_VERIFIER_HH

#include "dnn/graph.hh"
#include "verify/diagnostics.hh"

namespace gcm::verify
{

/** Toggles for individual verifier stages (all on by default). */
struct VerifyOptions
{
    /** Re-infer shapes and compare against stored ones. */
    bool check_shapes = true;
    /** Flag nodes unreachable from the graph output (Warning). */
    bool check_dead_nodes = true;
    /** Precision / fused-activation consistency checks. */
    bool check_precision = true;
};

/** Exhaustive structural checker; cheap to construct, reusable. */
class GraphVerifier
{
  public:
    explicit GraphVerifier(VerifyOptions options = {});

    /** Run all enabled checks; never throws on graph content. */
    VerifyReport verify(const dnn::Graph &graph) const;

    const VerifyOptions &options() const { return options_; }

  private:
    VerifyOptions options_;
};

/** Convenience: verify with default options. */
VerifyReport verifyGraph(const dnn::Graph &graph);

/**
 * Verify and throw GcmError listing all Error-severity findings.
 * Warnings and notes do not throw. @p context names the producer
 * (e.g. "deserializeGraph") for the error message.
 */
void verifyGraphOrThrow(const dnn::Graph &graph, const char *context);

} // namespace gcm::verify

#endif // GCM_VERIFY_VERIFIER_HH

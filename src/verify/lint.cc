#include "verify/lint.hh"

#include <sstream>

#include "dnn/analysis.hh"
#include "util/error.hh"

namespace gcm::verify
{

namespace
{

using dnn::FusedActivation;
using dnn::Graph;
using dnn::Node;
using dnn::NodeId;
using dnn::OpKind;

/**
 * flops-range: a network whose complexity falls outside the Fig. 2
 * characterization span would sit in a region of feature space the
 * cost models were never fitted on; its predictions are extrapolation.
 */
void
lintFlopsRange(const Graph &graph, VerifyReport &report)
{
    const double mmacs = dnn::megaMacs(graph);
    if (mmacs < kLintMinMegaMacs || mmacs > kLintMaxMegaMacs) {
        std::ostringstream oss;
        oss << "network complexity " << mmacs
            << " MMACs is outside the characterized range ["
            << kLintMinMegaMacs << ", " << kLintMaxMegaMacs << "]";
        report.add(Severity::Warning, kNoNode, "flops-range", oss.str());
    }
}

/**
 * Walk back from @p id through the squeeze-excite tail. Recognizes
 * both the fp32 form (FC -> ReLU -> FC -> Sigmoid) and the quantized
 * form where the ReLU is fused into the first FC. Returns the squeeze
 * FC node, or nullptr when the pattern does not match.
 */
const Node *
seSqueezeFc(const Graph &graph, NodeId sigmoid_id)
{
    const auto &nodes = graph.nodes();
    const Node &sig = nodes[static_cast<std::size_t>(sigmoid_id)];
    if (sig.kind != OpKind::Sigmoid || sig.inputs.size() != 1)
        return nullptr;
    const Node &expand = nodes[static_cast<std::size_t>(sig.inputs[0])];
    if (expand.kind != OpKind::FullyConnected
        || expand.inputs.size() != 1) {
        return nullptr;
    }
    const Node *mid = &nodes[static_cast<std::size_t>(expand.inputs[0])];
    if (mid->kind == OpKind::ReLU) {
        if (mid->inputs.size() != 1)
            return nullptr;
        mid = &nodes[static_cast<std::size_t>(mid->inputs[0])];
    }
    if (mid->kind != OpKind::FullyConnected || mid->inputs.size() != 1)
        return nullptr;
    const Node &gap = nodes[static_cast<std::size_t>(mid->inputs[0])];
    if (gap.kind != OpKind::GlobalAvgPool)
        return nullptr;
    return mid;
}

/**
 * se-reduction: squeeze-and-excite blocks must actually squeeze. A
 * first FC that widens (squeezed > channels) or drops below the
 * customary floor of 8 produces a block no mobile network family
 * ships, and its FC feature rows mislead the predictor.
 */
void
lintSeReduction(const Graph &graph, VerifyReport &report)
{
    const auto &nodes = graph.nodes();
    for (const Node &n : nodes) {
        if (n.kind != OpKind::Mul || n.inputs.size() != 2)
            continue;
        const Node *squeeze = seSqueezeFc(graph, n.inputs[1]);
        if (squeeze == nullptr)
            continue;
        const std::int32_t channels =
            nodes[static_cast<std::size_t>(n.inputs[0])].shape.c;
        const std::int32_t squeezed = squeeze->params.out_channels;
        if (squeezed > channels) {
            std::ostringstream oss;
            oss << "squeeze-excite squeezes " << channels
                << " channels to " << squeezed
                << " (reduction ratio below 1)";
            report.add(Severity::Warning, squeeze->id, "se-reduction",
                       oss.str());
        } else if (squeezed < 8) {
            std::ostringstream oss;
            oss << "squeeze-excite bottleneck of " << squeezed
                << " channels is below the customary floor of 8";
            report.add(Severity::Warning, squeeze->id, "se-reduction",
                       oss.str());
        }
    }
}

/**
 * encoder-range: the NetworkEncoder writes every geometric parameter
 * into a float feature slot. Values beyond 2^24 lose integer
 * precision, negatives corrupt one-hot-adjacent slots, and networks
 * deeper than any plausible fitted layout cannot be encoded at all.
 */
void
lintEncoderRange(const Graph &graph, VerifyReport &report)
{
    std::size_t depth = 0;
    for (const Node &n : graph.nodes()) {
        if (n.kind != OpKind::Input)
            ++depth;
        const std::int64_t geom[] = {
            n.shape.h, n.shape.c, n.params.kernel, n.params.stride,
            n.params.padding, n.params.out_channels, n.params.groups,
        };
        for (std::int64_t v : geom) {
            if (v > kLintMaxEncodableFeature) {
                std::ostringstream oss;
                oss << "feature value " << v
                    << " exceeds exact float range (2^24); the encoded "
                       "feature would silently lose precision";
                report.add(Severity::Warning, n.id, "encoder-range",
                           oss.str());
                break;
            }
        }
        if (n.params.kernel < 0 || n.params.stride < 0
            || n.params.padding < 0 || n.params.out_channels < 0
            || n.params.groups < 0) {
            report.add(Severity::Warning, n.id, "encoder-range",
                       "negative operator parameter would flow into "
                       "the feature vector");
        }
    }
    if (depth > kLintMaxEncoderDepth) {
        std::ostringstream oss;
        oss << "network has " << depth
            << " encodable layers, beyond the supported layout depth "
            << kLintMaxEncoderDepth;
        report.add(Severity::Warning, kNoNode, "encoder-range",
                   oss.str());
    }
}

} // namespace

LintRegistry &
LintRegistry::instance()
{
    static LintRegistry registry;
    return registry;
}

LintRegistry::LintRegistry()
{
    registerPass("flops-range",
                 "network MACs inside the Fig. 2 characterization span",
                 lintFlopsRange);
    registerPass("se-reduction",
                 "squeeze-excite blocks use a valid reduction ratio",
                 lintSeReduction);
    registerPass("encoder-range",
                 "every feature fits its NetworkEncoder bin exactly",
                 lintEncoderRange);
}

void
LintRegistry::registerPass(std::string name, std::string description,
                           LintFn fn)
{
    if (find(name) != nullptr)
        fatal("LintRegistry: duplicate pass '", name, "'");
    passes_.push_back(
        LintPass{std::move(name), std::move(description), std::move(fn)});
}

const LintPass *
LintRegistry::find(const std::string &name) const
{
    for (const auto &p : passes_) {
        if (p.name == name)
            return &p;
    }
    return nullptr;
}

VerifyReport
LintRegistry::run(const dnn::Graph &graph) const
{
    VerifyReport report;
    for (const auto &p : passes_)
        p.fn(graph, report);
    return report;
}

VerifyReport
LintRegistry::run(const dnn::Graph &graph,
                  const std::vector<std::string> &names) const
{
    VerifyReport report;
    for (const auto &name : names) {
        const LintPass *p = find(name);
        if (p == nullptr)
            fatal("LintRegistry: unknown pass '", name, "'");
        p->fn(graph, report);
    }
    return report;
}

VerifyReport
lintGraph(const dnn::Graph &graph)
{
    return LintRegistry::instance().run(graph);
}

} // namespace gcm::verify

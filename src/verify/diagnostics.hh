/**
 * @file
 * Diagnostic types shared by the graph verifier and the lint passes.
 *
 * A verification or lint run produces a VerifyReport: an ordered list
 * of Diagnostic records, each tagged with a severity, the offending
 * node (or kNoNode for graph-level findings) and the name of the pass
 * that raised it. Reports are plain data so callers can decide whether
 * a finding is fatal (deserialization of untrusted input) or merely
 * logged (lint tooling).
 */

#ifndef GCM_VERIFY_DIAGNOSTICS_HH
#define GCM_VERIFY_DIAGNOSTICS_HH

#include <cstddef>
#include <string>
#include <vector>

#include "dnn/graph.hh"

namespace gcm::verify
{

/** How bad a finding is. */
enum class Severity : std::uint8_t
{
    /** Informational; never fails a verification run. */
    Note,
    /** Suspicious for the cost-model pipeline but structurally legal. */
    Warning,
    /** Structural invariant violation; the graph must not be used. */
    Error,
};

/** Stable display name of a severity. */
const char *severityName(Severity severity);

/** Sentinel node id for graph-level diagnostics. */
inline constexpr dnn::NodeId kNoNode = -1;

/** One finding raised by a verifier check or lint pass. */
struct Diagnostic
{
    Severity severity = Severity::Error;
    /** Offending node, or kNoNode for graph-level findings. */
    dnn::NodeId node = kNoNode;
    /** Name of the check/pass that raised the finding. */
    std::string pass;
    std::string message;

    /** One-line rendering: "error [structure] node 3: ...". */
    std::string str() const;
};

/** Ordered collection of diagnostics from one verification run. */
class VerifyReport
{
  public:
    void add(Severity severity, dnn::NodeId node, std::string pass,
             std::string message);

    const std::vector<Diagnostic> &diagnostics() const { return diags_; }
    bool empty() const { return diags_.empty(); }
    std::size_t size() const { return diags_.size(); }

    /** Number of findings at the given severity. */
    std::size_t count(Severity severity) const;
    bool hasErrors() const { return count(Severity::Error) > 0; }

    /** Append another report's findings (pass names preserved). */
    void merge(const VerifyReport &other);

    /** Multi-line rendering, one diagnostic per line. */
    std::string str() const;

  private:
    std::vector<Diagnostic> diags_;
};

} // namespace gcm::verify

#endif // GCM_VERIFY_DIAGNOSTICS_HH

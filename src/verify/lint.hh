/**
 * @file
 * Extensible lint-pass registry over the Graph IR.
 *
 * Where the GraphVerifier enforces hard structural invariants, lint
 * passes encode cost-model-specific expectations: a graph can be a
 * perfectly valid DAG yet still poison the latency dataset (FLOPs far
 * outside the paper's Fig. 2 characterization range, a malformed
 * squeeze-excite block, features that a NetworkEncoder layout cannot
 * faithfully represent). Passes are registered by name and produce
 * Warning/Note diagnostics; callers (gcm-verify, test sweeps) decide
 * whether findings fail the run.
 *
 * Passes assume a structurally valid graph (they index producer ids
 * without re-checking bounds) — run the GraphVerifier first and skip
 * linting when it reports errors, as gcm-verify does.
 *
 * Registering a custom pass:
 *
 *   LintRegistry::instance().registerPass(
 *       "my-pass", "what it checks",
 *       [](const dnn::Graph &g, VerifyReport &r) { ... });
 */

#ifndef GCM_VERIFY_LINT_HH
#define GCM_VERIFY_LINT_HH

#include <functional>
#include <string>
#include <vector>

#include "dnn/graph.hh"
#include "verify/diagnostics.hh"

namespace gcm::verify
{

/** Callable body of a lint pass; appends findings to the report. */
using LintFn = std::function<void(const dnn::Graph &, VerifyReport &)>;

/** A named, documented lint pass. */
struct LintPass
{
    std::string name;
    std::string description;
    LintFn fn;
};

/** Process-wide registry; built-in passes register at construction. */
class LintRegistry
{
  public:
    static LintRegistry &instance();

    /** Add a pass. Throws GcmError on duplicate names. */
    void registerPass(std::string name, std::string description,
                      LintFn fn);

    const std::vector<LintPass> &passes() const { return passes_; }

    /** Lookup by name; nullptr when absent. */
    const LintPass *find(const std::string &name) const;

    /** Run every registered pass. */
    VerifyReport run(const dnn::Graph &graph) const;

    /** Run a subset by name. Throws GcmError on unknown names. */
    VerifyReport run(const dnn::Graph &graph,
                     const std::vector<std::string> &names) const;

  private:
    LintRegistry();

    std::vector<LintPass> passes_;
};

/** Convenience: run all registered lint passes. */
VerifyReport lintGraph(const dnn::Graph &graph);

/**
 * Thresholds used by the built-in passes, exposed for tests.
 * The FLOPs window brackets the paper's Fig. 2 span (tens to hundreds
 * of MMACs for both popular and generated networks) with headroom for
 * the extended zoo (ResNet-18 at ~1.8 GMACs).
 */
inline constexpr double kLintMinMegaMacs = 10.0;
inline constexpr double kLintMaxMegaMacs = 2000.0;
/** Largest int a float feature slot represents exactly (2^24). */
inline constexpr std::int64_t kLintMaxEncodableFeature = 1 << 24;
/** Depth beyond which no fitted encoder layout is expected to cope. */
inline constexpr std::size_t kLintMaxEncoderDepth = 512;

} // namespace gcm::verify

#endif // GCM_VERIFY_LINT_HH

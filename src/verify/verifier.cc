#include "verify/verifier.hh"

#include <deque>
#include <sstream>
#include <vector>

#include "util/error.hh"

namespace gcm::verify
{

const char *
severityName(Severity severity)
{
    switch (severity) {
      case Severity::Note: return "note";
      case Severity::Warning: return "warning";
      case Severity::Error: return "error";
    }
    GCM_ASSERT(false, "severityName: invalid severity");
    return "?";
}

std::string
Diagnostic::str() const
{
    std::ostringstream oss;
    oss << severityName(severity) << " [" << pass << "]";
    if (node != kNoNode)
        oss << " node " << node;
    oss << ": " << message;
    return oss.str();
}

void
VerifyReport::add(Severity severity, dnn::NodeId node, std::string pass,
                  std::string message)
{
    diags_.push_back(Diagnostic{severity, node, std::move(pass),
                                std::move(message)});
}

std::size_t
VerifyReport::count(Severity severity) const
{
    std::size_t c = 0;
    for (const auto &d : diags_) {
        if (d.severity == severity)
            ++c;
    }
    return c;
}

void
VerifyReport::merge(const VerifyReport &other)
{
    diags_.insert(diags_.end(), other.diags_.begin(),
                  other.diags_.end());
}

std::string
VerifyReport::str() const
{
    std::ostringstream oss;
    for (const auto &d : diags_)
        oss << d.str() << "\n";
    return oss.str();
}

namespace
{

using dnn::Graph;
using dnn::Node;
using dnn::NodeId;
using dnn::OpKind;
using dnn::TensorShape;

/** Report sink bound to one pass name. */
class Sink
{
  public:
    Sink(VerifyReport &report, const char *pass)
        : report_(report), pass_(pass)
    {}

    template <typename... Args>
    void
    error(NodeId node, const Args &...parts)
    {
        add(Severity::Error, node, parts...);
    }

    template <typename... Args>
    void
    warn(NodeId node, const Args &...parts)
    {
        add(Severity::Warning, node, parts...);
    }

  private:
    template <typename... Args>
    void
    add(Severity sev, NodeId node, const Args &...parts)
    {
        std::ostringstream oss;
        (oss << ... << parts);
        report_.add(sev, node, pass_, oss.str());
    }

    VerifyReport &report_;
    const char *pass_;
};

/** opKindName that cannot abort on a corrupted kind value. */
const char *
safeKindName(OpKind kind)
{
    if (static_cast<std::size_t>(kind) >= dnn::kNumOpKinds)
        return "<invalid kind>";
    return opKindName(kind);
}

/** True when every id in inputs is a valid, earlier node. */
bool
inputsWellFormed(const Node &n, std::size_t num_nodes)
{
    for (NodeId in : n.inputs) {
        if (in < 0 || static_cast<std::size_t>(in) >= num_nodes
            || in >= n.id) {
            return false;
        }
    }
    return true;
}

/** Expected input count for a kind; -1 means variadic (Concat). */
int
expectedArity(OpKind kind)
{
    switch (kind) {
      case OpKind::Input:
        return 0;
      case OpKind::Add:
      case OpKind::Mul:
        return 2;
      case OpKind::Concat:
        return -1;
      default:
        return 1;
    }
}

/**
 * Id / position / arity / edge-bounds checks. Returns true when the
 * graph is sound enough for the per-node shape analysis to index
 * inputs safely.
 */
bool
checkStructure(const Graph &graph, VerifyReport &report)
{
    Sink sink(report, "structure");
    const auto &nodes = graph.nodes();
    if (nodes.empty()) {
        sink.error(kNoNode, "graph '", graph.name(), "' is empty");
        return false;
    }
    if (nodes.front().kind != OpKind::Input)
        sink.error(0, "first node must be Input, got ",
                   safeKindName(nodes.front().kind));

    bool sound = true;
    for (std::size_t i = 0; i < nodes.size(); ++i) {
        const Node &n = nodes[i];
        if (n.id != static_cast<NodeId>(i)) {
            sink.error(static_cast<NodeId>(i), "node id ", n.id,
                       " does not match position ", i);
            sound = false;
            continue;
        }
        if (n.kind == OpKind::Input && i != 0) {
            sink.error(n.id, "interior Input node");
            sound = false;
        }
        if (static_cast<std::size_t>(n.kind) >= dnn::kNumOpKinds) {
            sink.error(n.id, "invalid operator kind value ",
                       static_cast<int>(n.kind));
            sound = false;
            continue;
        }
        const int arity = expectedArity(n.kind);
        if (arity >= 0
            && n.inputs.size() != static_cast<std::size_t>(arity)) {
            sink.error(n.id, safeKindName(n.kind), " expects ", arity,
                       " input(s), has ", n.inputs.size());
            sound = false;
        }
        if (arity < 0 && n.inputs.size() < 2) {
            sink.error(n.id, "Concat expects at least 2 inputs, has ",
                       n.inputs.size());
            sound = false;
        }
        for (NodeId in : n.inputs) {
            if (in < 0 || static_cast<std::size_t>(in) >= nodes.size()) {
                sink.error(n.id, "dangling input reference %", in,
                           " (graph has ", nodes.size(), " nodes)");
                sound = false;
            } else if (in == n.id) {
                sink.error(n.id, "self-edge %", in, " -> %", n.id);
                sound = false;
            } else if (in > n.id) {
                sink.error(n.id, "non-topological edge %", in, " -> %",
                           n.id);
                sound = false;
            }
        }
    }
    return sound;
}

/**
 * Kahn's algorithm over the in-bounds edges, independent of the
 * stored ordering, so true cycles are distinguished from graphs that
 * are acyclic but mis-ordered.
 */
void
checkAcyclicity(const Graph &graph, VerifyReport &report)
{
    Sink sink(report, "structure");
    const auto &nodes = graph.nodes();
    const std::size_t n = nodes.size();
    std::vector<std::size_t> indegree(n, 0);
    std::vector<std::vector<std::size_t>> consumers(n);
    for (std::size_t i = 0; i < n; ++i) {
        for (NodeId in : nodes[i].inputs) {
            if (in < 0 || static_cast<std::size_t>(in) >= n)
                continue; // reported as dangling by checkStructure
            ++indegree[i];
            consumers[static_cast<std::size_t>(in)].push_back(i);
        }
    }
    std::deque<std::size_t> ready;
    for (std::size_t i = 0; i < n; ++i) {
        if (indegree[i] == 0)
            ready.push_back(i);
    }
    std::size_t processed = 0;
    while (!ready.empty()) {
        const std::size_t i = ready.front();
        ready.pop_front();
        ++processed;
        for (std::size_t c : consumers[i]) {
            if (--indegree[c] == 0)
                ready.push_back(c);
        }
    }
    if (processed == n)
        return;
    for (std::size_t i = 0; i < n; ++i) {
        if (indegree[i] > 0) {
            sink.error(static_cast<NodeId>(i),
                       "node participates in a cycle");
        }
    }
}

/** Conv / pool spatial output size; negative on invalid geometry. */
std::int32_t
windowOutput(std::int32_t in, std::int32_t kernel, std::int32_t stride,
             std::int32_t padding)
{
    if (kernel <= 0 || stride <= 0 || padding < 0)
        return -1;
    const std::int32_t eff = in + 2 * padding - kernel;
    if (eff < 0)
        return -1;
    return eff / stride + 1;
}

/**
 * Per-node parameter legality and shape re-inference against the
 * stored TensorShape. @pre checkStructure returned sound.
 */
void
checkShapes(const Graph &graph, VerifyReport &report)
{
    Sink sink(report, "shape");
    const auto &nodes = graph.nodes();
    for (const Node &n : nodes) {
        if (!inputsWellFormed(n, nodes.size()))
            continue; // structural diagnostics already cover it
        if (n.shape.n != 1 || n.shape.h <= 0 || n.shape.w <= 0
            || n.shape.c <= 0) {
            sink.error(n.id, "invalid stored shape ", n.shape.str());
            continue;
        }
        if (n.kind == OpKind::Input)
            continue;

        const TensorShape &in0 = nodes[n.inputs[0]].shape;
        TensorShape expect = in0;
        bool known = true;
        switch (n.kind) {
          case OpKind::Conv2d: {
            if (n.params.out_channels <= 0) {
                sink.error(n.id, "Conv2d out_channels must be positive");
                continue;
            }
            const std::int32_t g = n.params.groups;
            if (g <= 0 || in0.c % g != 0
                || n.params.out_channels % g != 0) {
                sink.error(n.id, "Conv2d groups=", g,
                           " must divide in_c=", in0.c, " and out_c=",
                           n.params.out_channels);
                continue;
            }
            expect.h = windowOutput(in0.h, n.params.kernel,
                                    n.params.stride, n.params.padding);
            expect.w = windowOutput(in0.w, n.params.kernel,
                                    n.params.stride, n.params.padding);
            expect.c = n.params.out_channels;
            break;
          }
          case OpKind::DepthwiseConv2d: {
            expect.h = windowOutput(in0.h, n.params.kernel,
                                    n.params.stride, n.params.padding);
            expect.w = windowOutput(in0.w, n.params.kernel,
                                    n.params.stride, n.params.padding);
            expect.c = in0.c;
            if (n.params.groups != in0.c) {
                sink.warn(n.id, "depthwise groups=", n.params.groups,
                          " differs from input channels ", in0.c);
            }
            break;
          }
          case OpKind::MaxPool2d:
          case OpKind::AvgPool2d:
            expect.h = windowOutput(in0.h, n.params.kernel,
                                    n.params.stride, n.params.padding);
            expect.w = windowOutput(in0.w, n.params.kernel,
                                    n.params.stride, n.params.padding);
            break;
          case OpKind::FullyConnected:
            if (n.params.out_channels <= 0) {
                sink.error(n.id,
                           "FullyConnected out_channels must be positive");
                continue;
            }
            expect = TensorShape{1, 1, 1, n.params.out_channels};
            break;
          case OpKind::GlobalAvgPool:
            expect = TensorShape{1, 1, 1, in0.c};
            break;
          case OpKind::Add: {
            const TensorShape &b = nodes[n.inputs[1]].shape;
            if (!(in0 == b)) {
                sink.error(n.id, "Add input shapes differ: ", in0.str(),
                           " vs ", b.str());
                continue;
            }
            break;
          }
          case OpKind::Mul: {
            const TensorShape &b = nodes[n.inputs[1]].shape;
            const bool broadcast =
                b.h == 1 && b.w == 1 && b.c == in0.c;
            if (!(in0 == b) && !broadcast) {
                sink.error(n.id, "Mul shapes not multiplicable: ",
                           in0.str(), " vs ", b.str());
                continue;
            }
            break;
          }
          case OpKind::Concat: {
            std::int32_t c = 0;
            bool ok = true;
            for (NodeId in : n.inputs) {
                const TensorShape &s = nodes[in].shape;
                if (s.h != in0.h || s.w != in0.w) {
                    sink.error(n.id, "Concat spatial mismatch: ",
                               s.str(), " vs ", in0.str());
                    ok = false;
                    break;
                }
                c += s.c;
            }
            if (!ok)
                continue;
            expect.c = c;
            break;
          }
          case OpKind::ChannelShuffle:
            if (n.params.groups <= 0 || in0.c % n.params.groups != 0) {
                sink.error(n.id, "ChannelShuffle groups=",
                           n.params.groups, " must divide channels=",
                           in0.c);
                continue;
            }
            break;
          case OpKind::ReLU:
          case OpKind::ReLU6:
          case OpKind::HSwish:
          case OpKind::Sigmoid:
          case OpKind::BatchNorm:
          case OpKind::Softmax:
            break; // shape-preserving
          default:
            known = false;
            break;
        }
        if (!known) {
            sink.error(n.id, "unknown operator kind ",
                       static_cast<int>(n.kind));
            continue;
        }
        if (expect.h < 0 || expect.w < 0) {
            sink.error(n.id, opKindName(n.kind), " window (k=",
                       n.params.kernel, ", s=", n.params.stride, ", p=",
                       n.params.padding, ") is invalid for input ",
                       in0.str());
            continue;
        }
        if (!(n.shape == expect)) {
            sink.error(n.id, "stored shape ", n.shape.str(),
                       " disagrees with re-inferred ", expect.str(),
                       " (stale shape)");
        }
    }
}

/** Flag nodes with no path to the graph output (dead code). */
void
checkDeadNodes(const Graph &graph, VerifyReport &report)
{
    Sink sink(report, "dead-code");
    const auto &nodes = graph.nodes();
    std::vector<bool> live(nodes.size(), false);
    std::deque<std::size_t> work{nodes.size() - 1};
    live[nodes.size() - 1] = true;
    while (!work.empty()) {
        const std::size_t i = work.front();
        work.pop_front();
        for (NodeId in : nodes[i].inputs) {
            if (in < 0 || static_cast<std::size_t>(in) >= nodes.size())
                continue;
            if (!live[static_cast<std::size_t>(in)]) {
                live[static_cast<std::size_t>(in)] = true;
                work.push_back(static_cast<std::size_t>(in));
            }
        }
    }
    for (std::size_t i = 0; i < nodes.size(); ++i) {
        if (!live[i]) {
            sink.warn(static_cast<NodeId>(i),
                      "unreachable from the graph output (dead node)");
        }
    }
}

/** Fused-activation legality and precision-level consistency. */
void
checkPrecision(const Graph &graph, VerifyReport &report)
{
    Sink sink(report, "precision");
    const bool int8 = graph.precision() == dnn::Precision::Int8;
    for (const Node &n : graph.nodes()) {
        const auto act =
            static_cast<std::uint8_t>(n.params.fused_activation);
        if (act > static_cast<std::uint8_t>(
                dnn::FusedActivation::Sigmoid)) {
            sink.error(n.id, "invalid fused activation value ",
                       static_cast<int>(act));
            continue;
        }
        const bool fusable = n.kind == OpKind::Conv2d
            || n.kind == OpKind::DepthwiseConv2d
            || n.kind == OpKind::FullyConnected || n.kind == OpKind::Add;
        if (n.params.fused_activation != dnn::FusedActivation::None) {
            if (!fusable) {
                sink.error(n.id, "fused activation on non-fusable op ",
                           safeKindName(n.kind));
            } else if (!int8) {
                sink.warn(n.id,
                          "fused activation in an fp32 graph (fusion "
                          "is a deployment-time pass)");
            }
        }
        if (int8 && n.kind == OpKind::BatchNorm) {
            sink.error(n.id,
                       "BatchNorm in an int8 deployment graph (the "
                       "quantizer folds these away)");
        }
    }
}

} // namespace

GraphVerifier::GraphVerifier(VerifyOptions options) : options_(options)
{}

VerifyReport
GraphVerifier::verify(const Graph &graph) const
{
    VerifyReport report;
    const bool sound = checkStructure(graph, report);
    if (!graph.nodes().empty()) {
        checkAcyclicity(graph, report);
        if (sound && options_.check_shapes)
            checkShapes(graph, report);
        if (sound && options_.check_dead_nodes)
            checkDeadNodes(graph, report);
        if (options_.check_precision)
            checkPrecision(graph, report);
    }
    return report;
}

VerifyReport
verifyGraph(const dnn::Graph &graph)
{
    return GraphVerifier().verify(graph);
}

void
verifyGraphOrThrow(const dnn::Graph &graph, const char *context)
{
    const VerifyReport report = verifyGraph(graph);
    if (!report.hasErrors())
        return;
    std::ostringstream oss;
    oss << context << ": graph '" << graph.name() << "' failed "
        << "verification with " << report.count(Severity::Error)
        << " error(s):\n";
    std::size_t listed = 0;
    for (const auto &d : report.diagnostics()) {
        if (d.severity != Severity::Error)
            continue;
        if (listed == 8) {
            oss << "  ...\n";
            break;
        }
        oss << "  " << d.str() << "\n";
        ++listed;
    }
    fatal(oss.str());
}

} // namespace gcm::verify

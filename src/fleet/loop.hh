/**
 * @file
 * Fleet-scale closed loop (DESIGN.md §15): streaming measurement
 * campaign → incremental retrain → canaried hot-swap, all on the
 * simulated clock.
 *
 * The batch pipeline of the paper's Fig. 1 characterizes once,
 * trains once and deploys once. FleetController closes it: every
 * round a sampled cohort of a synthesized 10k+ device fleet runs a
 * fault-injected measurement session (sim/campaign.hh) whose uploads
 * stream into one long-lived MeasurementRepository under its
 * existing trust boundary; on a cadence the RetrainConfig trains a
 * candidate SignatureCostModel from the accumulated (sparse, then
 * imputed) matrix; the CanaryConfig gate publishes the candidate
 * through ModelRegistry::publish, shadow-evaluates it against the
 * incumbent on a clean holdout (the chaos methodology of
 * core/chaos.hh: fault-free signature latencies in, fault-free
 * ground truth out — holdout devices never join a cohort), and
 * auto-rolls back + retires the candidate on an R² regression.
 * Between rounds a persistent ServerFrontEnd serves live traffic
 * against whatever version the gate left active, so hot-swap and
 * rollback happen under load.
 *
 * Determinism contract. The whole loop is a pure function of its
 * config at any GCM_THREADS: cohorts, fault schedules and traffic
 * are drawn from forked per-round rng streams; campaign, imputation
 * and training keep the PR-2 bit-identity contract; the front end's
 * plan/execute split pins the serving tier mix to the *configured*
 * worker count (TrafficConfig::workers — never the pool size); and
 * the canary evaluation is serial. renderFleetReport() therefore
 * emits byte-identical gcm-fleet/v1 JSON at 1, 2 or 8 threads. The
 * shared prediction cache's hit/miss counters are the one
 * scheduling-dependent diagnostic (see serve/frontend.hh) and are
 * deliberately excluded from the report.
 *
 * The signature set is selected once, at the bootstrap retrain, and
 * pinned for every later candidate (Config::pinned_signature):
 * fielded devices have already measured the deployed signature, so a
 * retrain that silently moved it would strand every device table.
 */

#ifndef GCM_FLEET_LOOP_HH
#define GCM_FLEET_LOOP_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/cost_model.hh"
#include "core/imputation.hh"
#include "dnn/generator.hh"
#include "fleet/synthesizer.hh"
#include "serve/frontend.hh"
#include "serve/registry.hh"
#include "sim/campaign.hh"
#include "sim/repository.hh"

namespace gcm::fleet
{

/** Incremental retraining policy. */
struct RetrainConfig
{
    /** Retrain after every this-many campaign rounds. */
    std::size_t cadence_rounds = 2;
    /** Minimum observed devices before a retrain is attempted. */
    std::size_t min_train_devices = 8;
    /** Training-matrix column cap (lowest device ids win). */
    std::size_t max_train_devices = 64;
    /**
     * Fraction of the suite a device must have uploaded before it
     * becomes a training column; sparser devices wait for later
     * rounds instead of flooding the matrix with imputed cells.
     */
    double min_coverage = 0.5;
    core::SignatureMethod method =
        core::SignatureMethod::MutualInformation;
    core::SignatureConfig selection;
    core::ImputationConfig imputation;
    ml::GbtParams gbt;

    /** Throws GcmError on invalid parameters. */
    void validate() const;
};

/** Canary gate policy. */
struct CanaryConfig
{
    /** Fleet fraction reserved as the clean holdout; in (0, 1). */
    double holdout_fraction = 0.2;
    /** Holdout devices actually shadow-evaluated (cost cap). */
    std::size_t max_eval_devices = 12;
    /**
     * Tolerated holdout-R² drop of a candidate below the incumbent;
     * any larger regression triggers rollback + retire.
     */
    double max_r2_regression = 0.01;
    /** Seed of the holdout/campaign device split. */
    std::uint64_t split_seed = 17;

    /** Throws GcmError on invalid parameters. */
    void validate() const;
};

/** Live serving traffic interleaved with the campaign rounds. */
struct TrafficConfig
{
    /** Requests served per round once a model is live; 0 disables. */
    std::size_t requests_per_round = 64;
    /** Distinct client devices in the request pool. */
    std::size_t device_pool = 12;
    /** Offered load as a fraction of front-end capacity. */
    double load_factor = 1.0;
    /** Fraction of requests tagged bulk priority. */
    double bulk_fraction = 0.25;
    std::uint64_t seed = 501;
    /**
     * Front-end worker threads. Must be explicit (> 0): the DES plan
     * consumes the worker count, so inheriting the GCM_THREADS pool
     * size would make the tier mix thread-count-dependent.
     */
    std::size_t workers = 2;
    /** Remaining front-end knobs; `workers` above overrides. */
    serve::FrontEndConfig frontend;

    /** Throws GcmError on invalid parameters. */
    void validate() const;
};

/** Full closed-loop configuration. */
struct FleetLoopConfig
{
    FleetSynthConfig fleet;
    /** Campaign rounds to run. */
    std::size_t rounds = 6;
    /** Devices sampled into each round's measurement cohort. */
    std::size_t devices_per_round = 24;
    /** Fault-injection rate of every measurement session; [0, 1). */
    double fault_rate = 0.1;
    /** Per-round cohort sampling stream. */
    std::uint64_t cohort_seed = 31;
    /** Generated networks appended to the zoo suite. */
    std::size_t num_random_networks = 8;
    std::uint64_t network_seed = 123;
    dnn::SearchSpace search_space;
    /**
     * Session parameters (noise, runs per network, retry policy).
     * faults / fault_seed / noise_seed are overridden per round from
     * fault_rate and the round index.
     */
    sim::CampaignConfig campaign;
    RetrainConfig retrain;
    CanaryConfig canary;
    TrafficConfig traffic;
    /**
     * Retrain ordinals whose training matrix is deterministically
     * corrupted before training — the injected-regression fixture
     * the canary gate must catch (tests/soak_fleet_loop.cc).
     */
    std::vector<std::size_t> sabotage_retrains;
    std::uint64_t sabotage_seed = 666;

    /** Throws GcmError on invalid parameters (including nested). */
    void validate() const;
};

/** What the canary gate decided about one candidate. */
enum class CanaryDecision
{
    Bootstrap,  // first model: published unconditionally
    Published,  // non-regressing: stayed active
    RolledBack, // regressed: rollback() + retire()
    Skipped,    // no candidate (too little data / training failed)
};

const char *canaryDecisionName(CanaryDecision decision);

/** One round's serving slice (absent before the first publish). */
struct RoundServeStats
{
    bool active = false;
    std::size_t offered = 0;
    std::size_t ok = 0;
    std::size_t errors = 0;
    std::size_t tier_full = 0;
    std::size_t tier_stale = 0;
    std::size_t tier_analytical = 0;
    std::size_t tier_shed = 0;
    double sim_duration_ms = 0.0;
};

/** One campaign round's accounting. */
struct RoundLog
{
    std::size_t round = 0;
    std::size_t cohort_devices = 0;
    std::uint64_t sessions_attempted = 0;
    std::uint64_t sessions_ok = 0;
    /** Uploads accepted into the streaming repository. */
    std::size_t records_appended = 0;
    /** Uploads rejected at the trust boundary (quarantined device). */
    std::size_t records_rejected = 0;
    /** Devices newly quarantined this round. */
    std::size_t quarantined_new = 0;
    /** Streaming repository size after the merge. */
    std::size_t repo_size = 0;
    double campaign_sim_ms = 0.0;
    RoundServeStats serve;
};

/** One retrain + canary decision. */
struct RetrainLog
{
    std::size_t ordinal = 0;
    /** Round index after which this retrain ran. */
    std::size_t round = 0;
    bool sabotaged = false;
    std::size_t train_devices = 0;
    std::size_t missing_cells = 0;
    std::size_t imputed_cells = 0;
    /** Candidate/incumbent clean-holdout R²; valid iff evaluated. */
    bool evaluated = false;
    double candidate_r2 = 0.0;
    double incumbent_r2 = 0.0;
    /** Version publish() assigned; 0 when the retrain was skipped. */
    serve::ModelRegistry::Version version = 0;
    CanaryDecision decision = CanaryDecision::Skipped;
    std::string reason;
};

/** Final state of one closed-loop run. */
struct FleetResult
{
    /** Pinned signature network names (empty if never bootstrapped). */
    std::vector<std::string> signature;
    std::vector<RoundLog> rounds;
    std::vector<RetrainLog> retrains;
    std::size_t publishes = 0;
    std::size_t rollbacks = 0;
    std::size_t skipped = 0;
    serve::ModelRegistry::Version final_version = 0;
    std::vector<serve::ModelRegistry::Version> registry_versions;
    std::size_t repo_size = 0;
    std::size_t quarantined_devices = 0;
    /** Holdout pool size / shadow-evaluated subset size. */
    std::size_t holdout_devices = 0;
    std::size_t eval_devices = 0;
    double sim_total_ms = 0.0;
    std::size_t served_total = 0;
    std::size_t shed_total = 0;
};

/** Runs the closed loop; see the file comment for the contract. */
class FleetController
{
  public:
    /** Validates and captures the config; builds suite + fleet. */
    explicit FleetController(FleetLoopConfig config);
    ~FleetController();

    /** Run the configured number of rounds. Call once. */
    FleetResult run();

    const sim::MeasurementRepository &repository() const
    {
        return repo_;
    }
    serve::ModelRegistry &registry() { return registry_; }
    const std::vector<std::string> &networkNames() const
    {
        return names_;
    }
    const sim::DeviceDatabase &fleet() const { return *fleet_; }

  private:
    void runRound(std::size_t round, FleetResult &result);
    void maybeRetrain(std::size_t round, FleetResult &result);
    RoundServeStats serveRound(std::size_t round);
    /** Clean-holdout R² of a model (chaos methodology, serial). */
    double evalHoldout(const core::SignatureCostModel &model) const;
    void buildFrontEnd(const core::SignatureCostModel &model);
    void ensureCleanHoldout();

    FleetLoopConfig config_;
    std::vector<dnn::Graph> suite_; // int8 deployment forms
    std::vector<std::string> names_;
    std::size_t zoo_count_ = 0; // names_[0..zoo_count_) are servable
    std::unique_ptr<sim::DeviceDatabase> fleet_;
    sim::LatencyModel model_;
    /** Fleet indices: campaign-eligible / holdout / evaluated. */
    std::vector<std::size_t> eligible_;
    std::vector<std::size_t> holdout_;
    std::vector<std::size_t> eval_holdout_;
    /** Fault-free holdout measurements (lazy; eval devices only). */
    sim::MeasurementRepository clean_holdout_;
    bool clean_holdout_ready_ = false;
    sim::MeasurementRepository repo_; // the streaming repository
    serve::ModelRegistry registry_;
    std::vector<std::size_t> pinned_signature_;
    double incumbent_r2_ = 0.0;
    std::unique_ptr<serve::ServerFrontEnd> frontend_;
    double sim_ms_ = 0.0;
    bool ran_ = false;
};

/**
 * The gcm-fleet/v1 report: config echo, pinned signature, per-round
 * and per-retrain logs and the summary block. Pure function of its
 * inputs; byte-identical at any thread count (doubles rendered
 * "%.17g", no wall-clock fields, no cache counters).
 */
std::string renderFleetReport(const FleetLoopConfig &config,
                              const FleetResult &result);

/** Convenience: construct, run, optionally render. */
FleetResult runFleetLoop(const FleetLoopConfig &config,
                         std::string *report_out = nullptr);

} // namespace gcm::fleet

#endif // GCM_FLEET_LOOP_HH

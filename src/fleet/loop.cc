#include "fleet/loop.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <optional>
#include <utility>

#include "core/evaluation.hh"
#include "dnn/quantize.hh"
#include "dnn/zoo.hh"
#include "ml/metrics.hh"
#include "obs/obs.hh"
#include "util/error.hh"
#include "util/json.hh"
#include "util/rng.hh"

namespace gcm::fleet
{

void
RetrainConfig::validate() const
{
    if (cadence_rounds == 0)
        fatal("RetrainConfig: cadence_rounds must be >= 1");
    if (min_train_devices < 2)
        fatal("RetrainConfig: min_train_devices must be >= 2");
    if (max_train_devices < min_train_devices) {
        fatal("RetrainConfig: max_train_devices (", max_train_devices,
              ") must be >= min_train_devices (", min_train_devices,
              ")");
    }
    if (!std::isfinite(min_coverage) || min_coverage <= 0.0
        || min_coverage > 1.0) {
        fatal("RetrainConfig: min_coverage must be in (0, 1], got ",
              min_coverage);
    }
    if (gbt.n_estimators == 0)
        fatal("RetrainConfig: gbt.n_estimators must be >= 1");
}

void
CanaryConfig::validate() const
{
    if (!std::isfinite(holdout_fraction) || holdout_fraction <= 0.0
        || holdout_fraction >= 1.0) {
        fatal("CanaryConfig: holdout_fraction must be in (0, 1), "
              "got ",
              holdout_fraction);
    }
    if (max_eval_devices == 0)
        fatal("CanaryConfig: max_eval_devices must be >= 1");
    if (!std::isfinite(max_r2_regression) || max_r2_regression < 0.0) {
        fatal("CanaryConfig: max_r2_regression must be finite and "
              ">= 0, got ",
              max_r2_regression);
    }
}

void
TrafficConfig::validate() const
{
    if (workers == 0) {
        fatal("TrafficConfig: workers must be explicit (>= 1); the "
              "serving plan consumes the worker count, so deferring "
              "to the GCM_THREADS pool size would break the "
              "any-thread-count report contract");
    }
    if (device_pool == 0)
        fatal("TrafficConfig: device_pool must be >= 1");
    if (!std::isfinite(load_factor) || load_factor <= 0.0)
        fatal("TrafficConfig: load_factor must be > 0, got ",
              load_factor);
    if (!std::isfinite(bulk_fraction) || bulk_fraction < 0.0
        || bulk_fraction > 1.0) {
        fatal("TrafficConfig: bulk_fraction must be in [0, 1], got ",
              bulk_fraction);
    }
    serve::FrontEndConfig resolved = frontend;
    resolved.workers = workers;
    resolved.validate();
}

void
FleetLoopConfig::validate() const
{
    if (rounds == 0)
        fatal("FleetLoopConfig: rounds must be >= 1");
    if (devices_per_round == 0)
        fatal("FleetLoopConfig: devices_per_round must be >= 1");
    if (!std::isfinite(fault_rate) || fault_rate < 0.0
        || fault_rate >= 1.0) {
        fatal("FleetLoopConfig: fault_rate must be in [0, 1), got ",
              fault_rate);
    }
    fleet.validate();
    campaign.validate();
    retrain.validate();
    canary.validate();
    traffic.validate();
}

const char *
canaryDecisionName(CanaryDecision decision)
{
    switch (decision) {
      case CanaryDecision::Bootstrap: return "bootstrap";
      case CanaryDecision::Published: return "published";
      case CanaryDecision::RolledBack: return "rolled_back";
      case CanaryDecision::Skipped: return "skipped";
    }
    return "?";
}

FleetController::FleetController(FleetLoopConfig config)
    : config_(std::move(config))
{
    config_.validate();

    // Suite: the 18-network zoo (servable by name through the front
    // end) plus generated networks that only the campaign measures.
    std::vector<dnn::Graph> fp32 = dnn::buildZoo();
    zoo_count_ = fp32.size();
    if (config_.num_random_networks > 0) {
        dnn::RandomNetworkGenerator gen(config_.search_space,
                                        config_.network_seed);
        auto random = gen.generateSuite(config_.num_random_networks,
                                        "fleetnet");
        for (auto &g : random)
            fp32.push_back(std::move(g));
    }
    suite_.reserve(fp32.size());
    names_.reserve(fp32.size());
    for (const auto &g : fp32) {
        suite_.push_back(dnn::quantize(g));
        names_.push_back(g.name());
    }

    fleet_ = std::make_unique<sim::DeviceDatabase>(
        synthesizeFleet(config_.fleet));

    // Holdout split, fixed for the loop's lifetime: holdout devices
    // never join a measurement cohort, so their fault-free ground
    // truth stays clean for every canary evaluation.
    const core::DeviceSplit split = core::splitDevices(
        fleet_->size(), config_.canary.holdout_fraction,
        config_.canary.split_seed);
    if (split.train.empty() || split.test.empty())
        fatal("FleetController: degenerate holdout split");
    eligible_ = split.train;
    holdout_ = split.test;
    eval_holdout_.assign(
        holdout_.begin(),
        holdout_.begin()
            + static_cast<std::ptrdiff_t>(
                std::min(config_.canary.max_eval_devices,
                         holdout_.size())));
}

FleetController::~FleetController() = default;

void
FleetController::ensureCleanHoldout()
{
    if (clean_holdout_ready_)
        return;
    // One fault-free campaign over the shadow-evaluated holdout
    // devices: its signature rows feed predictions in, its other
    // rows are the ground truth (core/chaos.hh methodology).
    std::vector<sim::DeviceSpec> specs;
    specs.reserve(eval_holdout_.size());
    for (std::size_t d : eval_holdout_)
        specs.push_back(fleet_->device(d));
    const sim::DeviceDatabase holdout_db =
        sim::DeviceDatabase::fromDevices(std::move(specs));
    sim::CampaignConfig clean = config_.campaign;
    clean.faults = sim::FaultParams{};
    const sim::CharacterizationCampaign campaign(holdout_db, model_,
                                                 clean);
    clean_holdout_ = campaign.run(suite_);
    clean_holdout_ready_ = true;
}

double
FleetController::evalHoldout(
    const core::SignatureCostModel &model) const
{
    GCM_ASSERT(clean_holdout_ready_,
               "evalHoldout: clean holdout not measured yet");
    std::vector<bool> is_sig(names_.size(), false);
    for (std::size_t s : model.signature())
        is_sig[s] = true;

    std::vector<double> y_true, y_pred;
    for (std::size_t d : eval_holdout_) {
        const std::int32_t id = fleet_->device(d).id;
        std::vector<double> sig_lat;
        sig_lat.reserve(model.signature().size());
        for (std::size_t s : model.signature())
            sig_lat.push_back(clean_holdout_.latencyMs(id, names_[s]));
        for (std::size_t n = 0; n < names_.size(); ++n) {
            if (is_sig[n])
                continue;
            y_true.push_back(clean_holdout_.latencyMs(id, names_[n]));
            y_pred.push_back(model.predictMs(suite_[n], sig_lat));
        }
    }
    return ml::r2Score(y_true, y_pred);
}

void
FleetController::buildFrontEnd(const core::SignatureCostModel &model)
{
    // Client pool: campaign-eligible devices whose fault-free
    // signature measurements seed the device table — the fleet
    // members that act as serving clients.
    const std::size_t pool_size =
        std::min(config_.traffic.device_pool, eligible_.size());
    Rng pool_rng(config_.traffic.seed);
    std::vector<std::size_t> picks =
        pool_rng.sampleWithoutReplacement(eligible_.size(), pool_size);
    std::sort(picks.begin(), picks.end());

    std::vector<sim::DeviceSpec> specs;
    specs.reserve(pool_size);
    for (std::size_t p : picks)
        specs.push_back(fleet_->device(eligible_[p]));
    const sim::DeviceDatabase pool_db =
        sim::DeviceDatabase::fromDevices(std::move(specs));

    std::vector<dnn::Graph> sig_suite;
    sig_suite.reserve(model.signature().size());
    for (std::size_t s : model.signature())
        sig_suite.push_back(suite_[s]);
    sim::CampaignConfig clean = config_.campaign;
    clean.faults = sim::FaultParams{};
    const sim::CharacterizationCampaign campaign(pool_db, model_,
                                                 clean);
    const sim::MeasurementRepository sig_repo = campaign.run(sig_suite);

    serve::PredictionService::DeviceTable table;
    for (std::size_t d = 0; d < pool_db.size(); ++d) {
        const sim::DeviceSpec &spec = pool_db.device(d);
        std::vector<double> sig;
        sig.reserve(model.signatureNames().size());
        for (const auto &name : model.signatureNames())
            sig.push_back(sig_repo.latencyMs(spec.id, name));
        table[spec.model_name] = std::move(sig);
    }

    serve::FrontEndConfig fc = config_.traffic.frontend;
    fc.workers = config_.traffic.workers;
    frontend_ = std::make_unique<serve::ServerFrontEnd>(
        registry_, std::move(table), fc);
}

void
FleetController::runRound(std::size_t round, FleetResult &result)
{
    RoundLog log;
    log.round = round;

    // Cohort: a fresh per-round draw from the campaign-eligible
    // fleet (never the holdout), on its own forked stream.
    const std::size_t k =
        std::min(config_.devices_per_round, eligible_.size());
    Rng cohort_rng = Rng(config_.cohort_seed).fork(round);
    std::vector<std::size_t> picks =
        cohort_rng.sampleWithoutReplacement(eligible_.size(), k);
    std::sort(picks.begin(), picks.end());
    std::vector<sim::DeviceSpec> specs;
    specs.reserve(k);
    for (std::size_t p : picks)
        specs.push_back(fleet_->device(eligible_[p]));
    log.cohort_devices = specs.size();
    const sim::DeviceDatabase cohort_db =
        sim::DeviceDatabase::fromDevices(std::move(specs));

    // Fault-injected measurement session; fresh fault/noise streams
    // per round so re-measured cells are new observations.
    sim::CampaignConfig cc = config_.campaign;
    cc.faults = sim::FaultParams::uniformRate(config_.fault_rate);
    cc.fault_seed =
        config_.campaign.fault_seed + 1000003 * (round + 1);
    cc.noise_seed = config_.campaign.noise_seed + 7919 * (round + 1);
    const sim::CharacterizationCampaign campaign(cohort_db, model_,
                                                 cc);
    const sim::CampaignReport report = campaign.runResilient(suite_);
    log.sessions_attempted = report.stats.sessions_attempted;
    log.sessions_ok = report.stats.sessions_ok;
    log.campaign_sim_ms = report.stats.simulated_ms;
    sim_ms_ += report.stats.simulated_ms;

    // Merge into the streaming repository under its trust boundary:
    // quarantines propagate first, then uploads from quarantined
    // devices (this round's or any earlier round's) are rejected.
    for (std::int32_t id : report.quarantined) {
        if (!repo_.isQuarantined(id)) {
            repo_.quarantine(id);
            ++log.quarantined_new;
        }
    }
    for (const auto &rec : report.repo.records()) {
        if (repo_.isQuarantined(rec.device_id)) {
            ++log.records_rejected;
            continue;
        }
        repo_.add(rec);
        ++log.records_appended;
    }
    log.repo_size = repo_.size();

    obs::counterAdd("fleet.rounds");
    obs::counterAdd("fleet.records.appended", log.records_appended);
    obs::counterAdd("fleet.records.rejected", log.records_rejected);
    obs::gaugeSet("fleet.repo.size",
                  static_cast<double>(repo_.size()));
    result.rounds.push_back(std::move(log));
}

void
FleetController::maybeRetrain(std::size_t round, FleetResult &result)
{
    RetrainLog log;
    log.ordinal = result.retrains.size();
    log.round = round;
    log.sabotaged =
        std::find(config_.sabotage_retrains.begin(),
                  config_.sabotage_retrains.end(), log.ordinal)
        != config_.sabotage_retrains.end();

    // Training columns: devices that streamed enough of the suite,
    // are not quarantined, lowest ids first (deterministic cap).
    std::map<std::int32_t, std::size_t> coverage;
    for (const auto &rec : repo_.records())
        ++coverage[rec.device_id];
    const double need =
        config_.retrain.min_coverage
        * static_cast<double>(names_.size());
    std::vector<std::int32_t> train_ids;
    for (const auto &[id, count] : coverage) {
        if (repo_.isQuarantined(id))
            continue;
        if (static_cast<double>(count) >= need)
            train_ids.push_back(id);
    }
    if (train_ids.size() > config_.retrain.max_train_devices)
        train_ids.resize(config_.retrain.max_train_devices);
    log.train_devices = train_ids.size();

    obs::counterAdd("fleet.retrains");
    if (train_ids.size() < config_.retrain.min_train_devices) {
        log.decision = CanaryDecision::Skipped;
        log.reason = "insufficient covered training devices";
        ++result.skipped;
        result.retrains.push_back(std::move(log));
        return;
    }

    auto matrix = repo_.sparseLatencyMatrix(train_ids, names_);
    log.missing_cells = repo_.missingCells(train_ids, names_);

    if (log.sabotaged) {
        // Injected regression: deterministically corrupt every
        // observed cell so the candidate trains on garbage — the
        // failure mode the canary gate exists to catch.
        Rng rng = Rng(config_.sabotage_seed).fork(log.ordinal);
        for (auto &row : matrix) {
            for (double &v : row) {
                if (std::isfinite(v))
                    v *= std::exp(rng.uniform(-1.5, 1.5));
            }
        }
    }

    core::SignatureCostModel::Config model_cfg;
    model_cfg.method = config_.retrain.method;
    model_cfg.selection = config_.retrain.selection;
    model_cfg.gbt = config_.retrain.gbt;
    model_cfg.pinned_signature = pinned_signature_;

    std::optional<core::SignatureCostModel> candidate;
    try {
        const core::ImputationStats istats = core::imputeLatencyMatrix(
            matrix, config_.retrain.imputation);
        log.imputed_cells =
            istats.nn_imputed + istats.median_imputed;
        candidate = core::SignatureCostModel::train(suite_, matrix,
                                                    model_cfg);
    } catch (const GcmError &e) {
        log.decision = CanaryDecision::Skipped;
        log.reason = std::string("training failed: ") + e.what();
        ++result.skipped;
        result.retrains.push_back(std::move(log));
        return;
    }

    // Canary gate: hot-swap the candidate in, shadow-evaluate it on
    // the clean holdout, and auto-rollback on regression. The very
    // first model has no incumbent and bootstraps unconditionally.
    ensureCleanHoldout();
    const bool bootstrap = registry_.activeVersion() == 0;
    log.version = registry_.publish(
        serve::ModelSnapshot::fromCostModel(std::move(*candidate)));
    const serve::ModelRegistry::ActiveModel active =
        registry_.active();
    const core::SignatureCostModel &published =
        active.snapshot->costModel();
    log.evaluated = true;
    log.candidate_r2 = evalHoldout(published);

    if (bootstrap) {
        pinned_signature_ = published.signature();
        result.signature = published.signatureNames();
        incumbent_r2_ = log.candidate_r2;
        log.incumbent_r2 = log.candidate_r2;
        log.decision = CanaryDecision::Bootstrap;
        log.reason = "first model; published unconditionally";
        ++result.publishes;
        buildFrontEnd(published);
        obs::counterAdd("fleet.canary.published");
    } else {
        log.incumbent_r2 = incumbent_r2_;
        if (log.candidate_r2 + config_.canary.max_r2_regression
            < incumbent_r2_) {
            registry_.rollback();
            registry_.retire(log.version);
            log.decision = CanaryDecision::RolledBack;
            log.reason =
                "clean-holdout R2 regressed beyond tolerance";
            ++result.rollbacks;
            obs::counterAdd("fleet.canary.rolled_back");
        } else {
            incumbent_r2_ = log.candidate_r2;
            log.decision = CanaryDecision::Published;
            log.reason = "non-regressing clean-holdout R2";
            ++result.publishes;
            obs::counterAdd("fleet.canary.published");
        }
    }
    result.retrains.push_back(std::move(log));
}

RoundServeStats
FleetController::serveRound(std::size_t round)
{
    RoundServeStats stats;
    stats.active = true;

    // Deterministic fixed-rate arrivals at load_factor x capacity.
    // Body and priority flags come from separate forked streams so
    // the request bytes for a round do not depend on bulk_fraction.
    std::vector<std::string> devices;
    for (const auto &[name, sig] : frontend_->deviceTable())
        devices.push_back(name);
    GCM_ASSERT(!devices.empty(), "serveRound: empty device table");

    const std::size_t n = config_.traffic.requests_per_round;
    const double step_ms =
        1000.0
        / (config_.traffic.load_factor * frontend_->capacityQps());
    Rng body_rng = Rng(config_.traffic.seed).fork(2 * round + 1);
    Rng bulk_rng = Rng(config_.traffic.seed).fork(2 * round + 2);

    std::vector<serve::Arrival> arrivals;
    arrivals.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        const std::string &network = names_[static_cast<std::size_t>(
            body_rng.uniformInt(
                0, static_cast<std::int64_t>(zoo_count_) - 1))];
        const std::string &device = devices[static_cast<std::size_t>(
            body_rng.uniformInt(
                0, static_cast<std::int64_t>(devices.size()) - 1))];
        std::string line = "{\"id\": ";
        json::appendJsonString(line,
                               "r" + std::to_string(round) + "-"
                                   + std::to_string(i));
        line += ", \"network\": ";
        json::appendJsonString(line, network);
        line += ", \"device\": ";
        json::appendJsonString(line, device);
        if (bulk_rng.bernoulli(config_.traffic.bulk_fraction))
            line += ", \"priority\": \"bulk\"";
        line += "}";
        arrivals.push_back(
            {static_cast<double>(i) * step_ms, std::move(line)});
    }

    const serve::FrontEndReport report =
        frontend_->run(arrivals, nullptr);
    stats.offered = report.offered;
    stats.ok = report.ok;
    stats.errors = report.errors;
    stats.tier_full = report.tier_full;
    stats.tier_stale = report.tier_stale;
    stats.tier_analytical = report.tier_analytical;
    stats.tier_shed = report.tier_shed;
    stats.sim_duration_ms = report.sim_duration_ms;
    sim_ms_ += report.sim_duration_ms;
    obs::counterAdd("fleet.serve.offered", report.offered);
    obs::counterAdd("fleet.serve.shed", report.tier_shed);
    return stats;
}

FleetResult
FleetController::run()
{
    if (ran_)
        fatal("FleetController::run: already ran; construct a fresh "
              "controller per loop");
    ran_ = true;
    const obs::TraceSpan span("fleet.loop");

    FleetResult result;
    result.holdout_devices = holdout_.size();
    result.eval_devices = eval_holdout_.size();
    for (std::size_t round = 0; round < config_.rounds; ++round) {
        runRound(round, result);
        if ((round + 1) % config_.retrain.cadence_rounds == 0)
            maybeRetrain(round, result);
        if (frontend_ != nullptr
            && config_.traffic.requests_per_round > 0) {
            result.rounds.back().serve = serveRound(round);
        }
    }

    result.final_version = registry_.activeVersion();
    result.registry_versions = registry_.versions();
    result.repo_size = repo_.size();
    result.quarantined_devices = repo_.quarantined().size();
    result.sim_total_ms = sim_ms_;
    for (const RoundLog &r : result.rounds) {
        result.served_total += r.serve.ok + r.serve.errors;
        result.shed_total += r.serve.tier_shed;
    }
    return result;
}

FleetResult
runFleetLoop(const FleetLoopConfig &config, std::string *report_out)
{
    FleetController controller(config);
    FleetResult result = controller.run();
    if (report_out != nullptr)
        *report_out = renderFleetReport(config, result);
    return result;
}

namespace
{

std::string
fmtDouble(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

void
appendServe(std::string &out, const RoundServeStats &s)
{
    if (!s.active) {
        out += "null";
        return;
    }
    out += "{\"offered\": " + std::to_string(s.offered)
        + ", \"ok\": " + std::to_string(s.ok)
        + ", \"errors\": " + std::to_string(s.errors)
        + ", \"full\": " + std::to_string(s.tier_full)
        + ", \"stale\": " + std::to_string(s.tier_stale)
        + ", \"analytical\": " + std::to_string(s.tier_analytical)
        + ", \"shed\": " + std::to_string(s.tier_shed)
        + ", \"sim_ms\": " + fmtDouble(s.sim_duration_ms) + "}";
}

} // namespace

std::string
renderFleetReport(const FleetLoopConfig &config,
                  const FleetResult &result)
{
    std::string out = "{\n";
    out += "  \"schema\": \"gcm-fleet/v1\",\n";
    out += "  \"config\": {\n";
    out += "    \"fleet_size\": "
        + std::to_string(config.fleet.fleet_size) + ",\n";
    out += "    \"fleet_seed\": " + std::to_string(config.fleet.seed)
        + ",\n";
    out += "    \"rounds\": " + std::to_string(config.rounds) + ",\n";
    out += "    \"devices_per_round\": "
        + std::to_string(config.devices_per_round) + ",\n";
    out += "    \"fault_rate\": " + fmtDouble(config.fault_rate)
        + ",\n";
    out += "    \"random_networks\": "
        + std::to_string(config.num_random_networks) + ",\n";
    out += "    \"cadence_rounds\": "
        + std::to_string(config.retrain.cadence_rounds) + ",\n";
    out += "    \"holdout_fraction\": "
        + fmtDouble(config.canary.holdout_fraction) + ",\n";
    out += "    \"max_r2_regression\": "
        + fmtDouble(config.canary.max_r2_regression) + ",\n";
    out += "    \"workers\": "
        + std::to_string(config.traffic.workers) + ",\n";
    out += "    \"requests_per_round\": "
        + std::to_string(config.traffic.requests_per_round) + "\n";
    out += "  },\n";

    out += "  \"holdout_devices\": "
        + std::to_string(result.holdout_devices) + ",\n";
    out += "  \"eval_devices\": "
        + std::to_string(result.eval_devices) + ",\n";
    out += "  \"signature\": [";
    for (std::size_t i = 0; i < result.signature.size(); ++i) {
        if (i > 0)
            out += ", ";
        json::appendJsonString(out, result.signature[i]);
    }
    out += "],\n";

    out += "  \"rounds\": [";
    for (std::size_t i = 0; i < result.rounds.size(); ++i) {
        const RoundLog &r = result.rounds[i];
        out += i == 0 ? "\n    " : ",\n    ";
        out += "{\"round\": " + std::to_string(r.round)
            + ", \"cohort\": " + std::to_string(r.cohort_devices)
            + ", \"sessions_attempted\": "
            + std::to_string(r.sessions_attempted)
            + ", \"sessions_ok\": " + std::to_string(r.sessions_ok)
            + ", \"appended\": " + std::to_string(r.records_appended)
            + ", \"rejected\": " + std::to_string(r.records_rejected)
            + ", \"quarantined_new\": "
            + std::to_string(r.quarantined_new)
            + ", \"repo_size\": " + std::to_string(r.repo_size)
            + ", \"campaign_sim_ms\": " + fmtDouble(r.campaign_sim_ms)
            + ", \"serve\": ";
        appendServe(out, r.serve);
        out += "}";
    }
    out += result.rounds.empty() ? "],\n" : "\n  ],\n";

    out += "  \"retrains\": [";
    for (std::size_t i = 0; i < result.retrains.size(); ++i) {
        const RetrainLog &t = result.retrains[i];
        out += i == 0 ? "\n    " : ",\n    ";
        out += "{\"ordinal\": " + std::to_string(t.ordinal)
            + ", \"round\": " + std::to_string(t.round)
            + ", \"sabotaged\": "
            + std::string(t.sabotaged ? "true" : "false")
            + ", \"train_devices\": "
            + std::to_string(t.train_devices)
            + ", \"missing_cells\": "
            + std::to_string(t.missing_cells)
            + ", \"imputed_cells\": "
            + std::to_string(t.imputed_cells) + ", \"candidate_r2\": "
            + (t.evaluated ? fmtDouble(t.candidate_r2) : "null")
            + ", \"incumbent_r2\": "
            + (t.evaluated ? fmtDouble(t.incumbent_r2) : "null")
            + ", \"version\": " + std::to_string(t.version)
            + ", \"decision\": \""
            + canaryDecisionName(t.decision) + "\", \"reason\": ";
        json::appendJsonString(out, t.reason);
        out += "}";
    }
    out += result.retrains.empty() ? "],\n" : "\n  ],\n";

    out += "  \"summary\": {\n";
    out += "    \"publishes\": " + std::to_string(result.publishes)
        + ",\n";
    out += "    \"rollbacks\": " + std::to_string(result.rollbacks)
        + ",\n";
    out += "    \"skipped\": " + std::to_string(result.skipped)
        + ",\n";
    out += "    \"final_version\": "
        + std::to_string(result.final_version) + ",\n";
    out += "    \"registry_versions\": [";
    for (std::size_t i = 0; i < result.registry_versions.size();
         ++i) {
        if (i > 0)
            out += ", ";
        out += std::to_string(result.registry_versions[i]);
    }
    out += "],\n";
    out += "    \"repo_size\": " + std::to_string(result.repo_size)
        + ",\n";
    out += "    \"quarantined_devices\": "
        + std::to_string(result.quarantined_devices) + ",\n";
    out += "    \"served_total\": "
        + std::to_string(result.served_total) + ",\n";
    out += "    \"shed_total\": " + std::to_string(result.shed_total)
        + ",\n";
    out += "    \"sim_total_ms\": " + fmtDouble(result.sim_total_ms)
        + "\n";
    out += "  }\n";
    out += "}\n";
    return out;
}

} // namespace gcm::fleet

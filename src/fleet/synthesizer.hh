/**
 * @file
 * FleetSynthesizer — expand the paper's 105 seed configurations into
 * a production-scale fleet (10k+ devices) with seeded per-device
 * variation, in the spirit of EmBench's observation that two "same
 * model" phones in the field differ in shipped frequency, thermal
 * budget, memory timings and firmware overhead (see PAPERS.md).
 *
 * Every synthesized device clones a seed config and perturbs the
 * knobs a fleet actually varies on: shipped big-core frequency,
 * thermal sustain, memory-subsystem efficiency and OS overhead.
 * Device i draws from Rng(seed).fork(i), so the fleet is a pure
 * function of the config — byte-identical at any thread count and
 * stable under fleet-size growth (device i never changes when the
 * fleet grows past it).
 */

#ifndef GCM_FLEET_SYNTHESIZER_HH
#define GCM_FLEET_SYNTHESIZER_HH

#include <cstddef>
#include <cstdint>

#include "sim/device.hh"

namespace gcm::fleet
{

/** Fleet synthesis parameters. */
struct FleetSynthConfig
{
    /** Synthesized fleet size (the production target is 10k+). */
    std::size_t fleet_size = 10000;
    /** Per-device variation stream seed. */
    std::uint64_t seed = 9000;
    /** Seed population the variants are cloned from. */
    std::uint64_t seed_fleet_seed = 2020;
    std::size_t seed_fleet_size = 105;
    /**
     * Multiplicative jitter half-widths. A variant multiplies the
     * seed device's value by U[1-j, 1+j] (OS overhead only grows:
     * U[1, 1+j] — field firmware accumulates bloat, it never sheds
     * it). Each must lie in [0, 0.5).
     */
    double freq_jitter = 0.05;
    double thermal_jitter = 0.15;
    double mem_jitter = 0.10;
    double os_jitter = 0.10;

    /** Throws GcmError on out-of-range parameters. */
    void validate() const;
};

/**
 * Synthesize the fleet: device i clones seed config (i % seed count)
 * with jittered factors, id i and a unique "-fv<generation>" model
 * name suffix. Validates the config first.
 */
sim::DeviceDatabase synthesizeFleet(const FleetSynthConfig &config);

} // namespace gcm::fleet

#endif // GCM_FLEET_SYNTHESIZER_HH

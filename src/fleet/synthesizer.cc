#include "fleet/synthesizer.hh"

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "util/error.hh"
#include "util/rng.hh"

namespace gcm::fleet
{

namespace
{

void
checkJitter(const char *name, double j)
{
    if (!std::isfinite(j) || j < 0.0 || j >= 0.5)
        fatal("FleetSynthConfig: ", name, " must be in [0, 0.5), got ",
              j);
}

} // namespace

void
FleetSynthConfig::validate() const
{
    if (fleet_size == 0)
        fatal("FleetSynthConfig: fleet_size must be >= 1");
    if (seed_fleet_size == 0)
        fatal("FleetSynthConfig: seed_fleet_size must be >= 1");
    checkJitter("freq_jitter", freq_jitter);
    checkJitter("thermal_jitter", thermal_jitter);
    checkJitter("mem_jitter", mem_jitter);
    checkJitter("os_jitter", os_jitter);
}

sim::DeviceDatabase
synthesizeFleet(const FleetSynthConfig &config)
{
    config.validate();
    const sim::DeviceDatabase seeds = sim::DeviceDatabase::standard(
        config.seed_fleet_seed, config.seed_fleet_size);
    const Rng root(config.seed);

    std::vector<sim::DeviceSpec> devices;
    devices.reserve(config.fleet_size);
    for (std::size_t i = 0; i < config.fleet_size; ++i) {
        Rng rng = root.fork(i);
        sim::DeviceSpec d = seeds.device(i % seeds.size());
        d.id = static_cast<std::int32_t>(i);
        // "-fv<g>" marks the variant generation; generation g covers
        // fleet indices [g * seeds, (g + 1) * seeds).
        d.model_name += "-fv" + std::to_string(i / seeds.size());
        d.freq_ghz *= 1.0
            + rng.uniform(-config.freq_jitter, config.freq_jitter);
        auto &h = d.hidden;
        h.thermal_sustain = std::clamp(
            h.thermal_sustain
                * (1.0
                   + rng.uniform(-config.thermal_jitter,
                                 config.thermal_jitter)),
            0.05, 1.0);
        h.mem_efficiency = std::max(
            0.05, h.mem_efficiency
                      * (1.0
                         + rng.uniform(-config.mem_jitter,
                                       config.mem_jitter)));
        h.os_overhead *= 1.0 + rng.uniform(0.0, config.os_jitter);
        devices.push_back(std::move(d));
    }
    return sim::DeviceDatabase::fromDevices(std::move(devices));
}

} // namespace gcm::fleet

/**
 * @file
 * Mutual-information estimation for the MIS signature-set selection
 * algorithm (Algorithm 1 in the paper).
 *
 * Two estimators are provided:
 *
 *  - Histogram estimator: discretizes each variable into quantile bins
 *    and evaluates the discrete MI sum from the paper. Only defined
 *    pairwise, so set-valued objectives must be approximated by sums.
 *
 *  - Gaussian estimator: models variables (log-latencies) as jointly
 *    Gaussian, where I(S; R) = 1/2 (logdet Sigma_SS + logdet Sigma_RR
 *    - logdet Sigma). This gives a proper set-valued objective; the
 *    paper's submodularity citation (Krause et al.) is exactly this
 *    Gaussian sensor-placement setting.
 */

#ifndef GCM_STATS_MUTUAL_INFO_HH
#define GCM_STATS_MUTUAL_INFO_HH

#include <cstddef>
#include <vector>

#include "stats/linalg.hh"

namespace gcm::stats
{

/**
 * Discretize samples into equal-frequency (quantile) bins.
 *
 * @param v Samples.
 * @param num_bins Number of bins (>= 2).
 * @return Bin index per sample, in [0, num_bins).
 */
std::vector<std::size_t> quantileBins(const std::vector<double> &v,
                                      std::size_t num_bins);

/**
 * Discrete mutual information (in nats) between two pre-binned
 * variables, using empirical joint/marginal frequencies.
 */
double discreteMutualInformation(const std::vector<std::size_t> &xb,
                                 const std::vector<std::size_t> &yb,
                                 std::size_t x_bins, std::size_t y_bins);

/**
 * Histogram MI between two continuous samples with quantile binning.
 */
double histogramMutualInformation(const std::vector<double> &x,
                                  const std::vector<double> &y,
                                  std::size_t num_bins = 8);

/**
 * Gaussian set-valued mutual-information estimator over a fixed set of
 * variables. Construct once from the sample matrix, then query
 * I(S; R) for arbitrary disjoint index sets.
 */
class GaussianMiEstimator
{
  public:
    /**
     * @param variables One sample vector per variable (equal lengths).
     * @param ridge Diagonal regularizer; needed because the number of
     *        samples (devices) can be smaller than the number of
     *        variables (networks).
     */
    explicit GaussianMiEstimator(
        const std::vector<std::vector<double>> &variables,
        double ridge = 1e-3);

    std::size_t numVariables() const { return cov_.size(); }

    /**
     * Estimate I(S; R) in nats.
     *
     * @param s First index set (non-empty, disjoint from r).
     * @param r Second index set (non-empty).
     */
    double setMi(const std::vector<std::size_t> &s,
                 const std::vector<std::size_t> &r) const;

  private:
    SymmetricMatrix cov_;
};

} // namespace gcm::stats

#endif // GCM_STATS_MUTUAL_INFO_HH

#include "stats/descriptive.hh"

#include <algorithm>
#include <cmath>

#include "util/error.hh"

namespace gcm::stats
{

double
mean(const std::vector<double> &v)
{
    GCM_ASSERT(!v.empty(), "mean of empty vector");
    double sum = 0.0;
    for (double x : v)
        sum += x;
    return sum / static_cast<double>(v.size());
}

double
variance(const std::vector<double> &v)
{
    if (v.size() < 2)
        return 0.0;
    const double m = mean(v);
    double ss = 0.0;
    for (double x : v)
        ss += (x - m) * (x - m);
    return ss / static_cast<double>(v.size() - 1);
}

double
stddev(const std::vector<double> &v)
{
    return std::sqrt(variance(v));
}

double
quantile(std::vector<double> v, double q)
{
    GCM_ASSERT(!v.empty(), "quantile of empty vector");
    GCM_ASSERT(q >= 0.0 && q <= 1.0, "quantile out of [0,1]");
    std::sort(v.begin(), v.end());
    const double pos = q * static_cast<double>(v.size() - 1);
    const auto lo = static_cast<std::size_t>(std::floor(pos));
    const auto hi = static_cast<std::size_t>(std::ceil(pos));
    const double frac = pos - static_cast<double>(lo);
    return v[lo] + frac * (v[hi] - v[lo]);
}

double
median(const std::vector<double> &v)
{
    return quantile(v, 0.5);
}

Summary
summarize(const std::vector<double> &v)
{
    GCM_ASSERT(!v.empty(), "summarize of empty vector");
    Summary s;
    s.min = *std::min_element(v.begin(), v.end());
    s.max = *std::max_element(v.begin(), v.end());
    s.q1 = quantile(v, 0.25);
    s.median = quantile(v, 0.5);
    s.q3 = quantile(v, 0.75);
    s.mean = mean(v);
    s.stddev = stddev(v);
    s.count = v.size();
    return s;
}

} // namespace gcm::stats

#include "stats/linalg.hh"

#include <cmath>

#include "util/error.hh"

namespace gcm::stats
{

SymmetricMatrix
SymmetricMatrix::submatrix(const std::vector<std::size_t> &idx) const
{
    SymmetricMatrix sub(idx.size());
    for (std::size_t i = 0; i < idx.size(); ++i) {
        GCM_ASSERT(idx[i] < n_, "submatrix index out of range");
        for (std::size_t j = 0; j < idx.size(); ++j)
            sub.at(i, j) = at(idx[i], idx[j]);
    }
    return sub;
}

SymmetricMatrix
covarianceMatrix(const std::vector<std::vector<double>> &variables,
                 double ridge)
{
    const std::size_t p = variables.size();
    GCM_ASSERT(p > 0, "covarianceMatrix: no variables");
    const std::size_t n = variables[0].size();
    GCM_ASSERT(n >= 2, "covarianceMatrix: need >= 2 samples");

    std::vector<double> means(p, 0.0);
    for (std::size_t v = 0; v < p; ++v) {
        GCM_ASSERT(variables[v].size() == n,
                   "covarianceMatrix: unequal sample sizes");
        for (double x : variables[v])
            means[v] += x;
        means[v] /= static_cast<double>(n);
    }

    SymmetricMatrix cov(p);
    for (std::size_t i = 0; i < p; ++i) {
        for (std::size_t j = i; j < p; ++j) {
            double s = 0.0;
            for (std::size_t k = 0; k < n; ++k) {
                s += (variables[i][k] - means[i])
                    * (variables[j][k] - means[j]);
            }
            s /= static_cast<double>(n - 1);
            cov.at(i, j) = s;
            cov.at(j, i) = s;
        }
        cov.at(i, i) += ridge;
    }
    return cov;
}

double
choleskyLogDet(const SymmetricMatrix &a)
{
    const std::size_t n = a.size();
    GCM_ASSERT(n > 0, "choleskyLogDet: empty matrix");
    // In-place lower Cholesky on a working copy.
    std::vector<double> l(n * n, 0.0);
    double log_det = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
        double d = a.at(j, j);
        for (std::size_t k = 0; k < j; ++k)
            d -= l[j * n + k] * l[j * n + k];
        if (d <= 0.0) {
            fatal("choleskyLogDet: matrix not positive definite "
                  "(pivot ", d, " at index ", j, ")");
        }
        const double ljj = std::sqrt(d);
        l[j * n + j] = ljj;
        log_det += 2.0 * std::log(ljj);
        for (std::size_t i = j + 1; i < n; ++i) {
            double s = a.at(i, j);
            for (std::size_t k = 0; k < j; ++k)
                s -= l[i * n + k] * l[j * n + k];
            l[i * n + j] = s / ljj;
        }
    }
    return log_det;
}

} // namespace gcm::stats

/**
 * @file
 * Pearson and Spearman correlation, including the pairwise Spearman
 * matrix that drives the SCCS signature-set selection (Algorithm 2).
 */

#ifndef GCM_STATS_CORRELATION_HH
#define GCM_STATS_CORRELATION_HH

#include <vector>

namespace gcm::stats
{

/**
 * Pearson correlation coefficient of two equal-length samples.
 * Returns 0 when either sample has zero variance.
 */
double pearson(const std::vector<double> &x, const std::vector<double> &y);

/**
 * Fractional ranks with average tie handling (rank starts at 1), the
 * convention used when defining the Spearman coefficient.
 */
std::vector<double> ranks(const std::vector<double> &v);

/** Spearman rank correlation: Pearson on the ranks. */
double spearman(const std::vector<double> &x, const std::vector<double> &y);

/**
 * Pairwise Spearman matrix between variables.
 *
 * @param variables One sample vector per variable; all equal length.
 * @return Symmetric matrix rho with rho[i][j] = spearman(var_i, var_j).
 */
std::vector<std::vector<double>>
spearmanMatrix(const std::vector<std::vector<double>> &variables);

} // namespace gcm::stats

#endif // GCM_STATS_CORRELATION_HH

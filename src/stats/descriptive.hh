/**
 * @file
 * Descriptive statistics used throughout exploratory data analysis
 * (Section II of the paper) and result reporting.
 */

#ifndef GCM_STATS_DESCRIPTIVE_HH
#define GCM_STATS_DESCRIPTIVE_HH

#include <cstddef>
#include <vector>

namespace gcm::stats
{

/** Arithmetic mean. @pre !v.empty() */
double mean(const std::vector<double> &v);

/** Unbiased sample variance (n-1 denominator); 0 when n < 2. */
double variance(const std::vector<double> &v);

/** Sample standard deviation. */
double stddev(const std::vector<double> &v);

/**
 * Linear-interpolation quantile (type-7, the numpy default).
 *
 * @param v Values (need not be sorted).
 * @param q Quantile in [0, 1].
 */
double quantile(std::vector<double> v, double q);

/** Median, i.e. quantile(v, 0.5). */
double median(const std::vector<double> &v);

/** Five-number summary plus mean/stddev, as shown in violin plots. */
struct Summary
{
    double min = 0.0;
    double q1 = 0.0;
    double median = 0.0;
    double q3 = 0.0;
    double max = 0.0;
    double mean = 0.0;
    double stddev = 0.0;
    std::size_t count = 0;
};

/** Compute a Summary. @pre !v.empty() */
Summary summarize(const std::vector<double> &v);

} // namespace gcm::stats

#endif // GCM_STATS_DESCRIPTIVE_HH

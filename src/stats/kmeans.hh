/**
 * @file
 * Lloyd's k-means with k-means++ initialization.
 *
 * Used for the paper's exploratory analysis: clustering the 105
 * devices (each a 118-dim latency vector) into fast/medium/slow, and
 * the 118 networks (each a 105-dim vector) into small/large/giant.
 */

#ifndef GCM_STATS_KMEANS_HH
#define GCM_STATS_KMEANS_HH

#include <cstddef>
#include <vector>

#include "util/rng.hh"

namespace gcm::stats
{

/** Result of a k-means run. */
struct KMeansResult
{
    /** Cluster index per input point. */
    std::vector<std::size_t> assignments;
    /** Cluster centroids, centroids[k] has the point dimensionality. */
    std::vector<std::vector<double>> centroids;
    /** Sum of squared distances of points to their centroid. */
    double inertia = 0.0;
    /** Lloyd iterations of the best restart until convergence. */
    std::size_t iterations = 0;
};

/** Configuration for kMeans(). */
struct KMeansConfig
{
    std::size_t k = 3;
    std::size_t max_iterations = 100;
    /** Independent restarts; the lowest-inertia run is kept. */
    std::size_t num_restarts = 8;
    std::uint64_t seed = 42;
};

/**
 * Cluster points with k-means.
 *
 * @param points Row per point; all rows equal length.
 * @param cfg Algorithm configuration. @pre cfg.k <= points.size()
 */
KMeansResult kMeans(const std::vector<std::vector<double>> &points,
                    const KMeansConfig &cfg);

} // namespace gcm::stats

#endif // GCM_STATS_KMEANS_HH

/**
 * @file
 * Small dense linear-algebra helpers: just enough for the Gaussian
 * mutual-information estimator (covariances, Cholesky log-determinant)
 * used by MIS signature-set selection.
 */

#ifndef GCM_STATS_LINALG_HH
#define GCM_STATS_LINALG_HH

#include <cstddef>
#include <vector>

namespace gcm::stats
{

/** Dense square symmetric matrix in row-major storage. */
class SymmetricMatrix
{
  public:
    explicit SymmetricMatrix(std::size_t n) : n_(n), data_(n * n, 0.0) {}

    std::size_t size() const { return n_; }

    double &at(std::size_t i, std::size_t j) { return data_[i * n_ + j]; }
    double at(std::size_t i, std::size_t j) const
    {
        return data_[i * n_ + j];
    }

    /** Extract the principal submatrix indexed by idx. */
    SymmetricMatrix submatrix(const std::vector<std::size_t> &idx) const;

  private:
    std::size_t n_;
    std::vector<double> data_;
};

/**
 * Sample covariance matrix of variables.
 *
 * @param variables One sample vector per variable (equal lengths >= 2).
 * @param ridge Value added to the diagonal for numerical stability.
 */
SymmetricMatrix
covarianceMatrix(const std::vector<std::vector<double>> &variables,
                 double ridge = 0.0);

/**
 * log(det(A)) of a symmetric positive-definite matrix via Cholesky.
 * Throws GcmError if A is not positive definite.
 */
double choleskyLogDet(const SymmetricMatrix &a);

} // namespace gcm::stats

#endif // GCM_STATS_LINALG_HH

#include "stats/kmeans.hh"

#include <cmath>
#include <limits>

#include "util/error.hh"

namespace gcm::stats
{

namespace
{

double
squaredDistance(const std::vector<double> &a, const std::vector<double> &b)
{
    double d = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        const double diff = a[i] - b[i];
        d += diff * diff;
    }
    return d;
}

/** k-means++ seeding: spread initial centroids proportionally to D^2. */
std::vector<std::vector<double>>
kmeansPlusPlusInit(const std::vector<std::vector<double>> &points,
                   std::size_t k, Rng &rng)
{
    std::vector<std::vector<double>> centroids;
    centroids.reserve(k);
    const std::size_t n = points.size();
    centroids.push_back(
        points[static_cast<std::size_t>(rng.uniformInt(
            0, static_cast<std::int64_t>(n) - 1))]);
    std::vector<double> d2(n, std::numeric_limits<double>::max());
    while (centroids.size() < k) {
        for (std::size_t i = 0; i < n; ++i) {
            d2[i] = std::min(d2[i],
                             squaredDistance(points[i], centroids.back()));
        }
        double total = 0.0;
        for (double d : d2)
            total += d;
        if (total <= 0.0) {
            // All remaining points coincide with a centroid; pick any.
            centroids.push_back(points[static_cast<std::size_t>(
                rng.uniformInt(0, static_cast<std::int64_t>(n) - 1))]);
            continue;
        }
        double r = rng.uniform() * total;
        std::size_t chosen = n - 1;
        for (std::size_t i = 0; i < n; ++i) {
            r -= d2[i];
            if (r < 0.0) {
                chosen = i;
                break;
            }
        }
        centroids.push_back(points[chosen]);
    }
    return centroids;
}

KMeansResult
runLloyd(const std::vector<std::vector<double>> &points,
         const KMeansConfig &cfg, Rng &rng)
{
    const std::size_t n = points.size();
    const std::size_t dim = points[0].size();
    KMeansResult res;
    res.centroids = kmeansPlusPlusInit(points, cfg.k, rng);
    res.assignments.assign(n, 0);

    for (std::size_t iter = 0; iter < cfg.max_iterations; ++iter) {
        bool changed = false;
        // Assignment step.
        for (std::size_t i = 0; i < n; ++i) {
            double best = std::numeric_limits<double>::max();
            std::size_t best_k = 0;
            for (std::size_t c = 0; c < cfg.k; ++c) {
                const double d = squaredDistance(points[i],
                                                 res.centroids[c]);
                if (d < best) {
                    best = d;
                    best_k = c;
                }
            }
            if (res.assignments[i] != best_k) {
                res.assignments[i] = best_k;
                changed = true;
            }
        }
        res.iterations = iter + 1;
        // Update step.
        std::vector<std::vector<double>> sums(
            cfg.k, std::vector<double>(dim, 0.0));
        std::vector<std::size_t> counts(cfg.k, 0);
        for (std::size_t i = 0; i < n; ++i) {
            for (std::size_t d = 0; d < dim; ++d)
                sums[res.assignments[i]][d] += points[i][d];
            ++counts[res.assignments[i]];
        }
        for (std::size_t c = 0; c < cfg.k; ++c) {
            if (counts[c] == 0) {
                // Re-seed an empty cluster on a random point.
                res.centroids[c] = points[static_cast<std::size_t>(
                    rng.uniformInt(0, static_cast<std::int64_t>(n) - 1))];
                changed = true;
                continue;
            }
            for (std::size_t d = 0; d < dim; ++d) {
                res.centroids[c][d] =
                    sums[c][d] / static_cast<double>(counts[c]);
            }
        }
        if (!changed)
            break;
    }

    res.inertia = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        res.inertia +=
            squaredDistance(points[i], res.centroids[res.assignments[i]]);
    }
    return res;
}

} // namespace

KMeansResult
kMeans(const std::vector<std::vector<double>> &points,
       const KMeansConfig &cfg)
{
    GCM_ASSERT(cfg.k > 0, "kMeans: k must be positive");
    GCM_ASSERT(points.size() >= cfg.k, "kMeans: fewer points than k");
    GCM_ASSERT(cfg.num_restarts > 0, "kMeans: need >= 1 restart");
    for (const auto &p : points) {
        GCM_ASSERT(p.size() == points[0].size(),
                   "kMeans: inconsistent point dimensionality");
    }

    Rng rng(cfg.seed);
    KMeansResult best;
    best.inertia = std::numeric_limits<double>::max();
    for (std::size_t r = 0; r < cfg.num_restarts; ++r) {
        Rng restart_rng = rng.fork(r);
        KMeansResult res = runLloyd(points, cfg, restart_rng);
        if (res.inertia < best.inertia)
            best = std::move(res);
    }
    return best;
}

} // namespace gcm::stats

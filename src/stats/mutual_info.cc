#include "stats/mutual_info.hh"

#include <algorithm>
#include <cmath>

#include "stats/descriptive.hh"
#include "util/error.hh"

namespace gcm::stats
{

std::vector<std::size_t>
quantileBins(const std::vector<double> &v, std::size_t num_bins)
{
    GCM_ASSERT(num_bins >= 2, "quantileBins: need >= 2 bins");
    GCM_ASSERT(!v.empty(), "quantileBins: empty input");
    // Compute bin edges at the interior quantiles.
    std::vector<double> edges;
    edges.reserve(num_bins - 1);
    for (std::size_t b = 1; b < num_bins; ++b) {
        edges.push_back(
            quantile(v, static_cast<double>(b) / num_bins));
    }
    std::vector<std::size_t> bins(v.size());
    for (std::size_t i = 0; i < v.size(); ++i) {
        const auto it =
            std::upper_bound(edges.begin(), edges.end(), v[i]);
        bins[i] = static_cast<std::size_t>(it - edges.begin());
    }
    return bins;
}

double
discreteMutualInformation(const std::vector<std::size_t> &xb,
                          const std::vector<std::size_t> &yb,
                          std::size_t x_bins, std::size_t y_bins)
{
    GCM_ASSERT(xb.size() == yb.size(),
               "discreteMutualInformation: size mismatch");
    GCM_ASSERT(!xb.empty(), "discreteMutualInformation: empty input");
    const double n = static_cast<double>(xb.size());
    std::vector<double> joint(x_bins * y_bins, 0.0);
    std::vector<double> px(x_bins, 0.0), py(y_bins, 0.0);
    for (std::size_t i = 0; i < xb.size(); ++i) {
        GCM_ASSERT(xb[i] < x_bins && yb[i] < y_bins,
                   "discreteMutualInformation: bin out of range");
        joint[xb[i] * y_bins + yb[i]] += 1.0;
        px[xb[i]] += 1.0;
        py[yb[i]] += 1.0;
    }
    double mi = 0.0;
    for (std::size_t a = 0; a < x_bins; ++a) {
        for (std::size_t b = 0; b < y_bins; ++b) {
            const double pxy = joint[a * y_bins + b] / n;
            if (pxy <= 0.0)
                continue;
            mi += pxy * std::log(pxy / ((px[a] / n) * (py[b] / n)));
        }
    }
    return std::max(mi, 0.0);
}

double
histogramMutualInformation(const std::vector<double> &x,
                           const std::vector<double> &y,
                           std::size_t num_bins)
{
    return discreteMutualInformation(quantileBins(x, num_bins),
                                     quantileBins(y, num_bins), num_bins,
                                     num_bins);
}

GaussianMiEstimator::GaussianMiEstimator(
    const std::vector<std::vector<double>> &variables, double ridge)
    : cov_(covarianceMatrix(variables, /*ridge=*/0.0))
{
    GCM_ASSERT(ridge > 0.0, "GaussianMiEstimator: ridge must be > 0");
    // Scale the ridge by the average variance so the regularization is
    // invariant to the units of the inputs.
    double avg_var = 0.0;
    for (std::size_t i = 0; i < cov_.size(); ++i)
        avg_var += cov_.at(i, i);
    avg_var /= static_cast<double>(cov_.size());
    const double eps = std::max(ridge * avg_var, 1e-12);
    for (std::size_t i = 0; i < cov_.size(); ++i)
        cov_.at(i, i) += eps;
}

double
GaussianMiEstimator::setMi(const std::vector<std::size_t> &s,
                           const std::vector<std::size_t> &r) const
{
    GCM_ASSERT(!s.empty() && !r.empty(), "setMi: empty index set");
    std::vector<std::size_t> joint = s;
    joint.insert(joint.end(), r.begin(), r.end());
    const double ld_s = choleskyLogDet(cov_.submatrix(s));
    const double ld_r = choleskyLogDet(cov_.submatrix(r));
    const double ld_j = choleskyLogDet(cov_.submatrix(joint));
    return std::max(0.5 * (ld_s + ld_r - ld_j), 0.0);
}

} // namespace gcm::stats

#include "stats/correlation.hh"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/error.hh"

namespace gcm::stats
{

double
pearson(const std::vector<double> &x, const std::vector<double> &y)
{
    GCM_ASSERT(x.size() == y.size(), "pearson: size mismatch");
    GCM_ASSERT(!x.empty(), "pearson: empty input");
    const double n = static_cast<double>(x.size());
    double mx = 0.0, my = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
        mx += x[i];
        my += y[i];
    }
    mx /= n;
    my /= n;
    double sxy = 0.0, sxx = 0.0, syy = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
        const double dx = x[i] - mx;
        const double dy = y[i] - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if (sxx <= 0.0 || syy <= 0.0)
        return 0.0;
    return sxy / std::sqrt(sxx * syy);
}

std::vector<double>
ranks(const std::vector<double> &v)
{
    const std::size_t n = v.size();
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(),
              [&v](std::size_t a, std::size_t b) { return v[a] < v[b]; });
    std::vector<double> r(n, 0.0);
    std::size_t i = 0;
    while (i < n) {
        std::size_t j = i;
        while (j + 1 < n && v[order[j + 1]] == v[order[i]])
            ++j;
        // Average rank over the tie group [i, j].
        const double avg =
            (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
        for (std::size_t k = i; k <= j; ++k)
            r[order[k]] = avg;
        i = j + 1;
    }
    return r;
}

double
spearman(const std::vector<double> &x, const std::vector<double> &y)
{
    GCM_ASSERT(x.size() == y.size(), "spearman: size mismatch");
    return pearson(ranks(x), ranks(y));
}

std::vector<std::vector<double>>
spearmanMatrix(const std::vector<std::vector<double>> &variables)
{
    const std::size_t n = variables.size();
    // Pre-rank each variable once: Spearman is Pearson on ranks.
    std::vector<std::vector<double>> ranked(n);
    for (std::size_t i = 0; i < n; ++i) {
        GCM_ASSERT(variables[i].size() == variables[0].size(),
                   "spearmanMatrix: unequal sample sizes");
        ranked[i] = ranks(variables[i]);
    }
    std::vector<std::vector<double>> rho(n, std::vector<double>(n, 1.0));
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = i + 1; j < n; ++j) {
            const double c = pearson(ranked[i], ranked[j]);
            rho[i][j] = c;
            rho[j][i] = c;
        }
    }
    return rho;
}

} // namespace gcm::stats

/**
 * @file
 * Characterization campaign: orchestrates the full crowd-sourcing
 * pipeline of the paper's Fig. 1 — quantize every network, deploy to
 * every device in the fleet, run 30 repetitions each, and upload the
 * averaged results to the central repository. 118 networks x 105
 * devices yields the 12,390-point dataset.
 */

#ifndef GCM_SIM_CAMPAIGN_HH
#define GCM_SIM_CAMPAIGN_HH

#include <cstdint>
#include <vector>

#include "dnn/graph.hh"
#include "sim/device.hh"
#include "sim/faults.hh"
#include "sim/latency_model.hh"
#include "sim/measurement.hh"
#include "sim/repository.hh"

namespace gcm::sim
{

/**
 * Retry/backoff policy of the campaign scheduler, on the campaign's
 * *simulated* clock (the same clock session durations accrue on — no
 * wall-clock sleeping is involved).
 */
struct RetryPolicy
{
    /** Attempts per (device, network) cell before it is dropped. */
    std::size_t max_attempts = 4;
    /** Backoff before retry k is base * multiplier^k, capped. */
    double base_backoff_ms = 500.0;
    double backoff_multiplier = 2.0;
    double max_backoff_ms = 8000.0;
    /** Sessions running longer than this time out (stragglers). */
    double session_timeout_ms = 60000.0;
    /** Consecutive failed sessions before a device is quarantined. */
    std::size_t quarantine_after = 8;

    /** Throws GcmError on out-of-range values. */
    void validate() const;
};

/** Campaign configuration. */
struct CampaignConfig
{
    std::size_t runs_per_network = 30;
    std::uint64_t noise_seed = 404;
    NoiseParams noise;
    /** Execution target for all measurements. */
    ExecutionTarget target = ExecutionTarget::BigCore;
    /**
     * For the GPU target: skip devices whose delegate is unsupported
     * or flaky instead of polluting the repository — exactly the
     * filtering the paper had to do manually.
     */
    bool skip_unreliable_gpu_devices = true;
    /** Fault model. All-zero (the default) disables injection. */
    FaultParams faults;
    std::uint64_t fault_seed = 7021;
    RetryPolicy retry;
    /** Session aggregator uploaded to the repository. */
    Aggregator aggregator = Aggregator::Mean;

    /** Throws GcmError on invalid members (see NoiseParams etc.). */
    void validate() const;
};

/** Campaign-wide recovery counters. */
struct CampaignStats
{
    std::uint64_t sessions_attempted = 0;
    std::uint64_t sessions_ok = 0;
    std::uint64_t retries = 0;
    std::uint64_t crashes = 0;
    std::uint64_t stragglers = 0;
    std::uint64_t corrupt_rejected = 0;
    std::uint64_t duplicates = 0;
    /** Cells abandoned (max attempts, dropout, or quarantine purge). */
    std::uint64_t dropped_cells = 0;
    std::uint64_t completed_cells = 0;
    std::uint64_t quarantined_devices = 0;
    std::uint64_t dropout_devices = 0;
    /** Total simulated time, sessions plus backoff, milliseconds. */
    double simulated_ms = 0.0;
};

/**
 * Result of a resilient campaign: a (possibly sparse) repository plus
 * full accounting. Every planned cell is either completed or counted
 * in dropped_cells:
 *   completed_cells + dropped_cells == expected_cells.
 */
struct CampaignReport
{
    MeasurementRepository repo;
    CampaignStats stats;
    /** Device ids purged for repeated failures, ascending. */
    std::vector<std::int32_t> quarantined;
    /** Device ids that went dark mid-campaign, ascending. */
    std::vector<std::int32_t> dropouts;
    std::size_t expected_cells = 0;
};

/** Runs a measurement campaign over a device fleet. */
class CharacterizationCampaign
{
  public:
    CharacterizationCampaign(const DeviceDatabase &fleet,
                             LatencyModel model, CampaignConfig config = {});

    /**
     * Measure every network on every device. Devices are measured in
     * parallel (see util/parallel.hh); the resulting repository is
     * byte-identical at any thread count.
     *
     * @param suite Networks in deployment (fp32 or already-int8) form;
     *        fp32 graphs are quantized once up front, mirroring the
     *        pipeline in the paper's Fig. 1.
     */
    MeasurementRepository run(const std::vector<dnn::Graph> &suite) const;

    /**
     * Measure every network on every device under the configured
     * fault model, with the retry scheduler recovering from crashes,
     * stragglers and corrupt uploads (capped exponential backoff on
     * the simulated clock, per-session timeout, quarantine of repeat
     * offenders). With faults disabled the repository is
     * byte-identical to run()'s. Deterministic at any thread count.
     */
    CampaignReport runResilient(const std::vector<dnn::Graph> &suite)
        const;

    /**
     * Hoist the graph-invariant deployment work: quantize each fp32
     * network exactly once and reference already-int8 networks in
     * place. Returned pointers alias `suite` and `storage`; both must
     * outlive the result.
     */
    static std::vector<const dnn::Graph *>
    deployableSuite(const std::vector<dnn::Graph> &suite,
                    std::vector<dnn::Graph> &storage);

    /**
     * Measure a subset: one device, a list of networks. Used by the
     * collaborative simulation where each device contributes only a
     * few measurements.
     */
    void measureOnDevice(const dnn::Graph &int8_network,
                         const DeviceSpec &device,
                         MeasurementRepository &repo) const;

    /**
     * Devices the campaign will actually measure: all of them for the
     * CPU target; those with a Reliable delegate for the GPU target
     * (when skip_unreliable_gpu_devices is set).
     */
    std::vector<std::size_t> measurableDevices() const;

    /**
     * GPU-delegate reliability of one fleet device, as this campaign
     * (with its noise seed) would observe it.
     */
    GpuDelegateStatus delegateStatus(const DeviceSpec &device) const;

    const DeviceDatabase &fleet() const { return fleet_; }
    const LatencyModel &model() const { return model_; }
    const CampaignConfig &config() const { return config_; }

  private:
    /** One device's campaign under the fault model. */
    struct DeviceOutcome
    {
        /** Completed uploads, suite order (duplicates repeated). */
        std::vector<MeasurementRecord> records;
        CampaignStats stats;
        std::int32_t device_id = -1;
        bool quarantined = false;
        bool dropped_out = false;
    };

    /**
     * One device's full campaign block, in suite order, with fault
     * injection, retry/backoff and quarantine applied. With faults
     * disabled, exactly one clean session per network.
     */
    DeviceOutcome
    measureDeviceResilient(std::size_t fleet_idx,
                           const std::vector<const dnn::Graph *> &deployed,
                           const FaultInjector &injector) const;

    const DeviceDatabase &fleet_;
    LatencyModel model_;
    CampaignConfig config_;
};

} // namespace gcm::sim

#endif // GCM_SIM_CAMPAIGN_HH

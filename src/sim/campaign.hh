/**
 * @file
 * Characterization campaign: orchestrates the full crowd-sourcing
 * pipeline of the paper's Fig. 1 — quantize every network, deploy to
 * every device in the fleet, run 30 repetitions each, and upload the
 * averaged results to the central repository. 118 networks x 105
 * devices yields the 12,390-point dataset.
 */

#ifndef GCM_SIM_CAMPAIGN_HH
#define GCM_SIM_CAMPAIGN_HH

#include <cstdint>
#include <vector>

#include "dnn/graph.hh"
#include "sim/device.hh"
#include "sim/latency_model.hh"
#include "sim/measurement.hh"
#include "sim/repository.hh"

namespace gcm::sim
{

/** Campaign configuration. */
struct CampaignConfig
{
    std::size_t runs_per_network = 30;
    std::uint64_t noise_seed = 404;
    NoiseParams noise;
    /** Execution target for all measurements. */
    ExecutionTarget target = ExecutionTarget::BigCore;
    /**
     * For the GPU target: skip devices whose delegate is unsupported
     * or flaky instead of polluting the repository — exactly the
     * filtering the paper had to do manually.
     */
    bool skip_unreliable_gpu_devices = true;
};

/** Runs a measurement campaign over a device fleet. */
class CharacterizationCampaign
{
  public:
    CharacterizationCampaign(const DeviceDatabase &fleet,
                             LatencyModel model, CampaignConfig config = {});

    /**
     * Measure every network on every device. Devices are measured in
     * parallel (see util/parallel.hh); the resulting repository is
     * byte-identical at any thread count.
     *
     * @param suite Networks in deployment (fp32 or already-int8) form;
     *        fp32 graphs are quantized once up front, mirroring the
     *        pipeline in the paper's Fig. 1.
     */
    MeasurementRepository run(const std::vector<dnn::Graph> &suite) const;

    /**
     * Hoist the graph-invariant deployment work: quantize each fp32
     * network exactly once and reference already-int8 networks in
     * place. Returned pointers alias `suite` and `storage`; both must
     * outlive the result.
     */
    static std::vector<const dnn::Graph *>
    deployableSuite(const std::vector<dnn::Graph> &suite,
                    std::vector<dnn::Graph> &storage);

    /**
     * Measure a subset: one device, a list of networks. Used by the
     * collaborative simulation where each device contributes only a
     * few measurements.
     */
    void measureOnDevice(const dnn::Graph &int8_network,
                         const DeviceSpec &device,
                         MeasurementRepository &repo) const;

    /**
     * Devices the campaign will actually measure: all of them for the
     * CPU target; those with a Reliable delegate for the GPU target
     * (when skip_unreliable_gpu_devices is set).
     */
    std::vector<std::size_t> measurableDevices() const;

    /**
     * GPU-delegate reliability of one fleet device, as this campaign
     * (with its noise seed) would observe it.
     */
    GpuDelegateStatus delegateStatus(const DeviceSpec &device) const;

    const DeviceDatabase &fleet() const { return fleet_; }
    const LatencyModel &model() const { return model_; }
    const CampaignConfig &config() const { return config_; }

  private:
    /** One device's full measurement block, in suite order. */
    std::vector<MeasurementRecord>
    measureDevice(std::size_t fleet_idx,
                  const std::vector<const dnn::Graph *> &deployed) const;

    const DeviceDatabase &fleet_;
    LatencyModel model_;
    CampaignConfig config_;
};

} // namespace gcm::sim

#endif // GCM_SIM_CAMPAIGN_HH

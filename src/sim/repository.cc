#include "sim/repository.hh"

#include "util/csv.hh"
#include "util/error.hh"

namespace gcm::sim
{

void
MeasurementRepository::add(MeasurementRecord record)
{
    const auto key = std::make_pair(record.device_id, record.network);
    const auto it = index_.find(key);
    if (it != index_.end()) {
        records_[it->second] = std::move(record);
        return;
    }
    index_.emplace(key, records_.size());
    records_.push_back(std::move(record));
}

bool
MeasurementRepository::has(std::int32_t device_id,
                           const std::string &network) const
{
    return index_.count(std::make_pair(device_id, network)) > 0;
}

double
MeasurementRepository::latencyMs(std::int32_t device_id,
                                 const std::string &network) const
{
    const auto it = index_.find(std::make_pair(device_id, network));
    if (it == index_.end()) {
        fatal("repository: no measurement for device ", device_id,
              " network '", network, "'");
    }
    return records_[it->second].mean_ms;
}

std::vector<std::vector<double>>
MeasurementRepository::latencyMatrix(
    const std::vector<std::int32_t> &device_ids,
    const std::vector<std::string> &networks) const
{
    std::vector<std::vector<double>> m(
        networks.size(), std::vector<double>(device_ids.size(), 0.0));
    for (std::size_t n = 0; n < networks.size(); ++n) {
        for (std::size_t d = 0; d < device_ids.size(); ++d)
            m[n][d] = latencyMs(device_ids[d], networks[n]);
    }
    return m;
}

std::string
MeasurementRepository::toCsv() const
{
    CsvDocument doc;
    doc.header = {"device_id", "device", "network", "mean_ms",
                  "stddev_ms", "runs"};
    for (const auto &r : records_) {
        doc.rows.push_back({std::to_string(r.device_id), r.device_name,
                            r.network, std::to_string(r.mean_ms),
                            std::to_string(r.stddev_ms),
                            std::to_string(r.runs)});
    }
    return gcm::toCsv(doc);
}

MeasurementRepository
MeasurementRepository::fromCsv(const std::string &text)
{
    const CsvDocument doc = parseCsv(text);
    const std::size_t c_id = doc.columnIndex("device_id");
    const std::size_t c_dev = doc.columnIndex("device");
    const std::size_t c_net = doc.columnIndex("network");
    const std::size_t c_mean = doc.columnIndex("mean_ms");
    const std::size_t c_std = doc.columnIndex("stddev_ms");
    const std::size_t c_runs = doc.columnIndex("runs");
    MeasurementRepository repo;
    for (const auto &row : doc.rows) {
        MeasurementRecord r;
        r.device_id = std::stoi(row[c_id]);
        r.device_name = row[c_dev];
        r.network = row[c_net];
        r.mean_ms = std::stod(row[c_mean]);
        r.stddev_ms = std::stod(row[c_std]);
        r.runs = std::stoi(row[c_runs]);
        repo.add(std::move(r));
    }
    return repo;
}

} // namespace gcm::sim

#include "sim/repository.hh"

#include <cmath>
#include <cstdio>
#include <limits>

#include "util/csv.hh"
#include "util/error.hh"

namespace gcm::sim
{

bool
MeasurementRepository::validRecord(const MeasurementRecord &record)
{
    return std::isfinite(record.mean_ms) && record.mean_ms > 0.0
        && record.mean_ms < kMaxPlausibleMs
        && std::isfinite(record.stddev_ms) && record.stddev_ms >= 0.0
        && record.runs > 0;
}

void
MeasurementRepository::add(MeasurementRecord record)
{
    if (!validRecord(record)) {
        fatal("repository: rejecting invalid upload for device ",
              record.device_id, " network '", record.network,
              "' (mean ", record.mean_ms, " ms, stddev ",
              record.stddev_ms, " ms, ", record.runs, " runs)");
    }
    if (isQuarantined(record.device_id)) {
        fatal("repository: device ", record.device_id,
              " is quarantined and cannot contribute");
    }
    const auto key = std::make_pair(record.device_id, record.network);
    const auto it = index_.find(key);
    if (it != index_.end()) {
        records_[it->second] = std::move(record);
        return;
    }
    index_.emplace(key, records_.size());
    records_.push_back(std::move(record));
}

void
MeasurementRepository::quarantine(std::int32_t device_id)
{
    quarantined_.insert(device_id);
}

bool
MeasurementRepository::isQuarantined(std::int32_t device_id) const
{
    return quarantined_.count(device_id) > 0;
}

bool
MeasurementRepository::has(std::int32_t device_id,
                           const std::string &network) const
{
    return index_.count(std::make_pair(device_id, network)) > 0;
}

double
MeasurementRepository::latencyMs(std::int32_t device_id,
                                 const std::string &network) const
{
    const auto it = index_.find(std::make_pair(device_id, network));
    if (it == index_.end()) {
        fatal("repository: no measurement for device ", device_id,
              " network '", network, "'");
    }
    return records_[it->second].mean_ms;
}

std::vector<std::vector<double>>
MeasurementRepository::latencyMatrix(
    const std::vector<std::int32_t> &device_ids,
    const std::vector<std::string> &networks) const
{
    std::vector<std::vector<double>> m(
        networks.size(), std::vector<double>(device_ids.size(), 0.0));
    for (std::size_t n = 0; n < networks.size(); ++n) {
        for (std::size_t d = 0; d < device_ids.size(); ++d)
            m[n][d] = latencyMs(device_ids[d], networks[n]);
    }
    return m;
}

std::vector<std::vector<double>>
MeasurementRepository::sparseLatencyMatrix(
    const std::vector<std::int32_t> &device_ids,
    const std::vector<std::string> &networks) const
{
    std::vector<std::vector<double>> m(
        networks.size(),
        std::vector<double>(device_ids.size(),
                            std::numeric_limits<double>::quiet_NaN()));
    for (std::size_t n = 0; n < networks.size(); ++n) {
        for (std::size_t d = 0; d < device_ids.size(); ++d) {
            const auto it = index_.find(
                std::make_pair(device_ids[d], networks[n]));
            if (it != index_.end())
                m[n][d] = records_[it->second].mean_ms;
        }
    }
    return m;
}

std::size_t
MeasurementRepository::missingCells(
    const std::vector<std::int32_t> &device_ids,
    const std::vector<std::string> &networks) const
{
    std::size_t missing = 0;
    for (const auto &net : networks) {
        for (std::int32_t id : device_ids) {
            if (!has(id, net))
                ++missing;
        }
    }
    return missing;
}

namespace
{

/** Shortest decimal form that parses back to the same double. */
std::string
exactDouble(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

double
parseLatencyField(const std::string &field, const char *column,
                  std::size_t row)
{
    std::size_t consumed = 0;
    double v = 0.0;
    try {
        v = std::stod(field, &consumed);
    } catch (const std::exception &) {
        fatal("repository CSV row ", row, ": ", column, " '", field,
              "' is not a number");
    }
    if (consumed != field.size())
        fatal("repository CSV row ", row, ": ", column, " '", field,
              "' has trailing garbage");
    return v;
}

std::int32_t
parseIntField(const std::string &field, const char *column,
              std::size_t row)
{
    try {
        return static_cast<std::int32_t>(std::stol(field));
    } catch (const std::exception &) {
        fatal("repository CSV row ", row, ": ", column, " '", field,
              "' is not an integer");
    }
}

} // namespace

std::string
MeasurementRepository::toCsv() const
{
    CsvDocument doc;
    doc.header = {"device_id", "device", "network", "mean_ms",
                  "stddev_ms", "runs"};
    for (const auto &r : records_) {
        doc.rows.push_back({std::to_string(r.device_id), r.device_name,
                            r.network, exactDouble(r.mean_ms),
                            exactDouble(r.stddev_ms),
                            std::to_string(r.runs)});
    }
    return gcm::toCsv(doc);
}

MeasurementRepository
MeasurementRepository::fromCsv(const std::string &text)
{
    const CsvDocument doc = parseCsv(text);
    const std::size_t c_id = doc.columnIndex("device_id");
    const std::size_t c_dev = doc.columnIndex("device");
    const std::size_t c_net = doc.columnIndex("network");
    const std::size_t c_mean = doc.columnIndex("mean_ms");
    const std::size_t c_std = doc.columnIndex("stddev_ms");
    const std::size_t c_runs = doc.columnIndex("runs");
    MeasurementRepository repo;
    for (std::size_t i = 0; i < doc.rows.size(); ++i) {
        const auto &row = doc.rows[i];
        MeasurementRecord r;
        r.device_id = parseIntField(row[c_id], "device_id", i);
        r.device_name = row[c_dev];
        r.network = row[c_net];
        r.mean_ms = parseLatencyField(row[c_mean], "mean_ms", i);
        r.stddev_ms = parseLatencyField(row[c_std], "stddev_ms", i);
        r.runs = parseIntField(row[c_runs], "runs", i);
        if (!validRecord(r)) {
            fatal("repository CSV row ", i,
                  ": invalid latency for device ", r.device_id,
                  " network '", r.network, "' (mean ", r.mean_ms,
                  " ms, stddev ", r.stddev_ms, " ms, ", r.runs,
                  " runs)");
        }
        repo.add(std::move(r));
    }
    return repo;
}

} // namespace gcm::sim

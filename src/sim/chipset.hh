/**
 * @file
 * Mobile SoC (chipset) database: 38 chipsets across Qualcomm,
 * MediaTek, Samsung and HiSilicon, matching the paper's "38 unique
 * chipset types". Each entry pins the big-core family, peak big-core
 * frequency and memory technology.
 */

#ifndef GCM_SIM_CHIPSET_HH
#define GCM_SIM_CHIPSET_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/uarch.hh"

namespace gcm::sim
{

/** DRAM technology generation of a chipset's memory controller. */
enum class DramKind : std::uint8_t
{
    Lpddr3,
    Lpddr4,
    Lpddr4x,
    Lpddr5,
};

/** Effective single-core streaming bandwidth of a DRAM kind (GB/s). */
double dramBandwidthGBs(DramKind kind);

/** Display name of a DRAM kind. */
const char *dramKindName(DramKind kind);

/**
 * Integrated GPU description for the GPU-delegate execution target
 * (the extension the paper names but does not evaluate: "the
 * methodology presented ... would also apply to execution on GPUs and
 * NPUs").
 */
struct GpuSpec
{
    std::string name = "none";
    double freq_ghz = 0.0;
    /** Effective int8 MACs per cycle across the whole GPU. */
    double int8_macs_per_cycle = 0.0;
    /**
     * Probability that this chipset's GPU delegate misbehaves on a
     * random device (crashes or pathological latency) — the paper's
     * stated reason for restricting its study to CPUs.
     */
    double delegate_flakiness = 0.1;

    bool supported() const { return int8_macs_per_cycle > 0.0; }
};

/** One SoC model. */
struct Chipset
{
    std::string name;
    std::string vendor;
    CoreFamilyId big_core = 0;
    /** Peak big-core frequency in GHz. */
    double max_freq_ghz = 2.0;
    DramKind dram = DramKind::Lpddr4;
    /** RAM capacities (GB) this chipset ships with. */
    std::vector<double> ram_options_gb;
    /** Crowd-sourcing popularity weight for device synthesis. */
    double popularity = 1.0;
    /** Integrated GPU (may be unsupported for the delegate). */
    GpuSpec gpu;
};

/** The 38-entry chipset table (order is stable). */
const std::vector<Chipset> &chipsetTable();

/** Index of a chipset by name. Throws GcmError when unknown. */
std::size_t chipsetIndexByName(const std::string &name);

} // namespace gcm::sim

#endif // GCM_SIM_CHIPSET_HH

#include "sim/faults.hh"

#include <cmath>
#include <limits>

#include "util/error.hh"

namespace gcm::sim
{

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::None: return "none";
      case FaultKind::SessionCrash: return "crash";
      case FaultKind::Straggler: return "straggler";
      case FaultKind::CorruptUpload: return "corrupt";
      case FaultKind::DuplicateUpload: return "duplicate";
    }
    GCM_ASSERT(false, "faultKindName: invalid kind");
    return "?";
}

bool
FaultParams::enabled() const
{
    return session_crash_prob > 0.0 || straggler_prob > 0.0
        || corrupt_prob > 0.0 || duplicate_prob > 0.0
        || dropout_prob > 0.0;
}

namespace
{

void
checkProb(double p, const char *name)
{
    if (!std::isfinite(p) || p < 0.0 || p > 1.0)
        fatal("FaultParams: ", name, " must be a probability, got ", p);
}

} // namespace

void
FaultParams::validate() const
{
    checkProb(session_crash_prob, "session_crash_prob");
    checkProb(straggler_prob, "straggler_prob");
    checkProb(corrupt_prob, "corrupt_prob");
    checkProb(duplicate_prob, "duplicate_prob");
    checkProb(dropout_prob, "dropout_prob");
    if (session_crash_prob + straggler_prob + corrupt_prob
            + duplicate_prob
        > 1.0) {
        fatal("FaultParams: session fault probabilities sum to more "
              "than 1");
    }
    if (!std::isfinite(flakiness_spread) || flakiness_spread < 1.0)
        fatal("FaultParams: flakiness_spread must be >= 1, got ",
              flakiness_spread);
    if (!std::isfinite(straggler_slowdown_min)
        || !std::isfinite(straggler_slowdown_max)
        || straggler_slowdown_min < 1.0
        || straggler_slowdown_min > straggler_slowdown_max) {
        fatal("FaultParams: straggler slowdown range [",
              straggler_slowdown_min, ", ", straggler_slowdown_max,
              "] is invalid");
    }
}

FaultParams
FaultParams::uniformRate(double rate)
{
    if (!std::isfinite(rate) || rate < 0.0 || rate >= 1.0)
        fatal("FaultParams::uniformRate: rate out of [0, 1), got ",
              rate);
    FaultParams p;
    p.session_crash_prob = 0.5 * rate;
    p.corrupt_prob = 0.3 * rate;
    p.straggler_prob = 0.2 * rate;
    p.duplicate_prob = 0.1 * rate;
    p.dropout_prob = 0.5 * rate;
    return p;
}

FaultInjector::FaultInjector(const FaultParams &params,
                             std::uint64_t seed)
    : params_(params), root_(seed)
{
    params_.validate();
}

namespace
{

/** Decorrelated stream id for a (device, session) pair. */
std::uint64_t
sessionStream(std::int32_t device_id, std::uint64_t session_idx)
{
    const std::uint64_t dev =
        static_cast<std::uint64_t>(static_cast<std::uint32_t>(device_id));
    return (dev + 1) * 0x9e3779b97f4a7c15ULL
        ^ (session_idx + 1) * 0xbf58476d1ce4e5b9ULL;
}

} // namespace

DeviceFaultProfile
FaultInjector::deviceProfile(std::int32_t device_id) const
{
    const std::uint64_t dev =
        static_cast<std::uint64_t>(static_cast<std::uint32_t>(device_id));
    Rng rng = root_.fork(0xFA017ULL ^ ((dev + 1) * 0x94d049bb133111ebULL));
    DeviceFaultProfile profile;
    const double log_spread = std::log(params_.flakiness_spread);
    profile.fault_scale = std::exp(rng.uniform(-log_spread, log_spread));
    profile.drops_out = rng.bernoulli(params_.dropout_prob);
    profile.dropout_fraction = rng.uniform(0.1, 0.9);
    return profile;
}

SessionFault
FaultInjector::sessionFault(std::int32_t device_id,
                            std::uint64_t session_idx,
                            double clean_mean_ms,
                            double clean_duration_ms) const
{
    SessionFault fault;
    fault.duration_ms = clean_duration_ms;
    if (!enabled())
        return fault;
    const double scale = deviceProfile(device_id).fault_scale;
    Rng rng = root_.fork(sessionStream(device_id, session_idx));
    const double u = rng.uniform();
    double edge = params_.session_crash_prob * scale;
    if (u < edge) {
        fault.kind = FaultKind::SessionCrash;
        // The crash lands partway through the session.
        fault.duration_ms = clean_duration_ms * rng.uniform(0.05, 0.95);
        return fault;
    }
    edge += params_.straggler_prob * scale;
    if (u < edge) {
        fault.kind = FaultKind::Straggler;
        fault.duration_ms = clean_duration_ms
            * rng.uniform(params_.straggler_slowdown_min,
                          params_.straggler_slowdown_max);
        return fault;
    }
    edge += params_.corrupt_prob * scale;
    if (u < edge) {
        fault.kind = FaultKind::CorruptUpload;
        switch (rng.uniformInt(0, 3)) {
          case 0:
            fault.corrupted_ms =
                std::numeric_limits<double>::quiet_NaN();
            break;
          case 1: fault.corrupted_ms = -clean_mean_ms; break;
          case 2: fault.corrupted_ms = 0.0; break;
          default: fault.corrupted_ms = clean_mean_ms * 1e6; break;
        }
        return fault;
    }
    edge += params_.duplicate_prob * scale;
    if (u < edge)
        fault.kind = FaultKind::DuplicateUpload;
    return fault;
}

} // namespace gcm::sim

/**
 * @file
 * Deterministic fault injection for the crowd-sourcing pipeline.
 *
 * The paper's dataset was collected from 105 crowd-sourced phones and
 * the authors note the pipeline was anything but clean: delegates
 * were "prone to unexpected outcomes (very high latency) or crashes",
 * sessions had to be filtered manually, and every device contributed
 * only what it managed to upload. The FaultInjector reproduces those
 * field conditions inside the simulator — session crashes, stragglers,
 * corrupted uploads, duplicate uploads and mid-campaign device
 * dropouts — from a seeded configuration, so the recovery machinery
 * in CharacterizationCampaign can be exercised reproducibly.
 *
 * Determinism contract: every fault decision is drawn from an Rng
 * forked from (seed, device, session) alone, never from shared
 * mutable state, so an injected campaign is bit-identical at any
 * thread count (the same discipline as the measurement noise streams;
 * see util/parallel.hh and tests/test_faults.cc).
 */

#ifndef GCM_SIM_FAULTS_HH
#define GCM_SIM_FAULTS_HH

#include <cstdint>

#include "util/rng.hh"

namespace gcm::sim
{

/** What happened to one upload session. */
enum class FaultKind : std::uint8_t
{
    None,            ///< session completed and uploaded cleanly
    SessionCrash,    ///< app/delegate crashed mid-session, nothing uploaded
    Straggler,       ///< session ran, but pathologically slowly
    CorruptUpload,   ///< upload arrived with a garbage latency value
    DuplicateUpload, ///< the same result was uploaded twice
};

/** Display name ("crash", "straggler", ...). */
const char *faultKindName(FaultKind kind);

/** Fault-model configuration. All probabilities are per session. */
struct FaultParams
{
    /** P(session crashes before uploading). */
    double session_crash_prob = 0.0;
    /** P(session straggles; may exceed the campaign session timeout). */
    double straggler_prob = 0.0;
    /** P(upload carries a NaN/negative/zero/absurd latency). */
    double corrupt_prob = 0.0;
    /** P(a successful upload is duplicated). Not a failure. */
    double duplicate_prob = 0.0;
    /** P(a device goes dark partway through the campaign). */
    double dropout_prob = 0.0;
    /**
     * Device heterogeneity: each device's session fault probabilities
     * are scaled by a per-device factor log-uniform in
     * [1/spread, spread], mirroring the field observation that a few
     * phones cause most of the trouble. 1.0 disables the spread.
     */
    double flakiness_spread = 4.0;
    /** Straggler slowdown multiplier range. */
    double straggler_slowdown_min = 5.0;
    double straggler_slowdown_max = 20.0;

    /** True when any fault can fire. */
    bool enabled() const;

    /** Throws GcmError on non-finite or out-of-range values. */
    void validate() const;

    /**
     * Convenience profile for chaos sweeps: a total session-fault
     * rate split across crash (50%), corrupt upload (30%) and
     * straggler (20%), plus duplicates at rate/10 and a device
     * dropout probability of rate/2.
     *
     * @param rate Session-fault rate in [0, 1).
     */
    static FaultParams uniformRate(double rate);
};

/** Per-device fault disposition, fixed for a whole campaign. */
struct DeviceFaultProfile
{
    /** Multiplier on the session fault probabilities. */
    double fault_scale = 1.0;
    /** Whether this device disappears mid-campaign. */
    bool drops_out = false;
    /**
     * Fraction of its planned sessions after which a dropout device
     * goes dark (only meaningful when drops_out).
     */
    double dropout_fraction = 1.0;
};

/** Outcome of injecting faults into one session. */
struct SessionFault
{
    FaultKind kind = FaultKind::None;
    /** Latency payload of a corrupted upload (NaN/negative/absurd). */
    double corrupted_ms = 0.0;
    /** Simulated wall time the session consumed, milliseconds. */
    double duration_ms = 0.0;
};

/**
 * Seeded, stateless-per-query fault source. Thread-safe by
 * construction: all queries are const and fork private Rng streams.
 */
class FaultInjector
{
  public:
    /** @param params Validated on construction (throws GcmError). */
    FaultInjector(const FaultParams &params, std::uint64_t seed);

    const FaultParams &params() const { return params_; }
    bool enabled() const { return params_.enabled(); }

    /** A device's campaign-wide disposition (deterministic in id). */
    DeviceFaultProfile deviceProfile(std::int32_t device_id) const;

    /**
     * Inject faults into one upload session.
     *
     * @param device_id Device the session ran on.
     * @param session_idx Per-device session ordinal (attempts count).
     * @param clean_mean_ms The session's uncorrupted mean latency.
     * @param clean_duration_ms Simulated wall time of a clean session.
     */
    SessionFault sessionFault(std::int32_t device_id,
                              std::uint64_t session_idx,
                              double clean_mean_ms,
                              double clean_duration_ms) const;

  private:
    FaultParams params_;
    Rng root_;
};

} // namespace gcm::sim

#endif // GCM_SIM_FAULTS_HH

/**
 * @file
 * Central measurement repository — the simulator counterpart of the
 * paper's HTTP-fed database of crowd-sourced measurements, and the
 * shared store the collaborative characterization of Section V builds
 * on.
 */

#ifndef GCM_SIM_REPOSITORY_HH
#define GCM_SIM_REPOSITORY_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace gcm::sim
{

/** One uploaded measurement (a mean of N runs). */
struct MeasurementRecord
{
    std::int32_t device_id = -1;
    std::string device_name;
    std::string network;
    double mean_ms = 0.0;
    double stddev_ms = 0.0;
    std::int32_t runs = 0;
};

/** In-memory measurement database keyed by (device, network). */
class MeasurementRepository
{
  public:
    /** Insert or overwrite a record. */
    void add(MeasurementRecord record);

    bool has(std::int32_t device_id, const std::string &network) const;

    /** Mean latency of a (device, network) pair. Throws when absent. */
    double latencyMs(std::int32_t device_id,
                     const std::string &network) const;

    std::size_t size() const { return records_.size(); }
    const std::vector<MeasurementRecord> &records() const
    {
        return records_;
    }

    /**
     * Dense latency matrix: result[n][d] = latency of network n on
     * device d. Throws GcmError if any pair is missing.
     */
    std::vector<std::vector<double>>
    latencyMatrix(const std::vector<std::int32_t> &device_ids,
                  const std::vector<std::string> &networks) const;

    /** Serialize to CSV text (device_id,device,network,mean,std,runs). */
    std::string toCsv() const;

    /** Parse a repository back from toCsv() output. */
    static MeasurementRepository fromCsv(const std::string &text);

  private:
    std::vector<MeasurementRecord> records_;
    /** (device_id, network) -> index into records_. */
    std::map<std::pair<std::int32_t, std::string>, std::size_t> index_;
};

} // namespace gcm::sim

#endif // GCM_SIM_REPOSITORY_HH

/**
 * @file
 * Central measurement repository — the simulator counterpart of the
 * paper's HTTP-fed database of crowd-sourced measurements, and the
 * shared store the collaborative characterization of Section V builds
 * on.
 */

#ifndef GCM_SIM_REPOSITORY_HH
#define GCM_SIM_REPOSITORY_HH

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace gcm::sim
{

/** One uploaded measurement (a mean of N runs). */
struct MeasurementRecord
{
    std::int32_t device_id = -1;
    std::string device_name;
    std::string network;
    double mean_ms = 0.0;
    double stddev_ms = 0.0;
    std::int32_t runs = 0;
};

/**
 * In-memory measurement database keyed by (device, network).
 *
 * The repository is the trust boundary of the crowd-sourcing
 * pipeline: add() rejects garbage uploads (non-finite, non-positive
 * or absurd latencies — the values corrupted sessions produce in the
 * field) with GcmError instead of silently storing them, and devices
 * on the quarantine list cannot contribute at all. The store is
 * naturally sparse: cells that were never measured are simply absent
 * (see sparseLatencyMatrix) and stay absent through a CSV round-trip.
 */
class MeasurementRepository
{
  public:
    /**
     * Whether a record would be accepted: finite positive mean below
     * the plausibility bound (kMaxPlausibleMs), finite non-negative
     * stddev, positive run count.
     */
    static bool validRecord(const MeasurementRecord &record);

    /**
     * No real network-on-phone session lasts an hour per inference;
     * anything above this is a corrupted upload.
     */
    static constexpr double kMaxPlausibleMs = 3.6e6;

    /**
     * Insert or overwrite a record. Throws GcmError when the record
     * is invalid (see validRecord) or its device is quarantined.
     */
    void add(MeasurementRecord record);

    /** Bar a device from contributing; its id lands in quarantined(). */
    void quarantine(std::int32_t device_id);

    bool isQuarantined(std::int32_t device_id) const;

    /** Quarantined device ids, ascending. */
    const std::set<std::int32_t> &quarantined() const
    {
        return quarantined_;
    }

    bool has(std::int32_t device_id, const std::string &network) const;

    /** Mean latency of a (device, network) pair. Throws when absent. */
    double latencyMs(std::int32_t device_id,
                     const std::string &network) const;

    std::size_t size() const { return records_.size(); }
    const std::vector<MeasurementRecord> &records() const
    {
        return records_;
    }

    /**
     * Dense latency matrix: result[n][d] = latency of network n on
     * device d. Throws GcmError if any pair is missing.
     */
    std::vector<std::vector<double>>
    latencyMatrix(const std::vector<std::int32_t> &device_ids,
                  const std::vector<std::string> &networks) const;

    /**
     * Sparse latency matrix: like latencyMatrix, but missing cells
     * are NaN instead of an error (see core/imputation.hh for how
     * downstream consumers fill them).
     */
    std::vector<std::vector<double>>
    sparseLatencyMatrix(const std::vector<std::int32_t> &device_ids,
                        const std::vector<std::string> &networks) const;

    /** Cells absent from a device_ids x networks grid. */
    std::size_t
    missingCells(const std::vector<std::int32_t> &device_ids,
                 const std::vector<std::string> &networks) const;

    /**
     * Serialize to CSV text (device_id,device,network,mean,std,runs).
     * Latencies are written with full double precision so a
     * round-trip through fromCsv() is exact; absent cells produce no
     * row, so a sparse repository stays sparse.
     */
    std::string toCsv() const;

    /**
     * Parse a repository back from toCsv() output. Rows with
     * malformed numbers or latencies that fail validRecord() raise
     * GcmError naming the offending row.
     */
    static MeasurementRepository fromCsv(const std::string &text);

  private:
    std::vector<MeasurementRecord> records_;
    /** (device_id, network) -> index into records_. */
    std::map<std::pair<std::int32_t, std::string>, std::size_t> index_;
    std::set<std::int32_t> quarantined_;
};

} // namespace gcm::sim

#endif // GCM_SIM_REPOSITORY_HH

/**
 * @file
 * Device population: 105 phone configurations referencing the chipset
 * table, mirroring the crowd-sourced fleet of the paper.
 *
 * The critical modeling decision is the set of per-device *hidden*
 * factors — thermal sustain under load, memory-vendor efficiency,
 * OS/firmware overhead and silicon binning. They are properties of a
 * phone, not of its chipset, and are NOT exposed as static features.
 * They are what makes two phones with identical CPU + frequency +
 * DRAM differ by >2x in measured latency (paper Fig. 5), and hence
 * what makes spec-based cost models fail (paper Fig. 8).
 */

#ifndef GCM_SIM_DEVICE_HH
#define GCM_SIM_DEVICE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/chipset.hh"
#include "util/rng.hh"

namespace gcm::sim
{

/** Per-device latent performance factors (never exposed as specs). */
struct HiddenFactors
{
    /** Sustained/peak frequency ratio under continuous inference. */
    double thermal_sustain = 1.0;
    /** Memory subsystem efficiency (DRAM vendor, timings). */
    double mem_efficiency = 1.0;
    /** Multiplier on runtime/OS per-op overheads (>= 1). */
    double os_overhead = 1.0;
    /** Silicon lottery: small multiplier on effective compute. */
    double silicon_bin = 1.0;
    /** GPU driver/delegate maturity (GPU execution target only). */
    double gpu_driver_quality = 1.0;
    /**
     * Quality of the depthwise-convolution kernels shipped on the
     * device (TFLite/NNAPI build differences): multiplies the
     * depthwise efficiency. Varies the SHAPE of a device's latency
     * vector, not just its scale — the reason the paper's clusters
     * overlap and the same CPU appears in several of them.
     */
    double dw_kernel_quality = 1.0;
};

/** One concrete phone. */
struct DeviceSpec
{
    std::int32_t id = -1;
    std::string model_name;
    std::size_t chipset_index = 0;
    /** Shipped big-core frequency (GHz); may be below chipset max. */
    double freq_ghz = 2.0;
    double ram_gb = 4.0;
    HiddenFactors hidden;
};

/** The synthesized device fleet. */
class DeviceDatabase
{
  public:
    /**
     * Build the standard 105-device fleet: ~30 named popular phones
     * pinned to their real chipsets plus popularity-weighted synthetic
     * devices, with per-device hidden factors drawn from a seeded rng.
     */
    static DeviceDatabase standard(std::uint64_t seed = 2020,
                                   std::size_t count = 105);

    /**
     * Build a fleet from explicit specs — the entry point for
     * synthesized fleets (fleet/synthesizer.hh) and per-cohort
     * sub-fleets. Throws GcmError on an empty list, duplicate ids or
     * model names, or a chipset_index outside the chipset table.
     */
    static DeviceDatabase fromDevices(std::vector<DeviceSpec> devices);

    std::size_t size() const { return devices_.size(); }
    const DeviceSpec &device(std::size_t i) const;
    const std::vector<DeviceSpec> &devices() const { return devices_; }

    /** Find a device by model name. Throws GcmError when unknown. */
    const DeviceSpec &byName(const std::string &model_name) const;

    const Chipset &chipsetOf(const DeviceSpec &d) const;
    const CoreFamily &coreOf(const DeviceSpec &d) const;

  private:
    std::vector<DeviceSpec> devices_;
};

} // namespace gcm::sim

#endif // GCM_SIM_DEVICE_HH

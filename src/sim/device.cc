#include "sim/device.hh"

#include <algorithm>
#include <set>

#include "util/error.hh"

namespace gcm::sim
{

namespace
{

/** Popular named phones pinned to their actual chipsets. */
struct NamedPhone
{
    const char *model;
    const char *chipset;
};

const NamedPhone kNamedPhones[] = {
    {"Redmi-Note-5-Pro", "Snapdragon-636"},
    {"Redmi-Note-7", "Snapdragon-660"},
    {"Redmi-Note-8", "Snapdragon-665"},
    {"Redmi-6A", "MT6737"},
    {"Redmi-7A", "Snapdragon-450"},
    {"Mi-A1", "Snapdragon-625"},
    {"Mi-A3", "Snapdragon-665"},
    {"Mi-9", "Snapdragon-855"},
    {"Poco-F1", "Snapdragon-845"},
    {"Poco-X2", "Snapdragon-730"},
    {"Galaxy-J7", "Exynos-7870"},
    {"Galaxy-A50", "Exynos-9610"},
    {"Galaxy-A7", "Exynos-7885"},
    {"Galaxy-S7", "Exynos-8890"},
    {"Galaxy-S8", "Exynos-8895"},
    {"Galaxy-S9", "Exynos-9810"},
    {"Galaxy-S10", "Exynos-9820"},
    {"Pixel-2", "Snapdragon-835"},
    {"Pixel-3", "Snapdragon-845"},
    {"Pixel-4", "Snapdragon-855"},
    {"OnePlus-6T", "Snapdragon-845"},
    {"OnePlus-7", "Snapdragon-855"},
    {"OnePlus-8", "Snapdragon-865"},
    {"Honor-8X", "Kirin-710"},
    {"Honor-9-Lite", "Kirin-659"},
    {"Mate-20", "Kirin-980"},
    {"P30-Pro", "Kirin-980"},
    {"Mate-30-Pro", "Kirin-990"},
    {"Realme-5", "Snapdragon-665"},
    {"Realme-X2", "Snapdragon-730"},
    {"Moto-G5", "Snapdragon-425"},
    {"Moto-G7", "Snapdragon-625"},
    {"Nokia-5.1", "Helio-P18"},
};

HiddenFactors
drawHiddenFactors(Rng &rng)
{
    HiddenFactors h;
    h.thermal_sustain = rng.uniform(0.35, 1.0);
    h.mem_efficiency = rng.uniform(0.45, 1.05);
    h.os_overhead = rng.uniform(1.0, 2.0);
    h.silicon_bin = rng.uniform(0.88, 1.06);
    h.gpu_driver_quality = rng.uniform(0.6, 1.05);
    h.dw_kernel_quality = rng.uniform(0.55, 1.45);
    return h;
}

double
pickRam(Rng &rng, const Chipset &chipset)
{
    const auto &opts = chipset.ram_options_gb;
    GCM_ASSERT(!opts.empty(), "chipset without RAM options");
    return opts[static_cast<std::size_t>(rng.uniformInt(
        0, static_cast<std::int64_t>(opts.size()) - 1))];
}

} // namespace

DeviceDatabase
DeviceDatabase::standard(std::uint64_t seed, std::size_t count)
{
    const auto &chipsets = chipsetTable();
    DeviceDatabase db;
    Rng rng(seed);

    // Named phones first (skipping any whose chipset we do not model).
    for (const auto &phone : kNamedPhones) {
        if (db.devices_.size() >= count)
            break;
        std::size_t ci = 0;
        bool found = false;
        for (std::size_t i = 0; i < chipsets.size(); ++i) {
            if (chipsets[i].name == phone.chipset) {
                ci = i;
                found = true;
                break;
            }
        }
        if (!found)
            continue;
        Rng dev_rng = rng.fork(db.devices_.size());
        DeviceSpec d;
        d.id = static_cast<std::int32_t>(db.devices_.size());
        d.model_name = phone.model;
        d.chipset_index = ci;
        d.freq_ghz = chipsets[ci].max_freq_ghz
            * dev_rng.uniform(0.95, 1.0);
        d.ram_gb = pickRam(dev_rng, chipsets[ci]);
        d.hidden = drawHiddenFactors(dev_rng);
        db.devices_.push_back(std::move(d));
    }

    // Guarantee every chipset is represented at least once (the
    // paper's fleet covers 38 unique chipset types), then fill the
    // remainder with popularity-weighted synthetic devices.
    std::vector<double> weights;
    weights.reserve(chipsets.size());
    for (const auto &c : chipsets)
        weights.push_back(c.popularity);
    std::vector<std::size_t> per_chipset_count(chipsets.size(), 0);
    std::vector<bool> seen(chipsets.size(), false);
    for (const auto &d : db.devices_)
        seen[d.chipset_index] = true;
    std::size_t next_unseen = 0;
    while (db.devices_.size() < count) {
        Rng dev_rng = rng.fork(db.devices_.size());
        while (next_unseen < chipsets.size() && seen[next_unseen])
            ++next_unseen;
        const std::size_t ci = next_unseen < chipsets.size()
            ? next_unseen
            : dev_rng.weightedIndex(weights);
        seen[ci] = true;
        DeviceSpec d;
        d.id = static_cast<std::int32_t>(db.devices_.size());
        d.model_name = "Phone-" + chipsets[ci].name + "-"
            + std::to_string(++per_chipset_count[ci]);
        d.chipset_index = ci;
        d.freq_ghz = chipsets[ci].max_freq_ghz
            * dev_rng.uniform(0.93, 1.0);
        d.ram_gb = pickRam(dev_rng, chipsets[ci]);
        d.hidden = drawHiddenFactors(dev_rng);
        db.devices_.push_back(std::move(d));
    }
    return db;
}

DeviceDatabase
DeviceDatabase::fromDevices(std::vector<DeviceSpec> devices)
{
    if (devices.empty())
        fatal("DeviceDatabase::fromDevices: empty device list");
    const auto &chipsets = chipsetTable();
    std::set<std::int32_t> ids;
    std::set<std::string> names;
    for (const auto &d : devices) {
        if (d.chipset_index >= chipsets.size()) {
            fatal("DeviceDatabase::fromDevices: device '", d.model_name,
                  "' references chipset index ", d.chipset_index,
                  " outside the ", chipsets.size(), "-entry table");
        }
        if (!ids.insert(d.id).second)
            fatal("DeviceDatabase::fromDevices: duplicate device id ",
                  d.id);
        if (!names.insert(d.model_name).second)
            fatal("DeviceDatabase::fromDevices: duplicate model name '",
                  d.model_name, "'");
    }
    DeviceDatabase db;
    db.devices_ = std::move(devices);
    return db;
}

const DeviceSpec &
DeviceDatabase::device(std::size_t i) const
{
    GCM_ASSERT(i < devices_.size(), "DeviceDatabase: index out of range");
    return devices_[i];
}

const DeviceSpec &
DeviceDatabase::byName(const std::string &model_name) const
{
    for (const auto &d : devices_) {
        if (d.model_name == model_name)
            return d;
    }
    fatal("unknown device model: ", model_name);
}

const Chipset &
DeviceDatabase::chipsetOf(const DeviceSpec &d) const
{
    const auto &table = chipsetTable();
    GCM_ASSERT(d.chipset_index < table.size(),
               "device references invalid chipset");
    return table[d.chipset_index];
}

const CoreFamily &
DeviceDatabase::coreOf(const DeviceSpec &d) const
{
    return coreFamily(chipsetOf(d).big_core);
}

} // namespace gcm::sim

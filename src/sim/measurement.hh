/**
 * @file
 * Per-device measurement runtime — the simulator counterpart of the
 * paper's Android benchmarking app. A measurement schedules the
 * quantized network on the device's big core, runs it `runs` times
 * (30 in the paper), applies run-to-run noise (DVFS jitter, a thermal
 * warm-up ramp, occasional background interference) and reports the
 * mean, exactly like the app's averaged uploads.
 */

#ifndef GCM_SIM_MEASUREMENT_HH
#define GCM_SIM_MEASUREMENT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "dnn/graph.hh"
#include "sim/device.hh"
#include "sim/latency_model.hh"

namespace gcm::sim
{

/** Noise characteristics of repeated on-device runs. */
struct NoiseParams
{
    /**
     * Sigma of the per-session lognormal jitter. A session is one
     * measure() call: on a crowd-sourced phone, different networks
     * run at different times, temperatures and background loads, so
     * each network's 30-run block carries its own offset that does
     * not average out.
     */
    double session_jitter_sigma = 0.08;
    /** Sigma of the per-run lognormal jitter. */
    double run_jitter_sigma = 0.035;
    /** Maximum warm-up slowdown reached over the first runs. */
    double thermal_ramp_max = 0.10;
    /** Runs over which the warm-up ramp saturates. */
    std::size_t thermal_ramp_runs = 12;
    /** Probability of an interference outlier on any run. */
    double outlier_probability = 0.02;
    /** Outlier slowdown range (multiplier). */
    double outlier_min = 1.3;
    double outlier_max = 2.2;

    /**
     * Throws GcmError on non-finite sigmas, probabilities outside
     * [0, 1], an empty thermal ramp, or an inverted outlier range —
     * configurations that would otherwise surface as NaN means deep
     * in the campaign.
     */
    void validate() const;
};

/**
 * How a session's per-run latencies are folded into the uploaded
 * value. The paper uploads the plain mean; the robust variants guard
 * against the interference outliers and corrupted runs that
 * crowd-sourced sessions accumulate.
 */
enum class Aggregator
{
    Mean,        ///< arithmetic mean (the paper's choice)
    Median,      ///< middle order statistic
    TrimmedMean, ///< mean after dropping the top/bottom 10%
    MadMean,     ///< mean of runs within 3 MADs of the median
};

/** Display name ("mean" / "median" / "trimmed" / "mad"). */
const char *aggregatorName(Aggregator aggregator);

/** Parse an aggregatorName() string. Throws GcmError when unknown. */
Aggregator parseAggregator(const std::string &name);

/**
 * Fold a session's runs into one latency with the chosen aggregator.
 * @pre runs is non-empty. Mean reproduces the paper's arithmetic
 * exactly (same accumulation order as DeviceRuntime::measure).
 */
double aggregateRuns(const std::vector<double> &runs,
                     Aggregator aggregator);

/** Result of one measurement session (N runs of one network). */
struct MeasurementResult
{
    double mean_ms = 0.0;
    double stddev_ms = 0.0;
    std::vector<double> runs_ms;
};

/**
 * Reliability of a device's GPU delegate, mirroring the paper's field
 * observation that "the GPU and NPU Android API delegates were either
 * limited to a certain class of mobile phones or were prone to
 * unexpected outcomes (very high latency) or crashes".
 */
enum class GpuDelegateStatus
{
    Unsupported, ///< chipset has no usable delegate
    Flaky,       ///< runs, but with pathological latency
    Reliable,
};

/** Executes measurements on one device. */
class DeviceRuntime
{
  public:
    /**
     * @param device The phone.
     * @param chipset Its chipset entry.
     * @param model Deterministic latency model (copied; cheap).
     * @param seed Per-device noise seed.
     * @param noise Noise configuration.
     */
    DeviceRuntime(const DeviceSpec &device, const Chipset &chipset,
                  LatencyModel model, std::uint64_t seed,
                  NoiseParams noise = {});

    /**
     * Measure a network. @pre graph is int8 (deployment form).
     * @param runs Number of repetitions (paper: 30).
     * @param target Execution target; GpuDelegate throws GcmError on
     *        devices whose delegate is Unsupported, and produces
     *        pathological latencies on Flaky devices.
     */
    MeasurementResult measure(const dnn::Graph &graph,
                              std::size_t runs = 30,
                              ExecutionTarget target
                              = ExecutionTarget::BigCore);

    /** Deterministic per-device delegate reliability. */
    GpuDelegateStatus gpuDelegateStatus() const;

    const DeviceSpec &device() const { return device_; }

  private:
    const DeviceSpec &device_;
    const Chipset &chipset_;
    LatencyModel model_;
    NoiseParams noise_;
    Rng rng_;
    std::uint64_t nextStream_ = 0;
};

} // namespace gcm::sim

#endif // GCM_SIM_MEASUREMENT_HH

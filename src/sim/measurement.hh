/**
 * @file
 * Per-device measurement runtime — the simulator counterpart of the
 * paper's Android benchmarking app. A measurement schedules the
 * quantized network on the device's big core, runs it `runs` times
 * (30 in the paper), applies run-to-run noise (DVFS jitter, a thermal
 * warm-up ramp, occasional background interference) and reports the
 * mean, exactly like the app's averaged uploads.
 */

#ifndef GCM_SIM_MEASUREMENT_HH
#define GCM_SIM_MEASUREMENT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "dnn/graph.hh"
#include "sim/device.hh"
#include "sim/latency_model.hh"

namespace gcm::sim
{

/** Noise characteristics of repeated on-device runs. */
struct NoiseParams
{
    /**
     * Sigma of the per-session lognormal jitter. A session is one
     * measure() call: on a crowd-sourced phone, different networks
     * run at different times, temperatures and background loads, so
     * each network's 30-run block carries its own offset that does
     * not average out.
     */
    double session_jitter_sigma = 0.08;
    /** Sigma of the per-run lognormal jitter. */
    double run_jitter_sigma = 0.035;
    /** Maximum warm-up slowdown reached over the first runs. */
    double thermal_ramp_max = 0.10;
    /** Runs over which the warm-up ramp saturates. */
    std::size_t thermal_ramp_runs = 12;
    /** Probability of an interference outlier on any run. */
    double outlier_probability = 0.02;
    /** Outlier slowdown range (multiplier). */
    double outlier_min = 1.3;
    double outlier_max = 2.2;
};

/** Result of one measurement session (N runs of one network). */
struct MeasurementResult
{
    double mean_ms = 0.0;
    double stddev_ms = 0.0;
    std::vector<double> runs_ms;
};

/**
 * Reliability of a device's GPU delegate, mirroring the paper's field
 * observation that "the GPU and NPU Android API delegates were either
 * limited to a certain class of mobile phones or were prone to
 * unexpected outcomes (very high latency) or crashes".
 */
enum class GpuDelegateStatus
{
    Unsupported, ///< chipset has no usable delegate
    Flaky,       ///< runs, but with pathological latency
    Reliable,
};

/** Executes measurements on one device. */
class DeviceRuntime
{
  public:
    /**
     * @param device The phone.
     * @param chipset Its chipset entry.
     * @param model Deterministic latency model (copied; cheap).
     * @param seed Per-device noise seed.
     * @param noise Noise configuration.
     */
    DeviceRuntime(const DeviceSpec &device, const Chipset &chipset,
                  LatencyModel model, std::uint64_t seed,
                  NoiseParams noise = {});

    /**
     * Measure a network. @pre graph is int8 (deployment form).
     * @param runs Number of repetitions (paper: 30).
     * @param target Execution target; GpuDelegate throws GcmError on
     *        devices whose delegate is Unsupported, and produces
     *        pathological latencies on Flaky devices.
     */
    MeasurementResult measure(const dnn::Graph &graph,
                              std::size_t runs = 30,
                              ExecutionTarget target
                              = ExecutionTarget::BigCore);

    /** Deterministic per-device delegate reliability. */
    GpuDelegateStatus gpuDelegateStatus() const;

    const DeviceSpec &device() const { return device_; }

  private:
    const DeviceSpec &device_;
    const Chipset &chipset_;
    LatencyModel model_;
    NoiseParams noise_;
    Rng rng_;
    std::uint64_t nextStream_ = 0;
};

} // namespace gcm::sim

#endif // GCM_SIM_MEASUREMENT_HH

#include "sim/latency_model.hh"

#include <algorithm>

#include "dnn/analysis.hh"
#include "util/error.hh"

namespace gcm::sim
{

LatencyModel::LatencyModel(LatencyModelParams params) : params_(params) {}

const char *
executionTargetName(ExecutionTarget target)
{
    switch (target) {
      case ExecutionTarget::BigCore: return "big-core CPU";
      case ExecutionTarget::GpuDelegate: return "GPU delegate";
    }
    GCM_ASSERT(false, "executionTargetName: invalid target");
    return "?";
}

const char *
LayerBreakdown::boundName() const
{
    if (compute_s >= memory_s && compute_s >= dispatch_s)
        return "compute";
    if (memory_s >= dispatch_s)
        return "memory";
    return "dispatch";
}

LayerBreakdown
LatencyModel::gpuLayerBreakdown(const dnn::Graph &graph,
                                const dnn::Node &node,
                                const DeviceSpec &device,
                                const Chipset &chipset) const
{
    using dnn::OpKind;
    if (node.kind == OpKind::Input)
        return {};
    const GpuSpec &gpu = chipset.gpu;
    GCM_ASSERT(gpu.supported(), "gpuLayerBreakdown: no GPU delegate");
    const dnn::NodeCost cost = dnn::nodeCost(graph, node);
    const double freq_hz = gpu.freq_ghz * 1e9;
    const HiddenFactors &h = device.hidden;

    double compute_s = 0.0;
    if (cost.macs > 0) {
        double efficiency;
        if (node.kind == OpKind::DepthwiseConv2d)
            efficiency = params_.gpu_dw_efficiency;
        else if (node.kind == OpKind::FullyConnected)
            efficiency = params_.gpu_fc_efficiency;
        else
            efficiency = params_.gpu_conv_efficiency;
        // GPUs suffer even more from small launch grids.
        if (node.shape.h * node.shape.w <= 49)
            efficiency *= 0.4;
        const double peak =
            freq_hz * gpu.int8_macs_per_cycle * h.gpu_driver_quality;
        compute_s = static_cast<double>(cost.macs)
            / (peak * efficiency * h.thermal_sustain);
    }
    if (cost.simple_ops > 0) {
        const double rate = freq_hz * params_.gpu_simple_ops_per_cycle
            * h.thermal_sustain;
        compute_s += static_cast<double>(cost.simple_ops) / rate;
    }

    // The delegate streams weights and activations through DRAM; the
    // GPU commands more bandwidth than one CPU core.
    const double bw = dramBandwidthGBs(chipset.dram) * 1e9
        * h.mem_efficiency * params_.gpu_bandwidth_scale;
    const double memory_s = static_cast<double>(
        cost.weight_bytes + cost.input_bytes + cost.output_bytes) / bw;

    const double overhead_s = params_.gpu_per_layer_overhead_us * 1e-6
        * h.os_overhead / h.gpu_driver_quality;
    return LayerBreakdown{compute_s, memory_s, overhead_s};
}

LayerBreakdown
LatencyModel::layerBreakdown(const dnn::Graph &graph,
                             const dnn::Node &node,
                             const DeviceSpec &device,
                             const Chipset &chipset,
                             ExecutionTarget target) const
{
    using dnn::OpKind;
    if (target == ExecutionTarget::GpuDelegate)
        return gpuLayerBreakdown(graph, node, device, chipset);
    if (node.kind == OpKind::Input)
        return {};

    const CoreFamily &core = coreFamily(chipset.big_core);
    const dnn::NodeCost cost = dnn::nodeCost(graph, node);
    const double freq_hz = device.freq_ghz * 1e9;
    const HiddenFactors &h = device.hidden;

    // --- Compute term -------------------------------------------------
    double compute_s = 0.0;
    if (cost.macs > 0) {
        double efficiency;
        if (node.kind == OpKind::DepthwiseConv2d) {
            efficiency =
                params_.depthwise_efficiency * h.dw_kernel_quality;
        } else if (node.kind == OpKind::FullyConnected) {
            efficiency = params_.fc_efficiency;
        } else if (node.params.kernel <= 1) {
            efficiency = params_.conv1x1_efficiency;
        } else {
            efficiency = params_.conv_spatial_efficiency;
        }
        // Small output maps keep the SIMD kernels in prologue/epilogue.
        if (node.shape.h * node.shape.w <= 49)
            efficiency *= params_.small_map_penalty;
        const double peak_macs_per_s = freq_hz * core.macsPerCycleInt8();
        compute_s = static_cast<double>(cost.macs)
            / (peak_macs_per_s * efficiency * h.thermal_sustain
               * h.silicon_bin);
    }
    if (cost.simple_ops > 0) {
        const double rate = freq_hz * core.scalar_ipc
            * params_.simple_ops_per_cycle * h.thermal_sustain;
        compute_s += static_cast<double>(cost.simple_ops) / rate;
    }

    // --- Memory term --------------------------------------------------
    const double dram_bw =
        dramBandwidthGBs(chipset.dram) * 1e9 * h.mem_efficiency;
    double memory_s =
        static_cast<double>(cost.weight_bytes) / dram_bw;
    const double act_bytes =
        static_cast<double>(cost.input_bytes + cost.output_bytes);
    const double on_chip_bytes =
        static_cast<double>(core.l2_kb + core.l3_kb) * 1024.0;
    if (act_bytes <= on_chip_bytes) {
        const double cache_bw = freq_hz * params_.cache_bytes_per_cycle
            * h.thermal_sustain;
        memory_s += act_bytes / cache_bw;
    } else {
        memory_s += act_bytes / dram_bw;
    }

    // --- Dispatch -----------------------------------------------------
    const double overhead_s =
        params_.per_layer_overhead_us * 1e-6 * h.os_overhead;

    return LayerBreakdown{compute_s, memory_s, overhead_s};
}

double
LatencyModel::layerLatencyMs(const dnn::Graph &graph,
                             const dnn::Node &node,
                             const DeviceSpec &device,
                             const Chipset &chipset,
                             ExecutionTarget target) const
{
    return layerBreakdown(graph, node, device, chipset, target)
        .totalMs();
}

double
LatencyModel::graphLatencyMs(const dnn::Graph &graph,
                             const DeviceSpec &device,
                             const Chipset &chipset,
                             ExecutionTarget target) const
{
    const double fixed_us = target == ExecutionTarget::GpuDelegate
        ? params_.gpu_graph_overhead_us
        : params_.graph_overhead_us;
    double total_ms =
        fixed_us * 1e-6 * device.hidden.os_overhead * 1e3;
    for (const auto &node : graph.nodes())
        total_ms += layerLatencyMs(graph, node, device, chipset, target);
    return total_ms;
}

} // namespace gcm::sim

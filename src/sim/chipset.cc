#include "sim/chipset.hh"

#include "util/error.hh"

namespace gcm::sim
{

double
dramBandwidthGBs(DramKind kind)
{
    // Effective single-threaded streaming bandwidth, not the bus peak.
    switch (kind) {
      case DramKind::Lpddr3: return 3.5;
      case DramKind::Lpddr4: return 6.0;
      case DramKind::Lpddr4x: return 8.5;
      case DramKind::Lpddr5: return 12.0;
    }
    GCM_ASSERT(false, "dramBandwidthGBs: invalid kind");
    return 0.0;
}

const char *
dramKindName(DramKind kind)
{
    switch (kind) {
      case DramKind::Lpddr3: return "LPDDR3";
      case DramKind::Lpddr4: return "LPDDR4";
      case DramKind::Lpddr4x: return "LPDDR4X";
      case DramKind::Lpddr5: return "LPDDR5";
    }
    GCM_ASSERT(false, "dramKindName: invalid kind");
    return "?";
}

namespace
{

Chipset
make(const char *name, const char *vendor, const char *core, double freq,
     DramKind dram, std::vector<double> ram, double popularity)
{
    Chipset c;
    c.name = name;
    c.vendor = vendor;
    c.big_core = coreFamilyIdByName(core);
    c.max_freq_ghz = freq;
    c.dram = dram;
    c.ram_options_gb = std::move(ram);
    c.popularity = popularity;
    return c;
}

void applyGpuSpecs(std::vector<Chipset> &table);

} // namespace

const std::vector<Chipset> &
chipsetTable()
{
    using DK = DramKind;
    static const std::vector<Chipset> table = {
        // Qualcomm entry / mid-range
        make("Snapdragon-400", "Qualcomm", "Cortex-A7", 1.2, DK::Lpddr3,
             {1, 2}, 1.0),
        make("Snapdragon-425", "Qualcomm", "Cortex-A53", 1.4, DK::Lpddr3,
             {2, 3}, 3.0),
        make("Snapdragon-810", "Qualcomm", "Cortex-A57", 2.0, DK::Lpddr4,
             {3, 4}, 1.0),
        make("Snapdragon-450", "Qualcomm", "Cortex-A53", 1.8, DK::Lpddr3,
             {2, 3, 4}, 3.5),
        make("Snapdragon-625", "Qualcomm", "Cortex-A53", 2.0, DK::Lpddr3,
             {3, 4}, 4.0),
        make("Exynos-850", "Samsung", "Cortex-A55", 2.0, DK::Lpddr4x,
             {2, 3}, 1.0),
        make("Snapdragon-636", "Qualcomm", "Kryo-260-Gold", 1.8,
             DK::Lpddr4, {3, 4, 6}, 2.5),
        make("Snapdragon-660", "Qualcomm", "Kryo-260-Gold", 2.2,
             DK::Lpddr4, {4, 6}, 2.5),
        make("Snapdragon-665", "Qualcomm", "Kryo-260-Gold", 2.0,
             DK::Lpddr4, {3, 4, 6}, 2.5),
        make("Snapdragon-675", "Qualcomm", "Kryo-460-Gold", 2.0,
             DK::Lpddr4x, {4, 6}, 1.5),
        make("Snapdragon-710", "Qualcomm", "Kryo-360-Gold", 2.2,
             DK::Lpddr4x, {4, 6}, 1.5),
        make("Snapdragon-730", "Qualcomm", "Kryo-460-Gold", 2.2,
             DK::Lpddr4x, {6, 8}, 1.5),
        make("Snapdragon-765G", "Qualcomm", "Kryo-460-Gold", 2.4,
             DK::Lpddr4x, {6, 8}, 1.0),
        make("Snapdragon-820", "Qualcomm", "Kryo", 2.15, DK::Lpddr4,
             {3, 4}, 1.5),
        make("Snapdragon-835", "Qualcomm", "Kryo-280", 2.45, DK::Lpddr4x,
             {4, 6}, 1.5),
        make("Snapdragon-845", "Qualcomm", "Kryo-385-Gold", 2.8,
             DK::Lpddr4x, {6, 8}, 1.5),
        make("Snapdragon-855", "Qualcomm", "Kryo-485-Gold", 2.84,
             DK::Lpddr4x, {6, 8}, 1.5),
        make("Snapdragon-865", "Qualcomm", "Kryo-585", 2.84, DK::Lpddr5,
             {8, 12}, 1.0),
        // MediaTek
        make("MT6737", "MediaTek", "Cortex-A53", 1.3, DK::Lpddr3, {1, 2},
             1.5),
        make("Helio-P22", "MediaTek", "Cortex-A53", 2.0, DK::Lpddr3,
             {2, 3}, 3.0),
        make("Helio-P35", "MediaTek", "Cortex-A53", 2.3, DK::Lpddr4x,
             {3, 4}, 2.0),
        make("Helio-P60", "MediaTek", "Cortex-A73", 2.0, DK::Lpddr4,
             {4, 6}, 2.0),
        make("Helio-P70", "MediaTek", "Cortex-A73", 2.1, DK::Lpddr4,
             {4, 6}, 1.5),
        make("Helio-P90", "MediaTek", "Cortex-A75", 2.2, DK::Lpddr4x,
             {4, 6}, 1.0),
        make("Helio-G90T", "MediaTek", "Cortex-A76", 2.05, DK::Lpddr4x,
             {4, 6, 8}, 1.5),
        make("Helio-X20", "MediaTek", "Cortex-A72", 2.3, DK::Lpddr3,
             {3, 4}, 1.0),
        // Samsung
        make("Exynos-7870", "Samsung", "Cortex-A53", 1.6, DK::Lpddr3,
             {2, 3}, 3.0),
        make("Exynos-7885", "Samsung", "Cortex-A73", 2.2, DK::Lpddr4,
             {4, 6}, 1.5),
        make("Exynos-8890", "Samsung", "Exynos-M1", 2.3, DK::Lpddr4,
             {4}, 1.0),
        make("Exynos-8895", "Samsung", "Exynos-M1", 2.3, DK::Lpddr4x,
             {4, 6}, 1.0),
        make("Exynos-9610", "Samsung", "Cortex-A73", 2.3, DK::Lpddr4x,
             {4, 6}, 1.5),
        make("Exynos-9810", "Samsung", "Exynos-M3", 2.7, DK::Lpddr4x,
             {4, 6}, 1.0),
        make("Exynos-9820", "Samsung", "Exynos-M4", 2.73, DK::Lpddr4x,
             {6, 8}, 1.0),
        // HiSilicon
        make("Kirin-659", "HiSilicon", "Cortex-A53", 2.36, DK::Lpddr3,
             {3, 4}, 3.0),
        make("Kirin-710", "HiSilicon", "Cortex-A73", 2.2, DK::Lpddr4,
             {4, 6}, 1.5),
        make("Kirin-970", "HiSilicon", "Cortex-A73", 2.36, DK::Lpddr4x,
             {4, 6}, 1.5),
        make("Kirin-980", "HiSilicon", "Cortex-A76", 2.6, DK::Lpddr4x,
             {6, 8}, 1.5),
        make("Kirin-990", "HiSilicon", "Cortex-A76", 2.86, DK::Lpddr4x,
             {8}, 1.0),
    };
    GCM_ASSERT(table.size() == 38, "chipsetTable: expected 38 entries");
    static const std::vector<Chipset> with_gpus = [] {
        std::vector<Chipset> t = table;
        applyGpuSpecs(t);
        return t;
    }();
    return with_gpus;
}

namespace
{

/** GPU table keyed by chipset name; missing entries = no delegate. */
struct GpuRow
{
    const char *chipset;
    const char *gpu;
    double freq_ghz;
    double macs_per_cycle;
    double flakiness;
};

const GpuRow kGpuRows[] = {
    {"Snapdragon-625", "Adreno-506", 0.65, 96, 0.35},
    {"Snapdragon-450", "Adreno-506", 0.6, 96, 0.4},
    {"Snapdragon-636", "Adreno-509", 0.72, 128, 0.3},
    {"Snapdragon-660", "Adreno-512", 0.85, 160, 0.25},
    {"Snapdragon-665", "Adreno-610", 0.95, 160, 0.2},
    {"Snapdragon-675", "Adreno-612", 0.85, 192, 0.2},
    {"Snapdragon-710", "Adreno-616", 0.75, 256, 0.2},
    {"Snapdragon-730", "Adreno-618", 0.8, 288, 0.15},
    {"Snapdragon-765G", "Adreno-620", 0.75, 384, 0.12},
    {"Snapdragon-820", "Adreno-530", 0.65, 256, 0.35},
    {"Snapdragon-835", "Adreno-540", 0.71, 288, 0.25},
    {"Snapdragon-845", "Adreno-630", 0.71, 512, 0.15},
    {"Snapdragon-855", "Adreno-640", 0.6, 768, 0.1},
    {"Snapdragon-865", "Adreno-650", 0.59, 1024, 0.08},
    {"Helio-P60", "Mali-G72MP3", 0.8, 96, 0.35},
    {"Helio-P70", "Mali-G72MP3", 0.9, 96, 0.35},
    {"Helio-P90", "PowerVR-GM9446", 0.97, 192, 0.3},
    {"Helio-G90T", "Mali-G76MP4", 0.8, 256, 0.2},
    {"Exynos-7885", "Mali-G71MP2", 0.77, 64, 0.4},
    {"Exynos-8890", "Mali-T880MP12", 0.65, 192, 0.45},
    {"Exynos-8895", "Mali-G71MP20", 0.55, 448, 0.3},
    {"Exynos-9610", "Mali-G72MP3", 0.85, 96, 0.3},
    {"Exynos-9810", "Mali-G72MP18", 0.57, 448, 0.25},
    {"Exynos-9820", "Mali-G76MP12", 0.7, 640, 0.15},
    {"Kirin-710", "Mali-G51MP4", 1.0, 96, 0.35},
    {"Kirin-970", "Mali-G72MP12", 0.75, 320, 0.25},
    {"Kirin-980", "Mali-G76MP10", 0.72, 512, 0.15},
    {"Kirin-990", "Mali-G76MP16", 0.7, 768, 0.12},
};

void
applyGpuSpecs(std::vector<Chipset> &table)
{
    for (const auto &row : kGpuRows) {
        for (auto &c : table) {
            if (c.name != row.chipset)
                continue;
            c.gpu.name = row.gpu;
            c.gpu.freq_ghz = row.freq_ghz;
            c.gpu.int8_macs_per_cycle = row.macs_per_cycle;
            c.gpu.delegate_flakiness = row.flakiness;
        }
    }
}

} // namespace

std::size_t
chipsetIndexByName(const std::string &name)
{
    const auto &table = chipsetTable();
    for (std::size_t i = 0; i < table.size(); ++i) {
        if (table[i].name == name)
            return i;
    }
    fatal("unknown chipset: ", name);
}

} // namespace gcm::sim

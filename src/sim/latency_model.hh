/**
 * @file
 * Analytical per-layer latency model for int8 inference on a mobile
 * big core — the simulator standing in for the paper's physical
 * measurement substrate.
 *
 * Per fused layer the model takes
 *   t = max(compute, memory) + dispatch
 * where compute = MACs / (peak int8 MAC rate x op-utilization x
 * thermal x bin), memory covers weight streaming from DRAM plus
 * activation traffic (cache-resident when it fits in L2+L3), and
 * dispatch models the TFLite interpreter's per-op overhead. Depthwise
 * convolutions get a much lower utilization, reproducing their
 * memory-bound behaviour on mobile CPUs.
 */

#ifndef GCM_SIM_LATENCY_MODEL_HH
#define GCM_SIM_LATENCY_MODEL_HH

#include "dnn/graph.hh"
#include "sim/device.hh"

namespace gcm::sim
{

/** Where a network is scheduled (paper: big CPU core only). */
enum class ExecutionTarget
{
    BigCore,
    GpuDelegate,
};

/** Display name of an execution target. */
const char *executionTargetName(ExecutionTarget target);

/** Tunable coefficients of the latency model. */
struct LatencyModelParams
{
    /** Fraction of peak int8 MAC rate achieved by 1x1 convolutions. */
    double conv1x1_efficiency = 0.55;
    /** Fraction for spatial (k >= 3) convolutions (better reuse). */
    double conv_spatial_efficiency = 0.70;
    /** Fraction for depthwise convolutions (poor SIMD utilization). */
    double depthwise_efficiency = 0.18;
    /** Fraction for fully-connected layers (GEMV, streaming). */
    double fc_efficiency = 0.40;
    /** Extra penalty when the output map is small (short loops). */
    double small_map_penalty = 0.65;
    /** Simple (non-MAC) ops retired per cycle per unit scalar IPC. */
    double simple_ops_per_cycle = 2.0;
    /** On-chip cache bandwidth in bytes per cycle. */
    double cache_bytes_per_cycle = 8.0;
    /** TFLite-style per-op dispatch overhead (microseconds). */
    double per_layer_overhead_us = 6.0;
    /** Fixed per-inference overhead (microseconds). */
    double graph_overhead_us = 200.0;

    // --- GPU-delegate coefficients (extension target) ---------------
    /** Fraction of GPU peak achieved by dense convolutions. */
    double gpu_conv_efficiency = 0.45;
    /** Fraction for depthwise convolutions (also poor on GPUs). */
    double gpu_dw_efficiency = 0.12;
    /** Fraction for fully-connected layers. */
    double gpu_fc_efficiency = 0.30;
    /** Simple ops retired per GPU cycle. */
    double gpu_simple_ops_per_cycle = 64.0;
    /** GPU share of DRAM bandwidth relative to one CPU core. */
    double gpu_bandwidth_scale = 1.5;
    /** Kernel-launch overhead per layer (microseconds). */
    double gpu_per_layer_overhead_us = 35.0;
    /** Delegate setup/teardown per inference (microseconds). */
    double gpu_graph_overhead_us = 1500.0;
};

/** Per-layer time decomposition (seconds). */
struct LayerBreakdown
{
    double compute_s = 0.0;
    double memory_s = 0.0;
    double dispatch_s = 0.0;

    /** max(compute, memory) + dispatch, in milliseconds. */
    double
    totalMs() const
    {
        return (compute_s > memory_s ? compute_s : memory_s)
            * 1e3 + dispatch_s * 1e3;
    }

    /** The dominant term ("compute" / "memory" / "dispatch"). */
    const char *boundName() const;
};

/** Deterministic device latency estimator (noise lives elsewhere). */
class LatencyModel
{
  public:
    explicit LatencyModel(LatencyModelParams params = {});

    /**
     * Time decomposition of one node: SIMD compute, memory traffic
     * and interpreter dispatch.
     * @param graph Quantized (int8) graph containing the node.
     * @param node The node to cost.
     * @param device The phone configuration.
     * @param chipset The device's chipset entry.
     */
    LayerBreakdown layerBreakdown(const dnn::Graph &graph,
                                  const dnn::Node &node,
                                  const DeviceSpec &device,
                                  const Chipset &chipset,
                                  ExecutionTarget target
                                  = ExecutionTarget::BigCore) const;

    /** Latency of one node in milliseconds. */
    double layerLatencyMs(const dnn::Graph &graph, const dnn::Node &node,
                          const DeviceSpec &device,
                          const Chipset &chipset,
                          ExecutionTarget target
                          = ExecutionTarget::BigCore) const;

    /**
     * End-to-end inference latency (ms, batch 1): single-threaded on
     * the big core, or through the GPU delegate.
     * @pre target != GpuDelegate or chipset.gpu.supported()
     */
    double graphLatencyMs(const dnn::Graph &graph,
                          const DeviceSpec &device,
                          const Chipset &chipset,
                          ExecutionTarget target
                          = ExecutionTarget::BigCore) const;

    const LatencyModelParams &params() const { return params_; }

  private:
    LayerBreakdown gpuLayerBreakdown(const dnn::Graph &graph,
                                     const dnn::Node &node,
                                     const DeviceSpec &device,
                                     const Chipset &chipset) const;

    LatencyModelParams params_;
};

} // namespace gcm::sim

#endif // GCM_SIM_LATENCY_MODEL_HH

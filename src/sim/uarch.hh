/**
 * @file
 * Mobile CPU core-family microarchitecture table.
 *
 * The 22 families cover the CPUs in the paper's Fig. 3, from the
 * in-order Cortex-A7/A53 era to Kryo 585 (Cortex-A77 derivative).
 * Parameters are coarse public-knowledge values: SIMD datapath width
 * and pipe count, int8 dot-product support (SDOT/UDOT, ARMv8.2),
 * cache sizes and a scalar-IPC figure for non-SIMD glue code.
 */

#ifndef GCM_SIM_UARCH_HH
#define GCM_SIM_UARCH_HH

#include <cstdint>
#include <string>
#include <vector>

namespace gcm::sim
{

/** Identifier into the core-family table. */
using CoreFamilyId = std::int32_t;

/** Static microarchitectural description of a big-core family. */
struct CoreFamily
{
    std::string name;
    /** Approximate introduction year (diversity axis in Fig. 3). */
    std::int32_t year = 2014;
    bool out_of_order = false;
    /** NEON datapath width in bits (64 for A7/A53-class). */
    std::int32_t simd_width_bits = 128;
    /** Number of SIMD issue pipes. */
    std::int32_t simd_pipes = 1;
    /** ARMv8.2 int8 dot-product (SDOT) support. */
    bool has_dotprod = false;
    /**
     * Modeled peak int8 MACs per cycle for well-blocked GEMM kernels.
     * This is calibrated against published TFLite int8 throughput
     * rather than derived from raw SIMD width: SDOT cores retire
     * ~16 MACs/cycle/pipe in theory but sustain far less, and legacy
     * cores do better than the naive widening-multiply bound.
     */
    double int8_macs_per_cycle = 8.0;
    /** Sustained scalar IPC for interpreter/pooling style code. */
    double scalar_ipc = 1.0;
    std::int32_t l1_kb = 32;
    std::int32_t l2_kb = 512;
    std::int32_t l3_kb = 0;

    /** Peak int8 multiply-accumulates per cycle. */
    double macsPerCycleInt8() const { return int8_macs_per_cycle; }
};

/** The 22-entry core-family table (order is stable). */
const std::vector<CoreFamily> &coreFamilyTable();

/** Index of a family by name. Throws GcmError when unknown. */
CoreFamilyId coreFamilyIdByName(const std::string &name);

/** Access a family by id. */
const CoreFamily &coreFamily(CoreFamilyId id);

} // namespace gcm::sim

#endif // GCM_SIM_UARCH_HH

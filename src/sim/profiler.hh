/**
 * @file
 * Per-layer latency profiler — the simulator's analogue of the TFLite
 * benchmark profiler the paper's app builds on. Breaks an inference
 * down into per-operator latency, identifies the bottleneck resource
 * of each layer, and aggregates per operator kind.
 */

#ifndef GCM_SIM_PROFILER_HH
#define GCM_SIM_PROFILER_HH

#include <string>
#include <vector>

#include "dnn/graph.hh"
#include "sim/latency_model.hh"

namespace gcm::sim
{

/** Profile entry for one graph node. */
struct LayerProfile
{
    dnn::NodeId node = -1;
    dnn::OpKind kind = dnn::OpKind::Input;
    double ms = 0.0;
    /** Share of end-to-end latency, in percent. */
    double percent = 0.0;
    std::int64_t macs = 0;
    LayerBreakdown breakdown;
};

/** Aggregate over all nodes of one operator kind. */
struct OpKindProfile
{
    dnn::OpKind kind = dnn::OpKind::Input;
    std::size_t count = 0;
    double ms = 0.0;
    double percent = 0.0;
};

/** Full inference profile. */
struct GraphProfile
{
    double total_ms = 0.0;
    /** Fixed per-inference overhead outside any layer. */
    double graph_overhead_ms = 0.0;
    std::vector<LayerProfile> layers;
    /** Per-kind aggregation, sorted by descending time. */
    std::vector<OpKindProfile> by_kind;
};

/**
 * Profile one network on one device (deterministic; no run noise).
 * @pre graph is int8 (deployment form).
 */
GraphProfile profileGraph(const LatencyModel &model,
                          const dnn::Graph &graph,
                          const DeviceSpec &device,
                          const Chipset &chipset);

/** Render a profile as an aligned text report. */
std::string renderProfile(const GraphProfile &profile,
                          const dnn::Graph &graph,
                          std::size_t top_layers = 12);

} // namespace gcm::sim

#endif // GCM_SIM_PROFILER_HH

#include "sim/measurement.hh"

#include <algorithm>
#include <cmath>

#include "util/error.hh"

namespace gcm::sim
{

DeviceRuntime::DeviceRuntime(const DeviceSpec &device,
                             const Chipset &chipset, LatencyModel model,
                             std::uint64_t seed, NoiseParams noise)
    : device_(device), chipset_(chipset), model_(model), noise_(noise),
      rng_(seed)
{}

GpuDelegateStatus
DeviceRuntime::gpuDelegateStatus() const
{
    if (!chipset_.gpu.supported())
        return GpuDelegateStatus::Unsupported;
    // Deterministic per device: same phone, same delegate behaviour.
    Rng probe = rng_.fork(0xD3137A7EULL);
    return probe.bernoulli(chipset_.gpu.delegate_flakiness)
        ? GpuDelegateStatus::Flaky
        : GpuDelegateStatus::Reliable;
}

MeasurementResult
DeviceRuntime::measure(const dnn::Graph &graph, std::size_t runs,
                       ExecutionTarget target)
{
    GCM_ASSERT(runs > 0, "measure: zero runs");
    if (graph.precision() != dnn::Precision::Int8) {
        fatal("DeviceRuntime::measure: network '", graph.name(),
              "' must be quantized to int8 before deployment");
    }
    double pathological = 1.0;
    if (target == ExecutionTarget::GpuDelegate) {
        const GpuDelegateStatus status = gpuDelegateStatus();
        if (status == GpuDelegateStatus::Unsupported) {
            fatal("GPU delegate unavailable on ", device_.model_name,
                  " (", chipset_.name, ")");
        }
        if (status == GpuDelegateStatus::Flaky) {
            Rng flake = rng_.fork(0xF1A4EULL + nextStream_);
            pathological = flake.uniform(3.0, 12.0);
        }
    }
    Rng rng = rng_.fork(nextStream_++);
    const double base_ms =
        model_.graphLatencyMs(graph, device_, chipset_, target)
        * pathological
        * rng.lognormalFactor(noise_.session_jitter_sigma);
    MeasurementResult res;
    res.runs_ms.reserve(runs);
    double sum = 0.0;
    for (std::size_t r = 0; r < runs; ++r) {
        double factor = rng.lognormalFactor(noise_.run_jitter_sigma);
        // Warm-up: the SoC heats over the first runs and the governor
        // settles to a slightly lower sustained frequency.
        const double ramp = std::min(
            1.0,
            static_cast<double>(r)
                / static_cast<double>(noise_.thermal_ramp_runs));
        factor *= 1.0 + noise_.thermal_ramp_max * ramp;
        if (rng.bernoulli(noise_.outlier_probability))
            factor *= rng.uniform(noise_.outlier_min, noise_.outlier_max);
        const double t = base_ms * factor;
        res.runs_ms.push_back(t);
        sum += t;
    }
    res.mean_ms = sum / static_cast<double>(runs);
    double ss = 0.0;
    for (double t : res.runs_ms)
        ss += (t - res.mean_ms) * (t - res.mean_ms);
    res.stddev_ms = runs > 1
        ? std::sqrt(ss / static_cast<double>(runs - 1))
        : 0.0;
    return res;
}

} // namespace gcm::sim

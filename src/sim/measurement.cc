#include "sim/measurement.hh"

#include <algorithm>
#include <cmath>

#include "util/error.hh"

namespace gcm::sim
{

void
NoiseParams::validate() const
{
    if (!std::isfinite(session_jitter_sigma) || session_jitter_sigma < 0.0
        || !std::isfinite(run_jitter_sigma) || run_jitter_sigma < 0.0) {
        fatal("NoiseParams: jitter sigmas must be finite and "
              "non-negative (session ",
              session_jitter_sigma, ", run ", run_jitter_sigma, ")");
    }
    if (!std::isfinite(thermal_ramp_max) || thermal_ramp_max < 0.0)
        fatal("NoiseParams: thermal_ramp_max must be finite and "
              "non-negative, got ",
              thermal_ramp_max);
    if (thermal_ramp_runs == 0)
        fatal("NoiseParams: thermal_ramp_runs must be positive");
    if (!std::isfinite(outlier_probability) || outlier_probability < 0.0
        || outlier_probability > 1.0) {
        fatal("NoiseParams: outlier_probability out of [0, 1], got ",
              outlier_probability);
    }
    if (!std::isfinite(outlier_min) || !std::isfinite(outlier_max)
        || outlier_min <= 0.0 || outlier_min > outlier_max) {
        fatal("NoiseParams: outlier range [", outlier_min, ", ",
              outlier_max, "] is invalid");
    }
}

const char *
aggregatorName(Aggregator aggregator)
{
    switch (aggregator) {
      case Aggregator::Mean: return "mean";
      case Aggregator::Median: return "median";
      case Aggregator::TrimmedMean: return "trimmed";
      case Aggregator::MadMean: return "mad";
    }
    GCM_ASSERT(false, "aggregatorName: invalid aggregator");
    return "?";
}

Aggregator
parseAggregator(const std::string &name)
{
    if (name == "mean")
        return Aggregator::Mean;
    if (name == "median")
        return Aggregator::Median;
    if (name == "trimmed")
        return Aggregator::TrimmedMean;
    if (name == "mad")
        return Aggregator::MadMean;
    fatal("unknown aggregator '", name,
          "' (mean|median|trimmed|mad)");
}

namespace
{

double
medianOf(std::vector<double> v)
{
    GCM_ASSERT(!v.empty(), "medianOf: empty");
    std::sort(v.begin(), v.end());
    const std::size_t mid = v.size() / 2;
    return v.size() % 2 == 1 ? v[mid]
                             : 0.5 * (v[mid - 1] + v[mid]);
}

} // namespace

double
aggregateRuns(const std::vector<double> &runs, Aggregator aggregator)
{
    GCM_ASSERT(!runs.empty(), "aggregateRuns: no runs");
    switch (aggregator) {
      case Aggregator::Mean: {
        double sum = 0.0;
        for (double t : runs)
            sum += t;
        return sum / static_cast<double>(runs.size());
      }
      case Aggregator::Median:
        return medianOf(runs);
      case Aggregator::TrimmedMean: {
        std::vector<double> sorted = runs;
        std::sort(sorted.begin(), sorted.end());
        const std::size_t trim = sorted.size() / 10;
        double sum = 0.0;
        std::size_t count = 0;
        for (std::size_t i = trim; i < sorted.size() - trim; ++i) {
            sum += sorted[i];
            ++count;
        }
        return sum / static_cast<double>(count);
      }
      case Aggregator::MadMean: {
        const double med = medianOf(runs);
        std::vector<double> dev;
        dev.reserve(runs.size());
        for (double t : runs)
            dev.push_back(std::abs(t - med));
        // 1.4826 scales the MAD to a Gaussian sigma estimate.
        const double mad = 1.4826 * medianOf(dev);
        if (mad <= 0.0)
            return med;
        double sum = 0.0;
        std::size_t count = 0;
        for (double t : runs) {
            if (std::abs(t - med) <= 3.0 * mad) {
                sum += t;
                ++count;
            }
        }
        return count > 0 ? sum / static_cast<double>(count) : med;
      }
    }
    GCM_ASSERT(false, "aggregateRuns: invalid aggregator");
    return 0.0;
}

DeviceRuntime::DeviceRuntime(const DeviceSpec &device,
                             const Chipset &chipset, LatencyModel model,
                             std::uint64_t seed, NoiseParams noise)
    : device_(device), chipset_(chipset), model_(model), noise_(noise),
      rng_(seed)
{}

GpuDelegateStatus
DeviceRuntime::gpuDelegateStatus() const
{
    if (!chipset_.gpu.supported())
        return GpuDelegateStatus::Unsupported;
    // Deterministic per device: same phone, same delegate behaviour.
    Rng probe = rng_.fork(0xD3137A7EULL);
    return probe.bernoulli(chipset_.gpu.delegate_flakiness)
        ? GpuDelegateStatus::Flaky
        : GpuDelegateStatus::Reliable;
}

MeasurementResult
DeviceRuntime::measure(const dnn::Graph &graph, std::size_t runs,
                       ExecutionTarget target)
{
    GCM_ASSERT(runs > 0, "measure: zero runs");
    if (graph.precision() != dnn::Precision::Int8) {
        fatal("DeviceRuntime::measure: network '", graph.name(),
              "' must be quantized to int8 before deployment");
    }
    double pathological = 1.0;
    if (target == ExecutionTarget::GpuDelegate) {
        const GpuDelegateStatus status = gpuDelegateStatus();
        if (status == GpuDelegateStatus::Unsupported) {
            fatal("GPU delegate unavailable on ", device_.model_name,
                  " (", chipset_.name, ")");
        }
        if (status == GpuDelegateStatus::Flaky) {
            Rng flake = rng_.fork(0xF1A4EULL + nextStream_);
            pathological = flake.uniform(3.0, 12.0);
        }
    }
    Rng rng = rng_.fork(nextStream_++);
    const double base_ms =
        model_.graphLatencyMs(graph, device_, chipset_, target)
        * pathological
        * rng.lognormalFactor(noise_.session_jitter_sigma);
    MeasurementResult res;
    res.runs_ms.reserve(runs);
    double sum = 0.0;
    for (std::size_t r = 0; r < runs; ++r) {
        double factor = rng.lognormalFactor(noise_.run_jitter_sigma);
        // Warm-up: the SoC heats over the first runs and the governor
        // settles to a slightly lower sustained frequency.
        const double ramp = std::min(
            1.0,
            static_cast<double>(r)
                / static_cast<double>(noise_.thermal_ramp_runs));
        factor *= 1.0 + noise_.thermal_ramp_max * ramp;
        if (rng.bernoulli(noise_.outlier_probability))
            factor *= rng.uniform(noise_.outlier_min, noise_.outlier_max);
        const double t = base_ms * factor;
        res.runs_ms.push_back(t);
        sum += t;
    }
    res.mean_ms = sum / static_cast<double>(runs);
    double ss = 0.0;
    for (double t : res.runs_ms)
        ss += (t - res.mean_ms) * (t - res.mean_ms);
    res.stddev_ms = runs > 1
        ? std::sqrt(ss / static_cast<double>(runs - 1))
        : 0.0;
    return res;
}

} // namespace gcm::sim

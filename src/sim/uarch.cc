#include "sim/uarch.hh"

#include "util/error.hh"

namespace gcm::sim
{

const std::vector<CoreFamily> &
coreFamilyTable()
{
    // name, year, ooo, simd_bits, pipes, dotprod, int8 MACs/cycle,
    // scalar_ipc, L1, L2, L3
    static const std::vector<CoreFamily> table = {
        {"Cortex-A7", 2011, false, 64, 1, false, 3.5, 0.8, 32, 256, 0},
        {"Cortex-A35", 2015, false, 64, 1, false, 5.0, 0.9, 32, 512, 0},
        {"Cortex-A53", 2012, false, 64, 1, false, 6.0, 1.0, 32, 512, 0},
        {"Cortex-A55", 2017, false, 128, 1, true, 10.0, 1.1, 32, 512, 0},
        {"Cortex-A57", 2012, true, 128, 1, false, 8.0, 1.5, 32, 1024, 0},
        {"Cortex-A72", 2015, true, 128, 1, false, 9.0, 1.7, 32, 1024, 0},
        {"Cortex-A73", 2016, true, 128, 2, false, 10.0, 1.8, 64, 1024, 0},
        {"Cortex-A75", 2017, true, 128, 2, true, 14.0, 2.0, 64, 512,
         2048},
        {"Cortex-A76", 2018, true, 128, 2, true, 23.0, 2.3, 64, 512,
         2048},
        {"Cortex-A77", 2019, true, 128, 2, true, 26.0, 2.5, 64, 512,
         4096},
        {"Cortex-A78", 2020, true, 128, 2, true, 28.0, 2.7, 64, 512,
         4096},
        {"Kryo", 2015, true, 128, 2, false, 10.0, 1.7, 32, 1024, 0},
        {"Kryo-260-Gold", 2017, true, 128, 2, false, 10.0, 1.8, 64, 1024,
         0},
        {"Kryo-280", 2017, true, 128, 2, false, 10.5, 1.8, 64, 2048, 0},
        {"Kryo-360-Gold", 2018, true, 128, 2, true, 14.0, 2.0, 64, 256,
         1024},
        {"Kryo-385-Gold", 2018, true, 128, 2, true, 14.5, 2.0, 64, 256,
         2048},
        {"Kryo-460-Gold", 2019, true, 128, 2, true, 22.0, 2.3, 64, 256,
         2048},
        {"Kryo-485-Gold", 2019, true, 128, 2, true, 23.0, 2.3, 64, 512,
         2048},
        {"Kryo-585", 2020, true, 128, 2, true, 26.0, 2.5, 64, 512, 4096},
        {"Exynos-M1", 2016, true, 128, 2, false, 9.0, 1.6, 32, 2048, 0},
        {"Exynos-M3", 2018, true, 128, 3, false, 13.0, 2.2, 64, 512,
         4096},
        {"Exynos-M4", 2019, true, 128, 3, true, 24.0, 2.4, 64, 512,
         4096},
    };
    return table;
}

CoreFamilyId
coreFamilyIdByName(const std::string &name)
{
    const auto &table = coreFamilyTable();
    for (std::size_t i = 0; i < table.size(); ++i) {
        if (table[i].name == name)
            return static_cast<CoreFamilyId>(i);
    }
    fatal("unknown core family: ", name);
}

const CoreFamily &
coreFamily(CoreFamilyId id)
{
    const auto &table = coreFamilyTable();
    GCM_ASSERT(id >= 0 && static_cast<std::size_t>(id) < table.size(),
               "coreFamily: id out of range");
    return table[static_cast<std::size_t>(id)];
}

} // namespace gcm::sim

#include "sim/campaign.hh"

#include "dnn/quantize.hh"
#include "obs/obs.hh"
#include "util/error.hh"
#include "util/parallel.hh"

namespace gcm::sim
{

CharacterizationCampaign::CharacterizationCampaign(
    const DeviceDatabase &fleet, LatencyModel model, CampaignConfig config)
    : fleet_(fleet), model_(std::move(model)), config_(config)
{
    GCM_ASSERT(config_.runs_per_network > 0,
               "CampaignConfig: zero runs per network");
}

GpuDelegateStatus
CharacterizationCampaign::delegateStatus(const DeviceSpec &device) const
{
    DeviceRuntime probe(
        device, fleet_.chipsetOf(device), model_,
        config_.noise_seed
            ^ (0x9e3779b97f4a7c15ULL
               * static_cast<std::uint64_t>(device.id + 1)),
        config_.noise);
    return probe.gpuDelegateStatus();
}

std::vector<std::size_t>
CharacterizationCampaign::measurableDevices() const
{
    std::vector<std::size_t> out;
    for (std::size_t i = 0; i < fleet_.size(); ++i) {
        const DeviceSpec &device = fleet_.device(i);
        if (config_.target == ExecutionTarget::GpuDelegate
            && config_.skip_unreliable_gpu_devices
            && delegateStatus(device) != GpuDelegateStatus::Reliable) {
            continue;
        }
        out.push_back(i);
    }
    return out;
}

std::vector<const dnn::Graph *>
CharacterizationCampaign::deployableSuite(
    const std::vector<dnn::Graph> &suite,
    std::vector<dnn::Graph> &storage)
{
    // All graph-invariant deployment work happens here, exactly once
    // per network regardless of fleet size: fp32 networks are
    // quantized a single time and already-int8 networks are
    // referenced in place instead of copied per iteration.
    storage.clear();
    storage.reserve(suite.size());
    std::vector<const dnn::Graph *> deployed;
    deployed.reserve(suite.size());
    for (const auto &g : suite) {
        if (g.precision() == dnn::Precision::Int8) {
            deployed.push_back(&g);
        } else {
            storage.push_back(dnn::quantize(g));
            deployed.push_back(&storage.back());
        }
    }
    return deployed;
}

std::vector<MeasurementRecord>
CharacterizationCampaign::measureDevice(
    std::size_t fleet_idx,
    const std::vector<const dnn::Graph *> &deployed) const
{
    const obs::TraceSpan span("campaign.device");
    obs::counterAdd("campaign.devices");
    const DeviceSpec &device = fleet_.device(fleet_idx);
    const Chipset &chipset = fleet_.chipsetOf(device);
    DeviceRuntime runtime(
        device, chipset, model_,
        config_.noise_seed
            ^ (0x9e3779b97f4a7c15ULL
               * static_cast<std::uint64_t>(device.id + 1)),
        config_.noise);
    std::vector<MeasurementRecord> records;
    records.reserve(deployed.size());
    for (const dnn::Graph *g : deployed) {
        const MeasurementResult res = runtime.measure(
            *g, config_.runs_per_network, config_.target);
        MeasurementRecord rec;
        rec.device_id = device.id;
        rec.device_name = device.model_name;
        rec.network = g->name();
        rec.mean_ms = res.mean_ms;
        rec.stddev_ms = res.stddev_ms;
        rec.runs = static_cast<std::int32_t>(res.runs_ms.size());
        records.push_back(std::move(rec));
    }
    return records;
}

MeasurementRepository
CharacterizationCampaign::run(const std::vector<dnn::Graph> &suite) const
{
    GCM_ASSERT(!suite.empty(), "campaign: empty network suite");
    const obs::TraceSpan run_span("campaign.run");
    std::vector<dnn::Graph> storage;
    const auto deployed = [&] {
        const obs::TraceSpan deploy_span("campaign.deploy");
        return deployableSuite(suite, storage);
    }();

    // The measurement grid: devices are independent tasks (each owns
    // its DeviceRuntime, whose noise stream is a function of the
    // device id alone), and within a device the networks run in suite
    // order, exactly as they did serially. Flattening the per-device
    // blocks in device order reproduces the serial repository
    // byte-for-byte at any thread count.
    const auto devices = measurableDevices();
    auto blocks = [&] {
        const obs::TraceSpan grid_span("campaign.grid");
        return parallelMap(devices.size(), 1, [&](std::size_t k) {
            return measureDevice(devices[k], deployed);
        });
    }();

    MeasurementRepository repo;
    for (auto &block : blocks) {
        for (auto &rec : block)
            repo.add(std::move(rec));
    }
    obs::counterAdd("campaign.records", repo.size());
    return repo;
}

void
CharacterizationCampaign::measureOnDevice(const dnn::Graph &int8_network,
                                          const DeviceSpec &device,
                                          MeasurementRepository &repo) const
{
    const Chipset &chipset = fleet_.chipsetOf(device);
    DeviceRuntime runtime(
        device, chipset, model_,
        config_.noise_seed
            ^ (0x9e3779b97f4a7c15ULL
               * static_cast<std::uint64_t>(device.id + 1))
            ^ 0x5bf03635ULL,
        config_.noise);
    const MeasurementResult res =
        runtime.measure(int8_network, config_.runs_per_network);
    MeasurementRecord rec;
    rec.device_id = device.id;
    rec.device_name = device.model_name;
    rec.network = int8_network.name();
    rec.mean_ms = res.mean_ms;
    rec.stddev_ms = res.stddev_ms;
    rec.runs = static_cast<std::int32_t>(res.runs_ms.size());
    repo.add(std::move(rec));
}

} // namespace gcm::sim

#include "sim/campaign.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "dnn/quantize.hh"
#include "obs/obs.hh"
#include "util/error.hh"
#include "util/parallel.hh"

namespace gcm::sim
{

void
RetryPolicy::validate() const
{
    if (max_attempts == 0)
        fatal("RetryPolicy: max_attempts must be positive");
    if (!std::isfinite(base_backoff_ms) || base_backoff_ms < 0.0)
        fatal("RetryPolicy: base_backoff_ms must be finite and "
              "non-negative, got ",
              base_backoff_ms);
    if (!std::isfinite(backoff_multiplier) || backoff_multiplier < 1.0)
        fatal("RetryPolicy: backoff_multiplier must be >= 1, got ",
              backoff_multiplier);
    if (!std::isfinite(max_backoff_ms) || max_backoff_ms < base_backoff_ms)
        fatal("RetryPolicy: max_backoff_ms must be finite and >= "
              "base_backoff_ms, got ",
              max_backoff_ms);
    if (!std::isfinite(session_timeout_ms) || session_timeout_ms <= 0.0)
        fatal("RetryPolicy: session_timeout_ms must be positive, got ",
              session_timeout_ms);
    if (quarantine_after == 0)
        fatal("RetryPolicy: quarantine_after must be positive");
}

void
CampaignConfig::validate() const
{
    if (runs_per_network == 0)
        fatal("CampaignConfig: runs_per_network must be positive");
    noise.validate();
    faults.validate();
    retry.validate();
}

CharacterizationCampaign::CharacterizationCampaign(
    const DeviceDatabase &fleet, LatencyModel model, CampaignConfig config)
    : fleet_(fleet), model_(std::move(model)), config_(config)
{
    config_.validate();
}

GpuDelegateStatus
CharacterizationCampaign::delegateStatus(const DeviceSpec &device) const
{
    DeviceRuntime probe(
        device, fleet_.chipsetOf(device), model_,
        config_.noise_seed
            ^ (0x9e3779b97f4a7c15ULL
               * static_cast<std::uint64_t>(device.id + 1)),
        config_.noise);
    return probe.gpuDelegateStatus();
}

std::vector<std::size_t>
CharacterizationCampaign::measurableDevices() const
{
    std::vector<std::size_t> out;
    for (std::size_t i = 0; i < fleet_.size(); ++i) {
        const DeviceSpec &device = fleet_.device(i);
        if (config_.target == ExecutionTarget::GpuDelegate
            && config_.skip_unreliable_gpu_devices
            && delegateStatus(device) != GpuDelegateStatus::Reliable) {
            continue;
        }
        out.push_back(i);
    }
    return out;
}

std::vector<const dnn::Graph *>
CharacterizationCampaign::deployableSuite(
    const std::vector<dnn::Graph> &suite,
    std::vector<dnn::Graph> &storage)
{
    // All graph-invariant deployment work happens here, exactly once
    // per network regardless of fleet size: fp32 networks are
    // quantized a single time and already-int8 networks are
    // referenced in place instead of copied per iteration.
    storage.clear();
    storage.reserve(suite.size());
    std::vector<const dnn::Graph *> deployed;
    deployed.reserve(suite.size());
    for (const auto &g : suite) {
        if (g.precision() == dnn::Precision::Int8) {
            deployed.push_back(&g);
        } else {
            storage.push_back(dnn::quantize(g));
            deployed.push_back(&storage.back());
        }
    }
    return deployed;
}

namespace
{

MeasurementRecord
makeRecord(const DeviceSpec &device, const std::string &network,
           double mean_ms, const MeasurementResult &res)
{
    MeasurementRecord rec;
    rec.device_id = device.id;
    rec.device_name = device.model_name;
    rec.network = network;
    rec.mean_ms = mean_ms;
    rec.stddev_ms = res.stddev_ms;
    rec.runs = static_cast<std::int32_t>(res.runs_ms.size());
    return rec;
}

} // namespace

CharacterizationCampaign::DeviceOutcome
CharacterizationCampaign::measureDeviceResilient(
    std::size_t fleet_idx,
    const std::vector<const dnn::Graph *> &deployed,
    const FaultInjector &injector) const
{
    const obs::TraceSpan span("campaign.device");
    obs::counterAdd("campaign.devices");
    const DeviceSpec &device = fleet_.device(fleet_idx);
    const Chipset &chipset = fleet_.chipsetOf(device);
    DeviceRuntime runtime(
        device, chipset, model_,
        config_.noise_seed
            ^ (0x9e3779b97f4a7c15ULL
               * static_cast<std::uint64_t>(device.id + 1)),
        config_.noise);

    DeviceOutcome out;
    out.device_id = device.id;
    out.records.reserve(deployed.size());
    CampaignStats &st = out.stats;

    // The device's campaign-wide fault disposition: how flaky it is
    // and whether (and when) it disappears mid-campaign. session_idx
    // counts attempts (retries included), so "never" must be an
    // unreachable sentinel, not the suite size.
    std::size_t dropout_session =
        std::numeric_limits<std::size_t>::max();
    if (injector.enabled()) {
        const DeviceFaultProfile profile =
            injector.deviceProfile(device.id);
        if (profile.drops_out) {
            dropout_session = std::max<std::size_t>(
                1, static_cast<std::size_t>(
                       profile.dropout_fraction
                       * static_cast<double>(deployed.size())));
        }
    }

    std::uint64_t session_idx = 0;
    std::size_t consecutive_failures = 0;
    for (std::size_t ni = 0;
         ni < deployed.size() && !out.quarantined && !out.dropped_out;
         ++ni) {
        const dnn::Graph *g = deployed[ni];
        bool stored = false;
        for (std::size_t attempt = 0;
             attempt < config_.retry.max_attempts && !stored; ++attempt) {
            if (session_idx >= dropout_session) {
                // The device went dark; nothing more will upload.
                out.dropped_out = true;
                break;
            }
            ++st.sessions_attempted;
            const MeasurementResult res = runtime.measure(
                *g, config_.runs_per_network, config_.target);
            double clean_duration_ms = 0.0;
            for (double t : res.runs_ms)
                clean_duration_ms += t;
            // The paper uploads the plain mean; robust aggregators
            // shave off interference outliers before upload.
            const double mean_ms =
                config_.aggregator == Aggregator::Mean
                    ? res.mean_ms
                    : aggregateRuns(res.runs_ms, config_.aggregator);

            SessionFault fault;
            fault.duration_ms = clean_duration_ms;
            if (injector.enabled()) {
                fault = injector.sessionFault(device.id, session_idx,
                                              mean_ms,
                                              clean_duration_ms);
            }
            ++session_idx;
            st.simulated_ms += fault.duration_ms;

            switch (fault.kind) {
              case FaultKind::None:
                out.records.push_back(
                    makeRecord(device, g->name(), mean_ms, res));
                stored = true;
                break;
              case FaultKind::DuplicateUpload:
                out.records.push_back(
                    makeRecord(device, g->name(), mean_ms, res));
                out.records.push_back(out.records.back());
                ++st.duplicates;
                stored = true;
                break;
              case FaultKind::Straggler:
                if (fault.duration_ms
                    <= config_.retry.session_timeout_ms) {
                    // Slow but within budget: the upload still counts.
                    out.records.push_back(
                        makeRecord(device, g->name(), mean_ms, res));
                    stored = true;
                } else {
                    ++st.stragglers;
                }
                break;
              case FaultKind::SessionCrash:
                ++st.crashes;
                break;
              case FaultKind::CorruptUpload: {
                const MeasurementRecord rec = makeRecord(
                    device, g->name(), fault.corrupted_ms, res);
                if (MeasurementRepository::validRecord(rec)) {
                    // Plausible-looking corruption slips through the
                    // validator, exactly as in the field.
                    out.records.push_back(rec);
                    stored = true;
                } else {
                    ++st.corrupt_rejected;
                }
                break;
              }
            }

            if (stored) {
                ++st.sessions_ok;
                ++st.completed_cells;
                consecutive_failures = 0;
                break;
            }
            ++consecutive_failures;
            if (consecutive_failures >= config_.retry.quarantine_after) {
                out.quarantined = true;
                break;
            }
            if (attempt + 1 < config_.retry.max_attempts) {
                ++st.retries;
                const double backoff = std::min(
                    config_.retry.max_backoff_ms,
                    config_.retry.base_backoff_ms
                        * std::pow(config_.retry.backoff_multiplier,
                                   static_cast<double>(attempt)));
                st.simulated_ms += backoff;
                obs::histogramObserve("campaign.backoff_ms", backoff);
            }
        }
    }

    if (out.quarantined) {
        // A repeat offender's earlier uploads are untrustworthy too:
        // purge the device entirely, as the paper's manual session
        // filtering did.
        out.records.clear();
        st.completed_cells = 0;
        ++st.quarantined_devices;
    }
    if (out.dropped_out)
        ++st.dropout_devices;
    st.dropped_cells =
        static_cast<std::uint64_t>(deployed.size()) - st.completed_cells;

    if (injector.enabled()) {
        obs::counterAdd("campaign.sessions", st.sessions_attempted);
        obs::counterAdd("campaign.retries", st.retries);
        obs::counterAdd("campaign.crashes", st.crashes);
        obs::counterAdd("campaign.stragglers", st.stragglers);
        obs::counterAdd("campaign.corrupt_rejected", st.corrupt_rejected);
        obs::counterAdd("campaign.duplicates", st.duplicates);
        obs::counterAdd("campaign.dropped_cells", st.dropped_cells);
        if (out.quarantined)
            obs::counterAdd("campaign.quarantined_devices");
        if (out.dropped_out)
            obs::counterAdd("campaign.dropout_devices");
        obs::histogramObserve("campaign.device_sim_ms", st.simulated_ms);
    }
    return out;
}

namespace
{

void
mergeStats(CampaignStats &into, const CampaignStats &from)
{
    into.sessions_attempted += from.sessions_attempted;
    into.sessions_ok += from.sessions_ok;
    into.retries += from.retries;
    into.crashes += from.crashes;
    into.stragglers += from.stragglers;
    into.corrupt_rejected += from.corrupt_rejected;
    into.duplicates += from.duplicates;
    into.dropped_cells += from.dropped_cells;
    into.completed_cells += from.completed_cells;
    into.quarantined_devices += from.quarantined_devices;
    into.dropout_devices += from.dropout_devices;
    into.simulated_ms += from.simulated_ms;
}

} // namespace

CampaignReport
CharacterizationCampaign::runResilient(
    const std::vector<dnn::Graph> &suite) const
{
    GCM_ASSERT(!suite.empty(), "campaign: empty network suite");
    const obs::TraceSpan run_span("campaign.run");
    std::vector<dnn::Graph> storage;
    const auto deployed = [&] {
        const obs::TraceSpan deploy_span("campaign.deploy");
        return deployableSuite(suite, storage);
    }();
    const FaultInjector injector(config_.faults, config_.fault_seed);

    // The measurement grid: devices are independent tasks (each owns
    // its DeviceRuntime and fault streams, both functions of the
    // device id alone), and within a device the networks run in suite
    // order, exactly as they did serially. Flattening the per-device
    // blocks in device order reproduces the serial repository
    // byte-for-byte at any thread count.
    const auto devices = measurableDevices();
    auto outcomes = [&] {
        const obs::TraceSpan grid_span("campaign.grid");
        return parallelMap(devices.size(), 1, [&](std::size_t k) {
            return measureDeviceResilient(devices[k], deployed,
                                          injector);
        });
    }();

    CampaignReport report;
    report.expected_cells = devices.size() * deployed.size();
    for (auto &outcome : outcomes) {
        mergeStats(report.stats, outcome.stats);
        if (outcome.quarantined) {
            report.quarantined.push_back(outcome.device_id);
            report.repo.quarantine(outcome.device_id);
        }
        if (outcome.dropped_out)
            report.dropouts.push_back(outcome.device_id);
        for (auto &rec : outcome.records)
            report.repo.add(std::move(rec));
    }
    std::sort(report.quarantined.begin(), report.quarantined.end());
    std::sort(report.dropouts.begin(), report.dropouts.end());
    obs::counterAdd("campaign.records", report.repo.size());
    return report;
}

MeasurementRepository
CharacterizationCampaign::run(const std::vector<dnn::Graph> &suite) const
{
    return runResilient(suite).repo;
}

void
CharacterizationCampaign::measureOnDevice(const dnn::Graph &int8_network,
                                          const DeviceSpec &device,
                                          MeasurementRepository &repo) const
{
    const Chipset &chipset = fleet_.chipsetOf(device);
    DeviceRuntime runtime(
        device, chipset, model_,
        config_.noise_seed
            ^ (0x9e3779b97f4a7c15ULL
               * static_cast<std::uint64_t>(device.id + 1))
            ^ 0x5bf03635ULL,
        config_.noise);
    const MeasurementResult res =
        runtime.measure(int8_network, config_.runs_per_network);
    MeasurementRecord rec;
    rec.device_id = device.id;
    rec.device_name = device.model_name;
    rec.network = int8_network.name();
    rec.mean_ms = res.mean_ms;
    rec.stddev_ms = res.stddev_ms;
    rec.runs = static_cast<std::int32_t>(res.runs_ms.size());
    repo.add(std::move(rec));
}

} // namespace gcm::sim

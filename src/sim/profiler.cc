#include "sim/profiler.hh"

#include <algorithm>
#include <map>
#include <sstream>

#include "dnn/analysis.hh"
#include "util/error.hh"
#include "util/table.hh"

namespace gcm::sim
{

GraphProfile
profileGraph(const LatencyModel &model, const dnn::Graph &graph,
             const DeviceSpec &device, const Chipset &chipset)
{
    if (graph.precision() != dnn::Precision::Int8) {
        fatal("profileGraph: network '", graph.name(),
              "' must be quantized to int8 before profiling");
    }
    GraphProfile profile;
    profile.graph_overhead_ms = model.params().graph_overhead_us * 1e-6
        * device.hidden.os_overhead * 1e3;
    profile.total_ms = profile.graph_overhead_ms;

    std::map<dnn::OpKind, OpKindProfile> by_kind;
    for (const auto &node : graph.nodes()) {
        if (node.kind == dnn::OpKind::Input)
            continue;
        LayerProfile lp;
        lp.node = node.id;
        lp.kind = node.kind;
        lp.breakdown =
            model.layerBreakdown(graph, node, device, chipset);
        lp.ms = lp.breakdown.totalMs();
        lp.macs = dnn::nodeCost(graph, node).macs;
        profile.total_ms += lp.ms;
        profile.layers.push_back(lp);

        OpKindProfile &agg = by_kind[node.kind];
        agg.kind = node.kind;
        ++agg.count;
        agg.ms += lp.ms;
    }
    for (auto &lp : profile.layers)
        lp.percent = 100.0 * lp.ms / profile.total_ms;
    for (auto &[kind, agg] : by_kind) {
        agg.percent = 100.0 * agg.ms / profile.total_ms;
        profile.by_kind.push_back(agg);
    }
    std::sort(profile.by_kind.begin(), profile.by_kind.end(),
              [](const OpKindProfile &a, const OpKindProfile &b) {
                  return a.ms > b.ms;
              });
    return profile;
}

std::string
renderProfile(const GraphProfile &profile, const dnn::Graph &graph,
              std::size_t top_layers)
{
    std::ostringstream oss;
    oss << "profile of " << graph.name() << ": "
        << formatDouble(profile.total_ms, 2) << " ms total ("
        << formatDouble(profile.graph_overhead_ms, 2)
        << " ms fixed overhead)\n\n";

    TextTable kinds({"operator", "count", "ms", "% of total"});
    for (const auto &agg : profile.by_kind) {
        kinds.addRow({dnn::opKindName(agg.kind),
                      std::to_string(agg.count),
                      formatDouble(agg.ms, 2),
                      formatDouble(agg.percent, 1)});
    }
    oss << kinds.render() << '\n';

    // Hottest individual layers.
    std::vector<const LayerProfile *> hottest;
    hottest.reserve(profile.layers.size());
    for (const auto &lp : profile.layers)
        hottest.push_back(&lp);
    std::sort(hottest.begin(), hottest.end(),
              [](const LayerProfile *a, const LayerProfile *b) {
                  return a->ms > b->ms;
              });
    if (hottest.size() > top_layers)
        hottest.resize(top_layers);

    TextTable layers({"node", "operator", "output", "MMACs", "ms", "%",
                      "bound"});
    for (const LayerProfile *lp : hottest) {
        const auto &node = graph.node(lp->node);
        layers.addRow({"%" + std::to_string(lp->node),
                       dnn::opKindName(lp->kind), node.shape.str(),
                       formatDouble(
                           static_cast<double>(lp->macs) / 1e6, 1),
                       formatDouble(lp->ms, 3),
                       formatDouble(lp->percent, 1),
                       lp->breakdown.boundName()});
    }
    oss << "hottest layers:\n" << layers.render();
    return oss.str();
}

} // namespace gcm::sim

/**
 * @file
 * Deterministic random number generation.
 *
 * All stochastic components of the library (network generator, device
 * hidden factors, measurement noise, train/test splits, random
 * sampling) draw from explicitly seeded Rng instances so that the
 * default dataset and every experiment are bit-reproducible.
 *
 * The generator is xoshiro256** seeded through SplitMix64, a standard
 * high-quality non-cryptographic combination.
 */

#ifndef GCM_UTIL_RNG_HH
#define GCM_UTIL_RNG_HH

#include <cstdint>
#include <vector>

#include "util/error.hh"

namespace gcm
{

/** xoshiro256** pseudo-random generator with convenience samplers. */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded via SplitMix64). */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit output. */
    std::uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [lo, hi] inclusive. @pre lo <= hi */
    std::int64_t uniformInt(std::int64_t lo, std::int64_t hi);

    /** Standard normal via Box-Muller (cached spare). */
    double normal();

    /** Normal with given mean and standard deviation. */
    double normal(double mean, double stddev);

    /**
     * Lognormal multiplier with unit median.
     *
     * @param sigma Standard deviation of the underlying normal.
     * @return exp(N(0, sigma)); median 1.0.
     */
    double lognormalFactor(double sigma);

    /** Bernoulli trial. @param p Probability of true. */
    bool bernoulli(double p);

    /** Index in [0, weights.size()) with probability ∝ weights[i]. */
    std::size_t weightedIndex(const std::vector<double> &weights);

    /** Fisher-Yates shuffle of an arbitrary vector. */
    template <typename T>
    void
    shuffle(std::vector<T> &v)
    {
        for (std::size_t i = v.size(); i > 1; --i) {
            std::size_t j = static_cast<std::size_t>(
                uniformInt(0, static_cast<std::int64_t>(i) - 1));
            std::swap(v[i - 1], v[j]);
        }
    }

    /**
     * Sample k distinct indices from [0, n) uniformly, in random order.
     * @pre k <= n
     */
    std::vector<std::size_t> sampleWithoutReplacement(std::size_t n,
                                                      std::size_t k);

    /**
     * Derive an independent child stream. Used to give each device /
     * network / experiment its own reproducible stream regardless of
     * how many draws its siblings consume.
     */
    Rng fork(std::uint64_t stream_id) const;

  private:
    std::uint64_t s_[4];
    double spareNormal_ = 0.0;
    bool hasSpare_ = false;
    std::uint64_t seed_;
};

} // namespace gcm

#endif // GCM_UTIL_RNG_HH

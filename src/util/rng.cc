#include "util/rng.hh"

#include <cmath>

namespace gcm
{

namespace
{

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed) : seed_(seed)
{
    std::uint64_t sm = seed;
    for (auto &s : s_)
        s = splitmix64(sm);
    // Avoid the (astronomically unlikely) all-zero state.
    if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0)
        s_[0] = 1;
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

double
Rng::uniform()
{
    // 53 high bits -> double in [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    GCM_ASSERT(lo <= hi, "uniform(): lo > hi");
    return lo + (hi - lo) * uniform();
}

std::int64_t
Rng::uniformInt(std::int64_t lo, std::int64_t hi)
{
    GCM_ASSERT(lo <= hi, "uniformInt(): lo > hi");
    const std::uint64_t range = static_cast<std::uint64_t>(hi - lo) + 1;
    if (range == 0) // full 64-bit range
        return static_cast<std::int64_t>(next());
    // Rejection sampling to remove modulo bias.
    const std::uint64_t limit = UINT64_MAX - UINT64_MAX % range;
    std::uint64_t r;
    do {
        r = next();
    } while (r >= limit);
    return lo + static_cast<std::int64_t>(r % range);
}

double
Rng::normal()
{
    if (hasSpare_) {
        hasSpare_ = false;
        return spareNormal_;
    }
    double u1, u2;
    do {
        u1 = uniform();
    } while (u1 <= 0.0);
    u2 = uniform();
    const double mag = std::sqrt(-2.0 * std::log(u1));
    spareNormal_ = mag * std::sin(2.0 * M_PI * u2);
    hasSpare_ = true;
    return mag * std::cos(2.0 * M_PI * u2);
}

double
Rng::normal(double mean, double stddev)
{
    return mean + stddev * normal();
}

double
Rng::lognormalFactor(double sigma)
{
    return std::exp(normal(0.0, sigma));
}

bool
Rng::bernoulli(double p)
{
    return uniform() < p;
}

std::size_t
Rng::weightedIndex(const std::vector<double> &weights)
{
    GCM_ASSERT(!weights.empty(), "weightedIndex(): empty weights");
    double total = 0.0;
    for (double w : weights) {
        GCM_ASSERT(w >= 0.0, "weightedIndex(): negative weight");
        total += w;
    }
    GCM_ASSERT(total > 0.0, "weightedIndex(): all-zero weights");
    double r = uniform() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        r -= weights[i];
        if (r < 0.0)
            return i;
    }
    return weights.size() - 1;
}

std::vector<std::size_t>
Rng::sampleWithoutReplacement(std::size_t n, std::size_t k)
{
    GCM_ASSERT(k <= n, "sampleWithoutReplacement(): k > n");
    std::vector<std::size_t> idx(n);
    for (std::size_t i = 0; i < n; ++i)
        idx[i] = i;
    // Partial Fisher-Yates: only the first k slots need finalizing.
    for (std::size_t i = 0; i < k; ++i) {
        std::size_t j = static_cast<std::size_t>(
            uniformInt(static_cast<std::int64_t>(i),
                       static_cast<std::int64_t>(n) - 1));
        std::swap(idx[i], idx[j]);
    }
    idx.resize(k);
    return idx;
}

Rng
Rng::fork(std::uint64_t stream_id) const
{
    // Mix the parent seed with the stream id through SplitMix64 so that
    // child streams are decorrelated from each other and the parent.
    std::uint64_t mix = seed_ ^ (0x632be59bd9b4e019ULL * (stream_id + 1));
    std::uint64_t expanded = splitmix64(mix);
    return Rng(expanded ^ stream_id);
}

} // namespace gcm

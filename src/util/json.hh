/**
 * @file
 * Minimal JSON value model and hardened recursive-descent parser.
 *
 * Grown out of the test-only parser behind the gcm-perf-report
 * checks, promoted into the library for the gcm-serve/v1 protocol
 * (src/serve), whose request lines are untrusted input. Hardening on
 * top of the test parser:
 *
 *  - parse errors raise GcmError (never std:: exceptions) with a
 *    byte-offset message, so callers can turn them into structured
 *    protocol error responses;
 *  - nesting depth is capped (kMaxJsonDepth) so a hostile
 *    "[[[[..." line cannot blow the stack;
 *  - numbers must be finite after conversion: "1e999" and friends
 *    are rejected instead of materializing as +inf (JSON itself has
 *    no NaN/Infinity literals, so this closes the only non-finite
 *    entry point);
 *  - duplicate object keys are rejected (the last-one-wins behaviour
 *    of lenient parsers silently drops data).
 */

#ifndef GCM_UTIL_JSON_HH
#define GCM_UTIL_JSON_HH

#include <cstddef>
#include <map>
#include <string>
#include <vector>

namespace gcm::json
{

/** Maximum container nesting depth accepted by parseJson(). */
inline constexpr std::size_t kMaxJsonDepth = 64;

/** One parsed JSON value (tagged union over the JSON grammar). */
struct Value
{
    enum class Kind { Null, Bool, Number, String, Array, Object };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string str;
    std::vector<Value> array;
    std::map<std::string, Value> object;

    bool isNull() const { return kind == Kind::Null; }
    bool isBool() const { return kind == Kind::Bool; }
    bool isNumber() const { return kind == Kind::Number; }
    bool isString() const { return kind == Kind::String; }
    bool isArray() const { return kind == Kind::Array; }
    bool isObject() const { return kind == Kind::Object; }

    bool has(const std::string &key) const
    {
        return isObject() && object.count(key) > 0;
    }

    /** Object member access. Throws GcmError when absent. */
    const Value &at(const std::string &key) const;
};

/**
 * Parse one complete JSON document. Trailing non-whitespace content
 * is an error. Throws GcmError on any malformed input.
 */
Value parseJson(const std::string &text);

/** Append `s` to `os` as a quoted JSON string with escapes. */
void appendJsonString(std::string &out, const std::string &s);

} // namespace gcm::json

#endif // GCM_UTIL_JSON_HH

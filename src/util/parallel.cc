#include "util/parallel.hh"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <exception>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "obs/obs.hh"

namespace gcm
{

namespace
{

/** One parallel loop in flight: chunk claiming + completion count. */
struct Batch
{
    std::size_t nchunks = 0;
    const std::function<void(std::size_t)> *chunk = nullptr;
    /** Next unclaimed chunk index; saturates at nchunks. */
    std::atomic<std::size_t> next{0};
    /** Set after the first failure so later chunks are skipped. */
    std::atomic<bool> failed{false};
    std::mutex m;
    std::condition_variable all_done;
    /** Chunks finished (run or skipped); guarded by m. */
    std::size_t completed = 0;
    /** First exception thrown by a chunk; guarded by m. */
    std::exception_ptr error;
    /** Observability snapshot taken at submission (see runBatch). */
    bool obs_on = false;
    void *obs_parent = nullptr;
    std::chrono::steady_clock::time_point posted_at;
};

/**
 * Stable small id for pool-counter breakdowns ("chunks per thread").
 * Assigned on a thread's first drained batch, in first-use order.
 */
std::size_t
obsThreadTag()
{
    static std::atomic<std::size_t> next{0};
    thread_local const std::size_t tag =
        next.fetch_add(1, std::memory_order_relaxed);
    return tag;
}

/**
 * Claim and execute chunks until the batch is exhausted. Every chunk
 * index is claimed by exactly one thread and counted exactly once, so
 * completed == nchunks holds iff all work finished.
 */
void
drain(Batch &b)
{
    // Chunk-side spans nest under the submitting thread's open span;
    // chunk counts accumulate in a stack-local and merge into the
    // registry once per drained batch, keeping the hot loop free of
    // shared-state writes (and the TSan lane clean).
    obs::SpanParentScope obs_scope(b.obs_on ? b.obs_parent : nullptr);
    std::size_t executed = 0;
    for (;;) {
        const std::size_t c =
            b.next.fetch_add(1, std::memory_order_relaxed);
        if (c >= b.nchunks)
            break;
        if (!b.failed.load(std::memory_order_relaxed)) {
            try {
                (*b.chunk)(c);
                ++executed;
            } catch (...) {
                std::lock_guard<std::mutex> lock(b.m);
                if (!b.error)
                    b.error = std::current_exception();
                b.failed.store(true, std::memory_order_relaxed);
            }
        }
        std::lock_guard<std::mutex> lock(b.m);
        if (++b.completed == b.nchunks)
            b.all_done.notify_all();
    }
    if (b.obs_on && executed > 0) {
        obs::counterAdd("pool.chunks", executed);
        obs::counterAdd("pool.thread." + std::to_string(obsThreadTag())
                            + ".chunks",
                        executed);
    }
}

/** Automatic size: GCM_THREADS env, else hardware_concurrency. */
std::size_t
autoThreads()
{
    if (const char *env = std::getenv("GCM_THREADS")) {
        char *end = nullptr;
        const unsigned long v = std::strtoul(env, &end, 10);
        if (end != env && *end == '\0' && v >= 1)
            return static_cast<std::size_t>(v);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

/**
 * The process-wide worker pool. Started on first use; numThreads()-1
 * workers, since the thread invoking a loop executes chunks itself.
 */
class Pool
{
  public:
    static Pool &
    instance()
    {
        static Pool pool;
        return pool;
    }

    std::size_t
    threads()
    {
        // Lock-free fast path: parallelFor asks on every invocation.
        const std::size_t cached =
            cached_.load(std::memory_order_relaxed);
        if (cached != 0)
            return cached;
        std::lock_guard<std::mutex> lock(m_);
        const std::size_t n = effectiveLocked();
        cached_.store(n, std::memory_order_relaxed);
        return n;
    }

    void
    configure(std::size_t n)
    {
        std::unique_lock<std::mutex> lock(m_);
        if (n == requested_)
            return;
        requested_ = n;
        cached_.store(effectiveLocked(), std::memory_order_relaxed);
        stopLocked(lock);
    }

    /** Post `copies` helper jobs that drain the batch. */
    void
    post(const std::shared_ptr<Batch> &batch, std::size_t copies)
    {
        std::lock_guard<std::mutex> lock(m_);
        startLocked();
        for (std::size_t i = 0; i < copies; ++i)
            jobs_.push_back(batch);
        wake_.notify_all();
    }

  private:
    Pool() = default;

    ~Pool()
    {
        std::unique_lock<std::mutex> lock(m_);
        stopLocked(lock);
    }

    std::size_t
    effectiveLocked() const
    {
        return requested_ != 0 ? requested_ : autoThreads();
    }

    void
    startLocked()
    {
        if (!workers_.empty())
            return;
        const std::size_t n = effectiveLocked();
        stop_ = false;
        for (std::size_t i = 0; i + 1 < n; ++i)
            workers_.emplace_back([this] { workerLoop(); });
    }

    void
    stopLocked(std::unique_lock<std::mutex> &lock)
    {
        if (workers_.empty())
            return;
        stop_ = true;
        wake_.notify_all();
        std::vector<std::thread> joining;
        joining.swap(workers_);
        lock.unlock();
        for (auto &t : joining)
            t.join();
        lock.lock();
        stop_ = false;
    }

    void
    workerLoop()
    {
        for (;;) {
            std::shared_ptr<Batch> batch;
            {
                std::unique_lock<std::mutex> lock(m_);
                wake_.wait(lock,
                           [this] { return stop_ || !jobs_.empty(); });
                if (stop_)
                    return;
                batch = std::move(jobs_.front());
                jobs_.pop_front();
            }
            if (batch->obs_on) {
                const std::chrono::duration<double, std::milli> wait =
                    std::chrono::steady_clock::now() - batch->posted_at;
                obs::histogramObserve("pool.queue_wait_ms",
                                      wait.count());
            }
            drain(*batch);
        }
    }

    std::mutex m_;
    std::condition_variable wake_;
    std::deque<std::shared_ptr<Batch>> jobs_;
    std::vector<std::thread> workers_;
    std::size_t requested_ = 0;
    std::atomic<std::size_t> cached_{0};
    bool stop_ = false;
};

} // namespace

std::size_t
numThreads()
{
    return Pool::instance().threads();
}

void
setThreads(std::size_t n)
{
    Pool::instance().configure(n);
}

namespace detail
{

void
runBatch(std::size_t nchunks,
         const std::function<void(std::size_t)> &chunk)
{
    if (nchunks == 0)
        return;
    auto batch = std::make_shared<Batch>();
    batch->nchunks = nchunks;
    batch->chunk = &chunk; // outlives the batch: we block below
    Pool &pool = Pool::instance();
    const std::size_t threads = pool.threads();
    if (obs::enabled()) {
        batch->obs_on = true;
        batch->obs_parent = obs::currentSpanHandle();
        batch->posted_at = std::chrono::steady_clock::now();
        obs::counterAdd("pool.batches");
        obs::gaugeSet("pool.threads",
                      static_cast<double>(threads));
    }
    const std::size_t helpers =
        threads - 1 < nchunks - 1 ? threads - 1 : nchunks - 1;
    if (helpers > 0)
        pool.post(batch, helpers);
    drain(*batch);
    std::unique_lock<std::mutex> lock(batch->m);
    batch->all_done.wait(
        lock, [&] { return batch->completed == batch->nchunks; });
    if (batch->error)
        std::rethrow_exception(batch->error);
}

} // namespace detail

} // namespace gcm

/**
 * @file
 * Minimal CSV reading/writing for dataset export and bench output.
 *
 * The dialect is deliberately simple: comma separator, optional
 * double-quote quoting with "" escaping, no embedded newlines.
 */

#ifndef GCM_UTIL_CSV_HH
#define GCM_UTIL_CSV_HH

#include <string>
#include <vector>

namespace gcm
{

/** A parsed CSV document: header row plus data rows of strings. */
struct CsvDocument
{
    std::vector<std::string> header;
    std::vector<std::vector<std::string>> rows;

    /** Index of a header column. Throws GcmError when absent. */
    std::size_t columnIndex(const std::string &name) const;
};

/** Split one CSV line into fields, honoring quotes. */
std::vector<std::string> parseCsvLine(const std::string &line);

/** Quote a field if it contains separator/quote characters. */
std::string escapeCsvField(const std::string &field);

/** Parse a whole document from text. First line is the header. */
CsvDocument parseCsv(const std::string &text);

/** Read and parse a CSV file. Throws GcmError on I/O failure. */
CsvDocument readCsvFile(const std::string &path);

/** Serialize a document to CSV text. */
std::string toCsv(const CsvDocument &doc);

/** Write a document to a file. Throws GcmError on I/O failure. */
void writeCsvFile(const std::string &path, const CsvDocument &doc);

} // namespace gcm

#endif // GCM_UTIL_CSV_HH

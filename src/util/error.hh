/**
 * @file
 * Error handling primitives shared across the gcm libraries.
 *
 * Following the gem5 convention, user-facing errors (bad configuration,
 * invalid arguments) raise GcmError via fatal(), while internal
 * invariant violations abort via panic() / GCM_ASSERT.
 */

#ifndef GCM_UTIL_ERROR_HH
#define GCM_UTIL_ERROR_HH

#include <sstream>
#include <stdexcept>
#include <string>

namespace gcm
{

/**
 * Exception thrown for user-level errors: invalid model configuration,
 * malformed networks, out-of-range parameters, bad file contents.
 */
class GcmError : public std::runtime_error
{
  public:
    explicit GcmError(const std::string &what_arg)
        : std::runtime_error(what_arg)
    {}
};

/**
 * Raise a GcmError composed from a stream of message fragments.
 *
 * @param parts Message fragments; anything streamable to std::ostream.
 */
template <typename... Args>
[[noreturn]] void
fatal(const Args &...parts)
{
    std::ostringstream oss;
    (oss << ... << parts);
    throw GcmError(oss.str());
}

namespace detail
{

/** Abort with a diagnostic; used by GCM_ASSERT on invariant failure. */
[[noreturn]] void panicImpl(const char *cond, const char *file, int line,
                            const std::string &msg);

} // namespace detail

} // namespace gcm

/**
 * Internal invariant check. Active in all build types: the library is a
 * research artifact where silent corruption is worse than an abort.
 */
#define GCM_ASSERT(cond, msg)                                               \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::gcm::detail::panicImpl(#cond, __FILE__, __LINE__, (msg));     \
        }                                                                   \
    } while (0)

#endif // GCM_UTIL_ERROR_HH

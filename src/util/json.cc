#include "util/json.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "util/error.hh"

namespace gcm::json
{

const Value &
Value::at(const std::string &key) const
{
    if (!has(key))
        fatal("json: missing key '", key, "'");
    return object.at(key);
}

namespace
{

class Parser
{
  public:
    explicit Parser(const std::string &text) : text_(text) {}

    Value
    parse()
    {
        const Value v = parseValue(0);
        skipWs();
        if (pos_ != text_.size())
            fail("trailing content");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const std::string &what) const
    {
        fatal("json: ", what, " at offset ", pos_);
    }

    void
    skipWs()
    {
        while (pos_ < text_.size()
               && std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    char
    peek()
    {
        skipWs();
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    bool
    consumeLiteral(const char *lit)
    {
        const std::size_t n = std::char_traits<char>::length(lit);
        if (text_.compare(pos_, n, lit) != 0)
            return false;
        pos_ += n;
        return true;
    }

    Value
    parseValue(std::size_t depth)
    {
        if (depth > kMaxJsonDepth)
            fail("nesting deeper than the limit");
        const char c = peek();
        if (c == '{')
            return parseObject(depth);
        if (c == '[')
            return parseArray(depth);
        if (c == '"')
            return parseString();
        if (c == 't' || c == 'f' || c == 'n')
            return parseKeyword();
        return parseNumber();
    }

    Value
    parseObject(std::size_t depth)
    {
        expect('{');
        Value v;
        v.kind = Value::Kind::Object;
        if (peek() == '}') {
            ++pos_;
            return v;
        }
        for (;;) {
            if (peek() != '"')
                fail("expected a string key");
            const Value key = parseString();
            if (v.object.count(key.str) > 0)
                fail("duplicate key '" + key.str + "'");
            expect(':');
            v.object[key.str] = parseValue(depth + 1);
            const char c = peek();
            ++pos_;
            if (c == '}')
                return v;
            if (c != ',')
                fail("expected ',' or '}' in object");
        }
    }

    Value
    parseArray(std::size_t depth)
    {
        expect('[');
        Value v;
        v.kind = Value::Kind::Array;
        if (peek() == ']') {
            ++pos_;
            return v;
        }
        for (;;) {
            v.array.push_back(parseValue(depth + 1));
            const char c = peek();
            ++pos_;
            if (c == ']')
                return v;
            if (c != ',')
                fail("expected ',' or ']' in array");
        }
    }

    Value
    parseString()
    {
        expect('"');
        Value v;
        v.kind = Value::Kind::String;
        while (pos_ < text_.size() && text_[pos_] != '"') {
            char c = text_[pos_++];
            if (c == '\\') {
                if (pos_ >= text_.size())
                    fail("unterminated escape");
                const char e = text_[pos_++];
                switch (e) {
                  case '"': c = '"'; break;
                  case '\\': c = '\\'; break;
                  case '/': c = '/'; break;
                  case 'n': c = '\n'; break;
                  case 't': c = '\t'; break;
                  case 'r': c = '\r'; break;
                  case 'b': c = '\b'; break;
                  case 'f': c = '\f'; break;
                  case 'u': {
                    if (pos_ + 4 > text_.size())
                        fail("truncated \\u escape");
                    int code = 0;
                    for (int k = 0; k < 4; ++k) {
                        const char h = text_[pos_ + k];
                        int digit;
                        if (h >= '0' && h <= '9')
                            digit = h - '0';
                        else if (h >= 'a' && h <= 'f')
                            digit = h - 'a' + 10;
                        else if (h >= 'A' && h <= 'F')
                            digit = h - 'A' + 10;
                        else
                            fail("bad \\u escape digit");
                        code = code * 16 + digit;
                    }
                    pos_ += 4;
                    if (code > 0xff)
                        fail("\\u escape beyond latin-1 unsupported");
                    c = static_cast<char>(code);
                    break;
                  }
                  default: fail("unknown escape");
                }
            }
            v.str.push_back(c);
        }
        if (pos_ >= text_.size())
            fail("unterminated string");
        ++pos_; // closing quote
        return v;
    }

    Value
    parseKeyword()
    {
        skipWs();
        Value v;
        if (consumeLiteral("true")) {
            v.kind = Value::Kind::Bool;
            v.boolean = true;
        } else if (consumeLiteral("false")) {
            v.kind = Value::Kind::Bool;
        } else if (consumeLiteral("null")) {
            v.kind = Value::Kind::Null;
        } else {
            fail("unknown keyword");
        }
        return v;
    }

    Value
    parseNumber()
    {
        skipWs();
        const std::size_t start = pos_;
        while (pos_ < text_.size()
               && (std::isdigit(static_cast<unsigned char>(text_[pos_]))
                   || text_[pos_] == '-' || text_[pos_] == '+'
                   || text_[pos_] == '.' || text_[pos_] == 'e'
                   || text_[pos_] == 'E')) {
            ++pos_;
        }
        if (start == pos_)
            fail("expected a number");
        Value v;
        v.kind = Value::Kind::Number;
        const std::string token = text_.substr(start, pos_ - start);
        std::size_t used = 0;
        try {
            v.number = std::stod(token, &used);
        } catch (const std::exception &) {
            fail("malformed number '" + token + "'");
        }
        if (used != token.size())
            fail("malformed number '" + token + "'");
        if (!std::isfinite(v.number))
            fail("non-finite number '" + token + "'");
        return v;
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

} // namespace

Value
parseJson(const std::string &text)
{
    return Parser(text).parse();
}

void
appendJsonString(std::string &out, const std::string &s)
{
    out.push_back('"');
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out.push_back(c);
            }
        }
    }
    out.push_back('"');
}

} // namespace gcm::json

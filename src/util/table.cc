#include "util/table.hh"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

#include "util/error.hh"

namespace gcm
{

std::string
formatDouble(double v, int precision)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(precision) << v;
    return oss.str();
}

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header))
{
    GCM_ASSERT(!header_.empty(), "TextTable: empty header");
}

void
TextTable::addRow(std::vector<std::string> row)
{
    GCM_ASSERT(row.size() == header_.size(),
               "TextTable: row width mismatch");
    rows_.push_back(std::move(row));
}

void
TextTable::addRow(const std::string &label, const std::vector<double> &vals,
                  int precision)
{
    std::vector<std::string> row;
    row.reserve(vals.size() + 1);
    row.push_back(label);
    for (double v : vals)
        row.push_back(formatDouble(v, precision));
    addRow(std::move(row));
}

std::string
TextTable::render() const
{
    std::vector<std::size_t> widths(header_.size());
    for (std::size_t i = 0; i < header_.size(); ++i)
        widths[i] = header_[i].size();
    for (const auto &row : rows_) {
        for (std::size_t i = 0; i < row.size(); ++i)
            widths[i] = std::max(widths[i], row[i].size());
    }

    std::ostringstream oss;
    auto rule = [&]() {
        oss << '+';
        for (std::size_t w : widths)
            oss << std::string(w + 2, '-') << '+';
        oss << '\n';
    };
    auto emit = [&](const std::vector<std::string> &row) {
        oss << '|';
        for (std::size_t i = 0; i < row.size(); ++i) {
            oss << ' ' << row[i]
                << std::string(widths[i] - row[i].size() + 1, ' ') << '|';
        }
        oss << '\n';
    };
    rule();
    emit(header_);
    rule();
    for (const auto &row : rows_)
        emit(row);
    rule();
    return oss.str();
}

std::string
renderHistogram(const std::vector<double> &values, std::size_t num_bins,
                const std::string &title, const std::string &unit)
{
    GCM_ASSERT(num_bins > 0, "renderHistogram: zero bins");
    std::ostringstream oss;
    oss << title << '\n';
    if (values.empty()) {
        oss << "  (no data)\n";
        return oss.str();
    }
    double lo = *std::min_element(values.begin(), values.end());
    double hi = *std::max_element(values.begin(), values.end());
    if (hi <= lo)
        hi = lo + 1.0;
    std::vector<std::size_t> counts(num_bins, 0);
    for (double v : values) {
        auto b = static_cast<std::size_t>((v - lo) / (hi - lo) * num_bins);
        if (b >= num_bins)
            b = num_bins - 1;
        ++counts[b];
    }
    std::size_t max_count = *std::max_element(counts.begin(), counts.end());
    const std::size_t max_width = 50;
    // Enough digits that adjacent bin edges are distinguishable.
    int precision = 1;
    double bin_width = (hi - lo) / static_cast<double>(num_bins);
    while (precision < 6 && bin_width < 2.0 * std::pow(10.0, -precision))
        ++precision;
    for (std::size_t b = 0; b < num_bins; ++b) {
        double bin_lo = lo + (hi - lo) * static_cast<double>(b) / num_bins;
        double bin_hi =
            lo + (hi - lo) * static_cast<double>(b + 1) / num_bins;
        std::size_t width = max_count
            ? counts[b] * max_width / max_count
            : 0;
        oss << "  [" << std::setw(9) << formatDouble(bin_lo, precision)
            << ", " << std::setw(9) << formatDouble(bin_hi, precision)
            << ") " << unit << " |" << std::string(width, '#') << ' '
            << counts[b] << '\n';
    }
    return oss.str();
}

std::string
renderBars(const std::vector<std::string> &labels,
           const std::vector<double> &counts, const std::string &title)
{
    GCM_ASSERT(labels.size() == counts.size(),
               "renderBars: label/count size mismatch");
    std::ostringstream oss;
    oss << title << '\n';
    if (labels.empty()) {
        oss << "  (no data)\n";
        return oss.str();
    }
    std::size_t label_w = 0;
    double max_count = 0.0;
    for (std::size_t i = 0; i < labels.size(); ++i) {
        label_w = std::max(label_w, labels[i].size());
        max_count = std::max(max_count, counts[i]);
    }
    const std::size_t max_width = 50;
    for (std::size_t i = 0; i < labels.size(); ++i) {
        std::size_t width = max_count > 0
            ? static_cast<std::size_t>(
                  std::lround(counts[i] * max_width / max_count))
            : 0;
        oss << "  " << labels[i]
            << std::string(label_w - labels[i].size(), ' ') << " |"
            << std::string(width, '#') << ' ' << counts[i] << '\n';
    }
    return oss.str();
}

std::string
renderSeries(const std::string &title, const std::string &x_name,
             const std::string &y_name, const std::vector<double> &xs,
             const std::vector<double> &ys, int precision)
{
    GCM_ASSERT(xs.size() == ys.size(), "renderSeries: size mismatch");
    TextTable t({x_name, y_name});
    for (std::size_t i = 0; i < xs.size(); ++i) {
        t.addRow({formatDouble(xs[i], 2), formatDouble(ys[i], precision)});
    }
    return title + "\n" + t.render();
}

} // namespace gcm

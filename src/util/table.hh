/**
 * @file
 * ASCII rendering helpers used by the bench harnesses to print the
 * paper's tables, histograms, and series in a terminal.
 */

#ifndef GCM_UTIL_TABLE_HH
#define GCM_UTIL_TABLE_HH

#include <string>
#include <vector>

namespace gcm
{

/** Column-aligned text table with an optional title. */
class TextTable
{
  public:
    explicit TextTable(std::vector<std::string> header);

    /** Append a data row. @pre row.size() == header.size() */
    void addRow(std::vector<std::string> row);

    /** Convenience: format doubles with fixed precision. */
    void addRow(const std::string &label, const std::vector<double> &vals,
                int precision = 4);

    /** Render with box-drawing separators. */
    std::string render() const;

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/**
 * Horizontal ASCII bar histogram. Builds equal-width bins over
 * [min, max] of the values and renders one bar per bin.
 */
std::string renderHistogram(const std::vector<double> &values,
                            std::size_t num_bins, const std::string &title,
                            const std::string &unit);

/**
 * Render labelled bars (e.g. a categorical histogram) scaled to a
 * maximum width of 50 characters.
 */
std::string renderBars(const std::vector<std::string> &labels,
                       const std::vector<double> &counts,
                       const std::string &title);

/**
 * Render an (x, y) series as aligned text rows, the closest terminal
 * analogue of the paper's line plots.
 */
std::string renderSeries(const std::string &title,
                         const std::string &x_name,
                         const std::string &y_name,
                         const std::vector<double> &xs,
                         const std::vector<double> &ys,
                         int precision = 4);

/** Format a double with fixed precision. */
std::string formatDouble(double v, int precision = 4);

} // namespace gcm

#endif // GCM_UTIL_TABLE_HH

#include "util/error.hh"

#include <cstdlib>
#include <iostream>

namespace gcm::detail
{

void
panicImpl(const char *cond, const char *file, int line,
          const std::string &msg)
{
    std::cerr << "panic: assertion `" << cond << "` failed at " << file
              << ":" << line << ": " << msg << std::endl;
    std::abort();
}

} // namespace gcm::detail

/**
 * @file
 * Deterministic parallel execution layer.
 *
 * A lazily-started shared ThreadPool plus two loop primitives —
 * parallelFor and an ordered parallelMap — used by every hot path in
 * the library (tree growth, forest bagging, batch prediction, the
 * campaign's device x network grid, cross-validation folds, signature
 * candidate scoring).
 *
 * Determinism contract
 * --------------------
 * Results are bit-identical at any thread count, including 1:
 *
 *  - The iteration space is split into fixed-size chunks whose
 *    boundaries depend only on (range, grain), never on the thread
 *    count or on scheduling. Within a chunk, indices run in ascending
 *    order, so every floating-point accumulation a task performs uses
 *    exactly the serial operation order.
 *  - Tasks may only write state owned by their own index (a slot in a
 *    pre-sized output vector, a disjoint histogram region, ...).
 *    Cross-task reductions are performed by the caller, serially, in
 *    index order after the loop completes.
 *  - Stochastic tasks never share a sequential Rng; each task derives
 *    its own stream with Rng::fork(task_id) (SplitMix64-style stream
 *    splitting), so the draws a task sees are a pure function of the
 *    parent seed and the task id.
 *
 * The pool size is taken from setThreads(), else the GCM_THREADS
 * environment variable, else std::thread::hardware_concurrency().
 * With one thread (or a single chunk) the loop body runs inline on
 * the calling thread and the pool is never started.
 *
 * Scheduling is caller-participates: the invoking thread claims and
 * executes chunks alongside the workers and can always finish the
 * whole batch by itself, so nested parallel sections (a parallel tree
 * trainer inside a parallel forest) cannot deadlock.
 */

#ifndef GCM_UTIL_PARALLEL_HH
#define GCM_UTIL_PARALLEL_HH

#include <cstddef>
#include <functional>
#include <optional>
#include <utility>
#include <vector>

namespace gcm
{

/**
 * Effective worker count (>= 1) the next parallel loop will use:
 * the last setThreads() value, else GCM_THREADS, else
 * hardware_concurrency.
 */
std::size_t numThreads();

/**
 * Set the pool size. 0 restores the automatic default (GCM_THREADS
 * env, then hardware_concurrency). A running pool is drained and
 * restarted at the new size; must not be called concurrently with a
 * parallel loop.
 */
void setThreads(std::size_t n);

namespace detail
{

/**
 * Execute chunk(0..nchunks-1), each exactly once, across the pool and
 * the calling thread. Blocks until all chunks finished; rethrows the
 * first exception a chunk threw (remaining chunks are skipped once a
 * failure is recorded).
 */
void runBatch(std::size_t nchunks,
              const std::function<void(std::size_t)> &chunk);

} // namespace detail

/**
 * Apply fn(i) for i in [begin, end), split into chunks of `grain`
 * consecutive indices. fn must only write task-owned state (see the
 * determinism contract above). Runs inline when a single chunk covers
 * the range or the pool has one thread.
 */
template <typename Fn>
void
parallelFor(std::size_t begin, std::size_t end, std::size_t grain, Fn &&fn)
{
    if (end <= begin)
        return;
    const std::size_t n = end - begin;
    const std::size_t g = grain == 0 ? 1 : grain;
    const std::size_t nchunks = (n + g - 1) / g;
    if (nchunks <= 1 || numThreads() == 1) {
        for (std::size_t i = begin; i < end; ++i)
            fn(i);
        return;
    }
    detail::runBatch(nchunks, [&](std::size_t c) {
        const std::size_t lo = begin + c * g;
        const std::size_t hi = lo + g < end ? lo + g : end;
        for (std::size_t i = lo; i < hi; ++i)
            fn(i);
    });
}

/**
 * Ordered map: out[i] = fn(i) for i in [0, n). Results land in index
 * order regardless of completion order, so downstream consumers see
 * exactly the serial sequence. R needs not be default-constructible.
 */
template <typename Fn>
auto
parallelMap(std::size_t n, std::size_t grain, Fn &&fn)
{
    using R = decltype(fn(std::size_t{0}));
    std::vector<std::optional<R>> slots(n);
    parallelFor(0, n, grain,
                [&](std::size_t i) { slots[i].emplace(fn(i)); });
    std::vector<R> out;
    out.reserve(n);
    for (auto &s : slots)
        out.push_back(std::move(*s));
    return out;
}

} // namespace gcm

#endif // GCM_UTIL_PARALLEL_HH

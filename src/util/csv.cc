#include "util/csv.hh"

#include <fstream>
#include <sstream>

#include "util/error.hh"

namespace gcm
{

std::size_t
CsvDocument::columnIndex(const std::string &name) const
{
    for (std::size_t i = 0; i < header.size(); ++i) {
        if (header[i] == name)
            return i;
    }
    fatal("CSV column not found: ", name);
}

std::vector<std::string>
parseCsvLine(const std::string &line)
{
    std::vector<std::string> fields;
    std::string cur;
    bool in_quotes = false;
    for (std::size_t i = 0; i < line.size(); ++i) {
        char c = line[i];
        if (in_quotes) {
            if (c == '"') {
                if (i + 1 < line.size() && line[i + 1] == '"') {
                    cur.push_back('"');
                    ++i;
                } else {
                    in_quotes = false;
                }
            } else {
                cur.push_back(c);
            }
        } else if (c == '"') {
            in_quotes = true;
        } else if (c == ',') {
            fields.push_back(cur);
            cur.clear();
        } else if (c != '\r') {
            cur.push_back(c);
        }
    }
    if (in_quotes)
        fatal("unterminated quote in CSV line: ", line);
    fields.push_back(cur);
    return fields;
}

std::string
escapeCsvField(const std::string &field)
{
    bool needs_quote = field.find_first_of(",\"\n") != std::string::npos;
    if (!needs_quote)
        return field;
    std::string out = "\"";
    for (char c : field) {
        if (c == '"')
            out += "\"\"";
        else
            out.push_back(c);
    }
    out.push_back('"');
    return out;
}

CsvDocument
parseCsv(const std::string &text)
{
    CsvDocument doc;
    std::istringstream iss(text);
    std::string line;
    bool first = true;
    while (std::getline(iss, line)) {
        if (line.empty())
            continue;
        auto fields = parseCsvLine(line);
        if (first) {
            doc.header = std::move(fields);
            first = false;
        } else {
            if (fields.size() != doc.header.size()) {
                fatal("CSV row has ", fields.size(), " fields, expected ",
                      doc.header.size());
            }
            doc.rows.push_back(std::move(fields));
        }
    }
    return doc;
}

CsvDocument
readCsvFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open CSV file for reading: ", path);
    std::ostringstream oss;
    oss << in.rdbuf();
    return parseCsv(oss.str());
}

std::string
toCsv(const CsvDocument &doc)
{
    std::ostringstream oss;
    auto emit_row = [&oss](const std::vector<std::string> &row) {
        for (std::size_t i = 0; i < row.size(); ++i) {
            if (i)
                oss << ',';
            oss << escapeCsvField(row[i]);
        }
        oss << '\n';
    };
    emit_row(doc.header);
    for (const auto &row : doc.rows)
        emit_row(row);
    return oss.str();
}

void
writeCsvFile(const std::string &path, const CsvDocument &doc)
{
    std::ofstream out(path);
    if (!out)
        fatal("cannot open CSV file for writing: ", path);
    out << toCsv(doc);
    if (!out)
        fatal("failed writing CSV file: ", path);
}

} // namespace gcm

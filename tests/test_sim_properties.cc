/**
 * @file
 * Property sweeps over the simulator: invariants that must hold for
 * every chipset and every zoo network, not just hand-picked cases.
 */

#include <gtest/gtest.h>

#include "dnn/analysis.hh"
#include "dnn/quantize.hh"
#include "dnn/zoo.hh"
#include "sim/latency_model.hh"

using namespace gcm;
using namespace gcm::sim;

namespace
{

DeviceSpec
nominalDevice(std::size_t chipset_index)
{
    DeviceSpec d;
    d.id = 1;
    d.model_name = "nominal";
    d.chipset_index = chipset_index;
    d.freq_ghz = chipsetTable()[chipset_index].max_freq_ghz;
    d.ram_gb = chipsetTable()[chipset_index].ram_options_gb.front();
    return d;
}

const dnn::Graph &
probeNet()
{
    static const dnn::Graph g =
        dnn::quantize(dnn::buildZooModel("mobilenet_v2_1.0"));
    return g;
}

} // namespace

/** Every chipset must produce sane, frequency-monotone latencies. */
class ChipsetPropertyTest : public ::testing::TestWithParam<std::size_t>
{};

TEST_P(ChipsetPropertyTest, LatencyPositiveAndBounded)
{
    const auto d = nominalDevice(GetParam());
    const LatencyModel model;
    const double ms = model.graphLatencyMs(
        probeNet(), d, chipsetTable()[GetParam()]);
    EXPECT_GT(ms, 1.0);
    EXPECT_LT(ms, 2000.0);
}

TEST_P(ChipsetPropertyTest, FrequencyMonotone)
{
    auto fast = nominalDevice(GetParam());
    auto slow = fast;
    slow.freq_ghz *= 0.6;
    const LatencyModel model;
    const auto &cs = chipsetTable()[GetParam()];
    EXPECT_GT(model.graphLatencyMs(probeNet(), slow, cs),
              model.graphLatencyMs(probeNet(), fast, cs));
}

TEST_P(ChipsetPropertyTest, GpuPathSaneWhenSupported)
{
    const auto &cs = chipsetTable()[GetParam()];
    if (!cs.gpu.supported())
        GTEST_SKIP() << cs.name << " has no GPU delegate";
    const auto d = nominalDevice(GetParam());
    const LatencyModel model;
    const double ms = model.graphLatencyMs(
        probeNet(), d, cs, ExecutionTarget::GpuDelegate);
    EXPECT_GT(ms, 1.0);
    EXPECT_LT(ms, 2000.0);
}

INSTANTIATE_TEST_SUITE_P(AllChipsets, ChipsetPropertyTest,
                         ::testing::Range<std::size_t>(0, 38));

/** Every zoo network must behave consistently under the model. */
class ZooPropertyTest : public ::testing::TestWithParam<int>
{};

TEST_P(ZooPropertyTest, LatencyDeterministicAndMacAligned)
{
    const auto &name =
        dnn::zooModelNames()[static_cast<std::size_t>(GetParam())];
    const dnn::Graph g = dnn::quantize(dnn::buildZooModel(name));
    const auto d = nominalDevice(chipsetIndexByName("Snapdragon-845"));
    const LatencyModel model;
    const auto &cs = chipsetTable()[d.chipset_index];
    const double a = model.graphLatencyMs(g, d, cs);
    const double b = model.graphLatencyMs(g, d, cs);
    EXPECT_DOUBLE_EQ(a, b);
    // A loose physical bound: effective throughput cannot exceed the
    // core's peak MAC rate.
    const double peak_macs_per_ms =
        d.freq_ghz * 1e9 * coreFamily(cs.big_core).macsPerCycleInt8()
        / 1e3;
    EXPECT_GT(a, static_cast<double>(dnn::totalMacs(g))
                     / peak_macs_per_ms);
}

INSTANTIATE_TEST_SUITE_P(AllZooModels, ZooPropertyTest,
                         ::testing::Range(0, 18));

/**
 * @file
 * Unit tests for CSV parsing/serialization.
 */

#include <gtest/gtest.h>

#include "util/csv.hh"
#include "util/error.hh"

using namespace gcm;

TEST(Csv, ParseSimpleLine)
{
    const auto f = parseCsvLine("a,b,c");
    ASSERT_EQ(f.size(), 3u);
    EXPECT_EQ(f[0], "a");
    EXPECT_EQ(f[2], "c");
}

TEST(Csv, ParseEmptyFields)
{
    const auto f = parseCsvLine("a,,c,");
    ASSERT_EQ(f.size(), 4u);
    EXPECT_EQ(f[1], "");
    EXPECT_EQ(f[3], "");
}

TEST(Csv, ParseQuotedField)
{
    const auto f = parseCsvLine("a,\"b,c\",d");
    ASSERT_EQ(f.size(), 3u);
    EXPECT_EQ(f[1], "b,c");
}

TEST(Csv, ParseEscapedQuote)
{
    const auto f = parseCsvLine("\"say \"\"hi\"\"\",x");
    ASSERT_EQ(f.size(), 2u);
    EXPECT_EQ(f[0], "say \"hi\"");
}

TEST(Csv, UnterminatedQuoteThrows)
{
    EXPECT_THROW(parseCsvLine("\"oops"), GcmError);
}

TEST(Csv, EscapeRoundtrip)
{
    const std::string raw = "a \"quoted\", field";
    const auto line = escapeCsvField(raw);
    const auto parsed = parseCsvLine(line);
    ASSERT_EQ(parsed.size(), 1u);
    EXPECT_EQ(parsed[0], raw);
}

TEST(Csv, EscapePlainFieldUnchanged)
{
    EXPECT_EQ(escapeCsvField("plain"), "plain");
}

TEST(Csv, ParseDocument)
{
    const auto doc = parseCsv("x,y\n1,2\n3,4\n");
    EXPECT_EQ(doc.header.size(), 2u);
    ASSERT_EQ(doc.rows.size(), 2u);
    EXPECT_EQ(doc.rows[1][0], "3");
}

TEST(Csv, RaggedRowThrows)
{
    EXPECT_THROW(parseCsv("a,b\n1\n"), GcmError);
}

TEST(Csv, ColumnIndexLookup)
{
    const auto doc = parseCsv("alpha,beta\n1,2\n");
    EXPECT_EQ(doc.columnIndex("beta"), 1u);
    EXPECT_THROW(doc.columnIndex("gamma"), GcmError);
}

TEST(Csv, DocumentRoundtrip)
{
    CsvDocument doc;
    doc.header = {"name", "value"};
    doc.rows = {{"net,1", "3.5"}, {"plain", "-2"}};
    const auto parsed = parseCsv(toCsv(doc));
    EXPECT_EQ(parsed.header, doc.header);
    EXPECT_EQ(parsed.rows, doc.rows);
}

TEST(Csv, FileRoundtrip)
{
    CsvDocument doc;
    doc.header = {"a"};
    doc.rows = {{"1"}, {"2"}};
    const std::string path = ::testing::TempDir() + "/gcm_test.csv";
    writeCsvFile(path, doc);
    const auto back = readCsvFile(path);
    EXPECT_EQ(back.rows, doc.rows);
}

TEST(Csv, MissingFileThrows)
{
    EXPECT_THROW(readCsvFile("/nonexistent/gcm.csv"), GcmError);
}

/**
 * @file
 * Bench-labelled smoke test: trains a small booster and runs a small
 * campaign with observability enabled, prints the perf report, and
 * sanity-checks that the headline spans carry non-negative wall time.
 * Run via `ctest -L bench`; excluded from the default unit lane only
 * by label, it still completes in seconds.
 */

#include <cstdio>
#include <vector>

#include <gtest/gtest.h>

#include "dnn/quantize.hh"
#include "dnn/zoo.hh"
#include "ml/gbt.hh"
#include "obs/obs.hh"
#include "sim/campaign.hh"
#include "sim/device.hh"
#include "util/parallel.hh"
#include "util/rng.hh"

#include "support_json.hh"

namespace
{

using namespace gcm;
using gcmtest::parseJson;

TEST(PerfSmoke, TrainAndCampaignUnderObservability)
{
    setThreads(8);
    obs::setEnabled(true);
    obs::reset();

    // Small but representative workload.
    Rng rng(7);
    ml::Dataset ds(16);
    std::vector<float> row(16);
    for (std::size_t i = 0; i < 400; ++i) {
        for (auto &v : row)
            v = static_cast<float>(rng.uniform(-1, 1));
        ds.addRow(row, rng.uniform(0, 10));
    }
    ml::GbtParams params;
    params.n_estimators = 20;
    ml::GradientBoostedTrees model(params);
    model.train(ds);

    const auto fleet = sim::DeviceDatabase::standard(2020, 8);
    sim::CampaignConfig config;
    config.runs_per_network = 4;
    std::vector<dnn::Graph> suite;
    suite.push_back(dnn::quantize(dnn::buildZooModel("squeezenet_1.1")));
    const sim::CharacterizationCampaign campaign(fleet,
                                                 sim::LatencyModel{},
                                                 config);
    campaign.run(suite);

    const std::string json = obs::reportJson();
    obs::reset();
    obs::setEnabled(false);
    setThreads(1);

    const auto r = parseJson(json);
    bool saw_train = false, saw_campaign = false;
    for (const auto &s : r.at("spans").array) {
        if (s.at("name").str == "gbt.train") {
            saw_train = true;
            EXPECT_GE(s.at("total_ms").number, 0.0);
        }
        if (s.at("name").str == "campaign.run") {
            saw_campaign = true;
            EXPECT_GE(s.at("total_ms").number, 0.0);
        }
    }
    EXPECT_TRUE(saw_train);
    EXPECT_TRUE(saw_campaign);

    // Human-readable artifact for the bench lane logs.
    std::printf("%s\n", json.c_str());
}

} // namespace

/**
 * @file
 * Unit tests for k-means clustering.
 */

#include <gtest/gtest.h>

#include "stats/kmeans.hh"

using namespace gcm::stats;
using gcm::Rng;

namespace
{

/** Three well-separated 2-D blobs. */
std::vector<std::vector<double>>
blobs(std::size_t per_blob, Rng &rng)
{
    const double centers[3][2] = {{0, 0}, {10, 10}, {-10, 10}};
    std::vector<std::vector<double>> pts;
    for (int c = 0; c < 3; ++c) {
        for (std::size_t i = 0; i < per_blob; ++i) {
            pts.push_back({centers[c][0] + rng.normal(0, 0.5),
                           centers[c][1] + rng.normal(0, 0.5)});
        }
    }
    return pts;
}

} // namespace

TEST(KMeans, RecoversSeparatedBlobs)
{
    Rng rng(1);
    const auto pts = blobs(30, rng);
    KMeansConfig cfg;
    cfg.k = 3;
    const auto res = kMeans(pts, cfg);
    // All points of one blob share an assignment, and the three blobs
    // get three distinct labels.
    for (int c = 0; c < 3; ++c) {
        const std::size_t base = static_cast<std::size_t>(c) * 30;
        for (std::size_t i = 1; i < 30; ++i)
            EXPECT_EQ(res.assignments[base], res.assignments[base + i]);
    }
    EXPECT_NE(res.assignments[0], res.assignments[30]);
    EXPECT_NE(res.assignments[30], res.assignments[60]);
    EXPECT_NE(res.assignments[0], res.assignments[60]);
}

TEST(KMeans, InertiaSmallForTightBlobs)
{
    Rng rng(2);
    const auto pts = blobs(20, rng);
    KMeansConfig cfg;
    cfg.k = 3;
    const auto res = kMeans(pts, cfg);
    // Variance 0.25 per axis -> inertia approx n * 0.5.
    EXPECT_LT(res.inertia, 60.0);
}

TEST(KMeans, KOneYieldsCentroid)
{
    const std::vector<std::vector<double>> pts = {{0}, {2}, {4}};
    KMeansConfig cfg;
    cfg.k = 1;
    const auto res = kMeans(pts, cfg);
    EXPECT_NEAR(res.centroids[0][0], 2.0, 1e-12);
}

TEST(KMeans, DeterministicForSeed)
{
    Rng rng(3);
    const auto pts = blobs(10, rng);
    KMeansConfig cfg;
    cfg.k = 3;
    cfg.seed = 99;
    const auto a = kMeans(pts, cfg);
    const auto b = kMeans(pts, cfg);
    EXPECT_EQ(a.assignments, b.assignments);
    EXPECT_DOUBLE_EQ(a.inertia, b.inertia);
}

TEST(KMeans, KEqualsNPerfectFit)
{
    const std::vector<std::vector<double>> pts = {{0, 0}, {5, 5}, {9, 1}};
    KMeansConfig cfg;
    cfg.k = 3;
    const auto res = kMeans(pts, cfg);
    EXPECT_NEAR(res.inertia, 0.0, 1e-12);
}

TEST(KMeans, DuplicatePointsHandled)
{
    // More clusters than distinct points exercises the empty-cluster
    // reseeding path.
    const std::vector<std::vector<double>> pts = {
        {1, 1}, {1, 1}, {1, 1}, {2, 2}};
    KMeansConfig cfg;
    cfg.k = 3;
    const auto res = kMeans(pts, cfg);
    EXPECT_EQ(res.assignments.size(), 4u);
    EXPECT_LE(res.inertia, 1.0);
}

/** Inertia never increases with k (on the best of the restarts). */
TEST(KMeans, InertiaDecreasesWithK)
{
    Rng rng(5);
    const auto pts = blobs(15, rng);
    double prev = 1e18;
    for (std::size_t k = 1; k <= 4; ++k) {
        KMeansConfig cfg;
        cfg.k = k;
        cfg.num_restarts = 10;
        const auto res = kMeans(pts, cfg);
        EXPECT_LE(res.inertia, prev + 1e-9);
        prev = res.inertia;
    }
}

/**
 * @file
 * Tests for the serving subsystem: graph fingerprint stability,
 * registry hot-swap/rollback, sharded LRU cache correctness,
 * batch determinism at any thread count, protocol hardening against
 * untrusted input, and load-generator determinism.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "dnn/fingerprint.hh"
#include "dnn/generator.hh"
#include "dnn/quantize.hh"
#include "dnn/serialize.hh"
#include "dnn/zoo.hh"
#include "ml/gbt.hh"
#include "obs/obs.hh"
#include "ml/random_forest.hh"
#include "search/genome_ops.hh"
#include "serve/analytical.hh"
#include "serve/cache.hh"
#include "serve/frontend.hh"
#include "serve/loadgen.hh"
#include "serve/protocol.hh"
#include "serve/registry.hh"
#include "serve/service.hh"
#include "testing_support.hh"
#include "util/error.hh"
#include "util/parallel.hh"
#include "util/rng.hh"

using namespace gcm;

namespace
{

/** One trained cost model over the reduced test context. */
const core::SignatureCostModel &
testModel()
{
    static const core::SignatureCostModel model = [] {
        const auto &ctx = gcmtest::smallContext();
        std::vector<std::size_t> devices(ctx.fleet().size());
        for (std::size_t i = 0; i < devices.size(); ++i)
            devices[i] = i;
        core::SignatureCostModel::Config cfg;
        cfg.gbt = gcmtest::fastGbt();
        return core::SignatureCostModel::train(
            ctx.suite(), ctx.latencyMatrix(devices), cfg);
    }();
    return model;
}

/** Registry with the test model published (version 1, active). */
const serve::ModelRegistry &
testRegistry()
{
    // The registry holds a mutex, so it is built in place and leaked
    // (it must outlive every service in the test binary anyway).
    static const serve::ModelRegistry *registry = [] {
        auto *r = new serve::ModelRegistry;
        std::stringstream ss;
        testModel().serialize(ss);
        r->publish(serve::ModelSnapshot::fromStream(ss));
        return r;
    }();
    return *registry;
}

/** Fleet device names -> signature latencies, from the clean runs. */
serve::PredictionService::DeviceTable
testDeviceTable()
{
    const auto &ctx = gcmtest::smallContext();
    const auto &model = testModel();
    serve::PredictionService::DeviceTable table;
    for (std::size_t d = 0; d < ctx.fleet().size(); ++d) {
        std::vector<double> sig;
        for (const auto &name : model.signatureNames())
            sig.push_back(ctx.latencyMs(d, ctx.networkIndex(name)));
        table[ctx.fleet().devices()[d].model_name] = std::move(sig);
    }
    return table;
}

std::string
firstDeviceName()
{
    return testDeviceTable().begin()->first;
}

serve::ServeRequest
networkRequest(const std::string &id, const std::string &network,
               const std::string &device)
{
    serve::ServeRequest r;
    r.id = id;
    r.network = network;
    r.device = device;
    return r;
}

} // namespace

// --- graph fingerprint -------------------------------------------------

TEST(Fingerprint, StableAcrossSerializationRoundTrip)
{
    for (const char *name : {"mobilenet_v2_1.0", "mnasnet_a1"}) {
        const dnn::Graph g = dnn::quantize(dnn::buildZooModel(name));
        const std::uint64_t before = dnn::graphFingerprint(g);
        const dnn::Graph back =
            dnn::graphFromText(dnn::graphToText(g));
        EXPECT_EQ(dnn::graphFingerprint(back), before) << name;
    }
}

TEST(Fingerprint, IgnoresGraphName)
{
    const dnn::Graph g =
        dnn::quantize(dnn::buildZooModel("squeezenet_1.1"));
    const dnn::Graph renamed("totally-different-name", g.nodes(),
                             g.precision());
    EXPECT_EQ(dnn::graphFingerprint(renamed), dnn::graphFingerprint(g));
}

TEST(Fingerprint, DistinguishesStructures)
{
    const auto fp = [](const char *name) {
        return dnn::graphFingerprint(
            dnn::quantize(dnn::buildZooModel(name)));
    };
    EXPECT_NE(fp("mobilenet_v2_1.0"), fp("mnasnet_a1"));
    EXPECT_NE(fp("mobilenet_v2_1.0"), fp("mobilenet_v2_0.75"));
}

TEST(Fingerprint, SensitiveToPrecision)
{
    const dnn::Graph fp32 = dnn::buildZooModel("squeezenet_1.1");
    const dnn::Graph int8 = dnn::quantize(fp32);
    EXPECT_NE(dnn::graphFingerprint(fp32), dnn::graphFingerprint(int8));
}

// --- model registry ----------------------------------------------------

TEST(Registry, PublishActivateRollback)
{
    serve::ModelRegistry registry;
    EXPECT_FALSE(registry.active());
    EXPECT_THROW(registry.rollback(), GcmError);

    std::stringstream s1, s2;
    testModel().serialize(s1);
    testModel().serialize(s2);
    const auto v1 =
        registry.publish(serve::ModelSnapshot::fromStream(s1));
    const auto v2 =
        registry.publish(serve::ModelSnapshot::fromStream(s2));
    EXPECT_EQ(v1, 1u);
    EXPECT_EQ(v2, 2u);
    EXPECT_EQ(registry.activeVersion(), v2);
    EXPECT_EQ(registry.versions(), (std::vector<std::uint64_t>{1, 2}));

    registry.rollback(); // back to v1
    EXPECT_EQ(registry.activeVersion(), v1);
    registry.activate(v2);
    EXPECT_EQ(registry.activeVersion(), v2);
    EXPECT_THROW(registry.activate(99), GcmError);
    EXPECT_NE(registry.snapshot(v1), nullptr);
}

TEST(Registry, SniffsAllThreeModelKinds)
{
    // Cost model.
    std::stringstream cm;
    testModel().serialize(cm);
    EXPECT_EQ(serve::ModelSnapshot::fromStream(cm).kind(),
              serve::SnapshotKind::CostModel);

    // Bare GBT and RF regressors stage through the same registry.
    Rng rng(11);
    ml::Dataset ds(2);
    for (int i = 0; i < 200; ++i) {
        const float a = static_cast<float>(rng.uniform(0, 4));
        const float b = static_cast<float>(rng.uniform(0, 4));
        ds.addRow({a, b}, a * 2.0 + b);
    }
    ml::GradientBoostedTrees gbt(gcmtest::fastGbt());
    gbt.train(ds);
    std::stringstream gs;
    gbt.serialize(gs);
    const auto gbt_snap = serve::ModelSnapshot::fromStream(gs);
    EXPECT_EQ(gbt_snap.kind(), serve::SnapshotKind::Gbt);
    const float row[] = {1.0F, 2.0F};
    EXPECT_TRUE(std::isfinite(gbt_snap.predictRow(row)));

    ml::RandomForest rf;
    rf.train(ds);
    std::stringstream rs;
    rf.serialize(rs);
    const auto rf_snap = serve::ModelSnapshot::fromStream(rs);
    EXPECT_EQ(rf_snap.kind(), serve::SnapshotKind::RandomForest);
    EXPECT_TRUE(std::isfinite(rf_snap.predictRow(row)));

    std::stringstream garbage("not a model at all");
    EXPECT_THROW((void)serve::ModelSnapshot::fromStream(garbage),
                 GcmError);
}

TEST(Registry, HotSwapUnderConcurrentServing)
{
    // A writer thread flips between two versions while a reader
    // serves batches; every batch must see a complete snapshot
    // (version 1 or 2, never a torn state). Run under TSan.
    serve::ModelRegistry registry;
    std::stringstream s1, s2;
    testModel().serialize(s1);
    testModel().serialize(s2);
    registry.publish(serve::ModelSnapshot::fromStream(s1));
    registry.publish(serve::ModelSnapshot::fromStream(s2));

    serve::PredictionService service(registry, testDeviceTable(), {});
    const std::vector<serve::ServeRequest> batch = {
        networkRequest("a", "mobilenet_v2_1.0", firstDeviceName())};

    std::atomic<bool> stop{false};
    std::thread writer([&] {
        for (int i = 0; i < 200; ++i) {
            registry.activate(1 + (i % 2));
            std::this_thread::yield();
        }
        stop.store(true);
    });
    std::size_t served = 0;
    while (!stop.load()) {
        const auto responses = service.processBatch(batch);
        ASSERT_EQ(responses.size(), 1u);
        ASSERT_TRUE(responses[0].ok) << responses[0].error_message;
        ASSERT_TRUE(responses[0].model_version == 1
                    || responses[0].model_version == 2);
        ++served;
    }
    writer.join();
    EXPECT_GT(served, 0u);
}

// --- sharded LRU cache -------------------------------------------------

TEST(Cache, LruEvictionAtCapacity)
{
    serve::ShardedLruCache cache(2, 1); // one shard: strict LRU
    const serve::CacheKey k1{1, 1, 1}, k2{2, 2, 1}, k3{3, 3, 1};
    cache.put(k1, 10.0);
    cache.put(k2, 20.0);
    ASSERT_TRUE(cache.get(k1).has_value()); // k1 becomes MRU
    cache.put(k3, 30.0);                    // evicts k2 (LRU)

    EXPECT_FALSE(cache.get(k2).has_value());
    EXPECT_EQ(cache.get(k1), 10.0);
    EXPECT_EQ(cache.get(k3), 30.0);
    const auto st = cache.stats();
    EXPECT_EQ(st.evictions, 1u);
    EXPECT_EQ(st.insertions, 3u);
    EXPECT_EQ(cache.size(), 2u);
}

TEST(Cache, ZeroCapacityDisablesCaching)
{
    serve::ShardedLruCache cache(0);
    cache.put({1, 1, 1}, 10.0);
    EXPECT_FALSE(cache.get({1, 1, 1}).has_value());
    EXPECT_EQ(cache.size(), 0u);
}

TEST(Cache, TotalResidencyNeverExceedsCapacity)
{
    serve::ShardedLruCache cache(10, 8);
    for (std::uint64_t i = 0; i < 1000; ++i)
        cache.put({i, i * 7919, 1}, static_cast<double>(i));
    EXPECT_LE(cache.size(), 10u);
}

TEST(Cache, AllUniqueStreamAccountingUnderConcurrency)
{
    // The architecture search's adversarial shape: every key unique,
    // many threads, a capacity far below the stream. Whatever the
    // interleaving, the counters must stay exactly consistent.
    serve::ShardedLruCache cache(64, 8);
    constexpr std::size_t kThreads = 8;
    constexpr std::uint64_t kPerThread = 500;
    std::vector<std::thread> workers;
    workers.reserve(kThreads);
    for (std::size_t t = 0; t < kThreads; ++t) {
        workers.emplace_back([&cache, t] {
            for (std::uint64_t i = 0; i < kPerThread; ++i) {
                const serve::CacheKey key{t * 1000000 + i,
                                          i * 7919 + t, 1};
                (void)cache.get(key); // always a first-touch probe
                cache.put(key, static_cast<double>(i));
                (void)cache.get(key); // hit unless already evicted
            }
        });
    }
    for (auto &w : workers)
        w.join();

    const auto st = cache.stats();
    // hits + misses == every probe issued; nothing lost or double
    // counted across shards.
    EXPECT_EQ(st.hits + st.misses, 2 * kThreads * kPerThread);
    // All keys are unique, so every put inserted a fresh entry.
    EXPECT_EQ(st.insertions, kThreads * kPerThread);
    // Every insertion is either still resident or was evicted.
    EXPECT_EQ(st.evictions, st.insertions - cache.size());
    EXPECT_LE(cache.size(), cache.capacity());
    EXPECT_EQ(st.coalesced, 0u);
}

TEST(Cache, SignatureFingerprintSeparatesVectors)
{
    const std::vector<double> a{1.0, 2.0, 3.0};
    const std::vector<double> b{1.0, 2.0, 3.0000000001};
    EXPECT_EQ(serve::signatureFingerprint(a),
              serve::signatureFingerprint({1.0, 2.0, 3.0}));
    EXPECT_NE(serve::signatureFingerprint(a),
              serve::signatureFingerprint(b));
    EXPECT_NE(serve::signatureFingerprint({1.0}),
              serve::signatureFingerprint({1.0, 1.0}));
}

// --- prediction service ------------------------------------------------

TEST(Service, AllUniqueCandidateStreamUnderConcurrentHotSwap)
{
    // The search's inner loop against a live registry: batches of
    // all-unique candidate graphs (in-process graph_ptr requests, the
    // src/search stream) served while a writer flips the active model
    // version. Cache accounting must stay exact under the churn. Run
    // under TSan.
    serve::ModelRegistry registry;
    std::stringstream s1, s2;
    testModel().serialize(s1);
    testModel().serialize(s2);
    registry.publish(serve::ModelSnapshot::fromStream(s1));
    registry.publish(serve::ModelSnapshot::fromStream(s2));

    serve::ServiceConfig cfg;
    cfg.cache_capacity = 48; // far below the stream: forces eviction
    cfg.cache_shards = 4;
    serve::PredictionService service(registry, testDeviceTable(), cfg);

    // A mutation chain of unique candidates, deduped by fingerprint
    // so the stream really is all-unique.
    const dnn::SearchSpace space;
    Rng rng(2024);
    dnn::ArchGenome genome = dnn::sampleGenome(space, rng);
    std::vector<dnn::Graph> candidates;
    std::set<std::uint64_t> fps;
    while (candidates.size() < 48) {
        genome = search::mutateGenome(genome, space, rng);
        dnn::Graph g = dnn::quantize(
            dnn::buildGenome(genome, space, "stress"));
        if (fps.insert(dnn::graphFingerprint(g)).second)
            candidates.push_back(std::move(g));
    }
    const auto table = testDeviceTable();
    auto dev_it = table.begin();
    const std::string dev_a = (dev_it++)->first;
    const std::string dev_b = dev_it->first;

    std::atomic<bool> stop{false};
    std::thread writer([&] {
        for (int i = 0; i < 200; ++i) {
            registry.activate(1 + (i % 2));
            std::this_thread::yield();
        }
        stop.store(true);
    });
    std::uint64_t probes = 0;
    std::size_t next = 0;
    while (!stop.load()) {
        std::vector<serve::ServeRequest> batch;
        for (std::size_t j = 0; j < 12; ++j) {
            serve::ServeRequest r;
            r.id = std::to_string(j);
            r.graph_ptr = &candidates[(next + j) % candidates.size()];
            r.device = j % 2 == 0 ? dev_a : dev_b;
            batch.push_back(std::move(r));
        }
        next = (next + 12) % candidates.size();
        const auto responses = service.processBatch(batch);
        for (const auto &resp : responses) {
            ASSERT_TRUE(resp.ok) << resp.error_message;
            ASSERT_TRUE(resp.model_version == 1
                        || resp.model_version == 2);
        }
        probes += batch.size();
    }
    writer.join();

    const auto st = service.cache().stats();
    // Every request resolved and probed exactly once; batches never
    // repeat a (graph, device) pair, so nothing coalesces.
    EXPECT_EQ(st.hits + st.misses, probes);
    EXPECT_EQ(st.coalesced, 0u);
    // Every miss computed and inserted a fresh entry (the service is
    // the only cache writer, and a missed key stays absent until its
    // own batch's put).
    EXPECT_EQ(st.insertions, st.misses);
    EXPECT_EQ(st.evictions, st.insertions - service.cache().size());
    EXPECT_LE(service.cache().size(), cfg.cache_capacity);
    EXPECT_GT(st.evictions, 0u);
}

TEST(Service, CacheHitIsByteIdenticalToColdPath)
{
    const auto &registry = testRegistry();
    serve::ServiceConfig cold_cfg;
    cold_cfg.cache_capacity = 0; // cold path every time
    serve::PredictionService cold(registry, testDeviceTable(),
                                  cold_cfg);
    serve::PredictionService cached(registry, testDeviceTable(), {});

    const std::vector<serve::ServeRequest> batch = {
        networkRequest("x", "mobilenet_v2_1.0", firstDeviceName())};
    const std::string cold_line =
        serve::renderResponse(cold.processBatch(batch)[0]);

    const std::string miss_line =
        serve::renderResponse(cached.processBatch(batch)[0]);
    const std::string hit_line =
        serve::renderResponse(cached.processBatch(batch)[0]);
    EXPECT_EQ(cached.cache().stats().hits, 1u);
    EXPECT_EQ(hit_line, miss_line);
    EXPECT_EQ(hit_line, cold_line);
}

TEST(Service, CoalescesDuplicateKeysWithinBatch)
{
    serve::PredictionService service(testRegistry(), testDeviceTable(),
                                     {});
    const auto req =
        networkRequest("d", "squeezenet_1.1", firstDeviceName());
    const auto responses = service.processBatch({req, req, req});
    ASSERT_EQ(responses.size(), 3u);
    for (const auto &r : responses) {
        EXPECT_TRUE(r.ok) << r.error_message;
        EXPECT_EQ(r.latency_ms, responses[0].latency_ms);
    }
    // One unique key -> one insertion, even though all three missed.
    EXPECT_EQ(service.cache().stats().insertions, 1u);
    EXPECT_EQ(service.cache().stats().misses, 3u);
}

TEST(Service, BatchIsThreadCountInvariant)
{
    const auto run = [](std::size_t threads) {
        setThreads(threads);
        serve::PredictionService service(testRegistry(),
                                         testDeviceTable(), {});
        std::vector<serve::ServeRequest> batch;
        const auto &table = testDeviceTable();
        int i = 0;
        for (const auto &[device, sig] : table) {
            batch.push_back(networkRequest(
                "r" + std::to_string(i),
                i % 2 ? "mobilenet_v2_1.0" : "mnasnet_a1", device));
            ++i;
        }
        std::string out;
        for (const auto &r : service.processBatch(batch))
            out += serve::renderResponse(r) + "\n";
        return out;
    };
    const std::string one = run(1);
    const std::string eight = run(8);
    setThreads(0); // restore default
    EXPECT_EQ(one, eight);
}

TEST(Service, RawSignatureRequestsServe)
{
    serve::PredictionService service(testRegistry(), testDeviceTable(),
                                     {});
    serve::ServeRequest req;
    req.id = "raw";
    req.network = "squeezenet_1.1";
    req.signature = testDeviceTable().begin()->second;
    req.has_signature = true;
    const auto responses = service.processBatch({req});
    ASSERT_TRUE(responses[0].ok) << responses[0].error_message;

    // Same signature via the device name -> same cache key -> hit.
    const auto again = service.processBatch(
        {networkRequest("byname", "squeezenet_1.1", firstDeviceName())});
    EXPECT_TRUE(again[0].ok);
    EXPECT_EQ(again[0].latency_ms, responses[0].latency_ms);
    EXPECT_EQ(service.cache().stats().hits, 1u);
}

TEST(Service, EmptyRegistryYieldsNoModel)
{
    serve::ModelRegistry empty;
    serve::PredictionService service(empty, testDeviceTable(), {});
    const auto responses = service.processBatch(
        {networkRequest("x", "mobilenet_v2_1.0", firstDeviceName())});
    ASSERT_EQ(responses.size(), 1u);
    EXPECT_FALSE(responses[0].ok);
    EXPECT_EQ(responses[0].error_code, serve::ServeErrorCode::NoModel);
}

// --- protocol hardening ------------------------------------------------

namespace
{

/** Run one line through a fresh serve loop; return the response. */
std::string
serveOneLine(const std::string &line)
{
    serve::PredictionService service(testRegistry(), testDeviceTable(),
                                     {});
    std::istringstream in(line + "\n");
    std::ostringstream out;
    serve::runServeLoop(service, in, out);
    return out.str();
}

} // namespace

TEST(Protocol, MalformedJsonBecomesStructuredError)
{
    for (const char *line :
         {"not json at all", "{\"id\": \"x\"", "[1,2,3]", "42", "",
          "{\"id\": \"x\", \"id\": \"y\"}"}) {
        const std::string response = serveOneLine(line);
        EXPECT_NE(response.find("\"ok\": false"), std::string::npos)
            << line;
        EXPECT_NE(response.find("bad_request"), std::string::npos)
            << line;
    }
}

TEST(Protocol, RejectsUnknownFieldsAndWrongTypes)
{
    const char *cases[] = {
        "{\"id\": \"x\", \"network\": \"a\", \"device\": \"d\", "
        "\"exploit\": 1}",
        "{\"id\": \"x\", \"network\": 7, \"device\": \"d\"}",
        "{\"id\": \"x\", \"network\": \"a\", \"signature\": \"oops\"}",
        "{\"id\": \"x\", \"network\": \"a\", \"signature\": [1, "
        "\"two\"]}",
        "{\"id\": 9}",
    };
    for (const char *line : cases) {
        const std::string response = serveOneLine(line);
        EXPECT_NE(response.find("bad_request"), std::string::npos)
            << line;
    }
}

TEST(Protocol, RejectsNonFiniteNumbers)
{
    // 1e999 overflows to inf; NaN / Infinity are not JSON at all.
    for (const char *line :
         {"{\"id\": \"x\", \"network\": \"a\", \"signature\": "
          "[1e999]}",
          "{\"id\": \"x\", \"network\": \"a\", \"signature\": [NaN]}",
          "{\"id\": \"x\", \"network\": \"a\", \"signature\": "
          "[Infinity]}"}) {
        const std::string response = serveOneLine(line);
        EXPECT_NE(response.find("bad_request"), std::string::npos)
            << line;
    }
    // Zero and negative latencies parse but fail validation.
    const std::string zero = serveOneLine(
        "{\"id\": \"x\", \"network\": \"mobilenet_v2_1.0\", "
        "\"signature\": [0, 0, 0, 0, 0, 0, 0, 0, 0, 0]}");
    EXPECT_NE(zero.find("bad_request"), std::string::npos);
}

TEST(Protocol, RejectsOversizedLines)
{
    std::string line = "{\"id\": \"big\", \"network\": \"";
    line.append(serve::kMaxRequestLineBytes, 'a');
    line += "\", \"device\": \"d\"}";
    const std::string response = serveOneLine(line);
    EXPECT_NE(response.find("bad_request"), std::string::npos);
    EXPECT_NE(response.find("byte limit"), std::string::npos);
}

TEST(Protocol, RequiresExactlyOneNetworkAndOneDevice)
{
    const char *cases[] = {
        "{\"id\": \"x\", \"device\": \"d\"}",
        "{\"id\": \"x\", \"network\": \"a\", \"graph\": \"g\", "
        "\"device\": \"d\"}",
        // Valid network, but neither / both of device and signature
        // (an unknown network would win otherwise: the graph side of
        // the request resolves first).
        "{\"id\": \"x\", \"network\": \"mobilenet_v2_1.0\"}",
        "{\"id\": \"x\", \"network\": \"mobilenet_v2_1.0\", "
        "\"device\": \"d\", \"signature\": [1]}",
    };
    for (const char *line : cases) {
        const std::string response = serveOneLine(line);
        EXPECT_NE(response.find("bad_request"), std::string::npos)
            << line;
    }
}

TEST(Protocol, UnknownNamesGetSpecificCodes)
{
    EXPECT_NE(serveOneLine("{\"id\": \"x\", \"network\": \"nope\", "
                           "\"device\": \""
                           + firstDeviceName() + "\"}")
                  .find("unknown_network"),
              std::string::npos);
    EXPECT_NE(serveOneLine("{\"id\": \"x\", \"network\": "
                           "\"mobilenet_v2_1.0\", \"device\": "
                           "\"not-a-phone\"}")
                  .find("unknown_device"),
              std::string::npos);
    EXPECT_NE(serveOneLine("{\"id\": \"x\", \"graph\": \"garbage\", "
                           "\"device\": \""
                           + firstDeviceName() + "\"}")
                  .find("bad_graph"),
              std::string::npos);
}

TEST(Protocol, InlineGraphServesAndMatchesZooFingerprint)
{
    serve::PredictionService service(testRegistry(), testDeviceTable(),
                                     {});
    const dnn::Graph g =
        dnn::quantize(dnn::buildZooModel("mobilenet_v2_1.0"));
    serve::ServeRequest inline_req;
    inline_req.id = "inline";
    inline_req.graph_text = dnn::graphToText(g);
    inline_req.device = firstDeviceName();

    const auto cold = service.processBatch({inline_req});
    ASSERT_TRUE(cold[0].ok) << cold[0].error_message;

    // The same network by zoo name must hit the inline graph's cache
    // entry: the fingerprint is stable across serialization.
    const auto by_name = service.processBatch(
        {networkRequest("name", "mobilenet_v2_1.0", firstDeviceName())});
    ASSERT_TRUE(by_name[0].ok);
    EXPECT_EQ(service.cache().stats().hits, 1u);
    EXPECT_EQ(by_name[0].latency_ms, cold[0].latency_ms);
}

TEST(Protocol, ResponsesKeepRequestOrderAcrossParseFailures)
{
    serve::PredictionService service(testRegistry(), testDeviceTable(),
                                     {});
    std::istringstream in(
        "{\"id\": \"a\", \"network\": \"mobilenet_v2_1.0\", "
        "\"device\": \""
        + firstDeviceName()
        + "\"}\n"
          "garbage\n"
          "{\"id\": \"c\", \"network\": \"mnasnet_a1\", \"device\": \""
        + firstDeviceName() + "\"}\n");
    std::ostringstream out;
    const std::size_t consumed = serve::runServeLoop(service, in, out);
    EXPECT_EQ(consumed, 3u);

    std::vector<std::string> lines;
    std::istringstream split(out.str());
    for (std::string line; std::getline(split, line);)
        lines.push_back(line);
    ASSERT_EQ(lines.size(), 3u);
    EXPECT_NE(lines[0].find("\"id\": \"a\""), std::string::npos);
    EXPECT_NE(lines[0].find("\"ok\": true"), std::string::npos);
    EXPECT_NE(lines[1].find("\"ok\": false"), std::string::npos);
    EXPECT_NE(lines[2].find("\"id\": \"c\""), std::string::npos);
    EXPECT_NE(lines[2].find("\"ok\": true"), std::string::npos);
}

TEST(Protocol, BoundedQueueRejectsWithOverloaded)
{
    serve::PredictionService service(testRegistry(), testDeviceTable(),
                                     {});
    serve::LoopConfig cfg;
    cfg.batch_size = 2;
    cfg.queue_capacity = 2;
    serve::RequestLoop loop(service, cfg);
    EXPECT_TRUE(loop.offer("{\"id\": \"1\"}"));
    EXPECT_TRUE(loop.offer("{\"id\": \"2\"}"));
    EXPECT_FALSE(loop.offer("{\"id\": \"3\"}"));

    const std::string rejection =
        serve::RequestLoop::renderOverloaded("{\"id\": \"3\"}");
    EXPECT_NE(rejection.find("\"id\": \"3\""), std::string::npos);
    EXPECT_NE(rejection.find("overloaded"), std::string::npos);

    std::vector<std::string> responses;
    loop.drainAll(responses);
    EXPECT_EQ(responses.size(), 2u);
    EXPECT_EQ(loop.queued(), 0u);
    EXPECT_THROW(serve::validateLoopConfig({4, 2}), GcmError);
}

// --- load generator ----------------------------------------------------

TEST(Loadgen, DuplicateHeavyIsDeterministicAndCacheBound)
{
    serve::LoadGenConfig cfg;
    cfg.requests = 400;
    cfg.seed = 7;
    const auto run = [&cfg](std::size_t threads) {
        setThreads(threads);
        serve::PredictionService service(testRegistry(),
                                         testDeviceTable(), {});
        std::ostringstream out;
        const auto report = serve::runLoadGen(service, cfg, &out);
        return std::make_pair(report, out.str());
    };
    const auto [r1, s1] = run(1);
    const auto [r8, s8] = run(8);
    setThreads(0);

    EXPECT_EQ(s1, s8); // byte-identical at any thread count
    EXPECT_FALSE(s1.empty());
    EXPECT_EQ(r1.ok, cfg.requests);
    EXPECT_EQ(r1.errors, 0u);
    // The duplicate-heavy steady state is nearly all cache hits.
    EXPECT_GT(r8.cache.hitRate(), 0.9);
}

TEST(Loadgen, UniqueHeavyNeverHitsTheCache)
{
    serve::LoadGenConfig cfg;
    cfg.requests = 64;
    cfg.mix = serve::LoadMix::UniqueHeavy;
    serve::PredictionService service(testRegistry(), testDeviceTable(),
                                     {});
    const auto report = serve::runLoadGen(service, cfg, nullptr);
    EXPECT_EQ(report.ok, cfg.requests);
    EXPECT_EQ(report.cache.hits, 0u);
    EXPECT_EQ(report.cache.misses, cfg.requests);
}

TEST(Loadgen, BurstsBeyondQueueCapacityShedExplicitly)
{
    serve::LoadGenConfig cfg;
    cfg.requests = 64;
    cfg.burst = 64;
    cfg.loop.batch_size = 8;
    cfg.loop.queue_capacity = 16; // < burst -> deterministic shedding
    serve::PredictionService service(testRegistry(), testDeviceTable(),
                                     {});
    std::ostringstream out;
    const auto report = serve::runLoadGen(service, cfg, &out);
    EXPECT_EQ(report.rejected, cfg.requests - cfg.loop.queue_capacity);
    EXPECT_EQ(report.ok + report.errors, report.issued);
    // Every rejection is a structured overloaded response in-stream.
    std::size_t overloaded = 0;
    std::istringstream split(out.str());
    for (std::string line; std::getline(split, line);)
        overloaded += line.find("overloaded") != std::string::npos;
    EXPECT_EQ(overloaded, report.rejected);
}

TEST(Loadgen, GeneratedStreamsReplayThroughTheLoop)
{
    serve::LoadGenConfig cfg;
    cfg.requests = 50;
    cfg.seed = 99;
    serve::PredictionService service(testRegistry(), testDeviceTable(),
                                     {});
    const auto lines = serve::generateRequests(service, cfg);
    ASSERT_EQ(lines.size(), cfg.requests);
    for (const auto &line : lines)
        EXPECT_NO_THROW((void)serve::parseRequestLine(line)) << line;
    EXPECT_THROW((void)serve::parseLoadMix("bogus"), GcmError);
}

// --- multi-worker front end -------------------------------------------

namespace
{

/** Registry with two published versions (v2 active, v1 previous). */
const serve::ModelRegistry &
twoVersionRegistry()
{
    static const serve::ModelRegistry *registry = [] {
        auto *r = new serve::ModelRegistry;
        std::stringstream s1, s2;
        testModel().serialize(s1);
        testModel().serialize(s2);
        r->publish(serve::ModelSnapshot::fromStream(s1));
        r->publish(serve::ModelSnapshot::fromStream(s2));
        return r;
    }();
    return *registry;
}

/** Poisson arrival stream at `factor` x the front end's capacity. */
std::vector<serve::Arrival>
overloadArrivals(const serve::ServerFrontEnd &frontend, std::size_t n,
                 std::uint64_t seed, double factor,
                 double bulk_fraction = 0.0)
{
    serve::LoadGenConfig cfg;
    cfg.requests = n;
    cfg.seed = seed;
    cfg.offered_qps = factor * frontend.capacityQps();
    cfg.bulk_fraction = bulk_fraction;
    return serve::generateArrivals(frontend, cfg);
}

/**
 * The report fields covered by the determinism contract — everything
 * except the cache counters, which are scheduling-dependent
 * diagnostics (frontend.hh).
 */
std::string
deterministicDigest(const serve::FrontEndReport &r)
{
    std::ostringstream oss;
    oss << r.workers << '|' << r.offered << '|' << r.ok << '|'
        << r.errors << '|' << r.tier_full << '|' << r.tier_stale << '|'
        << r.tier_analytical << '|' << r.tier_shed << '|'
        << r.peak_queue_interactive << '|' << r.peak_queue_bulk << '|'
        << r.sim_duration_ms << '|' << r.goodput_qps << '|'
        << r.shed_rate << '|' << r.utilization << '|'
        << r.sojourn_p50_ms << '|' << r.sojourn_p95_ms << '|'
        << r.sojourn_p99_ms;
    return oss.str();
}

/** Producing tier of a rendered response ("full" when untagged). */
std::string
tierOf(const std::string &line)
{
    for (const char *t : {"stale", "analytical", "shed"}) {
        const std::string tag =
            std::string("\"degraded\": {\"tier\": \"") + t + "\"}";
        if (line.find(tag) != std::string::npos)
            return t;
    }
    return "full";
}

} // namespace

TEST(FrontEnd, RunIsReproducible)
{
    serve::FrontEndConfig cfg;
    cfg.workers = 2;
    const auto run = [&] {
        serve::ServerFrontEnd fe(twoVersionRegistry(),
                                 testDeviceTable(), cfg);
        std::vector<std::string> responses;
        const auto arrivals = overloadArrivals(fe, 600, 17, 2.0);
        const auto report = fe.run(arrivals, &responses);
        return std::make_pair(deterministicDigest(report), responses);
    };
    const auto [s1, r1] = run();
    const auto [s2, r2] = run();
    EXPECT_EQ(s1, s2);
    EXPECT_EQ(r1, r2);
    EXPECT_FALSE(r1.empty());
}

TEST(FrontEnd, PerTierPayloadsAreWorkerCountInvariant)
{
    // The tier MIX legitimately depends on the worker count (the plan
    // phase consumes it), but whenever two runs serve the same request
    // at the same tier the response bytes must match exactly.
    serve::LoadGenConfig gen;
    gen.requests = 400;
    gen.seed = 23;

    // The offered rate is fixed up front, NOT capacity-derived per
    // run: the arrival stream must be identical across worker counts.
    serve::FrontEndConfig one_worker;
    one_worker.workers = 1;
    gen.offered_qps =
        1.8
        * serve::ServerFrontEnd(twoVersionRegistry(), testDeviceTable(),
                                one_worker)
              .capacityQps();

    std::vector<std::vector<std::string>> runs;
    for (const std::size_t workers : {1UL, 2UL, 8UL}) {
        serve::FrontEndConfig cfg;
        cfg.workers = workers;
        serve::ServerFrontEnd fe(twoVersionRegistry(),
                                 testDeviceTable(), cfg);
        const auto arrivals = serve::generateArrivals(fe, gen);
        std::vector<std::string> responses;
        (void)fe.run(arrivals, &responses);
        ASSERT_EQ(responses.size(), gen.requests);
        runs.push_back(std::move(responses));
    }
    std::size_t compared = 0;
    for (std::size_t i = 0; i < gen.requests; ++i) {
        for (std::size_t a = 0; a + 1 < runs.size(); ++a) {
            for (std::size_t b = a + 1; b < runs.size(); ++b) {
                if (tierOf(runs[a][i]) != tierOf(runs[b][i]))
                    continue;
                EXPECT_EQ(runs[a][i], runs[b][i]) << "request " << i;
                ++compared;
            }
        }
    }
    EXPECT_GT(compared, 0u); // the invariant was actually exercised
}

TEST(FrontEnd, OverloadLadderAccountsExactly)
{
    serve::FrontEndConfig cfg;
    cfg.workers = 2;
    serve::ServerFrontEnd fe(twoVersionRegistry(), testDeviceTable(),
                             cfg);
    std::vector<std::string> responses;
    const auto arrivals = overloadArrivals(fe, 3000, 5, 2.0);
    const auto report = fe.run(arrivals, &responses);

    // The hard acceptance identity: every offered request is
    // accounted to exactly one tier.
    EXPECT_EQ(report.offered, arrivals.size());
    EXPECT_EQ(report.tier_full + report.tier_stale
                  + report.tier_analytical + report.tier_shed,
              report.offered);
    EXPECT_EQ(report.served(), report.offered - report.tier_shed);

    // 2x overload walks the whole ladder and ends up shedding...
    EXPECT_GT(report.tier_stale, 0u);
    EXPECT_GT(report.tier_analytical, 0u);
    EXPECT_GT(report.tier_shed, 0u);
    EXPECT_GT(report.shed_rate, 0.0);
    // ...while degradation keeps goodput at >= 80% of capacity.
    EXPECT_GE(report.goodput_qps, 0.8 * fe.capacityQps());

    // The rendered stream agrees with the report, line by line.
    std::map<std::string, std::size_t> tiers;
    for (const auto &line : responses)
        ++tiers[tierOf(line)];
    EXPECT_EQ(tiers["full"], report.tier_full);
    EXPECT_EQ(tiers["stale"], report.tier_stale);
    EXPECT_EQ(tiers["analytical"], report.tier_analytical);
    EXPECT_EQ(tiers["shed"], report.tier_shed);
}

TEST(FrontEnd, ShedResponsesCarryBackpressureContext)
{
    serve::FrontEndConfig cfg;
    cfg.workers = 1;
    cfg.batch_size = 4;
    cfg.queue_capacity = 8;
    cfg.soft_watermark = 2;
    cfg.hard_watermark = 4;
    serve::ServerFrontEnd fe(twoVersionRegistry(), testDeviceTable(),
                             cfg);
    // A same-instant burst twice the queue capacity: the tail sheds.
    std::vector<serve::Arrival> arrivals;
    for (int i = 0; i < 16; ++i)
        arrivals.push_back({0.0, "{\"id\": \"b" + std::to_string(i)
                                     + "\", \"network\": "
                                       "\"mobilenet_v2_1.0\", "
                                       "\"device\": \""
                                     + firstDeviceName() + "\"}"});
    std::vector<std::string> responses;
    const auto report = fe.run(arrivals, &responses);
    ASSERT_GT(report.tier_shed, 0u);

    std::size_t sheds = 0;
    for (const auto &line : responses) {
        if (tierOf(line) != "shed")
            continue;
        ++sheds;
        EXPECT_NE(line.find("\"code\": \"overloaded\""),
                  std::string::npos)
            << line;
        EXPECT_NE(line.find("\"queue_depth\": "), std::string::npos)
            << line;
        EXPECT_NE(line.find("\"retry_after_ms\": "), std::string::npos)
            << line;
    }
    EXPECT_EQ(sheds, report.tier_shed);
}

TEST(FrontEnd, DegradedTagIsVersionGated)
{
    // Full-tier responses must NOT carry the `degraded` field at all
    // (old clients parse them unchanged); every degraded tier must.
    serve::FrontEndConfig cfg;
    cfg.workers = 2;
    serve::ServerFrontEnd fe(twoVersionRegistry(), testDeviceTable(),
                             cfg);
    std::vector<std::string> responses;
    const auto arrivals = overloadArrivals(fe, 1500, 31, 2.0);
    const auto report = fe.run(arrivals, &responses);
    ASSERT_GT(report.tier_full, 0u);
    ASSERT_GT(report.tier_stale + report.tier_analytical, 0u);
    for (const auto &line : responses) {
        const bool tagged =
            line.find("\"degraded\"") != std::string::npos;
        EXPECT_EQ(tagged, tierOf(line) != "full") << line;
    }
}

TEST(FrontEnd, InteractiveDrainsBeforeBulk)
{
    serve::FrontEndConfig cfg;
    cfg.workers = 1;
    cfg.queue_capacity = 256;
    serve::ServerFrontEnd fe(twoVersionRegistry(), testDeviceTable(),
                             cfg);
    // 100 bulk requests land first, then 8 interactive ones in the
    // same instant. Per-class queues mean the interactive class sits
    // below the soft watermark (Full) while bulk is past it (Stale),
    // and interactive-first dispatch keeps its peak depth small.
    std::vector<serve::Arrival> arrivals;
    for (int i = 0; i < 100; ++i)
        arrivals.push_back(
            {0.0, "{\"id\": \"bulk" + std::to_string(i)
                      + "\", \"network\": \"mobilenet_v2_1.0\", "
                        "\"device\": \""
                      + firstDeviceName()
                      + "\", \"priority\": \"bulk\"}"});
    for (int i = 0; i < 8; ++i)
        arrivals.push_back(
            {0.0, "{\"id\": \"inter" + std::to_string(i)
                      + "\", \"network\": \"mobilenet_v2_1.0\", "
                        "\"device\": \""
                      + firstDeviceName()
                      + "\", \"priority\": \"interactive\"}"});
    std::vector<std::string> responses;
    const auto report = fe.run(arrivals, &responses);
    EXPECT_EQ(report.served(), arrivals.size());
    EXPECT_GT(report.peak_queue_bulk, report.peak_queue_interactive);
    for (std::size_t i = 0; i < responses.size(); ++i) {
        const bool interactive = arrivals[i].line.find("\"inter")
                                 != std::string::npos;
        if (interactive) {
            EXPECT_EQ(tierOf(responses[i]), "full") << responses[i];
        }
    }
    EXPECT_GT(report.tier_stale, 0u); // deep bulk queue degraded
}

TEST(FrontEnd, ShedOnlyModeSkipsTheMiddleRungs)
{
    serve::FrontEndConfig cfg;
    cfg.workers = 2;
    cfg.degrade = serve::DegradeMode::ShedOnly;
    serve::ServerFrontEnd fe(twoVersionRegistry(), testDeviceTable(),
                             cfg);
    const auto arrivals = overloadArrivals(fe, 2000, 5, 2.0);
    const auto report = fe.run(arrivals, nullptr);
    EXPECT_EQ(report.tier_stale, 0u);
    EXPECT_EQ(report.tier_analytical, 0u);
    EXPECT_GT(report.tier_shed, 0u);
    EXPECT_EQ(report.tier_full + report.tier_shed, report.offered);
}

TEST(FrontEnd, ConfigValidation)
{
    serve::FrontEndConfig bad;
    bad.soft_watermark = 100;
    bad.hard_watermark = 50; // soft > hard
    EXPECT_THROW(bad.validate(), GcmError);
    bad = {};
    bad.queue_capacity = 4;
    bad.batch_size = 8; // capacity < one batch
    EXPECT_THROW(bad.validate(), GcmError);
    EXPECT_THROW((void)serve::parseDegradeMode("bogus"), GcmError);
    EXPECT_EQ(serve::parseDegradeMode("shed"),
              serve::DegradeMode::ShedOnly);
    EXPECT_STREQ(serve::degradeModeName(serve::DegradeMode::Ladder),
                 "ladder");
}

TEST(FrontEnd, RetireDuringInFlightBatchKeepsPinnedSnapshot)
{
    // Satellite 2 regression: a batch pins the active snapshot, then
    // the operator rolls back AND retires that version mid-flight.
    // The pinned shared_ptr must keep the snapshot alive.
    serve::ModelRegistry registry;
    std::stringstream s1, s2;
    testModel().serialize(s1);
    testModel().serialize(s2);
    registry.publish(serve::ModelSnapshot::fromStream(s1));
    const auto v2 =
        registry.publish(serve::ModelSnapshot::fromStream(s2));

    serve::PredictionService service(registry, testDeviceTable(), {});
    const auto pinned = registry.active(); // v2, as a batch would pin
    ASSERT_EQ(pinned.version, v2);

    registry.rollback();  // active back to v1
    registry.retire(v2);  // v2 gone from the registry...
    EXPECT_EQ(registry.snapshot(v2), nullptr);
    EXPECT_FALSE(registry.previousModel()); // ...and not pinnable

    // ...but the in-flight batch still serves on its pinned version.
    const std::vector<serve::ServeRequest> batch = {
        networkRequest("pin", "mobilenet_v2_1.0", firstDeviceName())};
    const auto responses = service.processBatch(batch, pinned);
    ASSERT_EQ(responses.size(), 1u);
    EXPECT_TRUE(responses[0].ok) << responses[0].error_message;
    EXPECT_EQ(responses[0].model_version, v2);

    EXPECT_THROW(registry.retire(registry.activeVersion()), GcmError);
    EXPECT_THROW(registry.retire(99), GcmError);
}

TEST(FrontEnd, SurvivesConcurrentRollbackAndRetire)
{
    // Run under TSan: an operator thread churns activations while the
    // front end serves; the run-pinned snapshots keep every payload
    // on a complete version even as versions are swapped and retired.
    serve::ModelRegistry registry;
    std::stringstream s1, s2;
    testModel().serialize(s1);
    testModel().serialize(s2);
    registry.publish(serve::ModelSnapshot::fromStream(s1));
    const auto v2 =
        registry.publish(serve::ModelSnapshot::fromStream(s2));

    serve::FrontEndConfig cfg;
    cfg.workers = 4;
    serve::ServerFrontEnd fe(registry, testDeviceTable(), cfg);

    std::atomic<bool> stop{false};
    std::thread operator_thread([&] {
        for (int i = 0; i < 100; ++i) {
            registry.activate(1 + (i % 2));
            std::this_thread::yield();
        }
        registry.activate(1);
        registry.retire(v2);
        stop.store(true);
    });
    std::size_t runs = 0;
    while (!stop.load() || runs == 0) {
        const auto arrivals = overloadArrivals(fe, 64, runs, 1.0);
        std::vector<std::string> responses;
        const auto report = fe.run(arrivals, &responses);
        EXPECT_EQ(report.offered, arrivals.size());
        for (const auto &line : responses)
            EXPECT_NE(line.find("\"id\""), std::string::npos) << line;
        ++runs;
    }
    operator_thread.join();
    EXPECT_GT(runs, 0u);
}

TEST(FrontEnd, LoopHandlesHostileInputAtAnyWorkerCount)
{
    // Satellite 3: truncated JSON, an oversized line and interleaved
    // valid/invalid lines through the streaming loop. At every worker
    // count: one complete response line per input line, in input
    // order, never torn.
    std::string oversized = "{\"id\": \"big\", \"network\": \"";
    oversized.append(serve::kMaxRequestLineBytes, 'a');
    oversized += "\", \"device\": \"d\"}";
    const std::vector<std::string> lines = {
        "{\"id\": \"ok1\", \"network\": \"mobilenet_v2_1.0\", "
        "\"device\": \"" + firstDeviceName() + "\"}",
        "{\"id\": \"trunc", // truncated mid-string
        oversized,
        "{\"id\": \"ok2\", \"network\": \"mnasnet_a1\", \"device\": \""
            + firstDeviceName() + "\"}",
        "{}",
        "{\"id\": \"ok3\", \"network\": \"mobilenet_v2_1.0\", "
        "\"device\": \"" + firstDeviceName()
            + "\", \"priority\": \"bulk\"}",
    };
    std::string expected_first; // responses must not vary by workers
    for (const std::size_t workers : {1UL, 2UL, 8UL}) {
        serve::FrontEndConfig cfg;
        cfg.workers = workers;
        serve::ServerFrontEnd fe(twoVersionRegistry(),
                                 testDeviceTable(), cfg);
        std::stringstream in, out;
        for (const auto &line : lines)
            in << line << "\n";
        const std::size_t n = serve::runFrontEndLoop(fe, in, out);
        EXPECT_EQ(n, lines.size());

        std::vector<std::string> responses;
        std::istringstream split(out.str());
        for (std::string line; std::getline(split, line);)
            responses.push_back(line);
        ASSERT_EQ(responses.size(), lines.size()) << "workers="
                                                  << workers;
        // Order: each ok id answers at its own index; error lines are
        // complete JSON objects (no torn writes).
        EXPECT_NE(responses[0].find("\"id\": \"ok1\""),
                  std::string::npos);
        EXPECT_NE(responses[1].find("bad_request"), std::string::npos);
        EXPECT_NE(responses[2].find("byte limit"), std::string::npos);
        EXPECT_NE(responses[3].find("\"id\": \"ok2\""),
                  std::string::npos);
        EXPECT_NE(responses[4].find("bad_request"), std::string::npos);
        EXPECT_NE(responses[5].find("\"id\": \"ok3\""),
                  std::string::npos);
        for (const auto &line : responses) {
            ASSERT_FALSE(line.empty());
            EXPECT_EQ(line.front(), '{');
            EXPECT_EQ(line.back(), '}');
        }
        if (expected_first.empty())
            expected_first = out.str();
        else
            EXPECT_EQ(out.str(), expected_first)
                << "workers=" << workers;
    }
}

TEST(Analytical, EstimatorIsPureAndValidates)
{
    const auto table = testDeviceTable();
    serve::AnalyticalEstimator est(&table);

    const dnn::Graph g =
        dnn::quantize(dnn::buildZooModel("mobilenet_v2_1.0"));
    const double ms = est.estimateMs(g);
    EXPECT_TRUE(std::isfinite(ms));
    EXPECT_GT(ms, 0.0);
    EXPECT_EQ(est.estimateMs(g), ms); // pure

    const auto request =
        networkRequest("a", "mobilenet_v2_1.0", firstDeviceName());
    const auto r1 = est.serve(request);
    const auto r2 = est.serve(request);
    ASSERT_TRUE(r1.ok) << r1.error_message;
    EXPECT_EQ(r1.latency_ms, r2.latency_ms);
    EXPECT_EQ(r1.tier, serve::ServeTier::Analytical);
    EXPECT_EQ(r1.model_version, 0u);

    // Same schema hardening as the full path.
    auto bad = request;
    bad.device = "no-such-device";
    EXPECT_FALSE(est.serve(bad).ok);
    bad = request;
    bad.network.clear();
    EXPECT_FALSE(est.serve(bad).ok);
}

TEST(FrontEnd, OpenLoadGenIsDeterministic)
{
    serve::LoadGenConfig cfg;
    cfg.requests = 500;
    cfg.seed = 11;
    cfg.bulk_fraction = 0.3;
    const auto run = [&] {
        serve::FrontEndConfig fcfg;
        fcfg.workers = 2;
        serve::ServerFrontEnd fe(twoVersionRegistry(),
                                 testDeviceTable(), fcfg);
        serve::LoadGenConfig c = cfg;
        c.offered_qps = 2.0 * fe.capacityQps();
        std::ostringstream out;
        const auto report = serve::runOpenLoadGen(fe, c, &out);
        // The cache counters are the one scheduling-dependent part of
        // the summary (frontend.hh), so compare the deterministic
        // digest alongside the full response stream.
        EXPECT_NE(report.summary().find("goodput"),
                  std::string::npos);
        EXPECT_NE(report.summary().find("capacity"),
                  std::string::npos);
        return std::make_pair(deterministicDigest(report.frontend),
                              out.str());
    };
    const auto [sum1, out1] = run();
    const auto [sum2, out2] = run();
    EXPECT_EQ(sum1, sum2);
    EXPECT_EQ(out1, out2);

    // The arrival stream itself: sorted times, ~bulk_fraction tagged,
    // and priority tagging never perturbs the request bodies.
    serve::FrontEndConfig fcfg;
    fcfg.workers = 2;
    serve::ServerFrontEnd fe(twoVersionRegistry(), testDeviceTable(),
                             fcfg);
    auto c = cfg;
    c.offered_qps = 100.0;
    const auto arrivals = serve::generateArrivals(fe, c);
    ASSERT_EQ(arrivals.size(), cfg.requests);
    std::size_t bulk = 0;
    for (std::size_t i = 0; i < arrivals.size(); ++i) {
        if (i > 0) {
            EXPECT_GE(arrivals[i].time_ms, arrivals[i - 1].time_ms);
        }
        bulk += arrivals[i].line.find("\"priority\": \"bulk\"")
                != std::string::npos;
    }
    EXPECT_GT(bulk, arrivals.size() / 5);
    EXPECT_LT(bulk, arrivals.size() / 2);
    EXPECT_THROW(
        (void)serve::generateArrivals(
            fe, [] { auto b = serve::LoadGenConfig{}; b.offered_qps = -1.0; return b; }()),
        GcmError);
}

TEST(Registry, LifecycleEmitsObsMetrics)
{
    // §8 zero-perturbation: metrics are plain counter/gauge writes at
    // the registry's mutation points, so with collection enabled every
    // lifecycle step must account exactly — and the counters must stay
    // flat while collection is off.
    obs::reset();
    obs::setEnabled(true);
    const auto publishes0 =
        obs::counterValue("serve.registry.publishes");
    const auto rollbacks0 =
        obs::counterValue("serve.registry.rollbacks");
    const auto retires0 = obs::counterValue("serve.registry.retires");
    const auto activates0 =
        obs::counterValue("serve.registry.activates");

    serve::ModelRegistry registry;
    std::stringstream s1, s2;
    testModel().serialize(s1);
    testModel().serialize(s2);
    const auto v1 =
        registry.publish(serve::ModelSnapshot::fromStream(s1));
    (void)registry.publish(serve::ModelSnapshot::fromStream(s2));
    registry.activate(v1); // v2 -> v1
    registry.rollback();   // back to v2
    registry.retire(v1);   // v1 is no longer active: retirable

    EXPECT_EQ(obs::counterValue("serve.registry.publishes"),
              publishes0 + 2);
    EXPECT_EQ(obs::counterValue("serve.registry.rollbacks"),
              rollbacks0 + 1);
    EXPECT_EQ(obs::counterValue("serve.registry.retires"),
              retires0 + 1);
    EXPECT_EQ(obs::counterValue("serve.registry.activates"),
              activates0 + 1);

    // Gauges track the latest registry state in the perf report.
    const std::string report = obs::reportJson();
    EXPECT_NE(report.find("serve.registry.active_version"),
              std::string::npos);
    EXPECT_NE(report.find("serve.registry.snapshots"),
              std::string::npos);

    // Disabled collection leaves the counters untouched.
    obs::setEnabled(false);
    std::stringstream s3;
    testModel().serialize(s3);
    (void)registry.publish(serve::ModelSnapshot::fromStream(s3));
    obs::setEnabled(true);
    EXPECT_EQ(obs::counterValue("serve.registry.publishes"),
              publishes0 + 2);
    obs::setEnabled(false);
    obs::reset();
}

/**
 * @file
 * Unit tests for the baseline learners (random forest, kNN, ridge,
 * MLP) the paper compared against XGBoost.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "ml/knn.hh"
#include "ml/linear.hh"
#include "ml/metrics.hh"
#include "ml/mlp.hh"
#include "ml/random_forest.hh"
#include "util/error.hh"
#include "util/rng.hh"

using namespace gcm::ml;
using gcm::Rng;

namespace
{

Dataset
linearData(std::size_t n, double noise, std::uint64_t seed)
{
    Rng rng(seed);
    Dataset ds(2);
    for (std::size_t i = 0; i < n; ++i) {
        const double a = rng.uniform(-2, 2);
        const double b = rng.uniform(-2, 2);
        ds.addRow({static_cast<float>(a), static_cast<float>(b)},
                  3.0 * a - 2.0 * b + 1.0 + noise * rng.normal());
    }
    return ds;
}

Dataset
nonlinearData(std::size_t n, double noise, std::uint64_t seed)
{
    Rng rng(seed);
    Dataset ds(2);
    for (std::size_t i = 0; i < n; ++i) {
        const double a = rng.uniform(-2, 2);
        const double b = rng.uniform(-2, 2);
        ds.addRow({static_cast<float>(a), static_cast<float>(b)},
                  a * a + std::sin(2 * b) + noise * rng.normal());
    }
    return ds;
}

} // namespace

TEST(RandomForest, FitsNonlinearTarget)
{
    RandomForestParams p;
    p.n_trees = 60;
    RandomForest model(p);
    model.train(nonlinearData(2000, 0.05, 1));
    const auto test = nonlinearData(300, 0.0, 2);
    EXPECT_GT(r2Score(test.labels(), model.predict(test)), 0.9);
}

TEST(RandomForest, DeterministicForSeed)
{
    const auto train = nonlinearData(300, 0.1, 3);
    const auto test = nonlinearData(50, 0.0, 4);
    RandomForest a, b;
    a.train(train);
    b.train(train);
    EXPECT_EQ(a.predict(test), b.predict(test));
}

TEST(RandomForest, NumTrees)
{
    RandomForestParams p;
    p.n_trees = 7;
    RandomForest model(p);
    model.train(linearData(100, 0.1, 5));
    EXPECT_EQ(model.numTrees(), 7u);
}

TEST(RandomForest, SerializeRoundTripIsExact)
{
    RandomForestParams p;
    p.n_trees = 25;
    RandomForest model(p);
    const auto train = nonlinearData(400, 0.05, 6);
    const auto test = nonlinearData(80, 0.0, 7);
    model.train(train);

    std::stringstream ss;
    model.serialize(ss);
    const auto loaded = RandomForest::deserialize(ss);

    EXPECT_EQ(loaded.numTrees(), model.numTrees());
    EXPECT_EQ(loaded.params().n_trees, model.params().n_trees);
    EXPECT_EQ(loaded.params().max_depth, model.params().max_depth);
    EXPECT_DOUBLE_EQ(loaded.params().feature_fraction,
                     model.params().feature_fraction);
    EXPECT_EQ(loaded.params().bootstrap, model.params().bootstrap);
    EXPECT_EQ(loaded.predict(test), model.predict(test));
}

TEST(RandomForest, DeserializeRejectsGarbage)
{
    std::stringstream ss("definitely not a forest");
    EXPECT_THROW((void)RandomForest::deserialize(ss), gcm::GcmError);
}

TEST(RandomForest, DeserializeRejectsTruncatedStream)
{
    RandomForestParams p;
    p.n_trees = 10;
    RandomForest model(p);
    model.train(linearData(100, 0.1, 8));
    std::stringstream ss;
    model.serialize(ss);
    std::string text = ss.str();
    text.resize(text.size() / 2);
    std::stringstream cut(text);
    EXPECT_THROW((void)RandomForest::deserialize(cut), gcm::GcmError);
}

TEST(Knn, ExactNeighborLookup)
{
    Dataset ds(1);
    ds.addRow({0.0f}, 0.0);
    ds.addRow({1.0f}, 10.0);
    ds.addRow({2.0f}, 20.0);
    KnnParams p;
    p.k = 1;
    KNearestNeighbors model(p);
    model.train(ds);
    const float q = 1.1f;
    EXPECT_DOUBLE_EQ(model.predictRow(&q), 10.0);
}

TEST(Knn, AveragesKNeighbors)
{
    Dataset ds(1);
    ds.addRow({0.0f}, 0.0);
    ds.addRow({1.0f}, 10.0);
    ds.addRow({100.0f}, 1000.0);
    KnnParams p;
    p.k = 2;
    KNearestNeighbors model(p);
    model.train(ds);
    const float q = 0.4f;
    EXPECT_DOUBLE_EQ(model.predictRow(&q), 5.0);
}

TEST(Knn, FitsSmoothTarget)
{
    KnnParams p;
    p.k = 5;
    KNearestNeighbors model(p);
    model.train(nonlinearData(3000, 0.05, 6));
    const auto test = nonlinearData(200, 0.0, 7);
    EXPECT_GT(r2Score(test.labels(), model.predict(test)), 0.9);
}

TEST(Knn, KLargerThanDatasetClamps)
{
    Dataset ds(1);
    ds.addRow({0.0f}, 2.0);
    ds.addRow({1.0f}, 4.0);
    KnnParams p;
    p.k = 10;
    KNearestNeighbors model(p);
    model.train(ds);
    const float q = 0.0f;
    EXPECT_DOUBLE_EQ(model.predictRow(&q), 3.0);
}

TEST(Ridge, RecoversLinearCoefficients)
{
    RidgeParams p;
    p.alpha = 1e-6;
    RidgeRegression model(p);
    model.train(linearData(1000, 0.0, 8));
    const auto test = linearData(100, 0.0, 9);
    EXPECT_GT(r2Score(test.labels(), model.predict(test)), 0.9999);
}

TEST(Ridge, HandlesConstantFeature)
{
    Dataset ds(2);
    Rng rng(10);
    for (int i = 0; i < 100; ++i) {
        const double x = rng.uniform(-1, 1);
        ds.addRow({static_cast<float>(x), 5.0f}, 2.0 * x);
    }
    RidgeRegression model;
    model.train(ds);
    const auto preds = model.predict(ds);
    EXPECT_GT(r2Score(ds.labels(), preds), 0.99);
}

TEST(Ridge, StrongRegularizationShrinksToMean)
{
    RidgeParams p;
    p.alpha = 1e12;
    RidgeRegression model(p);
    const auto train = linearData(200, 0.0, 11);
    model.train(train);
    // With huge alpha all weights vanish; prediction = target mean.
    const float q[2] = {1.0f, 1.0f};
    double mean = 0.0;
    for (double y : train.labels())
        mean += y;
    mean /= static_cast<double>(train.numRows());
    EXPECT_NEAR(model.predictRow(q), mean, 0.05);
}

TEST(Mlp, FitsLinearTarget)
{
    MlpParams p;
    p.epochs = 40;
    Mlp model(p);
    model.train(linearData(1000, 0.02, 12));
    const auto test = linearData(200, 0.0, 13);
    EXPECT_GT(r2Score(test.labels(), model.predict(test)), 0.95);
}

TEST(Mlp, LossDecreasesOverEpochs)
{
    MlpParams p;
    p.epochs = 15;
    Mlp model(p);
    model.train(nonlinearData(800, 0.05, 14));
    const auto &hist = model.lossHistory();
    ASSERT_EQ(hist.size(), 15u);
    EXPECT_LT(hist.back(), hist.front());
}

TEST(Mlp, DeterministicForSeed)
{
    const auto train = linearData(200, 0.1, 15);
    const auto test = linearData(20, 0.0, 16);
    Mlp a, b;
    a.train(train);
    b.train(train);
    EXPECT_EQ(a.predict(test), b.predict(test));
}

/**
 * @file
 * Unit tests for DNN graph text serialization.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "dnn/analysis.hh"
#include "dnn/generator.hh"
#include "dnn/quantize.hh"
#include "dnn/serialize.hh"
#include "dnn/zoo.hh"
#include "util/error.hh"

using namespace gcm::dnn;
using gcm::GcmError;

namespace
{

bool
graphsEqual(const Graph &a, const Graph &b)
{
    if (a.name() != b.name() || a.precision() != b.precision()
        || a.numNodes() != b.numNodes()) {
        return false;
    }
    for (std::size_t i = 0; i < a.numNodes(); ++i) {
        const Node &x = a.nodes()[i];
        const Node &y = b.nodes()[i];
        if (x.kind != y.kind || !(x.params == y.params)
            || x.inputs != y.inputs || !(x.shape == y.shape)) {
            return false;
        }
    }
    return true;
}

} // namespace

TEST(GraphSerialize, RoundTripsZooModel)
{
    const Graph g = buildZooModel("mobilenet_v3_large");
    const Graph back = graphFromText(graphToText(g));
    EXPECT_TRUE(graphsEqual(g, back));
    EXPECT_EQ(totalMacs(g), totalMacs(back));
}

TEST(GraphSerialize, RoundTripsQuantizedGraph)
{
    const Graph q = quantize(buildZooModel("mnasnet_a1"));
    const Graph back = graphFromText(graphToText(q));
    EXPECT_TRUE(graphsEqual(q, back));
    EXPECT_EQ(back.precision(), Precision::Int8);
}

TEST(GraphSerialize, RoundTripsGeneratedNetworks)
{
    RandomNetworkGenerator gen(SearchSpace{}, 555);
    for (int i = 0; i < 3; ++i) {
        const Graph g = gen.generate("roundtrip");
        EXPECT_TRUE(graphsEqual(g, graphFromText(graphToText(g))));
    }
}

TEST(GraphSerialize, RejectsBadHeader)
{
    std::stringstream ss("not-a-graph v1\n");
    EXPECT_THROW((void)deserializeGraph(ss), GcmError);
}

TEST(GraphSerialize, RejectsTruncatedStream)
{
    std::string text = graphToText(buildZooModel("squeezenet_1.1"));
    text.resize(text.size() / 2);
    EXPECT_THROW((void)graphFromText(text), GcmError);
}

TEST(GraphSerialize, RejectsUnknownOperator)
{
    std::string text = graphToText(buildZooModel("squeezenet_1.1"));
    const auto pos = text.find("Conv2d");
    text.replace(pos, 6, "Conv9d");
    EXPECT_THROW((void)graphFromText(text), GcmError);
}

TEST(GraphSerialize, LoadedGraphValidates)
{
    // Corrupt an input reference to point forward: validate() on load
    // must reject it.
    const Graph g = buildZooModel("squeezenet_1.1");
    std::string text = graphToText(g);
    const auto pos = text.find("in=0 ");
    ASSERT_NE(pos, std::string::npos);
    text.replace(pos, 5, "in=9 ");
    EXPECT_THROW((void)graphFromText(text), GcmError);
}

/**
 * @file
 * Unit tests for DNN graph text serialization, plus a property-based
 * sweep: a few hundred generator-random graphs must round-trip
 * exactly, and truncated or bit-flipped serializations must raise
 * GcmError (or, for benign corruptions, still parse to a valid
 * graph) — never crash.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "dnn/analysis.hh"
#include "dnn/generator.hh"
#include "dnn/quantize.hh"
#include "dnn/serialize.hh"
#include "dnn/zoo.hh"
#include "util/error.hh"
#include "util/rng.hh"

using namespace gcm::dnn;
using gcm::GcmError;

namespace
{

bool
graphsEqual(const Graph &a, const Graph &b)
{
    if (a.name() != b.name() || a.precision() != b.precision()
        || a.numNodes() != b.numNodes()) {
        return false;
    }
    for (std::size_t i = 0; i < a.numNodes(); ++i) {
        const Node &x = a.nodes()[i];
        const Node &y = b.nodes()[i];
        if (x.kind != y.kind || !(x.params == y.params)
            || x.inputs != y.inputs || !(x.shape == y.shape)) {
            return false;
        }
    }
    return true;
}

} // namespace

TEST(GraphSerialize, RoundTripsZooModel)
{
    const Graph g = buildZooModel("mobilenet_v3_large");
    const Graph back = graphFromText(graphToText(g));
    EXPECT_TRUE(graphsEqual(g, back));
    EXPECT_EQ(totalMacs(g), totalMacs(back));
}

TEST(GraphSerialize, RoundTripsQuantizedGraph)
{
    const Graph q = quantize(buildZooModel("mnasnet_a1"));
    const Graph back = graphFromText(graphToText(q));
    EXPECT_TRUE(graphsEqual(q, back));
    EXPECT_EQ(back.precision(), Precision::Int8);
}

TEST(GraphSerialize, RoundTripsGeneratedNetworks)
{
    RandomNetworkGenerator gen(SearchSpace{}, 555);
    for (int i = 0; i < 3; ++i) {
        const Graph g = gen.generate("roundtrip");
        EXPECT_TRUE(graphsEqual(g, graphFromText(graphToText(g))));
    }
}

TEST(GraphSerialize, RejectsBadHeader)
{
    std::stringstream ss("not-a-graph v1\n");
    EXPECT_THROW((void)deserializeGraph(ss), GcmError);
}

TEST(GraphSerialize, RejectsTruncatedStream)
{
    std::string text = graphToText(buildZooModel("squeezenet_1.1"));
    text.resize(text.size() / 2);
    EXPECT_THROW((void)graphFromText(text), GcmError);
}

TEST(GraphSerialize, RejectsUnknownOperator)
{
    std::string text = graphToText(buildZooModel("squeezenet_1.1"));
    const auto pos = text.find("Conv2d");
    text.replace(pos, 6, "Conv9d");
    EXPECT_THROW((void)graphFromText(text), GcmError);
}

TEST(GraphSerialize, LoadedGraphValidates)
{
    // Corrupt an input reference to point forward: validate() on load
    // must reject it.
    const Graph g = buildZooModel("squeezenet_1.1");
    std::string text = graphToText(g);
    const auto pos = text.find("in=0 ");
    ASSERT_NE(pos, std::string::npos);
    text.replace(pos, 5, "in=9 ");
    EXPECT_THROW((void)graphFromText(text), GcmError);
}

TEST(GraphSerialize, PropertyRandomGraphsRoundTripExactly)
{
    // ~200 generator-random networks (plus their quantized forms on a
    // sample) must reproduce structure, shapes and static costs
    // exactly through a serialize/deserialize cycle.
    RandomNetworkGenerator gen(SearchSpace{}, 20260805);
    const auto suite = gen.generateSuite(200, "prop");
    ASSERT_EQ(suite.size(), 200u);
    for (std::size_t i = 0; i < suite.size(); ++i) {
        const Graph &g = suite[i];
        const Graph back = graphFromText(graphToText(g));
        ASSERT_TRUE(graphsEqual(g, back)) << g.name();
        ASSERT_EQ(totalMacs(g), totalMacs(back)) << g.name();
        ASSERT_EQ(totalParams(g), totalParams(back)) << g.name();
        if (i % 25 == 0) {
            const Graph q = quantize(g);
            const Graph qback = graphFromText(graphToText(q));
            ASSERT_TRUE(graphsEqual(q, qback)) << q.name();
            ASSERT_EQ(qback.precision(), Precision::Int8);
        }
    }
}

TEST(GraphSerialize, PropertyTruncationNeverCrashes)
{
    // Cutting the stream at any point yields GcmError, or — when the
    // cut removes only trailing whitespace — the identical graph.
    RandomNetworkGenerator gen(SearchSpace{}, 99);
    const Graph g = gen.generate("trunc");
    const std::string text = graphToText(g);
    const std::size_t step = std::max<std::size_t>(1, text.size() / 64);
    for (std::size_t cut = 0; cut < text.size(); cut += step) {
        try {
            const Graph back = graphFromText(text.substr(0, cut));
            EXPECT_TRUE(graphsEqual(g, back))
                << "truncation at " << cut
                << " parsed to a different graph";
        } catch (const GcmError &) {
            // Expected for cuts through real content.
        } catch (...) {
            FAIL() << "truncation at " << cut
                   << " escaped with a non-GcmError exception";
        }
    }
}

TEST(GraphSerialize, PropertyBitFlipsNeverCrash)
{
    // ~300 seeded single-bit corruptions across several source
    // graphs: the deserializer must either reject with GcmError or
    // produce some valid graph — never crash, hang or throw anything
    // else.
    RandomNetworkGenerator gen(SearchSpace{}, 4242);
    std::vector<std::string> texts;
    texts.push_back(graphToText(gen.generate("flip_a")));
    texts.push_back(graphToText(quantize(gen.generate("flip_b"))));
    texts.push_back(graphToText(buildZooModel("mobilenet_v2_1.0")));
    gcm::Rng rng(31337);
    std::size_t rejected = 0, accepted = 0;
    for (int trial = 0; trial < 300; ++trial) {
        std::string text = texts[trial % texts.size()];
        const std::size_t pos = static_cast<std::size_t>(
            rng.uniformInt(0, static_cast<std::int64_t>(text.size()) - 1));
        const char bit = static_cast<char>(
            1 << rng.uniformInt(0, 7));
        text[pos] = static_cast<char>(text[pos] ^ bit);
        try {
            (void)graphFromText(text);
            ++accepted;
        } catch (const GcmError &) {
            ++rejected;
        } catch (...) {
            FAIL() << "bit flip at byte " << pos << " (trial " << trial
                   << ") escaped with a non-GcmError exception";
        }
    }
    EXPECT_EQ(rejected + accepted, 300u);
    // The strict parser must catch the overwhelming majority; a flip
    // inside the free-form name field can legitimately survive.
    EXPECT_GT(rejected, 150u);
}

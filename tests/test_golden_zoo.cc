/**
 * @file
 * Golden-file tests for the 18-network zoo: the encoder feature
 * vector of every network (fitted on the quantized suite, the
 * deployment representation the cost model trains on) and the static
 * MAC/parameter totals are pinned to CSVs under tests/golden/. Any
 * unintended change to the zoo builders, the quantizer, the encoder
 * layout or the cost analysis shows up as a byte diff here.
 *
 * Regenerating after an INTENTIONAL change:
 *
 *   GCM_REGEN_GOLDEN=1 ./build/tests/test_golden_zoo
 *
 * rewrites the CSVs in the source tree (the build embeds the source
 * path as GCM_TEST_GOLDEN_DIR); re-run without the flag to confirm,
 * then review the diff like any other code change.
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/net_encoder.hh"
#include "dnn/analysis.hh"
#include "dnn/quantize.hh"
#include "dnn/zoo.hh"

#ifndef GCM_TEST_GOLDEN_DIR
#error "GCM_TEST_GOLDEN_DIR must point at tests/golden in the source tree"
#endif

namespace
{

using namespace gcm;

std::string
goldenPath(const std::string &name)
{
    return std::string(GCM_TEST_GOLDEN_DIR) + "/" + name;
}

bool
regenRequested()
{
    const char *env = std::getenv("GCM_REGEN_GOLDEN");
    return env != nullptr && std::string(env) != "0"
           && std::string(env) != "";
}

std::string
readFileOrEmpty(const std::string &path)
{
    std::ifstream is(path);
    if (!is)
        return {};
    std::stringstream ss;
    ss << is.rdbuf();
    return ss.str();
}

/** Shortest exact decimal for a float (round-trips via strtof). */
std::string
formatFloat(float v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.9g", static_cast<double>(v));
    return buf;
}

/** The quantized 18-network zoo, in canonical order. */
const std::vector<dnn::Graph> &
quantizedZoo()
{
    static const std::vector<dnn::Graph> zoo = [] {
        std::vector<dnn::Graph> graphs;
        for (const auto &name : dnn::zooModelNames())
            graphs.push_back(dnn::quantize(dnn::buildZooModel(name)));
        return graphs;
    }();
    return zoo;
}

std::string
buildEncodersCsv()
{
    const auto &zoo = quantizedZoo();
    const core::NetworkEncoder encoder(zoo);
    std::ostringstream os;
    os << "# encoder vectors of the quantized zoo; " << "max_layers="
       << encoder.maxLayers() << " features_per_layer="
       << encoder.featuresPerLayer() << "\n";
    const auto &names = dnn::zooModelNames();
    for (std::size_t i = 0; i < zoo.size(); ++i) {
        os << names[i];
        for (float v : encoder.encode(zoo[i]))
            os << "," << formatFloat(v);
        os << "\n";
    }
    return os.str();
}

std::string
buildMacsCsv()
{
    std::ostringstream os;
    os << "name,macs,params,macs_int8,params_int8\n";
    const auto &names = dnn::zooModelNames();
    const auto &zoo = quantizedZoo();
    for (std::size_t i = 0; i < names.size(); ++i) {
        const dnn::Graph fp32 = dnn::buildZooModel(names[i]);
        os << names[i] << "," << dnn::totalMacs(fp32) << ","
           << dnn::totalParams(fp32) << "," << dnn::totalMacs(zoo[i])
           << "," << dnn::totalParams(zoo[i]) << "\n";
    }
    return os.str();
}

void
checkGolden(const std::string &file, const std::string &current)
{
    const std::string path = goldenPath(file);
    if (regenRequested()) {
        std::ofstream os(path);
        ASSERT_TRUE(os.good()) << "cannot write " << path;
        os << current;
        GTEST_SKIP() << "regenerated " << path
                     << "; re-run without GCM_REGEN_GOLDEN to verify";
    }
    const std::string golden = readFileOrEmpty(path);
    ASSERT_FALSE(golden.empty())
        << path << " is missing; run with GCM_REGEN_GOLDEN=1 to create";
    if (golden == current)
        return;
    // Point at the first differing line to make diffs actionable.
    std::istringstream gs(golden), cs(current);
    std::string gline, cline;
    std::size_t line = 1;
    while (std::getline(gs, gline) && std::getline(cs, cline)) {
        if (gline != cline)
            break;
        ++line;
    }
    FAIL() << file << " differs from the checked-in golden at line "
           << line << "\n  golden:  "
           << (gline.size() > 160 ? gline.substr(0, 160) + "..." : gline)
           << "\n  current: "
           << (cline.size() > 160 ? cline.substr(0, 160) + "..." : cline)
           << "\nIf the change is intentional, regenerate with "
              "GCM_REGEN_GOLDEN=1 (see file header).";
}

TEST(GoldenZoo, EncoderVectorsMatchGolden)
{
    checkGolden("zoo_encoders.csv", buildEncodersCsv());
}

TEST(GoldenZoo, MacAndParamTotalsMatchGolden)
{
    checkGolden("zoo_macs.csv", buildMacsCsv());
}

TEST(GoldenZoo, GoldenCoversEveryZooNetwork)
{
    // Guards against a regenerated golden silently dropping rows.
    const std::string golden = readFileOrEmpty(goldenPath("zoo_macs.csv"));
    if (golden.empty())
        GTEST_SKIP() << "golden missing (regen pending)";
    for (const auto &name : dnn::zooModelNames())
        EXPECT_NE(golden.find("\n" + name + ","), std::string::npos)
            << name << " missing from zoo_macs.csv";
}

} // namespace

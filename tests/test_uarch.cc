/**
 * @file
 * Unit tests for the core-family microarchitecture table.
 */

#include <gtest/gtest.h>

#include "sim/uarch.hh"
#include "util/error.hh"

using namespace gcm::sim;
using gcm::GcmError;

TEST(Uarch, TwentyTwoFamilies)
{
    EXPECT_EQ(coreFamilyTable().size(), 22u);
}

TEST(Uarch, LookupByName)
{
    const CoreFamilyId id = coreFamilyIdByName("Cortex-A53");
    EXPECT_EQ(coreFamily(id).name, "Cortex-A53");
}

TEST(Uarch, UnknownNameThrows)
{
    EXPECT_THROW(coreFamilyIdByName("Cortex-X99"), GcmError);
}

TEST(Uarch, NamesAreUnique)
{
    const auto &table = coreFamilyTable();
    for (std::size_t i = 0; i < table.size(); ++i) {
        for (std::size_t j = i + 1; j < table.size(); ++j)
            EXPECT_NE(table[i].name, table[j].name);
    }
}

TEST(Uarch, DotprodCoresAreFasterPerCycle)
{
    // Every SDOT-capable core sustains more int8 MACs/cycle than any
    // pre-SDOT core of the same era family line we model.
    const auto &a53 = coreFamily(coreFamilyIdByName("Cortex-A53"));
    const auto &a55 = coreFamily(coreFamilyIdByName("Cortex-A55"));
    const auto &a73 = coreFamily(coreFamilyIdByName("Cortex-A73"));
    const auto &a76 = coreFamily(coreFamilyIdByName("Cortex-A76"));
    EXPECT_FALSE(a53.has_dotprod);
    EXPECT_TRUE(a55.has_dotprod);
    EXPECT_GT(a55.macsPerCycleInt8(), a53.macsPerCycleInt8());
    EXPECT_GT(a76.macsPerCycleInt8(), a73.macsPerCycleInt8());
}

TEST(Uarch, GenerationalProgressInCortexLine)
{
    const char *line[] = {"Cortex-A53", "Cortex-A72", "Cortex-A73",
                          "Cortex-A75", "Cortex-A76", "Cortex-A77",
                          "Cortex-A78"};
    double prev = 0.0;
    for (const char *name : line) {
        const auto &core = coreFamily(coreFamilyIdByName(name));
        EXPECT_GE(core.macsPerCycleInt8(), prev) << name;
        prev = core.macsPerCycleInt8();
    }
}

TEST(Uarch, KryoGoldMirrorsArmCounterparts)
{
    // Kryo 485 Gold is an A76 derivative; rates should match closely.
    const auto &k485 = coreFamily(coreFamilyIdByName("Kryo-485-Gold"));
    const auto &a76 = coreFamily(coreFamilyIdByName("Cortex-A76"));
    EXPECT_NEAR(k485.macsPerCycleInt8(), a76.macsPerCycleInt8(), 2.0);
}

TEST(Uarch, AllFamiliesHaveSaneParameters)
{
    for (const auto &core : coreFamilyTable()) {
        EXPECT_GT(core.int8_macs_per_cycle, 0.0) << core.name;
        EXPECT_GT(core.scalar_ipc, 0.0) << core.name;
        EXPECT_GT(core.l2_kb, 0) << core.name;
        EXPECT_TRUE(core.simd_width_bits == 64
                    || core.simd_width_bits == 128)
            << core.name;
        EXPECT_GE(core.year, 2010) << core.name;
        EXPECT_LE(core.year, 2021) << core.name;
    }
}

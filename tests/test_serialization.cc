/**
 * @file
 * Unit tests for model serialization: regression trees, the GBT
 * booster and the end-to-end SignatureCostModel round-trip exactly
 * through their text formats.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "core/cost_model.hh"
#include "ml/gbt.hh"
#include "testing_support.hh"
#include "util/error.hh"
#include "util/rng.hh"

using namespace gcm;

namespace
{

ml::Dataset
waveDataset(std::size_t n, std::uint64_t seed)
{
    Rng rng(seed);
    ml::Dataset ds(3);
    for (std::size_t i = 0; i < n; ++i) {
        const float a = static_cast<float>(rng.uniform(-2, 2));
        const float b = static_cast<float>(rng.uniform(-2, 2));
        const float c = static_cast<float>(rng.uniform(-2, 2));
        ds.addRow({a, b, c}, std::sin(a) + b * b - 0.5 * c);
    }
    return ds;
}

} // namespace

TEST(Serialization, GbtRoundTripIsExact)
{
    const auto train = waveDataset(600, 1);
    const auto test = waveDataset(100, 2);
    ml::GradientBoostedTrees model;
    model.train(train);

    std::stringstream ss;
    model.serialize(ss);
    const auto loaded = ml::GradientBoostedTrees::deserialize(ss);

    EXPECT_EQ(loaded.numTrees(), model.numTrees());
    EXPECT_DOUBLE_EQ(loaded.baseScore(), model.baseScore());
    EXPECT_EQ(loaded.predict(test), model.predict(test));
}

TEST(Serialization, GbtRoundTripPreservesParams)
{
    ml::GbtParams p;
    p.n_estimators = 13;
    p.max_depth = 4;
    p.learning_rate = 0.25;
    ml::GradientBoostedTrees model(p);
    model.train(waveDataset(200, 3));
    std::stringstream ss;
    model.serialize(ss);
    const auto loaded = ml::GradientBoostedTrees::deserialize(ss);
    EXPECT_EQ(loaded.params().n_estimators, 13u);
    EXPECT_EQ(loaded.params().max_depth, 4u);
    EXPECT_DOUBLE_EQ(loaded.params().learning_rate, 0.25);
}

TEST(Serialization, GbtRejectsGarbage)
{
    std::stringstream ss("definitely not a model");
    EXPECT_THROW((void)ml::GradientBoostedTrees::deserialize(ss),
                 GcmError);
}

TEST(Serialization, GbtRejectsTruncatedStream)
{
    ml::GradientBoostedTrees model;
    model.train(waveDataset(100, 4));
    std::stringstream ss;
    model.serialize(ss);
    std::string text = ss.str();
    text.resize(text.size() / 2);
    std::stringstream cut(text);
    EXPECT_THROW((void)ml::GradientBoostedTrees::deserialize(cut),
                 GcmError);
}

TEST(Serialization, GbtUntrainedModelAborts)
{
    ml::GradientBoostedTrees model;
    std::stringstream ss;
    EXPECT_DEATH(model.serialize(ss), "not trained");
}

TEST(Serialization, CostModelRoundTrip)
{
    const auto &ctx = gcmtest::smallContext();
    std::vector<std::size_t> devices(ctx.fleet().size());
    for (std::size_t i = 0; i < devices.size(); ++i)
        devices[i] = i;
    core::SignatureCostModel::Config cfg;
    cfg.gbt = gcmtest::fastGbt();
    const auto model = core::SignatureCostModel::train(
        ctx.suite(), ctx.latencyMatrix(devices), cfg);

    std::stringstream ss;
    model.serialize(ss);
    const auto loaded = core::SignatureCostModel::deserialize(ss);

    EXPECT_EQ(loaded.signature(), model.signature());
    EXPECT_EQ(loaded.signatureNames(), model.signatureNames());
    EXPECT_EQ(loaded.encoder().maxLayers(),
              model.encoder().maxLayers());

    std::vector<double> sig;
    for (std::size_t s : model.signature())
        sig.push_back(ctx.latencyMs(0, s));
    for (std::size_t n = 0; n < ctx.numNetworks(); n += 5) {
        EXPECT_DOUBLE_EQ(loaded.predictMs(ctx.suite()[n], sig),
                         model.predictMs(ctx.suite()[n], sig));
    }
}

TEST(Serialization, CostModelRejectsBadHeader)
{
    std::stringstream ss("gcm-cost-model v9\n");
    EXPECT_THROW((void)core::SignatureCostModel::deserialize(ss),
                 GcmError);
}

/**
 * @file
 * Unit tests for the DNN graph IR, builder and shape inference.
 */

#include <gtest/gtest.h>

#include "dnn/graph.hh"
#include "util/error.hh"

using namespace gcm::dnn;
using gcm::GcmError;

namespace
{

GraphBuilder
makeBuilder(std::int32_t h = 224, std::int32_t c = 3)
{
    return GraphBuilder("t", TensorShape{1, h, h, c});
}

} // namespace

TEST(GraphBuilder, InputShapeStored)
{
    auto b = makeBuilder(32, 3);
    EXPECT_EQ(b.shapeOf(b.input()), (TensorShape{1, 32, 32, 3}));
}

TEST(GraphBuilder, RejectsBatchedInput)
{
    EXPECT_THROW(GraphBuilder("t", TensorShape{2, 8, 8, 3}), GcmError);
}

TEST(GraphBuilder, ConvStride2SamePadding)
{
    auto b = makeBuilder();
    const NodeId x = b.conv2d(b.input(), 32, 3, 2, 1);
    EXPECT_EQ(b.shapeOf(x), (TensorShape{1, 112, 112, 32}));
}

TEST(GraphBuilder, ConvStride1Kernel1)
{
    auto b = makeBuilder(56, 64);
    const NodeId x = b.conv2d(b.input(), 128, 1, 1, 0);
    EXPECT_EQ(b.shapeOf(x), (TensorShape{1, 56, 56, 128}));
}

TEST(GraphBuilder, ConvRejectsBadGroups)
{
    auto b = makeBuilder(8, 6);
    EXPECT_THROW(b.conv2d(b.input(), 8, 3, 1, 1, /*groups=*/4),
                 GcmError);
}

TEST(GraphBuilder, ConvRejectsOversizedKernel)
{
    auto b = makeBuilder(4, 3);
    EXPECT_THROW(b.conv2d(b.input(), 8, 7, 1, 0), GcmError);
}

TEST(GraphBuilder, DepthwisePreservesChannels)
{
    auto b = makeBuilder(28, 96);
    const NodeId x = b.depthwiseConv2d(b.input(), 5, 2, 2);
    EXPECT_EQ(b.shapeOf(x), (TensorShape{1, 14, 14, 96}));
}

TEST(GraphBuilder, FullyConnectedFlattens)
{
    auto b = makeBuilder(7, 160);
    const NodeId x = b.fullyConnected(b.input(), 1000);
    EXPECT_EQ(b.shapeOf(x), (TensorShape{1, 1, 1, 1000}));
}

TEST(GraphBuilder, MaxPoolFloorSemantics)
{
    auto b = makeBuilder(112, 64);
    // (112 - 3) / 2 + 1 = 55 (floor division).
    const NodeId x = b.maxPool2d(b.input(), 3, 2);
    EXPECT_EQ(b.shapeOf(x).h, 55);
}

TEST(GraphBuilder, GlobalAvgPoolCollapsesSpatial)
{
    auto b = makeBuilder(7, 320);
    const NodeId x = b.globalAvgPool(b.input());
    EXPECT_EQ(b.shapeOf(x), (TensorShape{1, 1, 1, 320}));
}

TEST(GraphBuilder, AddRequiresMatchingShapes)
{
    auto b = makeBuilder(8, 16);
    const NodeId a = b.conv2d(b.input(), 16, 3, 1, 1);
    const NodeId c = b.conv2d(b.input(), 32, 3, 1, 1);
    EXPECT_NO_THROW(b.add(b.input(), a));
    EXPECT_THROW(b.add(a, c), GcmError);
}

TEST(GraphBuilder, MulAllowsChannelBroadcast)
{
    auto b = makeBuilder(8, 16);
    const NodeId g = b.globalAvgPool(b.input());
    const NodeId m = b.mul(b.input(), g);
    EXPECT_EQ(b.shapeOf(m), (TensorShape{1, 8, 8, 16}));
}

TEST(GraphBuilder, MulRejectsIncompatible)
{
    auto b = makeBuilder(8, 16);
    const NodeId c = b.conv2d(b.input(), 8, 1, 1, 0);
    EXPECT_THROW(b.mul(b.input(), c), GcmError);
}

TEST(GraphBuilder, ConcatSumsChannels)
{
    auto b = makeBuilder(14, 16);
    const NodeId a = b.conv2d(b.input(), 64, 1, 1, 0);
    const NodeId c = b.conv2d(b.input(), 64, 3, 1, 1);
    const NodeId cat = b.concat({a, c});
    EXPECT_EQ(b.shapeOf(cat).c, 128);
}

TEST(GraphBuilder, ConcatRejectsSpatialMismatch)
{
    auto b = makeBuilder(14, 16);
    const NodeId a = b.conv2d(b.input(), 8, 3, 2, 1);
    EXPECT_THROW(b.concat({b.input(), a}), GcmError);
}

TEST(GraphBuilder, SqueezeExciteShapePreserving)
{
    auto b = makeBuilder(14, 64);
    const NodeId se = b.squeezeExcite(b.input());
    EXPECT_EQ(b.shapeOf(se), (TensorShape{1, 14, 14, 64}));
}

TEST(GraphBuilder, ActivationsPreserveShape)
{
    auto b = makeBuilder(10, 8);
    // Copy the input shape: shapeOf() returns a reference into the
    // builder's node vector, which each append may reallocate.
    const NodeId in = b.input();
    const TensorShape expected = b.shapeOf(in);
    EXPECT_EQ(b.shapeOf(b.relu(in)), expected);
    EXPECT_EQ(b.shapeOf(b.relu6(in)), expected);
    EXPECT_EQ(b.shapeOf(b.hswish(in)), expected);
    EXPECT_EQ(b.shapeOf(b.sigmoid(in)), expected);
}

TEST(Graph, BuildValidates)
{
    auto b = makeBuilder(8, 3);
    b.softmax(b.fullyConnected(b.conv2d(b.input(), 8, 3, 1, 1), 10));
    const Graph g = b.build();
    EXPECT_EQ(g.numNodes(), 4u);
    EXPECT_NO_THROW(g.validate());
    EXPECT_EQ(g.outputNode().kind, OpKind::Softmax);
    EXPECT_EQ(g.precision(), Precision::Float32);
}

TEST(Graph, CountKind)
{
    auto b = makeBuilder(8, 3);
    b.relu(b.conv2d(b.conv2d(b.input(), 8, 3, 1, 1), 8, 3, 1, 1));
    const Graph g = b.build();
    EXPECT_EQ(g.countKind(OpKind::Conv2d), 2u);
    EXPECT_EQ(g.countKind(OpKind::ReLU), 1u);
}

TEST(Graph, StrMentionsOps)
{
    auto b = makeBuilder(8, 3);
    b.conv2d(b.input(), 8, 3, 2, 1);
    const std::string s = b.build().str();
    EXPECT_NE(s.find("Conv2d"), std::string::npos);
    EXPECT_NE(s.find("k=3"), std::string::npos);
}

TEST(Graph, ValidateCatchesBadTopology)
{
    std::vector<Node> nodes(2);
    nodes[0].id = 0;
    nodes[0].kind = OpKind::Input;
    nodes[0].shape = {1, 8, 8, 3};
    nodes[1].id = 1;
    nodes[1].kind = OpKind::ReLU;
    nodes[1].inputs = {1}; // self-reference
    nodes[1].shape = {1, 8, 8, 3};
    const Graph g("bad", std::move(nodes), Precision::Float32);
    EXPECT_THROW(g.validate(), GcmError);
}

TEST(GraphBuilder, BuildTwiceAborts)
{
    auto b = makeBuilder(8, 3);
    b.conv2d(b.input(), 8, 3, 1, 1);
    (void)b.build();
    EXPECT_DEATH((void)b.build(), "build");
}

/** Conv output-size formula sweep across window geometries. */
struct WindowCase
{
    std::int32_t in, k, s, p, expected;
};

class ConvWindowTest : public ::testing::TestWithParam<WindowCase>
{};

TEST_P(ConvWindowTest, OutputSizeFormula)
{
    const auto c = GetParam();
    GraphBuilder b("t", TensorShape{1, c.in, c.in, 4});
    const NodeId x = b.conv2d(b.input(), 8, c.k, c.s, c.p);
    EXPECT_EQ(b.shapeOf(x).h, c.expected);
    EXPECT_EQ(b.shapeOf(x).w, c.expected);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, ConvWindowTest,
    ::testing::Values(WindowCase{224, 3, 2, 1, 112},
                      WindowCase{224, 7, 2, 3, 112},
                      WindowCase{56, 1, 1, 0, 56},
                      WindowCase{14, 5, 1, 2, 14},
                      WindowCase{28, 5, 2, 2, 14},
                      WindowCase{7, 7, 1, 3, 7},
                      WindowCase{8, 2, 2, 0, 4}));

/**
 * @file
 * Unit tests for the TFLite-style quantization/fusion pass.
 */

#include <gtest/gtest.h>

#include "dnn/quantize.hh"

using namespace gcm::dnn;

TEST(Quantize, MarksGraphInt8)
{
    GraphBuilder b("t", TensorShape{1, 8, 8, 3});
    b.conv2d(b.input(), 8, 3, 1, 1);
    const Graph q = quantize(b.build());
    EXPECT_EQ(q.precision(), Precision::Int8);
}

TEST(Quantize, FoldsBatchNorm)
{
    GraphBuilder b("t", TensorShape{1, 8, 8, 3});
    b.batchNorm(b.conv2d(b.input(), 8, 3, 1, 1));
    const Graph q = quantize(b.build());
    EXPECT_EQ(q.countKind(OpKind::BatchNorm), 0u);
    EXPECT_EQ(q.countKind(OpKind::Conv2d), 1u);
    EXPECT_EQ(q.numNodes(), 2u); // input + conv
}

TEST(Quantize, FusesReluIntoConv)
{
    GraphBuilder b("t", TensorShape{1, 8, 8, 3});
    b.relu(b.batchNorm(b.conv2d(b.input(), 8, 3, 1, 1)));
    const Graph q = quantize(b.build());
    EXPECT_EQ(q.numNodes(), 2u);
    EXPECT_EQ(q.outputNode().params.fused_activation,
              FusedActivation::ReLU);
}

TEST(Quantize, FusesRelu6IntoDepthwise)
{
    GraphBuilder b("t", TensorShape{1, 8, 8, 16});
    b.relu6(b.batchNorm(b.depthwiseConv2d(b.input(), 3, 1, 1)));
    const Graph q = quantize(b.build());
    EXPECT_EQ(q.numNodes(), 2u);
    EXPECT_EQ(q.outputNode().params.fused_activation,
              FusedActivation::ReLU6);
}

TEST(Quantize, FusesReluIntoAdd)
{
    GraphBuilder b("t", TensorShape{1, 8, 8, 8});
    const NodeId c = b.conv2d(b.input(), 8, 3, 1, 1);
    b.relu(b.add(b.input(), c));
    const Graph q = quantize(b.build());
    EXPECT_EQ(q.countKind(OpKind::ReLU), 0u);
    EXPECT_EQ(q.outputNode().kind, OpKind::Add);
    EXPECT_EQ(q.outputNode().params.fused_activation,
              FusedActivation::ReLU);
}

TEST(Quantize, HswishStaysStandalone)
{
    GraphBuilder b("t", TensorShape{1, 8, 8, 3});
    b.hswish(b.conv2d(b.input(), 8, 3, 1, 1));
    const Graph q = quantize(b.build());
    EXPECT_EQ(q.countKind(OpKind::HSwish), 1u);
}

TEST(Quantize, MultiConsumerProducerNotFused)
{
    // conv output feeds both a ReLU and an Add: fusing the ReLU would
    // corrupt the Add input, so it must stay standalone.
    GraphBuilder b("t", TensorShape{1, 8, 8, 8});
    const NodeId c = b.conv2d(b.input(), 8, 3, 1, 1);
    const NodeId r = b.relu(c);
    b.add(c, r);
    const Graph q = quantize(b.build());
    EXPECT_EQ(q.countKind(OpKind::ReLU), 1u);
    for (const auto &n : q.nodes()) {
        if (n.kind == OpKind::Conv2d) {
            EXPECT_EQ(n.params.fused_activation, FusedActivation::None);
        }
    }
}

TEST(Quantize, MultiConsumerBatchNormStillFolds)
{
    // BN feeding two consumers folds structurally (it is an identity
    // once merged), but blocks activation fusion through it.
    GraphBuilder b("t", TensorShape{1, 8, 8, 8});
    const NodeId bn = b.batchNorm(b.conv2d(b.input(), 8, 3, 1, 1));
    const NodeId r = b.relu(bn);
    b.add(bn, r);
    const Graph q = quantize(b.build());
    EXPECT_EQ(q.countKind(OpKind::BatchNorm), 0u);
    EXPECT_EQ(q.countKind(OpKind::ReLU), 1u);
    EXPECT_NO_THROW(q.validate());
}

TEST(Quantize, PreservesTopologyOfResidualBlock)
{
    GraphBuilder b("t", TensorShape{1, 8, 8, 8});
    NodeId x = b.input();
    NodeId y = b.relu6(b.batchNorm(b.conv2d(x, 48, 1, 1, 0)));
    y = b.relu6(b.batchNorm(b.depthwiseConv2d(y, 3, 1, 1)));
    y = b.batchNorm(b.conv2d(y, 8, 1, 1, 0));
    b.add(x, y);
    const Graph q = quantize(b.build());
    // input, conv(+relu6), dw(+relu6), conv, add
    EXPECT_EQ(q.numNodes(), 5u);
    EXPECT_EQ(q.outputNode().kind, OpKind::Add);
    EXPECT_NO_THROW(q.validate());
}

TEST(Quantize, ChainedFusionOnlyAbsorbsOneActivation)
{
    GraphBuilder b("t", TensorShape{1, 8, 8, 3});
    b.relu6(b.relu(b.conv2d(b.input(), 8, 3, 1, 1)));
    const Graph q = quantize(b.build());
    // First ReLU fuses; the second cannot (slot taken) and remains.
    EXPECT_EQ(q.countKind(OpKind::ReLU6), 1u);
    EXPECT_NO_THROW(q.validate());
}

TEST(Quantize, OutputStaysLast)
{
    GraphBuilder b("t", TensorShape{1, 8, 8, 3});
    b.relu(b.batchNorm(b.conv2d(b.input(), 8, 3, 1, 1)));
    const Graph q = quantize(b.build());
    EXPECT_EQ(q.outputNode().kind, OpKind::Conv2d);
}

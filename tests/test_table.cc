/**
 * @file
 * Unit tests for ASCII table/histogram rendering.
 */

#include <gtest/gtest.h>

#include "util/table.hh"

using namespace gcm;

TEST(TextTable, RendersHeaderAndRows)
{
    TextTable t({"name", "value"});
    t.addRow({"alpha", "1"});
    t.addRow("beta", {2.5}, 1);
    const std::string out = t.render();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("2.5"), std::string::npos);
}

TEST(TextTable, AlignsColumns)
{
    TextTable t({"x"});
    t.addRow({"short"});
    t.addRow({"much-longer-cell"});
    const std::string out = t.render();
    // All rendered lines must be equally wide.
    std::size_t width = 0;
    std::size_t pos = 0;
    while (pos < out.size()) {
        const std::size_t nl = out.find('\n', pos);
        const std::size_t len = nl - pos;
        if (width == 0)
            width = len;
        EXPECT_EQ(len, width);
        pos = nl + 1;
    }
}

TEST(FormatDouble, Precision)
{
    EXPECT_EQ(formatDouble(3.14159, 2), "3.14");
    EXPECT_EQ(formatDouble(-1.0, 0), "-1");
}

TEST(Histogram, CountsSumToInput)
{
    std::vector<double> v{1, 2, 2, 3, 9};
    const std::string out = renderHistogram(v, 4, "title", "ms");
    EXPECT_NE(out.find("title"), std::string::npos);
    // The largest value lands in the last bin.
    EXPECT_NE(out.find("# 1"), std::string::npos);
}

TEST(Histogram, EmptyInput)
{
    const std::string out = renderHistogram({}, 4, "t", "");
    EXPECT_NE(out.find("(no data)"), std::string::npos);
}

TEST(Bars, RendersLabels)
{
    const std::string out =
        renderBars({"A53", "A76"}, {10, 5}, "CPU histogram");
    EXPECT_NE(out.find("A53"), std::string::npos);
    EXPECT_NE(out.find("A76"), std::string::npos);
}

TEST(Series, PairsRows)
{
    const std::string out =
        renderSeries("curve", "x", "y", {1, 2}, {0.5, 0.9});
    EXPECT_NE(out.find("0.9"), std::string::npos);
}

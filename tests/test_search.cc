/**
 * @file
 * Tests for the architecture search (src/search): byte-identical
 * gcm-search/v1 reports at 1/2/8 threads across seeds, independent
 * cold-path re-verification of every front member, Pareto-front
 * monotonicity, mutation/crossover fuzzing against GraphVerifier,
 * worst-case-cluster semantics and config validation.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "dnn/analysis.hh"
#include "dnn/fingerprint.hh"
#include "dnn/generator.hh"
#include "dnn/quantize.hh"
#include "search/genome_ops.hh"
#include "search/search.hh"
#include "serve/registry.hh"
#include "serve/service.hh"
#include "testing_support.hh"
#include "util/error.hh"
#include "util/parallel.hh"
#include "util/rng.hh"
#include "verify/verifier.hh"

using namespace gcm;

namespace
{

/** One trained cost model over the reduced test context. */
const core::SignatureCostModel &
testModel()
{
    static const core::SignatureCostModel model = [] {
        const auto &ctx = gcmtest::smallContext();
        std::vector<std::size_t> devices(ctx.fleet().size());
        for (std::size_t i = 0; i < devices.size(); ++i)
            devices[i] = i;
        core::SignatureCostModel::Config cfg;
        cfg.gbt = gcmtest::fastGbt();
        return core::SignatureCostModel::train(
            ctx.suite(), ctx.latencyMatrix(devices), cfg);
    }();
    return model;
}

/** Registry with the test model published (version 1, active). */
const serve::ModelRegistry &
testRegistry()
{
    static const serve::ModelRegistry *registry = [] {
        auto *r = new serve::ModelRegistry;
        std::stringstream ss;
        testModel().serialize(ss);
        r->publish(serve::ModelSnapshot::fromStream(ss));
        return r;
    }();
    return *registry;
}

/** Fleet device names -> signature latencies, from the clean runs. */
serve::PredictionService::DeviceTable
testDeviceTable()
{
    const auto &ctx = gcmtest::smallContext();
    const auto &model = testModel();
    serve::PredictionService::DeviceTable table;
    for (std::size_t d = 0; d < ctx.fleet().size(); ++d) {
        std::vector<double> sig;
        for (const auto &name : model.signatureNames())
            sig.push_back(ctx.latencyMs(d, ctx.networkIndex(name)));
        table[ctx.fleet().devices()[d].model_name] = std::move(sig);
    }
    return table;
}

/** A small but non-trivial search config over the test fleet. */
search::SearchConfig
smallConfig(std::uint64_t seed, std::size_t n_devices = 2)
{
    search::SearchConfig cfg;
    cfg.budget_ms = 80.0;
    const auto table = testDeviceTable();
    auto it = table.begin();
    for (std::size_t d = 0; d < n_devices; ++d, ++it)
        cfg.devices.push_back(it->first);
    cfg.seed = seed;
    cfg.population = 12;
    cfg.generations = 3;
    cfg.elite = 3;
    return cfg;
}

/** Run one full search on a fresh service; returns the rendered report. */
std::string
runReport(const search::SearchConfig &cfg)
{
    serve::PredictionService service(testRegistry(), testDeviceTable());
    search::ArchitectureSearch engine(service, cfg);
    return search::renderSearchReport(cfg, engine.run());
}

TEST(Search, ReportByteIdenticalAtAnyThreadCount)
{
    const std::size_t saved = numThreads();
    for (std::uint64_t seed : {1ULL, 7ULL, 42ULL, 1234ULL, 98765ULL}) {
        const search::SearchConfig cfg = smallConfig(seed);
        setThreads(1);
        const std::string t1 = runReport(cfg);
        setThreads(2);
        const std::string t2 = runReport(cfg);
        setThreads(8);
        const std::string t8 = runReport(cfg);
        EXPECT_EQ(t1, t2) << "seed " << seed;
        EXPECT_EQ(t1, t8) << "seed " << seed;
        // The log (and the front) ride inside the report, but make
        // the generation-log claim explicit too.
        EXPECT_NE(t1.find("\"log\": ["), std::string::npos);
    }
    setThreads(saved);
}

TEST(Search, FrontMonotoneWithinBudgetAndColdPathExact)
{
    const search::SearchConfig cfg = smallConfig(7);
    serve::PredictionService service(testRegistry(), testDeviceTable());
    const search::SearchResult result =
        search::ArchitectureSearch(service, cfg).run();
    ASSERT_FALSE(result.front.empty());

    const auto table = testDeviceTable();
    const core::SignatureCostModel &model = testModel();
    for (std::size_t i = 0; i < result.front.size(); ++i) {
        const search::Candidate &c = result.front[i];
        EXPECT_LE(c.worst_latency_ms, cfg.budget_ms);
        // Monotone front: latency strictly increases and so must the
        // accuracy proxy — a slower member with no more mmacs would
        // be dominated by its predecessor.
        if (i > 0) {
            EXPECT_GT(c.worst_latency_ms,
                      result.front[i - 1].worst_latency_ms);
            EXPECT_GT(c.mmacs, result.front[i - 1].mmacs);
        }
        // Independent cold-path re-verification: rebuild the genome,
        // quantize, predict without the serving stack. The serve
        // path's contract is bit-identical arithmetic, so exact
        // equality is required, not approximate.
        const dnn::Graph g = dnn::quantize(dnn::buildGenome(
            c.genome, cfg.space, "reverify"));
        EXPECT_EQ(dnn::graphFingerprint(g), c.fingerprint);
        EXPECT_EQ(dnn::megaMacs(g), c.mmacs);
        double worst = 0.0;
        for (std::size_t d = 0; d < cfg.devices.size(); ++d) {
            const double ms =
                model.predictMs(g, table.at(cfg.devices[d]));
            EXPECT_EQ(ms, c.latency_ms[d]);
            worst = std::max(worst, ms);
        }
        EXPECT_EQ(worst, c.worst_latency_ms);
    }
}

TEST(Search, WorstCaseClusterIsMaxOverDevices)
{
    // All feasible candidates must satisfy the budget on EVERY device
    // of the cluster, and best_worst_case maximizes the accuracy
    // proxy among them.
    search::SearchConfig cfg = smallConfig(42, 4);
    // Four devices tighten the worst case; widen the budget so the
    // front is non-empty (everything below is deterministic).
    cfg.budget_ms = 200.0;
    serve::PredictionService service(testRegistry(), testDeviceTable());
    const search::SearchResult result =
        search::ArchitectureSearch(service, cfg).run();
    ASSERT_FALSE(result.front.empty());
    double best_mmacs = 0.0;
    for (const search::Candidate &c : result.front) {
        ASSERT_EQ(c.latency_ms.size(), cfg.devices.size());
        double worst = 0.0;
        for (double ms : c.latency_ms) {
            EXPECT_LE(ms, cfg.budget_ms);
            worst = std::max(worst, ms);
        }
        EXPECT_EQ(worst, c.worst_latency_ms);
        best_mmacs = std::max(best_mmacs, c.mmacs);
    }
    const std::string report =
        search::renderSearchReport(cfg, result);
    EXPECT_NE(report.find("\"best_worst_case\""), std::string::npos);
    EXPECT_EQ(result.log.size(), cfg.generations);
    EXPECT_EQ(result.log.back().front_size, result.front.size());
}

TEST(Search, SearchReusesCacheAcrossGenerations)
{
    // Elites are re-priced every generation; with a version-keyed
    // fingerprint cache those re-pricings must be hits, not computes.
    const search::SearchConfig cfg = smallConfig(7);
    serve::PredictionService service(testRegistry(), testDeviceTable());
    const search::SearchResult result =
        search::ArchitectureSearch(service, cfg).run();
    EXPECT_GT(result.cache.hits, 0u);
    EXPECT_EQ(result.cache.hits + result.cache.misses,
              result.candidates_evaluated * cfg.devices.size());
    EXPECT_EQ(result.candidates_rejected, 0u);
    EXPECT_EQ(result.candidates_evaluated,
              cfg.population * cfg.generations);
}

TEST(Search, MutationFuzzAlwaysPassesVerifier)
{
    // >= 200 mutation steps across seeds: every mutated genome must
    // validate, build, and pass GraphVerifier after quantization —
    // no malformed candidate can ever reach the cost model.
    const dnn::SearchSpace space;
    std::size_t mutations = 0;
    std::set<std::string> shapes;
    for (std::uint64_t seed = 0; seed < 8; ++seed) {
        Rng rng(seed * 7919 + 1);
        dnn::ArchGenome genome = dnn::sampleGenome(space, rng);
        for (std::size_t step = 0; step < 30; ++step) {
            genome = search::mutateGenome(genome, space, rng);
            ++mutations;
            ASSERT_NO_THROW(dnn::validateGenome(genome, space));
            const dnn::Graph g =
                dnn::buildGenome(genome, space, "fuzz");
            ASSERT_NO_THROW(
                verify::verifyGraphOrThrow(g, "mutation-fuzz"));
            ASSERT_NO_THROW(verify::verifyGraphOrThrow(
                dnn::quantize(g), "mutation-fuzz-int8"));
            shapes.insert(dnn::formatGenome(genome));
        }
    }
    EXPECT_GE(mutations, 200u);
    // The operator set actually moves through the space.
    EXPECT_GT(shapes.size(), mutations / 4);
}

TEST(Search, CrossoverFuzzAlwaysPassesVerifier)
{
    const dnn::SearchSpace space;
    for (std::uint64_t seed = 0; seed < 5; ++seed) {
        Rng rng(seed * 104729 + 3);
        dnn::ArchGenome a = dnn::sampleGenome(space, rng);
        dnn::ArchGenome b = dnn::sampleGenome(space, rng);
        for (std::size_t step = 0; step < 20; ++step) {
            const dnn::ArchGenome child =
                search::crossoverGenomes(a, b, space, rng);
            ASSERT_NO_THROW(dnn::validateGenome(child, space));
            ASSERT_NO_THROW(verify::verifyGraphOrThrow(
                dnn::buildGenome(child, space, "xfuzz"),
                "crossover-fuzz"));
            a = b;
            b = child;
        }
    }
}

TEST(Search, OperatorsAreDeterministic)
{
    const dnn::SearchSpace space;
    Rng r1(99), r2(99);
    const dnn::ArchGenome g1 = dnn::sampleGenome(space, r1);
    const dnn::ArchGenome g2 = dnn::sampleGenome(space, r2);
    EXPECT_EQ(g1, g2);
    const dnn::ArchGenome m1 = search::mutateGenome(g1, space, r1);
    const dnn::ArchGenome m2 = search::mutateGenome(g2, space, r2);
    EXPECT_EQ(m1, m2);
    EXPECT_EQ(dnn::formatGenome(m1), dnn::formatGenome(m2));
    const dnn::Graph b1 = dnn::buildGenome(m1, space, "same");
    const dnn::Graph b2 = dnn::buildGenome(m2, space, "same");
    EXPECT_EQ(dnn::graphFingerprint(b1), dnn::graphFingerprint(b2));
}

TEST(Search, RepairIsIdempotentAndInBounds)
{
    const dnn::SearchSpace space;
    dnn::ArchGenome genome;
    genome.stem_channels = 13;          // not a multiple of 8
    genome.head_channels = -5;          // negative
    dnn::StageGene sg;
    sg.channels = 10000;                // over max_channels
    sg.kernel = 4;                      // even
    sg.blocks.assign(9, dnn::BlockGene{}); // over max blocks
    sg.blocks[0].expansion = 0;         // under 1
    genome.stages.assign(11, sg);       // over max stages
    search::repairGenome(genome, space);
    ASSERT_NO_THROW(dnn::validateGenome(genome, space));
    EXPECT_LE(genome.stages.size(),
              static_cast<std::size_t>(space.max_stages));
    for (const dnn::StageGene &s : genome.stages)
        EXPECT_LE(s.blocks.size(),
                  static_cast<std::size_t>(space.max_blocks_per_stage));
    dnn::ArchGenome again = genome;
    search::repairGenome(again, space);
    EXPECT_EQ(again, genome);
}

TEST(Search, ConfigValidationRejectsBadConfigs)
{
    serve::PredictionService service(testRegistry(), testDeviceTable());
    const auto expectThrow = [&](search::SearchConfig cfg) {
        EXPECT_THROW(search::validateSearchConfig(cfg, service),
                     GcmError);
    };
    search::SearchConfig ok = smallConfig(1);
    EXPECT_NO_THROW(search::validateSearchConfig(ok, service));

    search::SearchConfig bad = ok;
    bad.budget_ms = 0.0;
    expectThrow(bad);
    bad = ok;
    bad.devices.clear();
    expectThrow(bad);
    bad = ok;
    bad.devices.push_back("no-such-device");
    expectThrow(bad);
    bad = ok;
    bad.elite = bad.population;
    expectThrow(bad);
    bad = ok;
    bad.population = 1;
    expectThrow(bad);
    bad = ok;
    bad.generations = 0;
    expectThrow(bad);
    bad = ok;
    bad.tournament = 0;
    expectThrow(bad);
    bad = ok;
    bad.crossover_probability = 1.5;
    expectThrow(bad);

    // No servable model -> rejected up front.
    serve::ModelRegistry empty;
    serve::PredictionService no_model(empty, testDeviceTable());
    EXPECT_THROW(search::validateSearchConfig(ok, no_model), GcmError);
}

} // namespace

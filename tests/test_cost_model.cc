/**
 * @file
 * Unit tests for the SignatureCostModel public API.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>

#include "core/cost_model.hh"
#include "dnn/generator.hh"
#include "dnn/quantize.hh"
#include "ml/metrics.hh"
#include "testing_support.hh"
#include "util/error.hh"

using namespace gcm;
using namespace gcm::core;

namespace
{

/** Latency matrix over all devices of the small context. */
std::vector<std::vector<double>>
allLatencies(const ExperimentContext &ctx)
{
    std::vector<std::size_t> devs(ctx.fleet().size());
    for (std::size_t i = 0; i < devs.size(); ++i)
        devs[i] = i;
    return ctx.latencyMatrix(devs);
}

} // namespace

TEST(CostModel, TrainAndPredictInRange)
{
    const auto &ctx = gcmtest::smallContext();
    SignatureCostModel::Config cfg;
    cfg.gbt = gcmtest::fastGbt();
    const auto model =
        SignatureCostModel::train(ctx.suite(), allLatencies(ctx), cfg);
    EXPECT_EQ(model.signature().size(), 10u);
    EXPECT_EQ(model.signatureNames().size(), 10u);

    // Predict a non-signature network on device 0.
    std::vector<double> sig_lat;
    for (std::size_t s : model.signature())
        sig_lat.push_back(ctx.latencyMs(0, s));
    std::size_t probe = 0;
    while (std::find(model.signature().begin(), model.signature().end(),
                     probe)
           != model.signature().end()) {
        ++probe;
    }
    const double pred =
        model.predictMs(ctx.suite()[probe], sig_lat);
    const double actual = ctx.latencyMs(0, probe);
    EXPECT_GT(pred, 0.0);
    EXPECT_NEAR(pred, actual, 0.8 * actual + 10.0);
}

TEST(CostModel, AccurateAcrossDevicesAndNetworks)
{
    const auto &ctx = gcmtest::smallContext();
    SignatureCostModel::Config cfg;
    cfg.gbt = gcmtest::fastGbt();
    const auto model =
        SignatureCostModel::train(ctx.suite(), allLatencies(ctx), cfg);
    std::vector<double> y_true, y_pred;
    for (std::size_t d = 0; d < ctx.fleet().size(); ++d) {
        std::vector<double> sig_lat;
        for (std::size_t s : model.signature())
            sig_lat.push_back(ctx.latencyMs(d, s));
        for (std::size_t n = 0; n < ctx.numNetworks(); ++n) {
            y_true.push_back(ctx.latencyMs(d, n));
            y_pred.push_back(model.predictMs(ctx.suite()[n], sig_lat));
        }
    }
    // Training-set fit; strong, subject to session noise.
    EXPECT_GT(ml::r2Score(y_true, y_pred), 0.8);
}

TEST(CostModel, PredictsUnseenNetwork)
{
    const auto &ctx = gcmtest::smallContext();
    SignatureCostModel::Config cfg;
    cfg.gbt = gcmtest::fastGbt();
    const auto model =
        SignatureCostModel::train(ctx.suite(), allLatencies(ctx), cfg);
    // Brand-new random network, never in the training suite.
    dnn::RandomNetworkGenerator gen(dnn::SearchSpace{}, 987);
    const dnn::Graph fresh = dnn::quantize(gen.generate("fresh"));
    std::vector<double> sig_lat;
    for (std::size_t s : model.signature())
        sig_lat.push_back(ctx.latencyMs(0, s));
    EXPECT_GT(model.predictMs(fresh, sig_lat), 0.0);
}

TEST(CostModel, SelectionMethodIsConfigurable)
{
    const auto &ctx = gcmtest::smallContext();
    SignatureCostModel::Config cfg;
    cfg.gbt = gcmtest::fastGbt();
    cfg.method = SignatureMethod::RandomSampling;
    cfg.selection.size = 5;
    const auto model =
        SignatureCostModel::train(ctx.suite(), allLatencies(ctx), cfg);
    EXPECT_EQ(model.signature().size(), 5u);
}

TEST(CostModel, WrongSignatureLengthThrows)
{
    const auto &ctx = gcmtest::smallContext();
    SignatureCostModel::Config cfg;
    cfg.gbt = gcmtest::fastGbt();
    const auto model =
        SignatureCostModel::train(ctx.suite(), allLatencies(ctx), cfg);
    EXPECT_THROW((void)model.predictMs(ctx.suite()[0], {1.0, 2.0}),
                 GcmError);
}

TEST(CostModel, RaggedLatencyMatrixThrows)
{
    const auto &ctx = gcmtest::smallContext();
    auto lat = allLatencies(ctx);
    lat[1].pop_back();
    EXPECT_THROW(
        (void)SignatureCostModel::train(ctx.suite(), lat,
                                        SignatureCostModel::Config{}),
        GcmError);
}

TEST(CostModel, MatrixNetworkCountMismatchThrows)
{
    const auto &ctx = gcmtest::smallContext();
    auto lat = allLatencies(ctx);
    lat.pop_back();
    EXPECT_THROW(
        (void)SignatureCostModel::train(ctx.suite(), lat,
                                        SignatureCostModel::Config{}),
        GcmError);
}

TEST(CostModel, AnchorNormalizationIsConfigurable)
{
    const auto &ctx = gcmtest::smallContext();
    SignatureCostModel::Config cfg;
    cfg.gbt = gcmtest::fastGbt();
    cfg.anchor_normalization = false;
    const auto raw =
        SignatureCostModel::train(ctx.suite(), allLatencies(ctx), cfg);
    cfg.anchor_normalization = true;
    const auto anchored =
        SignatureCostModel::train(ctx.suite(), allLatencies(ctx), cfg);
    std::vector<double> sig;
    for (std::size_t s : anchored.signature())
        sig.push_back(ctx.latencyMs(0, s));
    // Both predict something sane; they need not agree exactly.
    EXPECT_GT(raw.predictMs(ctx.suite()[12], sig), 0.0);
    EXPECT_GT(anchored.predictMs(ctx.suite()[12], sig), 0.0);
}

TEST(CostModel, AnchorFlagSurvivesSerialization)
{
    const auto &ctx = gcmtest::smallContext();
    SignatureCostModel::Config cfg;
    cfg.gbt = gcmtest::fastGbt();
    cfg.anchor_normalization = false;
    const auto model =
        SignatureCostModel::train(ctx.suite(), allLatencies(ctx), cfg);
    std::stringstream ss;
    model.serialize(ss);
    const auto loaded = SignatureCostModel::deserialize(ss);
    std::vector<double> sig;
    for (std::size_t s : model.signature())
        sig.push_back(ctx.latencyMs(1, s));
    EXPECT_DOUBLE_EQ(loaded.predictMs(ctx.suite()[14], sig),
                     model.predictMs(ctx.suite()[14], sig));
}

TEST(CostModel, PinnedSignatureBypassesSelection)
{
    const auto &ctx = gcmtest::smallContext();
    SignatureCostModel::Config cfg;
    cfg.selection.size = 4;
    cfg.gbt.n_estimators = 10;
    // An arbitrary signature no selection method would pick in this
    // order; train() must take it verbatim (retraining pipelines pin
    // the deployed signature this way — fleet/loop.hh).
    cfg.pinned_signature = {2, 0, 5};
    const auto model =
        SignatureCostModel::train(ctx.suite(), allLatencies(ctx), cfg);
    EXPECT_EQ(model.signature(), cfg.pinned_signature);
    ASSERT_EQ(model.signatureNames().size(), 3u);
    EXPECT_EQ(model.signatureNames()[0], ctx.networkNames()[2]);
    EXPECT_EQ(model.signatureNames()[1], ctx.networkNames()[0]);
    EXPECT_EQ(model.signatureNames()[2], ctx.networkNames()[5]);

    // Predictions work against the pinned set.
    std::vector<double> sig_lat;
    for (std::size_t s : model.signature())
        sig_lat.push_back(ctx.latencyMs(0, s));
    const double ms = model.predictMs(ctx.suite()[1], sig_lat);
    EXPECT_TRUE(std::isfinite(ms));
    EXPECT_GT(ms, 0.0);
}

TEST(CostModel, PinnedSignatureValidatesIndices)
{
    const auto &ctx = gcmtest::smallContext();
    SignatureCostModel::Config cfg;
    cfg.gbt.n_estimators = 5;
    cfg.pinned_signature = {0, ctx.suite().size()};
    EXPECT_THROW(
        SignatureCostModel::train(ctx.suite(), allLatencies(ctx), cfg),
        GcmError);
    cfg.pinned_signature = {1, 1};
    EXPECT_THROW(
        SignatureCostModel::train(ctx.suite(), allLatencies(ctx), cfg),
        GcmError);
    cfg.pinned_signature.clear();
    for (std::size_t i = 0; i < ctx.suite().size(); ++i)
        cfg.pinned_signature.push_back(i);
    EXPECT_THROW(
        SignatureCostModel::train(ctx.suite(), allLatencies(ctx), cfg),
        GcmError);
}

/**
 * @file
 * Unit tests for the characterization campaign orchestrator.
 */

#include <gtest/gtest.h>

#include "dnn/quantize.hh"
#include "dnn/zoo.hh"
#include <set>

#include "sim/campaign.hh"
#include "util/error.hh"

using namespace gcm::sim;
using namespace gcm::dnn;

namespace
{

std::vector<Graph>
smallSuite()
{
    return {buildZooModel("squeezenet_1.1"),
            buildZooModel("mobilenet_v3_small")};
}

} // namespace

TEST(Campaign, CoversEveryDeviceNetworkPair)
{
    const auto fleet = DeviceDatabase::standard(1, 8);
    CharacterizationCampaign campaign(fleet, LatencyModel{});
    const auto repo = campaign.run(smallSuite());
    EXPECT_EQ(repo.size(), 16u);
    for (const auto &d : fleet.devices()) {
        EXPECT_TRUE(repo.has(d.id, "squeezenet_1.1"));
        EXPECT_TRUE(repo.has(d.id, "mobilenet_v3_small"));
    }
}

TEST(Campaign, QuantizesFp32Inputs)
{
    // Passing fp32 graphs must work: the campaign quantizes on the
    // fly, mirroring the paper's pipeline.
    const auto fleet = DeviceDatabase::standard(1, 2);
    CharacterizationCampaign campaign(fleet, LatencyModel{});
    EXPECT_NO_THROW((void)campaign.run(smallSuite()));
}

TEST(Campaign, DeterministicForSeed)
{
    const auto fleet = DeviceDatabase::standard(1, 4);
    CampaignConfig cfg;
    cfg.noise_seed = 99;
    CharacterizationCampaign a(fleet, LatencyModel{}, cfg);
    CharacterizationCampaign b(fleet, LatencyModel{}, cfg);
    const auto ra = a.run(smallSuite());
    const auto rb = b.run(smallSuite());
    for (const auto &r : ra.records()) {
        EXPECT_DOUBLE_EQ(r.mean_ms,
                         rb.latencyMs(r.device_id, r.network));
    }
}

TEST(Campaign, DifferentDevicesGetDifferentLatencies)
{
    const auto fleet = DeviceDatabase::standard(1, 8);
    CharacterizationCampaign campaign(fleet, LatencyModel{});
    const auto repo = campaign.run(smallSuite());
    std::set<double> values;
    for (const auto &d : fleet.devices())
        values.insert(repo.latencyMs(d.id, "squeezenet_1.1"));
    EXPECT_EQ(values.size(), 8u);
}

TEST(Campaign, MeasureOnDeviceAddsSingleRecord)
{
    const auto fleet = DeviceDatabase::standard(1, 3);
    CharacterizationCampaign campaign(fleet, LatencyModel{});
    MeasurementRepository repo;
    const Graph g = quantize(buildZooModel("squeezenet_1.1"));
    campaign.measureOnDevice(g, fleet.device(2), repo);
    EXPECT_EQ(repo.size(), 1u);
    EXPECT_TRUE(repo.has(fleet.device(2).id, "squeezenet_1.1"));
}

TEST(Campaign, InvalidConfigRaisesGcmError)
{
    const auto fleet = DeviceDatabase::standard(1, 2);
    CampaignConfig cfg;
    cfg.runs_per_network = 0;
    EXPECT_THROW(CharacterizationCampaign(fleet, LatencyModel{}, cfg),
                 gcm::GcmError);
    cfg = CampaignConfig{};
    cfg.noise.run_jitter_sigma = -1.0;
    EXPECT_THROW(CharacterizationCampaign(fleet, LatencyModel{}, cfg),
                 gcm::GcmError);
    cfg = CampaignConfig{};
    cfg.noise.outlier_min = 5.0;
    cfg.noise.outlier_max = 2.0;
    EXPECT_THROW(CharacterizationCampaign(fleet, LatencyModel{}, cfg),
                 gcm::GcmError);
}

TEST(Campaign, ConfigurableRunCount)
{
    const auto fleet = DeviceDatabase::standard(1, 2);
    CampaignConfig cfg;
    cfg.runs_per_network = 5;
    CharacterizationCampaign campaign(fleet, LatencyModel{}, cfg);
    const auto repo = campaign.run(smallSuite());
    for (const auto &r : repo.records())
        EXPECT_EQ(r.runs, 5);
}

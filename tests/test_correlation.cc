/**
 * @file
 * Unit tests for Pearson/Spearman correlation.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "stats/correlation.hh"

using namespace gcm::stats;

TEST(Pearson, PerfectPositive)
{
    EXPECT_NEAR(pearson({1, 2, 3}, {2, 4, 6}), 1.0, 1e-12);
}

TEST(Pearson, PerfectNegative)
{
    EXPECT_NEAR(pearson({1, 2, 3}, {6, 4, 2}), -1.0, 1e-12);
}

TEST(Pearson, ZeroVarianceGivesZero)
{
    EXPECT_DOUBLE_EQ(pearson({1, 1, 1}, {1, 2, 3}), 0.0);
}

TEST(Pearson, KnownValue)
{
    // Hand-computed: r of {1,2,3,4,5} vs {2,1,4,3,5} = 0.8.
    EXPECT_NEAR(pearson({1, 2, 3, 4, 5}, {2, 1, 4, 3, 5}), 0.8, 1e-12);
}

TEST(Ranks, SimpleOrdering)
{
    const auto r = ranks({30, 10, 20});
    EXPECT_DOUBLE_EQ(r[0], 3.0);
    EXPECT_DOUBLE_EQ(r[1], 1.0);
    EXPECT_DOUBLE_EQ(r[2], 2.0);
}

TEST(Ranks, TiesGetAverageRank)
{
    const auto r = ranks({5, 5, 1});
    EXPECT_DOUBLE_EQ(r[0], 2.5);
    EXPECT_DOUBLE_EQ(r[1], 2.5);
    EXPECT_DOUBLE_EQ(r[2], 1.0);
}

TEST(Spearman, MonotoneNonlinearIsOne)
{
    // Spearman sees through monotone transforms; Pearson does not.
    const std::vector<double> x{1, 2, 3, 4, 5};
    std::vector<double> y;
    for (double v : x)
        y.push_back(std::exp(v));
    EXPECT_NEAR(spearman(x, y), 1.0, 1e-12);
    EXPECT_LT(pearson(x, y), 1.0);
}

TEST(Spearman, ReversedIsMinusOne)
{
    EXPECT_NEAR(spearman({1, 2, 3, 4}, {8, 6, 4, 2}), -1.0, 1e-12);
}

TEST(SpearmanMatrix, SymmetricWithUnitDiagonal)
{
    const std::vector<std::vector<double>> vars = {
        {1, 2, 3, 4}, {2, 1, 4, 3}, {4, 3, 2, 1}};
    const auto rho = spearmanMatrix(vars);
    ASSERT_EQ(rho.size(), 3u);
    for (std::size_t i = 0; i < 3; ++i) {
        EXPECT_DOUBLE_EQ(rho[i][i], 1.0);
        for (std::size_t j = 0; j < 3; ++j)
            EXPECT_DOUBLE_EQ(rho[i][j], rho[j][i]);
    }
    EXPECT_NEAR(rho[0][2], -1.0, 1e-12);
}

/** Correlation is invariant to affine transforms with positive scale. */
class AffineInvariance : public ::testing::TestWithParam<double>
{};

TEST_P(AffineInvariance, PearsonInvariant)
{
    const double scale = GetParam();
    const std::vector<double> x{1, 5, 2, 8, 3};
    const std::vector<double> y{2, 3, 7, 1, 9};
    std::vector<double> y2;
    for (double v : y)
        y2.push_back(scale * v + 11.0);
    EXPECT_NEAR(pearson(x, y), pearson(x, y2), 1e-10);
    EXPECT_NEAR(spearman(x, y), spearman(x, y2), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Scales, AffineInvariance,
                         ::testing::Values(0.1, 1.0, 3.5, 1000.0));

/**
 * @file
 * Unit tests for the layer-wise network encoder.
 */

#include <gtest/gtest.h>

#include "core/net_encoder.hh"
#include "dnn/quantize.hh"
#include "dnn/zoo.hh"
#include "util/error.hh"

using namespace gcm;
using namespace gcm::core;
using namespace gcm::dnn;

namespace
{

Graph
tinyNet()
{
    GraphBuilder b("tiny", TensorShape{1, 8, 8, 3});
    b.relu(b.conv2d(b.input(), 16, 3, 2, 1));
    return b.build();
}

} // namespace

TEST(NetEncoder, WidthIsLayersTimesPerLayer)
{
    NetworkEncoder enc(10);
    EXPECT_EQ(enc.maxLayers(), 10u);
    EXPECT_EQ(enc.numFeatures(), 10u * enc.featuresPerLayer());
    EXPECT_EQ(enc.featureNames().size(), enc.numFeatures());
}

TEST(NetEncoder, FitsDeepestNetworkOfSuite)
{
    const std::vector<Graph> suite = {tinyNet(),
                                      buildZooModel("squeezenet_1.1")};
    NetworkEncoder enc(suite);
    // SqueezeNet 1.1 has far more than tiny's 2 encodable nodes.
    EXPECT_EQ(enc.maxLayers(),
              buildZooModel("squeezenet_1.1").numNodes() - 1);
}

TEST(NetEncoder, EncodesOpOneHotAndParams)
{
    NetworkEncoder enc(4);
    const Graph g = tinyNet();
    const auto v = enc.encode(g);
    ASSERT_EQ(v.size(), enc.numFeatures());
    const std::size_t fpl = enc.featuresPerLayer();
    // Layer 0: Conv2d one-hot at position kind-1 = 0.
    EXPECT_FLOAT_EQ(v[0], 1.0f);
    const std::size_t onehot = kNumOpKinds - 1;
    // Params: in_h=8, in_c=3, out_h=4, out_c=16, k=3, s=2, p=1.
    EXPECT_FLOAT_EQ(v[onehot + 0], 8.0f);
    EXPECT_FLOAT_EQ(v[onehot + 1], 3.0f);
    EXPECT_FLOAT_EQ(v[onehot + 2], 4.0f);
    EXPECT_FLOAT_EQ(v[onehot + 3], 16.0f);
    EXPECT_FLOAT_EQ(v[onehot + 4], 3.0f);
    EXPECT_FLOAT_EQ(v[onehot + 5], 2.0f);
    EXPECT_FLOAT_EQ(v[onehot + 6], 1.0f);
    // Layer 1 is the ReLU.
    const auto relu_pos = static_cast<std::size_t>(OpKind::ReLU) - 1;
    EXPECT_FLOAT_EQ(v[fpl + relu_pos], 1.0f);
}

TEST(NetEncoder, PadsWithZeros)
{
    NetworkEncoder enc(6);
    const auto v = enc.encode(tinyNet());
    const std::size_t fpl = enc.featuresPerLayer();
    for (std::size_t i = 2 * fpl; i < v.size(); ++i)
        EXPECT_FLOAT_EQ(v[i], 0.0f);
}

TEST(NetEncoder, ExactlyOneHotPerEncodedLayer)
{
    NetworkEncoder enc(200);
    const Graph g = quantize(buildZooModel("mobilenet_v2_1.0"));
    const auto v = enc.encode(g);
    const std::size_t fpl = enc.featuresPerLayer();
    const std::size_t onehot = kNumOpKinds - 1;
    const std::size_t layers = g.numNodes() - 1;
    for (std::size_t l = 0; l < layers; ++l) {
        float sum = 0.0f;
        for (std::size_t k = 0; k < onehot; ++k)
            sum += v[l * fpl + k];
        EXPECT_FLOAT_EQ(sum, 1.0f) << "layer " << l;
    }
}

TEST(NetEncoder, FusedActivationEncoded)
{
    NetworkEncoder enc(10);
    GraphBuilder b("t", TensorShape{1, 8, 8, 3});
    b.relu6(b.batchNorm(b.conv2d(b.input(), 8, 3, 1, 1)));
    const Graph q = quantize(b.build());
    const auto v = enc.encode(q);
    const std::size_t onehot = kNumOpKinds - 1;
    EXPECT_FLOAT_EQ(v[onehot + 8],
                    static_cast<float>(FusedActivation::ReLU6));
}

TEST(NetEncoder, TooDeepNetworkThrows)
{
    NetworkEncoder enc(1);
    EXPECT_THROW((void)enc.encode(tinyNet()), GcmError);
}

TEST(NetEncoder, DifferentNetworksDifferentEncodings)
{
    NetworkEncoder enc(200);
    const auto a = enc.encode(quantize(buildZooModel("mnasnet_a1")));
    const auto b = enc.encode(quantize(buildZooModel("mnasnet_b1")));
    EXPECT_NE(a, b);
}

TEST(NetEncoder, EncodingIsDeterministic)
{
    NetworkEncoder enc(200);
    const Graph g = quantize(buildZooModel("fbnet_a"));
    EXPECT_EQ(enc.encode(g), enc.encode(g));
}

TEST(NetEncoder, ZeroMaxLayersAborts)
{
    EXPECT_DEATH(NetworkEncoder(0), "zero max_layers");
}

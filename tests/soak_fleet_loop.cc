/**
 * @file
 * Closed-loop soak for the fleet controller, run in the TSan lane of
 * tools/check.sh (and as a ctest integration target).
 *
 * Runs the full streaming-campaign → retrain → canary loop with an
 * injected-regression retrain in the middle: retrain ordinal 1's
 * training matrix is deterministically corrupted, so the canary gate
 * must publish the bootstrap model, hot-swap the sabotaged candidate
 * in, catch the clean-holdout R² regression, auto-rollback + retire
 * it, and then accept the following clean retrain — all while the
 * multi-worker front end serves traffic between rounds (TSan watches
 * the worker threads race over the shared cache and the pinned
 * snapshots across the swaps). Asserts the acceptance criteria:
 *
 *   - decisions are exactly bootstrap, rolled_back, published
 *   - the rolled-back version is retired (unresolvable, unlisted)
 *   - the final active version is the last clean candidate
 *   - per-round serving accounting is exact (ok+errors+shed==offered)
 *   - the gcm-fleet/v1 report is byte-identical across two runs
 *
 * Plain main (no gtest): exits 0 on success, 1 with a diagnostic on
 * the first violated invariant.
 */

#include <cstdio>
#include <string>

#include "fleet/loop.hh"

using namespace gcm;

namespace
{

int failures = 0;

void
check(bool ok, const std::string &what)
{
    if (!ok) {
        std::fprintf(stderr, "soak_fleet_loop: FAIL: %s\n",
                     what.c_str());
        ++failures;
    }
}

fleet::FleetLoopConfig
soakConfig()
{
    fleet::FleetLoopConfig cfg;
    cfg.fleet.fleet_size = 200;
    cfg.fleet.seed_fleet_size = 60;
    cfg.rounds = 6;
    cfg.devices_per_round = 10;
    cfg.fault_rate = 0.15;
    cfg.num_random_networks = 3;
    cfg.campaign.runs_per_network = 3;
    cfg.retrain.cadence_rounds = 2;
    cfg.retrain.min_train_devices = 4;
    cfg.retrain.selection.size = 6;
    cfg.retrain.gbt.n_estimators = 25;
    cfg.canary.max_eval_devices = 8;
    cfg.traffic.requests_per_round = 48;
    cfg.traffic.workers = 4;
    cfg.sabotage_retrains = {1};
    return cfg;
}

} // namespace

int
main()
{
    const fleet::FleetLoopConfig cfg = soakConfig();

    fleet::FleetController controller(cfg);
    const fleet::FleetResult result = controller.run();
    const std::string report = fleet::renderFleetReport(cfg, result);

    check(result.retrains.size() == 3,
          "expected 3 retrains, got "
              + std::to_string(result.retrains.size()));
    if (result.retrains.size() == 3) {
        check(result.retrains[0].decision
                  == fleet::CanaryDecision::Bootstrap,
              "retrain 0 must bootstrap");
        check(result.retrains[1].decision
                  == fleet::CanaryDecision::RolledBack,
              "sabotaged retrain 1 must roll back");
        check(result.retrains[1].candidate_r2
                  < result.retrains[1].incumbent_r2
                        - cfg.canary.max_r2_regression,
              "rolled-back candidate must show a real R2 regression");
        check(result.retrains[2].decision
                  == fleet::CanaryDecision::Published,
              "clean retrain 2 must publish");

        const auto bad = result.retrains[1].version;
        check(controller.registry().snapshot(bad) == nullptr,
              "rolled-back version must be retired");
        check(result.final_version == result.retrains[2].version,
              "final active version must be the clean candidate");
    }
    check(result.publishes == 2 && result.rollbacks == 1,
          "expected 2 publishes + 1 rollback, got "
              + std::to_string(result.publishes) + "+"
              + std::to_string(result.rollbacks));

    std::size_t served_rounds = 0;
    for (const auto &r : result.rounds) {
        if (!r.serve.active)
            continue;
        ++served_rounds;
        check(r.serve.ok + r.serve.errors + r.serve.tier_shed
                  == r.serve.offered,
              "round " + std::to_string(r.round)
                  + ": serve accounting must be exact");
        check(r.serve.offered == cfg.traffic.requests_per_round,
              "round " + std::to_string(r.round)
                  + ": offered must match the configured rate");
    }
    check(served_rounds >= 4,
          "front end must serve once a model is live");
    check(result.served_total > 0, "goodput must be positive");

    // Determinism: an identical second loop must reproduce the
    // report byte for byte (same process, warm allocator — the
    // thread-count half of the contract lives in test_fleet.cc).
    std::string report2;
    (void)fleet::runFleetLoop(cfg, &report2);
    check(report == report2, "report must be reproducible");

    if (failures == 0) {
        std::printf("soak_fleet_loop: OK: %zu rounds, %zu served, "
                    "rollback drill passed\n",
                    result.rounds.size(), result.served_total);
        return 0;
    }
    std::fprintf(stderr, "soak_fleet_loop: %d failure(s)\n", failures);
    return 1;
}

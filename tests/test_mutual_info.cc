/**
 * @file
 * Unit tests for mutual-information estimation.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "stats/mutual_info.hh"
#include "util/rng.hh"

using namespace gcm::stats;
using gcm::Rng;

TEST(QuantileBins, EqualFrequency)
{
    std::vector<double> v;
    for (int i = 0; i < 100; ++i)
        v.push_back(i);
    const auto bins = quantileBins(v, 4);
    std::vector<int> counts(4, 0);
    for (std::size_t b : bins)
        ++counts[b];
    for (int c : counts)
        EXPECT_NEAR(c, 25, 2);
}

TEST(QuantileBins, ConstantInputAllSameBin)
{
    const auto bins = quantileBins(std::vector<double>(10, 3.0), 4);
    for (std::size_t b : bins)
        EXPECT_EQ(b, bins[0]);
}

TEST(DiscreteMi, IdenticalVariablesEqualsEntropy)
{
    // Uniform over 4 symbols: I(X;X) = H(X) = log 4.
    std::vector<std::size_t> x;
    for (int i = 0; i < 400; ++i)
        x.push_back(static_cast<std::size_t>(i % 4));
    EXPECT_NEAR(discreteMutualInformation(x, x, 4, 4), std::log(4.0),
                1e-9);
}

TEST(DiscreteMi, IndependentNearZero)
{
    Rng rng(5);
    std::vector<std::size_t> x, y;
    for (int i = 0; i < 20000; ++i) {
        x.push_back(static_cast<std::size_t>(rng.uniformInt(0, 3)));
        y.push_back(static_cast<std::size_t>(rng.uniformInt(0, 3)));
    }
    EXPECT_LT(discreteMutualInformation(x, y, 4, 4), 0.01);
}

TEST(DiscreteMi, Symmetric)
{
    Rng rng(7);
    std::vector<std::size_t> x, y;
    for (int i = 0; i < 500; ++i) {
        const auto v = static_cast<std::size_t>(rng.uniformInt(0, 3));
        x.push_back(v);
        y.push_back(rng.bernoulli(0.7) ? v : 3 - v);
    }
    EXPECT_NEAR(discreteMutualInformation(x, y, 4, 4),
                discreteMutualInformation(y, x, 4, 4), 1e-12);
}

TEST(HistogramMi, CorrelatedBeatsIndependent)
{
    Rng rng(9);
    std::vector<double> x, y_dep, y_ind;
    for (int i = 0; i < 3000; ++i) {
        const double v = rng.normal();
        x.push_back(v);
        y_dep.push_back(v + 0.1 * rng.normal());
        y_ind.push_back(rng.normal());
    }
    EXPECT_GT(histogramMutualInformation(x, y_dep),
              histogramMutualInformation(x, y_ind) + 0.5);
}

TEST(GaussianMi, MatchesAnalyticForBivariateGaussian)
{
    // I(X;Y) = -0.5 log(1 - rho^2) for a bivariate Gaussian.
    Rng rng(11);
    const double rho = 0.8;
    std::vector<double> x, y;
    for (int i = 0; i < 50000; ++i) {
        const double a = rng.normal(), b = rng.normal();
        x.push_back(a);
        y.push_back(rho * a + std::sqrt(1 - rho * rho) * b);
    }
    const GaussianMiEstimator est({x, y}, 1e-6);
    const double analytic = -0.5 * std::log(1 - rho * rho);
    EXPECT_NEAR(est.setMi({0}, {1}), analytic, 0.05);
}

TEST(GaussianMi, IndependentNearZero)
{
    Rng rng(13);
    std::vector<double> x, y;
    for (int i = 0; i < 20000; ++i) {
        x.push_back(rng.normal());
        y.push_back(rng.normal());
    }
    const GaussianMiEstimator est({x, y}, 1e-6);
    EXPECT_LT(est.setMi({0}, {1}), 0.01);
}

TEST(GaussianMi, MoreInformativeSetHasHigherMi)
{
    // z is explained jointly by x and y; {x, y} should carry more
    // information about z than {x} alone.
    Rng rng(17);
    std::vector<double> x, y, z;
    for (int i = 0; i < 20000; ++i) {
        const double a = rng.normal(), b = rng.normal();
        x.push_back(a);
        y.push_back(b);
        z.push_back(a + b + 0.3 * rng.normal());
    }
    const GaussianMiEstimator est({x, y, z}, 1e-6);
    EXPECT_GT(est.setMi({0, 1}, {2}), est.setMi({0}, {2}) + 0.1);
}

TEST(GaussianMi, NonNegative)
{
    Rng rng(19);
    std::vector<std::vector<double>> vars(5);
    for (auto &v : vars) {
        for (int i = 0; i < 200; ++i)
            v.push_back(rng.normal());
    }
    const GaussianMiEstimator est(vars);
    EXPECT_GE(est.setMi({0, 1}, {2, 3, 4}), 0.0);
}

/**
 * @file
 * Unit tests for the observability layer: registry semantics
 * (counters, gauges, fixed-bucket histograms), RAII span-tree
 * assembly including cross-thread parent inheritance, the off-by-
 * default contract, and the gcm-perf-report/v1 JSON emitter.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>

#include "obs/obs.hh"
#include "util/error.hh"
#include "util/parallel.hh"

#include "support_json.hh"

namespace
{

using namespace gcm;
using gcmtest::JsonValue;
using gcmtest::parseJson;

/** Fresh, enabled registry for the test body; disabled afterwards. */
class ObsTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        obs::setEnabled(true);
        obs::reset();
    }

    void
    TearDown() override
    {
        obs::reset();
        obs::setEnabled(false);
    }
};

const JsonValue *
findSpan(const JsonValue &spans, const std::string &name)
{
    for (const auto &s : spans.array) {
        if (s.at("name").str == name)
            return &s;
    }
    return nullptr;
}

TEST_F(ObsTest, DisabledCallsAreNoOps)
{
    obs::setEnabled(false);
    obs::counterAdd("c");
    obs::gaugeSet("g", 1.0);
    obs::histogramObserve("h", 1.0);
    {
        obs::TraceSpan span("s");
    }
    obs::setEnabled(true);
    const auto r = parseJson(obs::reportJson());
    EXPECT_TRUE(r.at("counters").object.empty());
    EXPECT_TRUE(r.at("gauges").object.empty());
    EXPECT_TRUE(r.at("histograms").object.empty());
    EXPECT_TRUE(r.at("spans").array.empty());
}

TEST_F(ObsTest, CountersAccumulate)
{
    obs::counterAdd("a");
    obs::counterAdd("a", 4);
    obs::counterAdd("b", 2);
    const auto r = parseJson(obs::reportJson());
    EXPECT_EQ(r.at("counters").at("a").number, 5.0);
    EXPECT_EQ(r.at("counters").at("b").number, 2.0);
}

TEST_F(ObsTest, GaugesKeepLatestValue)
{
    obs::gaugeSet("threads", 4.0);
    obs::gaugeSet("threads", 8.0);
    const auto r = parseJson(obs::reportJson());
    EXPECT_EQ(r.at("gauges").at("threads").number, 8.0);
}

TEST_F(ObsTest, HistogramBucketsObservations)
{
    obs::histogramObserve("lat", 0.0005); // bucket 0 (<= 0.001)
    obs::histogramObserve("lat", 0.5);    // bucket 3 (<= 1.0)
    obs::histogramObserve("lat", 1.0);    // bucket 3 (boundary)
    obs::histogramObserve("lat", 99999.0); // overflow bucket
    const auto r = parseJson(obs::reportJson());
    const auto &h = r.at("histograms").at("lat");
    ASSERT_EQ(h.at("bounds_ms").array.size(),
              obs::kNumHistogramBuckets - 1);
    ASSERT_EQ(h.at("counts").array.size(), obs::kNumHistogramBuckets);
    EXPECT_EQ(h.at("counts").array[0].number, 1.0);
    EXPECT_EQ(h.at("counts").array[3].number, 2.0);
    EXPECT_EQ(h.at("counts").array.back().number, 1.0);
    EXPECT_EQ(h.at("count").number, 4.0);
    EXPECT_NEAR(h.at("sum_ms").number, 100000.5005, 1e-6);
}

TEST_F(ObsTest, SpansAggregateByPath)
{
    for (int i = 0; i < 3; ++i) {
        obs::TraceSpan outer("outer");
        obs::TraceSpan inner("inner");
    }
    {
        // Same name at the top level is a different path node.
        obs::TraceSpan other("inner");
    }
    const auto r = parseJson(obs::reportJson());
    const auto &spans = r.at("spans");
    ASSERT_EQ(spans.array.size(), 2u);
    const JsonValue *outer = findSpan(spans, "outer");
    ASSERT_NE(outer, nullptr);
    EXPECT_EQ(outer->at("count").number, 3.0);
    EXPECT_GE(outer->at("total_ms").number, 0.0);
    ASSERT_EQ(outer->at("children").array.size(), 1u);
    EXPECT_EQ(outer->at("children").array[0].at("name").str, "inner");
    EXPECT_EQ(outer->at("children").array[0].at("count").number, 3.0);
    const JsonValue *top_inner = findSpan(spans, "inner");
    ASSERT_NE(top_inner, nullptr);
    EXPECT_EQ(top_inner->at("count").number, 1.0);
}

TEST_F(ObsTest, SpanParentScopeInheritsAcrossThreads)
{
    {
        obs::TraceSpan parent("batch");
        void *handle = obs::currentSpanHandle();
        std::thread worker([&] {
            obs::SpanParentScope scope(handle);
            obs::TraceSpan child("chunk");
        });
        worker.join();
    }
    const auto r = parseJson(obs::reportJson());
    const JsonValue *batch = findSpan(r.at("spans"), "batch");
    ASSERT_NE(batch, nullptr);
    ASSERT_EQ(batch->at("children").array.size(), 1u);
    EXPECT_EQ(batch->at("children").array[0].at("name").str, "chunk");
}

TEST_F(ObsTest, ParallelLoopsReportPoolCounters)
{
    setThreads(4);
    parallelFor(0, 64, 1, [](std::size_t) {});
    setThreads(1);
    const auto r = parseJson(obs::reportJson());
    EXPECT_EQ(r.at("counters").at("pool.batches").number, 1.0);
    EXPECT_EQ(r.at("counters").at("pool.chunks").number, 64.0);
    EXPECT_EQ(r.at("gauges").at("pool.threads").number, 4.0);
    // The per-thread breakdown must add back up to the total.
    double per_thread = 0.0;
    for (const auto &[name, value] : r.at("counters").object) {
        if (name.rfind("pool.thread.", 0) == 0)
            per_thread += value.number;
    }
    EXPECT_EQ(per_thread, 64.0);
}

TEST_F(ObsTest, ChunkSpansNestUnderSubmittingSpan)
{
    setThreads(4);
    {
        obs::TraceSpan grid("grid");
        parallelFor(0, 16, 1, [](std::size_t) {
            obs::TraceSpan item("item");
        });
    }
    setThreads(1);
    const auto r = parseJson(obs::reportJson());
    const JsonValue *grid = findSpan(r.at("spans"), "grid");
    ASSERT_NE(grid, nullptr);
    const JsonValue *item = findSpan(grid->at("children"), "item");
    ASSERT_NE(item, nullptr);
    EXPECT_EQ(item->at("count").number, 16.0);
}

TEST_F(ObsTest, JsonEscapesMetricNames)
{
    obs::counterAdd("weird \"name\"\n\\path");
    const auto r = parseJson(obs::reportJson());
    EXPECT_EQ(r.at("counters").at("weird \"name\"\n\\path").number, 1.0);
}

TEST_F(ObsTest, ReportHasSchemaTagAndAllSections)
{
    const auto r = parseJson(obs::reportJson());
    EXPECT_EQ(r.at("schema").str, "gcm-perf-report/v1");
    EXPECT_TRUE(r.at("counters").isObject());
    EXPECT_TRUE(r.at("gauges").isObject());
    EXPECT_TRUE(r.at("histograms").isObject());
    EXPECT_TRUE(r.at("spans").isArray());
}

TEST_F(ObsTest, WriteReportRoundTripsThroughFile)
{
    obs::counterAdd("c", 7);
    const std::string path = ::testing::TempDir() + "obs_report.json";
    obs::writeReport(path);
    std::ifstream is(path);
    ASSERT_TRUE(is.good());
    std::stringstream ss;
    ss << is.rdbuf();
    const auto r = parseJson(ss.str());
    EXPECT_EQ(r.at("counters").at("c").number, 7.0);
    std::remove(path.c_str());
}

TEST_F(ObsTest, WriteReportToBadPathThrows)
{
    EXPECT_THROW(obs::writeReport("/nonexistent-dir/report.json"),
                 GcmError);
}

TEST_F(ObsTest, ResetClearsEverything)
{
    obs::counterAdd("c");
    obs::gaugeSet("g", 1.0);
    obs::histogramObserve("h", 1.0);
    {
        obs::TraceSpan span("s");
    }
    obs::reset();
    const auto r = parseJson(obs::reportJson());
    EXPECT_TRUE(r.at("counters").object.empty());
    EXPECT_TRUE(r.at("gauges").object.empty());
    EXPECT_TRUE(r.at("histograms").object.empty());
    EXPECT_TRUE(r.at("spans").array.empty());
}

} // namespace

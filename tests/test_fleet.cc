/**
 * @file
 * Fleet closed-loop tests (DESIGN.md §15): synthesizer determinism,
 * config validation, the canary gate's publish/rollback decisions,
 * pinned-signature stability across retrains, and byte-identical
 * gcm-fleet/v1 reports at 1/2/8 threads while the front end serves
 * live traffic.
 */

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "fleet/loop.hh"
#include "fleet/synthesizer.hh"
#include "util/error.hh"
#include "util/parallel.hh"

using namespace gcm;

namespace
{

/** A loop small enough for CI, large enough to retrain twice. */
fleet::FleetLoopConfig
smallConfig()
{
    fleet::FleetLoopConfig cfg;
    cfg.fleet.fleet_size = 120;
    cfg.fleet.seed_fleet_size = 40;
    cfg.rounds = 4;
    cfg.devices_per_round = 8;
    cfg.fault_rate = 0.1;
    cfg.num_random_networks = 2;
    cfg.campaign.runs_per_network = 3;
    cfg.retrain.cadence_rounds = 2;
    cfg.retrain.min_train_devices = 4;
    cfg.retrain.selection.size = 6;
    cfg.retrain.gbt.n_estimators = 20;
    cfg.canary.max_eval_devices = 6;
    cfg.traffic.requests_per_round = 24;
    cfg.traffic.workers = 2;
    return cfg;
}

} // namespace

TEST(FleetSynthesizer, DeterministicUniqueAndSeedAnchored)
{
    fleet::FleetSynthConfig cfg;
    cfg.fleet_size = 250;
    cfg.seed_fleet_size = 105;
    const sim::DeviceDatabase a = fleet::synthesizeFleet(cfg);
    const sim::DeviceDatabase b = fleet::synthesizeFleet(cfg);
    ASSERT_EQ(a.size(), 250u);

    const sim::DeviceDatabase seeds = sim::DeviceDatabase::standard(
        cfg.seed_fleet_seed, cfg.seed_fleet_size);
    std::set<std::string> names;
    for (std::size_t i = 0; i < a.size(); ++i) {
        const sim::DeviceSpec &d = a.device(i);
        // Same config -> same fleet, device by device.
        EXPECT_EQ(d.model_name, b.device(i).model_name);
        EXPECT_DOUBLE_EQ(d.freq_ghz, b.device(i).freq_ghz);
        EXPECT_DOUBLE_EQ(d.hidden.thermal_sustain,
                         b.device(i).hidden.thermal_sustain);
        EXPECT_EQ(d.id, static_cast<std::int32_t>(i));
        EXPECT_TRUE(names.insert(d.model_name).second)
            << "duplicate model name " << d.model_name;
        // Variant keeps its seed device's chipset but jitters the
        // field-variable factors.
        const sim::DeviceSpec &seed = seeds.device(i % seeds.size());
        EXPECT_EQ(d.chipset_index, seed.chipset_index);
        EXPECT_EQ(d.model_name.rfind(seed.model_name, 0), 0u);
        EXPECT_GE(d.hidden.os_overhead, seed.hidden.os_overhead);
        EXPECT_LE(d.hidden.thermal_sustain, 1.0);
        EXPECT_GE(d.hidden.thermal_sustain, 0.05);
    }
}

TEST(FleetSynthesizer, GrowingTheFleetKeepsEarlierDevices)
{
    fleet::FleetSynthConfig small;
    small.fleet_size = 60;
    small.seed_fleet_size = 40;
    fleet::FleetSynthConfig big = small;
    big.fleet_size = 200;
    const sim::DeviceDatabase a = fleet::synthesizeFleet(small);
    const sim::DeviceDatabase b = fleet::synthesizeFleet(big);
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a.device(i).model_name, b.device(i).model_name);
        EXPECT_DOUBLE_EQ(a.device(i).freq_ghz, b.device(i).freq_ghz);
    }
}

TEST(FleetSynthesizer, ValidatesConfig)
{
    fleet::FleetSynthConfig cfg;
    cfg.fleet_size = 0;
    EXPECT_THROW(fleet::synthesizeFleet(cfg), GcmError);
    cfg = {};
    cfg.seed_fleet_size = 0;
    EXPECT_THROW(fleet::synthesizeFleet(cfg), GcmError);
    cfg = {};
    cfg.thermal_jitter = 0.5;
    EXPECT_THROW(fleet::synthesizeFleet(cfg), GcmError);
    cfg = {};
    cfg.freq_jitter = -0.1;
    EXPECT_THROW(fleet::synthesizeFleet(cfg), GcmError);
}

TEST(FleetConfig, ValidationRejectsDegenerateParameters)
{
    // Retrain cadence and coverage.
    fleet::FleetLoopConfig cfg = smallConfig();
    cfg.retrain.cadence_rounds = 0;
    EXPECT_THROW(cfg.validate(), GcmError);
    cfg = smallConfig();
    cfg.retrain.min_coverage = 0.0;
    EXPECT_THROW(cfg.validate(), GcmError);
    cfg = smallConfig();
    cfg.retrain.min_coverage = 1.5;
    EXPECT_THROW(cfg.validate(), GcmError);
    cfg = smallConfig();
    cfg.retrain.max_train_devices = 1;
    cfg.retrain.min_train_devices = 4;
    EXPECT_THROW(cfg.validate(), GcmError);

    // Canary holdout fraction must be a real split.
    cfg = smallConfig();
    cfg.canary.holdout_fraction = 0.0;
    EXPECT_THROW(cfg.validate(), GcmError);
    cfg = smallConfig();
    cfg.canary.holdout_fraction = 1.0;
    EXPECT_THROW(cfg.validate(), GcmError);
    cfg = smallConfig();
    cfg.canary.max_r2_regression = -0.5;
    EXPECT_THROW(cfg.validate(), GcmError);

    // Serving plan needs an explicit worker count.
    cfg = smallConfig();
    cfg.traffic.workers = 0;
    EXPECT_THROW(cfg.validate(), GcmError);
    cfg = smallConfig();
    cfg.traffic.load_factor = 0.0;
    EXPECT_THROW(cfg.validate(), GcmError);

    cfg = smallConfig();
    cfg.rounds = 0;
    EXPECT_THROW(cfg.validate(), GcmError);
    cfg = smallConfig();
    cfg.fault_rate = 1.0;
    EXPECT_THROW(cfg.validate(), GcmError);

    EXPECT_NO_THROW(smallConfig().validate());
}

TEST(FleetLoop, BootstrapsRetrainsAndServes)
{
    const fleet::FleetLoopConfig cfg = smallConfig();
    fleet::FleetController controller(cfg);
    const fleet::FleetResult result = controller.run();

    ASSERT_EQ(result.rounds.size(), 4u);
    ASSERT_EQ(result.retrains.size(), 2u);
    EXPECT_EQ(result.retrains[0].decision,
              fleet::CanaryDecision::Bootstrap);
    EXPECT_GT(result.retrains[0].candidate_r2, 0.5);
    EXPECT_EQ(result.publishes, 2u);
    EXPECT_EQ(result.rollbacks, 0u);
    EXPECT_FALSE(result.signature.empty());

    // No serving before the first publish; live traffic after.
    EXPECT_FALSE(result.rounds[0].serve.active);
    for (std::size_t r = 2; r < result.rounds.size(); ++r) {
        EXPECT_TRUE(result.rounds[r].serve.active);
        EXPECT_EQ(result.rounds[r].serve.offered, 24u);
        EXPECT_EQ(result.rounds[r].serve.ok
                      + result.rounds[r].serve.errors
                      + result.rounds[r].serve.tier_shed,
                  24u);
    }
    EXPECT_GT(result.served_total, 0u);

    // The streaming repository accumulated every accepted upload.
    std::size_t appended = 0;
    for (const auto &r : result.rounds)
        appended += r.records_appended;
    EXPECT_GT(appended, 0u);
    EXPECT_LE(controller.repository().size(), appended);
    EXPECT_EQ(result.repo_size, controller.repository().size());
    EXPECT_GT(result.sim_total_ms, 0.0);
}

TEST(FleetLoop, CanaryRollsBackSabotagedRetrainThenRecovers)
{
    fleet::FleetLoopConfig cfg = smallConfig();
    cfg.rounds = 6;
    cfg.sabotage_retrains = {1};
    fleet::FleetController controller(cfg);
    const fleet::FleetResult result = controller.run();

    ASSERT_EQ(result.retrains.size(), 3u);
    EXPECT_EQ(result.retrains[0].decision,
              fleet::CanaryDecision::Bootstrap);
    EXPECT_EQ(result.retrains[1].decision,
              fleet::CanaryDecision::RolledBack);
    EXPECT_TRUE(result.retrains[1].sabotaged);
    EXPECT_LT(result.retrains[1].candidate_r2,
              result.retrains[1].incumbent_r2
                  - cfg.canary.max_r2_regression);
    EXPECT_EQ(result.retrains[2].decision,
              fleet::CanaryDecision::Published);
    EXPECT_EQ(result.publishes, 2u);
    EXPECT_EQ(result.rollbacks, 1u);

    // The regressed candidate was retired: the registry no longer
    // resolves its version, and it is absent from the version list.
    const auto bad = result.retrains[1].version;
    EXPECT_EQ(controller.registry().snapshot(bad), nullptr);
    for (auto v : result.registry_versions)
        EXPECT_NE(v, bad);
    EXPECT_EQ(result.final_version, result.retrains[2].version);
}

TEST(FleetLoop, PinnedSignatureSurvivesRetrains)
{
    const fleet::FleetLoopConfig cfg = smallConfig();
    fleet::FleetController controller(cfg);
    const fleet::FleetResult result = controller.run();
    ASSERT_GE(result.publishes, 2u);
    const auto active = controller.registry().active();
    ASSERT_TRUE(active);
    // The second published model must serve the signature the first
    // one deployed — fielded devices already measured it.
    EXPECT_EQ(active.snapshot->costModel().signatureNames(),
              result.signature);
    EXPECT_EQ(result.signature.size(), cfg.retrain.selection.size);
}

TEST(FleetLoop, ReportByteIdenticalAt128Threads)
{
    fleet::FleetLoopConfig cfg = smallConfig();
    cfg.rounds = 3;
    const std::size_t restore = numThreads();
    std::vector<std::string> reports;
    for (std::size_t t : {1u, 2u, 8u}) {
        setThreads(t);
        std::string report;
        (void)fleet::runFleetLoop(cfg, &report);
        reports.push_back(std::move(report));
    }
    setThreads(restore);
    ASSERT_EQ(reports.size(), 3u);
    EXPECT_EQ(reports[0], reports[1]);
    EXPECT_EQ(reports[0], reports[2]);
    // Live serving happened inside the compared reports.
    EXPECT_NE(reports[0].find("\"serve\": {\"offered\": 24"),
              std::string::npos);
    EXPECT_NE(reports[0].find("\"schema\": \"gcm-fleet/v1\""),
              std::string::npos);
}

TEST(FleetLoop, RunIsSingleShot)
{
    fleet::FleetLoopConfig cfg = smallConfig();
    cfg.rounds = 1;
    cfg.traffic.requests_per_round = 0;
    fleet::FleetController controller(cfg);
    (void)controller.run();
    EXPECT_THROW(controller.run(), GcmError);
}

/**
 * @file
 * Tests for the gcm-lint source analyzer: lexer behaviour, each of
 * the six built-in checks against a seeded-violation fixture under
 * tests/lint_fixtures/ (including suppression-comment and
 * allowlisted false-positive cases), registry semantics and the
 * gcm-lint/v1 JSON report. The live-tree zero-findings gate is a
 * separate ctest entry (lint_tree) that runs the gcm-lint binary
 * over src/, tools/ and tests/.
 */

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "lint/check.hh"
#include "lint/lexer.hh"
#include "util/error.hh"
#include "util/json.hh"

using namespace gcm;
using lint::CheckRegistry;
using lint::Finding;
using lint::LintReport;
using lint::Severity;
using lint::SourceFile;
using lint::TokKind;

namespace
{

std::string
fixturePath(const std::string &name)
{
    return std::string(GCM_LINT_FIXTURE_DIR) + "/" + name;
}

std::string
readFile(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    EXPECT_TRUE(is.good()) << "cannot open " << path;
    std::ostringstream oss;
    oss << is.rdbuf();
    return oss.str();
}

/** Run every registered check over one already-lexed file. */
LintReport
runAll(const SourceFile &file)
{
    LintReport report;
    report.addScannedFile();
    CheckRegistry::instance().run(file, report);
    report.sort();
    return report;
}

LintReport
runOnFixture(const std::string &name)
{
    return runAll(lint::lexFile(fixturePath(name)));
}

/** (check, line) pairs at the given severity. */
std::set<std::pair<std::string, int>>
findingsAt(const LintReport &report, Severity severity)
{
    std::set<std::pair<std::string, int>> out;
    for (const Finding &f : report.findings()) {
        if (f.severity == severity)
            out.insert({f.check, f.line});
    }
    return out;
}

} // namespace

// ---------------------------------------------------------------- lexer

TEST(LintLexer, SkipsCommentsAndStringContents)
{
    const SourceFile f = lint::lexString("x.cc",
                                         "int a; // std::rand()\n"
                                         "/* time(nullptr) */\n"
                                         "const char *s = \"srand(1)\";\n");
    for (const auto &t : f.tokens) {
        EXPECT_NE(t.text, "rand");
        EXPECT_NE(t.text, "time");
        EXPECT_NE(t.text, "srand");
    }
    // The string literal itself is one (content-free) token.
    const auto strings =
        std::count_if(f.tokens.begin(), f.tokens.end(), [](const auto &t) {
            return t.kind == TokKind::String;
        });
    EXPECT_EQ(strings, 1);
}

TEST(LintLexer, TracksLineNumbers)
{
    const SourceFile f =
        lint::lexString("x.cc", "int a;\n\n\ndouble b;\n");
    ASSERT_GE(f.tokens.size(), 6u);
    EXPECT_EQ(f.tokens[0].text, "int");
    EXPECT_EQ(f.tokens[0].line, 1);
    EXPECT_EQ(f.tokens[3].text, "double");
    EXPECT_EQ(f.tokens[3].line, 4);
    EXPECT_EQ(f.lines, 5); // trailing newline opens line 5
}

TEST(LintLexer, RawStringsAreOpaque)
{
    const SourceFile f = lint::lexString(
        "x.cc", "auto s = R\"(srand(42) \" quotes)\"; int z;\n");
    bool saw_z = false;
    for (const auto &t : f.tokens) {
        EXPECT_NE(t.text, "srand");
        saw_z = saw_z || t.isIdent("z");
    }
    EXPECT_TRUE(saw_z); // lexing resynchronized after the raw string
}

TEST(LintLexer, PreprocessorLogicalLines)
{
    const SourceFile f = lint::lexString("x.hh",
                                         "#ifndef GUARD_HH\n"
                                         "#define GUARD_HH\n"
                                         "#define TWO_LINES \\\n"
                                         "    1\n"
                                         "#endif\n");
    std::vector<std::string> pp;
    for (const auto &t : f.tokens) {
        if (t.kind == TokKind::Preprocessor)
            pp.push_back(t.text);
    }
    ASSERT_EQ(pp.size(), 4u);
    EXPECT_EQ(pp[0], "#ifndef GUARD_HH");
    EXPECT_EQ(pp[1], "#define GUARD_HH");
    EXPECT_EQ(pp[2], "#define TWO_LINES 1");
    EXPECT_EQ(pp[3], "#endif");
}

TEST(LintLexer, SuppressionDirectives)
{
    const SourceFile f = lint::lexString(
        "x.cc",
        "int a; // gcm-lint: allow(determinism)\n"
        "int b;\n"
        "int c;\n"
        "// gcm-lint: allow(unordered-iter, parallel-capture)\n"
        "int d;\n");
    EXPECT_TRUE(f.suppressed(1, "determinism"));
    EXPECT_TRUE(f.suppressed(2, "determinism")); // next line covered
    EXPECT_FALSE(f.suppressed(3, "determinism"));
    EXPECT_FALSE(f.suppressed(1, "unordered-iter"));
    EXPECT_TRUE(f.suppressed(5, "unordered-iter"));
    EXPECT_TRUE(f.suppressed(5, "parallel-capture"));
    EXPECT_FALSE(f.suppressed(5, "determinism"));
}

// ------------------------------------------------------------ registry

TEST(LintRegistry, BuiltinChecksRegistered)
{
    const auto &reg = CheckRegistry::instance();
    for (const char *id :
         {"determinism", "unordered-iter", "parallel-capture",
          "throw-discipline", "obs-hot-loop", "header-hygiene"}) {
        EXPECT_NE(reg.find(id), nullptr) << id;
    }
    EXPECT_EQ(reg.find("no-such-check"), nullptr);
    EXPECT_GE(reg.checks().size(), 6u);
}

TEST(LintRegistry, DuplicateRegistrationThrows)
{
    EXPECT_THROW(CheckRegistry::instance().registerCheck(
                     "determinism", "dup",
                     [](const SourceFile &, LintReport &) {}),
                 GcmError);
}

TEST(LintRegistry, UnknownCheckNameThrows)
{
    const SourceFile f = lint::lexString("x.cc", "int a;\n");
    LintReport r;
    EXPECT_THROW(CheckRegistry::instance().run(f, r, {"bogus"}),
                 GcmError);
}

TEST(LintRegistry, SubsetRunOnlyRunsNamedChecks)
{
    const SourceFile f = lint::lexString(
        "x.cc", "void f() { srand(42); throw 7; }\n");
    LintReport only_throw;
    CheckRegistry::instance().run(f, only_throw, {"throw-discipline"});
    ASSERT_EQ(only_throw.findings().size(), 1u);
    EXPECT_EQ(only_throw.findings()[0].check, "throw-discipline");
}

// ----------------------------------------------------------- determinism

TEST(LintChecks, DeterminismFixture)
{
    const LintReport r = runOnFixture("determinism_bad.cc");
    const auto errors = findingsAt(r, Severity::Error);
    const std::set<std::pair<std::string, int>> expected = {
        {"determinism", 12}, // random_device
        {"determinism", 13}, // mt19937
        {"determinism", 14}, // mt19937_64
        {"determinism", 15}, // srand
        {"determinism", 16}, // rand
        {"determinism", 17}, // time
        {"determinism", 18}, // system_clock
    };
    EXPECT_EQ(errors, expected);
    // The mt19937 on the allow(determinism) line was counted, not
    // reported.
    EXPECT_EQ(r.suppressedCount(), 1u);
}

TEST(LintChecks, DeterminismAllowsRngHome)
{
    const std::string code = "void f() { std::mt19937 g(1); }\n";
    const LintReport outside =
        runAll(lint::lexString("src/core/foo.cc", code));
    EXPECT_TRUE(outside.hasErrors());
    const LintReport inside =
        runAll(lint::lexString("src/util/rng.cc", code));
    EXPECT_FALSE(inside.hasErrors());
}

// -------------------------------------------------------- unordered-iter

TEST(LintChecks, UnorderedIterFixture)
{
    const LintReport r = runOnFixture("unordered_iter_bad.cc");
    const auto errors = findingsAt(r, Severity::Error);
    const std::set<std::pair<std::string, int>> expected = {
        {"unordered-iter", 17}, // map feeding csv
        {"unordered-iter", 19}, // set aggregation
    };
    EXPECT_EQ(errors, expected);
    EXPECT_EQ(r.suppressedCount(), 1u); // reviewedAndAllowed()
}

TEST(LintChecks, UnorderedIterQuietFileIsNoteOnly)
{
    const LintReport r = runOnFixture("unordered_iter_quiet.cc");
    EXPECT_FALSE(r.hasErrors());
    const auto notes = findingsAt(r, Severity::Note);
    const std::set<std::pair<std::string, int>> expected = {
        {"unordered-iter", 11},
    };
    EXPECT_EQ(notes, expected);
}

// ------------------------------------------------------ parallel-capture

TEST(LintChecks, ParallelCaptureFixture)
{
    const LintReport r = runOnFixture("parallel_capture_bad.cc");
    const auto errors = findingsAt(r, Severity::Error);
    const std::set<std::pair<std::string, int>> expected = {
        {"parallel-capture", 17}, // sum +=
        {"parallel-capture", 18}, // order.push_back
        {"parallel-capture", 26}, // lock_guard
    };
    EXPECT_EQ(errors, expected);
    EXPECT_EQ(r.suppressedCount(), 1u); // checksum += (allowed)
}

TEST(LintChecks, RawThreadSpawnFixture)
{
    // The fixture lives under tests/, which the check exempts — lex
    // its content under a src/ path to arm it.
    const std::string code =
        readFile(fixturePath("parallel_capture_thread.cc"));
    const LintReport r =
        runAll(lint::lexString("src/ml/thread_bad.cc", code));
    const auto errors = findingsAt(r, Severity::Error);
    const std::set<std::pair<std::string, int>> expected = {
        {"parallel-capture", 13}, // std::thread worker(...)
        {"parallel-capture", 20}, // std::thread t;
        {"parallel-capture", 21}, // t = std::thread(...)
    };
    EXPECT_EQ(errors, expected);
    // hardware_concurrency() (line 29) must not flag; the detached
    // spawn (line 36) is suppressed via allow(parallel-capture).
    EXPECT_EQ(r.suppressedCount(), 1u);
}

TEST(LintChecks, RawThreadSpawnAllowedPaths)
{
    const std::string code = "#include <thread>\n"
                             "void f() { std::thread t([] {}); "
                             "t.join(); }\n";
    // The thread-pool implementation and the serving front end are
    // the two sanctioned spawn sites; tests/ is exempt wholesale.
    for (const char *path : {"src/util/parallel.cc",
                             "src/serve/frontend.cc",
                             "tests/test_parallel.cc"}) {
        const LintReport r = runAll(lint::lexString(path, code));
        EXPECT_TRUE(findingsAt(r, Severity::Error).empty())
            << "unexpected finding in " << path;
    }
    // The same code anywhere else flags.
    const LintReport r =
        runAll(lint::lexString("src/serve/service.cc", code));
    EXPECT_EQ(findingsAt(r, Severity::Error).size(), 1u);
}

// ------------------------------------------------------ throw-discipline

TEST(LintChecks, ThrowDisciplineFixture)
{
    // The fixture lives under tests/, which the check exempts — lex
    // its content under a src/ path to arm it.
    const std::string code =
        readFile(fixturePath("throw_bad.cc"));
    const LintReport r =
        runAll(lint::lexString("src/core/throw_bad.cc", code));
    const auto errors = findingsAt(r, Severity::Error);
    const std::set<std::pair<std::string, int>> expected = {
        {"throw-discipline", 12}, // std::runtime_error
        {"throw-discipline", 14}, // throw 42
        {"throw-discipline", 16}, // throw "text"
    };
    EXPECT_EQ(errors, expected);
    EXPECT_EQ(r.suppressedCount(), 1u); // bad_alloc (allowed)
}

TEST(LintChecks, ThrowDisciplineExemptsTests)
{
    const LintReport r = runOnFixture("throw_bad.cc");
    for (const Finding &f : r.findings())
        EXPECT_NE(f.check, "throw-discipline") << f.str();
}

// ---------------------------------------------------------- obs-hot-loop

TEST(LintChecks, ObsHotLoopFixture)
{
    const std::string code =
        readFile(fixturePath("obs_hot_loop_bad.cc"));
    const LintReport r =
        runAll(lint::lexString("src/ml/obs_hot_loop_bad.cc", code));
    const auto errors = findingsAt(r, Severity::Error);
    const std::set<std::pair<std::string, int>> expected = {
        {"obs-hot-loop", 13}, // counterAdd
        {"obs-hot-loop", 14}, // histogramObserve
        {"obs-hot-loop", 24}, // TraceSpan
    };
    EXPECT_EQ(errors, expected);
    EXPECT_EQ(r.suppressedCount(), 1u); // suppressedCall()
}

TEST(LintChecks, ObsHotLoopFlatEnsembleShape)
{
    // The compiled-walk shape of src/ml/flat_ensemble.cc: a guarded
    // batch counter outside the loops is sanctioned, the innermost
    // node-walk `while` is hot, and the row `for` wrapping it is not
    // innermost, so its per-row counter stays legal unguarded.
    const std::string code =
        readFile(fixturePath("obs_hot_loop_flat.cc"));
    const LintReport r =
        runAll(lint::lexString("src/ml/flat_ensemble.cc", code));
    std::set<std::pair<std::string, int>> hotLoopErrors;
    for (const auto &f : findingsAt(r, Severity::Error)) {
        if (f.first == "obs-hot-loop")
            hotLoopErrors.insert(f);
    }
    const std::set<std::pair<std::string, int>> expected = {
        {"obs-hot-loop", 22}, // counterAdd in the traversal while
    };
    EXPECT_EQ(hotLoopErrors, expected);
}

TEST(LintChecks, ObsHotLoopOnlyAppliesToInstrumentedHotDirs)
{
    const std::string code =
        readFile(fixturePath("obs_hot_loop_bad.cc"));
    const LintReport r = runAll(
        lint::lexString("src/serve/obs_hot_loop_bad.cc", code));
    for (const Finding &f : r.findings())
        EXPECT_NE(f.check, "obs-hot-loop") << f.str();

    // src/search and src/fleet are instrumented hot-path code too:
    // the same fixture under those paths must trip the check (the
    // lint_tree-clean guarantee for the real tree is enforced by
    // tools/check.sh).
    for (const char *path : {"src/search/obs_hot_loop_bad.cc",
                             "src/fleet/obs_hot_loop_bad.cc"}) {
        const LintReport rs = runAll(lint::lexString(path, code));
        bool found = false;
        for (const Finding &f : rs.findings())
            found = found || f.check == "obs-hot-loop";
        EXPECT_TRUE(found) << path;
    }
}

TEST(LintChecks, ObsHotLoopFleetControllerShape)
{
    // The src/fleet controller shape: round counters at function
    // top-level and an amortized per-device counter are legal; only
    // the innermost per-record merge counter trips the check.
    const std::string code =
        readFile(fixturePath("obs_hot_loop_fleet.cc"));
    const LintReport r = runAll(
        lint::lexString("src/fleet/obs_hot_loop_fleet.cc", code));
    std::set<std::pair<std::string, int>> hotLoopErrors;
    for (const auto &f : findingsAt(r, Severity::Error)) {
        if (f.first == "obs-hot-loop")
            hotLoopErrors.insert(f);
    }
    const std::set<std::pair<std::string, int>> expected = {
        {"obs-hot-loop", 18}, // counterAdd in the merge sweep
    };
    EXPECT_EQ(hotLoopErrors, expected);
}

// -------------------------------------------------------- header-hygiene

TEST(LintChecks, HeaderHygieneFixture)
{
    const LintReport r = runOnFixture("header_bad.hh");
    const auto errors = findingsAt(r, Severity::Error);
    const std::set<std::pair<std::string, int>> expected = {
        {"header-hygiene", 1}, // missing guard
        {"header-hygiene", 5}, // using namespace
    };
    EXPECT_EQ(errors, expected);
}

TEST(LintChecks, WellFormedHeaderIsClean)
{
    const LintReport r = runOnFixture("header_ok.hh");
    EXPECT_TRUE(r.empty()) << r.str();
}

TEST(LintChecks, PragmaOnceCountsAsGuard)
{
    const LintReport r = runAll(lint::lexString(
        "x.hh", "#pragma once\ninline int f() { return 1; }\n"));
    EXPECT_TRUE(r.empty()) << r.str();
}

TEST(LintChecks, SourceFilesNeedNoGuard)
{
    const LintReport r = runAll(
        lint::lexString("x.cc", "int f() { return 1; }\n"));
    EXPECT_TRUE(r.empty()) << r.str();
}

// ------------------------------------------------------- report formats

TEST(LintReport, JsonRoundTripsThroughParser)
{
    const LintReport r = runOnFixture("determinism_bad.cc");
    const json::Value doc = json::parseJson(r.json());
    ASSERT_TRUE(doc.isObject());
    EXPECT_EQ(doc.at("schema").str, "gcm-lint/v1");
    EXPECT_EQ(doc.at("files_scanned").number, 1.0);
    const json::Value &counts = doc.at("counts");
    EXPECT_EQ(counts.at("error").number,
              static_cast<double>(r.count(Severity::Error)));
    EXPECT_EQ(counts.at("suppressed").number, 1.0);
    const json::Value &findings = doc.at("findings");
    ASSERT_TRUE(findings.isArray());
    ASSERT_EQ(findings.array.size(), r.findings().size());
    const json::Value &first = findings.array[0];
    EXPECT_EQ(first.at("check").str, "determinism");
    EXPECT_EQ(first.at("severity").str, "error");
    EXPECT_GT(first.at("line").number, 0.0);
    EXPECT_FALSE(first.at("hint").str.empty());
}

TEST(LintReport, TextRenderingCarriesFileLineAndHint)
{
    const LintReport r = runOnFixture("header_bad.hh");
    const std::string text = r.str();
    EXPECT_NE(text.find("header_bad.hh:1: error [header-hygiene]"),
              std::string::npos)
        << text;
    EXPECT_NE(text.find("hint:"), std::string::npos);
    EXPECT_NE(text.find("1 file(s)"), std::string::npos);
}

TEST(LintReport, SortOrdersByFileLineCheck)
{
    LintReport r;
    const SourceFile fb = lint::lexString("b.cc", "int x;\n");
    const SourceFile fa = lint::lexString("a.cc", "int x;\n");
    r.add(fb, 10, "z", Severity::Error, "m", "");
    r.add(fa, 20, "z", Severity::Error, "m", "");
    r.add(fa, 5, "z", Severity::Error, "m", "");
    r.sort();
    ASSERT_EQ(r.findings().size(), 3u);
    EXPECT_EQ(r.findings()[0].file, "a.cc");
    EXPECT_EQ(r.findings()[0].line, 5);
    EXPECT_EQ(r.findings()[1].file, "a.cc");
    EXPECT_EQ(r.findings()[1].line, 20);
    EXPECT_EQ(r.findings()[2].file, "b.cc");
}

// ----------------------------------------------------------- collection

TEST(LintCollect, SkipsFixtureAndBuildDirectories)
{
    // Walking tests/ must skip lint_fixtures/ (deliberately bad), so
    // none of the reports may mention a fixture file.
    const std::string tests_dir = std::filesystem::path(
        GCM_LINT_FIXTURE_DIR).parent_path().string();
    const auto files = lint::collectSources({tests_dir});
    EXPECT_FALSE(files.empty());
    for (const auto &f : files)
        EXPECT_EQ(f.find("lint_fixtures"), std::string::npos) << f;
}

TEST(LintCollect, MissingPathThrows)
{
    EXPECT_THROW(lint::collectSources({"/no/such/path/anywhere"}),
                 GcmError);
}

TEST(LintCollect, LiveFixtureDirHasSeededViolations)
{
    // Explicitly pointing the analyzer *at* the fixture dir (as a
    // path argument, not via traversal) must light it up — the gate
    // in tools/check.sh depends on non-empty fixtures staying hot.
    const LintReport r = lint::lintPaths({fixturePath(".")});
    EXPECT_TRUE(r.hasErrors());
    EXPECT_GE(r.filesScanned(), 6u);
}

/**
 * @file
 * Unit tests for the ml::Dataset container.
 */

#include <gtest/gtest.h>

#include "ml/dataset.hh"

using gcm::ml::Dataset;

TEST(Dataset, AddAndAccessRows)
{
    Dataset ds(3);
    ds.addRow({1.0f, 2.0f, 3.0f}, 0.5);
    ds.addRow({4.0f, 5.0f, 6.0f}, -1.5);
    EXPECT_EQ(ds.numRows(), 2u);
    EXPECT_EQ(ds.numFeatures(), 3u);
    EXPECT_FLOAT_EQ(ds.row(1)[2], 6.0f);
    EXPECT_FLOAT_EQ(ds.at(0, 1), 2.0f);
    EXPECT_DOUBLE_EQ(ds.label(1), -1.5);
}

TEST(Dataset, SubsetPreservesOrderAndLabels)
{
    Dataset ds(1);
    for (int i = 0; i < 5; ++i)
        ds.addRow({static_cast<float>(i)}, i * 10.0);
    const Dataset sub = ds.subset({4, 0, 2});
    ASSERT_EQ(sub.numRows(), 3u);
    EXPECT_FLOAT_EQ(sub.at(0, 0), 4.0f);
    EXPECT_DOUBLE_EQ(sub.label(1), 0.0);
    EXPECT_DOUBLE_EQ(sub.label(2), 20.0);
}

TEST(Dataset, FeatureNames)
{
    Dataset ds(2);
    ds.setFeatureNames({"a", "b"});
    EXPECT_EQ(ds.featureNames()[1], "b");
}

TEST(Dataset, LabelsVector)
{
    Dataset ds(1);
    ds.addRow({0.0f}, 1.0);
    ds.addRow({0.0f}, 2.0);
    EXPECT_EQ(ds.labels(), (std::vector<double>{1.0, 2.0}));
}

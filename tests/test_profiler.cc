/**
 * @file
 * Unit tests for the per-layer latency profiler.
 */

#include <gtest/gtest.h>

#include "dnn/quantize.hh"
#include "dnn/zoo.hh"
#include "sim/profiler.hh"
#include "util/error.hh"

using namespace gcm;
using namespace gcm::sim;

namespace
{

const DeviceSpec &
device()
{
    static const DeviceDatabase db = DeviceDatabase::standard(1, 8);
    return db.device(0);
}

const Chipset &
chipset()
{
    return chipsetTable()[device().chipset_index];
}

dnn::Graph
net()
{
    static const dnn::Graph g =
        dnn::quantize(dnn::buildZooModel("mobilenet_v2_1.0"));
    return g;
}

} // namespace

TEST(Profiler, TotalMatchesLatencyModel)
{
    const LatencyModel model;
    const auto profile = profileGraph(model, net(), device(), chipset());
    EXPECT_NEAR(profile.total_ms,
                model.graphLatencyMs(net(), device(), chipset()), 1e-9);
}

TEST(Profiler, OneEntryPerNonInputNode)
{
    const LatencyModel model;
    const auto profile = profileGraph(model, net(), device(), chipset());
    EXPECT_EQ(profile.layers.size(), net().numNodes() - 1);
}

TEST(Profiler, PercentagesSumToHundred)
{
    const LatencyModel model;
    const auto profile = profileGraph(model, net(), device(), chipset());
    double sum = 0.0;
    for (const auto &lp : profile.layers)
        sum += lp.percent;
    const double overhead_pct =
        100.0 * profile.graph_overhead_ms / profile.total_ms;
    EXPECT_NEAR(sum + overhead_pct, 100.0, 1e-6);
}

TEST(Profiler, ByKindAggregationConsistent)
{
    const LatencyModel model;
    const auto profile = profileGraph(model, net(), device(), chipset());
    double kinds_ms = 0.0;
    std::size_t kinds_count = 0;
    for (const auto &agg : profile.by_kind) {
        kinds_ms += agg.ms;
        kinds_count += agg.count;
    }
    EXPECT_NEAR(kinds_ms + profile.graph_overhead_ms, profile.total_ms,
                1e-9);
    EXPECT_EQ(kinds_count, profile.layers.size());
    // Sorted by descending time.
    for (std::size_t i = 1; i < profile.by_kind.size(); ++i)
        EXPECT_GE(profile.by_kind[i - 1].ms, profile.by_kind[i].ms);
}

TEST(Profiler, ConvolutionsDominateMobileNet)
{
    const LatencyModel model;
    const auto profile = profileGraph(model, net(), device(), chipset());
    EXPECT_EQ(profile.by_kind.front().kind, dnn::OpKind::Conv2d);
    EXPECT_GT(profile.by_kind.front().percent, 40.0);
}

TEST(Profiler, DepthwiseCostsMorePerMacThanDenseConv)
{
    // The defining mobile-CPU behaviour the model encodes: depthwise
    // convolutions achieve far lower effective throughput, so their
    // time per MAC is well above that of dense convolutions.
    const LatencyModel model;
    const auto profile = profileGraph(model, net(), device(), chipset());
    double conv_ms = 0.0, dw_ms = 0.0;
    std::int64_t conv_macs = 0, dw_macs = 0;
    for (const auto &lp : profile.layers) {
        if (lp.kind == dnn::OpKind::Conv2d) {
            conv_ms += lp.ms;
            conv_macs += lp.macs;
        } else if (lp.kind == dnn::OpKind::DepthwiseConv2d) {
            dw_ms += lp.ms;
            dw_macs += lp.macs;
        }
    }
    ASSERT_GT(conv_macs, 0);
    ASSERT_GT(dw_macs, 0);
    EXPECT_GT(dw_ms / static_cast<double>(dw_macs),
              2.0 * conv_ms / static_cast<double>(conv_macs));
}

TEST(Profiler, RejectsFp32Graph)
{
    const LatencyModel model;
    EXPECT_THROW((void)profileGraph(model,
                                    dnn::buildZooModel("squeezenet_1.1"),
                                    device(), chipset()),
                 GcmError);
}

TEST(Profiler, RenderMentionsHotOperators)
{
    const LatencyModel model;
    const auto profile = profileGraph(model, net(), device(), chipset());
    const std::string text = renderProfile(profile, net());
    EXPECT_NE(text.find("Conv2d"), std::string::npos);
    EXPECT_NE(text.find("hottest layers"), std::string::npos);
    EXPECT_NE(text.find(net().name()), std::string::npos);
}

/**
 * @file
 * Unit tests for feature binning.
 */

#include <gtest/gtest.h>

#include "ml/binning.hh"

using namespace gcm::ml;

namespace
{

Dataset
columnDataset(const std::vector<float> &col)
{
    Dataset ds(1);
    for (float v : col)
        ds.addRow({v}, 0.0);
    return ds;
}

} // namespace

TEST(Binning, ConstantFeatureDetected)
{
    const auto ds = columnDataset({2, 2, 2, 2});
    BinnedMatrix bm(ds, 16);
    EXPECT_TRUE(bm.featureBins(0).isConstant());
    EXPECT_TRUE(bm.activeFeatures().empty());
    for (std::size_t i = 0; i < 4; ++i)
        EXPECT_EQ(bm.binAt(0, i), 0);
}

TEST(Binning, BinIndicesMonotoneInValue)
{
    std::vector<float> col;
    for (int i = 0; i < 128; ++i)
        col.push_back(static_cast<float>(i));
    const auto ds = columnDataset(col);
    BinnedMatrix bm(ds, 8);
    for (std::size_t i = 1; i < 128; ++i)
        EXPECT_GE(bm.binAt(0, i), bm.binAt(0, i - 1));
    // First and last values land in different bins.
    EXPECT_LT(bm.binAt(0, 0), bm.binAt(0, 127));
}

TEST(Binning, NumBinsBounded)
{
    std::vector<float> col;
    for (int i = 0; i < 1000; ++i)
        col.push_back(static_cast<float>(i % 100));
    const auto ds = columnDataset(col);
    BinnedMatrix bm(ds, 8);
    EXPECT_LE(bm.featureBins(0).numBins(), 8u);
    EXPECT_GE(bm.featureBins(0).numBins(), 2u);
}

TEST(Binning, BinaryFeatureGetsTwoBins)
{
    const auto ds = columnDataset({0, 0, 0, 1, 0, 1, 0, 0});
    BinnedMatrix bm(ds, 64);
    EXPECT_EQ(bm.featureBins(0).numBins(), 2u);
    EXPECT_EQ(bm.binAt(0, 0), 0);
    EXPECT_EQ(bm.binAt(0, 3), 1);
}

TEST(Binning, BinOfConsistentWithStoredCodes)
{
    std::vector<float> col{5, 1, 9, 3, 7, 2, 8};
    const auto ds = columnDataset(col);
    BinnedMatrix bm(ds, 4);
    for (std::size_t i = 0; i < col.size(); ++i)
        EXPECT_EQ(bm.featureBins(0).binOf(col[i]), bm.binAt(0, i));
}

TEST(Binning, ActiveFeaturesListsNonConstantOnly)
{
    Dataset ds(3);
    for (int i = 0; i < 10; ++i) {
        ds.addRow({static_cast<float>(i), 7.0f,
                   static_cast<float>(i % 2)},
                  0.0);
    }
    BinnedMatrix bm(ds, 8);
    EXPECT_EQ(bm.activeFeatures(),
              (std::vector<std::size_t>{0, 2}));
}

TEST(Binning, QuantileSubsampleStillCoversRange)
{
    // More rows than the quantile sample cap.
    std::vector<float> col;
    for (int i = 0; i < 10000; ++i)
        col.push_back(static_cast<float>(i));
    const auto ds = columnDataset(col);
    BinnedMatrix bm(ds, 16, /*quantile_sample_cap=*/512);
    EXPECT_GT(bm.binAt(0, 9999), bm.binAt(0, 0));
}
